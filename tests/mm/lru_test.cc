// Tests for the active/inactive LRU lists and the 15-slot pagevec batching
// that produces TPP's multi-fault promotion pathology.
#include "src/mm/lru.h"

#include <gtest/gtest.h>

#include "src/mem/platform.h"

namespace nomad {
namespace {

class LruTest : public ::testing::Test {
 protected:
  LruTest() : pool_(MakePool()), lru_(&pool_) {}

  static FramePool MakePool() {
    PlatformSpec p = MakePlatform(PlatformId::kA);
    p.tiers[0].capacity_bytes = 256 * kPageSize;
    p.tiers[1].capacity_bytes = 256 * kPageSize;
    return FramePool(p);
  }

  Pfn NewPage() {
    const Pfn pfn = pool_.AllocOn(Tier::kFast);
    lru_.AddInactive(pfn);
    return pfn;
  }

  FramePool pool_;
  LruLists lru_;
};

TEST_F(LruTest, NewPagesGoInactive) {
  const Pfn pfn = NewPage();
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kInactive);
  EXPECT_FALSE(pool_.frame(pfn).active());
  EXPECT_EQ(lru_.inactive_size(), 1u);
}

TEST_F(LruTest, FirstTouchSetsReferencedOnly) {
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);
  EXPECT_TRUE(pool_.frame(pfn).referenced());
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kInactive);
}

TEST_F(LruTest, SecondTouchQueuesActivationInPagevec) {
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);
  lru_.MarkAccessed(pfn);
  // Still inactive: the activation sits in the pagevec.
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kInactive);
  EXPECT_FALSE(pool_.frame(pfn).active());
  EXPECT_EQ(lru_.pagevec_fill(), 1u);
}

TEST_F(LruTest, DrainActivates) {
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);
  lru_.MarkAccessed(pfn);
  EXPECT_EQ(lru_.DrainPagevec(), 1u);
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kActive);
  EXPECT_TRUE(pool_.frame(pfn).active());
  EXPECT_FALSE(pool_.frame(pfn).referenced());  // cleared on activation
}

TEST_F(LruTest, PagevecAutoDrainsAtFifteen) {
  // One page can fill the pagevec with duplicate requests; the 15th
  // request triggers the drain (this is the "up to 15 minor faults"
  // behaviour of sec. 3.1).
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);  // sets referenced
  for (size_t i = 0; i < kPagevecSize - 1; i++) {
    lru_.MarkAccessed(pfn);
    EXPECT_FALSE(pool_.frame(pfn).active());
    EXPECT_EQ(lru_.pagevec_fill(), i + 1);
  }
  lru_.MarkAccessed(pfn);  // 15th request: auto-drain
  EXPECT_TRUE(pool_.frame(pfn).active());
  EXPECT_EQ(lru_.pagevec_fill(), 0u);
}

TEST_F(LruTest, DuplicateRequestsActivateOnce) {
  const Pfn a = NewPage();
  const Pfn b = NewPage();
  lru_.MarkAccessed(a);
  lru_.MarkAccessed(b);
  lru_.MarkAccessed(a);
  lru_.MarkAccessed(a);
  lru_.MarkAccessed(b);
  EXPECT_EQ(lru_.DrainPagevec(), 2u);
  EXPECT_EQ(lru_.active_size(), 2u);
}

TEST_F(LruTest, ActiveTouchSetsReferenced) {
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);
  lru_.MarkAccessed(pfn);
  lru_.DrainPagevec();
  lru_.MarkAccessed(pfn);
  EXPECT_TRUE(pool_.frame(pfn).referenced());
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kActive);
}

TEST_F(LruTest, InactiveTailIsOldest) {
  const Pfn first = NewPage();
  NewPage();
  const Pfn last = NewPage();
  EXPECT_EQ(lru_.InactiveTail(), first);
  (void)last;
}

TEST_F(LruTest, RotateMovesToHead) {
  const Pfn first = NewPage();
  const Pfn second = NewPage();
  lru_.RotateInactive(first);
  EXPECT_EQ(lru_.InactiveTail(), second);
}

TEST_F(LruTest, DeactivateMovesActiveToInactive) {
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);
  lru_.MarkAccessed(pfn);
  lru_.DrainPagevec();
  lru_.Deactivate(pfn);
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kInactive);
  EXPECT_FALSE(pool_.frame(pfn).active());
  EXPECT_FALSE(pool_.frame(pfn).referenced());
}

TEST_F(LruTest, ActivateNowBypassesPagevec) {
  const Pfn pfn = NewPage();
  lru_.ActivateNow(pfn);
  EXPECT_EQ(pool_.frame(pfn).lru(), LruList::kActive);
  EXPECT_EQ(lru_.pagevec_fill(), 0u);
}

TEST_F(LruTest, RemoveIsolatesPage) {
  const Pfn a = NewPage();
  const Pfn b = NewPage();
  const Pfn c = NewPage();
  lru_.Remove(b);
  EXPECT_EQ(pool_.frame(b).lru(), LruList::kNone);
  EXPECT_EQ(lru_.inactive_size(), 2u);
  // List links survive around the removed node.
  EXPECT_EQ(lru_.InactiveTail(), a);
  EXPECT_EQ(pool_.frame(a).lru_prev(), c);
}

TEST_F(LruTest, RemoveUnlistedIsNoop) {
  const Pfn pfn = pool_.AllocOn(Tier::kFast);
  lru_.Remove(pfn);  // never added
  EXPECT_EQ(lru_.inactive_size(), 0u);
}

TEST_F(LruTest, DrainSkipsPagesRemovedMeanwhile) {
  const Pfn pfn = NewPage();
  lru_.MarkAccessed(pfn);
  lru_.MarkAccessed(pfn);
  lru_.Remove(pfn);  // isolated for migration while request pending
  EXPECT_EQ(lru_.DrainPagevec(), 0u);
}

TEST_F(LruTest, MarkAccessedOnIsolatedPageIsNoop) {
  const Pfn pfn = NewPage();
  lru_.Remove(pfn);
  lru_.MarkAccessed(pfn);
  EXPECT_FALSE(pool_.frame(pfn).referenced());
}

TEST_F(LruTest, InactiveIsLowHeuristic) {
  // 1 inactive vs 3 active -> low.
  const Pfn a = NewPage();
  const Pfn b = NewPage();
  const Pfn c = NewPage();
  NewPage();
  for (Pfn p : {a, b, c}) {
    lru_.ActivateNow(p);
  }
  EXPECT_TRUE(lru_.InactiveIsLow());
}

TEST_F(LruTest, ManyPagesKeepListConsistent) {
  std::vector<Pfn> pages;
  for (int i = 0; i < 100; i++) {
    pages.push_back(NewPage());
  }
  // Remove every third page, then walk the list from the tail and count.
  size_t removed = 0;
  for (size_t i = 0; i < pages.size(); i += 3) {
    lru_.Remove(pages[i]);
    removed++;
  }
  EXPECT_EQ(lru_.inactive_size(), pages.size() - removed);
  size_t walked = 0;
  for (Pfn p = lru_.InactiveTail(); p != kInvalidPfn; p = pool_.frame(p).lru_prev()) {
    walked++;
  }
  EXPECT_EQ(walked, pages.size() - removed);
}

}  // namespace
}  // namespace nomad
