// Regression test for fault injection on the batched access fast path.
//
// MemorySystem::AccessBatch resolves the common case (TLB hit, no PTE
// update needed) fully inline; everything else falls out to the scalar
// AccessResolved path. Both must consult the FaultInjector at exactly the
// same opportunity points — kLatencySpike once per LLC-miss device access
// — or the fault *schedule*, which is indexed by opportunity rather than
// by time, would silently depend on how the caller chunks its accesses.
// The core test executes one identical access stream chunked as K=1 and
// as K=8 submissions and requires both executions to agree on every
// observable: injector opportunity/injection tallies, per-access latency
// sums, and the full counter set, byte for byte.
#include <gtest/gtest.h>

#include <vector>

#include "src/fault/fault_injector.h"
#include "src/harness/experiment.h"
#include "src/sim/rng.h"
#include "src/workload/micro.h"
#include "src/workload/zipfian.h"

namespace nomad {
namespace {

constexpr uint64_t kRegionPages = 96;
constexpr uint64_t kAsPages = 160;
constexpr uint64_t kSeed = 1234;
constexpr uint64_t kOps = 4000;

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 64 * kPageSize;
  p.tiers[1].capacity_bytes = 128 * kPageSize;
  p.llc_bytes = 32 * 1024;  // small: plenty of LLC misses (= opportunities)
  return p;
}

// The same pseudo-random access stream for every execution.
std::vector<MemorySystem::BatchAccess> MakeStream() {
  std::vector<MemorySystem::BatchAccess> ops;
  ops.reserve(kOps);
  Rng rng(kSeed);
  for (uint64_t i = 0; i < kOps; i++) {
    MemorySystem::BatchAccess a;
    a.vpn = rng.Below(kRegionPages);
    a.offset = rng.Below(kPageSize);
    a.is_write = rng.Chance(0.3);
    ops.push_back(a);
  }
  return ops;
}

struct ChunkedRun {
  uint64_t spike_opportunities = 0;
  uint64_t spike_injected = 0;
  Cycles total_latency = 0;
  std::string counters;
  std::string injector;
};

// Executes the stream in fixed-size chunks against a fresh MemorySystem.
// No actors run, so virtual time stays put and the two executions differ
// ONLY in how accesses are grouped into AccessBatch submissions.
ChunkedRun RunChunked(size_t chunk, bool arm) {
  Engine engine;
  MemorySystem ms(TestPlatform(), &engine);
  AddressSpace as(kAsPages);
  ms.RegisterCpu(0);

  auto fi = std::make_unique<FaultInjector>(kSeed);
  if (arm) {
    FaultSchedule spike;
    spike.probability = 0.02;
    spike.trigger_start = 50;  // plus a deterministic window
    spike.trigger_count = 20;
    spike.latency_cycles = 20000;
    fi->set_schedule(FaultKind::kLatencySpike, spike);
  }
  ms.set_fault_injector(std::move(fi));

  // Half the region on each tier: demand traffic hits both devices.
  MapRange(ms, as, 0, kRegionPages / 2, Tier::kFast);
  MapRange(ms, as, kRegionPages / 2, kRegionPages / 2, Tier::kSlow);

  const std::vector<MemorySystem::BatchAccess> ops = MakeStream();
  std::vector<Cycles> lat(chunk);
  ChunkedRun r;
  for (size_t i = 0; i < ops.size(); i += chunk) {
    const size_t n = std::min(chunk, ops.size() - i);
    r.total_latency += ms.AccessBatch(0, as, ops.data() + i, n, /*mlp=*/4, lat.data());
  }
  r.spike_opportunities = ms.faults()->opportunities(FaultKind::kLatencySpike);
  r.spike_injected = ms.faults()->injected(FaultKind::kLatencySpike);
  r.counters = ms.counters().ToString();
  r.injector = ms.faults()->Describe();
  return r;
}

TEST(BatchFaultTest, IdenticalFaultScheduleAcrossChunkSizes) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const ChunkedRun k1 = RunChunked(1, /*arm=*/true);
  const ChunkedRun k8 = RunChunked(8, /*arm=*/true);
  // Same opportunity stream -> same decisions -> same injections, same
  // added latency, same counters. Any divergence means the inline fast
  // path and the scalar resolver consult the injector at different points.
  EXPECT_GT(k1.spike_injected, 0u);
  EXPECT_EQ(k1.spike_opportunities, k8.spike_opportunities);
  EXPECT_EQ(k1.spike_injected, k8.spike_injected);
  EXPECT_EQ(k1.injector, k8.injector);
  EXPECT_EQ(k1.total_latency, k8.total_latency);
  EXPECT_EQ(k1.counters, k8.counters);
}

TEST(BatchFaultTest, MissesPresentOpportunitiesOnTheFastPath) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  // K=8 resolves most accesses on the inline fast path. If that path
  // bypassed the injector, the opportunity count would collapse to the
  // handful of slow-path accesses instead of one per LLC miss.
  const ChunkedRun k8 = RunChunked(8, /*arm=*/true);
  EXPECT_GT(k8.spike_opportunities, kOps / 4) << "fast path skips fault consults";
}

TEST(BatchFaultTest, UnarmedInjectorKeepsChunkEquivalence) {
  // The consult itself must be behaviorally free when nothing is armed.
  const ChunkedRun k1 = RunChunked(1, /*arm=*/false);
  const ChunkedRun k8 = RunChunked(8, /*arm=*/false);
  EXPECT_EQ(k1.spike_injected, 0u);
  EXPECT_EQ(k8.spike_injected, 0u);
  EXPECT_EQ(k1.total_latency, k8.total_latency);
  EXPECT_EQ(k1.counters, k8.counters);
}

// End-to-end: a full Sim whose workload uses the default batch of 8 still
// reaches the injector from its hot loop.
TEST(BatchFaultTest, WorkloadFastPathReachesInjector) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  Sim sim(TestPlatform(), PolicyKind::kNomad, kAsPages);
  auto fi = std::make_unique<FaultInjector>(kSeed);
  FaultSchedule spike;
  spike.probability = 0.01;
  spike.latency_cycles = 20000;
  fi->set_schedule(FaultKind::kLatencySpike, spike);
  sim.ms().set_fault_injector(std::move(fi));

  MapRange(sim.ms(), sim.as(), 0, kRegionPages, Tier::kSlow);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = kOps;
  cfg.base.seed = kSeed;
  cfg.base.batch = 8;
  cfg.wss_start = 0;
  cfg.wss_pages = kRegionPages;
  cfg.write_fraction = 0.3;
  ScrambledZipfian zipf(kRegionPages, 0.99, kSeed);
  MicroWorkload actor(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&actor);
  sim.Run(Cycles{1} << 36);

  EXPECT_GT(sim.ms().faults()->opportunities(FaultKind::kLatencySpike), kOps / 4);
  EXPECT_GT(sim.ms().faults()->injected(FaultKind::kLatencySpike), 0u);
  // Every injection site bumps the same counter, so the exporter-visible
  // tally matches the injector's own bookkeeping exactly.
  EXPECT_EQ(sim.ms().counters().Get(cnt::kFaultInjLatencySpike),
            sim.ms().faults()->injected(FaultKind::kLatencySpike));
}

}  // namespace
}  // namespace nomad
