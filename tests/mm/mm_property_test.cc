// Property-based tests: random operation sequences against the MM
// substrate with full-state invariant checks, across several seeds.
#include <gtest/gtest.h>

#include <map>

#include "src/mm/kswapd.h"
#include "src/mm/memory_system.h"
#include "src/mm/migrate.h"
#include "src/sim/rng.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages, uint64_t slow_pages) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class MmFuzz : public ::testing::TestWithParam<uint64_t> {};

// Checks global consistency between the page table, the frames and the
// LRU lists.
void CheckInvariants(MemorySystem& ms, AddressSpace& as, uint64_t num_vpns) {
  // 1. Every present PTE maps to an in-use frame that points back.
  uint64_t mapped = 0;
  for (Vpn v = 0; v < num_vpns; v++) {
    const Pte* pte = ms.PteOf(as, v);
    if (pte == nullptr || !pte->present) {
      continue;
    }
    mapped++;
    const PageFrame f = ms.pool().frame(pte->pfn);
    ASSERT_TRUE(f.in_use()) << "vpn " << v;
    ASSERT_EQ(f.owner(), &as) << "vpn " << v;
    ASSERT_EQ(f.vpn(), v) << "vpn " << v;
    // PTE-tier agreement.
    ASSERT_EQ(f.tier(), ms.pool().TierOf(pte->pfn));
  }
  // 2. Used frames = mapped frames (this fuzz never creates shadows or
  //    reservations).
  ASSERT_EQ(ms.pool().UsedFrames(Tier::kFast) + ms.pool().UsedFrames(Tier::kSlow), mapped);
  // 3. LRU membership: every mapped frame is on exactly the list its flag
  //    says; list sizes add up.
  uint64_t on_lists = 0;
  for (int t = 0; t < kNumTiers; t++) {
    const Tier tier = static_cast<Tier>(t);
    on_lists += ms.lru(tier).inactive_size() + ms.lru(tier).active_size();
    // Walk the inactive list and verify back-links.
    uint64_t walked = 0;
    Pfn prev = kInvalidPfn;
    for (Pfn p = ms.lru(tier).InactiveTail(); p != kInvalidPfn;
         p = ms.pool().frame(p).lru_prev()) {
      ASSERT_EQ(ms.pool().frame(p).lru(), LruList::kInactive);
      ASSERT_EQ(ms.pool().frame(p).lru_next(), prev);
      prev = p;
      walked++;
      ASSERT_LE(walked, mapped) << "cycle in inactive list";
    }
    ASSERT_EQ(walked, ms.lru(tier).inactive_size());
  }
  ASSERT_EQ(on_lists, mapped);
}

TEST_P(MmFuzz, RandomOpsKeepStateConsistent) {
  Engine engine;
  MemorySystem ms(TestPlatform(96, 96), &engine);
  ms.RegisterCpu(0);
  ms.RegisterCpu(1);
  constexpr uint64_t kVpns = 256;
  AddressSpace as(kVpns);
  Rng rng(GetParam());

  for (int op = 0; op < 4000; op++) {
    const Vpn vpn = rng.Below(kVpns);
    const double a = rng.NextDouble();
    if (a < 0.35) {
      ms.Access(rng.Below(2), as, vpn, rng.Below(64) * 64, rng.Chance(0.5));
    } else if (a < 0.55) {
      const Pte* pte = ms.PteOf(as, vpn);
      if (pte == nullptr || !pte->present) {
        ms.MapNewPage(as, vpn, rng.Chance(0.5) ? Tier::kFast : Tier::kSlow);
      }
    } else if (a < 0.7) {
      ms.UnmapAndFree(as, vpn);
    } else if (a < 0.85) {
      const Pte* pte = ms.PteOf(as, vpn);
      if (pte != nullptr && pte->present) {
        MigratePageSync(ms, as, vpn, rng.Chance(0.5) ? Tier::kFast : Tier::kSlow);
      }
    } else if (a < 0.95) {
      ms.TlbShootdown(as, vpn);
    } else {
      // Temperature churn.
      const Pte* pte = ms.PteOf(as, vpn);
      if (pte != nullptr && pte->present) {
        ms.lru(ms.pool().TierOf(pte->pfn)).MarkAccessed(pte->pfn);
      }
    }
    if (op % 100 == 0) {
      CheckInvariants(ms, as, kVpns);
    }
  }
  CheckInvariants(ms, as, kVpns);
  // The system never OOMs in this sequence (96+96 frames vs 256 vpns can
  // exhaust memory, but failures must be graceful, never inconsistent).
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmFuzz, ::testing::Values(1, 7, 42, 1234, 99999));

// Device-model property: completion times are non-decreasing for
// back-to-back requests and bandwidth accounting is exact.
class DeviceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeviceFuzz, QueueingIsMonotoneAndAccounted) {
  TierSpec spec;
  spec.read_latency = 300;
  spec.read_bw_single = 4.0;
  spec.read_bw_peak = 16.0;
  DeviceChannel ch(spec.read_latency, spec.read_bw_single, spec.read_bw_peak);
  Rng rng(GetParam());
  Cycles now = 0;
  uint64_t total_bytes = 0;
  Cycles last_same_size_completion = 0;
  for (int i = 0; i < 2000; i++) {
    now += rng.Below(100);
    const uint64_t bytes = 64 + rng.Below(64) * 64;
    const Cycles latency = ch.Access(now, bytes);
    total_bytes += bytes;
    // Latency is at least the unloaded minimum (the channel models
    // parallelism, so differently-sized requests may complete out of
    // order; equal-sized 64 B probes must not).
    ASSERT_GE(latency, spec.read_latency);
    if (bytes == 64) {
      const Cycles completion = now + latency;
      ASSERT_GE(completion, last_same_size_completion);
      last_same_size_completion = completion;
    }
  }
  ASSERT_EQ(ch.bytes_total(), total_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceFuzz, ::testing::Values(3, 11, 77));

// Kswapd property: under any initial fill pattern, reclaim restores the
// high watermark without corrupting state, across seeds.
class KswapdFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KswapdFuzz, AlwaysRestoresWatermark) {
  Engine engine;
  MemorySystem ms(TestPlatform(128, 512), &engine);
  ms.RegisterCpu(0);
  ms.pool().SetWatermarks(Tier::kFast, 16, 48);
  AddressSpace as(1024);
  Rng rng(GetParam());

  // Random fill: mapped pages with random temperature.
  for (Vpn v = 0; v < 120; v++) {
    ms.MapNewPage(as, v, Tier::kFast);
    if (rng.Chance(0.3)) {
      ms.Access(0, as, v, 0, rng.Chance(0.5));
    }
    if (rng.Chance(0.2)) {
      ms.lru(Tier::kFast).MarkAccessed(ms.PteOf(as, v)->pfn);
    }
  }
  Kswapd::Config cfg;
  cfg.tier = Tier::kFast;
  cfg.scan_batch = 16;
  Kswapd k(&ms, cfg);
  const ActorId id = engine.AddActor(&k);
  k.set_actor_id(id);
  engine.Run(50000000);

  EXPECT_GE(ms.pool().FreeFrames(Tier::kFast), 48u);
  // All pages still mapped somewhere, none lost.
  for (Vpn v = 0; v < 120; v++) {
    const Pte* pte = ms.PteOf(as, v);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present) << "vpn " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KswapdFuzz, ::testing::Values(5, 21, 300, 888));

}  // namespace
}  // namespace nomad
