// Tests for the per-node frame allocator, watermarks and failure hooks.
#include "src/mm/frame_pool.h"

#include <gtest/gtest.h>

#include "src/mem/platform.h"

namespace nomad {
namespace {

PlatformSpec SmallPlatform(uint64_t fast_pages = 64, uint64_t slow_pages = 64) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  return p;
}

TEST(FramePoolTest, CapacityPerTier) {
  FramePool pool(SmallPlatform(64, 32));
  EXPECT_EQ(pool.TotalFrames(Tier::kFast), 64u);
  EXPECT_EQ(pool.TotalFrames(Tier::kSlow), 32u);
  EXPECT_EQ(pool.FreeFrames(Tier::kFast), 64u);
}

TEST(FramePoolTest, PfnRangesAreDisjoint) {
  FramePool pool(SmallPlatform(64, 32));
  const Pfn fast = pool.AllocOn(Tier::kFast);
  const Pfn slow = pool.AllocOn(Tier::kSlow);
  EXPECT_LT(fast, 64u);
  EXPECT_GE(slow, 64u);
  EXPECT_EQ(pool.TierOf(fast), Tier::kFast);
  EXPECT_EQ(pool.TierOf(slow), Tier::kSlow);
}

TEST(FramePoolTest, AllocAscendingPfn) {
  FramePool pool(SmallPlatform());
  EXPECT_EQ(pool.AllocOn(Tier::kFast), 0u);
  EXPECT_EQ(pool.AllocOn(Tier::kFast), 1u);
}

TEST(FramePoolTest, ExhaustionReturnsInvalid) {
  FramePool pool(SmallPlatform(2, 2));
  EXPECT_NE(pool.AllocOn(Tier::kFast), kInvalidPfn);
  EXPECT_NE(pool.AllocOn(Tier::kFast), kInvalidPfn);
  EXPECT_EQ(pool.AllocOn(Tier::kFast), kInvalidPfn);
}

TEST(FramePoolTest, PreferredAllocSpillsToOtherTier) {
  FramePool pool(SmallPlatform(1, 4));
  EXPECT_EQ(pool.TierOf(pool.Alloc(Tier::kFast)), Tier::kFast);
  const Pfn spilled = pool.Alloc(Tier::kFast);
  EXPECT_EQ(pool.TierOf(spilled), Tier::kSlow);
  EXPECT_EQ(pool.spill_count(), 1u);
}

TEST(FramePoolTest, OomCountsWhenBothTiersFull) {
  FramePool pool(SmallPlatform(1, 1));
  pool.Alloc(Tier::kFast);
  pool.Alloc(Tier::kFast);
  EXPECT_EQ(pool.Alloc(Tier::kFast), kInvalidPfn);
  EXPECT_EQ(pool.oom_count(), 1u);
}

TEST(FramePoolTest, FreeMakesFrameReusable) {
  FramePool pool(SmallPlatform(1, 1));
  const Pfn pfn = pool.AllocOn(Tier::kFast);
  pool.Free(pfn);
  EXPECT_EQ(pool.AllocOn(Tier::kFast), pfn);
}

TEST(FramePoolTest, FreeBumpsGeneration) {
  FramePool pool(SmallPlatform());
  const Pfn pfn = pool.AllocOn(Tier::kFast);
  const uint32_t gen = pool.frame(pfn).generation();
  pool.Free(pfn);
  EXPECT_EQ(pool.frame(pfn).generation(), gen + 1);
}

TEST(FramePoolTest, FreeResetsState) {
  FramePool pool(SmallPlatform());
  const Pfn pfn = pool.AllocOn(Tier::kFast);
  pool.frame(pfn).set_referenced(true);
  pool.frame(pfn).set_shadowed(true);
  pool.Free(pfn);
  EXPECT_FALSE(pool.frame(pfn).referenced());
  EXPECT_FALSE(pool.frame(pfn).shadowed());
  EXPECT_FALSE(pool.frame(pfn).in_use());
}

TEST(FramePoolTest, WatermarkPredicates) {
  FramePool pool(SmallPlatform(128, 128));
  pool.SetWatermarks(Tier::kFast, 10, 30);
  EXPECT_FALSE(pool.BelowLowWatermark(Tier::kFast));
  for (int i = 0; i < 119; i++) {
    pool.AllocOn(Tier::kFast);
  }
  EXPECT_TRUE(pool.BelowLowWatermark(Tier::kFast));   // 9 free < 10
  EXPECT_TRUE(pool.BelowHighWatermark(Tier::kFast));  // 9 free < 30
}

TEST(FramePoolTest, DefaultWatermarksProportionalToNode) {
  FramePool pool(SmallPlatform(1280, 1280));
  EXPECT_EQ(pool.LowWatermark(Tier::kFast), 10u);
  EXPECT_EQ(pool.HighWatermark(Tier::kFast), 30u);
}

TEST(FramePoolTest, AllocFailureHookCanRescueAllocation) {
  FramePool pool(SmallPlatform(1, 1));
  const Pfn held = pool.AllocOn(Tier::kSlow);
  int hook_calls = 0;
  pool.set_alloc_failure_hook([&](Tier tier) {
    hook_calls++;
    if (tier == Tier::kSlow) {
      pool.Free(held);
      return true;
    }
    return false;
  });
  const Pfn rescued = pool.AllocOn(Tier::kSlow);
  EXPECT_EQ(rescued, held);
  EXPECT_EQ(hook_calls, 1);
}

TEST(FramePoolTest, AllocFailureHookFalseMeansFailure) {
  FramePool pool(SmallPlatform(1, 1));
  pool.AllocOn(Tier::kSlow);
  pool.set_alloc_failure_hook([](Tier) { return false; });
  EXPECT_EQ(pool.AllocOn(Tier::kSlow), kInvalidPfn);
}

TEST(FramePoolTest, UsedFramesTracksAllocations) {
  FramePool pool(SmallPlatform(8, 8));
  pool.AllocOn(Tier::kFast);
  pool.AllocOn(Tier::kFast);
  const Pfn p = pool.AllocOn(Tier::kFast);
  pool.Free(p);
  EXPECT_EQ(pool.UsedFrames(Tier::kFast), 2u);
}

}  // namespace
}  // namespace nomad
