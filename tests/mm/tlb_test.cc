// Tests for the set-associative TLB, including the dirty-bit caching
// semantics TPM's correctness depends on.
#include "src/mm/tlb.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(TlbTest, MissThenHit) {
  Tlb tlb(64);
  EXPECT_EQ(tlb.Lookup(5), nullptr);
  tlb.Fill(5, 500, true, false);
  Tlb::Entry* e = tlb.Lookup(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pfn, 500u);
  EXPECT_TRUE(e->writable);
  EXPECT_FALSE(e->dirty);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, InvalidateRemovesEntry) {
  Tlb tlb(64);
  tlb.Fill(5, 500, true, false);
  tlb.Invalidate(5);
  EXPECT_EQ(tlb.Lookup(5), nullptr);
}

TEST(TlbTest, InvalidateOtherVpnIsNoop) {
  Tlb tlb(64);
  tlb.Fill(5, 500, true, false);
  tlb.Invalidate(6);
  EXPECT_NE(tlb.Lookup(5), nullptr);
}

TEST(TlbTest, InvalidateAllFlushes) {
  Tlb tlb(64);
  for (Vpn v = 0; v < 10; v++) {
    tlb.Fill(v, v, true, false);
  }
  tlb.InvalidateAll();
  for (Vpn v = 0; v < 10; v++) {
    EXPECT_EQ(tlb.Lookup(v), nullptr);
  }
}

TEST(TlbTest, RefillSameVpnUpdatesInPlace) {
  Tlb tlb(64);
  tlb.Fill(5, 500, false, false);
  tlb.Fill(5, 500, true, true);  // permission upgrade must not duplicate
  Tlb::Entry* e = tlb.Lookup(5);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->writable);
  EXPECT_TRUE(e->dirty);
  // Invalidate must fully remove it (a duplicate would survive).
  tlb.Invalidate(5);
  EXPECT_EQ(tlb.Lookup(5), nullptr);
}

TEST(TlbTest, SetConflictEvictsLru) {
  // 16 entries, 4 ways -> 4 sets. VPNs congruent mod 4 share a set.
  Tlb tlb(16);
  tlb.Fill(0, 0, true, false);
  tlb.Fill(4, 4, true, false);
  tlb.Fill(8, 8, true, false);
  tlb.Fill(12, 12, true, false);
  tlb.Lookup(0);  // refresh 0 so 4 is the LRU
  tlb.Fill(16, 16, true, false);
  EXPECT_NE(tlb.Lookup(0), nullptr);
  EXPECT_EQ(tlb.Lookup(4), nullptr);  // evicted
  EXPECT_NE(tlb.Lookup(16), nullptr);
}

TEST(TlbTest, DifferentSetsDoNotConflict) {
  Tlb tlb(16);
  for (Vpn v = 0; v < 4; v++) {
    tlb.Fill(v, v, true, false);
  }
  for (Vpn v = 0; v < 4; v++) {
    EXPECT_NE(tlb.Lookup(v), nullptr);
  }
}

TEST(TlbTest, MinimumGeometry) {
  Tlb tlb(1);  // rounds to one set of 4 ways
  tlb.Fill(0, 0, true, false);
  EXPECT_NE(tlb.Lookup(0), nullptr);
  EXPECT_EQ(tlb.num_entries(), 4u);
}

// A dirty cached entry is what allows stores to bypass the PTE dirty bit:
// the simulator must preserve entry->dirty across lookups so MemorySystem
// can implement that rule (TPM shoots down TLBs exactly to prevent it).
TEST(TlbTest, DirtyBitPersistsInEntry) {
  Tlb tlb(64);
  Tlb::Entry& filled = tlb.Fill(9, 900, true, false);
  filled.dirty = true;
  Tlb::Entry* e = tlb.Lookup(9);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->dirty);
}

}  // namespace
}  // namespace nomad
