// Tests for the kswapd reclaim daemon: watermark behaviour, second-chance
// scanning, demotion, and the policy hooks NOMAD uses.
#include "src/mm/kswapd.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages, uint64_t slow_pages) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class KswapdTest : public ::testing::Test {
 protected:
  KswapdTest() : ms_(TestPlatform(64, 256), &engine_), as_(1024) {
    ms_.RegisterCpu(0);
    ms_.pool().SetWatermarks(Tier::kFast, 8, 16);
  }

  Kswapd MakeKswapd(Tier tier = Tier::kFast) {
    Kswapd::Config cfg;
    cfg.tier = tier;
    cfg.scan_batch = 16;
    Kswapd k(&ms_, cfg);
    return k;
  }

  // Fills the fast node below its low watermark.
  void FillFastNode(uint64_t leave_free = 4) {
    const uint64_t n = ms_.pool().FreeFrames(Tier::kFast) - leave_free;
    for (Vpn v = 0; v < n; v++) {
      ms_.MapNewPage(as_, v, Tier::kFast);
    }
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
};

TEST_F(KswapdTest, SleepsWhenWatermarksFine) {
  Kswapd k = MakeKswapd();
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(1);  // one step
  EXPECT_EQ(k.pages_demoted(), 0u);
  // It rescheduled itself at the poll interval.
  EXPECT_GE(engine_.NextTimeOf(id), Kswapd::Config{}.poll_interval);
}

TEST_F(KswapdTest, DemotesUntilHighWatermark) {
  FillFastNode();
  Kswapd k = MakeKswapd();
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(10000000);
  EXPECT_GE(ms_.pool().FreeFrames(Tier::kFast), 16u);
  EXPECT_GT(k.pages_demoted(), 0u);
  // Demoted pages are mapped on the slow node now.
  EXPECT_GT(ms_.pool().UsedFrames(Tier::kSlow), 0u);
}

TEST_F(KswapdTest, SecondChanceSparesAccessedPages) {
  FillFastNode();
  // Touch the oldest pages so their A-bits are set.
  for (Vpn v = 0; v < 8; v++) {
    ms_.Access(0, as_, v, 0, false);
  }
  Kswapd k = MakeKswapd();
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(2000000);
  // The touched pages survived on the fast tier.
  for (Vpn v = 0; v < 8; v++) {
    EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, v)->pfn), Tier::kFast) << "vpn " << v;
  }
}

TEST_F(KswapdTest, ReclaimPageHookOverridesDemotion) {
  FillFastNode();
  uint64_t hook_calls = 0;
  Kswapd k = MakeKswapd();
  k.set_reclaim_page_fn([&](Pfn pfn) {
    hook_calls++;
    // Free outright instead of demoting (a policy could do remap tricks).
    PageFrame f = ms_.pool().frame(pfn);
    ms_.UnmapAndFree(*f.owner(), f.vpn());
    MigrateResult r;
    r.success = true;
    r.cycles = 100;
    return r;
  });
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(10000000);
  EXPECT_GT(hook_calls, 0u);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kSlow), 0u);  // nothing was demoted
}

TEST_F(KswapdTest, PreReclaimRunsBeforeDemotion) {
  // Sacrificial fast pages first (while the node has room), then fill.
  for (Vpn v = 900; v < 932; v++) {
    ms_.MapNewPage(as_, v, Tier::kFast);
  }
  FillFastNode();
  Kswapd k = MakeKswapd();
  k.set_pre_reclaim_fn([&](uint64_t needed, Cycles* cost) -> uint64_t {
    *cost += 100;
    uint64_t freed = 0;
    for (Vpn v = 900; v < 900 + needed && v < 932; v++) {
      if (ms_.PteOf(as_, v) != nullptr && ms_.PteOf(as_, v)->present) {
        ms_.UnmapAndFree(as_, v);
        freed++;
      }
    }
    return freed;
  });
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(10000000);
  EXPECT_GE(ms_.pool().FreeFrames(Tier::kFast), 16u);
  EXPECT_EQ(k.pages_demoted(), 0u);
}

TEST_F(KswapdTest, VictimFnOverridesTailChoice) {
  FillFastNode();
  // Always demote vpn 10's frame first.
  const Pfn preferred = ms_.PteOf(as_, 10)->pfn;
  bool offered = false;
  Kswapd k = MakeKswapd();
  k.set_victim_fn([&]() -> Pfn {
    if (!offered) {
      offered = true;
      return preferred;
    }
    return kInvalidPfn;
  });
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(10000000);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 10)->pfn), Tier::kSlow);
}

TEST_F(KswapdTest, BacksOffWhenDestinationFull) {
  // Tiny slow node: demotion fails quickly.
  Engine engine;
  MemorySystem ms(TestPlatform(64, 4), &engine);
  ms.RegisterCpu(0);
  ms.pool().SetWatermarks(Tier::kFast, 8, 16);
  AddressSpace as(1024);
  for (Vpn v = 0; v < 60; v++) {
    ms.MapNewPage(as, v, Tier::kFast);
  }
  for (Vpn v = 100; v < 104; v++) {
    ms.MapNewPage(as, v, Tier::kSlow);
  }
  Kswapd::Config cfg;
  cfg.tier = Tier::kFast;
  cfg.scan_batch = 8;
  Kswapd k(&ms, cfg);
  const ActorId id = engine.AddActor(&k);
  k.set_actor_id(id);
  engine.Run(5000000);
  EXPECT_GT(k.demote_failures(), 0u);
  // It must not spin forever: it went back to sleep.
  EXPECT_GT(engine.NextTimeOf(id), engine.now());
}

TEST_F(KswapdTest, SlowNodeKswapdWithoutHooksIdles) {
  // Fill the slow node below watermark; without a pre-reclaim hook there
  // is nothing it can do, and it must not crash or spin.
  for (Vpn v = 0; v < 250; v++) {
    ms_.MapNewPage(as_, v, Tier::kSlow);
  }
  ms_.pool().SetWatermarks(Tier::kSlow, 16, 32);
  Kswapd k = MakeKswapd(Tier::kSlow);
  const ActorId id = engine_.AddActor(&k);
  k.set_actor_id(id);
  engine_.Run(2000000);
  EXPECT_EQ(k.pages_demoted(), 0u);
}

}  // namespace
}  // namespace nomad
