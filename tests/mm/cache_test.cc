// Tests for the set-associative LLC model.
#include "src/mm/cache.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(CacheTest, MissThenHit) {
  LastLevelCache llc(64 * 1024);
  EXPECT_FALSE(llc.Access(0x1000));
  EXPECT_TRUE(llc.Access(0x1000));
  EXPECT_EQ(llc.hits(), 1u);
  EXPECT_EQ(llc.misses(), 1u);
}

TEST(CacheTest, SameLineDifferentByteHits) {
  LastLevelCache llc(64 * 1024);
  llc.Access(0x1000);
  EXPECT_TRUE(llc.Access(0x1001));
  EXPECT_TRUE(llc.Access(0x103F));
  EXPECT_FALSE(llc.Access(0x1040));  // next line
}

TEST(CacheTest, CapacityInLines) {
  LastLevelCache llc(16 * 64);  // 16 lines -> one 16-way set
  EXPECT_EQ(llc.capacity_lines(), 16u);
}

TEST(CacheTest, EvictionOnSetOverflow) {
  LastLevelCache llc(16 * 64);  // one set, 16 ways
  for (uint64_t i = 0; i < 16; i++) {
    llc.Access(i * 64);
  }
  llc.Access(16 * 64);  // 17th distinct line evicts the LRU (line 0)
  EXPECT_FALSE(llc.Access(0));
}

TEST(CacheTest, LruKeepsRecentlyUsed) {
  LastLevelCache llc(16 * 64);
  for (uint64_t i = 0; i < 16; i++) {
    llc.Access(i * 64);
  }
  llc.Access(0);         // refresh line 0
  llc.Access(16 * 64);   // evicts line 1, not 0
  EXPECT_TRUE(llc.Access(0));
  EXPECT_FALSE(llc.Access(64));
}

TEST(CacheTest, InvalidatePageDropsAllItsLines) {
  LastLevelCache llc(1 << 20);
  const Pfn pfn = 3;
  for (uint64_t line = 0; line < kPageSize / kCacheLineSize; line++) {
    llc.Access(pfn * kPageSize + line * kCacheLineSize);
  }
  llc.InvalidatePage(pfn);
  EXPECT_FALSE(llc.Access(pfn * kPageSize));
  EXPECT_FALSE(llc.Access(pfn * kPageSize + 63 * kCacheLineSize));
}

TEST(CacheTest, InvalidatePageLeavesOtherPages) {
  LastLevelCache llc(1 << 20);
  llc.Access(5 * kPageSize);
  llc.InvalidatePage(3);
  EXPECT_TRUE(llc.Access(5 * kPageSize));
}

TEST(CacheTest, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  LastLevelCache llc(1 << 20);  // 16K lines
  for (int round = 0; round < 2; round++) {
    for (uint64_t i = 0; i < 1000; i++) {
      llc.Access(i * 64);
    }
  }
  EXPECT_EQ(llc.misses(), 1000u);
  EXPECT_EQ(llc.hits(), 1000u);
}

TEST(CacheTest, StreamLargerThanCacheKeepsMissing) {
  LastLevelCache llc(16 * 64 * 4);  // 64 lines
  for (int round = 0; round < 3; round++) {
    for (uint64_t i = 0; i < 1024; i++) {
      llc.Access(i * 64);
    }
  }
  // A cyclic stream 16x the cache size under LRU misses every time.
  EXPECT_EQ(llc.hits(), 0u);
}

}  // namespace
}  // namespace nomad
