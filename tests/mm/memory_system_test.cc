// Tests for MemorySystem: the access data path, hardware A/D-bit
// semantics, fault dispatch, TLB shootdowns and migration windows.
#include "src/mm/memory_system.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 256, uint64_t slow_pages = 256) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : ms_(TestPlatform(), &engine_), as_(1024) {
    ms_.RegisterCpu(kCpu);
  }

  static constexpr ActorId kCpu = 0;

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
};

TEST_F(MemorySystemTest, MapNewPagePrefersFastTier) {
  const Pfn pfn = ms_.MapNewPage(as_, 0);
  ASSERT_NE(pfn, kInvalidPfn);
  EXPECT_EQ(ms_.pool().TierOf(pfn), Tier::kFast);
  const Pte* pte = ms_.PteOf(as_, 0);
  ASSERT_NE(pte, nullptr);
  EXPECT_TRUE(pte->present);
  EXPECT_TRUE(pte->writable);
  EXPECT_EQ(pte->pfn, pfn);
  EXPECT_EQ(ms_.pool().frame(pfn).owner(), &as_);
  EXPECT_EQ(ms_.pool().frame(pfn).lru(), LruList::kInactive);
}

TEST_F(MemorySystemTest, MapNewPageSpillsWhenFastFull) {
  for (Vpn v = 0; v < 256; v++) {
    ms_.MapNewPage(as_, v);
  }
  const Pfn spilled = ms_.MapNewPage(as_, 300);
  EXPECT_EQ(ms_.pool().TierOf(spilled), Tier::kSlow);
}

TEST_F(MemorySystemTest, AccessChargesFastLatency) {
  ms_.MapNewPage(as_, 0);
  AccessInfo info;
  const Cycles c = ms_.Access(kCpu, as_, 0, 0, false, 1, &info);
  EXPECT_FALSE(info.llc_hit);
  EXPECT_FALSE(info.tlb_hit);
  EXPECT_EQ(info.tier, Tier::kFast);
  // Walk + device read latency at least.
  EXPECT_GE(c, ms_.platform().tiers[0].read_latency);
}

TEST_F(MemorySystemTest, RepeatAccessHitsLlcAndTlb) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);
  AccessInfo info;
  const Cycles c = ms_.Access(kCpu, as_, 0, 0, false, 1, &info);
  EXPECT_TRUE(info.llc_hit);
  EXPECT_TRUE(info.tlb_hit);
  EXPECT_LE(c, ms_.platform().costs.llc_hit + 5);
}

TEST_F(MemorySystemTest, MlpDividesDeviceLatency) {
  ms_.MapNewPage(as_, 0);
  ms_.MapNewPage(as_, 1);
  AccessInfo a1, a8;
  ms_.Access(kCpu, as_, 0, 0, false, 1, &a1);
  ms_.Access(kCpu, as_, 1, 0, false, 8, &a8);
  EXPECT_GT(a1.latency, a8.latency);
}

TEST_F(MemorySystemTest, DemandFaultMapsUnmappedPage) {
  AccessInfo info;
  ms_.Access(kCpu, as_, 7, 0, false, 4, &info);
  EXPECT_TRUE(info.took_fault);
  EXPECT_EQ(ms_.counters().Get("fault.demand"), 1u);
  const Pte* pte = ms_.PteOf(as_, 7);
  ASSERT_NE(pte, nullptr);
  EXPECT_TRUE(pte->present);
}

TEST_F(MemorySystemTest, AccessSetsAccessedBit) {
  ms_.MapNewPage(as_, 0);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->accessed);
  ms_.Access(kCpu, as_, 0, 0, false);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->accessed);
}

TEST_F(MemorySystemTest, ReadDoesNotSetDirty) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->dirty);
}

TEST_F(MemorySystemTest, WriteSetsDirty) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, true);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->dirty);
}

// The TPM-critical rule: writes through a dirty cached translation do NOT
// update the PTE; after clearing the PTE dirty bit, a shootdown is required
// for the next write to be recorded.
TEST_F(MemorySystemTest, DirtyTlbEntryAbsorbsWrites) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, true);  // PTE + TLB entry now dirty
  ms_.PteOf(as_, 0)->dirty = false;   // TPM step 1, *without* shootdown
  ms_.Access(kCpu, as_, 0, 0, true);  // write through cached dirty entry
  EXPECT_FALSE(ms_.PteOf(as_, 0)->dirty) << "write bypassed the PTE";
}

TEST_F(MemorySystemTest, ShootdownRestoresDirtyTracking) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, true);
  ms_.PteOf(as_, 0)->dirty = false;
  ms_.TlbShootdown(as_, 0);           // TPM step 2
  ms_.Access(kCpu, as_, 0, 0, true);  // must re-walk and set dirty
  EXPECT_TRUE(ms_.PteOf(as_, 0)->dirty);
}

TEST_F(MemorySystemTest, WriteThroughCleanEntryUpdatesPte) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);  // fill TLB with clean entry
  EXPECT_FALSE(ms_.PteOf(as_, 0)->dirty);
  ms_.Access(kCpu, as_, 0, 0, true);  // microcode assist path
  EXPECT_TRUE(ms_.PteOf(as_, 0)->dirty);
}

TEST_F(MemorySystemTest, HintFaultInvokesHandler) {
  ms_.MapNewPage(as_, 0);
  ms_.PteOf(as_, 0)->prot_none = true;
  int calls = 0;
  ms_.set_hint_fault_handler([&](ActorId, AddressSpace& as, Vpn vpn) -> Cycles {
    calls++;
    ms_.PteOf(as, vpn)->prot_none = false;
    return 123;
  });
  AccessInfo info;
  ms_.Access(kCpu, as_, 0, 0, false, 4, &info);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(info.took_fault);
  EXPECT_EQ(ms_.counters().Get("fault.hint"), 1u);
}

TEST_F(MemorySystemTest, HintFaultDefaultClearsProtNone) {
  ms_.MapNewPage(as_, 0);
  ms_.PteOf(as_, 0)->prot_none = true;
  ms_.Access(kCpu, as_, 0, 0, false);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
}

TEST_F(MemorySystemTest, WriteProtectFaultInvokesHandler) {
  ms_.MapNewPage(as_, 0, Tier::kFast, /*writable=*/false);
  int calls = 0;
  ms_.set_write_fault_handler([&](ActorId, AddressSpace& as, Vpn vpn) -> Cycles {
    calls++;
    ms_.PteOf(as, vpn)->writable = true;
    return 50;
  });
  ms_.Access(kCpu, as_, 0, 0, true);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ms_.counters().Get("fault.write_protect"), 1u);
}

TEST_F(MemorySystemTest, ReadOnReadOnlyPageTakesNoFault) {
  ms_.MapNewPage(as_, 0, Tier::kFast, /*writable=*/false);
  AccessInfo info;
  ms_.Access(kCpu, as_, 0, 0, false, 4, &info);
  EXPECT_FALSE(info.took_fault);
}

TEST_F(MemorySystemTest, WriteAfterReadOnCachedReadOnlyEntryFaults) {
  ms_.MapNewPage(as_, 0, Tier::kFast, /*writable=*/false);
  ms_.Access(kCpu, as_, 0, 0, false);  // caches a read-only entry
  AccessInfo info;
  ms_.Access(kCpu, as_, 0, 0, true, 4, &info);  // store must still fault
  EXPECT_TRUE(info.took_fault);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->writable);  // default handler restored it
}

TEST_F(MemorySystemTest, ShootdownInvalidatesAllCpusAndPenalizesRemote) {
  ms_.RegisterCpu(1);
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);
  ms_.Access(1, as_, 0, 0, false);
  EXPECT_NE(ms_.tlb(kCpu).Lookup(0), nullptr);
  const Cycles cost = ms_.TlbShootdown(as_, 0);
  EXPECT_EQ(ms_.tlb(kCpu).Lookup(0), nullptr);
  EXPECT_EQ(ms_.tlb(1).Lookup(0), nullptr);
  // Initiator (engine.current()==0 outside a step) pays base + per-cpu.
  EXPECT_GE(cost, ms_.platform().costs.tlb_shootdown_base);
  EXPECT_EQ(ms_.counters().Get("tlb.shootdown"), 1u);
}

TEST_F(MemorySystemTest, MigrationWindowBlocksWalkers) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);
  // Simulate a migration: invalidate the TLB and open a window to t=50000.
  ms_.TlbShootdown(as_, 0);
  ms_.BeginMigrationWindow(as_, 0, 50000);
  AccessInfo info;
  const Cycles c = ms_.Access(kCpu, as_, 0, 0, false, 4, &info);
  EXPECT_GE(c, 50000u);
  EXPECT_EQ(ms_.counters().Get("fault.migration_block"), 1u);
}

TEST_F(MemorySystemTest, MigrationWindowDoesNotBlockTlbHits) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);  // TLB filled
  ms_.BeginMigrationWindow(as_, 0, 50000);
  const Cycles c = ms_.Access(kCpu, as_, 0, 0, false);
  EXPECT_LT(c, 10000u);  // served from the TLB, no blocking
}

TEST_F(MemorySystemTest, ExpiredWindowDoesNotBlock) {
  ms_.MapNewPage(as_, 0);
  ms_.BeginMigrationWindow(as_, 0, 0);  // already over
  const Cycles c = ms_.Access(kCpu, as_, 0, 0, false);
  EXPECT_LT(c, 10000u);
  EXPECT_EQ(ms_.counters().Get("fault.migration_block"), 0u);
}

TEST_F(MemorySystemTest, UnmapAndFreeReleasesFrame) {
  const Pfn pfn = ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);
  const uint64_t free_before = ms_.pool().FreeFrames(Tier::kFast);
  ms_.UnmapAndFree(as_, 0);
  EXPECT_EQ(ms_.pool().FreeFrames(Tier::kFast), free_before + 1);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->present);
  EXPECT_EQ(ms_.tlb(kCpu).Lookup(0), nullptr);
  EXPECT_EQ(ms_.pool().frame(pfn).lru(), LruList::kNone);
}

TEST_F(MemorySystemTest, ReserveFastFramesShrinksFreePool) {
  const uint64_t before = ms_.pool().FreeFrames(Tier::kFast);
  ms_.ReserveFastFrames(10);
  EXPECT_EQ(ms_.pool().FreeFrames(Tier::kFast), before - 10);
}

TEST_F(MemorySystemTest, KswapdWakerFiresBelowLowWatermark) {
  ms_.pool().SetWatermarks(Tier::kFast, 200, 220);
  std::vector<Tier> wakes;
  ms_.set_kswapd_waker([&](Tier t) { wakes.push_back(t); });
  for (Vpn v = 0; v < 100; v++) {
    ms_.MapNewPage(as_, v);
  }
  EXPECT_FALSE(wakes.empty());
  EXPECT_EQ(wakes[0], Tier::kFast);
}

TEST_F(MemorySystemTest, ObserverSeesAccesses) {
  ms_.MapNewPage(as_, 0);
  int seen = 0;
  bool last_write = false;
  ms_.add_access_observer(
      [&](ActorId, AddressSpace&, Vpn, uint64_t, bool is_write, bool, bool, Tier) {
        seen++;
        last_write = is_write;
      });
  ms_.Access(kCpu, as_, 0, 0, false);
  ms_.Access(kCpu, as_, 0, 64, true);
  EXPECT_EQ(seen, 2);
  EXPECT_TRUE(last_write);
}

TEST_F(MemorySystemTest, UserBytesAccumulate) {
  ms_.MapNewPage(as_, 0);
  ms_.Access(kCpu, as_, 0, 0, false);
  ms_.Access(kCpu, as_, 0, 64, false);
  EXPECT_EQ(ms_.user_bytes(), 2 * kCacheLineSize);
}

TEST_F(MemorySystemTest, SlowTierAccessCostsMore) {
  AddressSpace as2(16);
  ms_.MapNewPage(as2, 0, Tier::kSlow);
  ms_.MapNewPage(as2, 1, Tier::kFast);
  AccessInfo slow, fast;
  ms_.Access(kCpu, as2, 0, 0, false, 1, &slow);
  ms_.Access(kCpu, as2, 1, 0, false, 1, &fast);
  EXPECT_EQ(slow.tier, Tier::kSlow);
  EXPECT_GT(slow.latency, fast.latency);
}

}  // namespace
}  // namespace nomad
