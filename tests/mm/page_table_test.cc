// Tests for the two-level page table.
#include "src/mm/page_table.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(PageTableTest, LookupOfUnmappedIsNull) {
  PageTable pt;
  EXPECT_EQ(pt.Lookup(0), nullptr);
  EXPECT_EQ(pt.Lookup(12345678), nullptr);
}

TEST(PageTableTest, EnsureCreatesEntry) {
  PageTable pt;
  Pte& pte = pt.Ensure(7);
  pte.pfn = 42;
  pte.present = true;
  ASSERT_NE(pt.Lookup(7), nullptr);
  EXPECT_EQ(pt.Lookup(7)->pfn, 42u);
}

TEST(PageTableTest, EntriesDefaultToNotPresent) {
  PageTable pt;
  pt.Ensure(100);
  // Neighbors in the same leaf exist but are not present.
  ASSERT_NE(pt.Lookup(101), nullptr);
  EXPECT_FALSE(pt.Lookup(101)->present);
}

TEST(PageTableTest, LeavesAllocatedLazily) {
  PageTable pt;
  EXPECT_EQ(pt.NumLeaves(), 0u);
  pt.Ensure(0);
  EXPECT_EQ(pt.NumLeaves(), 1u);
  pt.Ensure(511);  // same leaf
  EXPECT_EQ(pt.NumLeaves(), 1u);
  pt.Ensure(512);  // next leaf
  EXPECT_EQ(pt.NumLeaves(), 2u);
}

TEST(PageTableTest, SparseVpnsDoNotAllocateIntermediateLeaves) {
  PageTable pt;
  pt.Ensure(0);
  pt.Ensure(1000000);
  EXPECT_EQ(pt.NumLeaves(), 2u);
  EXPECT_EQ(pt.Lookup(500000), nullptr);
}

TEST(PageTableTest, PointerStableAcrossEnsures) {
  PageTable pt;
  Pte* first = &pt.Ensure(3);
  first->pfn = 9;
  for (Vpn v = 1000; v < 2000; v++) {
    pt.Ensure(v);
  }
  EXPECT_EQ(pt.Lookup(3), first);
  EXPECT_EQ(first->pfn, 9u);
}

TEST(PageTableTest, ConstLookupMatches) {
  PageTable pt;
  pt.Ensure(5).present = true;
  const PageTable& cpt = pt;
  ASSERT_NE(cpt.Lookup(5), nullptr);
  EXPECT_TRUE(cpt.Lookup(5)->present);
  EXPECT_EQ(cpt.Lookup(5000), nullptr);
}

TEST(PageTableTest, AllPteBitsRoundTrip) {
  PageTable pt;
  Pte& pte = pt.Ensure(1);
  pte.present = true;
  pte.writable = true;
  pte.accessed = true;
  pte.dirty = true;
  pte.prot_none = true;
  pte.shadow_rw = true;
  const Pte* read = pt.Lookup(1);
  EXPECT_TRUE(read->present && read->writable && read->accessed && read->dirty &&
              read->prot_none && read->shadow_rw);
}

TEST(PteTest, MappedAndReachable) {
  Pte pte;
  EXPECT_FALSE(pte.MappedAndReachable());
  pte.present = true;
  EXPECT_TRUE(pte.MappedAndReachable());
  pte.prot_none = true;
  EXPECT_FALSE(pte.MappedAndReachable());
}

}  // namespace
}  // namespace nomad
