// Tests for Linux-style synchronous page migration.
#include "src/mm/migrate.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 64, uint64_t slow_pages = 64) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class MigrateTest : public ::testing::Test {
 protected:
  MigrateTest() : ms_(TestPlatform(), &engine_), as_(256) { ms_.RegisterCpu(0); }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
};

TEST_F(MigrateTest, PromoteMovesPageToFast) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  const MigrateResult r = MigratePageSync(ms_, as_, 0, Tier::kFast);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.cycles, 0u);
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_TRUE(pte->present);
  EXPECT_EQ(ms_.pool().TierOf(pte->pfn), Tier::kFast);
  EXPECT_EQ(ms_.counters().Get("migrate.sync_promote"), 1u);
}

TEST_F(MigrateTest, DemoteMovesPageToSlow) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  const MigrateResult r = MigratePageSync(ms_, as_, 0, Tier::kSlow);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kSlow);
}

TEST_F(MigrateTest, OldFrameIsFreed) {
  const Pfn old_pfn = ms_.MapNewPage(as_, 0, Tier::kSlow);
  const uint64_t slow_free = ms_.pool().FreeFrames(Tier::kSlow);
  MigratePageSync(ms_, as_, 0, Tier::kFast);
  EXPECT_EQ(ms_.pool().FreeFrames(Tier::kSlow), slow_free + 1);
  EXPECT_FALSE(ms_.pool().frame(old_pfn).in_use());
}

TEST_F(MigrateTest, PreservesPermissionsAndDirty) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.Access(0, as_, 0, 0, true);  // dirty it
  MigratePageSync(ms_, as_, 0, Tier::kFast);
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_TRUE(pte->writable);
  EXPECT_TRUE(pte->dirty);
}

TEST_F(MigrateTest, PreservesLruTemperature) {
  const Pfn pfn = ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.lru(Tier::kSlow).ActivateNow(pfn);
  MigratePageSync(ms_, as_, 0, Tier::kFast);
  const Pfn new_pfn = ms_.PteOf(as_, 0)->pfn;
  EXPECT_TRUE(ms_.pool().frame(new_pfn).active());
  EXPECT_EQ(ms_.pool().frame(new_pfn).lru(), LruList::kActive);
}

TEST_F(MigrateTest, ClearsProtNone) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.PteOf(as_, 0)->prot_none = true;
  MigratePageSync(ms_, as_, 0, Tier::kFast);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
}

TEST_F(MigrateTest, InvalidatesTlb) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.Access(0, as_, 0, 0, false);
  EXPECT_NE(ms_.tlb(0).Lookup(0), nullptr);
  MigratePageSync(ms_, as_, 0, Tier::kFast);
  EXPECT_EQ(ms_.tlb(0).Lookup(0), nullptr);
}

TEST_F(MigrateTest, FailsWhenDestinationFull) {
  for (Vpn v = 0; v < 64; v++) {
    ms_.MapNewPage(as_, 100 + v, Tier::kFast);
  }
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  const MigrateResult r = MigratePageSync(ms_, as_, 0, Tier::kFast);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.cycles, 0u);  // wasted work is still charged
  // The page is untouched and still mapped on the slow tier.
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_TRUE(pte->present);
  EXPECT_EQ(ms_.pool().TierOf(pte->pfn), Tier::kSlow);
  EXPECT_EQ(ms_.counters().Get("migrate.sync_fail_nomem"), 1u);
}

TEST_F(MigrateTest, FailsOnUnmappedPage) {
  const MigrateResult r = MigratePageSync(ms_, as_, 5, Tier::kFast);
  EXPECT_FALSE(r.success);
}

TEST_F(MigrateTest, NoopWhenAlreadyOnDestination) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  const MigrateResult r = MigratePageSync(ms_, as_, 0, Tier::kFast);
  EXPECT_FALSE(r.success);
}

TEST_F(MigrateTest, RegistersMigrationWindow) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  const MigrateResult r = MigratePageSync(ms_, as_, 0, Tier::kFast);
  // A concurrent walker (TLB was shot down) must block until the copy ends.
  AccessInfo info;
  const Cycles c = ms_.Access(0, as_, 0, 0, false, 4, &info);
  EXPECT_GE(c, r.cycles - 100);
  EXPECT_EQ(ms_.counters().Get("fault.migration_block"), 1u);
}

TEST_F(MigrateTest, RetryAccumulatesCostAcrossAttempts) {
  for (Vpn v = 0; v < 64; v++) {
    ms_.MapNewPage(as_, 100 + v, Tier::kFast);
  }
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  const MigrateResult once = MigratePageSync(ms_, as_, 0, Tier::kFast);
  // Fresh state for the retry version.
  const MigrateResult retried = MigratePageWithRetry(ms_, as_, 0, Tier::kFast, 10);
  EXPECT_FALSE(retried.success);
  EXPECT_GE(retried.cycles, once.cycles * 9);  // ~10 attempts of wasted work
  EXPECT_EQ(ms_.counters().Get("migrate.sync_retry"), 9u);
}

TEST_F(MigrateTest, RetrySucceedsFirstTryWhenPossible) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  const MigrateResult r = MigratePageWithRetry(ms_, as_, 0, Tier::kFast, 10);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(ms_.counters().Get("migrate.sync_retry"), 0u);
}

TEST_F(MigrateTest, NewFrameCarriesReverseMap) {
  ms_.MapNewPage(as_, 3, Tier::kSlow);
  MigratePageSync(ms_, as_, 3, Tier::kFast);
  const Pfn new_pfn = ms_.PteOf(as_, 3)->pfn;
  EXPECT_EQ(ms_.pool().frame(new_pfn).owner(), &as_);
  EXPECT_EQ(ms_.pool().frame(new_pfn).vpn(), 3u);
}

}  // namespace
}  // namespace nomad
