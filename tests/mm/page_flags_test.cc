// Round-trip and aliasing tests for the packed frame-flags word.
//
// FrameTable stores every frame's hot state in one uint32_t (src/mm/page.h):
// single-bit flags plus two multi-bit fields (LRU list id, TPM abort
// count). The hazard of a packed word is aliasing - a setter clobbering a
// neighboring field - so each test drives one accessor through its full
// range while asserting every OTHER field of the same word is untouched.
#include "src/mm/page.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace nomad {
namespace {

class PageFlagsTest : public ::testing::Test {
 protected:
  void SetUp() override { table_.Resize(kFrames); }

  static constexpr uint64_t kFrames = 8;
  FrameTable table_;
};

// Snapshot of every field PageFrame exposes out of the packed word, for
// whole-word aliasing checks.
struct FlagsSnapshot {
  Tier tier;
  bool in_use, referenced, active, promoted, shadowed, is_shadow;
  bool in_pcq, pcq_primed, in_pending, migrating;
  LruList lru;
  uint8_t tpm_aborts;

  static FlagsSnapshot Of(const PageFrame& f) {
    return {f.tier(),     f.in_use(),     f.referenced(), f.active(),
            f.promoted(), f.shadowed(),   f.is_shadow(),  f.in_pcq(),
            f.pcq_primed(), f.in_pending(), f.migrating(), f.lru(),
            f.tpm_aborts()};
  }

  bool operator==(const FlagsSnapshot&) const = default;
};

TEST_F(PageFlagsTest, FreshFrameIsAllClear) {
  const PageFrame f(&table_, 0);
  EXPECT_EQ(f.tier(), Tier::kFast);
  EXPECT_FALSE(f.in_use());
  EXPECT_FALSE(f.referenced());
  EXPECT_FALSE(f.active());
  EXPECT_FALSE(f.promoted());
  EXPECT_FALSE(f.shadowed());
  EXPECT_FALSE(f.is_shadow());
  EXPECT_FALSE(f.in_pcq());
  EXPECT_FALSE(f.pcq_primed());
  EXPECT_FALSE(f.in_pending());
  EXPECT_FALSE(f.migrating());
  EXPECT_EQ(f.lru(), LruList::kNone);
  EXPECT_EQ(f.tpm_aborts(), 0);
}

TEST_F(PageFlagsTest, BooleanFlagsRoundTripWithoutAliasing) {
  PageFrame f(&table_, 1);
  // Give the neighbors distinctive values so a clobber is visible.
  f.set_tier(Tier::kSlow);
  f.set_lru(LruList::kActive);
  f.set_tpm_aborts(0xA5);

  struct Bit {
    void (PageFrame::*set)(bool);
    bool (PageFrame::*get)() const;
  };
  const Bit bits[] = {
      {&PageFrame::set_in_use, &PageFrame::in_use},
      {&PageFrame::set_referenced, &PageFrame::referenced},
      {&PageFrame::set_active, &PageFrame::active},
      {&PageFrame::set_promoted, &PageFrame::promoted},
      {&PageFrame::set_shadowed, &PageFrame::shadowed},
      {&PageFrame::set_is_shadow, &PageFrame::is_shadow},
      {&PageFrame::set_in_pcq, &PageFrame::in_pcq},
      {&PageFrame::set_pcq_primed, &PageFrame::pcq_primed},
      {&PageFrame::set_in_pending, &PageFrame::in_pending},
      {&PageFrame::set_migrating, &PageFrame::migrating},
  };
  for (const Bit& b : bits) {
    FlagsSnapshot before = FlagsSnapshot::Of(f);
    (f.*b.set)(true);
    EXPECT_TRUE((f.*b.get)());
    // Everything except the toggled bit must be unchanged.
    FlagsSnapshot after = FlagsSnapshot::Of(f);
    EXPECT_EQ(after.tier, before.tier);
    EXPECT_EQ(after.lru, before.lru);
    EXPECT_EQ(after.tpm_aborts, before.tpm_aborts);
    (f.*b.set)(false);
    EXPECT_FALSE((f.*b.get)());
    EXPECT_EQ(FlagsSnapshot::Of(f), before);
  }
}

TEST_F(PageFlagsTest, LruFieldCoversAllValuesWithoutAliasing) {
  PageFrame f(&table_, 2);
  f.set_referenced(true);
  f.set_migrating(true);
  f.set_tpm_aborts(0xFF);
  for (LruList l : {LruList::kInactive, LruList::kActive, LruList::kNone}) {
    f.set_lru(l);
    EXPECT_EQ(f.lru(), l);
    EXPECT_TRUE(f.referenced());
    EXPECT_TRUE(f.migrating());
    EXPECT_EQ(f.tpm_aborts(), 0xFF);
  }
}

TEST_F(PageFlagsTest, TpmAbortsCoversFullRangeWithoutAliasing) {
  PageFrame f(&table_, 3);
  f.set_lru(LruList::kActive);
  f.set_shadowed(true);
  for (int v : {0, 1, 0x7F, 0x80, 0xFF}) {
    f.set_tpm_aborts(static_cast<uint8_t>(v));
    EXPECT_EQ(f.tpm_aborts(), v);
    EXPECT_EQ(f.lru(), LruList::kActive);
    EXPECT_TRUE(f.shadowed());
  }
  // bump saturates modulo 256 by construction (uint8_t cast).
  f.set_tpm_aborts(0xFF);
  f.bump_tpm_aborts();
  EXPECT_EQ(f.tpm_aborts(), 0);
  EXPECT_EQ(f.lru(), LruList::kActive);  // the wrap must not carry out
}

TEST_F(PageFlagsTest, FramesDoNotAliasEachOther) {
  PageFrame a(&table_, 4);
  PageFrame b(&table_, 5);
  a.set_active(true);
  a.set_tpm_aborts(7);
  EXPECT_FALSE(b.active());
  EXPECT_EQ(b.tpm_aborts(), 0);
  b.set_lru(LruList::kInactive);
  EXPECT_EQ(a.lru(), LruList::kNone);
}

TEST_F(PageFlagsTest, ResetStatePreservesIdentityOnly) {
  PageFrame f(&table_, 6);
  f.set_tier(Tier::kSlow);
  f.set_in_use(true);
  f.set_referenced(true);
  f.set_active(true);
  f.set_migrating(true);
  f.set_lru(LruList::kActive);
  f.set_tpm_aborts(9);
  f.set_vpn(1234);
  f.set_extra_mappers(2);
  f.set_lru_prev(1);
  f.set_lru_next(2);

  f.ResetState();

  EXPECT_EQ(f.tier(), Tier::kSlow);  // identity survives
  EXPECT_TRUE(f.in_use());
  EXPECT_FALSE(f.referenced());
  EXPECT_FALSE(f.active());
  EXPECT_FALSE(f.migrating());
  EXPECT_EQ(f.lru(), LruList::kNone);
  EXPECT_EQ(f.tpm_aborts(), 0);
  EXPECT_EQ(f.owner(), nullptr);
  EXPECT_EQ(f.vpn(), kInvalidVpn);
  EXPECT_EQ(f.extra_mappers(), 0u);
  EXPECT_EQ(f.lru_prev(), kInvalidPfn);
  EXPECT_EQ(f.lru_next(), kInvalidPfn);
}

TEST_F(PageFlagsTest, FlagsDataViewMatchesAccessors) {
  PageFrame f(&table_, 7);
  f.set_in_use(true);
  f.set_active(true);
  const uint32_t w = table_.flags_data()[7];
  EXPECT_NE(w & frame_flags::kInUse, 0u);
  EXPECT_NE(w & frame_flags::kActive, 0u);
  EXPECT_EQ(w & frame_flags::kReferenced, 0u);
}

TEST_F(PageFlagsTest, BytesPerFrameMatchesDeclaredArrays) {
  // 4 (flags) + 8 (owner) + 8 (vpn) + 4 (generation) + 4 (extra_mappers)
  // + 16 (lru links) = 44: the number bench_throughput reports as
  // metadata_bytes_per_page.
  EXPECT_EQ(FrameTable::BytesPerFrame(), 44u);
}

}  // namespace
}  // namespace nomad
