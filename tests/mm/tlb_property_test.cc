// Property-based TLB tests: a set-associative TLB must behave like a
// cache - never returning a stale translation - under random fill /
// invalidate / lookup sequences, across geometries and seeds.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "src/mm/tlb.h"
#include "src/sim/rng.h"

namespace nomad {
namespace {

struct Geometry {
  size_t entries;
  uint64_t seed;
};

class TlbFuzz : public ::testing::TestWithParam<Geometry> {};

TEST_P(TlbFuzz, NeverReturnsStaleTranslations) {
  Tlb tlb(GetParam().entries);
  Rng rng(GetParam().seed);
  // Reference: the authoritative translation for each VPN. The TLB may
  // forget entries (capacity), but whatever it returns must match the
  // last Fill for that VPN and postdate any Invalidate.
  std::map<Vpn, std::tuple<Pfn, bool, bool>> authoritative;

  for (int op = 0; op < 30000; op++) {
    const Vpn vpn = rng.Below(256);
    const double a = rng.NextDouble();
    if (a < 0.4) {
      const Pfn pfn = rng.Below(1 << 20);
      const bool writable = rng.Chance(0.5);
      const bool dirty = rng.Chance(0.3);
      tlb.Fill(vpn, pfn, writable, dirty);
      authoritative[vpn] = {pfn, writable, dirty};
    } else if (a < 0.5) {
      tlb.Invalidate(vpn);
      authoritative.erase(vpn);
    } else if (a < 0.52) {
      tlb.InvalidateAll();
      authoritative.clear();
    } else {
      Tlb::Entry* e = tlb.Lookup(vpn);
      if (e != nullptr) {
        auto it = authoritative.find(vpn);
        ASSERT_NE(it, authoritative.end())
            << "TLB returned an entry for an invalidated vpn " << vpn;
        const auto [pfn, writable, fill_dirty] = it->second;
        ASSERT_EQ(e->pfn, pfn);
        ASSERT_EQ(e->writable, writable);
        // The dirty bit may have been upgraded in place by the MMU, never
        // silently downgraded.
        ASSERT_GE(e->dirty, fill_dirty);
      }
      // A miss is always legal (capacity evictions).
    }
  }
}

// Hit-rate sanity: a working set no larger than one set's worth of ways
// per set must always hit after warm-up.
TEST_P(TlbFuzz, SmallWorkingSetAlwaysHits) {
  Tlb tlb(GetParam().entries);
  const size_t sets = GetParam().entries / 4 == 0 ? 1 : GetParam().entries / 4;
  // One vpn per set: no conflicts possible.
  std::vector<Vpn> vpns;
  for (size_t s = 0; s < std::min<size_t>(sets, 16); s++) {
    vpns.push_back(s);
  }
  for (Vpn v : vpns) {
    tlb.Fill(v, v + 100, true, false);
  }
  for (int round = 0; round < 10; round++) {
    for (Vpn v : vpns) {
      ASSERT_NE(tlb.Lookup(v), nullptr) << "vpn " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, TlbFuzz,
                         ::testing::Values(Geometry{4, 1}, Geometry{16, 2},
                                           Geometry{64, 3}, Geometry{256, 4},
                                           Geometry{1536, 5}, Geometry{64, 77}));

}  // namespace
}  // namespace nomad
