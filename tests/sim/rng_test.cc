// Tests for the deterministic PRNG.
#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace nomad {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(42);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; i++) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(77);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kDraws; i++) {
    hist[rng.Below(kBuckets)]++;
  }
  for (uint64_t b = 0; b < kBuckets; b++) {
    EXPECT_NEAR(hist[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; i++) {
    hits += rng.Chance(0.3);
  }
  EXPECT_NEAR(hits, 30000, 1500);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

}  // namespace
}  // namespace nomad
