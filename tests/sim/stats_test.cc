// Tests for counters, latency histograms and windowed bandwidth series.
#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(CounterSetTest, GetOfUnknownIsZero) {
  CounterSet c;
  EXPECT_EQ(c.Get("nope"), 0u);
}

TEST(CounterSetTest, AddAndAtAccumulate) {
  CounterSet c;
  c.Add("x", 3);
  c.At("x") += 4;
  EXPECT_EQ(c.Get("x"), 7u);
}

TEST(CounterSetTest, ResetClears) {
  CounterSet c;
  c.Add("x", 1);
  c.Reset();
  EXPECT_EQ(c.Get("x"), 0u);
  EXPECT_TRUE(c.All().empty());
}

TEST(CounterSetTest, ToStringSortedByName) {
  CounterSet c;
  c.Add("b", 2);
  c.Add("a", 1);
  EXPECT_EQ(c.ToString(), "a=1\nb=2\n");
}

TEST(LatencyHistogramTest, MeanIsExact) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(300);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Max(), 300u);
}

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(LatencyHistogramTest, QuantileBracketsValues) {
  LatencyHistogram h;
  for (int i = 0; i < 99; i++) {
    h.Record(100);
  }
  h.Record(100000);
  // p50 must sit in the bucket containing 100 (i.e. (64,128]).
  EXPECT_GE(h.Quantile(0.5), 64u);
  EXPECT_LE(h.Quantile(0.5), 128u);
  // The maximum quantile must be in the large bucket.
  EXPECT_GE(h.Quantile(1.0), 65536u);
}

TEST(LatencyHistogramTest, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.Record(10);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
  EXPECT_EQ(a.Max(), 30u);
}

TEST(LatencyHistogramTest, ResetZeroes) {
  LatencyHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(LatencyHistogramTest, ZeroLatencyRecorded) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(WindowedSeriesTest, RecordsIntoCorrectWindow) {
  WindowedSeries s(1000);
  s.Record(0, 64);
  s.Record(999, 64);
  s.Record(1000, 64);
  ASSERT_EQ(s.NumWindows(), 2u);
  EXPECT_EQ(s.windows()[0], 128u);
  EXPECT_EQ(s.windows()[1], 64u);
}

TEST(WindowedSeriesTest, BandwidthPerWindow) {
  WindowedSeries s(100);
  s.Record(0, 50);
  EXPECT_DOUBLE_EQ(s.BandwidthAt(0), 0.5);
  EXPECT_DOUBLE_EQ(s.BandwidthAt(7), 0.0);  // out of range
}

TEST(WindowedSeriesTest, MeanBandwidthOverRange) {
  WindowedSeries s(100);
  s.Record(0, 100);    // window 0
  s.Record(150, 300);  // window 1
  EXPECT_DOUBLE_EQ(s.MeanBandwidth(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(s.MeanBandwidth(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(s.MeanBandwidth(2, 2), 0.0);  // empty range
}

TEST(WindowedSeriesTest, SparseRecordingFillsGapsWithZero) {
  WindowedSeries s(10);
  s.Record(95, 10);
  ASSERT_EQ(s.NumWindows(), 10u);
  EXPECT_EQ(s.windows()[4], 0u);
  EXPECT_EQ(s.windows()[9], 10u);
}

TEST(WindowedSeriesTest, ZeroWindowSizeIsClamped) {
  WindowedSeries s(0);
  s.Record(5, 64);  // must not divide by zero
  EXPECT_GE(s.NumWindows(), 1u);
}

}  // namespace
}  // namespace nomad
