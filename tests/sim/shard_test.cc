// Tests for the deterministic sharding primitives: the router's fixed
// drain order and per-pair FIFO sequencing, and the reusable epoch
// barrier. These are the two properties the parallel engine's whole
// determinism argument rests on (src/sim/shard.h).
#include "src/sim/shard.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace nomad {
namespace {

TEST(ShardRouterTest, DrainsInSenderIdThenSequenceOrder) {
  ShardRouter router(4);
  // Interleave sends in an adversarial real-time order; the receiver must
  // still observe ascending (sender id, seq).
  router.Send(2, 0, kShardMsgUser, 20);
  router.Send(1, 0, kShardMsgUser, 10);
  router.Send(3, 0, kShardMsgUser, 30);
  router.Send(1, 0, kShardMsgUser, 11);
  router.Send(2, 0, kShardMsgUser, 21);
  router.Send(0, 0, kShardMsgUser, 0);

  std::vector<std::pair<uint32_t, uint64_t>> seen;
  router.Drain(0, [&](const ShardMsg& m) { seen.push_back({m.from, m.seq}); });

  const std::vector<std::pair<uint32_t, uint64_t>> want = {
      {0, 0}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {3, 0}};
  EXPECT_EQ(seen, want);
}

TEST(ShardRouterTest, PayloadsSurviveAndPairsAreIndependent) {
  ShardRouter router(3);
  router.Send(0, 1, kShardMsgProgress, 7, 99);
  router.Send(0, 2, kShardMsgDone, 8, 100);
  EXPECT_EQ(router.PendingFor(1), 1u);
  EXPECT_EQ(router.PendingFor(2), 1u);
  EXPECT_EQ(router.PendingFor(0), 0u);

  // Each (sender, receiver) pair numbers its own FIFO from zero.
  router.Drain(1, [&](const ShardMsg& m) {
    EXPECT_EQ(m.from, 0u);
    EXPECT_EQ(m.kind, kShardMsgProgress);
    EXPECT_EQ(m.seq, 0u);
    EXPECT_EQ(m.a, 7u);
    EXPECT_EQ(m.b, 99u);
  });
  router.Drain(2, [&](const ShardMsg& m) {
    EXPECT_EQ(m.kind, kShardMsgDone);
    EXPECT_EQ(m.seq, 0u);
  });
  EXPECT_EQ(router.PendingFor(1), 0u);
  EXPECT_EQ(router.PendingFor(2), 0u);
}

TEST(ShardRouterTest, DrainOrderIndependentOfSendingThread) {
  // Concurrent senders on real threads; after all join, the drained stream
  // must be the canonical order no matter how the OS scheduled them.
  ShardRouter router(4);
  std::vector<std::thread> senders;
  for (uint32_t s = 1; s < 4; s++) {
    senders.emplace_back([&router, s] {
      for (uint64_t i = 0; i < 100; i++) {
        router.Send(s, 0, kShardMsgUser, i);
      }
    });
  }
  for (std::thread& t : senders) {
    t.join();
  }

  uint32_t last_from = 0;
  uint64_t next_seq = 0;
  uint64_t count = 0;
  router.Drain(0, [&](const ShardMsg& m) {
    if (m.from != last_from) {
      EXPECT_GT(m.from, last_from);  // ascending sender ids
      last_from = m.from;
      next_seq = 0;
    }
    EXPECT_EQ(m.seq, next_seq);  // dense per-pair sequence
    EXPECT_EQ(m.a, next_seq);    // FIFO per sender
    next_seq++;
    count++;
  });
  EXPECT_EQ(count, 300u);
}

TEST(ShardBarrierTest, ReleasesAllPartiesAndIsReusable) {
  constexpr uint32_t kParties = 4;
  constexpr int kEpochs = 50;
  ShardBarrier barrier(kParties);
  std::atomic<int> in_phase{0};
  std::atomic<bool> overlap{false};

  // Each thread alternates work/barrier; if the barrier ever released
  // early, two threads would be in different epochs at once and the
  // in_phase counter would exceed the party count mid-epoch.
  std::vector<std::thread> pool;
  for (uint32_t t = 0; t < kParties; t++) {
    pool.emplace_back([&] {
      for (int e = 0; e < kEpochs; e++) {
        in_phase++;
        barrier.ArriveAndWait();
        if (in_phase.load() > static_cast<int>(kParties) * (e + 1)) {
          overlap = true;
        }
        barrier.ArriveAndWait();
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  EXPECT_FALSE(overlap.load());
  EXPECT_EQ(in_phase.load(), static_cast<int>(kParties) * kEpochs);
}

TEST(ShardBarrierTest, SinglePartyNeverBlocks) {
  ShardBarrier barrier(1);
  for (int i = 0; i < 1000; i++) {
    barrier.ArriveAndWait();
  }
}

}  // namespace
}  // namespace nomad
