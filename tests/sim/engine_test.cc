// Tests for the discrete-event engine: scheduling order, virtual time,
// sleep/wake/penalize semantics, and determinism.
#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace nomad {
namespace {

// Records (actor tag, time) pairs so tests can assert interleavings.
struct Trace {
  std::vector<std::pair<char, Cycles>> events;
};

class ScriptedActor : public Actor {
 public:
  ScriptedActor(char tag, Cycles step_cost, int steps, Trace* trace)
      : tag_(tag), step_cost_(step_cost), steps_left_(steps), trace_(trace) {}

  Cycles Step(Engine& engine) override {
    trace_->events.emplace_back(tag_, engine.now());
    steps_left_--;
    return step_cost_;
  }
  std::string name() const override { return std::string(1, tag_); }
  bool done() const override { return steps_left_ <= 0; }

 private:
  char tag_;
  Cycles step_cost_;
  int steps_left_;
  Trace* trace_;
};

TEST(EngineTest, SingleActorAdvancesByStepCost) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 100, 3, &trace);
  engine.AddActor(&a);
  engine.Run(10000);
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events[0].second, 0u);
  EXPECT_EQ(trace.events[1].second, 100u);
  EXPECT_EQ(trace.events[2].second, 200u);
}

TEST(EngineTest, MinTimeActorRunsFirst) {
  Engine engine;
  Trace trace;
  ScriptedActor slow('s', 300, 2, &trace);
  ScriptedActor fast('f', 100, 4, &trace);
  engine.AddActor(&slow);
  engine.AddActor(&fast);
  engine.Run(10000);
  // At t=0 both are ready; the lower id (slow) goes first. Then fast runs
  // at 0, 100, 200 before slow's second step at 300.
  std::vector<std::pair<char, Cycles>> expected = {
      {'s', 0}, {'f', 0}, {'f', 100}, {'f', 200}, {'s', 300}, {'f', 300}};
  EXPECT_EQ(trace.events, expected);
}

TEST(EngineTest, ZeroCostStepStillMakesProgress) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 0, 5, &trace);
  engine.AddActor(&a);
  engine.Run(10000);
  ASSERT_EQ(trace.events.size(), 5u);
  // Each step advances by at least one cycle.
  for (size_t i = 1; i < trace.events.size(); i++) {
    EXPECT_GT(trace.events[i].second, trace.events[i - 1].second);
  }
}

TEST(EngineTest, RunStopsAtDeadline) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 100, 1000, &trace);
  engine.AddActor(&a);
  engine.Run(450);
  // Steps at 0, 100, ..., 400: 5 events; the step scheduled at 500 exceeds
  // the deadline.
  EXPECT_EQ(trace.events.size(), 5u);
}

class SleepyActor : public Actor {
 public:
  explicit SleepyActor(Trace* trace) : trace_(trace) {}
  Cycles Step(Engine& engine) override {
    trace_->events.emplace_back('z', engine.now());
    steps_++;
    if (steps_ == 1) {
      engine.SleepUntil(5000);
      return 0;
    }
    if (steps_ == 2) {
      engine.SleepUntil(kNever);
      return 0;
    }
    return 1;
  }
  std::string name() const override { return "sleepy"; }
  int steps() const { return steps_; }

 private:
  Trace* trace_;
  int steps_ = 0;
};

TEST(EngineTest, SleepUntilDefersNextStep) {
  Engine engine;
  Trace trace;
  SleepyActor a(&trace);
  engine.AddActor(&a);
  engine.Run(100000);
  // Step 1 at t=0, step 2 at t=5000, then asleep forever -> run drains.
  ASSERT_EQ(a.steps(), 2);
  EXPECT_EQ(trace.events[1].second, 5000u);
}

TEST(EngineTest, WakeRousesASleepingActor) {
  Engine engine;
  Trace trace;
  SleepyActor sleeper(&trace);

  class Waker : public Actor {
   public:
    Waker(ActorId target, Cycles when) : target_(target), when_(when) {}
    Cycles Step(Engine& engine) override {
      engine.Wake(target_, when_);
      fired_ = true;
      engine.SleepUntil(kNever);
      return 0;
    }
    std::string name() const override { return "waker"; }
    bool done() const override { return fired_; }

   private:
    ActorId target_;
    Cycles when_;
    bool fired_ = false;
  };

  const ActorId sleeper_id = engine.AddActor(&sleeper);
  Waker waker(sleeper_id, 1000);
  engine.AddActor(&waker, 500);
  engine.Run(100000);
  // Sleeper stepped at 0 then slept to 5000; the waker pulled it to 1000.
  ASSERT_GE(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[1].second, 1000u);
}

TEST(EngineTest, WakeDoesNotDelayABusyActor) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 100, 2, &trace);
  const ActorId id = engine.AddActor(&a);
  engine.Wake(id, 5000);  // later than its scheduled time: no effect
  engine.Run(10000);
  EXPECT_EQ(trace.events[0].second, 0u);
  EXPECT_EQ(trace.events[1].second, 100u);
}

TEST(EngineTest, PenalizePushesActorBack) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 100, 2, &trace);
  const ActorId id = engine.AddActor(&a);
  engine.Penalize(id, 700);
  engine.Run(10000);
  EXPECT_EQ(trace.events[0].second, 700u);
}

TEST(EngineTest, RunUntilPredicateStops) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 10, 1000, &trace);
  engine.AddActor(&a);
  engine.RunUntil([&] { return trace.events.size() >= 7; });
  EXPECT_EQ(trace.events.size(), 7u);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    Trace trace;
    ScriptedActor a('a', 37, 50, &trace);
    ScriptedActor b('b', 53, 50, &trace);
    ScriptedActor c('c', 11, 50, &trace);
    engine.AddActor(&a);
    engine.AddActor(&b);
    engine.AddActor(&c);
    engine.Run(100000);
    return trace.events;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTest, DrainsWhenAllActorsDone) {
  Engine engine;
  Trace trace;
  ScriptedActor a('a', 10, 2, &trace);
  engine.AddActor(&a);
  const Cycles end = engine.Run(1000000);
  EXPECT_LE(end, 20u);
  EXPECT_EQ(trace.events.size(), 2u);
}

}  // namespace
}  // namespace nomad
