#!/usr/bin/env python3
"""Byte-compare fixed-seed nomadsim metrics against checked-in goldens.

The engine-performance work (struct-of-arrays frames, batched access
execution, cached counter slots, ...) is only allowed to move the wall
clock: the simulated results of a fixed-seed run must not change by a
single byte. This test locks that in. Each golden under tests/golden/ is
the full --metrics_out output of

  nomadsim --policy=<policy> --seed=42 --ops=200000

and the check re-runs the same command and compares bytes. A diff means
an "optimization" changed simulated behavior (or exporter formatting):
either find the behavioral leak, or - for an intentional model change -
regenerate the goldens with tests/golden/check_golden_metrics.py
--regenerate and explain the change in the commit.

Usage:
  check_golden_metrics.py --nomadsim PATH [--golden-dir DIR] [--regenerate]
"""

import argparse
import os
import subprocess
import sys
import tempfile

POLICIES = ["nomad", "tpp", "memtis-default"]
SEED = 42
OPS = 200000


def golden_path(golden_dir, policy):
    return os.path.join(golden_dir, f"metrics_{policy}_seed{SEED}_ops{OPS}.json")


def run_sim(nomadsim, policy, out_path):
    cmd = [
        nomadsim,
        f"--policy={policy}",
        f"--seed={SEED}",
        f"--ops={OPS}",
        f"--metrics_out={out_path}",
    ]
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    if not os.path.exists(out_path) or os.path.getsize(out_path) == 0:
        sys.exit(f"FAIL: {' '.join(cmd)} wrote no metrics")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nomadsim", required=True, help="path to the nomadsim binary")
    parser.add_argument("--golden-dir", default=os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--regenerate", action="store_true",
                        help="overwrite the goldens with this build's output")
    args = parser.parse_args()

    failures = []
    for policy in POLICIES:
        golden = golden_path(args.golden_dir, policy)
        if args.regenerate:
            run_sim(args.nomadsim, policy, golden)
            print(f"regenerated {golden}")
            continue
        if not os.path.exists(golden):
            failures.append(f"{policy}: missing golden {golden}")
            continue
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            tmp_path = tmp.name
        try:
            run_sim(args.nomadsim, policy, tmp_path)
            with open(tmp_path, "rb") as f:
                current = f.read()
            with open(golden, "rb") as f:
                expected = f.read()
            if current == expected:
                print(f"ok   {policy}: {len(current)} bytes identical")
            else:
                # Locate the first differing byte for a usable message.
                n = min(len(current), len(expected))
                at = next((i for i in range(n) if current[i] != expected[i]), n)
                failures.append(
                    f"{policy}: metrics differ from {golden} at byte {at} "
                    f"(current {len(current)}B, golden {len(expected)}B)")
        finally:
            os.unlink(tmp_path)

    if failures:
        for f in failures:
            print("FAIL", f)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
