// Tests for the TPP baseline: synchronous fault-driven promotion gated on
// the active list, the multi-fault activation pathology, and kswapd
// demotion under pressure.
#include "src/policy/tpp.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 128, uint64_t slow_pages = 128) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class TppTest : public ::testing::Test {
 protected:
  static constexpr ActorId kCpu = 50;

  TppTest() : ms_(TestPlatform(), &engine_), as_(4096) {
    TppPolicy::Config cfg;
    cfg.scanner.round_interval = 5000;  // aggressive re-arming for tests
    policy_ = std::make_unique<TppPolicy>(cfg);
    policy_->Install(ms_, engine_);
    ms_.RegisterCpu(kCpu);
  }

  // Touches the page once, advancing the engine a little so the scanner
  // can re-arm between touches.
  AccessInfo Touch(Vpn vpn, bool write = false) {
    AccessInfo info;
    ms_.Access(kCpu, as_, vpn, 0, write, 4, &info);
    engine_.Run(engine_.now() + 20000);
    return info;
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  std::unique_ptr<TppPolicy> policy_;
};

TEST_F(TppTest, FirstTouchFaultsButDoesNotPromote) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  engine_.Run(5000);  // let the scanner arm the page
  const AccessInfo info = Touch(0);
  EXPECT_TRUE(info.took_fault);
  EXPECT_EQ(ms_.counters().Get("fault.hint"), 1u);
  EXPECT_EQ(ms_.counters().Get("tpp.promote"), 0u);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kSlow);
}

TEST_F(TppTest, PromotionNeedsActivationThroughPagevec) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  engine_.Run(5000);
  // Repeated faulting touches: referenced -> pagevec requests (batch 15)
  // -> activation -> promotion. This is the up-to-15-fault pathology.
  int faults = 0;
  for (int i = 0; i < 30; i++) {
    if (ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn) == Tier::kFast) {
      break;
    }
    faults += Touch(0).took_fault ? 1 : 0;
  }
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
  EXPECT_EQ(ms_.counters().Get("tpp.promote"), 1u);
  // More than one fault was needed (NOMAD needs exactly one), but no more
  // than Linux's pagevec bound plus the activating and promoting faults.
  EXPECT_GT(faults, 1);
  EXPECT_LE(faults, static_cast<int>(kPagevecSize) + 2);
  EXPECT_GE(ms_.counters().Get("tpp.fault_not_active"), 1u);
}

TEST_F(TppTest, PromotionIsExclusiveNoShadow) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  engine_.Run(5000);
  for (int i = 0; i < 30 && ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn) == Tier::kSlow; i++) {
    Touch(0);
  }
  const Pfn pfn = ms_.PteOf(as_, 0)->pfn;
  ASSERT_EQ(ms_.pool().TierOf(pfn), Tier::kFast);
  EXPECT_FALSE(ms_.pool().frame(pfn).shadowed());
  EXPECT_TRUE(ms_.PteOf(as_, 0)->writable);  // no write-protection games
  // Old slow frame was freed (exclusive tiering).
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kSlow), 0u);
}

TEST_F(TppTest, PromotionBlocksConcurrentAccessors) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  engine_.Run(5000);
  for (int i = 0; i < 30 && ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn) == Tier::kSlow; i++) {
    Touch(0);
  }
  // The last Touch triggered the synchronous migration and registered a
  // blocking window; but since Touch advances time past it, just verify
  // the counter shows promotion happened synchronously in the fault.
  EXPECT_EQ(ms_.counters().Get("migrate.sync_promote"), 1u);
}

TEST_F(TppTest, PromotionSkippedWithoutHeadroom) {
  // Fill fast memory completely so promotion has no headroom.
  PlatformSpec p = TestPlatform(16, 128);
  Engine engine;
  MemorySystem ms(p, &engine);
  TppPolicy::Config cfg;
  cfg.scanner.round_interval = 5000;
  TppPolicy policy(cfg);
  policy.Install(ms, engine);
  ms.RegisterCpu(kCpu);
  AddressSpace as(4096);
  for (Vpn v = 100; v < 116; v++) {
    ms.MapNewPage(as, v, Tier::kFast);
  }
  ms.MapNewPage(as, 0, Tier::kSlow);
  // Pin fast pages as hot so kswapd's demotion cannot help instantly.
  engine.Run(5000);
  for (int i = 0; i < 40; i++) {
    ms.Access(kCpu, as, 0, 0, false);
    for (Vpn v = 100; v < 116; v++) {
      ms.Access(kCpu, as, v, 0, false);
    }
    engine.Run(engine.now() + 20000);
  }
  EXPECT_GT(ms.counters().Get("tpp.promote_skipped_nomem"), 0u);
}

TEST_F(TppTest, KswapdDemotesUnderPressure) {
  // Map cold pages until the fast node is under the low watermark.
  ms_.pool().SetWatermarks(Tier::kFast, 16, 32);
  for (Vpn v = 0; v < 120; v++) {
    ms_.MapNewPage(as_, v, Tier::kFast);
  }
  engine_.Run(engine_.now() + 5000000);
  EXPECT_GE(ms_.pool().FreeFrames(Tier::kFast), 32u);
  EXPECT_GT(ms_.counters().Get("migrate.sync_demote"), 0u);
}

TEST_F(TppTest, FastPagesAreNeverArmed) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  engine_.Run(50000);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
  const AccessInfo info = Touch(0);
  EXPECT_FALSE(info.took_fault);
}

}  // namespace
}  // namespace nomad
