// Tests for the Memtis baseline: background sampling-driven migration.
#include "src/policy/memtis.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(PlatformId id, uint64_t fast_pages = 128,
                          uint64_t slow_pages = 128) {
  PlatformSpec p = MakePlatform(id);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 16 * 64;  // tiny LLC: accesses miss and are sampleable
  return p;
}

class MemtisTest : public ::testing::Test {
 protected:
  static constexpr ActorId kCpu = 10;

  MemtisTest() : ms_(TestPlatform(PlatformId::kC), &engine_), as_(4096) {
    MemtisPolicy::Config cfg = MemtisPolicy::DefaultVariant();
    cfg.pebs.sample_period = 3;  // dense sampling for fast unit tests
    cfg.migrate_interval = 50000;
    policy_ = std::make_unique<MemtisPolicy>(cfg);
    policy_->Install(ms_, engine_);
    ms_.RegisterCpu(kCpu);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  std::unique_ptr<MemtisPolicy> policy_;
};

TEST_F(MemtisTest, HotSlowPageGetsPromotedInBackground) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int round = 0; round < 50; round++) {
    for (int i = 0; i < 20; i++) {
      ms_.Access(kCpu, as_, 0, (i % 64) * 64, false);
    }
    engine_.Run(engine_.now() + 100000);
    if (ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn) == Tier::kFast) {
      break;
    }
  }
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
  EXPECT_GE(ms_.counters().Get("memtis.promote"), 1u);
}

TEST_F(MemtisTest, NoHintFaultsEver) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int i = 0; i < 100; i++) {
    ms_.Access(kCpu, as_, 0, 0, false);
  }
  engine_.Run(engine_.now() + 1000000);
  EXPECT_EQ(ms_.counters().Get("fault.hint"), 0u);
}

TEST_F(MemtisTest, PromotionOffCriticalPath) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  // No single access should ever cost migration-scale latency.
  Cycles max_access = 0;
  for (int round = 0; round < 30; round++) {
    for (int i = 0; i < 10; i++) {
      AccessInfo info;
      ms_.Access(kCpu, as_, 0, (i % 64) * 64, false, 4, &info);
      max_access = std::max(max_access, info.latency);
    }
    engine_.Run(engine_.now() + 100000);
  }
  EXPECT_LT(max_access, 5000u);
}

TEST_F(MemtisTest, ColdPagesDemotedUnderPressure) {
  // Fill fast with cold pages, keep a hot page, then let the migrator
  // demote cold ones when below the watermark.
  ms_.pool().SetWatermarks(Tier::kFast, 16, 32);
  for (Vpn v = 0; v < 126; v++) {
    ms_.MapNewPage(as_, v, Tier::kFast);
  }
  // Sample some cold pages so the migrator knows about them.
  for (Vpn v = 0; v < 30; v++) {
    ms_.Access(kCpu, as_, v, 0, false);
  }
  engine_.Run(engine_.now() + 5000000);
  EXPECT_GT(ms_.counters().Get("memtis.demote") +
                ms_.counters().Get("migrate.sync_demote"),
            0u);
}

TEST(MemtisPlatformTest, NotInstalledOnPlatformD) {
  Engine engine;
  MemorySystem ms(TestPlatform(PlatformId::kD), &engine);
  MemtisPolicy policy;
  policy.Install(ms, engine);  // must be a no-op, not a crash
  ms.RegisterCpu(0);
  AddressSpace as(64);
  ms.MapNewPage(as, 0, Tier::kSlow);
  for (int i = 0; i < 50; i++) {
    ms.Access(0, as, 0, 0, true);
  }
  engine.Run(10000000);
  EXPECT_EQ(ms.counters().Get("memtis.promote"), 0u);
  EXPECT_EQ(ms.pool().TierOf(ms.PteOf(as, 0)->pfn), Tier::kSlow);
}

TEST(MemtisVariantTest, CoolingPeriodsDiffer) {
  EXPECT_EQ(MemtisPolicy::DefaultVariant().pebs.cooling_period, 2000000u);
  EXPECT_EQ(MemtisPolicy::QuickCoolVariant().pebs.cooling_period, 2000u);
  EXPECT_EQ(MemtisPolicy(MemtisPolicy::QuickCoolVariant()).name(), "memtis-quickcool");
}

}  // namespace
}  // namespace nomad
