// Tests for the deterministic fault injector: schedule semantics,
// per-kind stream independence, reproducibility, and trace emission.
#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace nomad {
namespace {

TEST(FaultInjectorTest, DefaultScheduleNeverFires) {
  FaultInjector fi(1234);
  for (int i = 0; i < 1000; i++) {
    EXPECT_FALSE(fi.ShouldInject(FaultKind::kAllocFail));
  }
  EXPECT_EQ(fi.total_injected(), 0u);
  EXPECT_EQ(fi.opportunities(FaultKind::kAllocFail), 1000u);
}

TEST(FaultInjectorTest, TriggerWindowFiresExactly) {
  FaultInjector fi(1);
  FaultSchedule s;
  s.trigger_start = 10;
  s.trigger_count = 3;
  fi.set_schedule(FaultKind::kDirtyWrite, s);
  std::vector<uint64_t> fired;
  for (uint64_t i = 0; i < 20; i++) {
    if (fi.ShouldInject(FaultKind::kDirtyWrite)) {
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<uint64_t>{10, 11, 12}));
  EXPECT_EQ(fi.injected(FaultKind::kDirtyWrite), 3u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  FaultSchedule s;
  s.probability = 0.3;
  std::vector<bool> run1, run2;
  for (int run = 0; run < 2; run++) {
    FaultInjector fi(777);
    fi.set_schedule(FaultKind::kAllocFail, s);
    std::vector<bool>& out = run == 0 ? run1 : run2;
    for (int i = 0; i < 500; i++) {
      out.push_back(fi.ShouldInject(FaultKind::kAllocFail));
    }
  }
  EXPECT_EQ(run1, run2);
  // Sanity: roughly 30% of opportunities fire.
  size_t hits = 0;
  for (bool b : run1) {
    hits += b;
  }
  EXPECT_GT(hits, 100u);
  EXPECT_LT(hits, 200u);
}

TEST(FaultInjectorTest, StreamsAreIndependentAcrossKinds) {
  // Consulting one kind must not perturb another kind's decision sequence.
  FaultSchedule s;
  s.probability = 0.5;
  FaultInjector a(42);
  a.set_schedule(FaultKind::kLatencySpike, s);
  std::vector<bool> alone;
  for (int i = 0; i < 200; i++) {
    alone.push_back(a.ShouldInject(FaultKind::kLatencySpike));
  }

  FaultInjector b(42);
  b.set_schedule(FaultKind::kLatencySpike, s);
  b.set_schedule(FaultKind::kTlbDelay, s);
  std::vector<bool> interleaved;
  for (int i = 0; i < 200; i++) {
    b.ShouldInject(FaultKind::kTlbDelay);  // extra traffic on another kind
    interleaved.push_back(b.ShouldInject(FaultKind::kLatencySpike));
  }
  EXPECT_EQ(alone, interleaved);
}

TEST(FaultInjectorTest, EmitsTraceRecordPerInjection) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "tracing compiled out";
  }
  TraceSink sink(1024);
  FaultInjector fi(9);
  fi.Bind(&sink, nullptr);
  FaultSchedule s;
  s.trigger_start = 2;
  s.trigger_count = 1;
  fi.set_schedule(FaultKind::kPcqOverflow, s);
  for (int i = 0; i < 5; i++) {
    fi.ShouldInject(FaultKind::kPcqOverflow);
  }
  const auto recs = sink.Snapshot();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, TraceEvent::kFaultInject);
  EXPECT_EQ(recs[0].arg, static_cast<uint64_t>(FaultKind::kPcqOverflow));
  EXPECT_EQ(recs[0].value, 2u);  // opportunity index
}

TEST(FaultInjectorTest, LatencyForReturnsScheduledMagnitude) {
  FaultInjector fi(5);
  FaultSchedule s;
  s.probability = 1.0;
  s.latency_cycles = 12345;
  fi.set_schedule(FaultKind::kLatencySpike, s);
  EXPECT_TRUE(fi.ShouldInject(FaultKind::kLatencySpike));
  EXPECT_EQ(fi.LatencyFor(FaultKind::kLatencySpike), 12345u);
}

TEST(FaultInjectorTest, DescribeNamesArmedSchedules) {
  FaultInjector fi(31337);
  FaultSchedule s;
  s.probability = 0.01;
  fi.set_schedule(FaultKind::kAllocFail, s);
  const std::string d = fi.Describe();
  EXPECT_NE(d.find("seed=31337"), std::string::npos);
  EXPECT_NE(d.find("alloc_fail"), std::string::npos);
  // Unarmed kinds are omitted.
  EXPECT_EQ(d.find("dirty_write"), std::string::npos);
}

}  // namespace
}  // namespace nomad
