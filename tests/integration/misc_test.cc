// Miscellaneous cross-cutting coverage: copy-cost charging, Sim's hard
// cap, watermark interplay between kpromote and kswapd, and counters'
// stability across policy reinstallation patterns.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/workload/micro.h"
#include "src/workload/seq_scan.h"

namespace nomad {
namespace {

PlatformSpec SmallPlatform() {
  Scale scale{1024};
  return MakePlatform(PlatformId::kA, scale);
}

TEST(CopyCostTest, CopyCostReflectsSlowerSide) {
  Engine engine;
  MemorySystem ms(SmallPlatform(), &engine);
  // Promotion copies read from the slow tier: the cost must be at least
  // the slow tier's latency plus 4 KB of serialization at its single
  // rate.
  const TierSpec& slow = ms.platform().tiers[1];
  const Cycles promote_copy = ms.CopyPageCost(Tier::kSlow, Tier::kFast);
  EXPECT_GE(promote_copy,
            slow.read_latency + static_cast<Cycles>(4096.0 / slow.read_bw_single));
  // Demotion writes to the slow tier.
  const Cycles demote_copy = ms.CopyPageCost(Tier::kFast, Tier::kSlow);
  EXPECT_GE(demote_copy, slow.write_latency);
}

TEST(CopyCostTest, BackToBackCopiesQueueOnTheDevice) {
  Engine engine;
  MemorySystem ms(SmallPlatform(), &engine);
  const Cycles first = ms.CopyPageCost(Tier::kSlow, Tier::kFast);
  Cycles last = first;
  for (int i = 0; i < 20; i++) {
    last = ms.CopyPageCost(Tier::kSlow, Tier::kFast);
  }
  EXPECT_GT(last, first);  // the channel backlog grows
}

TEST(SimHardCapTest, RunStopsAtVirtualTimeCap) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 1000);
  ScrambledZipfian zipf(100, 0.99, 1);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = ~uint64_t{0} >> 8;  // effectively unbounded
  cfg.wss_start = 0;
  cfg.wss_pages = 100;
  MicroWorkload w(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&w);
  const Cycles end = sim.Run(/*hard_cap=*/1000000);
  EXPECT_LE(end, 1100000u);
  EXPECT_FALSE(w.done());
}

// Under NOMAD, a sequential scan larger than total memory must neither
// OOM nor deadlock: kswapd + shadow reclamation keep allocation alive.
TEST(ScanPressureTest, SequentialScanBiggerThanMemorySurvives) {
  const Scale scale{1024};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  const uint64_t rss_pages = scale.Pages(29.0);  // vs 32 GB total
  Sim sim(platform, PolicyKind::kNomad, rss_pages + 8);
  MapRange(sim.ms(), sim.as(), 0, rss_pages, Tier::kFast);

  SeqScanWorkload::Config cfg;
  cfg.region_start = 0;
  cfg.region_pages = rss_pages;
  cfg.base.total_ops = rss_pages * 4 * 3;
  SeqScanWorkload app(&sim.ms(), &sim.as(), cfg);
  sim.AddWorkload(&app);
  sim.Run();
  EXPECT_TRUE(app.done());
  EXPECT_EQ(sim.ms().counters().Get("oom"), 0u);
  EXPECT_EQ(sim.ms().pool().oom_count(), 0u);
  // Every page is still mapped.
  for (Vpn v = 0; v < rss_pages; v += 97) {
    const Pte* pte = sim.ms().PteOf(sim.as(), v);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present);
  }
}

// kpromote and kswapd must not livelock each other at the watermark:
// promotion waits for headroom, kswapd restores it, promotion proceeds.
TEST(WatermarkInterplayTest, PromotionsResumeAfterReclaim) {
  const Scale scale{2048};  // 16 GB -> 2048 pages per tier
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  Sim sim(platform, PolicyKind::kNomad, 8192);
  // Fill fast memory with cold pages, then run a hot Zipfian set on slow.
  MapRange(sim.ms(), sim.as(), 0, 2000, Tier::kFast);
  MapRange(sim.ms(), sim.as(), 4000, 256, Tier::kSlow);
  ScrambledZipfian zipf(256, 0.99, 2);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 400000;
  cfg.wss_start = 4000;
  cfg.wss_pages = 256;
  MicroWorkload w(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&w);
  sim.Run();
  // Promotions happened despite the initially-full fast node.
  EXPECT_GT(sim.nomad()->tpm_stats().commits, 50u);
  // kswapd made the room.
  EXPECT_GT(sim.ms().counters().Get("migrate.sync_demote") +
                sim.ms().counters().Get("nomad.demote_remap"),
            50u);
}

TEST(AnalyzeShapeTest, TransientAndStableDifferAfterWarmup) {
  // A policy that migrates should show stable >= transient when hot data
  // starts on the slow tier.
  const Scale scale{1024};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  Sim sim(platform, PolicyKind::kNomad, 8192);
  MapRange(sim.ms(), sim.as(), 0, 1024, Tier::kSlow);
  ScrambledZipfian zipf(1024, 0.99, 3);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 300000;
  cfg.wss_start = 0;
  cfg.wss_pages = 1024;
  MicroWorkload w(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&w);
  sim.Run();
  const PhaseReport r = Analyze(sim);
  EXPECT_GT(r.stable_gbps, r.transient_gbps);
}

}  // namespace
}  // namespace nomad
