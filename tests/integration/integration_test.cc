// Cross-module integration tests: full simulations under every policy,
// plus parameterized invariant sweeps (property-style) over policies,
// platforms and read/write mixes.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/workload/micro.h"

namespace nomad {
namespace {

// A small medium-pressure scenario: WSS slightly exceeds what fast memory
// can hold once the kernel reservation and cold RSS are in place.
struct Scenario {
  PolicyKind policy;
  PlatformId platform;
  double write_fraction;
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  std::string n = PolicyKindName(info.param.policy);
  for (char& c : n) {
    if (c == '-') {
      c = '_';
    }
  }
  n += std::string("_") + PlatformName(info.param.platform);
  n += info.param.write_fraction > 0 ? "_write" : "_read";
  return n;
}

class PolicySweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(PolicySweep, RunsToCompletionWithInvariants) {
  const Scenario& sc = GetParam();
  const Scale scale{1024};  // 16 GB -> 4096 pages per tier
  const PlatformSpec platform = MakePlatform(sc.platform, scale);
  if (!PolicySupported(sc.policy, platform)) {
    GTEST_SKIP() << "policy unsupported on this platform";
  }
  Sim sim(platform, sc.policy, 20000);

  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(13.5);
  layout.wss_fast_pages = scale.Pages(2.5);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  MicroWorkload::Config cfg;
  cfg.base.total_ops = 150000;
  cfg.wss_start = wss_start;
  cfg.wss_pages = layout.wss_pages;
  cfg.write_fraction = sc.write_fraction;
  MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&app);
  sim.Run();

  MemorySystem& ms = sim.ms();
  // 1. The workload finished.
  EXPECT_EQ(app.ops_done(), 150000u);
  // 2. No OOM ever (NOMAD must reclaim shadows in time).
  EXPECT_EQ(ms.counters().Get("oom"), 0u);
  EXPECT_EQ(ms.pool().oom_count(), 0u);
  // 3. Frame accounting is consistent: every mapped VPN has a frame that
  //    points back at it.
  uint64_t mapped = 0;
  for (Vpn v = 0; v < sim.as().num_pages(); v++) {
    const Pte* pte = ms.PteOf(sim.as(), v);
    if (pte == nullptr || !pte->present) {
      continue;
    }
    mapped++;
    const PageFrame f = ms.pool().frame(pte->pfn);
    EXPECT_TRUE(f.in_use());
    EXPECT_EQ(f.owner(), &sim.as());
    EXPECT_EQ(f.vpn(), v);
    EXPECT_FALSE(f.is_shadow());
  }
  EXPECT_EQ(mapped, layout.rss_pages);
  // 4. Used = mapped + kernel + shadows (+ in-flight TPM copies).
  const uint64_t used =
      ms.pool().UsedFrames(Tier::kFast) + ms.pool().UsedFrames(Tier::kSlow);
  uint64_t shadows = 0;
  if (sim.nomad() != nullptr) {
    shadows = sim.nomad()->shadows().count();
  }
  EXPECT_GE(used, mapped + layout.kernel_pages + shadows);
  EXPECT_LE(used, mapped + layout.kernel_pages + shadows + 2);
  // 5. Bandwidth was measured.
  const PhaseReport r = Analyze(sim);
  EXPECT_GT(r.overall_gbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(
        Scenario{PolicyKind::kNoMigration, PlatformId::kA, 0.0},
        Scenario{PolicyKind::kTpp, PlatformId::kA, 0.0},
        Scenario{PolicyKind::kTpp, PlatformId::kA, 1.0},
        Scenario{PolicyKind::kMemtisDefault, PlatformId::kA, 0.0},
        Scenario{PolicyKind::kMemtisQuickCool, PlatformId::kA, 1.0},
        Scenario{PolicyKind::kNomad, PlatformId::kA, 0.0},
        Scenario{PolicyKind::kNomad, PlatformId::kA, 1.0},
        Scenario{PolicyKind::kNomad, PlatformId::kC, 0.0},
        Scenario{PolicyKind::kNomad, PlatformId::kD, 1.0},
        Scenario{PolicyKind::kMemtisDefault, PlatformId::kC, 1.0},
        Scenario{PolicyKind::kTpp, PlatformId::kD, 0.0}),
    ScenarioName);

// NOMAD-specific cross-module properties on a thrashing run.
class NomadIntegration : public ::testing::Test {};

TEST_F(NomadIntegration, ShadowConsistencyUnderThrashing) {
  const Scale scale{1024};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  Sim sim(platform, PolicyKind::kNomad, 20000);
  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(13.5);
  layout.wss_fast_pages = scale.Pages(2.5);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 7);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 200000;
  cfg.wss_start = wss_start;
  cfg.wss_pages = layout.wss_pages;
  cfg.write_fraction = 0.2;
  MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&app);
  sim.Run();

  MemorySystem& ms = sim.ms();
  NomadPolicy& nomad = *sim.nomad();
  // Every shadowed master must have a live slow-tier shadow frame, and a
  // read-only or shadow_rw-tracked PTE.
  uint64_t checked = 0;
  for (Vpn v = 0; v < sim.as().num_pages(); v++) {
    const Pte* pte = ms.PteOf(sim.as(), v);
    if (pte == nullptr || !pte->present) {
      continue;
    }
    const PageFrame f = ms.pool().frame(pte->pfn);
    if (!f.shadowed()) {
      continue;
    }
    checked++;
    const Pfn shadow = nomad.shadows().ShadowOf(pte->pfn);
    ASSERT_NE(shadow, kInvalidPfn);
    const PageFrame s = ms.pool().frame(shadow);
    EXPECT_TRUE(s.in_use());
    EXPECT_TRUE(s.is_shadow());
    EXPECT_EQ(s.tier(), Tier::kSlow);
    EXPECT_EQ(s.lru(), LruList::kNone);  // shadows are off the LRU
    // A shadowed master must not be writable (writes must trap).
    EXPECT_FALSE(pte->writable);
  }
  EXPECT_EQ(checked, nomad.shadows().count());
  // Thrashing happened and the machinery was exercised.
  EXPECT_GT(nomad.tpm_stats().commits, 100u);
  EXPECT_GT(ms.counters().Get("nomad.shadow_fault") +
                ms.counters().Get("nomad.shadow_discard"),
            0u);
  // The observability layer saw the same mechanisms the counters did: every
  // committed transaction emitted a kTpmCommit trace record.
  if (kTracingEnabled) {
    EXPECT_GE(ms.trace().CountOf(TraceEvent::kTpmCommit), 1u);
    EXPECT_GT(ms.trace().total_emitted(), 0u);
  }
}

TEST_F(NomadIntegration, WriteHeavyRunAbortsButProgresses) {
  const Scale scale{1024};
  const PlatformSpec platform = MakePlatform(PlatformId::kC, scale);
  Sim sim(platform, PolicyKind::kNomad, 20000);
  MicroLayout layout;
  layout.rss_pages = scale.Pages(20.0);
  layout.wss_pages = scale.Pages(10.0);
  layout.wss_fast_pages = scale.Pages(6.0);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 9);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 200000;
  cfg.wss_start = wss_start;
  cfg.wss_pages = layout.wss_pages;
  cfg.write_fraction = 1.0;
  MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&app);
  sim.Run();

  const auto& stats = sim.nomad()->tpm_stats();
  EXPECT_GT(stats.commits, 0u);
  // Table 4's phenomenon: write-heavy workloads abort transactions.
  EXPECT_GT(stats.aborts, 0u);
  // Aborted copies leave kTpmAbort records; the trace agrees with the
  // policy's own statistics (modulo ring wraparound).
  if (kTracingEnabled) {
    const TraceSink& trace = sim.ms().trace();
    EXPECT_GE(trace.CountOf(TraceEvent::kTpmAbort), 1u);
    if (trace.dropped() == 0) {
      EXPECT_EQ(trace.CountOf(TraceEvent::kTpmAbort), stats.aborts);
      EXPECT_EQ(trace.CountOf(TraceEvent::kTpmCommit), stats.commits);
    }
  }
}

TEST_F(NomadIntegration, DeterministicAcrossRuns) {
  auto run_once = [] {
    const Scale scale{2048};
    const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
    Sim sim(platform, PolicyKind::kNomad, 10000);
    MicroLayout layout;
    layout.rss_pages = scale.Pages(20.0);
    layout.wss_pages = scale.Pages(10.0);
    layout.wss_fast_pages = scale.Pages(6.0);
    layout.kernel_pages = scale.Pages(3.5);
    ScrambledZipfian zipf(layout.wss_pages, 0.99, 3);
    const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
    MicroWorkload::Config cfg;
    cfg.base.total_ops = 50000;
    cfg.wss_start = wss_start;
    cfg.wss_pages = layout.wss_pages;
    cfg.write_fraction = 0.5;
    MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
    sim.AddWorkload(&app);
    const Cycles end = sim.Run();
    return std::make_tuple(end, sim.ms().counters().ToString(),
                           sim.nomad()->tpm_stats().commits,
                           sim.nomad()->tpm_stats().aborts);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nomad
