// Tests for the workload actors: address-range discipline, op accounting,
// and characteristic access patterns.
#include <gtest/gtest.h>

#include <set>

#include "src/workload/liblinear.h"
#include "src/workload/micro.h"
#include "src/workload/pagerank.h"
#include "src/workload/pointer_chase.h"
#include "src/workload/seq_scan.h"
#include "src/workload/ycsb.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 4096 * kPageSize;
  p.tiers[1].capacity_bytes = 4096 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class WorkloadsTest : public ::testing::Test {
 protected:
  WorkloadsTest() : ms_(TestPlatform(), &engine_), as_(8192) {}

  // Runs the actor to completion and returns the page-touch footprint.
  std::pair<Vpn, Vpn> RunAndTrackRange(WorkloadActor* w) {
    Vpn lo = ~Vpn{0}, hi = 0;
    ms_.add_access_observer(
        [&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool, bool, bool, Tier) {
          lo = std::min(lo, vpn);
          hi = std::max(hi, vpn);
        });
    const ActorId id = engine_.AddActor(w);
    w->set_actor_id(id);
    ms_.RegisterCpu(id);
    engine_.RunUntil([&] { return w->done(); });
    return {lo, hi};
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
};

TEST_F(WorkloadsTest, MicroStaysInWss) {
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 5000;
  cfg.wss_start = 100;
  cfg.wss_pages = 50;
  ScrambledZipfian zipf(50, 0.99, 1);
  MicroWorkload w(&ms_, &as_, &zipf, cfg);
  const auto [lo, hi] = RunAndTrackRange(&w);
  EXPECT_GE(lo, 100u);
  EXPECT_LT(hi, 150u);
  EXPECT_EQ(w.ops_done(), 5000u);
  EXPECT_GT(w.latency().count(), 0u);
  EXPECT_GT(w.finish_time(), 0u);
}

TEST_F(WorkloadsTest, MicroWriteFractionProducesWrites) {
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 2000;
  cfg.wss_start = 0;
  cfg.wss_pages = 10;
  cfg.write_fraction = 1.0;
  ScrambledZipfian zipf(10, 0.99, 1);
  MicroWorkload w(&ms_, &as_, &zipf, cfg);
  uint64_t writes = 0;
  ms_.add_access_observer(
      [&](ActorId, AddressSpace&, Vpn, uint64_t, bool is_write, bool, bool, Tier) { writes += is_write; });
  RunAndTrackRange(&w);
  EXPECT_EQ(writes, 2000u);
}

TEST_F(WorkloadsTest, PointerChaseUsesMlpOne) {
  PointerChaseWorkload::Config cfg;
  cfg.base.total_ops = 3000;
  cfg.region_start = 0;
  cfg.block_pages = 32;
  cfg.num_blocks = 8;
  PointerChaseWorkload w(&ms_, &as_, cfg);
  const auto [lo, hi] = RunAndTrackRange(&w);
  EXPECT_LT(hi, 32u * 8u);
  (void)lo;
  // Dependent loads: latency must reflect full (undivided) device latency.
  // Slow-tier pages would be ~854 cycles; everything here is fast-tier
  // (~316) + walk, so the mean must exceed 200 cycles.
  EXPECT_GT(w.latency().Mean(), 200.0);
}

TEST_F(WorkloadsTest, PointerChaseVisitsAllBlocks) {
  PointerChaseWorkload::Config cfg;
  cfg.base.total_ops = 300 * 256;  // many block hops (run length 256)
  cfg.region_start = 0;
  cfg.block_pages = 16;
  cfg.num_blocks = 4;
  PointerChaseWorkload w(&ms_, &as_, cfg);
  std::set<uint64_t> blocks;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool, bool, bool, Tier) {
    blocks.insert(vpn / 16);
  });
  RunAndTrackRange(&w);
  EXPECT_EQ(blocks.size(), 4u);
}

TEST_F(WorkloadsTest, SeqScanSweepsSequentiallyAndWraps) {
  SeqScanWorkload::Config cfg;
  cfg.base.total_ops = 4 * 25;  // lines_per_page=4 -> 25 pages
  cfg.region_start = 10;
  cfg.region_pages = 20;  // wraps after 20 pages
  SeqScanWorkload w(&ms_, &as_, cfg);
  std::vector<Vpn> order;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool, bool, bool, Tier) {
    if (order.empty() || order.back() != vpn) {
      order.push_back(vpn);
    }
  });
  RunAndTrackRange(&w);
  ASSERT_GE(order.size(), 25u);
  EXPECT_EQ(order[0], 10u);
  EXPECT_EQ(order[1], 11u);
  EXPECT_EQ(order[19], 29u);
  EXPECT_EQ(order[20], 10u);  // wrapped
}

TEST_F(WorkloadsTest, PageRankLayoutAndFootprint) {
  PageRankWorkload::Config cfg;
  cfg.vertices = 4096;
  cfg.degree = 20;
  cfg.neighbor_sample = 4;
  cfg.iterations = 2;
  cfg.base.total_ops = 0;  // set by Layout
  const Vpn end = PageRankWorkload::Layout(&cfg, 100);
  EXPECT_EQ(cfg.base.total_ops, 4096u * 2u);
  // 4096 vertices: ranks 8 pages x2, edges 160 pages.
  EXPECT_EQ(end, 100u + 8u + 8u + 160u);

  PageRankWorkload w(&ms_, &as_, cfg);
  const auto [lo, hi] = RunAndTrackRange(&w);
  EXPECT_GE(lo, 100u);
  EXPECT_LT(hi, end);
  EXPECT_EQ(w.ops_done(), 4096u * 2u);
}

TEST_F(WorkloadsTest, PageRankWritesOnlyToRankRegions) {
  PageRankWorkload::Config cfg;
  cfg.vertices = 1024;
  cfg.iterations = 1;
  const Vpn end = PageRankWorkload::Layout(&cfg, 0);
  (void)end;
  const Vpn edges_start = 2 * PageRankWorkload::RankPages(cfg);
  PageRankWorkload w(&ms_, &as_, cfg);
  bool wrote_to_edges = false;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool is_write, bool, bool, Tier) {
    if (is_write && vpn >= edges_start) {
      wrote_to_edges = true;
    }
  });
  RunAndTrackRange(&w);
  EXPECT_FALSE(wrote_to_edges);
}

TEST_F(WorkloadsTest, LiblinearTouchesModelAndData) {
  LiblinearWorkload::Config cfg;
  cfg.samples = 500;
  cfg.epochs = 2;
  cfg.model_pages = 16;
  const Vpn end = LiblinearWorkload::Layout(&cfg, 50);
  // Parallel-SGD mode: one op per sample per epoch.
  EXPECT_EQ(cfg.base.total_ops, 500u * 2u);

  LiblinearWorkload w(&ms_, &as_, cfg);
  uint64_t model_writes = 0, data_reads = 0, data_writes = 0;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool is_write, bool, bool, Tier) {
    if (vpn < 50 + 16) {
      model_writes += is_write;
    } else {
      data_reads += !is_write;
      data_writes += is_write;
    }
  });
  const auto [lo, hi] = RunAndTrackRange(&w);
  EXPECT_GE(lo, 50u);
  EXPECT_LT(hi, end);
  EXPECT_GT(model_writes, 0u);   // weight updates
  EXPECT_GT(data_reads, 0u);     // feature streaming
  EXPECT_EQ(data_writes, 0u);    // the matrix is read-only
}

TEST_F(WorkloadsTest, LiblinearEpochsRevisitSameData) {
  LiblinearWorkload::Config cfg;
  cfg.samples = 100;
  cfg.epochs = 2;
  cfg.model_pages = 4;
  LiblinearWorkload::Layout(&cfg, 0);
  LiblinearWorkload w(&ms_, &as_, cfg);
  std::vector<Vpn> epoch1, epoch2;
  uint64_t ops_seen = 0;
  // One epoch = 100 samples x (8 row lines + 6 features x 2 touches).
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool, bool, bool, Tier) {
    (ops_seen < 100 * 20 ? epoch1 : epoch2).push_back(vpn);
    ops_seen++;
  });
  RunAndTrackRange(&w);
  ASSERT_EQ(epoch1.size(), epoch2.size());
  EXPECT_EQ(epoch1, epoch2);  // deterministic revisit
}

TEST_F(WorkloadsTest, LiblinearCoordinateDescentSweepsModel) {
  LiblinearWorkload::Config cfg;
  cfg.mode = LiblinearWorkload::Mode::kCoordinateDescent;
  cfg.samples = 100;
  cfg.epochs = 1;
  cfg.model_pages = 4;
  LiblinearWorkload::Layout(&cfg, 0);
  EXPECT_EQ(cfg.base.total_ops, 4u * 64u);
  LiblinearWorkload w(&ms_, &as_, cfg);
  // The write stream must sweep model lines in order.
  std::vector<uint64_t> write_lines;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool is_write, bool, bool, Tier) {
    if (is_write && vpn < 4) {
      write_lines.push_back(vpn * 64);
    }
  });
  RunAndTrackRange(&w);
  ASSERT_EQ(write_lines.size(), 4u * 64u);
  EXPECT_EQ(write_lines[0], 0u);
  EXPECT_EQ(write_lines[64], 64u);
}

TEST_F(WorkloadsTest, LiblinearThreadsSliceSamplesDisjointly) {
  // Two workers must stream disjoint data rows but share the model.
  LiblinearWorkload::Config c0, c1;
  for (auto* c : {&c0, &c1}) {
    c->samples = 100;
    c->epochs = 1;
    c->model_pages = 4;
    c->row_lines = 64;  // one page per row: row page = sample id
    c->num_threads = 2;
  }
  c0.thread_index = 0;
  c1.thread_index = 1;
  LiblinearWorkload::Layout(&c0, 0);
  LiblinearWorkload::Layout(&c1, 0);
  std::set<Vpn> rows0, rows1;
  std::set<Vpn>* current = &rows0;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn vpn, uint64_t, bool, bool, bool, Tier) {
    if (vpn >= 4) {
      current->insert(vpn);
    }
  });
  LiblinearWorkload w0(&ms_, &as_, c0);
  RunAndTrackRange(&w0);
  current = &rows1;
  LiblinearWorkload w1(&ms_, &as_, c1);
  RunAndTrackRange(&w1);
  for (Vpn v : rows0) {
    EXPECT_EQ(rows1.count(v), 0u) << "row page " << v << " visited by both";
  }
  EXPECT_EQ(rows0.size() + rows1.size(), 100u);
}

TEST_F(WorkloadsTest, YcsbMixesReadsAndWrites) {
  KvStore::Config kcfg;
  kcfg.record_count = 200;
  KvStore store(kcfg);
  store.Layout(0);
  YcsbWorkload::Config cfg;
  cfg.base.total_ops = 500;
  YcsbWorkload w(&ms_, &as_, &store, cfg);
  uint64_t reads = 0, writes = 0;
  ms_.add_access_observer([&](ActorId, AddressSpace&, Vpn, uint64_t, bool is_write, bool, bool, Tier) {
    (is_write ? writes : reads)++;
  });
  RunAndTrackRange(&w);
  EXPECT_GT(reads, 0u);
  EXPECT_GT(writes, 0u);
  // Workload A is 50/50 over ops; record lines dominate, so read and write
  // line counts are roughly balanced (index probes skew toward reads).
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reads + writes), 0.45, 0.15);
}

TEST_F(WorkloadsTest, BatchRespondsToDoneMidStep) {
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 13;  // not a multiple of the batch size
  cfg.base.batch = 8;
  cfg.wss_start = 0;
  cfg.wss_pages = 4;
  ScrambledZipfian zipf(4, 0.99, 1);
  MicroWorkload w(&ms_, &as_, &zipf, cfg);
  RunAndTrackRange(&w);
  EXPECT_EQ(w.ops_done(), 13u);
}

}  // namespace
}  // namespace nomad
