// Tests for access-trace recording and replay.
#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/workload/micro.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 512 * kPageSize;
  p.tiers[1].capacity_bytes = 512 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

TEST(TraceTest, RecordsAccessesInOrder) {
  Engine engine;
  MemorySystem ms(TestPlatform(), &engine);
  ms.RegisterCpu(0);
  AddressSpace as(64);
  TraceRecorder rec(&ms);
  ms.MapNewPage(as, 3);
  ms.Access(0, as, 3, 128, false);
  ms.Access(0, as, 3, 256, true);
  ASSERT_EQ(rec.records().size(), 2u);
  EXPECT_EQ(rec.records()[0], (TraceRecord{3, 128, 0}));
  EXPECT_EQ(rec.records()[1], (TraceRecord{3, 256, 1}));
}

TEST(TraceTest, CpuFilterSelectsOneThread) {
  Engine engine;
  MemorySystem ms(TestPlatform(), &engine);
  ms.RegisterCpu(0);
  ms.RegisterCpu(1);
  AddressSpace as(64);
  TraceRecorder rec(&ms, /*cpu_filter=*/1);
  ms.MapNewPage(as, 0);
  ms.Access(0, as, 0, 0, false);
  ms.Access(1, as, 0, 64, false);
  ASSERT_EQ(rec.records().size(), 1u);
  EXPECT_EQ(rec.records()[0].offset, 64u);
}

TEST(TraceTest, LoadEmptyInput) {
  std::istringstream empty("");
  EXPECT_TRUE(TraceRecorder::Load(empty).empty());
}

TEST(TraceTest, SaveLoadRoundTrip) {
  Engine engine;
  MemorySystem ms(TestPlatform(), &engine);
  ms.RegisterCpu(0);
  AddressSpace as(64);
  TraceRecorder rec(&ms);
  ms.MapNewPage(as, 1);
  ms.MapNewPage(as, 2);
  ms.Access(0, as, 1, 0, true);
  ms.Access(0, as, 2, 192, false);
  std::ostringstream out;
  rec.Save(out);
  std::istringstream in(out.str());
  const auto loaded = TraceRecorder::Load(in);
  EXPECT_EQ(loaded, rec.records());
}

TEST(TraceTest, ReplayReproducesRecording) {
  // Record a Zipfian run, then replay the trace on a fresh machine and
  // verify the replayed access stream matches the original exactly.
  std::vector<TraceRecord> original;
  {
    Engine engine;
    MemorySystem ms(TestPlatform(), &engine);
    AddressSpace as(512);
    TraceRecorder rec(&ms);
    for (Vpn v = 0; v < 100; v++) {
      ms.MapNewPage(as, v);
    }
    ScrambledZipfian zipf(100, 0.99, 3);
    MicroWorkload::Config cfg;
    cfg.base.total_ops = 500;
    cfg.wss_start = 0;
    cfg.wss_pages = 100;
    cfg.write_fraction = 0.3;
    MicroWorkload w(&ms, &as, &zipf, cfg);
    const ActorId id = engine.AddActor(&w);
    w.set_actor_id(id);
    ms.RegisterCpu(id);
    engine.RunUntil([&] { return w.done(); });
    original = rec.records();
  }
  ASSERT_EQ(original.size(), 500u);

  Engine engine;
  MemorySystem ms(TestPlatform(), &engine);
  AddressSpace as(512);
  TraceRecorder rec(&ms);
  for (Vpn v = 0; v < 100; v++) {
    ms.MapNewPage(as, v);
  }
  TraceReplayWorkload replay(&ms, &as, original);
  const ActorId id = engine.AddActor(&replay);
  replay.set_actor_id(id);
  ms.RegisterCpu(id);
  engine.RunUntil([&] { return replay.done(); });
  EXPECT_EQ(rec.records(), original);
  EXPECT_EQ(replay.ops_done(), 500u);
}

TEST(TraceTest, EmptyTraceReplayIsDoneImmediately) {
  Engine engine;
  MemorySystem ms(TestPlatform(), &engine);
  AddressSpace as(16);
  TraceReplayWorkload replay(&ms, &as, {});
  EXPECT_TRUE(replay.done());
}

}  // namespace
}  // namespace nomad
