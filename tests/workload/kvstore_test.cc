// Tests for the KV store layout and access plans.
#include "src/workload/kvstore.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nomad {
namespace {

struct Touch {
  Vpn vpn;
  uint64_t offset;
  bool write;
  bool operator==(const Touch&) const = default;
};

// Collects the accesses an operation generates.
class Recorder {
 public:
  Cycles operator()(Vpn vpn, uint64_t offset, bool write) {
    touches.push_back({vpn, offset, write});
    return 1;
  }
  std::vector<Touch> touches;
};

KvStore MakeStore(uint64_t records = 1000, Vpn base = 100) {
  KvStore::Config cfg;
  cfg.record_count = records;
  KvStore store(cfg);
  store.Layout(base);
  return store;
}

TEST(KvStoreTest, LayoutComputesDisjointRegions) {
  KvStore::Config cfg;
  cfg.record_count = 1000;  // slots = 2048 -> 4 index pages; heap 250 pages
  KvStore store(cfg);
  const Vpn end = store.Layout(100);
  EXPECT_EQ(store.index_start(), 100u);
  EXPECT_EQ(store.heap_start(), 104u);
  EXPECT_EQ(end, 104u + 250u);
}

TEST(KvStoreTest, GetTouchesIndexThenWholeRecord) {
  KvStore store = MakeStore();
  Recorder rec;
  const Cycles c = store.Get(42, rec);
  // At least 1 index probe + 16 record lines (1 KB / 64 B).
  ASSERT_GE(rec.touches.size(), 17u);
  EXPECT_EQ(c, rec.touches.size());
  // Index probes first, in the index region; all reads.
  EXPECT_GE(rec.touches[0].vpn, store.index_start());
  EXPECT_LT(rec.touches[0].vpn, store.heap_start());
  EXPECT_FALSE(rec.touches[0].write);
  // The record lines are in the heap region, contiguous, reads.
  const size_t probes = rec.touches.size() - 16;
  for (size_t i = probes; i < rec.touches.size(); i++) {
    EXPECT_GE(rec.touches[i].vpn, store.heap_start());
    EXPECT_FALSE(rec.touches[i].write);
  }
}

TEST(KvStoreTest, UpdateWritesWholeRecord) {
  KvStore store = MakeStore();
  Recorder rec;
  store.Update(42, rec);
  int writes = 0;
  for (const Touch& t : rec.touches) {
    writes += t.write;
  }
  EXPECT_EQ(writes, 16);  // the record lines; index probes are reads
}

TEST(KvStoreTest, SameKeySameRecordHome) {
  KvStore store = MakeStore();
  Recorder a, b;
  store.Get(7, a);
  store.Update(7, b);
  EXPECT_EQ(a.touches.back().vpn, b.touches.back().vpn);
  EXPECT_EQ(a.touches.back().offset, b.touches.back().offset);
}

TEST(KvStoreTest, RecordsPackedFourPerPage) {
  KvStore store = MakeStore();
  Recorder r0, r1, r4;
  store.Get(0, r0);
  store.Get(1, r1);
  store.Get(4, r4);
  EXPECT_EQ(r0.touches.back().vpn, r1.touches.back().vpn);   // same page
  EXPECT_NE(r0.touches.back().offset, r1.touches.back().offset);
  EXPECT_EQ(r4.touches.back().vpn, r0.touches.back().vpn + 1);  // next page
}

TEST(KvStoreTest, KeysWrapModuloRecordCount) {
  KvStore store = MakeStore(1000);
  Recorder a, b;
  store.Get(5, a);
  store.Get(1005, b);
  EXPECT_EQ(a.touches.back().vpn, b.touches.back().vpn);
  EXPECT_EQ(a.touches.back().offset, b.touches.back().offset);
}

TEST(KvStoreTest, DeterministicAccessPlans) {
  KvStore s1 = MakeStore();
  KvStore s2 = MakeStore();
  Recorder a, b;
  s1.Get(99, a);
  s2.Get(99, b);
  EXPECT_EQ(a.touches, b.touches);
}

TEST(KvStoreTest, ProbeCountsBounded) {
  KvStore store = MakeStore(10000);
  for (uint64_t key = 0; key < 500; key++) {
    Recorder rec;
    store.Get(key, rec);
    const size_t probes = rec.touches.size() - 16;
    EXPECT_GE(probes, 1u);
    EXPECT_LE(probes, 3u);
  }
}

TEST(KvStoreTest, AllRecordsWithinLayout) {
  KvStore::Config cfg;
  cfg.record_count = 777;  // non-power-of-two, non-multiple of 4
  KvStore store(cfg);
  const Vpn end = store.Layout(0);
  std::set<Vpn> pages;
  for (uint64_t key = 0; key < 777; key++) {
    Recorder rec;
    store.Get(key, rec);
    for (const Touch& t : rec.touches) {
      EXPECT_LT(t.vpn, end);
      pages.insert(t.vpn);
    }
  }
  EXPECT_GT(pages.size(), 100u);  // the heap really is spread over pages
}

}  // namespace
}  // namespace nomad
