// Tests for the Zipfian generators.
#include "src/workload/zipfian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace nomad {
namespace {

TEST(ZipfianRanksTest, DrawsInRange) {
  ZipfianRanks z(100, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(z.Draw(rng), 100u);
  }
}

TEST(ZipfianRanksTest, RankZeroIsHottest) {
  ZipfianRanks z(1000, 0.99);
  Rng rng(2);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 100000; i++) {
    hits[z.Draw(rng)]++;
  }
  // Monotone-ish decay: rank 0 beats rank 10 beats rank 100.
  EXPECT_GT(hits[0], hits[10]);
  EXPECT_GT(hits[10], hits[100]);
  // Skew: the top 10% of ranks should carry well over half the draws.
  int top = 0;
  for (int r = 0; r < 100; r++) {
    top += hits[r];
  }
  EXPECT_GT(top, 60000);
}

TEST(ZipfianRanksTest, ZipfianFrequencyRatio) {
  // P(0)/P(1) should be about 2^theta.
  ZipfianRanks z(100000, 0.99);
  Rng rng(3);
  int h0 = 0, h1 = 0;
  for (int i = 0; i < 300000; i++) {
    const uint64_t r = z.Draw(rng);
    h0 += r == 0;
    h1 += r == 1;
  }
  EXPECT_NEAR(static_cast<double>(h0) / h1, 2.0, 0.35);
}

TEST(ZipfianRanksTest, SingleItem) {
  ZipfianRanks z(1, 0.99);
  Rng rng(4);
  EXPECT_EQ(z.Draw(rng), 0u);
}

TEST(ScrambledZipfianTest, PermutationIsBijective) {
  ScrambledZipfian z(1000, 0.99, 7);
  std::set<uint64_t> seen;
  for (uint64_t r = 0; r < 1000; r++) {
    const uint64_t item = z.ItemOfRank(r);
    EXPECT_LT(item, 1000u);
    EXPECT_TRUE(seen.insert(item).second) << "duplicate item " << item;
  }
}

TEST(ScrambledZipfianTest, DrawMatchesRankMapping) {
  ScrambledZipfian z(100, 0.99, 7);
  Rng rng(5);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 50000; i++) {
    hits[z.Draw(rng)]++;
  }
  // The scrambled hottest item must be the most-hit one.
  const uint64_t hottest = z.ItemOfRank(0);
  const auto max_it = std::max_element(hits.begin(), hits.end());
  EXPECT_EQ(static_cast<uint64_t>(max_it - hits.begin()), hottest);
}

TEST(ScrambledZipfianTest, SeedsChangePermutation) {
  ScrambledZipfian a(1000, 0.99, 1);
  ScrambledZipfian b(1000, 0.99, 2);
  int same = 0;
  for (uint64_t r = 0; r < 1000; r++) {
    same += a.ItemOfRank(r) == b.ItemOfRank(r);
  }
  EXPECT_LT(same, 20);
}

TEST(ScrambledZipfianTest, SameSeedDeterministic) {
  ScrambledZipfian a(500, 0.99, 9);
  ScrambledZipfian b(500, 0.99, 9);
  Rng ra(3), rb(3);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Draw(ra), b.Draw(rb));
  }
}

// Hot items are spread uniformly across the range (the paper's "hot data
// uniformly distributed along the WSS").
TEST(ScrambledZipfianTest, HotItemsSpreadAcrossRange) {
  ScrambledZipfian z(10000, 0.99, 11);
  // Take the 100 hottest items and check they are not clustered.
  uint64_t lower_half = 0;
  for (uint64_t r = 0; r < 100; r++) {
    lower_half += z.ItemOfRank(r) < 5000;
  }
  EXPECT_GT(lower_half, 25u);
  EXPECT_LT(lower_half, 75u);
}

}  // namespace
}  // namespace nomad
