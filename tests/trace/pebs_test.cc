// Tests for the PEBS-like sampler: eligibility rules per platform,
// sampling periods, cooling, and hot/cold classification.
#include "src/trace/pebs.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(PlatformId id) {
  PlatformSpec p = MakePlatform(id);
  p.tiers[0].capacity_bytes = 128 * kPageSize;
  p.tiers[1].capacity_bytes = 128 * kPageSize;
  p.llc_bytes = 16 * 64;  // 16 lines: practically everything misses
  return p;
}

class PebsTest : public ::testing::Test {
 protected:
  explicit PebsTest(PlatformId id = PlatformId::kC)
      : ms_(TestPlatform(id), &engine_), as_(512) {
    ms_.RegisterCpu(0);
  }

  PebsSampler MakeSampler(uint64_t period, uint64_t cooling = 2000000) {
    PebsSampler::Config cfg;
    cfg.sample_period = period;
    cfg.cooling_period = cooling;
    return PebsSampler(&ms_, cfg);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
};

TEST_F(PebsTest, SamplesEveryNthEvent) {
  PebsSampler pebs = MakeSampler(10);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int i = 0; i < 100; i++) {
    ms_.Access(0, as_, 0, 0, true);  // stores: always eligible
  }
  EXPECT_EQ(pebs.total_samples(), 10u);
  EXPECT_EQ(pebs.CountOf(0), 10u);
}

TEST_F(PebsTest, SlowReadsVisibleOnPlatformC) {
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int i = 0; i < 16; i++) {
    ms_.Access(0, as_, 0, i * 64, false);
  }
  EXPECT_GT(pebs.CountOf(0), 0u);  // PM misses are core PEBS events
}

class PebsPlatformATest : public PebsTest {
 protected:
  PebsPlatformATest() : PebsTest(PlatformId::kA) {}
};

TEST_F(PebsPlatformATest, SlowReadsNearlyInvisibleOnCxl) {
  // On platform A, CXL read misses are uncore events: only the sparse
  // dTLB-miss stream can see them.
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.MapNewPage(as_, 1, Tier::kFast);
  for (int i = 0; i < 32; i++) {
    ms_.Access(0, as_, 0, (i % 64) * 64, false);
    ms_.Access(0, as_, 1, (i % 64) * 64, false);
  }
  // Fast reads sampled at the primary rate; slow reads far less.
  EXPECT_GT(pebs.CountOf(1), pebs.CountOf(0));
}

TEST_F(PebsPlatformATest, StoresVisibleEverywhere) {
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int i = 0; i < 10; i++) {
    ms_.Access(0, as_, 0, 0, true);
  }
  EXPECT_GT(pebs.CountOf(0), 0u);
}

TEST_F(PebsTest, LlcHitsAreInvisible) {
  // Large LLC so repeats hit; TLB large enough to avoid dTLB-miss samples.
  PlatformSpec p = TestPlatform(PlatformId::kC);
  p.llc_bytes = 1 << 20;
  Engine engine;
  MemorySystem ms(p, &engine);
  ms.RegisterCpu(0);
  AddressSpace as(512);
  PebsSampler::Config cfg;
  cfg.sample_period = 1;
  PebsSampler pebs(&ms, cfg);
  pebs.Attach();
  ms.MapNewPage(as, 0, Tier::kFast);
  ms.Access(0, as, 0, 0, false);  // miss (eligible) + tlb miss
  const uint64_t after_first = pebs.total_samples();
  for (int i = 0; i < 50; i++) {
    ms.Access(0, as, 0, 0, false);  // LLC hits through a warm TLB
  }
  EXPECT_EQ(pebs.total_samples(), after_first);
}

TEST_F(PebsTest, CoolingHalvesCounts) {
  PebsSampler pebs = MakeSampler(1, /*cooling=*/20);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int i = 0; i < 20; i++) {
    ms_.Access(0, as_, 0, 0, true);
  }
  EXPECT_EQ(pebs.coolings(), 1u);
  EXPECT_EQ(pebs.CountOf(0), 10u);
}

TEST_F(PebsTest, CoolingDropsZeroCounts) {
  PebsSampler pebs = MakeSampler(1, /*cooling=*/4);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.MapNewPage(as_, 1, Tier::kSlow);
  ms_.Access(0, as_, 1, 0, true);   // count 1 -> halves to 0 -> dropped
  for (int i = 0; i < 3; i++) {
    ms_.Access(0, as_, 0, 0, true);
  }
  EXPECT_EQ(pebs.coolings(), 1u);
  EXPECT_EQ(pebs.CountOf(1), 0u);
  EXPECT_EQ(pebs.counts().size(), 1u);
}

TEST_F(PebsTest, HotThresholdSplitsByBudget) {
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  for (Vpn v = 0; v < 8; v++) {
    ms_.MapNewPage(as_, v, Tier::kSlow);
  }
  // Page 0 gets 64 writes, pages 1..7 get 2 each.
  for (int i = 0; i < 64; i++) {
    ms_.Access(0, as_, 0, 0, true);
  }
  for (Vpn v = 1; v < 8; v++) {
    ms_.Access(0, as_, v, 0, true);
    ms_.Access(0, as_, v, 64, true);
  }
  // Budget of 1 page: only the heavy hitter qualifies.
  const uint64_t thr = pebs.HotThreshold(1);
  EXPECT_GT(thr, 2u);
  EXPECT_LE(thr, 64u);
  // Huge budget: everything qualifies.
  EXPECT_EQ(pebs.HotThreshold(1000), 1u);
}

TEST_F(PebsTest, HotAndColdPagesByTier) {
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.MapNewPage(as_, 1, Tier::kFast);
  for (int i = 0; i < 10; i++) {
    ms_.Access(0, as_, 0, 0, true);
  }
  ms_.Access(0, as_, 1, 0, true);
  const auto hot_slow = pebs.HotPagesOn(Tier::kSlow, 2, 10);
  ASSERT_EQ(hot_slow.size(), 1u);
  EXPECT_EQ(hot_slow[0], 0u);
  const auto cold_fast = pebs.ColdPagesOn(Tier::kFast, 5, 10);
  ASSERT_EQ(cold_fast.size(), 1u);
  EXPECT_EQ(cold_fast[0], 1u);
}

TEST_F(PebsTest, HotPagesSortedHottestFirst) {
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  for (Vpn v = 0; v < 4; v++) {
    ms_.MapNewPage(as_, v, Tier::kSlow);
  }
  for (Vpn v = 0; v < 4; v++) {
    for (Vpn i = 0; i <= v; i++) {
      ms_.Access(0, as_, v, 0, true);
    }
  }
  const auto hot = pebs.HotPagesOn(Tier::kSlow, 1, 10);
  ASSERT_EQ(hot.size(), 4u);
  EXPECT_EQ(hot[0], 3u);
  EXPECT_EQ(hot[3], 0u);
}

TEST_F(PebsTest, NoAttachOnUnsupportedPlatform) {
  Engine engine;
  MemorySystem ms(TestPlatform(PlatformId::kD), &engine);
  ms.RegisterCpu(0);
  AddressSpace as(16);
  PebsSampler::Config cfg;
  cfg.sample_period = 1;
  PebsSampler pebs(&ms, cfg);
  pebs.Attach();  // no-op: platform D has no IBS backend
  ms.MapNewPage(as, 0, Tier::kSlow);
  for (int i = 0; i < 10; i++) {
    ms.Access(0, as, 0, 0, true);
  }
  EXPECT_EQ(pebs.total_samples(), 0u);
}

TEST_F(PebsTest, UnmappedPagesExcludedFromHotSets) {
  PebsSampler pebs = MakeSampler(1);
  pebs.Attach();
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  for (int i = 0; i < 5; i++) {
    ms_.Access(0, as_, 0, 0, true);
  }
  ms_.UnmapAndFree(as_, 0);
  EXPECT_TRUE(pebs.HotPagesOn(Tier::kSlow, 1, 10).empty());
}

}  // namespace
}  // namespace nomad
