// Tests for hint-fault arming of slow-tier pages.
#include "src/trace/hint_fault_scanner.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 64 * kPageSize;
  p.tiers[1].capacity_bytes = 64 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class ScannerTest : public ::testing::Test {
 protected:
  ScannerTest() : ms_(TestPlatform(), &engine_), as_(256) { ms_.RegisterCpu(0); }

  HintFaultScanner::Config FastConfig() {
    HintFaultScanner::Config cfg;
    cfg.pages_per_round = 128;
    cfg.round_interval = 1000;
    return cfg;
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
};

TEST_F(ScannerTest, ArmsSlowTierPages) {
  for (Vpn v = 0; v < 8; v++) {
    ms_.MapNewPage(as_, v, Tier::kSlow);
  }
  HintFaultScanner scanner(&ms_, FastConfig());
  engine_.AddActor(&scanner);
  engine_.Run(100);
  for (Vpn v = 0; v < 8; v++) {
    EXPECT_TRUE(ms_.PteOf(as_, v)->prot_none) << "vpn " << v;
  }
  EXPECT_EQ(scanner.pages_armed(), 8u);
}

TEST_F(ScannerTest, DoesNotArmFastTierPages) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  ms_.MapNewPage(as_, 1, Tier::kSlow);
  HintFaultScanner scanner(&ms_, FastConfig());
  engine_.AddActor(&scanner);
  engine_.Run(100);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
  EXPECT_TRUE(ms_.PteOf(as_, 1)->prot_none);
}

TEST_F(ScannerTest, SkipsQueuedAndMigratingPages) {
  const Pfn a = ms_.MapNewPage(as_, 0, Tier::kSlow);
  const Pfn b = ms_.MapNewPage(as_, 1, Tier::kSlow);
  const Pfn c = ms_.MapNewPage(as_, 2, Tier::kSlow);
  ms_.pool().frame(a).set_in_pcq(true);
  ms_.pool().frame(b).set_in_pending(true);
  ms_.pool().frame(c).set_migrating(true);
  HintFaultScanner scanner(&ms_, FastConfig());
  engine_.AddActor(&scanner);
  engine_.Run(100);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
  EXPECT_FALSE(ms_.PteOf(as_, 1)->prot_none);
  EXPECT_FALSE(ms_.PteOf(as_, 2)->prot_none);
}

TEST_F(ScannerTest, SkipsShadowFrames) {
  const Pfn a = ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.pool().frame(a).set_is_shadow(true);
  HintFaultScanner scanner(&ms_, FastConfig());
  engine_.AddActor(&scanner);
  engine_.Run(100);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
}

TEST_F(ScannerTest, RearmsAfterFaultCleared) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  HintFaultScanner scanner(&ms_, FastConfig());
  engine_.AddActor(&scanner);
  engine_.Run(100);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->prot_none);
  // A fault clears the protection (default handler).
  ms_.Access(0, as_, 0, 0, false);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->prot_none);
  // The next sweep re-arms it.
  engine_.Run(engine_.now() + 10000);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->prot_none);
}

TEST_F(ScannerTest, ArmingInvalidatesTlb) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.Access(0, as_, 0, 0, false);  // caches the translation
  ASSERT_NE(ms_.tlb(0).Lookup(0), nullptr);
  HintFaultScanner scanner(&ms_, FastConfig());
  engine_.AddActor(&scanner);
  engine_.Run(100);
  EXPECT_EQ(ms_.tlb(0).Lookup(0), nullptr);
}

TEST_F(ScannerTest, SweepPausesBetweenRounds) {
  HintFaultScanner::Config cfg;
  cfg.pages_per_round = 16;  // 64 slow frames -> 5 steps per sweep
  cfg.round_interval = 50000;
  HintFaultScanner scanner(&ms_, cfg);
  const ActorId id = engine_.AddActor(&scanner);
  engine_.Run(10000);  // enough for one sweep, not the interval
  EXPECT_GE(engine_.NextTimeOf(id), 50000u);
}

}  // namespace
}  // namespace nomad
