// Tests for the thread-safety annotation vocabulary (src/base/annotations.h)
// and the annotated synchronization wrappers (src/base/mutex.h).
//
// Two properties matter. (1) On non-Clang compilers every macro must expand
// to NOTHING — a GCC build (this repo's default toolchain, and the
// tracing-off / faults-off CI configurations) must see plain C++, or the
// annotation rollout would change codegen or break -Werror with
// unknown-attribute warnings. The stringification checks pin that down at
// compile time. (2) The Mutex/MutexLock/CondVar wrappers must be faithful
// stand-ins for std::mutex / std::lock_guard / std::condition_variable:
// the conversion of ShardRouter/ShardBarrier to the annotated types
// (src/sim/shard.cc) rides entirely on these semantics.
#include "src/base/annotations.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/base/mutex.h"

namespace nomad {
namespace {

// Double indirection so the macro argument is expanded before
// stringification: NOMAD_STRINGIFY(NOMAD_GUARDED_BY(mu)) yields the
// macro's EXPANSION, not its spelling.
#define NOMAD_STRINGIFY_IMPL(x) #x
#define NOMAD_STRINGIFY(x) NOMAD_STRINGIFY_IMPL(x)

#if !defined(__clang__)
// On GCC (and anything else non-Clang) every annotation macro must expand
// to an empty token sequence. An empty expansion stringifies to "".
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_CAPABILITY("mutex"))) == 1,
              "NOMAD_CAPABILITY must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_SCOPED_CAPABILITY)) == 1,
              "NOMAD_SCOPED_CAPABILITY must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_GUARDED_BY(mu_))) == 1,
              "NOMAD_GUARDED_BY must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_PT_GUARDED_BY(mu_))) == 1,
              "NOMAD_PT_GUARDED_BY must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_REQUIRES(mu_))) == 1,
              "NOMAD_REQUIRES must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_ACQUIRE())) == 1,
              "NOMAD_ACQUIRE must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_RELEASE())) == 1,
              "NOMAD_RELEASE must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_TRY_ACQUIRE(true))) == 1,
              "NOMAD_TRY_ACQUIRE must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_EXCLUDES(mu_))) == 1,
              "NOMAD_EXCLUDES must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_RETURN_CAPABILITY(mu_))) == 1,
              "NOMAD_RETURN_CAPABILITY must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "NOMAD_NO_THREAD_SAFETY_ANALYSIS must compile away on non-Clang");
static_assert(sizeof(NOMAD_STRINGIFY(NOMAD_SHARD_CONFINED)) == 1,
              "NOMAD_SHARD_CONFINED must compile away on non-Clang");
#endif  // !defined(__clang__)

// The marker must not change layout, size, or triviality of a class on ANY
// compiler (on clang the annotate attribute is metadata-only).
struct PlainProbe {
  uint64_t a;
  uint32_t b;
};
struct NOMAD_SHARD_CONFINED MarkedProbe {
  uint64_t a;
  uint32_t b;
};
static_assert(sizeof(MarkedProbe) == sizeof(PlainProbe),
              "NOMAD_SHARD_CONFINED must not change layout");
static_assert(alignof(MarkedProbe) == alignof(PlainProbe),
              "NOMAD_SHARD_CONFINED must not change alignment");
static_assert(std::is_trivially_copyable_v<MarkedProbe>,
              "NOMAD_SHARD_CONFINED must not break triviality");

TEST(AnnotationsTest, AnnotatedDeclarationsCompileEverywhere) {
  // A fully annotated miniature of the ShardRouter Pair pattern: guarded
  // fields plus a requires-annotated helper. Exercises the macros in every
  // position they are used in src/.
  class Guarded {
   public:
    void Add(uint64_t v) {
      MutexLock lock(mu_);
      sum_ += v;
    }
    uint64_t sum() {
      MutexLock lock(mu_);
      return sum_;
    }

   private:
    Mutex mu_;
    uint64_t sum_ NOMAD_GUARDED_BY(mu_) = 0;
  };
  Guarded g;
  g.Add(3);
  g.Add(4);
  EXPECT_EQ(g.sum(), 7u);
}

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  // A held mutex must refuse TryLock from another thread (std::mutex
  // re-locking from the owner is UB, so probe from a second thread).
  bool acquired = true;
  std::thread probe([&] { acquired = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockProvidesExclusion) {
  Mutex mu;
  uint64_t counter = 0;  // protected by mu
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; t++) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; i++) {
        MutexLock lock(mu);
        counter++;
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(CondVarTest, WaitNotifyHandshake) {
  // The exact shape ShardBarrier::ArriveAndWait uses: explicit predicate
  // loop around CondVar::Wait under a MutexLock.
  Mutex mu;
  CondVar cv;
  bool ready = false;   // guarded by mu
  uint64_t seen = 0;    // guarded by mu

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    seen = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  }
  waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(seen, 42u);
}

TEST(CondVarTest, NotifyOneWakesExactlyOneWaiterEventually) {
  Mutex mu;
  CondVar cv;
  int tokens = 0;  // guarded by mu
  int consumed = 0;
  constexpr int kConsumers = 3;
  constexpr int kTokens = 12;

  std::vector<std::thread> pool;
  for (int t = 0; t < kConsumers; t++) {
    pool.emplace_back([&] {
      while (true) {
        MutexLock lock(mu);
        while (tokens == 0 && consumed < kTokens) {
          cv.Wait(mu);
        }
        if (consumed == kTokens) {
          cv.NotifyAll();  // let the other consumers exit too
          return;
        }
        tokens--;
        consumed++;
        if (consumed == kTokens) {
          cv.NotifyAll();
          return;
        }
      }
    });
  }
  for (int i = 0; i < kTokens; i++) {
    MutexLock lock(mu);
    tokens++;
    cv.NotifyOne();
  }
  for (std::thread& th : pool) {
    th.join();
  }
  MutexLock lock(mu);
  EXPECT_EQ(consumed, kTokens);
  EXPECT_EQ(tokens, 0);
}

}  // namespace
}  // namespace nomad
