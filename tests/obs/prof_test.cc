// Profiler tests: self/total attribution under nesting, collapsed-path
// bookkeeping, recursion de-dup, unattributed cycles, and the compile-out
// contract (a tracing-off build must still compile every call site; the
// mutators become no-ops).
#include "src/obs/prof.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/exporters.h"

namespace nomad {
namespace {

TEST(ProfilerTest, ChargeAttributesSelfAndTotal) {
  Profiler p;
  p.Enter(ProfNode::kTpm);
  p.Charge(100);  // tpm self
  p.Enter(ProfNode::kTpmCopy);
  p.Charge(40);  // tpm_copy self, tpm total
  p.Exit();
  p.Charge(10);  // tpm self again
  p.Exit();
  if (!kTracingEnabled) {
    EXPECT_EQ(p.self_cycles(ProfNode::kTpm), 0u);
    return;
  }
  EXPECT_EQ(p.self_cycles(ProfNode::kTpm), 110u);
  EXPECT_EQ(p.total_cycles(ProfNode::kTpm), 150u);
  EXPECT_EQ(p.self_cycles(ProfNode::kTpmCopy), 40u);
  EXPECT_EQ(p.total_cycles(ProfNode::kTpmCopy), 40u);
  EXPECT_EQ(p.unattributed(), 0u);
  EXPECT_EQ(p.depth(), 0);
}

TEST(ProfilerTest, EmptyStackGoesToUnattributed) {
  Profiler p;
  p.Charge(77);
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(p.unattributed(), 77u);
  EXPECT_TRUE(p.paths().empty());
}

TEST(ProfilerTest, ZeroChargeIsDropped) {
  Profiler p;
  p.Enter(ProfNode::kGovernor);
  p.Charge(0);
  p.Exit();
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(p.total_cycles(ProfNode::kGovernor), 0u);
  EXPECT_TRUE(p.paths().empty());
}

TEST(ProfilerTest, PathsRecordDistinctStacks) {
  Profiler p;
  p.ChargeLeaf(ProfNode::kLruScan, 5);  // root-level scan
  p.Enter(ProfNode::kKswapdReclaim);
  p.ChargeLeaf(ProfNode::kLruScan, 7);  // nested scan: a different path
  p.Exit();
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(p.paths().size(), 2u);
  EXPECT_EQ(p.self_cycles(ProfNode::kLruScan), 12u);
  EXPECT_EQ(p.total_cycles(ProfNode::kKswapdReclaim), 7u);
  uint64_t sum = 0;
  for (const auto& [key, cycles] : p.paths()) {
    const std::vector<ProfNode> path = Profiler::DecodePath(key);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), ProfNode::kLruScan);
    sum += cycles;
  }
  EXPECT_EQ(sum, 12u);
}

TEST(ProfilerTest, RecursiveNodeCountsTotalOnce) {
  Profiler p;
  p.Enter(ProfNode::kSyncMigrate);
  p.Enter(ProfNode::kSyncMigrate);  // recursion
  p.Charge(50);
  p.Exit();
  p.Exit();
  if (!kTracingEnabled) {
    return;
  }
  // Total must not double-count the node for the two stack levels.
  EXPECT_EQ(p.total_cycles(ProfNode::kSyncMigrate), 50u);
  EXPECT_EQ(p.self_cycles(ProfNode::kSyncMigrate), 50u);
}

TEST(ProfilerTest, DecodePathRoundTrips) {
  Profiler p;
  p.Enter(ProfNode::kHintFault);
  p.Enter(ProfNode::kSyncMigrate);
  p.Charge(9);
  p.Exit();
  p.Exit();
  if (!kTracingEnabled) {
    return;
  }
  ASSERT_EQ(p.paths().size(), 1u);
  const std::vector<ProfNode> path = Profiler::DecodePath(p.paths().begin()->first);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], ProfNode::kHintFault);  // outermost first
  EXPECT_EQ(path[1], ProfNode::kSyncMigrate);
}

TEST(ProfilerTest, ProfScopeIsBalanced) {
  Profiler p;
  {
    ProfScope outer(p, ProfNode::kKswapdReclaim);
    {
      ProfScope inner(p, ProfNode::kShadowReclaim);
      p.Charge(3);
    }
    p.Charge(4);
  }
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(p.depth(), 0);
  EXPECT_EQ(p.total_cycles(ProfNode::kKswapdReclaim), 7u);
  EXPECT_EQ(p.self_cycles(ProfNode::kShadowReclaim), 3u);
}

TEST(ProfilerTest, ResetClearsEverything) {
  Profiler p;
  p.ChargeLeaf(ProfNode::kPebsDrain, 11);
  p.Charge(5);  // unattributed
  p.Reset();
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(p.total_cycles(ProfNode::kPebsDrain), 0u);
  EXPECT_EQ(p.unattributed(), 0u);
  EXPECT_TRUE(p.paths().empty());
}

TEST(ProfilerExportTest, CollapsedStacksFormat) {
  Profiler p;
  p.Enter(ProfNode::kTpm);
  p.ChargeLeaf(ProfNode::kTpmCopy, 40);
  p.Charge(100);
  p.Exit();
  p.Charge(6);  // unattributed
  std::ostringstream os;
  WriteCollapsedStacks(p, os);
  const std::string text = os.str();
  if (!kTracingEnabled) {
    EXPECT_TRUE(text.empty());
    return;
  }
  EXPECT_NE(text.find("tpm 100\n"), std::string::npos) << text;
  EXPECT_NE(text.find("tpm;tpm_copy 40\n"), std::string::npos) << text;
  EXPECT_NE(text.find("(unattributed) 6\n"), std::string::npos) << text;
}

TEST(ProfilerExportTest, ProfileJsonSkipsIdleNodes) {
  Profiler p;
  p.ChargeLeaf(ProfNode::kGovernor, 21);
  std::ostringstream os;
  JsonWriter jw(os);
  AppendProfileJson(jw, p);
  const std::string doc = os.str();
  if (!kTracingEnabled) {
    EXPECT_EQ(doc.find("governor"), std::string::npos);
    return;
  }
  EXPECT_NE(doc.find("\"governor\":{\"self\":21,\"total\":21}"), std::string::npos)
      << doc;
  // Nodes that never charged stay out of the document.
  EXPECT_EQ(doc.find("pebs_drain"), std::string::npos);
}

TEST(ProfNodeRegistryTest, NamesAreNonEmptyAndDistinct) {
  for (uint8_t i = 0; i < kNumProfNodes; i++) {
    const char* name = ProfNodeName(static_cast<ProfNode>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(std::string(name), "");
    for (uint8_t j = 0; j < i; j++) {
      EXPECT_NE(std::string(name), ProfNodeName(static_cast<ProfNode>(j)));
    }
  }
}

}  // namespace
}  // namespace nomad
