// Provenance ledger tests: ping-pong detection, re-dirty rate, the page
// bound with its dropped counter, and deterministic top-thrasher ranking.
#include "src/obs/provenance.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/exporters.h"

namespace nomad {
namespace {

TEST(ProvenanceTest, PingPongNeedsLivePromotion) {
  ProvenanceLedger ledger;
  // Demoting a never-promoted (cold) page is warm-up, not a ping-pong.
  ledger.OnDemote(5, 100);
  // Promote then demote: one ping-pong; a second demote without a new
  // promotion does not count again.
  ledger.OnPromote(5, 200);
  ledger.OnDemote(5, 300);
  ledger.OnDemote(5, 400);
  if (!kTracingEnabled) {
    EXPECT_EQ(ledger.tracked(), 0u);
    return;
  }
  const PageProvenance& rec = ledger.pages().at(5);
  EXPECT_EQ(rec.promotions, 1u);
  EXPECT_EQ(rec.demotions, 3u);
  EXPECT_EQ(rec.ping_pongs, 1u);
  EXPECT_FALSE(rec.promoted_live);
  EXPECT_EQ(ledger.ping_pong_events(), 1u);
  EXPECT_EQ(ledger.ping_pong_pages(), 1u);
  EXPECT_EQ(rec.first_event, 100u);
  EXPECT_EQ(rec.last_event, 400u);
}

TEST(ProvenanceTest, RedirtyRateIsPerPromotion) {
  ProvenanceLedger ledger;
  ledger.OnPromote(1, 10);
  ledger.OnPromote(2, 20);
  ledger.OnPromote(3, 30);
  ledger.OnPromote(4, 40);
  ledger.OnRedirty(1, 50);
  if (!kTracingEnabled) {
    EXPECT_EQ(ledger.RedirtyRate(), 0.0);
    return;
  }
  EXPECT_DOUBLE_EQ(ledger.RedirtyRate(), 0.25);
  EXPECT_EQ(ledger.redirty_events(), 1u);
}

TEST(ProvenanceTest, BoundDropsExcessPages) {
  ProvenanceLedger ledger(/*max_pages=*/4);
  for (uint64_t vpn = 0; vpn < 10; vpn++) {
    ledger.OnPromote(vpn, vpn);
  }
  // Updates to already-tracked pages still land after the bound is hit.
  ledger.OnDemote(0, 100);
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(ledger.tracked(), 4u);
  EXPECT_EQ(ledger.dropped(), 6u);
  EXPECT_EQ(ledger.promotions(), 4u);
  EXPECT_EQ(ledger.pages().at(0).demotions, 1u);
}

TEST(ProvenanceTest, TopThrashersRankingIsDeterministic) {
  ProvenanceLedger ledger;
  // vpn 10: 2 ping-pongs (score 4). vpn 20: 1 ping-pong + 1 redirty
  // (score 3). vpn 30 and 31: 1 abort each (score 1, tie broken by vpn).
  // vpn 40: promoted only (score 0, omitted).
  for (int i = 0; i < 2; i++) {
    ledger.OnPromote(10, 1);
    ledger.OnDemote(10, 2);
  }
  ledger.OnPromote(20, 3);
  ledger.OnRedirty(20, 4);
  ledger.OnDemote(20, 5);
  ledger.OnAbort(31, 6);
  ledger.OnAbort(30, 7);
  ledger.OnPromote(40, 8);
  if (!kTracingEnabled) {
    EXPECT_TRUE(ledger.TopThrashers(10).empty());
    return;
  }
  const auto top = ledger.TopThrashers(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].vpn, 10u);
  EXPECT_EQ(top[0].score, 4u);
  EXPECT_EQ(top[1].vpn, 20u);
  EXPECT_EQ(top[1].score, 3u);
  EXPECT_EQ(top[2].vpn, 30u);  // vpn ascending on the tie with 31
  EXPECT_EQ(ledger.TopThrashers(10).size(), 4u);
}

TEST(ProvenanceTest, ShadowFreesTracked) {
  ProvenanceLedger ledger;
  ledger.OnPromote(7, 1);
  ledger.OnShadowFree(7, 2);
  if (!kTracingEnabled) {
    return;
  }
  EXPECT_EQ(ledger.shadow_frees(), 1u);
  EXPECT_EQ(ledger.pages().at(7).shadow_frees, 1u);
}

TEST(ProvenanceTest, ResetClears) {
  ProvenanceLedger ledger(/*max_pages=*/2);
  ledger.OnPromote(1, 1);
  ledger.OnPromote(2, 2);
  ledger.OnPromote(3, 3);  // dropped
  ledger.Reset();
  EXPECT_EQ(ledger.tracked(), 0u);
  EXPECT_EQ(ledger.dropped(), 0u);
  EXPECT_EQ(ledger.promotions(), 0u);
  if (kTracingEnabled) {
    // The bound re-arms after reset.
    ledger.OnPromote(9, 4);
    EXPECT_EQ(ledger.tracked(), 1u);
  }
}

TEST(ProvenanceExportTest, JsonCarriesAggregatesAndThrashers) {
  ProvenanceLedger ledger;
  ledger.OnPromote(11, 1);
  ledger.OnDemote(11, 2);
  std::ostringstream os;
  JsonWriter jw(os);
  AppendProvenanceJson(jw, ledger);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"redirty_rate\""), std::string::npos);
  if (!kTracingEnabled) {
    EXPECT_NE(doc.find("\"tracked\":0"), std::string::npos);
    return;
  }
  EXPECT_NE(doc.find("\"ping_pong_events\":1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"vpn\":11"), std::string::npos) << doc;
}

}  // namespace
}  // namespace nomad
