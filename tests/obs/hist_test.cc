// Histogram tests: bucket geometry (exact small values, 8 sub-buckets per
// octave, lo/hi edges), percentile math pinned to bucket boundaries, and
// merge/reset. The bucketing is ABI for metrics.json and for trace_query's
// latency reconstruction, so edges are asserted numerically.
#include "src/obs/hist.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace nomad {
namespace {

TEST(HistogramBucketsTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; v++) {
    const int b = Histogram::BucketFor(v);
    EXPECT_EQ(b, static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLo(b), v);
    EXPECT_EQ(Histogram::BucketHi(b), v + 1);
  }
}

TEST(HistogramBucketsTest, OctaveEdges) {
  // 8 is the first value past the exact range: first bucket of octave 0.
  EXPECT_EQ(Histogram::BucketFor(8), Histogram::kSubBuckets);
  // 15 shares the octave, 16 starts the next (shift grows by one).
  EXPECT_EQ(Histogram::BucketFor(15), Histogram::kSubBuckets + 7);
  EXPECT_EQ(Histogram::BucketFor(16), Histogram::kSubBuckets + 8);
  // Power-of-two values sit at the bottom of their bucket.
  for (const uint64_t v : {16ull, 1024ull, 1ull << 32, 1ull << 62}) {
    const int b = Histogram::BucketFor(v);
    EXPECT_EQ(Histogram::BucketLo(b), v) << "v=" << v;
  }
  // The value one below a power of two sits at the top of the previous one.
  for (const uint64_t v : {1023ull, (1ull << 20) - 1}) {
    const int b = Histogram::BucketFor(v);
    EXPECT_EQ(Histogram::BucketHi(b), v + 1) << "v=" << v;
  }
  EXPECT_LT(Histogram::BucketFor(~uint64_t{0}), Histogram::kNumBuckets);
}

TEST(HistogramBucketsTest, LoHiRoundTripEveryBucket) {
  for (int b = 0; b < Histogram::kNumBuckets; b++) {
    const uint64_t lo = Histogram::BucketLo(b);
    ASSERT_EQ(Histogram::BucketFor(lo), b) << "bucket " << b;
    // hi is exclusive: the last representable value of the bucket maps back.
    const uint64_t hi = Histogram::BucketHi(b);
    if (hi > lo + 1) {
      EXPECT_EQ(Histogram::BucketFor(hi - 1), b) << "bucket " << b;
    }
  }
}

TEST(HistogramBucketsTest, RelativeErrorBounded) {
  // Any value reconstructed as its bucket's lo is at most 12.5% below it:
  // hi - lo == lo >> kSubBucketBits for log buckets.
  for (const uint64_t v : {100ull, 10688ull, 123456789ull, (1ull << 40) + 12345}) {
    const int b = Histogram::BucketFor(v);
    const uint64_t width = Histogram::BucketHi(b) - Histogram::BucketLo(b);
    EXPECT_LE(static_cast<double>(width),
              static_cast<double>(v) / 8.0 + 1.0)
        << "v=" << v;
  }
}

TEST(HistogramTest, QuantileOnUniformRange) {
  Histogram h;
  for (uint64_t i = 1; i <= 1000; i++) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  // Log buckets bound the relative error at one sub-bucket width (12.5%).
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.50)), 500.0, 500.0 * 0.125 + 1);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.90)), 900.0, 900.0 * 0.125 + 1);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.99)), 990.0, 990.0 * 0.125 + 1);
  EXPECT_EQ(h.Quantile(1.0), 1000u);
  EXPECT_EQ(h.Quantile(0.0), 1u);
}

TEST(HistogramTest, QuantileAtBucketBoundaries) {
  // All mass in one bucket: every quantile interpolates within [lo, hi),
  // clamped to max+1 so reconstructions never exceed an observed value.
  Histogram h;
  for (int i = 0; i < 10; i++) {
    h.Record(1000);  // bucket [960, 1024)
  }
  const int b = Histogram::BucketFor(1000);
  EXPECT_EQ(Histogram::BucketLo(b), 960u);
  EXPECT_EQ(Histogram::BucketHi(b), 1024u);
  for (const double q : {0.0, 0.5, 0.99}) {
    EXPECT_GE(h.Quantile(q), 960u) << "q=" << q;
    EXPECT_LE(h.Quantile(q), 1001u) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileTwoSamplesUsesRankEstimator) {
  // target = floor(q*(count-1)): with two samples every q < 1 resolves to
  // the first sample's bucket. trace_query's selftest pins the same math.
  Histogram h;
  h.Record(2000);
  h.Record(6000);
  const uint64_t lo = Histogram::BucketLo(Histogram::BucketFor(2000));
  EXPECT_EQ(h.Quantile(0.50), lo);
  EXPECT_EQ(h.Quantile(0.99), lo);
  // q=1.0 targets rank 1: the second sample's bucket floor.
  EXPECT_EQ(h.Quantile(1.0), Histogram::BucketLo(Histogram::BucketFor(6000)));
}

TEST(HistogramTest, QuantileClampsToMaxInsideSparseTopBucket) {
  // A single sample at a bucket floor: hi clamps to max+1, so quantiles
  // cannot overshoot the only observed value.
  Histogram h;
  h.Record(961);  // bucket [960, 1024), max = 961
  EXPECT_GE(h.Quantile(0.99), 960u);
  EXPECT_LE(h.Quantile(0.99), 962u);
}

TEST(HistogramTest, EmptyAndZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, MergeAndReset) {
  Histogram a, b;
  for (uint64_t i = 0; i < 100; i++) {
    a.Record(10);
    b.Record(100000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.Max(), 100000u);
  EXPECT_EQ(a.sum(), 100u * 10 + 100u * 100000);
  EXPECT_EQ(a.Quantile(0.25), 10u);
  EXPECT_GE(a.Quantile(0.75), Histogram::BucketLo(Histogram::BucketFor(100000)));
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Max(), 0u);
  EXPECT_EQ(a.Quantile(0.99), 0u);
}

TEST(HistogramSetTest, RegistryNamesAccepted) {
  EXPECT_TRUE(IsRegisteredHistogramName(hist::kMigrationLatency));
  EXPECT_TRUE(IsRegisteredHistogramName(hist::kDemotionLatency));
  EXPECT_TRUE(IsRegisteredHistogramName(hist::kHotToPromoted));
  EXPECT_TRUE(IsRegisteredHistogramName(hist::kPcqResidence));
  EXPECT_TRUE(IsRegisteredHistogramName(hist::kTpmRetries));
  EXPECT_FALSE(IsRegisteredHistogramName("made.up.name"));
}

TEST(HistogramSetTest, RecordBooksUnderName) {
  HistogramSet set;
  set.Record(hist::kMigrationLatency, 1234);
  set.Record(hist::kMigrationLatency, 5678);
  if (!kTracingEnabled) {
    EXPECT_TRUE(set.All().empty());
    return;
  }
  ASSERT_EQ(set.All().count(hist::kMigrationLatency), 1u);
  EXPECT_EQ(set.All().at(hist::kMigrationLatency).count(), 2u);
  set.Reset();
  EXPECT_TRUE(set.All().empty());
}

}  // namespace
}  // namespace nomad
