// Exporter tests: the JsonWriter emits well-formed JSON (checked by a small
// recursive-descent parser below), and the chrome://tracing document has the
// structure the viewer needs (balanced B/E pairs, metadata rows, args).
#include "src/obs/exporters.h"

#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/sim/stats.h"

namespace nomad {
namespace {

// Minimal strict JSON parser: returns true iff `s` is one valid JSON value
// with nothing trailing. Enough of RFC 8259 to catch missing commas,
// unescaped strings, bare NaN/inf, and unbalanced brackets.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      pos_++;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool Value() {
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      pos_++;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (s_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size()) {
        return false;
      }
      if (s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (s_[pos_] == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    pos_++;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        pos_++;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // control chars must be escaped
      }
      if (c == '\\') {
        pos_++;
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; i++) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      pos_++;
    }
    return false;  // unterminated
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      pos_++;
    }
    size_t digits = 0;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      pos_++;
      digits++;
    }
    if (digits == 0) {
      return false;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      pos_++;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      pos_++;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        pos_++;
      }
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        return false;
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
    }
    return pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& s) { return JsonChecker(s).Valid(); }

size_t CountSubstr(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    n++;
  }
  return n;
}

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson(R"({"a":[1,2.5,-3e2],"b":"x\n","c":null})"));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson(R"({"a":1,})"));
  EXPECT_FALSE(IsValidJson(R"({"a" 1})"));
  EXPECT_FALSE(IsValidJson("[1 2]"));
  EXPECT_FALSE(IsValidJson("nan"));
  EXPECT_FALSE(IsValidJson("\"unterminated"));
  EXPECT_FALSE(IsValidJson("{} trailing"));
}

TEST(JsonWriterTest, EmitsWellFormedDocument) {
  std::ostringstream os;
  JsonWriter jw(os);
  jw.BeginObject();
  jw.Field("str", std::string_view("quote\" slash\\ newline\n tab\t"));
  jw.Field("num", uint64_t{18446744073709551615ull});
  jw.Key("neg").Int(-42);
  jw.Field("dbl", 1.5);
  jw.Key("nan").Double(std::numeric_limits<double>::quiet_NaN());
  jw.Field("flag", true);
  jw.Key("nil").Null();
  jw.Key("arr").BeginArray();
  jw.Uint(1).Uint(2).Uint(3);
  jw.EndArray();
  jw.Key("nested").BeginObject().Field("k", uint64_t{0}).EndObject();
  jw.Key("empty_arr").BeginArray().EndArray();
  jw.Key("empty_obj").BeginObject().EndObject();
  jw.EndObject();
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  // Non-finite doubles degrade to null rather than emitting bare NaN.
  EXPECT_EQ(CountSubstr(doc, "null"), 2u);
}

TEST(JsonWriterTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
  EXPECT_TRUE(IsValidJson(JsonQuote("tab\t nl\n cr\r backslash\\")));
}

TraceSink MakeSinkWithTpm() {
  TraceSink sink(64);
  // Two transactions on actor 3: one commits, one aborts; plus instants.
  sink.Emit(TraceEvent::kTpmBegin, 100, 3, /*vpn=*/7, /*copy=*/50);
  sink.Emit(TraceEvent::kHintFault, 120, 1, 99);
  sink.Emit(TraceEvent::kTpmCommit, 160, 3, 7, 10);
  sink.Emit(TraceEvent::kTpmBegin, 200, 3, 8, 50);
  sink.Emit(TraceEvent::kTpmAbort, 230, 3, 8);
  sink.Emit(TraceEvent::kKswapdWake, 300, 2, 0, 1234);
  return sink;
}

TEST(ChromeTraceTest, DocumentIsValidAndBalanced) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  const TraceSink sink = MakeSinkWithTpm();
  std::ostringstream os;
  WriteChromeTrace(sink, /*ghz=*/2.0, {"app0", "app1", "kswapd", "kpromote"}, os);
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  // One B and one E per finished transaction.
  EXPECT_EQ(CountSubstr(doc, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(CountSubstr(doc, "\"ph\":\"E\""), 2u);
  // Thread-name metadata for the four actors that appear (1, 2, 3 + none).
  EXPECT_GE(CountSubstr(doc, "thread_name"), 3u);
  EXPECT_NE(doc.find("kpromote"), std::string::npos);
  EXPECT_NE(doc.find("traceEvents"), std::string::npos);
  // Instants carry their event name.
  EXPECT_NE(doc.find("hint_fault"), std::string::npos);
  EXPECT_NE(doc.find("kswapd_wake"), std::string::npos);
}

TEST(ChromeTraceTest, DanglingBeginIsClosed) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(16);
  sink.Emit(TraceEvent::kTpmBegin, 10, 0, 1, 50);  // never commits
  std::ostringstream os;
  WriteChromeTrace(sink, 2.0, {}, os);
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_EQ(CountSubstr(doc, "\"ph\":\"B\""), CountSubstr(doc, "\"ph\":\"E\""));
}

TEST(ChromeTraceTest, DanglingEndBecomesInstant) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(16);
  sink.Emit(TraceEvent::kTpmCommit, 10, 0, 1, 5);  // begin lost to wraparound
  std::ostringstream os;
  WriteChromeTrace(sink, 2.0, {}, os);
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_EQ(CountSubstr(doc, "\"ph\":\"B\""), 0u);
  EXPECT_EQ(CountSubstr(doc, "\"ph\":\"E\""), 0u);
}

TEST(MetricsJsonTest, BuildingBlocksComposeValidJson) {
  CounterSet counters;
  counters.Add("fault.hint", 3);
  counters.Add("migrate.sync_promote", 2);
  LatencyHistogram hist;
  for (uint64_t i = 1; i <= 1000; i++) {
    hist.Record(i);
  }
  std::ostringstream os;
  JsonWriter jw(os);
  jw.BeginObject();
  jw.Key("counters");
  AppendCountersJson(jw, counters);
  jw.Key("latency");
  AppendLatencyJson(jw, hist);
  jw.Key("bandwidth");
  AppendBandwidthJson(jw, 1000, {64000, 128000}, 2.0);
  jw.EndObject();
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
  EXPECT_NE(doc.find("\"p999\""), std::string::npos);
  EXPECT_NE(doc.find("\"gbps\""), std::string::npos);
  EXPECT_NE(doc.find("fault.hint"), std::string::npos);
}

TEST(ChromeTraceTest, RingWraparoundKeepsDocumentBalanced) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  // Capacity 8: the begin is overwritten long before its commit arrives, so
  // the exporter sees an end with no open begin and must degrade it to an
  // instant rather than emit an unbalanced "E".
  TraceSink sink(8);
  sink.Emit(TraceEvent::kTpmBegin, 10, 3, /*vpn=*/7, 50);
  for (Cycles t = 20; t < 200; t += 10) {
    sink.Emit(TraceEvent::kHintFault, t, 1, 42);
  }
  sink.Emit(TraceEvent::kTpmCommit, 300, 3, 7, 10);
  EXPECT_EQ(sink.size(), 8u);
  EXPECT_GT(sink.dropped(), 0u);
  std::ostringstream os;
  WriteChromeTrace(sink, 2.0, {"app0", "app1", "kswapd", "kpromote"}, os);
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  EXPECT_EQ(CountSubstr(doc, "\"ph\":\"B\""), CountSubstr(doc, "\"ph\":\"E\""));
}

TEST(MetricsJsonTest, TraceSummarySurfacesDroppedAfterWraparound) {
  TraceSink sink(4);
  for (Cycles t = 0; t < 100; t += 10) {
    sink.Emit(TraceEvent::kHintFault, t, 1, 9);
  }
  std::ostringstream os;
  JsonWriter jw(os);
  AppendTraceSummaryJson(jw, sink);
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  if (kTracingEnabled) {
    EXPECT_NE(doc.find("\"emitted\":10"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"retained\":4"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"dropped\":6"), std::string::npos) << doc;
  } else {
    EXPECT_NE(doc.find("\"dropped\":0"), std::string::npos) << doc;
  }
}

TEST(MetricsJsonTest, ObservabilityExportersComposeValidJson) {
  Profiler prof;
  prof.Enter(ProfNode::kTpm);
  prof.ChargeLeaf(ProfNode::kTpmCopy, 40);
  prof.Charge(100);
  prof.Exit();
  HistogramSet hists;
  hists.Record(hist::kMigrationLatency, 10000);
  hists.Record(hist::kMigrationLatency, 12000);
  ProvenanceLedger ledger;
  ledger.OnPromote(3, 50);
  ledger.OnDemote(3, 60);
  std::ostringstream os;
  JsonWriter jw(os);
  jw.BeginObject();
  jw.Key("profile");
  AppendProfileJson(jw, prof);
  jw.Key("histograms");
  AppendHistogramsJson(jw, hists);
  jw.Key("provenance");
  AppendProvenanceJson(jw, ledger);
  jw.EndObject();
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  if (kTracingEnabled) {
    EXPECT_NE(doc.find("\"tpm\":{\"self\":100,\"total\":140}"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"migration.latency\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"ping_pong_events\":1"), std::string::npos) << doc;
  }
}

TEST(MetricsJsonTest, TraceSummaryReportsPerTypeCounts) {
  const TraceSink sink = MakeSinkWithTpm();
  std::ostringstream os;
  JsonWriter jw(os);
  AppendTraceSummaryJson(jw, sink);
  const std::string doc = os.str();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  if (kTracingEnabled) {
    EXPECT_NE(doc.find("\"tpm_commit\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"tpm_abort\":1"), std::string::npos);
  }
}

}  // namespace
}  // namespace nomad
