// TraceSink unit tests: ring wraparound, chronological snapshots, the
// runtime enable switch, and event ordering when several actors interleave
// through the engine.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/sim/engine.h"

namespace nomad {
namespace {

TEST(TraceSinkTest, EventNamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < static_cast<int>(TraceEvent::kNumEvents); i++) {
    names.push_back(TraceEventName(static_cast<TraceEvent>(i)));
  }
  EXPECT_EQ(names.front(), "tpm_begin");
  EXPECT_EQ(names[static_cast<int>(TraceEvent::kTpmCommit)], "tpm_commit");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(TraceSinkTest, CapacityRoundsUpToPowerOfTwo) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  EXPECT_EQ(TraceSink(1).capacity(), 2u);
  EXPECT_EQ(TraceSink(5).capacity(), 8u);
  EXPECT_EQ(TraceSink(64).capacity(), 64u);
}

TEST(TraceSinkTest, EmitRecordsInOrder) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(16);
  sink.Emit(TraceEvent::kPromote, 100, 1, 42, 7);
  sink.Emit(TraceEvent::kDemote, 200, 2, 43);
  ASSERT_EQ(sink.size(), 2u);
  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, TraceEvent::kPromote);
  EXPECT_EQ(records[0].time, 100u);
  EXPECT_EQ(records[0].actor, 1u);
  EXPECT_EQ(records[0].arg, 42u);
  EXPECT_EQ(records[0].value, 7u);
  EXPECT_EQ(records[1].type, TraceEvent::kDemote);
  EXPECT_EQ(sink.CountOf(TraceEvent::kPromote), 1u);
  EXPECT_EQ(sink.CountOf(TraceEvent::kDemote), 1u);
  EXPECT_EQ(sink.CountOf(TraceEvent::kTpmAbort), 0u);
}

TEST(TraceSinkTest, WraparoundKeepsNewestAndCountsDropped) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(8);
  ASSERT_EQ(sink.capacity(), 8u);
  for (uint64_t i = 0; i < 20; i++) {
    sink.Emit(TraceEvent::kHintFault, i, 0, i);
  }
  EXPECT_EQ(sink.total_emitted(), 20u);
  EXPECT_EQ(sink.size(), 8u);
  EXPECT_EQ(sink.dropped(), 12u);
  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 8u);
  // The retained window is the newest 8 records, oldest first.
  for (size_t i = 0; i < records.size(); i++) {
    EXPECT_EQ(records[i].arg, 12 + i);
  }
  EXPECT_EQ(sink.CountOf(TraceEvent::kHintFault), 8u);
}

TEST(TraceSinkTest, DisableStopsEmission) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(8);
  sink.Emit(TraceEvent::kPromote, 1, 0, 1);
  sink.set_enabled(false);
  sink.Emit(TraceEvent::kPromote, 2, 0, 2);
  sink.set_enabled(true);
  sink.Emit(TraceEvent::kPromote, 3, 0, 3);
  EXPECT_EQ(sink.total_emitted(), 2u);
  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].arg, 1u);
  EXPECT_EQ(records[1].arg, 3u);
}

TEST(TraceSinkTest, ClearResets) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(8);
  sink.Emit(TraceEvent::kPromote, 1, 0, 1);
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_emitted(), 0u);
  EXPECT_TRUE(sink.Snapshot().empty());
}

TEST(TraceSinkTest, CompiledOutSinkIsInert) {
  if (kTracingEnabled) {
    GTEST_SKIP() << "only meaningful with NOMAD_TRACING=0";
  }
  TraceSink sink;
  sink.Emit(TraceEvent::kPromote, 1, 0, 1);
  EXPECT_EQ(sink.capacity(), 0u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_FALSE(sink.enabled());
}

// An actor that emits one record per step, tagged with its engine id.
class EmittingActor : public Actor {
 public:
  EmittingActor(TraceSink* sink, Cycles period, int steps)
      : sink_(sink), period_(period), steps_left_(steps) {}

  Cycles Step(Engine& engine) override {
    sink_->Emit(TraceEvent::kHintFault, engine.now(),
                static_cast<uint16_t>(engine.current()), sequence_++);
    steps_left_--;
    return period_;
  }

  std::string name() const override { return "emitter"; }
  bool done() const override { return steps_left_ <= 0; }

 private:
  TraceSink* sink_;
  Cycles period_;
  int steps_left_;
  uint64_t sequence_ = 0;
};

TEST(TraceSinkTest, InterleavedActorsEmitInVirtualTimeOrder) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "built with NOMAD_TRACING=0";
  }
  TraceSink sink(64);
  Engine engine;
  // Different periods force interleaving: a, b, a, b, a, a, b, ...
  EmittingActor a(&sink, 30, 10);
  EmittingActor b(&sink, 70, 5);
  const ActorId a_id = engine.AddActor(&a);
  const ActorId b_id = engine.AddActor(&b);
  engine.Run(kNever);

  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 15u);
  // Snapshot order must be emission (virtual-time) order.
  for (size_t i = 1; i < records.size(); i++) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
  // Both actors appear, tagged with their engine ids.
  uint64_t from_a = 0, from_b = 0;
  for (const auto& r : records) {
    if (r.actor == a_id) {
      from_a++;
    } else if (r.actor == b_id) {
      from_b++;
    }
  }
  EXPECT_EQ(from_a, 10u);
  EXPECT_EQ(from_b, 5u);
  // Per-actor sequence numbers stay monotonic after the interleave.
  uint64_t next_a = 0, next_b = 0;
  for (const auto& r : records) {
    uint64_t& next = r.actor == a_id ? next_a : next_b;
    EXPECT_EQ(r.arg, next);
    next++;
  }
}

}  // namespace
}  // namespace nomad
