// Unit tests for the time-resolved telemetry ring (src/obs/timeline.h):
// channel registry validation, column backfill alignment, delta encoding,
// ring eviction accounting, and the CSV/JSON export shapes. Every mutating
// expectation is guarded on kTracingEnabled so the suite also passes in the
// -DNOMAD_ENABLE_TRACING=OFF build, where it instead proves the sampler is
// fully stubbed (no samples, no columns, header-only CSV).
#include "src/obs/timeline.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/event_registry.h"
#include "src/obs/json.h"
#include "src/obs/trace.h"

namespace nomad {
namespace {

Timeline::Config SmallConfig(size_t capacity = 4096) {
  Timeline::Config cfg;
  cfg.interval = 100;
  cfg.capacity = capacity;
  return cfg;
}

TEST(TimelineRegistryTest, AcceptsEveryGaugeChannel) {
  // The closed gauge list is the registry's core: each X-macro entry must
  // round-trip through the validator (a rename in one place but not the
  // other should fail here, not at a Channel() abort in a benchmark).
#define NOMAD_TL_EXPECT(id, str) \
  EXPECT_TRUE(IsRegisteredTimelineChannel(str)) << str;
  NOMAD_TIMELINE_CHANNEL_LIST(NOMAD_TL_EXPECT)
#undef NOMAD_TL_EXPECT
}

TEST(TimelineRegistryTest, CounterChannelsAreOpenKeyspace) {
  // Counter deltas mirror the CounterSet keyspace, which is open within
  // the "cnt." prefix (fault-counter slots are built at runtime).
  EXPECT_TRUE(IsRegisteredTimelineChannel("cnt.nomad.tpm_commit"));
  EXPECT_TRUE(IsRegisteredTimelineChannel("cnt.admission.downgrade_sync"));
  EXPECT_FALSE(IsRegisteredTimelineChannel("cnt."));  // empty counter name
}

TEST(TimelineRegistryTest, DerivedHistogramChannels) {
  EXPECT_TRUE(IsRegisteredTimelineChannel("hist.migration.latency.p50"));
  EXPECT_TRUE(IsRegisteredTimelineChannel("hist.tpm.retries.p99"));
  EXPECT_TRUE(IsRegisteredTimelineChannel("hist.pcq.residence.count_delta"));
  // Unregistered base histogram or unknown suffix must be rejected.
  EXPECT_FALSE(IsRegisteredTimelineChannel("hist.migration.latency.p75"));
  EXPECT_FALSE(IsRegisteredTimelineChannel("hist.not.a.histogram.p50"));
  EXPECT_FALSE(IsRegisteredTimelineChannel("hist.migration.latency"));
}

TEST(TimelineRegistryTest, RejectsUnknownNames) {
  EXPECT_FALSE(IsRegisteredTimelineChannel(""));
  EXPECT_FALSE(IsRegisteredTimelineChannel("tier.fast.bogus"));
  EXPECT_FALSE(IsRegisteredTimelineChannel("pcq_depth"));  // wrong separator
}

TEST(TimelineTest, ChannelFindOrCreateAndBackfill) {
  Timeline tl(SmallConfig());
  const size_t fast = tl.Channel(tl::kFastFree);
  EXPECT_EQ(fast, tl.Channel(tl::kFastFree));  // find, not re-create

  tl.BeginSample(100);
  tl.Set(fast, 7);
  tl.EndSample();

  // A channel created after samples exist must backfill zeros so every
  // column stays index-aligned with the time axis.
  const size_t pcq = tl.Channel(tl::kPcqDepth);
  tl.BeginSample(200);
  tl.Set(pcq, 3);
  tl.EndSample();

  if (!kTracingEnabled) {
    EXPECT_EQ(0u, tl.num_samples());
    EXPECT_EQ(0u, tl.num_channels());
    EXPECT_EQ(0u, fast);
    EXPECT_EQ(0u, pcq);  // stub index, storage never grows
    return;
  }
  ASSERT_EQ(2u, tl.num_samples());
  ASSERT_EQ(2u, tl.num_channels());
  std::ostringstream csv;
  tl.WriteCsv(csv);
  EXPECT_EQ(
      "time,tier.fast.free_frames,pcq.depth\n"
      "100,7,0\n"   // pcq.depth backfilled for the pre-creation sample
      "200,0,3\n",  // channels not Set() in a sample read as 0
      csv.str());
}

TEST(TimelineTest, SetDeltaEncodesDifferences) {
  Timeline tl(SmallConfig());
  const size_t commits = tl.Channel("cnt.nomad.tpm_commit");
  tl.BeginSample(100);
  tl.SetDelta(commits, 10);  // first observation: delta from 0
  tl.EndSample();
  tl.BeginSample(200);
  tl.SetDelta(commits, 25);
  tl.EndSample();
  tl.BeginSample(300);
  tl.SetDelta(commits, 25);  // no movement
  tl.EndSample();

  if (!kTracingEnabled) {
    EXPECT_EQ(0u, tl.num_samples());
    return;
  }
  std::ostringstream csv;
  tl.WriteCsv(csv);
  EXPECT_EQ(
      "time,cnt.nomad.tpm_commit\n"
      "100,10\n"
      "200,15\n"
      "300,0\n",
      csv.str());
}

TEST(TimelineTest, RingEvictsOldestAndCountsDrops) {
  Timeline tl(SmallConfig(/*capacity=*/2));
  const size_t fast = tl.Channel(tl::kFastFree);
  for (uint64_t i = 1; i <= 5; i++) {
    tl.BeginSample(i * 100);
    tl.Set(fast, i);
    tl.EndSample();
  }
  if (!kTracingEnabled) {
    EXPECT_EQ(0u, tl.num_samples());
    EXPECT_EQ(0u, tl.dropped());
    return;
  }
  EXPECT_EQ(2u, tl.num_samples());
  EXPECT_EQ(3u, tl.dropped());
  std::ostringstream csv;
  tl.WriteCsv(csv);
  EXPECT_EQ(
      "time,tier.fast.free_frames\n"
      "400,4\n"
      "500,5\n",
      csv.str());
}

TEST(TimelineTest, JsonSectionCarriesSchemaAndColumns) {
  Timeline tl(SmallConfig());
  const size_t fast = tl.Channel(tl::kFastFree);
  tl.BeginSample(100);
  tl.Set(fast, 42);
  tl.EndSample();

  std::ostringstream out;
  JsonWriter jw(out);
  tl.AppendJson(jw);
  const std::string json = out.str();
  EXPECT_NE(std::string::npos, json.find("\"schema\":\"nomad-timeline-v1\""));
  EXPECT_NE(std::string::npos, json.find("\"interval\":100"));
  if (kTracingEnabled) {
    EXPECT_NE(std::string::npos, json.find("\"samples\":1"));
    EXPECT_NE(std::string::npos, json.find("\"tier.fast.free_frames\":[42]"));
  } else {
    EXPECT_NE(std::string::npos, json.find("\"samples\":0"));
    EXPECT_EQ(std::string::npos, json.find("tier.fast.free_frames"));
  }
}

TEST(TimelineTest, TracingOffIsFullyStubbed) {
  // This test is meaningful in both builds: tracing-on it documents the
  // empty-timeline export shape; tracing-off it proves the whole sampling
  // path (Channel/Begin/Set/End) compiles to no-ops.
  Timeline tl(SmallConfig());
  const size_t ch = tl.Channel(tl::kShadowPages);
  if (!kTracingEnabled) {
    tl.BeginSample(100);
    tl.Set(ch, 1);
    tl.SetDelta(ch, 2);
    tl.EndSample();
    EXPECT_EQ(0u, tl.num_samples());
    EXPECT_EQ(0u, tl.num_channels());
  }
  std::ostringstream csv;
  Timeline(SmallConfig()).WriteCsv(csv);
  EXPECT_EQ("time\n", csv.str());
}

}  // namespace
}  // namespace nomad
