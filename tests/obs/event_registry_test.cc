// The registry is the single source of truth for observable names; these
// tests pin the properties the exporters and lint rules rely on.
#include "src/obs/event_registry.h"

#include <cctype>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(EventRegistry, EveryEventHasAName) {
  for (uint8_t i = 0; i < kNumTraceEvents; i++) {
    const char* name = TraceEventName(static_cast<TraceEvent>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "event " << int{i} << " missing from registry";
  }
  EXPECT_STREQ(TraceEventName(TraceEvent::kNumEvents), "?");
}

TEST(EventRegistry, NamesAreUniqueLowerSnakeCase) {
  std::set<std::string> seen;
  for (uint8_t i = 0; i < kNumTraceEvents; i++) {
    const std::string name = TraceEventName(static_cast<TraceEvent>(i));
    EXPECT_TRUE(seen.insert(name).second) << "duplicate event name " << name;
    for (char c : name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) || c == '_' ||
                  std::isdigit(static_cast<unsigned char>(c)))
          << "event name not lower_snake_case: " << name;
    }
  }
}

// Baseline files and the chrome://tracing exporter key on these strings;
// renaming one silently orphans recorded history, so pin the full table.
TEST(EventRegistry, StableExportedNames) {
  EXPECT_STREQ(TraceEventName(TraceEvent::kTpmBegin), "tpm_begin");
  EXPECT_STREQ(TraceEventName(TraceEvent::kTpmAbort), "tpm_abort");
  EXPECT_STREQ(TraceEventName(TraceEvent::kTpmCommit), "tpm_commit");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPromote), "promote");
  EXPECT_STREQ(TraceEventName(TraceEvent::kDemote), "demote");
  EXPECT_STREQ(TraceEventName(TraceEvent::kHintFault), "hint_fault");
  EXPECT_STREQ(TraceEventName(TraceEvent::kShadowFault), "shadow_fault");
  EXPECT_STREQ(TraceEventName(TraceEvent::kShadowReclaim), "shadow_reclaim");
  EXPECT_STREQ(TraceEventName(TraceEvent::kKswapdWake), "kswapd_wake");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPcqEnqueue), "pcq_enqueue");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPcqDrain), "pcq_drain");
  EXPECT_STREQ(TraceEventName(TraceEvent::kScannerArm), "scanner_arm");
  EXPECT_STREQ(TraceEventName(TraceEvent::kMigrationRound), "migration_round");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPcqOverflow), "pcq_overflow");
  EXPECT_STREQ(TraceEventName(TraceEvent::kFaultInject), "fault_inject");
  EXPECT_STREQ(TraceEventName(TraceEvent::kTpmBackoff), "tpm_backoff");
  EXPECT_STREQ(TraceEventName(TraceEvent::kTpmGiveUp), "tpm_give_up");
  EXPECT_STREQ(TraceEventName(TraceEvent::kSyncDegrade), "sync_degrade");
  EXPECT_STREQ(TraceEventName(TraceEvent::kReclaimEscalate), "reclaim_escalate");
  EXPECT_STREQ(TraceEventName(TraceEvent::kInvariantFail), "invariant_fail");
}

TEST(EventRegistry, CounterKeysCarrySubsystemPrefix) {
  const std::string tpm = cnt::kNomadTpmCommit;
  EXPECT_EQ(tpm.rfind("nomad.", 0), 0u);
  const std::string tpp = cnt::kTppPromote;
  EXPECT_EQ(tpp.rfind("tpp.", 0), 0u);
  const std::string tlb = cnt::kTlbShootdown;
  EXPECT_EQ(tlb.rfind("tlb.", 0), 0u);
}

}  // namespace
}  // namespace nomad
