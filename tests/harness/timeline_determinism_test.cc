// Determinism contract for the epoch-boundary timeline sampler: the
// per-shard telemetry CSVs from a fixed-seed sharded run must be
// byte-identical for any exec_threads value. Sampling happens at lockstep
// epoch boundaries (the interval is rounded up to whole epochs), so OS
// scheduling must be invisible in both the sample times and every channel
// value. In the -DNOMAD_ENABLE_TRACING=OFF build the sampler is stubbed
// and the comparison degenerates to header-only CSVs — the test then
// proves the stubbed path still compiles and runs end to end.
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "src/harness/sharded_sim.h"
#include "src/obs/trace.h"

namespace nomad {
namespace {

namespace fs = std::filesystem;

ShardedRunConfig TimelineConfig(uint32_t exec_threads) {
  ShardedRunConfig cfg;
  cfg.base.policy = PolicyKind::kNomad;
  cfg.base.total_ops = 40000;
  cfg.shards = 2;
  cfg.exec_threads = exec_threads;
  cfg.timeline_interval = 100000;  // rounds up to one sample per epoch
  cfg.enable_spans = true;
  return cfg;
}

// Runs the fixed-seed workload and returns every timeline CSV the
// collector wrote, keyed by file name (shard0 lands on the exact path,
// shard1 on the label-suffixed sibling).
std::map<std::string, std::string> RunAndCollect(uint32_t exec_threads,
                                                 const std::string& dir) {
  fs::create_directories(dir);
  {
    MetricsCollector collector("timeline_determinism_test", /*metrics_path=*/"",
                               /*trace_path=*/"", /*profile_path=*/"",
                               /*timeline_path=*/dir + "/tl.csv");
    RunShardedMicro(TimelineConfig(exec_threads), &collector);
  }
  std::map<std::string, std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path());
    std::ostringstream body;
    body << in.rdbuf();
    files[entry.path().filename().string()] = body.str();
  }
  return files;
}

TEST(TimelineDeterminismTest, ThreadCountDoesNotChangeTimelines) {
  const std::string base = ::testing::TempDir() + "/nomad_timeline_det";
  fs::remove_all(base);
  const auto t1 = RunAndCollect(1, base + "/t1");
  const auto t4 = RunAndCollect(4, base + "/t4");

  // Same shard labels -> same file names in both runs.
  ASSERT_EQ(2u, t1.size());
  ASSERT_EQ(t1.size(), t4.size());
  for (const auto& [name, body] : t1) {
    const auto it = t4.find(name);
    ASSERT_NE(t4.end(), it) << "missing timeline " << name << " in 4-thread run";
    EXPECT_EQ(body, it->second) << "timeline " << name
                                << " differs between 1 and 4 worker threads";
  }

  // Tracing-on, the CSVs must carry real samples (header + rows) with a
  // strictly increasing time axis (the shard's virtual clock at each
  // lockstep boundary); tracing-off they are header-only.
  for (const auto& [name, body] : t1) {
    if (kTracingEnabled) {
      std::istringstream lines(body);
      std::string line;
      ASSERT_TRUE(std::getline(lines, line)) << name;  // header
      uint64_t prev = 0;
      size_t rows = 0;
      while (std::getline(lines, line)) {
        const uint64_t time = std::stoull(line.substr(0, line.find(',')));
        EXPECT_GT(time, prev) << "timeline " << name << " time axis not increasing";
        prev = time;
        rows++;
      }
      EXPECT_GT(rows, 0u) << "timeline " << name << " has no sample rows";
    } else {
      EXPECT_EQ("time\n", body) << name;
    }
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace nomad
