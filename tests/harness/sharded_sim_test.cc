// End-to-end tests for the sharded parallel runner: worker-thread count
// must never leak into simulation results, shards must quiesce cleanly
// under the full invariant suite, and the lockstep accounting (epochs,
// messages, ops) must be internally consistent.
#include "src/harness/sharded_sim.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

ShardedRunConfig SmallConfig(PolicyKind policy) {
  ShardedRunConfig cfg;
  cfg.base.policy = policy;
  cfg.base.total_ops = 40000;
  cfg.shards = 4;
  cfg.audit = true;
  return cfg;
}

// Strict equality across results: the determinism contract is byte-level,
// so even doubles must match exactly.
void ExpectIdentical(const ShardedRunResult& a, const ShardedRunResult& b) {
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.max_virtual_time, b.max_virtual_time);
  EXPECT_EQ(a.aggregate_gbps, b.aggregate_gbps);
  ASSERT_EQ(a.per_shard.size(), b.per_shard.size());
  for (size_t s = 0; s < a.per_shard.size(); s++) {
    const MicroRunResult& ra = a.per_shard[s];
    const MicroRunResult& rb = b.per_shard[s];
    EXPECT_EQ(ra.report.overall_gbps, rb.report.overall_gbps) << "shard " << s;
    EXPECT_EQ(ra.report.mean_latency_cycles, rb.report.mean_latency_cycles)
        << "shard " << s;
    EXPECT_EQ(ra.fast_used, rb.fast_used) << "shard " << s;
    EXPECT_EQ(ra.slow_used, rb.slow_used) << "shard " << s;
    EXPECT_EQ(ra.tpm_commits, rb.tpm_commits) << "shard " << s;
    EXPECT_EQ(ra.tpm_aborts, rb.tpm_aborts) << "shard " << s;
    EXPECT_EQ(ra.counters.ToString(), rb.counters.ToString()) << "shard " << s;
  }
}

TEST(ShardedSimTest, ThreadCountDoesNotChangeResults) {
  // The tentpole contract: OS execution width is invisible to the
  // simulation. Run the same partition on 1, 2, 3, and 4 workers.
  const ShardedRunResult t1 = RunShardedMicro(SmallConfig(PolicyKind::kNomad));
  for (uint32_t threads : {2u, 3u, 4u}) {
    ShardedRunConfig cfg = SmallConfig(PolicyKind::kNomad);
    cfg.exec_threads = threads;
    const ShardedRunResult tn = RunShardedMicro(cfg);
    SCOPED_TRACE(threads);
    ExpectIdentical(t1, tn);
  }
}

TEST(ShardedSimTest, RepeatRunsAreIdentical) {
  const ShardedRunResult a = RunShardedMicro(SmallConfig(PolicyKind::kTpp));
  const ShardedRunResult b = RunShardedMicro(SmallConfig(PolicyKind::kTpp));
  ExpectIdentical(a, b);
}

TEST(ShardedSimTest, ShardsQuiesceWithoutInvariantViolations) {
  for (PolicyKind policy :
       {PolicyKind::kNoMigration, PolicyKind::kTpp, PolicyKind::kNomad}) {
    ShardedRunConfig cfg = SmallConfig(policy);
    cfg.exec_threads = 2;
    const ShardedRunResult r = RunShardedMicro(cfg);
    EXPECT_EQ(r.invariant_violations, 0u) << PolicyKindName(policy);
  }
}

TEST(ShardedSimTest, LockstepAccountingIsConsistent) {
  ShardedRunConfig cfg = SmallConfig(PolicyKind::kNomad);
  const ShardedRunResult r = RunShardedMicro(cfg);

  // Every shard finished all its ops and said so: the controller's
  // message-accumulated total must equal the configured work.
  const uint64_t per_shard_ops = cfg.base.total_ops / cfg.shards;
  EXPECT_EQ(r.total_ops, per_shard_ops * cfg.shards);
  EXPECT_EQ(r.per_shard.size(), cfg.shards);

  // One done message per shard plus at least one progress message each.
  EXPECT_GE(r.messages, 2u * cfg.shards);
  EXPECT_GT(r.epochs, 0u);
  // The run ends at the epoch after the last shard quiesces, so virtual
  // time is bounded by the epoch count.
  EXPECT_LE(r.max_virtual_time, (r.epochs + 1) * cfg.epoch_cycles);
  EXPECT_GT(r.aggregate_gbps, 0.0);
}

TEST(ShardedSimTest, ShardCountChangesPartitionButRunsClean) {
  // Different shard counts are different simulations (that is by design);
  // both must complete and audit clean.
  for (uint32_t shards : {1u, 2u, 8u}) {
    ShardedRunConfig cfg = SmallConfig(PolicyKind::kNomad);
    cfg.shards = shards;
    cfg.exec_threads = 2;
    const ShardedRunResult r = RunShardedMicro(cfg);
    EXPECT_EQ(r.invariant_violations, 0u) << shards << " shards";
    EXPECT_EQ(r.per_shard.size(), shards);
    EXPECT_EQ(r.total_ops, (cfg.base.total_ops / shards) * shards);
  }
}

TEST(ShardedYcsbTest, ThreadCountDoesNotChangeResults) {
  ShardedYcsbConfig cfg;
  cfg.base.policy = PolicyKind::kNomad;
  cfg.base.record_count = 20000;
  cfg.base.total_ops = 8000;
  cfg.shards = 4;
  const ShardedAppResult a = RunShardedYcsb(cfg);
  cfg.exec_threads = 4;
  const ShardedAppResult b = RunShardedYcsb(cfg);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.max_virtual_time, b.max_virtual_time);
  EXPECT_EQ(a.aggregate_ops_per_sec, b.aggregate_ops_per_sec);
  ASSERT_EQ(a.per_shard.size(), b.per_shard.size());
  for (size_t s = 0; s < a.per_shard.size(); s++) {
    EXPECT_EQ(a.per_shard[s].ops_per_sec, b.per_shard[s].ops_per_sec) << "shard " << s;
    EXPECT_EQ(a.per_shard[s].promotions, b.per_shard[s].promotions) << "shard " << s;
    EXPECT_EQ(a.per_shard[s].tpm_commits, b.per_shard[s].tpm_commits) << "shard " << s;
  }
  EXPECT_GT(a.total_ops, 0u);
}

}  // namespace
}  // namespace nomad
