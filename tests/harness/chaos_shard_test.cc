// Chaos seed matrix over the sharded engine: every fault focus runs at
// threads {1,4}, must pass the post-fault InvariantChecker quiescence
// audit, must actually degrade (nonzero fault/degradation counters — a
// chaos cell that injects nothing tests nothing), and must produce
// byte-identical recovery records across thread counts. This is the
// ctest-resident slice of the larger `chaos_sim --soak` campaign, so it
// also runs under the CI TSan job.
#include "src/harness/chaos.h"

#include <gtest/gtest.h>

#include <string>

#include "src/fault/fault_injector.h"

namespace nomad {
namespace {

// Small enough to keep the 3x2 matrix cheap under TSan, large enough that
// every focus's trigger windows land inside the run.
constexpr uint64_t kCellOps = 16000;

ChaosCellConfig Cell(ChaosFocus focus, uint32_t threads, uint64_t seed) {
  ChaosCellConfig cfg;
  cfg.seed = seed;
  cfg.focus = focus;
  cfg.exec_threads = threads;
  cfg.shards = 4;
  cfg.total_ops = kCellOps;
  return cfg;
}

class ChaosMatrixTest : public ::testing::TestWithParam<ChaosFocus> {};

TEST_P(ChaosMatrixTest, QuiescesWithDegradationAtEveryThreadCount) {
  for (uint32_t threads : {1u, 4u}) {
    for (uint64_t seed : {1u, 2u}) {
      const ChaosCellResult r = RunChaosCell(Cell(GetParam(), threads, seed));
      SCOPED_TRACE(std::string("focus=") + ChaosFocusName(GetParam()) +
                   " threads=" + std::to_string(threads) + " seed=" + std::to_string(seed));
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.invariant_violations, 0u) << r.recovery;
      EXPECT_GT(r.epochs, 0u);
      if (kFaultInjectionEnabled) {
        // The cell must have exercised its failure mode: faults fired and
        // the control plane visibly degraded (stall/delay/wave/overflow/
        // sync-fallback counters), rather than sailing through untouched.
        EXPECT_GT(r.faults_injected, 0u) << r.recovery;
        EXPECT_GT(r.degradations, 0u) << r.recovery;
      }
    }
  }
}

TEST_P(ChaosMatrixTest, RecoveryIsByteIdenticalAcrossThreadCounts) {
  std::string diff;
  EXPECT_TRUE(ChaosCellDeterministic(Cell(GetParam(), /*threads=*/1, /*seed=*/1), &diff))
      << diff;
}

std::string FocusParamName(const ::testing::TestParamInfo<ChaosFocus>& param_info) {
  return ChaosFocusName(param_info.param);
}

INSTANTIATE_TEST_SUITE_P(AllFocuses, ChaosMatrixTest, ::testing::ValuesIn(kChaosFocuses),
                         FocusParamName);

// The shard-stall focus arms windows at or past the watchdog threshold, so
// the deterministic watchdog must convict at least one shard and surface
// the verdict in both the merged result and the recovery record.
TEST(ChaosWatchdogTest, StallFocusTripsWatchdog) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const ChaosCellResult r = RunChaosCell(Cell(ChaosFocus::kShardStall, /*threads=*/1, /*seed=*/1));
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.watchdog_stalls, 0u) << r.recovery;
  EXPECT_NE(r.recovery.find("watchdog_stalls"), std::string::npos);
}

// Focus names round-trip (the soak CLI parses --focus lists with these).
TEST(ChaosFocusTest, NamesRoundTrip) {
  for (ChaosFocus f : kChaosFocuses) {
    ChaosFocus parsed;
    ASSERT_TRUE(ChaosFocusFromName(ChaosFocusName(f), &parsed));
    EXPECT_EQ(parsed, f);
  }
  ChaosFocus parsed;
  EXPECT_FALSE(ChaosFocusFromName("not-a-focus", &parsed));
}

}  // namespace
}  // namespace nomad
