// Tests for the command-line flag parser.
#include "src/harness/flags.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

Flags Make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, KeyValueParsing) {
  Flags f = Make({"--name=abc", "--count=42", "--ratio=0.5"});
  EXPECT_EQ(f.GetString("name", ""), "abc");
  EXPECT_EQ(f.GetUint("count", 0), 42u);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0), 0.5);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_EQ(f.GetString("x", "def"), "def");
  EXPECT_EQ(f.GetUint("x", 7), 7u);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 1.5), 1.5);
  EXPECT_TRUE(f.GetBool("x", true));
  EXPECT_FALSE(f.GetBool("x", false));
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Make({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagsTest, BoolFalseSpellings) {
  EXPECT_FALSE(Make({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(Make({"--x=0"}).GetBool("x", true));
  EXPECT_FALSE(Make({"--x=no"}).GetBool("x", true));
  EXPECT_TRUE(Make({"--x=yes"}).GetBool("x", false));
}

TEST(FlagsTest, PositionalArgsCollected) {
  Flags f = Make({"input.txt", "--k=v", "out.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(FlagsTest, UnusedKeysReported) {
  Flags f = Make({"--used=1", "--typo=2"});
  f.GetUint("used", 0);
  const auto unused = f.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagsTest, LastValueWins) {
  Flags f = Make({"--k=1", "--k=2"});
  EXPECT_EQ(f.GetUint("k", 0), 2u);
}

TEST(FlagsTest, EmptyValue) {
  Flags f = Make({"--k="});
  EXPECT_TRUE(f.Has("k"));
  EXPECT_EQ(f.GetString("k", "def"), "");
}

}  // namespace
}  // namespace nomad
