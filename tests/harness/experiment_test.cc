// Tests for the experiment harness: policy factory, Sim wiring, placement
// setups, the demote-all tool, and phase analysis.
#include "src/harness/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/table.h"
#include "src/workload/micro.h"

namespace nomad {
namespace {

PlatformSpec SmallPlatform(PlatformId id = PlatformId::kA) {
  Scale scale{1024};  // 16 GB -> 4096 pages
  return MakePlatform(id, scale);
}

TEST(PolicyFactoryTest, AllKindsConstructWithMatchingNames) {
  for (PolicyKind kind :
       {PolicyKind::kNoMigration, PolicyKind::kTpp, PolicyKind::kMemtisDefault,
        PolicyKind::kMemtisQuickCool, PolicyKind::kNomad}) {
    auto policy = MakePolicy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), PolicyKindName(kind));
  }
}

TEST(PolicyFactoryTest, SupportMatrix) {
  const PlatformSpec a = SmallPlatform(PlatformId::kA);
  const PlatformSpec d = SmallPlatform(PlatformId::kD);
  EXPECT_TRUE(PolicySupported(PolicyKind::kMemtisDefault, a));
  EXPECT_FALSE(PolicySupported(PolicyKind::kMemtisDefault, d));
  EXPECT_FALSE(PolicySupported(PolicyKind::kMemtisQuickCool, d));
  EXPECT_TRUE(PolicySupported(PolicyKind::kNomad, d));
  EXPECT_TRUE(PolicySupported(PolicyKind::kTpp, d));
}

TEST(SimTest, NomadAccessorOnlyForNomad) {
  Sim nomad_sim(SmallPlatform(), PolicyKind::kNomad, 1000);
  EXPECT_NE(nomad_sim.nomad(), nullptr);
  Sim tpp_sim(SmallPlatform(), PolicyKind::kTpp, 1000);
  EXPECT_EQ(tpp_sim.nomad(), nullptr);
}

TEST(SimTest, RunCompletesWorkloads) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 1000);
  ScrambledZipfian zipf(100, 0.99, 1);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 1000;
  cfg.wss_start = 0;
  cfg.wss_pages = 100;
  MicroWorkload w(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&w);
  sim.Run();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(w.ops_done(), 1000u);
}

TEST(SimTest, RunUntilOpsStopsEarly) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 1000);
  ScrambledZipfian zipf(100, 0.99, 1);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 10000;
  cfg.wss_start = 0;
  cfg.wss_pages = 100;
  MicroWorkload w(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&w);
  sim.RunUntilOps(500);
  EXPECT_GE(w.ops_done(), 500u);
  EXPECT_LT(w.ops_done(), 1000u);
}

TEST(MapRangeTest, MapsOnRequestedTier) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 10000);
  const uint64_t got = MapRange(sim.ms(), sim.as(), 0, 100, Tier::kSlow);
  EXPECT_EQ(got, 100u);
  for (Vpn v = 0; v < 100; v++) {
    EXPECT_EQ(sim.ms().pool().TierOf(sim.ms().PteOf(sim.as(), v)->pfn), Tier::kSlow);
  }
}

TEST(MovePageSilentTest, MovesWithoutCounters) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 100);
  sim.ms().MapNewPage(sim.as(), 0, Tier::kFast);
  EXPECT_TRUE(MovePageSilent(sim.ms(), sim.as(), 0, Tier::kSlow));
  EXPECT_EQ(sim.ms().pool().TierOf(sim.ms().PteOf(sim.as(), 0)->pfn), Tier::kSlow);
  EXPECT_EQ(sim.ms().counters().Get("migrate.sync_demote"), 0u);
  // Idempotent: already there.
  EXPECT_FALSE(MovePageSilent(sim.ms(), sim.as(), 0, Tier::kSlow));
}

TEST(DemoteAllTest, EvictsEverythingFromFast) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 10000);
  MapRange(sim.ms(), sim.as(), 0, 200, Tier::kFast);
  const uint64_t moved = DemoteAll(sim.ms(), sim.as());
  EXPECT_EQ(moved, 200u);
  EXPECT_EQ(sim.ms().pool().UsedFrames(Tier::kFast), 0u);
}

TEST(MicroLayoutTest, FrequencyOptPlacesHottestInFast) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 10000);
  MicroLayout layout;
  layout.rss_pages = 3000;
  layout.wss_pages = 1000;
  layout.wss_fast_pages = 300;
  layout.placement = Placement::kFrequencyOpt;
  ScrambledZipfian zipf(1000, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
  EXPECT_EQ(wss_start, 2000u);
  // The 300 hottest pages are on the fast tier...
  for (uint64_t r = 0; r < 300; r++) {
    const Vpn vpn = wss_start + zipf.ItemOfRank(r);
    EXPECT_EQ(sim.ms().pool().TierOf(sim.ms().PteOf(sim.as(), vpn)->pfn), Tier::kFast)
        << "rank " << r;
  }
  // ...and the coldest are not.
  for (uint64_t r = 700; r < 1000; r++) {
    const Vpn vpn = wss_start + zipf.ItemOfRank(r);
    EXPECT_EQ(sim.ms().pool().TierOf(sim.ms().PteOf(sim.as(), vpn)->pfn), Tier::kSlow)
        << "rank " << r;
  }
}

TEST(MicroLayoutTest, RandomPlacementSplitsBySize) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 10000);
  MicroLayout layout;
  layout.rss_pages = 3000;
  layout.wss_pages = 1000;
  layout.wss_fast_pages = 300;
  layout.placement = Placement::kRandom;
  ScrambledZipfian zipf(1000, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
  uint64_t fast = 0;
  for (Vpn v = wss_start; v < wss_start + 1000; v++) {
    fast += sim.ms().pool().TierOf(sim.ms().PteOf(sim.as(), v)->pfn) == Tier::kFast;
  }
  EXPECT_EQ(fast, 300u);
  // With random placement, the hot set is NOT concentrated on fast: of the
  // 300 hottest ranks, roughly 30% should be fast.
  uint64_t hot_on_fast = 0;
  for (uint64_t r = 0; r < 300; r++) {
    const Vpn vpn = wss_start + zipf.ItemOfRank(r);
    hot_on_fast +=
        sim.ms().pool().TierOf(sim.ms().PteOf(sim.as(), vpn)->pfn) == Tier::kFast;
  }
  EXPECT_GT(hot_on_fast, 40u);
  EXPECT_LT(hot_on_fast, 160u);
}

TEST(MicroLayoutTest, ColdRssFillsFastFirst) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 10000);
  MicroLayout layout;
  layout.rss_pages = 3000;
  layout.wss_pages = 1000;
  layout.wss_fast_pages = 0;
  layout.kernel_pages = 100;
  ScrambledZipfian zipf(1000, 0.99, 42);
  SetupMicroLayout(sim, layout, zipf);
  // Cold region (2000 pages) + kernel (100) on fast (4096 total).
  EXPECT_EQ(sim.ms().pool().UsedFrames(Tier::kFast), 2100u);
  EXPECT_EQ(sim.ms().pool().UsedFrames(Tier::kSlow), 1000u);
}

TEST(AnalyzeTest, ComputesPhaseBandwidthAndOps) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 1000);
  ScrambledZipfian zipf(50, 0.99, 1);
  MicroWorkload::Config cfg;
  cfg.base.total_ops = 20000;
  cfg.base.bandwidth_window = 100000;
  cfg.wss_start = 0;
  cfg.wss_pages = 50;
  MicroWorkload w(&sim.ms(), &sim.as(), &zipf, cfg);
  sim.AddWorkload(&w);
  sim.Run();
  const PhaseReport r = Analyze(sim);
  EXPECT_EQ(r.total_ops, 20000u);
  EXPECT_GT(r.overall_gbps, 0.0);
  EXPECT_GT(r.transient_gbps, 0.0);
  EXPECT_GT(r.stable_gbps, 0.0);
  EXPECT_GT(r.mean_latency_cycles, 0.0);
  EXPECT_GE(r.p99_latency_cycles, r.mean_latency_cycles * 0.2);
  EXPECT_GT(r.ops_per_sec, 0.0);
  EXPECT_GT(r.total_cycles, 0u);
}

TEST(AnalyzeTest, EmptySimIsZeroes) {
  Sim sim(SmallPlatform(), PolicyKind::kNoMigration, 10);
  const PhaseReport r = Analyze(sim);
  EXPECT_EQ(r.total_ops, 0u);
  EXPECT_EQ(r.overall_gbps, 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2.50"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(FmtTest, Formats) {
  EXPECT_EQ(Fmt(1.234, 2), "1.23");
  EXPECT_EQ(Fmt(1.0, 0), "1");
  EXPECT_EQ(FmtCount(123), "123");
  EXPECT_EQ(FmtCount(15900), "15.9K");
  EXPECT_EQ(FmtCount(2500000), "2.5M");
}

}  // namespace
}  // namespace nomad
