// Tests for the thrash governor (the paper's sec. 5 extension).
#include "src/nomad/governor.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/workload/micro.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 256 * kPageSize;
  p.tiers[1].capacity_bytes = 256 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class GovernorTest : public ::testing::Test {
 protected:
  GovernorTest() : ms_(TestPlatform(), &engine_) {
    ThrashGovernor::Config cfg;
    cfg.period = 1000;
    cfg.min_promotions = 100;
    cfg.probation_periods = 2;
    cfg.max_backoff = 8;
    governor_ = std::make_unique<ThrashGovernor>(&ms_, &gate_, cfg);
    engine_.AddActor(governor_.get());
  }

  // Advances virtual time by one governor period.
  void Tick() { engine_.Run(engine_.now() + 1000); }

  // Simulates one period of migration activity.
  void Churn(uint64_t promos, uint64_t demos) {
    ms_.counters().Add("nomad.tpm_commit", promos);
    ms_.counters().Add("nomad.demote_recent", demos);
  }

  Engine engine_;
  MemorySystem ms_;
  PromotionGate gate_;
  std::unique_ptr<ThrashGovernor> governor_;
};

TEST_F(GovernorTest, GateStartsOpen) { EXPECT_TRUE(gate_.open); }

TEST_F(GovernorTest, QuietPeriodsKeepGateOpen) {
  for (int i = 0; i < 5; i++) {
    Tick();
  }
  EXPECT_TRUE(gate_.open);
  EXPECT_EQ(governor_->throttle_events(), 0u);
}

TEST_F(GovernorTest, OneSidedMigrationKeepsGateOpen) {
  // Heavy promotion with little demotion = healthy warm-up, not thrash.
  for (int i = 0; i < 4; i++) {
    Churn(1000, 50);
    Tick();
  }
  EXPECT_TRUE(gate_.open);
}

TEST_F(GovernorTest, BalancedChurnClosesGate) {
  Tick();             // baseline sample
  Churn(1000, 950);   // promotions ~ demotions, both high
  Tick();
  EXPECT_FALSE(gate_.open);
  EXPECT_EQ(governor_->throttle_events(), 1u);
  EXPECT_EQ(ms_.counters().Get("governor.throttle"), 1u);
}

TEST_F(GovernorTest, LowRateBalancedChurnIgnored) {
  Tick();
  Churn(50, 50);  // balanced but below min_promotions
  Tick();
  EXPECT_TRUE(gate_.open);
}

TEST_F(GovernorTest, GateReopensAfterBackoff) {
  Tick();
  Churn(1000, 950);
  Tick();
  ASSERT_FALSE(gate_.open);
  // First throttle: backoff = 1 period, then it reopens on probation.
  Tick();
  EXPECT_TRUE(gate_.open);
  EXPECT_EQ(ms_.counters().Get("governor.reopen"), 1u);
}

TEST_F(GovernorTest, RelapseDoublesBackoff) {
  Tick();
  Churn(1000, 950);
  Tick();           // close (backoff 1)
  Tick();           // reopen on probation
  ASSERT_TRUE(gate_.open);
  Churn(1000, 950);
  Tick();           // relapse during probation: close with backoff 2
  ASSERT_FALSE(gate_.open);
  Tick();           // 1 of 2 closed periods
  EXPECT_FALSE(gate_.open);
  Tick();           // 2 of 2: reopens
  EXPECT_TRUE(gate_.open);
}

TEST_F(GovernorTest, SurvivingProbationResetsBackoff) {
  Tick();
  Churn(1000, 950);
  Tick();  // close
  Tick();  // reopen, probation = 2
  Tick();  // quiet probation period 1
  Tick();  // quiet probation period 2 -> backoff resets
  Churn(1000, 950);
  Tick();  // close again: backoff must be 1 (not doubled)
  ASSERT_FALSE(gate_.open);
  Tick();
  EXPECT_TRUE(gate_.open);
}

// End-to-end: under a large-WSS thrashing run, the governed NOMAD throttles
// promotion and performs at least as well as ungoverned NOMAD.
TEST(GovernorIntegrationTest, ThrottlesUnderLargeWss) {
  auto run = [](bool governed) {
    const Scale scale{1024};
    const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
    NomadPolicy::Config pcfg;
    pcfg.enable_governor = governed;
    pcfg.governor.period = 500000;
    pcfg.governor.min_promotions = 8;  // scaled-down run: low absolute rates
    Sim sim(platform, std::make_unique<NomadPolicy>(pcfg), PolicyKind::kNomad, 20000);
    MicroLayout layout;
    layout.rss_pages = scale.Pages(27.0);
    layout.wss_pages = scale.Pages(27.0);
    layout.wss_fast_pages = scale.Pages(16.0);
    layout.kernel_pages = scale.Pages(3.5);
    ScrambledZipfian zipf(layout.wss_pages, 0.99, 5);
    const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
    MicroWorkload::Config cfg;
    cfg.base.total_ops = 120000;
    cfg.wss_start = wss_start;
    cfg.wss_pages = layout.wss_pages;
    MicroWorkload app(&sim.ms(), &sim.as(), &zipf, cfg);
    sim.AddWorkload(&app);
    sim.Run();
    return std::make_pair(sim.nomad()->governor() != nullptr
                              ? sim.ms().counters().Get("governor.throttle")
                              : 0,
                          Analyze(sim).overall_gbps);
  };
  const auto [throttles, governed_gbps] = run(true);
  const auto [zero, plain_gbps] = run(false);
  EXPECT_GT(throttles, 0u);
  EXPECT_EQ(zero, 0u);
  EXPECT_GE(governed_gbps, plain_gbps * 0.9);
}

}  // namespace
}  // namespace nomad
