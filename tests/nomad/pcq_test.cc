// Tests for the promotion candidate queue / migration pending queue.
#include "src/nomad/pcq.h"

#include <gtest/gtest.h>

#include "src/fault/fault_injector.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 64 * kPageSize;
  p.tiers[1].capacity_bytes = 64 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class PcqTest : public ::testing::Test {
 protected:
  PcqTest() : ms_(TestPlatform(), &engine_), as_(256) {
    ms_.RegisterCpu(0);
    PromotionQueues::Config cfg;
    cfg.pcq_capacity = 8;
    queues_ = std::make_unique<PromotionQueues>(&ms_, cfg);
  }

  Pfn SlowPage(Vpn vpn) { return ms_.MapNewPage(as_, vpn, Tier::kSlow); }

  // Marks the page as referenced + accessed (a hot page's state).
  void Heat(Vpn vpn) {
    Pte* pte = ms_.PteOf(as_, vpn);
    pte->accessed = true;
    ms_.pool().frame(pte->pfn).set_referenced(true);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  std::unique_ptr<PromotionQueues> queues_;
};

TEST_F(PcqTest, EnqueueSetsFlag) {
  const Pfn pfn = SlowPage(0);
  queues_->EnqueueCandidate(pfn);
  EXPECT_TRUE(ms_.pool().frame(pfn).in_pcq());
  EXPECT_EQ(queues_->pcq_size(), 1u);
}

TEST_F(PcqTest, DuplicateEnqueueIgnored) {
  const Pfn pfn = SlowPage(0);
  queues_->EnqueueCandidate(pfn);
  queues_->EnqueueCandidate(pfn);
  EXPECT_EQ(queues_->pcq_size(), 1u);
}

TEST_F(PcqTest, FirstScanPrimesAndClearsAbit) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  auto [moved, cost] = queues_->ScanPcq(10);
  EXPECT_EQ(moved, 0u);
  EXPECT_GT(cost, 0u);
  EXPECT_TRUE(ms_.pool().frame(pfn).pcq_primed());
  EXPECT_FALSE(ms_.PteOf(as_, 0)->accessed);
  EXPECT_EQ(queues_->pcq_size(), 1u);  // rotated, still a candidate
}

TEST_F(PcqTest, SecondTouchAfterPrimeMovesToPending) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  queues_->ScanPcq(10);                 // prime
  ms_.PteOf(as_, 0)->accessed = true;   // the decisive second touch
  auto [moved, cost] = queues_->ScanPcq(10);
  EXPECT_EQ(moved, 1u);
  EXPECT_TRUE(ms_.pool().frame(pfn).in_pending());
  EXPECT_FALSE(ms_.pool().frame(pfn).in_pcq());
  EXPECT_EQ(queues_->pending_size(), 1u);
}

TEST_F(PcqTest, UntouchedCandidateKeepsCycling) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  for (int i = 0; i < 5; i++) {
    auto [moved, cost] = queues_->ScanPcq(10);
    EXPECT_EQ(moved, 0u);
  }
  EXPECT_EQ(queues_->pcq_size(), 1u);
  EXPECT_TRUE(ms_.pool().frame(pfn).in_pcq());
}

TEST_F(PcqTest, ScanDoesNotReexamineSameEntryInOneCall) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  // Even with a huge limit, the snapshot prevents prime+expire in one call.
  queues_->ScanPcq(1000);
  EXPECT_TRUE(ms_.pool().frame(pfn).in_pcq());
}

TEST_F(PcqTest, ColdPageWithoutReferencedNeverPromotes) {
  const Pfn pfn = SlowPage(0);
  queues_->EnqueueCandidate(pfn);
  queues_->ScanPcq(10);
  ms_.PteOf(as_, 0)->accessed = true;  // touched, but never referenced
  ms_.pool().frame(pfn).set_referenced(false);
  queues_->ScanPcq(10);
  EXPECT_EQ(queues_->pending_size(), 0u);
}

TEST_F(PcqTest, OverflowDropsOldest) {
  std::vector<Pfn> pages;
  for (Vpn v = 0; v < 9; v++) {  // capacity is 8
    pages.push_back(SlowPage(v));
    queues_->EnqueueCandidate(pages.back());
  }
  EXPECT_EQ(queues_->pcq_size(), 8u);
  EXPECT_FALSE(ms_.pool().frame(pages[0]).in_pcq());  // oldest dropped
  EXPECT_TRUE(ms_.pool().frame(pages[8]).in_pcq());
  EXPECT_EQ(ms_.counters().Get("nomad.pcq_overflow"), 1u);
}

TEST_F(PcqTest, ScanSkipsPromotedPages) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  // Simulate promotion elsewhere: page is unmapped & freed.
  ms_.UnmapAndFree(as_, 0);
  auto [moved, cost] = queues_->ScanPcq(10);
  EXPECT_EQ(moved, 0u);
  EXPECT_EQ(queues_->pcq_size(), 0u);  // dropped as stale
}

TEST_F(PcqTest, PopPendingValidates) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  queues_->ScanPcq(10);
  ms_.PteOf(as_, 0)->accessed = true;
  queues_->ScanPcq(10);
  EXPECT_EQ(queues_->PopPending(), pfn);
  EXPECT_EQ(queues_->PopPending(), kInvalidPfn);
}

TEST_F(PcqTest, PopPendingSkipsStaleEntries) {
  const Pfn pfn = SlowPage(0);
  Heat(0);
  queues_->EnqueueCandidate(pfn);
  queues_->ScanPcq(10);
  ms_.PteOf(as_, 0)->accessed = true;
  queues_->ScanPcq(10);
  ms_.UnmapAndFree(as_, 0);  // page vanished while pending
  EXPECT_EQ(queues_->PopPending(), kInvalidPfn);
}

TEST_F(PcqTest, RequeuePendingForRetry) {
  const Pfn pfn = SlowPage(0);
  queues_->RequeuePending(pfn);
  EXPECT_TRUE(ms_.pool().frame(pfn).in_pending());
  EXPECT_EQ(queues_->PopPending(), pfn);
}

TEST_F(PcqTest, EnqueueRejectedWhilePendingOrMigrating) {
  const Pfn pfn = SlowPage(0);
  ms_.pool().frame(pfn).set_in_pending(true);
  queues_->EnqueueCandidate(pfn);
  EXPECT_EQ(queues_->pcq_size(), 0u);
  ms_.pool().frame(pfn).set_in_pending(false);
  ms_.pool().frame(pfn).set_migrating(true);
  queues_->EnqueueCandidate(pfn);
  EXPECT_EQ(queues_->pcq_size(), 0u);
}

TEST_F(PcqTest, ScanClearsAbitThroughTlb) {
  const Pfn pfn = SlowPage(0);
  ms_.Access(0, as_, 0, 0, false);  // loads the TLB + sets A
  ms_.pool().frame(pfn).set_referenced(true);
  queues_->EnqueueCandidate(pfn);
  queues_->ScanPcq(10);
  // The cached translation must be gone so the next touch re-walks and
  // re-sets the A bit.
  EXPECT_EQ(ms_.tlb(0).Lookup(0), nullptr);
  ms_.Access(0, as_, 0, 0, false);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->accessed);
}

TEST_F(PcqTest, OverflowEmitsTraceAndCounts) {
  // Fill to capacity (8), then one more: the oldest is evicted.
  for (Vpn v = 0; v < 9; v++) {
    queues_->EnqueueCandidate(SlowPage(v));
  }
  EXPECT_EQ(queues_->pcq_size(), 8u);
  EXPECT_EQ(queues_->overflow_count(), 1u);
  EXPECT_EQ(ms_.counters().Get("nomad.pcq_overflow"), 1u);
  if (kTracingEnabled) {
    EXPECT_EQ(ms_.trace().CountOf(TraceEvent::kPcqOverflow), 1u);
  }
}

TEST_F(PcqTest, HighWatermarksTrackDepth) {
  for (Vpn v = 0; v < 5; v++) {
    queues_->EnqueueCandidate(SlowPage(v));
  }
  EXPECT_EQ(queues_->pcq_hwm(), 5u);
  // Drain some; the high watermark stays.
  queues_->ScanPcq(5);
  EXPECT_EQ(queues_->pcq_hwm(), 5u);
}

// Advancing virtual time requires a runnable actor.
class TickerActor : public Actor {
 public:
  Cycles Step(Engine&) override { return 1000; }
  std::string name() const override { return "ticker"; }
};

TEST_F(PcqTest, DeferPendingSurfacesAfterReadyTime) {
  TickerActor ticker;
  engine_.AddActor(&ticker);
  const Pfn pfn = SlowPage(0);
  queues_->DeferPending(pfn, 5000);
  EXPECT_TRUE(ms_.pool().frame(pfn).in_pending());
  EXPECT_EQ(queues_->deferred_size(), 1u);
  EXPECT_EQ(queues_->NextDeferredReady(), 5000u);
  // Not due yet: PopPending returns nothing (engine time is 0).
  EXPECT_EQ(queues_->PopPending(), kInvalidPfn);
  EXPECT_EQ(queues_->deferred_size(), 1u);
  // Advance virtual time past the ready point.
  engine_.Run(6000);
  EXPECT_EQ(queues_->PopPending(), pfn);
  EXPECT_EQ(queues_->deferred_size(), 0u);
  EXPECT_EQ(queues_->NextDeferredReady(), kNever);
}

// --- PCQ overflow under injected queue pressure -------------------------
//
// The kPcqOverflow fault makes EnqueueCandidate behave as if the PCQ were
// at capacity. These tests pin down why no retry can be lost through that
// seam: an overflow eviction only ever touches pcq_.front(), and every
// deferred/pending page carries in_pending, which makes EnqueueCandidate a
// no-op for it — so a page awaiting its deferred-promotion retry can
// neither be evicted by the storm nor double-queued by the scanner while
// it waits.

TEST_F(PcqTest, ForcedOverflowEvictsOnlyOldestCandidate) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  auto fi = std::make_unique<FaultInjector>(7);
  FaultSchedule storm;
  storm.probability = 1.0;
  fi->set_schedule(FaultKind::kPcqOverflow, storm);
  ms_.set_fault_injector(std::move(fi));
  const Pfn a = SlowPage(0);
  const Pfn b = SlowPage(1);
  const Pfn c = SlowPage(2);
  queues_->EnqueueCandidate(a);  // empty queue: no fault consult, admitted
  queues_->EnqueueCandidate(b);  // forced overflow evicts a
  queues_->EnqueueCandidate(c);  // forced overflow evicts b
  EXPECT_EQ(queues_->pcq_size(), 1u);
  EXPECT_FALSE(ms_.pool().frame(a).in_pcq());
  EXPECT_FALSE(ms_.pool().frame(b).in_pcq());
  EXPECT_TRUE(ms_.pool().frame(c).in_pcq());
  EXPECT_EQ(queues_->overflow_count(), 2u);
  EXPECT_EQ(ms_.counters().Get("nomad.pcq_overflow"), 2u);
}

TEST_F(PcqTest, DeferredRetrySurvivesForcedOverflowStorm) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  TickerActor ticker;
  engine_.AddActor(&ticker);
  auto fi = std::make_unique<FaultInjector>(7);
  FaultSchedule storm;
  storm.probability = 1.0;
  fi->set_schedule(FaultKind::kPcqOverflow, storm);
  ms_.set_fault_injector(std::move(fi));
  const Pfn retry = SlowPage(0);
  queues_->DeferPending(retry, 2000);  // a deferred promotion retry in flight
  // A storm of new candidates, every one forcing an eviction.
  for (Vpn v = 1; v <= 6; v++) {
    queues_->EnqueueCandidate(SlowPage(v));
  }
  // The scanner re-notices the hot page mid-storm: in_pending makes this a
  // no-op instead of a second queue entry that the storm could evict.
  queues_->EnqueueCandidate(retry);
  EXPECT_FALSE(ms_.pool().frame(retry).in_pcq());
  EXPECT_TRUE(ms_.pool().frame(retry).in_pending());
  EXPECT_EQ(queues_->deferred_size(), 1u);
  EXPECT_GT(queues_->overflow_count(), 0u);
  // The retry still fires once due, storm notwithstanding.
  engine_.Run(3000);
  EXPECT_EQ(queues_->PopPending(), retry);
}

TEST_F(PcqTest, ForcedOverflowPreservesFifoOrderOfSurvivors) {
  if (!kFaultInjectionEnabled) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  auto fi = std::make_unique<FaultInjector>(7);
  FaultSchedule once;
  once.trigger_start = 0;  // window-only (no probability): exactly the
  once.trigger_count = 1;  // first consult fires
  fi->set_schedule(FaultKind::kPcqOverflow, once);
  ms_.set_fault_injector(std::move(fi));
  std::vector<Pfn> pages;
  for (Vpn v = 0; v < 4; v++) {
    pages.push_back(SlowPage(v));
    Heat(v);
    queues_->EnqueueCandidate(pages.back());  // v==1 forces out v==0
  }
  EXPECT_FALSE(ms_.pool().frame(pages[0]).in_pcq());
  EXPECT_EQ(queues_->pcq_size(), 3u);
  // Promote the survivors through the usual two-touch protocol; pending
  // (and thus migration) order must still be their enqueue order.
  queues_->ScanPcq(10);  // prime
  for (Vpn v = 1; v < 4; v++) {
    ms_.PteOf(as_, v)->accessed = true;
  }
  auto [moved, cost] = queues_->ScanPcq(10);
  (void)cost;
  EXPECT_EQ(moved, 3u);
  EXPECT_EQ(queues_->PopPending(), pages[1]);
  EXPECT_EQ(queues_->PopPending(), pages[2]);
  EXPECT_EQ(queues_->PopPending(), pages[3]);
}

TEST_F(PcqTest, DeferPendingDrainsInReadyOrder) {
  TickerActor ticker;
  engine_.AddActor(&ticker);
  const Pfn a = SlowPage(0);
  const Pfn b = SlowPage(1);
  queues_->DeferPending(b, 3000);  // later insertion, earlier deadline
  queues_->DeferPending(a, 1000);
  engine_.Run(4000);
  EXPECT_EQ(queues_->PopPending(), a);
  EXPECT_EQ(queues_->PopPending(), b);
}

}  // namespace
}  // namespace nomad
