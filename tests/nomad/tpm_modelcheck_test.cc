// Tests for the TPM model checker (tools/tpm_modelcheck).
//
// The two hand-written schedules are the canonical counterexamples the
// checker must flag: a lost update when shootdown #1 is skipped (a stale
// dirty-state TLB entry lets a mid-copy store bypass the dirty bit) and a
// stale shadow when the commit skips the shadow_rw write-protection (the
// first post-commit store lands without discarding the shadow). The same
// schedules must be clean against the unmutated protocol.
#include <sstream>

#include <gtest/gtest.h>

#include "tools/tpm_modelcheck/explore.h"
#include "tools/tpm_modelcheck/model.h"

namespace nomad {
namespace modelcheck {
namespace {

std::vector<Action> MustDecode(const std::string& text) {
  auto s = DecodeSchedule(text);
  EXPECT_TRUE(s.has_value()) << text;
  return s.value_or(std::vector<Action>{});
}

// Store #0 caches a dirty TLB entry; with shootdown #1 skipped, store #1
// rides that entry mid-copy without re-setting the PTE dirty bit, the
// validity check passes, and the commit publishes a copy missing store #1.
TEST(TpmModelcheckTest, LostUpdateScheduleIsFlagged) {
  Params p;
  p.shadowing = false;  // exclusive commit: the damage shows as a lost update
  p.mutation = Mutation::kSkipShootdown1;
  auto v = Replay(p, MustDecode("w,s,s,s,w,s,s,s,s"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "lost_update");
}

// With shadow retention but no write protection, the first post-commit
// store lands on the new frame while the shadow still holds old content.
TEST(TpmModelcheckTest, StaleShadowScheduleIsFlagged) {
  Params p;
  p.shadowing = true;
  p.mutation = Mutation::kNoWriteProtect;
  auto v = Replay(p, MustDecode("s,s,s,s,s,s,s,w"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "stale_shadow");
}

// The same schedules are harmless against the real protocol: the first
// aborts on the re-set dirty bit, the second takes the shadow fault.
TEST(TpmModelcheckTest, KnownBadSchedulesAreCleanWithoutMutation) {
  Params p;
  p.shadowing = false;
  EXPECT_FALSE(Replay(p, MustDecode("w,s,s,s,w,s,s,s,s")).has_value());
  p.shadowing = true;
  EXPECT_FALSE(Replay(p, MustDecode("s,s,s,s,s,s,s,w")).has_value());
}

// The stale-TLB commit race: a load after shootdown #1 caches a writable
// translation; with shootdown #2 skipped it survives the unmap, and the
// post-commit store writes the retained shadow frame.
TEST(TpmModelcheckTest, SkipShootdown2ReproducerIsFlagged) {
  Params p;
  p.shadowing = true;
  p.mutation = Mutation::kSkipShootdown2;
  auto v = Replay(p, MustDecode("s,s,s,s,l,s,s,s,w"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->invariant, "stale_shadow");
  EXPECT_FALSE(Replay(Params{}, MustDecode("s,s,s,s,l,s,s,s,w")).has_value());
}

// Exhaustive exploration of the unmutated protocol finds no violation in
// any machine/shadowing configuration.
TEST(TpmModelcheckTest, CorrectProtocolSurvivesAllInterleavings) {
  for (const bool sync : {false, true}) {
    for (const bool shadowing : {true, false}) {
      Params p;
      p.sync = sync;
      p.shadowing = shadowing;
      const Result r = Explore(p);
      EXPECT_FALSE(r.violation.has_value())
          << "machine=" << (sync ? "sync" : "tpm") << " shadowing=" << shadowing << " "
          << (r.violation ? r.violation->invariant : "") << " schedule="
          << (r.violation ? EncodeSchedule(r.violation->schedule) : "");
      EXPECT_GT(r.schedules, 0u);
    }
  }
}

// Branch-order permutation must not change what exhaustive search finds.
TEST(TpmModelcheckTest, SeedDoesNotChangeExhaustiveness) {
  Params p;
  const Result base = Explore(p);
  for (const uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    Params q = p;
    q.seed = seed;
    const Result r = Explore(q);
    EXPECT_EQ(r.schedules, base.schedules) << "seed=" << seed;
    EXPECT_FALSE(r.violation.has_value());
  }
}

// Every seeded protocol mutation is caught; the correct protocol is clean.
TEST(TpmModelcheckTest, SelftestCatchesEveryMutation) {
  std::ostringstream out;
  EXPECT_EQ(RunSelftest(Params{}, out), 0) << out.str();
}

TEST(TpmModelcheckTest, ScheduleEncodingRoundTrips) {
  const std::string text = "w,s,t,l,r,s";
  auto s = DecodeSchedule(text);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(EncodeSchedule(*s), text);
  EXPECT_FALSE(DecodeSchedule("w,x").has_value());
}

}  // namespace
}  // namespace modelcheck
}  // namespace nomad
