// Tests for the XArray-equivalent radix tree, including a randomized
// differential test against std::map.
#include "src/nomad/radix_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "src/sim/rng.h"

namespace nomad {
namespace {

TEST(RadixTreeTest, EmptyTree) {
  RadixTree<uint64_t> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Find(0), nullptr);
  EXPECT_FALSE(t.Erase(0));
}

TEST(RadixTreeTest, InsertFind) {
  RadixTree<uint64_t> t;
  EXPECT_TRUE(t.Insert(5, 500));
  ASSERT_NE(t.Find(5), nullptr);
  EXPECT_EQ(*t.Find(5), 500u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RadixTreeTest, InsertOverwrites) {
  RadixTree<uint64_t> t;
  EXPECT_TRUE(t.Insert(5, 500));
  EXPECT_FALSE(t.Insert(5, 600));
  EXPECT_EQ(*t.Find(5), 600u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RadixTreeTest, KeyZero) {
  RadixTree<uint64_t> t;
  t.Insert(0, 1);
  ASSERT_NE(t.Find(0), nullptr);
  EXPECT_EQ(*t.Find(0), 1u);
}

TEST(RadixTreeTest, GrowsForLargeKeys) {
  RadixTree<uint64_t> t;
  t.Insert(1, 10);
  t.Insert(uint64_t{1} << 40, 20);
  EXPECT_EQ(*t.Find(1), 10u);
  EXPECT_EQ(*t.Find(uint64_t{1} << 40), 20u);
  EXPECT_GE(t.height(), 6);
}

TEST(RadixTreeTest, MaxKey) {
  RadixTree<uint64_t> t;
  const uint64_t k = ~uint64_t{0};
  t.Insert(k, 7);
  ASSERT_NE(t.Find(k), nullptr);
  EXPECT_EQ(*t.Find(k), 7u);
}

TEST(RadixTreeTest, FindMissingBeyondRange) {
  RadixTree<uint64_t> t;
  t.Insert(3, 30);
  EXPECT_EQ(t.Find(uint64_t{1} << 50), nullptr);
}

TEST(RadixTreeTest, EraseRemoves) {
  RadixTree<uint64_t> t;
  t.Insert(5, 500);
  EXPECT_TRUE(t.Erase(5));
  EXPECT_EQ(t.Find(5), nullptr);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Erase(5));
}

TEST(RadixTreeTest, ErasePrunesEmptyNodes) {
  RadixTree<uint64_t> t;
  t.Insert(uint64_t{1} << 40, 1);
  t.Erase(uint64_t{1} << 40);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 0);  // the whole spine was pruned
}

TEST(RadixTreeTest, EraseLeavesSiblings) {
  RadixTree<uint64_t> t;
  t.Insert(64, 1);  // same parent, different leaves
  t.Insert(128, 2);
  t.Erase(64);
  EXPECT_EQ(t.Find(64), nullptr);
  ASSERT_NE(t.Find(128), nullptr);
  EXPECT_EQ(*t.Find(128), 2u);
}

TEST(RadixTreeTest, ForEachAscendingOrder) {
  RadixTree<uint64_t> t;
  t.Insert(300, 3);
  t.Insert(5, 1);
  t.Insert(70, 2);
  std::vector<uint64_t> keys;
  t.ForEach([&](uint64_t k, const uint64_t&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<uint64_t>{5, 70, 300}));
}

TEST(RadixTreeTest, DenseRange) {
  RadixTree<uint64_t> t;
  for (uint64_t k = 0; k < 1000; k++) {
    t.Insert(k, k * 2);
  }
  EXPECT_EQ(t.size(), 1000u);
  for (uint64_t k = 0; k < 1000; k++) {
    ASSERT_NE(t.Find(k), nullptr);
    EXPECT_EQ(*t.Find(k), k * 2);
  }
}

// Property-based differential test: random interleaved inserts, erases and
// lookups must match std::map exactly, across several seeds.
class RadixTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RadixTreeFuzz, MatchesStdMap) {
  Rng rng(GetParam());
  RadixTree<uint64_t> tree;
  std::map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 20000; op++) {
    // Mixed key ranges: small (dense collisions) and huge (deep trees).
    const uint64_t key = rng.Chance(0.5) ? rng.Below(512) : rng.Next() >> rng.Below(40);
    const double action = rng.NextDouble();
    if (action < 0.5) {
      const uint64_t value = rng.Next();
      EXPECT_EQ(tree.Insert(key, value), ref.insert_or_assign(key, value).second);
    } else if (action < 0.8) {
      EXPECT_EQ(tree.Erase(key), ref.erase(key) > 0);
    } else {
      const uint64_t* found = tree.Find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    EXPECT_EQ(tree.size(), ref.size());
  }
  // Full sweep must match.
  std::vector<std::pair<uint64_t, uint64_t>> dumped;
  tree.ForEach([&](uint64_t k, const uint64_t& v) { dumped.emplace_back(k, v); });
  std::vector<std::pair<uint64_t, uint64_t>> expected(ref.begin(), ref.end());
  EXPECT_EQ(dumped, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixTreeFuzz, ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace nomad
