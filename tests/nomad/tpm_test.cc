// Tests for kpromote's transactional page migration: commit, abort on
// dirty, shadow creation, fallbacks, and retries.
#include "src/nomad/kpromote.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 64, uint64_t slow_pages = 64) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class TpmTest : public ::testing::Test {
 protected:
  TpmTest() : TpmTest(TestPlatform()) {}
  explicit TpmTest(const PlatformSpec& platform)
      : ms_(platform, &engine_),
        as_(256),
        shadows_(&ms_),
        queues_(&ms_),
        kpromote_(&ms_, &queues_, &shadows_) {
    ms_.RegisterCpu(0);
    const ActorId id = engine_.AddActor(&kpromote_);
    kpromote_.set_actor_id(id);
  }

  // Maps a slow page and queues it for promotion directly.
  Pfn QueueSlowPage(Vpn vpn, bool writable = true) {
    const Pfn pfn = ms_.MapNewPage(as_, vpn, Tier::kSlow, writable);
    ms_.pool().frame(pfn).set_referenced(true);
    queues_.RequeuePending(pfn);
    return pfn;
  }

  // Runs kpromote's next step (Begin or Commit).
  void StepOnce() {
    const Cycles t = engine_.NextTimeOf(kpromote_.actor_id());
    engine_.Run(t);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  ShadowManager shadows_;
  PromotionQueues queues_;
  KpromoteActor kpromote_;
};

TEST_F(TpmTest, CommitPromotesAndCreatesShadow) {
  const Pfn old_pfn = QueueSlowPage(0);
  StepOnce();  // Begin: clear dirty, shootdown, copy
  EXPECT_TRUE(ms_.pool().frame(old_pfn).migrating());
  StepOnce();  // Commit
  EXPECT_EQ(kpromote_.stats().commits, 1u);
  const Pte* pte = ms_.PteOf(as_, 0);
  ASSERT_TRUE(pte->present);
  const Pfn new_pfn = pte->pfn;
  EXPECT_EQ(ms_.pool().TierOf(new_pfn), Tier::kFast);
  // Master is read-only with the original permission in shadow_rw.
  EXPECT_FALSE(pte->writable);
  EXPECT_TRUE(pte->shadow_rw);
  EXPECT_FALSE(pte->dirty);
  // The old frame is the shadow.
  EXPECT_TRUE(ms_.pool().frame(new_pfn).shadowed());
  EXPECT_EQ(shadows_.ShadowOf(new_pfn), old_pfn);
  EXPECT_TRUE(ms_.pool().frame(old_pfn).is_shadow());
  EXPECT_EQ(ms_.pool().frame(old_pfn).lru(), LruList::kNone);
  // The master lands on the fast active list.
  EXPECT_EQ(ms_.pool().frame(new_pfn).lru(), LruList::kActive);
}

TEST_F(TpmTest, ReadOnlyPagePromotesWithoutShadowRw) {
  QueueSlowPage(0, /*writable=*/false);
  StepOnce();
  StepOnce();
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_FALSE(pte->writable);
  EXPECT_FALSE(pte->shadow_rw);  // it was never writable
}

TEST_F(TpmTest, PageStaysAccessibleDuringCopy) {
  QueueSlowPage(0);
  StepOnce();  // Begin; the copy is in flight now
  // An access during the copy must not block or fault.
  AccessInfo info;
  const Cycles c = ms_.Access(0, as_, 0, 0, false, 4, &info);
  EXPECT_FALSE(info.took_fault);
  EXPECT_EQ(info.tier, Tier::kSlow);
  EXPECT_LT(c, 10000u);
}

TEST_F(TpmTest, WriteDuringCopyAbortsTransaction) {
  const Pfn old_pfn = QueueSlowPage(0);
  StepOnce();                        // Begin
  ms_.Access(0, as_, 0, 0, true);    // store during the copy window
  EXPECT_TRUE(ms_.PteOf(as_, 0)->dirty);
  StepOnce();                        // Commit -> abort
  EXPECT_EQ(kpromote_.stats().aborts, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  // The page is untouched: same frame, still mapped, still writable.
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_EQ(pte->pfn, old_pfn);
  EXPECT_TRUE(pte->writable);
  EXPECT_FALSE(ms_.pool().frame(old_pfn).migrating());
  // No fast frame was leaked.
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kFast), 0u);
  // The page was parked for a backed-off retry, still flagged pending.
  EXPECT_EQ(kpromote_.stats().backoffs, 1u);
  EXPECT_EQ(queues_.deferred_size(), 1u);
  EXPECT_TRUE(ms_.pool().frame(old_pfn).in_pending());
  EXPECT_EQ(ms_.pool().frame(old_pfn).tpm_aborts(), 1u);
}

TEST_F(TpmTest, AbortedTransactionRetriesAndCommits) {
  QueueSlowPage(0);
  StepOnce();
  ms_.Access(0, as_, 0, 0, true);  // abort #1
  StepOnce();
  EXPECT_EQ(queues_.deferred_size(), 1u);
  // No further writes: once the backoff expires, the retry goes through.
  for (int i = 0; i < 10 && kpromote_.stats().commits == 0; i++) {
    StepOnce();
  }
  EXPECT_EQ(kpromote_.stats().aborts, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 1u);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
  // A successful commit clears the abort history.
  EXPECT_EQ(ms_.pool().frame(ms_.PteOf(as_, 0)->pfn).tpm_aborts(), 0u);
}

TEST_F(TpmTest, ReadDuringCopyDoesNotAbort) {
  QueueSlowPage(0);
  StepOnce();
  ms_.Access(0, as_, 0, 0, false);  // read during copy
  StepOnce();
  EXPECT_EQ(kpromote_.stats().commits, 1u);
}

TEST_F(TpmTest, MultiMappedPageFallsBackToSyncMigration) {
  const Pfn pfn = QueueSlowPage(0);
  ms_.pool().frame(pfn).set_extra_mappers(1);
  StepOnce();
  EXPECT_EQ(kpromote_.stats().sync_fallbacks, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
  // Sync migration is exclusive: no shadow.
  EXPECT_FALSE(ms_.pool().frame(ms_.PteOf(as_, 0)->pfn).shadowed());
}

TEST_F(TpmTest, UnmappedPendingPageIsSkipped) {
  QueueSlowPage(0);
  ms_.UnmapAndFree(as_, 0);
  StepOnce();
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(kpromote_.stats().aborts, 0u);
}

TEST_F(TpmTest, PageFreedDuringCopyAbortsCleanly) {
  QueueSlowPage(0);
  StepOnce();  // Begin
  ms_.UnmapAndFree(as_, 0);
  StepOnce();  // Commit finds the page gone
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kFast), 0u);  // copy frame freed
}

TEST_F(TpmTest, CommitChargesTwoShootdowns) {
  QueueSlowPage(0);
  const uint64_t before = ms_.counters().Get("tlb.shootdown");
  StepOnce();
  StepOnce();
  EXPECT_EQ(ms_.counters().Get("tlb.shootdown"), before + 2);
}

TEST_F(TpmTest, SleepsWhenIdle) {
  StepOnce();  // nothing queued
  EXPECT_GE(engine_.NextTimeOf(kpromote_.actor_id()),
            KpromoteActor::Config{}.idle_poll);
}

TEST_F(TpmTest, DoubleAbortSameVpnBacksOffEachTime) {
  const Pfn pfn = QueueSlowPage(0);
  for (int round = 1; round <= 2; round++) {
    // Step until the next transaction begins on this page (the retry is
    // parked behind an exponential backoff).
    for (int i = 0; i < 20 && !ms_.pool().frame(pfn).migrating(); i++) {
      StepOnce();
    }
    ASSERT_TRUE(ms_.pool().frame(pfn).migrating()) << "round " << round;
    ms_.Access(0, as_, 0, 0, true);  // store during the copy window
    StepOnce();                      // Commit -> abort
    EXPECT_EQ(kpromote_.stats().aborts, static_cast<uint64_t>(round));
    EXPECT_EQ(ms_.pool().frame(pfn).tpm_aborts(), round);
  }
  EXPECT_EQ(kpromote_.stats().backoffs, 2u);
  EXPECT_EQ(queues_.deferred_size(), 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  // Still mapped to the original frame, still writable.
  EXPECT_EQ(ms_.PteOf(as_, 0)->pfn, pfn);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->writable);
}

TEST_F(TpmTest, AbortThenFreeDropsStaleRetry) {
  QueueSlowPage(0);
  StepOnce();  // Begin
  ms_.Access(0, as_, 0, 0, true);
  StepOnce();  // Commit -> abort, page parked for retry
  ms_.UnmapAndFree(as_, 0);  // page freed before the retry comes due
  for (int i = 0; i < 10; i++) {
    StepOnce();
  }
  // The stale deferred entry was dropped by the generation check, not
  // migrated.
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(kpromote_.stats().aborts, 1u);
  EXPECT_EQ(queues_.deferred_size(), 0u);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kFast), 0u);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kSlow), 0u);
}

TEST_F(TpmTest, CommitThenShadowReclaimThenWriteIsSafe) {
  QueueSlowPage(0);
  StepOnce();
  StepOnce();  // Commit: shadow created
  ASSERT_EQ(shadows_.count(), 1u);
  Cycles cost = 0;
  EXPECT_EQ(shadows_.ReclaimShadows(10, &cost), 1u);
  EXPECT_EQ(shadows_.count(), 0u);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kSlow), 0u);  // shadow frame freed
  // The master's write protection outlived its shadow; the write-protect
  // fault restores writability without touching freed memory.
  ms_.Access(0, as_, 0, 0, true);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->writable);
  EXPECT_FALSE(ms_.pool().frame(ms_.PteOf(as_, 0)->pfn).shadowed());
}

// Degradation-focused fixture: tiny backoff so retries come due quickly,
// low give-up and storm thresholds so the paths trip within a short test.
class TpmDegradeTest : public ::testing::Test {
 protected:
  static KpromoteActor::Config DegradeConfig() {
    KpromoteActor::Config c;
    c.abort_backoff_base = 1000;
    c.max_txn_retries = 2;
    c.storm_abort_threshold = 3;
    c.storm_window = 10'000'000;
    c.sync_degrade_duration = 300'000;
    return c;
  }

  TpmDegradeTest()
      : ms_(TestPlatform(), &engine_),
        as_(256),
        shadows_(&ms_),
        queues_(&ms_),
        kpromote_(&ms_, &queues_, &shadows_, DegradeConfig()) {
    ms_.RegisterCpu(0);
    const ActorId id = engine_.AddActor(&kpromote_);
    kpromote_.set_actor_id(id);
  }

  Pfn QueueSlowPage(Vpn vpn) {
    const Pfn pfn = ms_.MapNewPage(as_, vpn, Tier::kSlow, true);
    ms_.pool().frame(pfn).set_referenced(true);
    queues_.RequeuePending(pfn);
    return pfn;
  }

  void StepOnce() { engine_.Run(engine_.NextTimeOf(kpromote_.actor_id())); }

  // Dirties vpn whenever its transaction is mid-copy, forcing `n` aborts.
  void ForceAborts(Pfn pfn, Vpn vpn, uint64_t n) {
    const uint64_t start = kpromote_.stats().aborts;
    for (int i = 0; i < 200 && kpromote_.stats().aborts < start + n; i++) {
      if (ms_.pool().frame(pfn).migrating()) {
        ms_.Access(0, as_, vpn, 0, true);
      }
      StepOnce();
    }
    ASSERT_EQ(kpromote_.stats().aborts, start + n);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  ShadowManager shadows_;
  PromotionQueues queues_;
  KpromoteActor kpromote_;
};

TEST_F(TpmDegradeTest, GivesUpAfterMaxConsecutiveAborts) {
  const Pfn pfn = QueueSlowPage(0);
  ForceAborts(pfn, 0, 2);  // max_txn_retries = 2
  EXPECT_EQ(kpromote_.stats().giveups, 1u);
  EXPECT_EQ(kpromote_.stats().backoffs, 1u);  // first abort backed off
  // Candidacy dropped entirely; abort history reset for a future
  // re-nomination.
  EXPECT_FALSE(ms_.pool().frame(pfn).in_pending());
  EXPECT_EQ(ms_.pool().frame(pfn).tpm_aborts(), 0u);
  EXPECT_EQ(queues_.deferred_size(), 0u);
  EXPECT_EQ(queues_.pending_size(), 0u);
  // The page itself is intact on the slow tier.
  EXPECT_EQ(ms_.PteOf(as_, 0)->pfn, pfn);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kFast), 0u);
}

TEST_F(TpmDegradeTest, AbortStormDegradesToSyncMigrationAndRecovers) {
  // Three different pages each abort once: trips storm_abort_threshold.
  const Pfn p0 = QueueSlowPage(0);
  ForceAborts(p0, 0, 1);
  const Pfn p1 = QueueSlowPage(1);
  ForceAborts(p1, 1, 1);
  const Pfn p2 = QueueSlowPage(2);
  ForceAborts(p2, 2, 1);
  EXPECT_TRUE(kpromote_.degraded());
  EXPECT_EQ(kpromote_.stats().sync_degrades, 1u);

  // While degraded, a fresh candidate migrates synchronously: no shadow,
  // no abort risk, counted separately from multi-map fallbacks. (The three
  // backed-off pages drain through the same degraded path.)
  QueueSlowPage(3);
  for (int i = 0; i < 50 && ms_.pool().TierOf(ms_.PteOf(as_, 3)->pfn) != Tier::kFast; i++) {
    StepOnce();
  }
  EXPECT_GE(kpromote_.stats().degraded_migrations, 1u);
  const Pte* pte = ms_.PteOf(as_, 3);
  ASSERT_EQ(ms_.pool().TierOf(pte->pfn), Tier::kFast);
  EXPECT_FALSE(ms_.pool().frame(pte->pfn).shadowed());

  // After sync_degrade_duration the actor re-enables TPM.
  for (int i = 0; i < 100 && kpromote_.degraded(); i++) {
    StepOnce();
  }
  EXPECT_FALSE(kpromote_.degraded());
  // And a new candidate commits transactionally again.
  const uint64_t commits_before = kpromote_.stats().commits;
  QueueSlowPage(4);
  for (int i = 0; i < 100 && ms_.pool().TierOf(ms_.PteOf(as_, 4)->pfn) != Tier::kFast; i++) {
    StepOnce();
  }
  EXPECT_GT(kpromote_.stats().commits, commits_before);
  EXPECT_TRUE(ms_.pool().frame(ms_.PteOf(as_, 4)->pfn).shadowed());
}

class TpmNoMemTest : public TpmTest {
 protected:
  TpmNoMemTest() : TpmTest(TestPlatform(4, 64)) {}
};

TEST_F(TpmNoMemTest, WaitsWhenFastTierFull) {
  // Fill the tiny fast tier completely.
  for (Vpn v = 100; v < 104; v++) {
    ms_.MapNewPage(as_, v, Tier::kFast);
  }
  QueueSlowPage(0);
  StepOnce();
  EXPECT_EQ(kpromote_.stats().nomem_waits, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  // Still queued for a later attempt.
  EXPECT_EQ(queues_.pending_size(), 1u);
}

}  // namespace
}  // namespace nomad
