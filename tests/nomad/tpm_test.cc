// Tests for kpromote's transactional page migration: commit, abort on
// dirty, shadow creation, fallbacks, and retries.
#include "src/nomad/kpromote.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 64, uint64_t slow_pages = 64) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class TpmTest : public ::testing::Test {
 protected:
  TpmTest() : TpmTest(TestPlatform()) {}
  explicit TpmTest(const PlatformSpec& platform)
      : ms_(platform, &engine_),
        as_(256),
        shadows_(&ms_),
        queues_(&ms_),
        kpromote_(&ms_, &queues_, &shadows_) {
    ms_.RegisterCpu(0);
    const ActorId id = engine_.AddActor(&kpromote_);
    kpromote_.set_actor_id(id);
  }

  // Maps a slow page and queues it for promotion directly.
  Pfn QueueSlowPage(Vpn vpn, bool writable = true) {
    const Pfn pfn = ms_.MapNewPage(as_, vpn, Tier::kSlow, writable);
    ms_.pool().frame(pfn).referenced = true;
    queues_.RequeuePending(pfn);
    return pfn;
  }

  // Runs kpromote's next step (Begin or Commit).
  void StepOnce() {
    const Cycles t = engine_.NextTimeOf(kpromote_.actor_id());
    engine_.Run(t);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  ShadowManager shadows_;
  PromotionQueues queues_;
  KpromoteActor kpromote_;
};

TEST_F(TpmTest, CommitPromotesAndCreatesShadow) {
  const Pfn old_pfn = QueueSlowPage(0);
  StepOnce();  // Begin: clear dirty, shootdown, copy
  EXPECT_TRUE(ms_.pool().frame(old_pfn).migrating);
  StepOnce();  // Commit
  EXPECT_EQ(kpromote_.stats().commits, 1u);
  const Pte* pte = ms_.PteOf(as_, 0);
  ASSERT_TRUE(pte->present);
  const Pfn new_pfn = pte->pfn;
  EXPECT_EQ(ms_.pool().TierOf(new_pfn), Tier::kFast);
  // Master is read-only with the original permission in shadow_rw.
  EXPECT_FALSE(pte->writable);
  EXPECT_TRUE(pte->shadow_rw);
  EXPECT_FALSE(pte->dirty);
  // The old frame is the shadow.
  EXPECT_TRUE(ms_.pool().frame(new_pfn).shadowed);
  EXPECT_EQ(shadows_.ShadowOf(new_pfn), old_pfn);
  EXPECT_TRUE(ms_.pool().frame(old_pfn).is_shadow);
  EXPECT_EQ(ms_.pool().frame(old_pfn).lru, LruList::kNone);
  // The master lands on the fast active list.
  EXPECT_EQ(ms_.pool().frame(new_pfn).lru, LruList::kActive);
}

TEST_F(TpmTest, ReadOnlyPagePromotesWithoutShadowRw) {
  QueueSlowPage(0, /*writable=*/false);
  StepOnce();
  StepOnce();
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_FALSE(pte->writable);
  EXPECT_FALSE(pte->shadow_rw);  // it was never writable
}

TEST_F(TpmTest, PageStaysAccessibleDuringCopy) {
  QueueSlowPage(0);
  StepOnce();  // Begin; the copy is in flight now
  // An access during the copy must not block or fault.
  AccessInfo info;
  const Cycles c = ms_.Access(0, as_, 0, 0, false, 4, &info);
  EXPECT_FALSE(info.took_fault);
  EXPECT_EQ(info.tier, Tier::kSlow);
  EXPECT_LT(c, 10000u);
}

TEST_F(TpmTest, WriteDuringCopyAbortsTransaction) {
  const Pfn old_pfn = QueueSlowPage(0);
  StepOnce();                        // Begin
  ms_.Access(0, as_, 0, 0, true);    // store during the copy window
  EXPECT_TRUE(ms_.PteOf(as_, 0)->dirty);
  StepOnce();                        // Commit -> abort
  EXPECT_EQ(kpromote_.stats().aborts, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  // The page is untouched: same frame, still mapped, still writable.
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_EQ(pte->pfn, old_pfn);
  EXPECT_TRUE(pte->writable);
  EXPECT_FALSE(ms_.pool().frame(old_pfn).migrating);
  // No fast frame was leaked.
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kFast), 0u);
  // The page was requeued for retry.
  EXPECT_EQ(queues_.pending_size(), 1u);
}

TEST_F(TpmTest, AbortedTransactionRetriesAndCommits) {
  QueueSlowPage(0);
  StepOnce();
  ms_.Access(0, as_, 0, 0, true);  // abort #1
  StepOnce();
  // No further writes: the retry goes through.
  StepOnce();  // Begin (retry)
  StepOnce();  // Commit
  EXPECT_EQ(kpromote_.stats().aborts, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 1u);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
}

TEST_F(TpmTest, ReadDuringCopyDoesNotAbort) {
  QueueSlowPage(0);
  StepOnce();
  ms_.Access(0, as_, 0, 0, false);  // read during copy
  StepOnce();
  EXPECT_EQ(kpromote_.stats().commits, 1u);
}

TEST_F(TpmTest, MultiMappedPageFallsBackToSyncMigration) {
  const Pfn pfn = QueueSlowPage(0);
  ms_.pool().frame(pfn).extra_mappers = 1;
  StepOnce();
  EXPECT_EQ(kpromote_.stats().sync_fallbacks, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
  // Sync migration is exclusive: no shadow.
  EXPECT_FALSE(ms_.pool().frame(ms_.PteOf(as_, 0)->pfn).shadowed);
}

TEST_F(TpmTest, UnmappedPendingPageIsSkipped) {
  QueueSlowPage(0);
  ms_.UnmapAndFree(as_, 0);
  StepOnce();
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(kpromote_.stats().aborts, 0u);
}

TEST_F(TpmTest, PageFreedDuringCopyAbortsCleanly) {
  QueueSlowPage(0);
  StepOnce();  // Begin
  ms_.UnmapAndFree(as_, 0);
  StepOnce();  // Commit finds the page gone
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  EXPECT_EQ(ms_.pool().UsedFrames(Tier::kFast), 0u);  // copy frame freed
}

TEST_F(TpmTest, CommitChargesTwoShootdowns) {
  QueueSlowPage(0);
  const uint64_t before = ms_.counters().Get("tlb.shootdown");
  StepOnce();
  StepOnce();
  EXPECT_EQ(ms_.counters().Get("tlb.shootdown"), before + 2);
}

TEST_F(TpmTest, SleepsWhenIdle) {
  StepOnce();  // nothing queued
  EXPECT_GE(engine_.NextTimeOf(kpromote_.actor_id()),
            KpromoteActor::Config{}.idle_poll);
}

class TpmNoMemTest : public TpmTest {
 protected:
  TpmNoMemTest() : TpmTest(TestPlatform(4, 64)) {}
};

TEST_F(TpmNoMemTest, WaitsWhenFastTierFull) {
  // Fill the tiny fast tier completely.
  for (Vpn v = 100; v < 104; v++) {
    ms_.MapNewPage(as_, v, Tier::kFast);
  }
  QueueSlowPage(0);
  StepOnce();
  EXPECT_EQ(kpromote_.stats().nomem_waits, 1u);
  EXPECT_EQ(kpromote_.stats().commits, 0u);
  // Still queued for a later attempt.
  EXPECT_EQ(queues_.pending_size(), 1u);
}

}  // namespace
}  // namespace nomad
