// Tests for the shadow-page manager.
#include "src/nomad/shadow.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 64 * kPageSize;
  p.tiers[1].capacity_bytes = 64 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

class ShadowTest : public ::testing::Test {
 protected:
  ShadowTest() : ms_(TestPlatform(), &engine_), shadows_(&ms_), as_(256) {
    ms_.RegisterCpu(0);
  }

  // Creates a (master fast frame, shadow slow frame) pair.
  std::pair<Pfn, Pfn> MakePair(Vpn vpn) {
    const Pfn master = ms_.MapNewPage(as_, vpn, Tier::kFast);
    const Pfn shadow = ms_.pool().AllocOn(Tier::kSlow);
    shadows_.AddShadow(master, shadow);
    return {master, shadow};
  }

  Engine engine_;
  MemorySystem ms_;
  ShadowManager shadows_;
  AddressSpace as_;
};

TEST_F(ShadowTest, AddShadowSetsFlagsAndIndex) {
  const auto [master, shadow] = MakePair(0);
  EXPECT_TRUE(ms_.pool().frame(master).shadowed());
  EXPECT_TRUE(ms_.pool().frame(shadow).is_shadow());
  EXPECT_EQ(shadows_.ShadowOf(master), shadow);
  EXPECT_EQ(shadows_.count(), 1u);
  EXPECT_EQ(shadows_.bytes(), kPageSize);
}

TEST_F(ShadowTest, ShadowOfUnknownIsInvalid) {
  EXPECT_EQ(shadows_.ShadowOf(3), kInvalidPfn);
}

TEST_F(ShadowTest, DiscardFreesShadowFrame) {
  const auto [master, shadow] = MakePair(0);
  const uint64_t free_before = ms_.pool().FreeFrames(Tier::kSlow);
  EXPECT_TRUE(shadows_.DiscardShadow(master));
  EXPECT_EQ(ms_.pool().FreeFrames(Tier::kSlow), free_before + 1);
  EXPECT_FALSE(ms_.pool().frame(master).shadowed());
  EXPECT_EQ(shadows_.ShadowOf(master), kInvalidPfn);
  EXPECT_EQ(shadows_.count(), 0u);
}

TEST_F(ShadowTest, DiscardWithoutShadowIsFalse) {
  const Pfn master = ms_.MapNewPage(as_, 0, Tier::kFast);
  EXPECT_FALSE(shadows_.DiscardShadow(master));
}

TEST_F(ShadowTest, DetachKeepsFrameAllocated) {
  const auto [master, shadow] = MakePair(0);
  const uint64_t free_before = ms_.pool().FreeFrames(Tier::kSlow);
  EXPECT_EQ(shadows_.DetachShadow(master), shadow);
  EXPECT_EQ(ms_.pool().FreeFrames(Tier::kSlow), free_before);  // not freed
  EXPECT_FALSE(ms_.pool().frame(shadow).is_shadow());
  EXPECT_FALSE(ms_.pool().frame(master).shadowed());
}

TEST_F(ShadowTest, ReclaimFreesNewestFirst) {
  const auto [m1, s1] = MakePair(0);
  const auto [m2, s2] = MakePair(1);
  const auto [m3, s3] = MakePair(2);
  Cycles cost = 0;
  EXPECT_EQ(shadows_.ReclaimShadows(2, &cost), 2u);
  EXPECT_GT(cost, 0u);
  // Newest (m3, m2) reclaimed; oldest (m1) survives.
  EXPECT_TRUE(ms_.pool().frame(m1).shadowed());
  EXPECT_FALSE(ms_.pool().frame(m2).shadowed());
  EXPECT_FALSE(ms_.pool().frame(m3).shadowed());
  (void)s1;
  (void)s2;
  (void)s3;
}

TEST_F(ShadowTest, ReclaimAllWhenTargetExceedsCount) {
  MakePair(0);
  MakePair(1);
  Cycles cost = 0;
  EXPECT_EQ(shadows_.ReclaimShadows(10, &cost), 2u);
  EXPECT_EQ(shadows_.count(), 0u);
}

TEST_F(ShadowTest, ReclaimSkipsAlreadyDiscarded) {
  const auto [m1, s1] = MakePair(0);
  MakePair(1);
  shadows_.DiscardShadow(m1);  // FIFO entry for m1 is now stale
  Cycles cost = 0;
  EXPECT_EQ(shadows_.ReclaimShadows(10, &cost), 1u);
  (void)s1;
}

TEST_F(ShadowTest, ReclaimSkipsRecycledMasters) {
  const auto [m1, s1] = MakePair(0);
  shadows_.DiscardShadow(m1);
  // Recycle the master frame entirely: generation bumps.
  ms_.UnmapAndFree(as_, 0);
  const Pfn again = ms_.MapNewPage(as_, 5, Tier::kFast);
  EXPECT_EQ(again, m1);  // LIFO free list gives it right back
  Cycles cost = 0;
  EXPECT_EQ(shadows_.ReclaimShadows(10, &cost), 0u);
  EXPECT_TRUE(ms_.pool().frame(again).in_use());
  (void)s1;
}

TEST_F(ShadowTest, OldestRemappableMasterInFifoOrder) {
  const auto [m1, s1] = MakePair(0);
  const auto [m2, s2] = MakePair(1);
  const Pfn found = shadows_.OldestRemappableMaster(10, [](Pfn) { return true; });
  EXPECT_EQ(found, m1);
  shadows_.DiscardShadow(m1);
  EXPECT_EQ(shadows_.OldestRemappableMaster(10, [](Pfn) { return true; }), m2);
  (void)s1;
  (void)s2;
}

TEST_F(ShadowTest, OldestRemappableHonorsPredicate) {
  const auto [m1, s1] = MakePair(0);
  const auto [m2, s2] = MakePair(1);
  const Pfn found =
      shadows_.OldestRemappableMaster(10, [&](Pfn m) { return m == m2; });
  EXPECT_EQ(found, m2);
  EXPECT_EQ(shadows_.OldestRemappableMaster(10, [](Pfn) { return false; }),
            kInvalidPfn);
  (void)s1;
  (void)s2;
}

TEST_F(ShadowTest, OldestRemappableRespectsProbeLimit) {
  MakePair(0);
  const auto [m2, s2] = MakePair(1);
  // Limit 1 only probes the oldest entry; predicate rejects it.
  const Pfn found =
      shadows_.OldestRemappableMaster(1, [&](Pfn m) { return m == m2; });
  EXPECT_EQ(found, kInvalidPfn);
  (void)s2;
}

TEST_F(ShadowTest, CountersTrackDiscardsAndReclaims) {
  const auto [m1, s1] = MakePair(0);
  MakePair(1);
  shadows_.DiscardShadow(m1);
  Cycles cost = 0;
  shadows_.ReclaimShadows(10, &cost);
  EXPECT_EQ(ms_.counters().Get("nomad.shadow_discard"), 2u);
  EXPECT_EQ(ms_.counters().Get("nomad.shadow_reclaimed"), 1u);
  (void)s1;
}

}  // namespace
}  // namespace nomad
