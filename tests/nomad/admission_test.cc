// Tests for the migration admission controller (the overload control
// plane): token-bucket budget accrual, backlog rejection, the per-page
// abort-storm downgrade with decay re-admission, demotion credits, and the
// observability contract (counters, trace events, provenance fields).
#include "src/nomad/admission.h"

#include <gtest/gtest.h>

#include "src/obs/event_registry.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 64 * kPageSize;
  p.tiers[1].capacity_bytes = 64 * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

// Advancing virtual time requires a runnable actor.
class TickerActor : public Actor {
 public:
  Cycles Step(Engine&) override { return 1000; }
  std::string name() const override { return "ticker"; }
};

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() : ms_(TestPlatform(), &engine_), as_(256) {
    ms_.RegisterCpu(0);
    engine_.AddActor(&ticker_);
    AdmissionController::Config cfg;
    cfg.promote_cycles_per_page = 1000;
    cfg.promote_burst_pages = 4;
    cfg.demote_cycles_per_page = 1000;
    cfg.demote_burst_pages = 2;
    cfg.max_pending_backlog = 8;
    cfg.downgrade_abort_threshold = 3;
    cfg.downgrade_decay = 10000;
    admission_ = std::make_unique<AdmissionController>(&ms_, cfg);
  }

  Pfn SlowPage(Vpn vpn) { return ms_.MapNewPage(as_, vpn, Tier::kSlow); }

  AdmissionVerdict Admit(Pfn pfn, Vpn vpn, uint64_t backlog = 0) {
    Cycles retry = 0;
    return admission_->AdmitPromotion(pfn, vpn, backlog, &retry);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  TickerActor ticker_;
  std::unique_ptr<AdmissionController> admission_;
};

TEST_F(AdmissionTest, FirstBurstAcceptedThenDeferred) {
  const Pfn pfn = SlowPage(0);
  // The bucket primes full: burst_pages accepts back-to-back at time 0.
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kAccept) << "accept #" << i;
  }
  // Budget exhausted and no virtual time has passed: defer.
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kDefer);
  EXPECT_EQ(admission_->stats().accepts, 4u);
  EXPECT_EQ(admission_->stats().defers, 1u);
}

TEST_F(AdmissionTest, DeferReportsWhenTokenAccrues) {
  const Pfn pfn = SlowPage(0);
  for (int i = 0; i < 4; i++) {
    Admit(pfn, 0);
  }
  Cycles retry = 0;
  EXPECT_EQ(admission_->AdmitPromotion(pfn, 0, 0, &retry), AdmissionVerdict::kDefer);
  // Empty bucket at time 0: a full token needs promote_cycles_per_page.
  EXPECT_EQ(retry, 1000u);
}

TEST_F(AdmissionTest, BudgetRefillsWithVirtualTime) {
  const Pfn pfn = SlowPage(0);
  for (int i = 0; i < 5; i++) {
    Admit(pfn, 0);  // 4 accepts, then a defer leaves the bucket empty
  }
  engine_.Run(2500);  // 2500 cycles -> 2 tokens accrued
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kAccept);
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kAccept);
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kDefer);
}

TEST_F(AdmissionTest, BacklogOverCapRejects) {
  const Pfn pfn = SlowPage(0);
  EXPECT_EQ(Admit(pfn, 0, /*backlog=*/9), AdmissionVerdict::kReject);
  EXPECT_EQ(admission_->stats().rejects, 1u);
  // The reject consumed no budget: the full burst is still available.
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kAccept);
  }
}

TEST_F(AdmissionTest, PcqFeedThrottleAtCap) {
  EXPECT_FALSE(admission_->PcqFeedThrottled(7));
  EXPECT_TRUE(admission_->PcqFeedThrottled(8));
  EXPECT_TRUE(admission_->PcqFeedThrottled(9));
}

TEST_F(AdmissionTest, AbortStormDowngradesToSync) {
  const Pfn pfn = SlowPage(0);
  ms_.pool().frame(pfn).set_tpm_aborts(3);  // at the threshold
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kDowngradeSync);
  EXPECT_EQ(admission_->downgraded_pages(), 1u);
  // Still downgraded on the next request (tracked in the map now).
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kDowngradeSync);
  EXPECT_EQ(admission_->downgraded_pages(), 1u);
  EXPECT_EQ(admission_->stats().downgrades, 2u);
}

TEST_F(AdmissionTest, DowngradeDecayReadmitsAndResetsAborts) {
  const Pfn pfn = SlowPage(0);
  ms_.pool().frame(pfn).set_tpm_aborts(3);
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kDowngradeSync);
  engine_.Run(11000);  // past downgrade_decay
  EXPECT_EQ(Admit(pfn, 0), AdmissionVerdict::kAccept);
  EXPECT_EQ(admission_->downgraded_pages(), 0u);
  EXPECT_EQ(ms_.pool().frame(pfn).tpm_aborts(), 0u);
  EXPECT_EQ(admission_->stats().readmits, 1u);
}

TEST_F(AdmissionTest, DemotionCreditsPaceBackgroundDemotion) {
  EXPECT_TRUE(admission_->AdmitDemotion());
  EXPECT_TRUE(admission_->AdmitDemotion());
  EXPECT_FALSE(admission_->AdmitDemotion());  // burst of 2 spent
  EXPECT_EQ(admission_->stats().demote_accepts, 2u);
  EXPECT_EQ(admission_->stats().demote_defers, 1u);
  engine_.Run(1500);
  EXPECT_TRUE(admission_->AdmitDemotion());
}

TEST_F(AdmissionTest, PromotionAndDemotionBucketsAreIndependent) {
  const Pfn pfn = SlowPage(0);
  for (int i = 0; i < 5; i++) {
    Admit(pfn, 0);  // exhaust the promotion bucket entirely
  }
  // Demotion credits are untouched by promotion spending.
  EXPECT_TRUE(admission_->AdmitDemotion());
}

TEST_F(AdmissionTest, EveryVerdictIsCountedAndTraced) {
  const Pfn storm = SlowPage(0);
  const Pfn ok = SlowPage(1);
  ms_.pool().frame(storm).set_tpm_aborts(3);
  Admit(ok, 1);               // accept
  Admit(storm, 0);            // downgrade
  Admit(ok, 1, /*backlog=*/9);  // reject
  for (int i = 0; i < 4; i++) {
    Admit(ok, 1);  // drain the budget...
  }
  EXPECT_EQ(ms_.counters().Get(cnt::kAdmissionAccept), admission_->stats().accepts);
  EXPECT_EQ(ms_.counters().Get(cnt::kAdmissionDowngradeSync), 1u);
  EXPECT_EQ(ms_.counters().Get(cnt::kAdmissionReject), 1u);
  EXPECT_EQ(ms_.counters().Get(cnt::kAdmissionDefer), admission_->stats().defers);
  EXPECT_GT(admission_->stats().defers, 0u);
  if (kTracingEnabled) {
    const uint64_t verdicts = admission_->stats().accepts + admission_->stats().defers +
                              admission_->stats().rejects + admission_->stats().downgrades;
    EXPECT_EQ(ms_.trace().CountOf(TraceEvent::kAdmissionVerdict), verdicts);
  }
}

TEST_F(AdmissionTest, ProvenanceRecordsDegradingVerdicts) {
  if (!kTracingEnabled) {
    GTEST_SKIP() << "provenance ledger compiled out";
  }
  const Pfn storm = SlowPage(0);
  const Pfn ok = SlowPage(1);
  ms_.pool().frame(storm).set_tpm_aborts(3);
  Admit(storm, 0);              // downgrade -> ledger (consumes a token)
  Admit(ok, 1, /*backlog=*/9);  // reject -> ledger (consumes none)
  for (int i = 0; i < 5; i++) {
    Admit(ok, 1);  // 3 remaining tokens: 3 accepts, then 2 defers -> ledger
  }
  EXPECT_EQ(ms_.provenance().admit_downgrades(), 1u);
  EXPECT_EQ(ms_.provenance().admit_rejects(), 1u);
  EXPECT_EQ(ms_.provenance().admit_defers(), 2u);
}

}  // namespace
}  // namespace nomad
