// End-to-end tests for the assembled NOMAD policy: hint-fault nomination,
// shadow page faults, remap-only demotion, and shadow reclamation hooks.
#include "src/nomad/nomad_policy.h"

#include <gtest/gtest.h>

#include "src/workload/workload.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 128, uint64_t slow_pages = 128) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

// A tiny scripted app thread: touches a fixed set of pages each step.
class TouchLoop : public Actor {
 public:
  TouchLoop(MemorySystem* ms, AddressSpace* as, std::vector<Vpn> pages, bool writes,
            int max_steps = 100000)
      : ms_(ms), as_(as), pages_(std::move(pages)), writes_(writes), max_steps_(max_steps) {}

  void set_actor_id(ActorId id) { id_ = id; }
  ActorId actor_id() const { return id_; }

  Cycles Step(Engine&) override {
    Cycles c = 0;
    for (Vpn v : pages_) {
      c += ms_->Access(id_, *as_, v, 0, writes_);
    }
    steps_++;
    return c;
  }
  std::string name() const override { return "touch-loop"; }
  bool done() const override { return steps_ >= max_steps_; }

 private:
  MemorySystem* ms_;
  AddressSpace* as_;
  std::vector<Vpn> pages_;
  bool writes_;
  int max_steps_;
  ActorId id_ = 0;
  int steps_ = 0;
};

class NomadPolicyTest : public ::testing::Test {
 protected:
  // CPU id usable for direct Access() calls from test bodies.
  static constexpr ActorId kTestCpu = 99;

  explicit NomadPolicyTest(PlatformSpec platform = TestPlatform())
      : ms_(platform, &engine_), as_(4096) {
    policy_.Install(ms_, engine_);
    ms_.RegisterCpu(kTestCpu);
  }

  // Adds an app thread touching `pages`.
  TouchLoop* AddApp(std::vector<Vpn> pages, bool writes = false, int max_steps = 100000) {
    apps_.push_back(
        std::make_unique<TouchLoop>(&ms_, &as_, std::move(pages), writes, max_steps));
    const ActorId id = engine_.AddActor(apps_.back().get());
    apps_.back()->set_actor_id(id);
    ms_.RegisterCpu(id);
    return apps_.back().get();
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  NomadPolicy policy_;
  std::vector<std::unique_ptr<TouchLoop>> apps_;
};

TEST_F(NomadPolicyTest, HotSlowPageGetsPromotedTransactionally) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  AddApp({0});
  engine_.Run(50000000);
  EXPECT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, 0)->pfn), Tier::kFast);
  EXPECT_GE(policy_.tpm_stats().commits, 1u);
  EXPECT_EQ(policy_.shadows().count(), 1u);
}

TEST_F(NomadPolicyTest, OneFaultPerMigratedPage) {
  for (Vpn v = 0; v < 8; v++) {
    ms_.MapNewPage(as_, v, Tier::kSlow);
  }
  AddApp({0, 1, 2, 3, 4, 5, 6, 7});
  engine_.Run(50000000);
  EXPECT_EQ(policy_.tpm_stats().commits, 8u);
  // Exactly one hint fault per page: the paper's guarantee (sec. 3.1),
  // versus up to 15 for TPP.
  EXPECT_EQ(ms_.counters().Get("fault.hint"), 8u);
}

TEST_F(NomadPolicyTest, WriteToMasterTakesShadowFaultAndDiscardsShadow) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  AddApp({0});
  engine_.Run(50000000);
  const Pfn master = ms_.PteOf(as_, 0)->pfn;
  ASSERT_TRUE(ms_.pool().frame(master).shadowed());
  ASSERT_FALSE(ms_.PteOf(as_, 0)->writable);

  // First write: shadow page fault restores write permission and frees the
  // shadow copy.
  AccessInfo info;
  ms_.Access(kTestCpu, as_, 0, 0, true, 4, &info);
  EXPECT_TRUE(info.took_fault);
  EXPECT_TRUE(ms_.PteOf(as_, 0)->writable);
  EXPECT_FALSE(ms_.PteOf(as_, 0)->shadow_rw);
  EXPECT_FALSE(ms_.pool().frame(master).shadowed());
  EXPECT_EQ(policy_.shadows().count(), 0u);
  EXPECT_EQ(ms_.counters().Get("nomad.shadow_fault"), 1u);

  // Second write: no further fault.
  AccessInfo info2;
  ms_.Access(kTestCpu, as_, 0, 64, true, 4, &info2);
  EXPECT_FALSE(info2.took_fault);
}

TEST_F(NomadPolicyTest, ReadsOnMasterTakeNoExtraFaults) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  AddApp({0});
  engine_.Run(50000000);
  const uint64_t faults_before = ms_.counters().Get("fault.hint") +
                                 ms_.counters().Get("fault.write_protect");
  AccessInfo info;
  ms_.Access(kTestCpu, as_, 0, 0, false, 4, &info);
  EXPECT_FALSE(info.took_fault);
  EXPECT_EQ(ms_.counters().Get("fault.hint") + ms_.counters().Get("fault.write_protect"),
            faults_before);
}

TEST_F(NomadPolicyTest, CleanMasterDemotesByRemap) {
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  AddApp({0}, /*writes=*/false, /*max_steps=*/500);  // stops before demotion
  engine_.Run(50000000);
  const Pfn master = ms_.PteOf(as_, 0)->pfn;
  const Pfn shadow = policy_.shadows().ShadowOf(master);
  ASSERT_NE(shadow, kInvalidPfn);

  // Demote through the policy's kswapd hook path by direct invocation:
  // place the master on the inactive list first (as reclaim would find it).
  ms_.lru(Tier::kFast).Remove(master);
  ms_.lru(Tier::kFast).AddInactive(master);
  ms_.PteOf(as_, 0)->accessed = false;

  // Drive kswapd by dropping the watermark below current free count.
  FramePool& pool = ms_.pool();
  const uint64_t used = pool.UsedFrames(Tier::kFast);
  pool.SetWatermarks(Tier::kFast, pool.FreeFrames(Tier::kFast) + used,
                     pool.FreeFrames(Tier::kFast) + used + 1);
  engine_.Run(engine_.now() + 10000000);

  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_EQ(pte->pfn, shadow);  // remapped onto the shadow copy
  EXPECT_TRUE(pte->writable);   // permission restored
  EXPECT_GE(ms_.counters().Get("nomad.demote_remap"), 1u);
  EXPECT_FALSE(pool.frame(shadow).is_shadow());
  EXPECT_EQ(pool.frame(shadow).owner(), &as_);
}

TEST_F(NomadPolicyTest, AllocFailureReclaimsShadows) {
  // Promote a page so a shadow exists, then exhaust the slow tier; the
  // allocation-failure hook must free shadows instead of OOMing.
  ms_.MapNewPage(as_, 0, Tier::kSlow);
  AddApp({0});
  engine_.Run(50000000);
  ASSERT_EQ(policy_.shadows().count(), 1u);
  uint64_t v = 100;
  while (ms_.pool().FreeFrames(Tier::kSlow) > 0) {
    ms_.MapNewPage(as_, v++, Tier::kSlow);
  }
  // One more allocation triggers the failure hook.
  const Pfn rescued = ms_.pool().AllocOn(Tier::kSlow);
  EXPECT_NE(rescued, kInvalidPfn);
  EXPECT_EQ(policy_.shadows().count(), 0u);
  EXPECT_GE(ms_.counters().Get("nomad.shadow_reclaimed"), 1u);
}

TEST_F(NomadPolicyTest, WriteWorkloadAbortsSomeTransactions) {
  for (Vpn v = 0; v < 16; v++) {
    ms_.MapNewPage(as_, v, Tier::kSlow);
  }
  AddApp({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, /*writes=*/true);
  engine_.Run(100000000);
  // Constant writes during copies must abort at least one transaction.
  EXPECT_GE(policy_.tpm_stats().aborts, 1u);
}

TEST_F(NomadPolicyTest, MultiMappedPagePromotesViaSyncFallbackWithoutShadow) {
  const Pfn pfn = ms_.MapNewPage(as_, 0, Tier::kSlow);
  ms_.pool().frame(pfn).set_extra_mappers(2);  // shared with other page tables
  AddApp({0});
  engine_.Run(50000000);
  const Pte* pte = ms_.PteOf(as_, 0);
  EXPECT_EQ(ms_.pool().TierOf(pte->pfn), Tier::kFast);
  EXPECT_GE(ms_.counters().Get("nomad.sync_fallback"), 1u);
  EXPECT_EQ(policy_.tpm_stats().commits, 0u);  // TPM was deactivated
  // Exclusive migration: no shadow, page stays writable.
  EXPECT_FALSE(ms_.pool().frame(pte->pfn).shadowed());
  EXPECT_TRUE(pte->writable);
  EXPECT_EQ(policy_.shadows().count(), 0u);
}

TEST_F(NomadPolicyTest, FastPagesNeverEnterPcq) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  AddApp({0});
  engine_.Run(5000000);
  EXPECT_EQ(ms_.counters().Get("fault.hint"), 0u);
  EXPECT_EQ(policy_.tpm_stats().commits, 0u);
}

}  // namespace
}  // namespace nomad
