// Tests for NOMAD_CHECK and the InvariantChecker: a healthy system audits
// clean, and each class of deliberate corruption is caught by the right
// rule.
#include "src/check/invariants.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/check/check.h"
#include "src/nomad/kpromote.h"

namespace nomad {
namespace {

PlatformSpec TestPlatform(uint64_t fast_pages = 64, uint64_t slow_pages = 64) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = fast_pages * kPageSize;
  p.tiers[1].capacity_bytes = slow_pages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

bool HasRule(const std::vector<InvariantViolation>& vs, const std::string& rule) {
  for (const InvariantViolation& v : vs) {
    if (v.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(NomadCheckTest, PassesOnTrueCondition) {
  NOMAD_CHECK(1 + 1 == 2, "never printed");
}

TEST(NomadCheckDeathTest, AbortsWithFileLineAndDetail) {
  EXPECT_DEATH(NOMAD_CHECK(false, "pfn=", 42, " vpn=", 7),
               "NOMAD_CHECK failed.*pfn=42 vpn=7");
}

class InvariantsTest : public ::testing::Test {
 protected:
  InvariantsTest()
      : ms_(TestPlatform(), &engine_),
        as_(256),
        shadows_(&ms_),
        queues_(&ms_),
        kpromote_(&ms_, &queues_, &shadows_),
        checker_(&ms_) {
    ms_.RegisterCpu(0);
    const ActorId id = engine_.AddActor(&kpromote_);
    kpromote_.set_actor_id(id);
    checker_.AddSpace(&as_);
    checker_.set_shadows(&shadows_);
    checker_.set_queues(&queues_);
  }

  // Promotes vpn through a full TPM commit, creating a shadow.
  void Promote(Vpn vpn) {
    const Pfn pfn = ms_.MapNewPage(as_, vpn, Tier::kSlow, true);
    ms_.pool().frame(pfn).set_referenced(true);
    queues_.RequeuePending(pfn);
    engine_.Run(engine_.NextTimeOf(kpromote_.actor_id()));  // Begin
    engine_.Run(engine_.NextTimeOf(kpromote_.actor_id()));  // Commit
    ASSERT_EQ(ms_.pool().TierOf(ms_.PteOf(as_, vpn)->pfn), Tier::kFast);
  }

  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  ShadowManager shadows_;
  PromotionQueues queues_;
  KpromoteActor kpromote_;
  InvariantChecker checker_;
};

TEST_F(InvariantsTest, CleanSystemHasNoViolations) {
  for (Vpn v = 0; v < 8; v++) {
    ms_.MapNewPage(as_, v, v % 2 ? Tier::kSlow : Tier::kFast);
  }
  Promote(100);
  EXPECT_TRUE(checker_.Check().empty());
  EXPECT_EQ(checker_.checks_run(), 1u);
}

TEST_F(InvariantsTest, ReservedFramesAreNotTransient) {
  ms_.ReserveFastFrames(8);
  EXPECT_TRUE(checker_.Check().empty());
}

TEST_F(InvariantsTest, DetectsDanglingPte) {
  const Pfn pfn = ms_.MapNewPage(as_, 0, Tier::kFast);
  // Free the frame behind the PTE's back.
  ms_.lru(Tier::kFast).Remove(pfn);
  ms_.pool().Free(pfn);
  const auto vs = checker_.Check();
  EXPECT_TRUE(HasRule(vs, "pte.frame_identity"));
}

TEST_F(InvariantsTest, DetectsDoubleMapping) {
  const Pfn pfn = ms_.MapNewPage(as_, 0, Tier::kFast);
  // Map a second VPN onto the same frame.
  Pte& pte = as_.table().Ensure(1);
  pte.pfn = pfn;
  pte.present = true;
  const auto vs = checker_.Check();
  EXPECT_TRUE(HasRule(vs, "pte.unique_mapping"));
}

TEST_F(InvariantsTest, DetectsLruSizeCorruption) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  const Pfn pfn = ms_.PteOf(as_, 0)->pfn;
  // Clear the frame's list flag without unlinking it.
  ms_.pool().frame(pfn).set_lru(LruList::kNone);
  const auto vs = checker_.Check();
  EXPECT_FALSE(vs.empty());
  EXPECT_TRUE(HasRule(vs, "lru.membership") || HasRule(vs, "lru.link"));
}

TEST_F(InvariantsTest, DetectsMappedShadow) {
  Promote(0);
  const Pfn master = ms_.PteOf(as_, 0)->pfn;
  const Pfn shadow = shadows_.ShadowOf(master);
  ASSERT_NE(shadow, kInvalidPfn);
  // Corrupt: point a PTE at the shadow frame.
  Pte& pte = as_.table().Ensure(9);
  pte.pfn = shadow;
  pte.present = true;
  const auto vs = checker_.Check();
  EXPECT_TRUE(HasRule(vs, "shadow.unmapped"));
}

TEST_F(InvariantsTest, DetectsDirtyShadowedMaster) {
  Promote(0);
  // Corrupt: make the master writable+dirty while its shadow survives,
  // breaking clean-only shadow coherence.
  Pte* pte = ms_.PteOf(as_, 0);
  pte->writable = true;
  pte->dirty = true;
  const auto vs = checker_.Check();
  EXPECT_TRUE(HasRule(vs, "shadow.clean_only"));
}

TEST_F(InvariantsTest, DetectsShadowIndexLeak) {
  Promote(0);
  const Pfn master = ms_.PteOf(as_, 0)->pfn;
  // Corrupt: clear the master's flag but leave the index entry.
  ms_.pool().frame(master).set_shadowed(false);
  const auto vs = checker_.Check();
  EXPECT_TRUE(HasRule(vs, "shadow.index_count"));
}

TEST_F(InvariantsTest, DetectsAccountingMismatch) {
  // Corrupt: mark a free frame in_use without taking it off the free list.
  // (Pick the highest slow pfn; nothing else touches it.)
  const Pfn last = ms_.pool().TotalFrames(Tier::kFast) + ms_.pool().TotalFrames(Tier::kSlow) - 1;
  ms_.pool().frame(last).set_in_use(true);
  const auto vs = checker_.Check();
  EXPECT_TRUE(HasRule(vs, "pool.accounting"));
}

TEST_F(InvariantsTest, InFlightTransactionIsTransientNotViolation) {
  const Pfn pfn = ms_.MapNewPage(as_, 0, Tier::kSlow, true);
  ms_.pool().frame(pfn).set_referenced(true);
  queues_.RequeuePending(pfn);
  engine_.Run(engine_.NextTimeOf(kpromote_.actor_id()));  // Begin only
  ASSERT_TRUE(ms_.pool().frame(pfn).migrating());
  // Mid-transaction: the destination frame is in use but unmapped. That is
  // the one legal transient state.
  EXPECT_TRUE(checker_.Check().empty());
}

TEST_F(InvariantsTest, CheckActorAuditsPeriodicallyAndRecords) {
  ms_.MapNewPage(as_, 0, Tier::kFast);
  InvariantCheckActor::Config cfg;
  cfg.period = 1000;
  cfg.die_on_violation = false;
  InvariantCheckActor actor(&checker_, cfg);
  engine_.AddActor(&actor);
  engine_.Run(10000);
  EXPECT_GE(actor.audits(), 5u);
  EXPECT_FALSE(actor.failed());

  // Corrupt the state; the next audit records it and the actor goes dormant.
  const Pfn pfn = ms_.PteOf(as_, 0)->pfn;
  ms_.lru(Tier::kFast).Remove(pfn);
  ms_.pool().Free(pfn);
  engine_.Run(engine_.now() + 5000);
  EXPECT_TRUE(actor.failed());
  EXPECT_TRUE(HasRule(actor.violations(), "pte.frame_identity"));
  const uint64_t audits_at_failure = actor.audits();
  engine_.Run(engine_.now() + 5000);
  EXPECT_EQ(actor.audits(), audits_at_failure);  // dormant after failure
}

}  // namespace
}  // namespace nomad
