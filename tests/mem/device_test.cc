// Tests for the bandwidth-queued device model.
#include "src/mem/device.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TierSpec TestSpec() {
  TierSpec t;
  t.read_latency = 300;
  t.write_latency = 200;
  t.read_bw_single = 4.0;   // bytes/cycle
  t.read_bw_peak = 16.0;
  t.write_bw_single = 2.0;
  t.write_bw_peak = 8.0;
  return t;
}

TEST(DeviceTest, UnloadedReadLatency) {
  MemoryDevice dev(TestSpec());
  // 64 B at 4 B/cyc single-thread = 16 cycles service + 300 latency.
  EXPECT_EQ(dev.Read(0, 64), 300u + 16u);
}

TEST(DeviceTest, UnloadedWriteLatency) {
  MemoryDevice dev(TestSpec());
  EXPECT_EQ(dev.Write(0, 64), 200u + 32u);
}

TEST(DeviceTest, ReadAndWriteChannelsIndependent) {
  MemoryDevice dev(TestSpec());
  const Cycles r1 = dev.Read(0, 4096);
  const Cycles w1 = dev.Write(0, 4096);
  // Neither queues behind the other.
  EXPECT_EQ(r1, 300u + 1024u);
  EXPECT_EQ(w1, 200u + 2048u);
}

TEST(DeviceTest, BackToBackRequestsQueue) {
  MemoryDevice dev(TestSpec());
  // First 4 KB read occupies the channel for 4096/16 = 256 cycles.
  const Cycles first = dev.Read(0, 4096);
  // A second request at t=0 queues 256 cycles.
  const Cycles second = dev.Read(0, 4096);
  EXPECT_EQ(second, first + 256);
}

TEST(DeviceTest, SpacedRequestsDoNotQueue) {
  MemoryDevice dev(TestSpec());
  const Cycles first = dev.Read(0, 4096);
  const Cycles later = dev.Read(10000, 4096);
  EXPECT_EQ(later, first);
}

TEST(DeviceTest, QueueDrainsOverTime) {
  MemoryDevice dev(TestSpec());
  dev.Read(0, 4096);           // channel busy until t=256
  const Cycles at_100 = dev.Read(100, 64);
  // Queued 156 cycles, then latency 300 + service 16.
  EXPECT_EQ(at_100, 156u + 300u + 16u);
}

TEST(DeviceTest, BytesAccounted) {
  MemoryDevice dev(TestSpec());
  dev.Read(0, 64);
  dev.Read(0, 4096);
  dev.Write(0, 128);
  EXPECT_EQ(dev.read_channel().bytes_total(), 64u + 4096u);
  EXPECT_EQ(dev.write_channel().bytes_total(), 128u);
}

TEST(DeviceTest, MinimumOneCycleService) {
  TierSpec t = TestSpec();
  t.read_bw_single = 1e9;  // absurdly fast
  t.read_bw_peak = 1e9;
  MemoryDevice dev(t);
  EXPECT_GE(dev.Read(0, 1), t.read_latency + 1);
}

// Aggregate throughput under saturation approaches peak bandwidth, not the
// single-thread rate.
TEST(DeviceTest, SaturationApproachesPeakBandwidth) {
  MemoryDevice dev(TestSpec());
  const int kRequests = 1000;
  Cycles last_done = 0;
  for (int i = 0; i < kRequests; i++) {
    last_done = dev.Read(0, 4096);  // all arrive at t=0
  }
  const double achieved =
      static_cast<double>(kRequests) * 4096.0 / static_cast<double>(last_done);
  EXPECT_NEAR(achieved, 16.0, 1.0);
}

}  // namespace
}  // namespace nomad
