// Tests for platform presets (Table 1) and size scaling.
#include "src/mem/platform.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(ScaleTest, BytesAndPages) {
  Scale s{64};
  EXPECT_EQ(s.Bytes(16.0), (uint64_t{16} << 30) / 64);
  EXPECT_EQ(s.Pages(16.0), (uint64_t{16} << 30) / 64 / 4096);
  EXPECT_DOUBLE_EQ(s.ToPaperGb(s.Bytes(16.0)), 16.0);
}

TEST(ScaleTest, UnityScale) {
  Scale s{1};
  EXPECT_EQ(s.Bytes(1.0), uint64_t{1} << 30);
}

TEST(ScaleTest, FractionalGb) {
  Scale s{64};
  EXPECT_EQ(s.Bytes(0.5), (uint64_t{1} << 29) / 64);
}

TEST(PlatformTest, AllPlatformsConstruct) {
  for (PlatformId id :
       {PlatformId::kA, PlatformId::kB, PlatformId::kC, PlatformId::kD}) {
    const PlatformSpec p = MakePlatform(id);
    EXPECT_GT(p.ghz, 0.0);
    EXPECT_GT(p.llc_bytes, 0u);
    EXPECT_GT(p.tiers[0].capacity_bytes, 0u);
    EXPECT_GT(p.tiers[1].capacity_bytes, 0u);
    // The capacity tier is slower than the performance tier on every
    // testbed (Table 1).
    EXPECT_GT(p.tiers[1].read_latency, p.tiers[0].read_latency);
  }
}

TEST(PlatformTest, Table1ReadLatencies) {
  EXPECT_EQ(MakePlatform(PlatformId::kA).tiers[0].read_latency, 316u);
  EXPECT_EQ(MakePlatform(PlatformId::kA).tiers[1].read_latency, 854u);
  EXPECT_EQ(MakePlatform(PlatformId::kB).tiers[0].read_latency, 226u);
  EXPECT_EQ(MakePlatform(PlatformId::kB).tiers[1].read_latency, 737u);
  EXPECT_EQ(MakePlatform(PlatformId::kC).tiers[0].read_latency, 249u);
  EXPECT_EQ(MakePlatform(PlatformId::kC).tiers[1].read_latency, 1077u);
  EXPECT_EQ(MakePlatform(PlatformId::kD).tiers[0].read_latency, 391u);
  EXPECT_EQ(MakePlatform(PlatformId::kD).tiers[1].read_latency, 712u);
}

TEST(PlatformTest, BandwidthConvertedToBytesPerCycle) {
  const PlatformSpec a = MakePlatform(PlatformId::kA);
  // 12 GB/s at 2.1 GHz = 5.714 B/cyc single-thread fast reads.
  EXPECT_NEAR(a.tiers[0].read_bw_single, 12.0 / 2.1, 1e-9);
  EXPECT_NEAR(a.tiers[1].read_bw_peak, 21.7 / 2.1, 1e-9);
}

TEST(PlatformTest, PebsVisibilityPerPlatform) {
  EXPECT_TRUE(MakePlatform(PlatformId::kA).pebs_supported);
  EXPECT_FALSE(MakePlatform(PlatformId::kA).pebs_sees_slow_reads);  // CXL uncore
  EXPECT_FALSE(MakePlatform(PlatformId::kB).pebs_sees_slow_reads);
  EXPECT_TRUE(MakePlatform(PlatformId::kC).pebs_sees_slow_reads);   // PM
  EXPECT_FALSE(MakePlatform(PlatformId::kD).pebs_supported);        // no IBS
}

TEST(PlatformTest, CapacityRespectsArguments) {
  const Scale s{64};
  const PlatformSpec p = MakePlatform(PlatformId::kC, s, 16.0, 256.0);
  EXPECT_EQ(p.tiers[0].capacity_bytes, s.Bytes(16.0));
  EXPECT_EQ(p.tiers[1].capacity_bytes, s.Bytes(256.0));
}

TEST(PlatformTest, PlatformDHasNarrowestGap) {
  // The paper attributes NOMAD's largest wins to platform D's small
  // fast/slow latency ratio; keep that property in the presets.
  auto ratio = [](PlatformId id) {
    const PlatformSpec p = MakePlatform(id);
    return static_cast<double>(p.tiers[1].read_latency) /
           static_cast<double>(p.tiers[0].read_latency);
  };
  EXPECT_LT(ratio(PlatformId::kD), ratio(PlatformId::kA));
  EXPECT_LT(ratio(PlatformId::kD), ratio(PlatformId::kB));
  EXPECT_LT(ratio(PlatformId::kD), ratio(PlatformId::kC));
}

TEST(PlatformTest, NamesAreStable) {
  EXPECT_STREQ(PlatformName(PlatformId::kA), "A");
  EXPECT_STREQ(PlatformName(PlatformId::kD), "D");
}

}  // namespace
}  // namespace nomad
