// Figure 12: PageRank (synthetic uniform graph, 2^26 paper-scale vertices,
// average degree 20, RSS ~22 GB) normalized performance. The paper's
// finding: migration barely matters - CXL/PM expand capacity for this
// non-latency-sensitive workload with negligible penalty.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"

using namespace nomad;

int main() {
  std::cout << "==================================================================\n"
               "Figure 12: PageRank performance, normalized to the slowest policy\n"
               "2^20 scaled vertices (2^26 paper), degree 20, sizes scaled 1/64\n"
               "==================================================================\n";

  for (PlatformId platform : {PlatformId::kA, PlatformId::kC, PlatformId::kD}) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    std::vector<PolicyKind> policies = PoliciesFor(platform, /*include_no_migration=*/true);
    // Thin out the grid: QuickCool behaves like Default here.
    std::erase(policies, PolicyKind::kMemtisQuickCool);

    std::vector<double> ops;
    for (PolicyKind policy : policies) {
      PageRankRunConfig cfg;
      cfg.platform = platform;
      cfg.policy = policy;
      cfg.vertices = 1 << 20;
      const AppRunResult r = RunPageRankBench(cfg);
      ops.push_back(r.ops_per_sec);
    }
    const double slowest = *std::min_element(ops.begin(), ops.end());
    TablePrinter t({"policy", "vertices/s", "normalized"});
    for (size_t i = 0; i < policies.size(); i++) {
      t.AddRow({PolicyKindName(policies[i]), FmtCount(static_cast<uint64_t>(ops[i])),
                Fmt(ops[i] / slowest, 2)});
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape: negligible variance between migration policies and\n"
               "no-migration (within ~10-20%); Memtis tends to be the least efficient.\n";
  return 0;
}
