// Table 1: testbed configurations and memory-device characteristics.
//
// Prints the four platform presets and validates the device model against
// them by measuring the model's unloaded latency and saturated bandwidth.
#include <iostream>

#include "bench/bench_common.h"
#include "src/mem/device.h"

using namespace nomad;

namespace {

// Measures the model's saturated bandwidth in GB/s for one channel.
double MeasurePeakGbps(DeviceChannel channel, double ghz) {
  Cycles done = 0;
  constexpr int kRequests = 2000;
  for (int i = 0; i < kRequests; i++) {
    done = channel.Access(0, 4096);
  }
  return static_cast<double>(kRequests) * 4096.0 / static_cast<double>(done) * ghz;
}

}  // namespace

int main() {
  std::cout << "Table 1: the four testbeds and their memory devices\n"
            << "(model check: 'meas' columns are measured from the simulator's\n"
            << " device model and must match the preset)\n\n";

  TablePrinter t({"platform", "cpu", "tier", "device", "read lat (cyc)", "peak read GB/s",
                  "meas GB/s", "capacity"});
  for (PlatformId id :
       {PlatformId::kA, PlatformId::kB, PlatformId::kC, PlatformId::kD}) {
    const Scale scale{1};  // unscaled for the spec table
    const PlatformSpec p = MakePlatform(id, scale, 16.0,
                                        id == PlatformId::kC   ? 256.0 * 6
                                        : id == PlatformId::kD ? 256.0 * 4
                                                               : 16.0);
    for (int tier = 0; tier < kNumTiers; tier++) {
      const TierSpec& spec = p.tiers[tier];
      DeviceChannel read(spec.read_latency, spec.read_bw_single, spec.read_bw_peak);
      const double meas = MeasurePeakGbps(read, p.ghz);
      t.AddRow({tier == 0 ? p.name : "", tier == 0 ? p.cpu : "",
                tier == 0 ? "fast" : "slow", tier == 0 ? "DDR DRAM" : p.slow_device,
                std::to_string(spec.read_latency), Fmt(spec.read_bw_peak * p.ghz, 2),
                Fmt(meas, 2),
                Fmt(static_cast<double>(spec.capacity_bytes) / (1 << 30), 0) + " GB"});
    }
  }
  t.Print(std::cout);

  std::cout << "\nPEBS visibility (drives the Memtis baseline):\n";
  TablePrinter v({"platform", "pebs/ibs", "sees slow-tier read misses"});
  for (PlatformId id :
       {PlatformId::kA, PlatformId::kB, PlatformId::kC, PlatformId::kD}) {
    const PlatformSpec p = MakePlatform(id);
    v.AddRow({p.name, p.pebs_supported ? "yes" : "no",
              p.pebs_sees_slow_reads ? "yes" : "no (uncore)"});
  }
  v.Print(std::cout);
  return 0;
}
