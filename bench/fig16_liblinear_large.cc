// Figure 16: Liblinear with a much larger model and RSS on platforms C
// and D. TPP's synchronous migration collapses (the paper observed bursts
// of kernel CPU time); NOMAD stays consistently fast.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"

using namespace nomad;

int main() {
  std::cout << "==================================================================\n"
               "Figure 16: Liblinear, large model/RSS (~40 GB paper), platforms C/D\n"
               "==================================================================\n";

  for (PlatformId platform : {PlatformId::kC, PlatformId::kD}) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    std::vector<PolicyKind> policies = PoliciesFor(platform, /*include_no_migration=*/true);
    std::erase(policies, PolicyKind::kMemtisQuickCool);

    std::vector<double> ops;
    for (PolicyKind policy : policies) {
      LiblinearRunConfig cfg;
      cfg.platform = platform;
      cfg.policy = policy;
      cfg.scale_denom = 128;
      cfg.samples = 40960;
      cfg.model_pages = 16384;   // 8 GB-paper shared model
      cfg.features_per_sample = 12;
      cfg.epochs = 4;
      cfg.slow_gb = 64.0;
      cfg.kernel_gb = 11.0;  // large-RSS regime: DRAM far smaller than the WSS
      const AppRunResult r = RunLiblinearBench(cfg);
      ops.push_back(r.ops_per_sec);
    }
    const double slowest = *std::min_element(ops.begin(), ops.end());
    TablePrinter t({"policy", "samples/s", "normalized"});
    for (size_t i = 0; i < policies.size(); i++) {
      t.AddRow({PolicyKindName(policies[i]), FmtCount(static_cast<uint64_t>(ops[i])),
                Fmt(ops[i] / slowest, 2)});
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape: NOMAD consistently the fastest; TPP's synchronous\n"
               "migration degrades badly at this scale (paper: frequent kernel-time\n"
               "bursts); Memtis in between.\n";
  return 0;
}
