// Figure 1: the motivating comparison - TPP while migrating ("in
// progress"), TPP after relocation finishes ("stable"), and a baseline
// with migration disabled, across WSS sizes and initial placements.
//
// Paper shape to reproduce:
//  - "no migration" is consistently and substantially better than "TPP in
//    progress",
//  - with 10 GB WSS, "TPP stable" eventually wins big when the initial
//    placement is random (hot pages start on CXL),
//  - with 24 GB WSS (exceeding fast memory), TPP never stabilizes:
//    stable ~ in-progress, both poor.
#include <iostream>

#include "bench/bench_common.h"

using namespace nomad;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("fig01_tpp_motivation", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: fig01_tpp_motivation [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  PrintHeader("Figure 1", "achieved bandwidth: TPP vs no-migration", PlatformId::kA, 64);

  struct Case {
    const char* label;
    double wss_gb;
    Placement placement;
  };
  const Case cases[] = {
      {"10GB WSS, Frequency-opt", 10.0, Placement::kFrequencyOpt},
      {"10GB WSS, Random", 10.0, Placement::kRandom},
      {"24GB WSS, Frequency-opt", 24.0, Placement::kFrequencyOpt},
      {"24GB WSS, Random", 24.0, Placement::kRandom},
  };

  TablePrinter t({"case", "TPP in progress GB/s", "TPP stable GB/s", "no migration GB/s"});
  for (const Case& c : cases) {
    // The benchmark pre-allocates 10 GB in fast memory to emulate existing
    // usage, then allocates the WSS (sec. 2.1).
    MicroRunConfig cfg;
    cfg.platform = PlatformId::kA;
    cfg.rss_gb = 10.0 + c.wss_gb;
    cfg.wss_gb = c.wss_gb;
    // 10 GB pre-fill + kernel leaves ~2.5 GB of the 16 GB node for the WSS.
    cfg.wss_fast_gb = 2.5;
    cfg.placement = c.placement;
    cfg.total_ops = 4800000;  // TPP needs time to finish relocating

    const std::string tag = std::to_string(static_cast<int>(c.wss_gb)) + "gb-" +
                            (c.placement == Placement::kRandom ? "random" : "freq");
    cfg.policy = PolicyKind::kTpp;
    const MicroRunResult tpp = RunMicroBench(cfg, &collector, "tpp-" + tag);
    cfg.policy = PolicyKind::kNoMigration;
    const MicroRunResult nomig = RunMicroBench(cfg, &collector, "no-migration-" + tag);

    t.AddRow({c.label, Fmt(tpp.report.transient_gbps), Fmt(tpp.report.stable_gbps),
              Fmt(nomig.report.overall_gbps)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: no-migration >> TPP-in-progress everywhere; TPP-stable\n"
               "recovers (and beats no-migration under random placement) only when the\n"
               "WSS fits in fast memory; at 24 GB WSS TPP thrashes and never recovers.\n";
  return 0;
}
