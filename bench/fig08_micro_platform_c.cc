// Figure 8: micro-benchmark comparison on platform C (Cascade Lake +
// Optane persistent memory; full PEBS visibility for Memtis).
#include "bench/micro_grid.h"

int main() {
  nomad::RunMicroGrid(nomad::PlatformId::kC, "Figure 8");
  return 0;
}
