// Shared infrastructure for the figure/table reproduction binaries.
//
// Every bench builds a Sim from a MicroRunConfig (or an app-specific
// config), runs it, and prints the same rows/series the paper reports.
// Phase counters are snapshotted at mid-run so Table 2-style
// in-progress/steady splits are available everywhere.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/annotations.h"
#include "src/harness/experiment.h"
#include "src/harness/flags.h"
#include "src/harness/table.h"
#include "src/workload/liblinear.h"
#include "src/workload/micro.h"
#include "src/workload/pagerank.h"
#include "src/workload/ycsb.h"

namespace nomad {

// Collects machine-readable artifacts across the runs of one bench binary:
// a metrics.json document with one entry per captured run, and one
// chrome://tracing file per run. Inactive (all methods no-ops) when both
// output paths are empty, so binaries can pass it unconditionally.
class NOMAD_SHARD_CONFINED MetricsCollector {
 public:
  MetricsCollector(std::string bench_id, std::string metrics_path, std::string trace_path,
                   std::string profile_path = "", std::string timeline_path = "")
      : bench_id_(std::move(bench_id)),
        metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)),
        profile_path_(std::move(profile_path)),
        timeline_path_(std::move(timeline_path)) {}

  // Reads --metrics_out / --trace_out / --profile_out / --timeline_out.
  // Call before Flags::UnusedKeys().
  static MetricsCollector FromFlags(const std::string& bench_id, const Flags& flags);

  bool active() const {
    return !metrics_path_.empty() || !trace_path_.empty() || !profile_path_.empty() ||
           !timeline_path_.empty();
  }
  // Whether --timeline_out was given: benches consult this to enable
  // timeline sampling on the runs they capture.
  bool timeline_requested() const { return !timeline_path_.empty(); }

  // Records one finished run. The first capture's trace goes to the exact
  // --trace_out path; later captures get the label inserted before the
  // extension (t.json -> t.tpp.json).
  void Capture(const std::string& label, Sim& sim, const PhaseReport& report);

  // Writes metrics.json (idempotent; also runs from the destructor).
  void Flush();

  ~MetricsCollector() { Flush(); }
  MetricsCollector(MetricsCollector&&) = default;
  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

 private:
  std::string bench_id_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string profile_path_;  // collapsed-stack cycle profiles (flamegraph input)
  std::string timeline_path_;  // telemetry timeline CSVs (timeline_report input)
  std::vector<std::string> run_json_;  // pre-rendered run objects
  size_t captures_ = 0;
  bool flushed_ = false;
};

// One micro-benchmark run (the Zipfian workload of sec. 4.1).
struct MicroRunConfig {
  PlatformId platform = PlatformId::kA;
  uint64_t scale_denom = 64;
  PolicyKind policy = PolicyKind::kNomad;
  double rss_gb = 27.0;
  double wss_gb = 13.5;
  double wss_fast_gb = 2.5;
  double kernel_gb = 3.5;
  double fast_gb = 16.0;
  double slow_gb = 16.0;
  Placement placement = Placement::kRandom;
  double write_fraction = 0.0;
  uint64_t total_ops = 1200000;
  int threads = 2;
  uint64_t seed = 42;
  unsigned batch = 8;  // accesses per engine step (WorkloadActor batching)
  // Time-resolved telemetry (src/obs/timeline.h): sampling cadence in
  // virtual cycles, 0 = off. Off by default — goldens are timeline-free.
  Cycles timeline_interval = 0;
  size_t timeline_capacity = 4096;
  // Migration-lifecycle span records (mig_* trace events, trace_query
  // --span input). Off by default for the same golden-stability reason.
  bool enable_spans = false;
};

struct MicroRunResult {
  PhaseReport report;
  CounterSet counters;    // cumulative at the end
  CounterSet first_half;  // snapshot at the midpoint ("in progress" phase)
  uint64_t shadow_pages = 0;
  uint64_t tpm_commits = 0;
  uint64_t tpm_aborts = 0;
  uint64_t fast_used = 0;
  uint64_t slow_used = 0;
  // Queue pressure (NOMAD runs; 0 otherwise). The chaos soak byte-compares
  // these across thread counts as part of the recovery record.
  uint64_t pcq_hwm = 0;
  uint64_t pending_hwm = 0;
  uint64_t pcq_overflows = 0;
  std::string injector;  // FaultInjector::Describe() when one is installed
};

// Runs the micro-benchmark and gathers phase reports + counters. When a
// collector is given, the run is captured under `label` (default: the
// policy name).
MicroRunResult RunMicroBench(const MicroRunConfig& config,
                             MetricsCollector* collector = nullptr,
                             const std::string& label = "");

// Second-half value of a counter (steady phase).
inline uint64_t SteadyCount(const MicroRunResult& r, const std::string& name) {
  return r.counters.Get(name) - r.first_half.Get(name);
}

// Total promotions/demotions a policy performed (summing the policy's own
// counter names).
uint64_t Promotions(const CounterSet& c);
uint64_t Demotions(const CounterSet& c);

// The paper's three provisioning scenarios (Figure 6) at 16 GB fast memory.
MicroRunConfig SmallWssConfig(PlatformId platform, PolicyKind policy);
MicroRunConfig MediumWssConfig(PlatformId platform, PolicyKind policy);
MicroRunConfig LargeWssConfig(PlatformId platform, PolicyKind policy);

// Policies evaluated on a platform (Memtis excluded where unsupported).
std::vector<PolicyKind> PoliciesFor(PlatformId platform, bool include_no_migration = false);

// Prints the standard bench header.
void PrintHeader(const std::string& id, const std::string& what, PlatformId platform,
                 uint64_t scale_denom);

// ---------- application benchmarks (sec. 4.2) ----------

struct AppRunResult {
  double ops_per_sec = 0;   // application-level throughput
  double runtime_ms = 0;    // simulated milliseconds
  uint64_t tpm_commits = 0;
  uint64_t tpm_aborts = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
};

// Redis + YCSB-A (Figures 11 and 14). `demote_first` runs the paper's
// "customized tool" that pushes the whole dataset to the slow tier.
struct YcsbRunConfig {
  PlatformId platform = PlatformId::kA;
  PolicyKind policy = PolicyKind::kNomad;
  uint64_t scale_denom = 64;
  uint64_t record_count = 93750;  // scaled; ~6M paper records
  uint64_t record_size = 2048;    // 1 KB values + Redis overhead
  uint64_t total_ops = 80000;
  bool demote_first = true;
  double slow_gb = 16.0;
  double kernel_gb = 3.5;
  uint64_t seed = 42;
  // Telemetry timeline / migration spans, as in MicroRunConfig.
  Cycles timeline_interval = 0;
  size_t timeline_capacity = 4096;
  bool enable_spans = false;
};
AppRunResult RunYcsbBench(const YcsbRunConfig& config, MetricsCollector* collector = nullptr,
                          const std::string& label = "");

// PageRank on a synthetic uniform graph (Figures 12 and 15).
struct PageRankRunConfig {
  PlatformId platform = PlatformId::kA;
  PolicyKind policy = PolicyKind::kNomad;
  uint64_t scale_denom = 64;
  uint64_t vertices = 1 << 20;  // scaled; 2^26 paper vertices
  uint64_t iterations = 1;
  uint64_t neighbor_sample = 3;
  double slow_gb = 16.0;
  double kernel_gb = 3.5;
  uint64_t seed = 42;
};
AppRunResult RunPageRankBench(const PageRankRunConfig& config,
                              MetricsCollector* collector = nullptr,
                              const std::string& label = "");

// Liblinear-style regression (Figures 13 and 16). The dataset starts on
// the slow tier (the paper demotes it before each run).
struct LiblinearRunConfig {
  PlatformId platform = PlatformId::kA;
  PolicyKind policy = PolicyKind::kNomad;
  uint64_t scale_denom = 64;
  uint64_t samples = 81920;    // scaled; row stride 2 KB -> 10 GB paper data
  uint64_t row_lines = 32;
  uint64_t sample_lines = 8;   // column lines gathered per weight line
  uint64_t model_pages = 1024;
  uint64_t features_per_sample = 6;
  uint64_t epochs = 4;
  int threads = 4;             // multicore liblinear (shared model)
  double slow_gb = 16.0;
  double kernel_gb = 3.5;
  uint64_t seed = 42;
};
AppRunResult RunLiblinearBench(const LiblinearRunConfig& config,
                               MetricsCollector* collector = nullptr,
                               const std::string& label = "");

}  // namespace nomad

#endif  // BENCH_BENCH_COMMON_H_
