// Figure 10: average cache-line access latency of the block pointer-chase
// workload on platform C - the scenario crafted to *favor* PEBS tracking
// (every access misses the LLC, so Memtis can sample everything), yet
// fault-based policies (NOMAD, TPP) still place pages better once the WSS
// exceeds fast-memory capacity.
#include <iostream>

#include "bench/bench_common.h"
#include "src/workload/pointer_chase.h"

using namespace nomad;

namespace {

double RunChase(PolicyKind policy, double wss_gb, MetricsCollector* collector) {
  const Scale scale{64};
  const PlatformSpec platform = MakePlatform(PlatformId::kC, scale, 16.0, 32.0);
  PointerChaseWorkload::Config cfg;
  cfg.block_pages = scale.Pages(1.0);  // 1 GB blocks (paper)
  cfg.num_blocks = static_cast<uint64_t>(wss_gb);
  cfg.base.total_ops = 1200000;
  cfg.base.seed = 42;

  const uint64_t region_pages = cfg.block_pages * cfg.num_blocks;
  Sim sim(platform, policy, region_pages + 16);
  sim.ms().ReserveFastFrames(scale.Pages(3.5));
  MapRange(sim.ms(), sim.as(), 0, region_pages, Tier::kFast);

  PointerChaseWorkload app(&sim.ms(), &sim.as(), cfg);
  sim.AddWorkload(&app);
  sim.Run();
  const PhaseReport report = Analyze(sim);
  if (collector != nullptr) {
    collector->Capture(std::string(PolicyKindName(policy)) + "-" +
                           std::to_string(static_cast<int>(wss_gb)) + "gb",
                       sim, report);
  }
  // Average latency of the second (post-migration) half of accesses.
  return report.mean_latency_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("fig10_pointer_chase", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: fig10_pointer_chase [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  PrintHeader("Figure 10", "pointer-chase average cache-line latency vs WSS", PlatformId::kC,
              64);

  const double wss_points[] = {8, 12, 16, 20, 24, 28};
  TablePrinter t({"WSS (GB)", "no-migration (cyc)", "TPP (cyc)", "memtis-default (cyc)",
                  "NOMAD (cyc)"});
  for (double wss : wss_points) {
    t.AddRow({Fmt(wss, 0), Fmt(RunChase(PolicyKind::kNoMigration, wss, &collector), 0),
              Fmt(RunChase(PolicyKind::kTpp, wss, &collector), 0),
              Fmt(RunChase(PolicyKind::kMemtisDefault, wss, &collector), 0),
              Fmt(RunChase(PolicyKind::kNomad, wss, &collector), 0)});
  }
  t.Print(std::cout);
  std::cout << "\nReference: DRAM ~" << MakePlatform(PlatformId::kC).tiers[0].read_latency
            << " cycles, Optane PM ~" << MakePlatform(PlatformId::kC).tiers[1].read_latency
            << " cycles per dependent load.\n"
            << "Expected shape: while the WSS fits (<=12 GB after the kernel's share),\n"
               "every policy approaches DRAM latency; beyond it, Memtis's latency climbs\n"
               "toward PM while the fault-based NOMAD/TPP keep the hot blocks in DRAM\n"
               "and stay much lower.\n";
  return 0;
}
