// Figure 15: PageRank at a very large scale (RSS ~45-50 GB paper) on
// platforms C and D. The 16 GB fast tier can no longer hold the working
// set, so page placement matters: NOMAD roughly doubles TPP.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"

using namespace nomad;

int main() {
  std::cout << "==================================================================\n"
               "Figure 15: PageRank, large RSS (~45 GB paper), platforms C/D\n"
               "==================================================================\n";

  for (PlatformId platform : {PlatformId::kC, PlatformId::kD}) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    std::vector<PolicyKind> policies = PoliciesFor(platform, /*include_no_migration=*/true);
    std::erase(policies, PolicyKind::kMemtisQuickCool);

    std::vector<double> ops;
    for (PolicyKind policy : policies) {
      PageRankRunConfig cfg;
      cfg.platform = platform;
      cfg.policy = policy;
      cfg.scale_denom = 128;
      cfg.vertices = 1 << 21;  // 2^28-class paper graph at 1/128 scale
      cfg.neighbor_sample = 2;
      cfg.slow_gb = 64.0;
      const AppRunResult r = RunPageRankBench(cfg);
      ops.push_back(r.ops_per_sec);
    }
    const double slowest = *std::min_element(ops.begin(), ops.end());
    TablePrinter t({"policy", "vertices/s", "normalized"});
    for (size_t i = 0; i < policies.size(); i++) {
      t.AddRow({PolicyKindName(policies[i]), FmtCount(static_cast<uint64_t>(ops[i])),
                Fmt(ops[i] / slowest, 2)});
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape: with the WSS far beyond DRAM, NOMAD reaches ~2x TPP\n"
               "(paper) and edges out Memtis on platform C.\n";
  return 0;
}
