// Table 3: shadow-memory footprint vs RSS on platform B (30.7 GB of
// tiered memory). As the application's RSS approaches total capacity,
// NOMAD must reclaim shadow pages to avoid OOM; the shadow footprint
// shrinks accordingly.
#include <iostream>

#include "bench/bench_common.h"
#include "src/workload/seq_scan.h"

using namespace nomad;

int main() {
  PrintHeader("Table 3", "shadow memory size as RSS approaches capacity", PlatformId::kB, 64);

  TablePrinter t({"RSS (GB)", "shadow size (GB)", "shadow pages", "OOM events"});
  for (double rss_gb : {23.0, 25.0, 27.0, 29.0}) {
    const Scale scale{64};
    // 16 GB DRAM + 14.7 GB CXL = 30.7 GB total, as in the paper.
    const PlatformSpec platform = MakePlatform(PlatformId::kB, scale, 16.0, 14.7);
    const uint64_t rss_pages = scale.Pages(rss_gb);
    Sim sim(platform, PolicyKind::kNomad, rss_pages + 16);
    sim.ms().ReserveFastFrames(scale.Pages(1.0));
    MapRange(sim.ms(), sim.as(), 0, rss_pages, Tier::kFast);

    SeqScanWorkload::Config cfg;
    cfg.region_start = 0;
    cfg.region_pages = rss_pages;
    cfg.base.total_ops = rss_pages * 4 * 6;  // six full sweeps: shadow creation
                                             // saturates, so reclamation pressure
                                             // (not run length) sets the footprint
    SeqScanWorkload app(&sim.ms(), &sim.as(), cfg);
    sim.AddWorkload(&app);
    sim.Run();

    const uint64_t shadow_pages = sim.nomad()->shadows().count();
    const double shadow_gb =
        scale.ToPaperGb(shadow_pages * kPageSize);
    t.AddRow({Fmt(rss_gb, 0), Fmt(shadow_gb, 2), std::to_string(shadow_pages),
              std::to_string(sim.ms().counters().Get("oom") + sim.ms().pool().oom_count())});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: shadow footprint shrinks monotonically as RSS grows\n"
               "(paper: 3.93 GB at 23 GB RSS down to 0.58 GB at 29 GB RSS), and no OOM\n"
               "ever occurs because reclamation keeps pace.\n";
  return 0;
}
