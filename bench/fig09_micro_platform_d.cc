// Figure 9: micro-benchmark comparison on platform D (AMD Genoa + Micron
// CXL). Memtis is excluded: no IBS sampling backend (paper sec. 4).
#include "bench/micro_grid.h"

int main() {
  nomad::RunMicroGrid(nomad::PlatformId::kD, "Figure 9");
  return 0;
}
