// Figure 7: micro-benchmark comparison on platform A (Sapphire Rapids +
// FPGA CXL memory).
#include "bench/micro_grid.h"

int main() {
  nomad::RunMicroGrid(nomad::PlatformId::kA, "Figure 7");
  return 0;
}
