// Figure 13: Liblinear (L1-regularized logistic regression, RSS ~10 GB,
// dataset demoted to the slow tier before each run), normalized to the
// slowest policy. The hot model vector fits easily in fast memory, so
// policies that promote it promptly (NOMAD, TPP) win big.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"

using namespace nomad;

int main() {
  std::cout << "==================================================================\n"
               "Figure 13: Liblinear performance, normalized to the slowest policy\n"
               "RSS ~10 GB paper-equivalent, dataset demoted before the run\n"
               "==================================================================\n";

  for (PlatformId platform : {PlatformId::kA, PlatformId::kC, PlatformId::kD}) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    std::vector<PolicyKind> policies = PoliciesFor(platform, /*include_no_migration=*/true);
    std::erase(policies, PolicyKind::kMemtisQuickCool);

    std::vector<double> ops;
    for (PolicyKind policy : policies) {
      LiblinearRunConfig cfg;
      cfg.platform = platform;
      cfg.policy = policy;
      const AppRunResult r = RunLiblinearBench(cfg);
      ops.push_back(r.ops_per_sec);
    }
    const double slowest = *std::min_element(ops.begin(), ops.end());
    TablePrinter t({"policy", "samples/s", "normalized"});
    for (size_t i = 0; i < policies.size(); i++) {
      t.AddRow({PolicyKindName(policies[i]), FmtCount(static_cast<uint64_t>(ops[i])),
                Fmt(ops[i] / slowest, 2)});
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape: NOMAD and TPP beat no-migration and Memtis by a wide\n"
               "margin (paper: 20-150%), because they promptly promote the hot model\n"
               "pages that Memtis's sampling is slow to find.\n";
  return 0;
}
