// Figure 14: Redis with a large RSS (36.5 GB paper: 20M records) on
// platforms C and D, whose capacity tiers are big enough. Two initial
// placements: "thrashing" (everything starts on the slow tier, triggering
// intensive migration) and "normal" (fast-first allocation).
//
// Flags (defaults in brackets):
//   --scale=N            [64]    size divisor vs the paper's 20M records
//   --full               [off]   shorthand for --scale=1: the real dataset,
//                                no 1/64 substitution (~10M simulated pages)
//   --shards=N           [0]     0 = classic single-Sim run; N>0 partitions
//                                records/capacity/ops into N shards driven
//                                by the lockstep parallel engine
//   --threads=N          [1]     OS worker threads in sharded mode
//   --epoch=CYCLES       [500000] virtual-time barrier interval (sharded)
//   --ops=N              [60000] total database operations
//   --platform=C|D|both  [both]
//   --policy=...         [all]   restrict to one policy
//   --placement=thrashing|normal|both  [both]
//   --metrics_out=PATH   []      machine-readable metrics.json
//   --timeline_out=PATH  []      telemetry timeline CSV per run (the CI
//                                anomaly gate runs timeline_report --check
//                                on these)
//   --timeline_interval=CYCLES [500000] sampling cadence
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/harness/flags.h"
#include "src/harness/sharded_sim.h"

using namespace nomad;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t scale = flags.GetUint("scale", 64);
  if (flags.GetBool("full", false)) {
    scale = 1;
  }
  const uint32_t shards = static_cast<uint32_t>(flags.GetUint("shards", 0));
  const uint32_t threads = static_cast<uint32_t>(flags.GetUint("threads", 1));
  const Cycles epoch_cycles = flags.GetUint("epoch", 500000);
  const uint64_t total_ops = flags.GetUint("ops", 60000);
  const std::string platform_arg = flags.GetString("platform", "both");
  const std::string policy_arg = flags.GetString("policy", "");
  const std::string placement_arg = flags.GetString("placement", "both");
  MetricsCollector collector = MetricsCollector::FromFlags("fig14_redis_large", flags);
  const Cycles timeline_interval = flags.GetUint("timeline_interval", 500000);

  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unused) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n";
    return 2;
  }

  std::vector<PlatformId> platforms;
  if (platform_arg == "C" || platform_arg == "both") platforms.push_back(PlatformId::kC);
  if (platform_arg == "D" || platform_arg == "both") platforms.push_back(PlatformId::kD);
  if (platforms.empty()) {
    std::cerr << "unknown platform '" << platform_arg << "' (want C, D, or both)\n";
    return 2;
  }
  std::vector<bool> placements;
  if (placement_arg == "thrashing" || placement_arg == "both") placements.push_back(true);
  if (placement_arg == "normal" || placement_arg == "both") placements.push_back(false);
  if (placements.empty()) {
    std::cerr << "unknown placement '" << placement_arg
              << "' (want thrashing, normal, or both)\n";
    return 2;
  }

  std::cout << "==================================================================\n"
               "Figure 14: Redis + YCSB-A, large RSS (~36.5 GB paper), platforms C/D\n"
               "==================================================================\n";
  std::cout << "scale 1/" << scale << ", " << total_ops << " ops";
  if (shards > 0) {
    std::cout << ", " << shards << " shard(s) on " << threads << " worker thread(s)";
  }
  std::cout << "\n";

  for (PlatformId platform : platforms) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    TablePrinter t({"placement", "policy", "K ops/s", "promotions", "demotions"});
    for (bool thrashing : placements) {
      for (PolicyKind policy : PoliciesFor(platform, /*include_no_migration=*/true)) {
        if (policy == PolicyKind::kMemtisQuickCool) {
          continue;
        }
        if (!policy_arg.empty() && policy_arg != PolicyKindName(policy)) {
          continue;
        }
        YcsbRunConfig cfg;
        cfg.platform = platform;
        cfg.policy = policy;
        cfg.scale_denom = scale;
        cfg.record_count = 20000000 / scale;  // 20M paper records
        cfg.demote_first = thrashing;
        cfg.slow_gb = 64.0;  // large capacity tier (256 GB-class devices)
        cfg.total_ops = total_ops;
        cfg.timeline_interval = collector.timeline_requested() ? timeline_interval : 0;

        const std::string label = std::string(PlatformName(platform)) + "." +
                                  (thrashing ? "thrashing" : "normal") + "." +
                                  PolicyKindName(policy);
        double kops = 0;
        uint64_t promos = 0, demos = 0;
        if (shards > 0) {
          ShardedYcsbConfig scfg;
          scfg.base = cfg;
          scfg.shards = shards;
          scfg.exec_threads = threads;
          scfg.epoch_cycles = epoch_cycles;
          scfg.timeline_interval = cfg.timeline_interval;
          const ShardedAppResult r = RunShardedYcsb(scfg, &collector, label);
          kops = r.aggregate_ops_per_sec / 1e3;
          for (const AppRunResult& shard : r.per_shard) {
            promos += shard.promotions;
            demos += shard.demotions;
          }
        } else {
          const AppRunResult r = RunYcsbBench(cfg, &collector, label);
          kops = r.ops_per_sec / 1e3;
          promos = r.promotions;
          demos = r.demotions;
        }
        t.AddRow({thrashing ? "thrashing" : "normal", PolicyKindName(policy),
                  Fmt(kops, 1), FmtCount(promos), FmtCount(demos)});
      }
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape: NOMAD degrades gracefully and beats TPP under\n"
               "thrashing but trails Memtis at this scale; initial placement barely\n"
               "changes the ranking (performance converges as migration proceeds).\n";
  return 0;
}
