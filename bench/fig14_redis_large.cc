// Figure 14: Redis with a large RSS (36.5 GB paper: 20M records) on
// platforms C and D, whose capacity tiers are big enough. Two initial
// placements: "thrashing" (everything starts on the slow tier, triggering
// intensive migration) and "normal" (fast-first allocation).
#include <iostream>

#include "bench/bench_common.h"

using namespace nomad;

int main() {
  std::cout << "==================================================================\n"
               "Figure 14: Redis + YCSB-A, large RSS (~36.5 GB paper), platforms C/D\n"
               "==================================================================\n";

  for (PlatformId platform : {PlatformId::kC, PlatformId::kD}) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    TablePrinter t({"placement", "policy", "K ops/s", "promotions", "demotions"});
    for (bool thrashing : {true, false}) {
      for (PolicyKind policy : PoliciesFor(platform, /*include_no_migration=*/true)) {
        if (policy == PolicyKind::kMemtisQuickCool) {
          continue;
        }
        YcsbRunConfig cfg;
        cfg.platform = platform;
        cfg.policy = policy;
        cfg.record_count = 312500;  // ~20M paper records
        cfg.demote_first = thrashing;
        cfg.slow_gb = 64.0;  // large capacity tier (256 GB-class devices)
        cfg.total_ops = 60000;
        const AppRunResult r = RunYcsbBench(cfg);
        t.AddRow({thrashing ? "thrashing" : "normal", PolicyKindName(policy),
                  Fmt(r.ops_per_sec / 1e3, 1), FmtCount(r.promotions), FmtCount(r.demotions)});
      }
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape: NOMAD degrades gracefully and beats TPP under\n"
               "thrashing but trails Memtis at this scale; initial placement barely\n"
               "changes the ranking (performance converges as migration proceeds).\n";
  return 0;
}
