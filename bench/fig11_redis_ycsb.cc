// Figure 11: Redis + YCSB workload-A throughput across three cases:
//  case 1: RSS 13 GB (6M records), dataset demoted to the slow tier first,
//  case 2: RSS 24 GB (10M records), demoted first,
//  case 3: same as case 2 but *not* demoted (fast-first placement).
// Run on platforms A, C and D (B behaves like A in the paper).
#include <iostream>

#include "bench/bench_common.h"

using namespace nomad;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("fig11_redis_ycsb", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: fig11_redis_ycsb [--metrics_out=PATH] [--trace_out=PATH]"
                 " [--profile_out=PATH]\n";
    return 2;
  }
  std::cout << "==================================================================\n"
               "Figure 11: Redis + YCSB-A throughput (K ops/s, simulated)\n"
               "sizes scaled 1/64; record = 1 KB value + overhead (2 KB)\n"
               "==================================================================\n";

  struct Case {
    const char* label;
    const char* id;    // metrics label stem
    uint64_t records;  // scaled
    bool demote_first;
  };
  const Case cases[] = {
      {"case 1 (13GB, demoted)", "case1", 93750, true},    // ~6M paper records
      {"case 2 (24GB, demoted)", "case2", 156250, true},   // ~10M paper records
      {"case 3 (24GB, in place)", "case3", 156250, false},
  };

  for (PlatformId platform : {PlatformId::kA, PlatformId::kC, PlatformId::kD}) {
    std::cout << "\n--- platform " << PlatformName(platform) << " ---\n";
    TablePrinter t({"case", "policy", "K ops/s", "promotions"});
    for (const Case& c : cases) {
      for (PolicyKind policy : PoliciesFor(platform, /*include_no_migration=*/true)) {
        YcsbRunConfig cfg;
        cfg.platform = platform;
        cfg.policy = policy;
        cfg.record_count = c.records;
        cfg.demote_first = c.demote_first;
        cfg.total_ops = 60000;
        const std::string label = std::string(PlatformName(platform)) + "-" + c.id + "-" +
                                  PolicyKindName(policy);
        const AppRunResult r = RunYcsbBench(cfg, &collector, label);
        t.AddRow({c.label, PolicyKindName(policy), Fmt(r.ops_per_sec / 1e3, 1),
                  FmtCount(r.promotions)});
      }
    }
    t.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper sec. 4.2): NOMAD beats TPP everywhere; NOMAD\n"
               "beats Memtis in case 1 (small WSS) but falls behind as the RSS grows\n"
               "(cases 2-3); and every migrating policy trails the no-migration\n"
               "baseline, because YCSB's accesses are too random for migration to\n"
               "pay for itself.\n";
  return 0;
}
