// Wall-clock simulation-throughput benchmark: how many pages the simulator
// pushes through per real second, NOT how fast the simulated machine is.
// This is the gate for the engine's own performance work (arena page
// tables, cached scheduling, the sharded parallel engine, struct-of-arrays
// frame metadata, batched access execution): simulated results are
// bit-reproducible, so the only thing allowed to change run to run is the
// wall clock, and this file measures exactly that.
//
// Each row runs a fixed workload and reports
//   pages_per_sec = simulated page accesses / wall seconds.
// For the micro workload one op is one page access, so ops double as
// pages. Every row is timed --reps times and the best (minimum-wall) rep
// is reported: throughput is noise-bounded from above, so the fastest rep
// is the best estimate of the machine-independent cost. Output goes to
// --out as schema nomad-throughput-v1, which
// scripts/check_bench_regression.py compares against
// bench/baselines/bench_throughput.json (higher is better, 20% gate).
//
// Besides the policy rows, a batch-size ablation re-times the no-migration
// row at K accesses per engine step (K = 1/8/32/128); K=8 is the workload
// default, so micro.no-migration and micro.no-migration.k8 measure the
// same configuration. The JSON also records the hot+cold frame-metadata
// footprint, bytes_of_metadata_per_simulated_page, straight from
// FrameTable::BytesPerFrame().
//
// Flags (defaults in brackets):
//   --ops=N     [2000000]  ops per row
//   --reps=N    [3]        timed repetitions per row, best rep reported
//   --quick     [off]      1/10 ops: CI smoke mode
//   --out=PATH  [BENCH_throughput.json]
#include <climits>
#include <malloc.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/flags.h"
#include "src/harness/sharded_sim.h"
#include "src/mm/page.h"

using namespace nomad;

namespace {

struct Row {
  std::string label;
  uint64_t pages = 0;
  unsigned batch = 8;
  double wall_seconds = 0;
  double pages_per_sec = 0;
};

double WallSeconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

Row BestOf(const std::string& label, uint64_t ops, unsigned batch, unsigned reps,
           const std::function<void()>& run) {
  Row row{label, ops, batch, 0, 0};
  for (unsigned r = 0; r < reps; r++) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const double wall = WallSeconds(t0);
    if (r == 0 || wall < row.wall_seconds) {
      row.wall_seconds = wall;
    }
  }
  row.pages_per_sec = static_cast<double>(ops) / row.wall_seconds;
  return row;
}

Row TimeMicro(const std::string& label, PolicyKind policy, uint64_t ops, unsigned reps,
              unsigned batch = 8) {
  MicroRunConfig cfg;
  cfg.policy = policy;
  cfg.total_ops = ops;
  cfg.batch = batch;
  return BestOf(label, ops, batch, reps, [&] { RunMicroBench(cfg); });
}

Row TimeSharded(const std::string& label, PolicyKind policy, uint64_t ops, uint32_t shards,
                uint32_t threads, unsigned reps) {
  ShardedRunConfig cfg;
  cfg.base.policy = policy;
  cfg.base.total_ops = ops;
  cfg.shards = shards;
  cfg.exec_threads = threads;
  return BestOf(label, ops, 8, reps, [&] { RunShardedMicro(cfg); });
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t ops = flags.GetUint("ops", 2000000);
  if (flags.GetBool("quick", false)) {
    ops /= 10;
  }
  const unsigned reps = static_cast<unsigned>(flags.GetUint("reps", 3));
  const std::string out = flags.GetString("out", "BENCH_throughput.json");
  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unused) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n";
    return 2;
  }

  std::cout << "bench_throughput: wall-clock pages-simulated/sec, " << ops
            << " ops per row, best of " << reps << " rep(s)\n"
            << "frame metadata: " << FrameTable::BytesPerFrame()
            << " bytes/page (hot flags word + cold side)\n\n";

  // Keep the heap resident between rows. Each row tears down a full Sim;
  // with default glibc tuning the freed arena is handed back to the kernel
  // (trim + mmap'd chunks), so the next row refaults every page and the
  // first timed rep of each row measures the allocator, not the engine
  // (reproducibly ~20% slow vs an identically-configured later row).
#if defined(__GLIBC__)
  mallopt(M_TRIM_THRESHOLD, INT_MAX);
  mallopt(M_MMAP_MAX, 0);
#endif
  // Untimed warmup so the arena (and branch predictors / i-cache) are hot
  // before the first timed row.
  {
    MicroRunConfig warm;
    warm.policy = PolicyKind::kNoMigration;
    warm.total_ops = ops;
    RunMicroBench(warm);
  }

  std::vector<Row> rows;
  rows.push_back(TimeMicro("micro.no-migration", PolicyKind::kNoMigration, ops, reps));
  rows.push_back(TimeMicro("micro.tpp", PolicyKind::kTpp, ops, reps));
  rows.push_back(TimeMicro("micro.nomad", PolicyKind::kNomad, ops, reps));
  rows.push_back(TimeSharded("sharded.nomad.s4t1", PolicyKind::kNomad, ops, 4, 1, reps));
  // Batch-size ablation: how much of the engine's throughput comes from
  // executing K queued accesses per step through the AccessBatch fast path.
  for (unsigned k : {1u, 8u, 32u, 128u}) {
    rows.push_back(TimeMicro("micro.no-migration.k" + std::to_string(k),
                             PolicyKind::kNoMigration, ops, reps, k));
  }

  TablePrinter t({"row", "pages", "batch", "wall s", "pages/sec"});
  for (const Row& r : rows) {
    t.AddRow({r.label, FmtCount(r.pages), std::to_string(r.batch), Fmt(r.wall_seconds, 3),
              FmtCount(static_cast<uint64_t>(r.pages_per_sec))});
  }
  t.Print(std::cout);

  std::ofstream f(out);
  if (!f) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  f << "{\n  \"schema\": \"nomad-throughput-v1\",\n  \"benchmark\": "
       "\"bench_throughput\",\n  \"metadata_bytes_per_page\": "
    << FrameTable::BytesPerFrame() << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    f << "    {\"label\": \"" << r.label << "\", \"pages\": " << r.pages
      << ", \"batch\": " << r.batch << ", \"wall_seconds\": " << r.wall_seconds
      << ", \"report\": {\"pages_per_sec\": " << r.pages_per_sec << "}}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::cout << "\nwrote " << out << "\n";
  return 0;
}
