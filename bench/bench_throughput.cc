// Wall-clock simulation-throughput benchmark: how many pages the simulator
// pushes through per real second, NOT how fast the simulated machine is.
// This is the gate for the engine's own performance work (arena page
// tables, cached scheduling, the sharded parallel engine): simulated
// results are bit-reproducible, so the only thing allowed to change run to
// run is the wall clock, and this file measures exactly that.
//
// Each row runs a fixed workload and reports
//   pages_per_sec = simulated page accesses / wall seconds.
// For the micro workload one op is one page access, so ops double as
// pages. Output goes to --out as schema nomad-throughput-v1, which
// scripts/check_bench_regression.py compares against
// bench/baselines/bench_throughput.json (higher is better, 20% gate).
//
// Flags (defaults in brackets):
//   --ops=N     [2000000]  ops per row
//   --quick     [off]      1/10 ops: CI smoke mode
//   --out=PATH  [BENCH_throughput.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/flags.h"
#include "src/harness/sharded_sim.h"

using namespace nomad;

namespace {

struct Row {
  std::string label;
  uint64_t pages = 0;
  double wall_seconds = 0;
  double pages_per_sec = 0;
};

double WallSeconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

Row TimeMicro(const char* label, PolicyKind policy, uint64_t ops) {
  MicroRunConfig cfg;
  cfg.policy = policy;
  cfg.total_ops = ops;
  const auto t0 = std::chrono::steady_clock::now();
  RunMicroBench(cfg);
  Row row{label, ops, WallSeconds(t0), 0};
  row.pages_per_sec = static_cast<double>(ops) / row.wall_seconds;
  return row;
}

Row TimeSharded(const char* label, PolicyKind policy, uint64_t ops, uint32_t shards,
                uint32_t threads) {
  ShardedRunConfig cfg;
  cfg.base.policy = policy;
  cfg.base.total_ops = ops;
  cfg.shards = shards;
  cfg.exec_threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  RunShardedMicro(cfg);
  Row row{label, ops, WallSeconds(t0), 0};
  row.pages_per_sec = static_cast<double>(ops) / row.wall_seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  uint64_t ops = flags.GetUint("ops", 2000000);
  if (flags.GetBool("quick", false)) {
    ops /= 10;
  }
  const std::string out = flags.GetString("out", "BENCH_throughput.json");
  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unused) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n";
    return 2;
  }

  std::cout << "bench_throughput: wall-clock pages-simulated/sec, " << ops
            << " ops per row\n\n";

  std::vector<Row> rows;
  rows.push_back(TimeMicro("micro.no-migration", PolicyKind::kNoMigration, ops));
  rows.push_back(TimeMicro("micro.tpp", PolicyKind::kTpp, ops));
  rows.push_back(TimeMicro("micro.nomad", PolicyKind::kNomad, ops));
  rows.push_back(TimeSharded("sharded.nomad.s4t1", PolicyKind::kNomad, ops, 4, 1));

  TablePrinter t({"row", "pages", "wall s", "pages/sec"});
  for (const Row& r : rows) {
    t.AddRow({r.label, FmtCount(r.pages), Fmt(r.wall_seconds, 3),
              FmtCount(static_cast<uint64_t>(r.pages_per_sec))});
  }
  t.Print(std::cout);

  std::ofstream f(out);
  if (!f) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  f << "{\n  \"schema\": \"nomad-throughput-v1\",\n  \"benchmark\": "
       "\"bench_throughput\",\n  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    f << "    {\"label\": \"" << r.label << "\", \"pages\": " << r.pages
      << ", \"wall_seconds\": " << r.wall_seconds
      << ", \"report\": {\"pages_per_sec\": " << r.pages_per_sec << "}}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  std::cout << "\nwrote " << out << "\n";
  return 0;
}
