// Ablation: transactional/asynchronous page migration vs the same policy
// with kpromote forced onto the synchronous unmap-copy-remap path.
// Isolates the contribution of TPM (sec. 3.1) from the rest of NOMAD.
#include <iostream>
#include <memory>

#include "bench/bench_common.h"

using namespace nomad;

namespace {

MicroRunResult RunVariant(bool transactional, double write_fraction) {
  const Scale scale{64};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);

  NomadPolicy::Config pcfg;
  pcfg.kpromote.transactional = transactional;
  auto policy = std::make_unique<NomadPolicy>(pcfg);

  Sim sim(platform, std::move(policy), PolicyKind::kNomad, scale.Pages(27.0) + 16);
  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(13.5);
  layout.wss_fast_pages = scale.Pages(2.5);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  std::vector<std::unique_ptr<MicroWorkload>> apps;
  for (int t = 0; t < 2; t++) {
    MicroWorkload::Config wcfg;
    wcfg.base.total_ops = 1200000;
    wcfg.base.seed = 1042 + t;
    wcfg.wss_start = wss_start;
    wcfg.wss_pages = layout.wss_pages;
    wcfg.write_fraction = write_fraction;
    apps.push_back(std::make_unique<MicroWorkload>(&sim.ms(), &sim.as(), &zipf, wcfg));
    sim.AddWorkload(apps.back().get());
  }
  sim.Run();
  MicroRunResult r;
  r.report = Analyze(sim);
  r.counters = sim.ms().counters();
  r.tpm_commits = sim.nomad()->tpm_stats().commits;
  r.tpm_aborts = sim.nomad()->tpm_stats().aborts;
  return r;
}

}  // namespace

int main() {
  PrintHeader("Ablation",
              "where NOMAD's win comes from: asynchrony vs transactionality",
              PlatformId::kA, 64);

  TablePrinter t({"variant", "workload", "transient GB/s", "stable GB/s",
                  "migration blocks"});
  for (double wf : {0.0, 1.0}) {
    const char* wl = wf > 0 ? "write" : "read";
    const MicroRunResult tpm = RunVariant(true, wf);
    const MicroRunResult sync = RunVariant(false, wf);
    // TPP = synchronous migration ON the faulting thread (the critical
    // path), for reference.
    MicroRunConfig tcfg = MediumWssConfig(PlatformId::kA, PolicyKind::kTpp);
    tcfg.write_fraction = wf;
    tcfg.total_ops = 2400000;
    const MicroRunResult tpp = RunMicroBench(tcfg);
    t.AddRow({"NOMAD, TPM (async + transactional)", wl, Fmt(tpm.report.transient_gbps),
              Fmt(tpm.report.stable_gbps),
              FmtCount(tpm.counters.Get("fault.migration_block"))});
    t.AddRow({"NOMAD, locking copy (async only)", wl, Fmt(sync.report.transient_gbps),
              Fmt(sync.report.stable_gbps),
              FmtCount(sync.counters.Get("fault.migration_block"))});
    t.AddRow({"TPP (sync, on the critical path)", wl, Fmt(tpp.report.transient_gbps),
              Fmt(tpp.report.stable_gbps),
              FmtCount(tpp.counters.Get("fault.migration_block"))});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: moving migration OFF the critical path (either NOMAD\n"
               "variant vs TPP) is the dominant win. Transactionality then removes the\n"
               "page-lock windows concurrent accessors block on (fewer migration\n"
               "blocks), at the price of aborted copies on write-heavy pages - the\n"
               "trade the paper describes in sec. 3.1.\n";
  return 0;
}
