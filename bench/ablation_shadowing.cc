// Ablation: non-exclusive tiering (page shadowing) vs exclusive tiering
// inside NOMAD. With shadowing disabled, every demotion must copy the page
// back to the slow tier; with it, clean masters demote by a PTE remap.
#include <iostream>
#include <memory>

#include "bench/bench_common.h"

using namespace nomad;

namespace {

struct VariantResult {
  MicroRunResult run;
  uint64_t remap_demotions;
  uint64_t copy_demotions;
};

VariantResult RunVariant(bool shadowing, double write_fraction, MetricsCollector* collector) {
  const Scale scale{64};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);

  NomadPolicy::Config pcfg;
  pcfg.kpromote.shadowing = shadowing;
  auto policy = std::make_unique<NomadPolicy>(pcfg);

  Sim sim(platform, std::move(policy), PolicyKind::kNomad, scale.Pages(27.0) + 16);
  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(13.5);
  layout.wss_fast_pages = scale.Pages(2.5);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  std::vector<std::unique_ptr<MicroWorkload>> apps;
  for (int t = 0; t < 2; t++) {
    MicroWorkload::Config wcfg;
    wcfg.base.total_ops = 1200000;
    wcfg.base.seed = 2042 + t;
    wcfg.wss_start = wss_start;
    wcfg.wss_pages = layout.wss_pages;
    wcfg.write_fraction = write_fraction;
    apps.push_back(std::make_unique<MicroWorkload>(&sim.ms(), &sim.as(), &zipf, wcfg));
    sim.AddWorkload(apps.back().get());
  }
  sim.Run();
  VariantResult v;
  v.run.report = Analyze(sim);
  v.run.counters = sim.ms().counters();
  v.remap_demotions = sim.ms().counters().Get("nomad.demote_remap");
  v.copy_demotions = sim.ms().counters().Get("nomad.demote_copy");
  if (collector != nullptr) {
    collector->Capture(std::string(shadowing ? "shadowing" : "exclusive") +
                           (write_fraction > 0 ? "-write" : "-read"),
                       sim, v.run.report);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("ablation_shadowing", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: ablation_shadowing [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  PrintHeader("Ablation", "page shadowing (non-exclusive) vs exclusive tiering in NOMAD",
              PlatformId::kA, 64);

  TablePrinter t({"variant", "workload", "stable GB/s", "remap demotions",
                  "copy demotions", "shadow faults"});
  for (double wf : {0.0, 0.5}) {
    const char* wl = wf > 0 ? "50% write" : "read";
    const VariantResult shadow = RunVariant(true, wf, &collector);
    const VariantResult exclusive = RunVariant(false, wf, &collector);
    t.AddRow({"shadowing", wl, Fmt(shadow.run.report.stable_gbps),
              FmtCount(shadow.remap_demotions), FmtCount(shadow.copy_demotions),
              FmtCount(shadow.run.counters.Get("nomad.shadow_fault"))});
    t.AddRow({"exclusive", wl, Fmt(exclusive.run.report.stable_gbps),
              FmtCount(exclusive.remap_demotions), FmtCount(exclusive.copy_demotions),
              FmtCount(exclusive.run.counters.Get("nomad.shadow_fault"))});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: with shadowing, a share of demotions become remaps\n"
               "(free) under read-mostly thrashing; with writes, shadows get discarded\n"
               "by shadow faults and the benefit shrinks - the paper's stated\n"
               "trade-off (sec. 3.2 and the write results of sec. 4.1).\n";
  return 0;
}
