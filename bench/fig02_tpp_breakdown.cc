// Figure 2: time breakdown of the application core while TPP actively
// relocates pages - synchronous page migration and page fault handling
// consume a large share of the runtime, while the demotion core (kswapd)
// stays comparatively idle.
#include <iostream>

#include "bench/bench_common.h"

using namespace nomad;

int main() {
  PrintHeader("Figure 2", "runtime breakdown of TPP during migration", PlatformId::kA, 64);

  MicroRunConfig cfg = MediumWssConfig(PlatformId::kA, PolicyKind::kTpp);
  cfg.placement = Placement::kRandom;
  cfg.total_ops = 1200000;
  cfg.threads = 1;  // single app core, like the paper's per-core breakdown
  const MicroRunResult r = RunMicroBench(cfg);

  const KernelCosts costs = MakePlatform(PlatformId::kA).costs;
  const double total = static_cast<double>(r.report.total_cycles);
  const double fault_handling =
      static_cast<double>(r.counters.Get("fault.hint") * costs.page_fault);
  const double promotion = static_cast<double>(r.counters.Get("tpp.promote_cycles"));
  const double demotion_core = static_cast<double>(r.counters.Get("kswapd.cycles"));
  const double user = total - fault_handling - promotion;

  TablePrinter t({"component", "cycles", "% of app core"});
  t.AddRow({"user execution (incl. device time)", FmtCount(static_cast<uint64_t>(user)),
            Fmt(user / total * 100, 1)});
  t.AddRow({"page fault handling", FmtCount(static_cast<uint64_t>(fault_handling)),
            Fmt(fault_handling / total * 100, 1)});
  t.AddRow({"synchronous promotion (migration)", FmtCount(static_cast<uint64_t>(promotion)),
            Fmt(promotion / total * 100, 1)});
  t.Print(std::cout);

  std::cout << "\ndemotion (kswapd, on its own core, off the critical path): "
            << FmtCount(static_cast<uint64_t>(demotion_core)) << " cycles = "
            << Fmt(demotion_core / total * 100, 1) << "% of the run\n"
            << "\nExpected shape: fault handling + synchronous promotion consume a\n"
               "large share of the application core (the paper's point); demotion\n"
               "work runs on a separate core and never blocks the application.\n";
  return 0;
}
