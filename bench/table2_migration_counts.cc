// Table 2: page promotion/demotion counts for the read and write variants
// of the micro-benchmark, split into "migration in progress" (first half)
// and "steady" (second half) phases, for TPP / Memtis-Default / NOMAD on
// platform A.
//
// Counts scale with the run length (the paper ran minutes of wall time;
// this harness runs a fixed operation budget), so compare *ratios*: TPP
// and NOMAD migrate orders of magnitude more than Memtis, and activity
// collapses in the steady phase for small WSS but persists for large WSS.
#include <iostream>

#include "bench/bench_common.h"

using namespace nomad;

namespace {

struct PhaseCounts {
  uint64_t promo_first, demo_first, promo_steady, demo_steady;
};

PhaseCounts CountsOf(const MicroRunResult& r) {
  return {Promotions(r.first_half), Demotions(r.first_half),
          Promotions(r.counters) - Promotions(r.first_half),
          Demotions(r.counters) - Demotions(r.first_half)};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("table2_migration_counts", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: table2_migration_counts [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  PrintHeader("Table 2", "promotions/demotions per phase (read | write runs)",
              PlatformId::kA, 64);

  struct Row {
    const char* wss;
    const char* slug;
    MicroRunConfig (*make)(PlatformId, PolicyKind);
  };
  const Row rows[] = {
      {"Small WSS", "small", SmallWssConfig},
      {"Medium WSS", "medium", MediumWssConfig},
      {"Large WSS", "large", LargeWssConfig},
  };
  const PolicyKind policies[] = {PolicyKind::kTpp, PolicyKind::kMemtisDefault,
                                 PolicyKind::kNomad};

  TablePrinter t({"workload", "policy", "in-prog promo (r|w)", "in-prog demo (r|w)",
                  "steady promo (r|w)", "steady demo (r|w)"});
  for (const Row& row : rows) {
    for (PolicyKind policy : policies) {
      MicroRunConfig cfg_r = row.make(PlatformId::kA, policy);
      MicroRunConfig cfg_w = cfg_r;
      cfg_w.write_fraction = 1.0;
      const std::string tag =
          std::string(PolicyKindName(policy)) + "-" + row.slug;
      const PhaseCounts r = CountsOf(RunMicroBench(cfg_r, &collector, tag + "-read"));
      const PhaseCounts w = CountsOf(RunMicroBench(cfg_w, &collector, tag + "-write"));
      t.AddRow({row.wss, PolicyKindName(policy),
                FmtCount(r.promo_first) + "|" + FmtCount(w.promo_first),
                FmtCount(r.demo_first) + "|" + FmtCount(w.demo_first),
                FmtCount(r.promo_steady) + "|" + FmtCount(w.promo_steady),
                FmtCount(r.demo_steady) + "|" + FmtCount(w.demo_steady)});
    }
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: fault-driven policies (TPP, NOMAD) migrate heavily;\n"
               "Memtis migrates orders of magnitude less; steady-phase activity is\n"
               "near zero for small WSS and stays high under large-WSS thrashing.\n";
  return 0;
}
