// Shared driver for Figures 7, 8 and 9: the small/medium/large-WSS
// micro-benchmark grid (read and write variants, transient and stable
// phases) on one platform.
#ifndef BENCH_MICRO_GRID_H_
#define BENCH_MICRO_GRID_H_

#include <iostream>

#include "bench/bench_common.h"

namespace nomad {

inline void RunMicroGrid(PlatformId platform, const char* figure) {
  PrintHeader(figure,
              "micro-benchmark bandwidth, small/medium/large WSS, "
              "transient (migration in progress) and stable phases",
              platform, 64);

  struct Row {
    const char* wss;
    MicroRunConfig (*make)(PlatformId, PolicyKind);
  };
  const Row rows[] = {
      {"small (10GB)", SmallWssConfig},
      {"medium (13.5GB)", MediumWssConfig},
      {"large (27GB)", LargeWssConfig},
  };

  for (bool writes : {false, true}) {
    std::cout << "\n--- " << (writes ? "WRITE" : "READ") << " benchmark (GB/s) ---\n";
    TablePrinter t({"WSS", "policy", "in progress", "stable"});
    for (const Row& row : rows) {
      for (PolicyKind policy : PoliciesFor(platform)) {
        MicroRunConfig cfg = row.make(platform, policy);
        cfg.write_fraction = writes ? 1.0 : 0.0;
        const MicroRunResult r = RunMicroBench(cfg);
        t.AddRow({row.wss, PolicyKindName(policy), Fmt(r.report.transient_gbps),
                  Fmt(r.report.stable_gbps)});
      }
    }
    t.Print(std::cout);
  }

  std::cout << "\nExpected shape (paper sec. 4.1):\n"
               "- small WSS: NOMAD ~ Memtis while migrating; NOMAD ~ TPP and >> Memtis\n"
               "  once stable (Memtis under-migrates),\n"
               "- medium WSS: Memtis wins the transient (no faults); NOMAD beats TPP\n"
               "  everywhere and beats Memtis on stable reads,\n"
               "- large WSS: severe thrashing, Memtis's restraint wins overall, but\n"
               "  NOMAD still consistently beats TPP.\n";
}

}  // namespace nomad

#endif  // BENCH_MICRO_GRID_H_
