// Overload benchmark for the migration control plane: a thrashing
// workload (working set ~2x the fast tier, flat-ish Zipf, random initial
// placement) drives sustained promotion pressure, then the same offered
// load runs with admission control off and on. Without admission every
// hot-looking page competes for migration bandwidth and the churn taxes
// demand traffic; with a token-bucket budget + backlog cap the control
// plane sheds migration work instead, trading pages-migrated for demand
// latency. The gate: admission-on must show a no-worse p99 and a bounded
// pending-queue high watermark versus admission-off, with both variants'
// metrics recorded for scripts/check_bench_regression.py (baseline
// bench/baselines/bench_overload.json, 20% threshold).
#include <iostream>
#include <memory>
#include <string>

#include "bench/bench_common.h"

using namespace nomad;

namespace {

constexpr uint64_t kScaleDenom = 64;
constexpr uint64_t kTotalOps = 1500000;

struct VariantResult {
  PhaseReport report;
  uint64_t pages_migrated = 0;   // TPM commits
  uint64_t sync_migrations = 0;  // abort-storm downgrades taking the sync path
  uint64_t pending_hwm = 0;
  uint64_t pcq_hwm = 0;
  uint64_t admit_rejects = 0;
  uint64_t admit_defers = 0;
  uint64_t admit_downgrades = 0;
};

// The fast tier shrinks to half the working set: promotion can never
// settle, so kpromote stays saturated for the whole run.
PlatformSpec ThrashPlatform(const Scale& scale) {
  PlatformSpec p = MakePlatform(PlatformId::kA, scale);
  p.tiers[0].capacity_bytes = scale.Pages(4.0) * kPageSize;
  return p;
}

VariantResult RunVariant(bool admission, MetricsCollector* collector) {
  const Scale scale{kScaleDenom};
  NomadPolicy::Config pcfg;
  pcfg.enable_admission = admission;
  if (admission) {
    // A deliberately tight budget: the bucket sustains far fewer
    // promotions than the thrash offers, the backlog cap keeps the
    // pending queue shallow, and storming pages fall back to sync
    // migration instead of aborting over and over.
    pcfg.admission.promote_cycles_per_page = 60000;
    pcfg.admission.promote_burst_pages = 16;
    pcfg.admission.demote_cycles_per_page = 30000;
    pcfg.admission.demote_burst_pages = 16;
    pcfg.admission.max_pending_backlog = 32;
    pcfg.admission.downgrade_abort_threshold = 3;
    pcfg.admission.downgrade_decay = 4000000;
  }
  auto policy = std::make_unique<NomadPolicy>(pcfg);

  Sim sim(ThrashPlatform(scale), std::move(policy), PolicyKind::kNomad,
          scale.Pages(14.0) + 16);
  MicroLayout layout;
  layout.rss_pages = scale.Pages(12.0);
  layout.wss_pages = scale.Pages(8.0);
  layout.wss_fast_pages = scale.Pages(1.0);
  layout.kernel_pages = scale.Pages(1.0);
  layout.placement = Placement::kRandom;
  // Theta 0.8: flat enough that the "hot" set never fits, so promotions
  // keep displacing each other (the overload the admission plane is for).
  ScrambledZipfian zipf(layout.wss_pages, 0.8, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  MicroWorkload::Config wcfg;
  wcfg.base.total_ops = kTotalOps;
  wcfg.wss_start = wss_start;
  wcfg.wss_pages = layout.wss_pages;
  wcfg.write_fraction = 0.3;
  MicroWorkload app(&sim.ms(), &sim.as(), &zipf, wcfg);
  sim.AddWorkload(&app);
  sim.Run();

  VariantResult v;
  v.report = Analyze(sim);
  v.pages_migrated = sim.nomad()->tpm_stats().commits;
  v.sync_migrations = sim.ms().counters().Get(cnt::kNomadDegradedSyncMigration);
  v.pending_hwm = sim.nomad()->queues().pending_hwm();
  v.pcq_hwm = sim.nomad()->queues().pcq_hwm();
  if (const AdmissionController* ac = sim.nomad()->admission()) {
    v.admit_rejects = ac->stats().rejects;
    v.admit_defers = ac->stats().defers;
    v.admit_downgrades = ac->stats().downgrades;
  }
  if (collector != nullptr) {
    collector->Capture(admission ? "admission-on" : "admission-off", sim, v.report);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("bench_overload", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: bench_overload [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  PrintHeader("Overload", "admission control under a thrashing working set",
              PlatformId::kA, kScaleDenom);

  const VariantResult off = RunVariant(false, &collector);
  const VariantResult on = RunVariant(true, &collector);

  TablePrinter t({"variant", "stable GB/s", "p99 (cyc)", "pages migrated", "sync migr",
                  "pending hwm", "pcq hwm"});
  t.AddRow({"admission off", Fmt(off.report.stable_gbps), FmtCount(static_cast<uint64_t>(off.report.p99_latency_cycles)),
            FmtCount(off.pages_migrated), FmtCount(off.sync_migrations),
            FmtCount(off.pending_hwm), FmtCount(off.pcq_hwm)});
  t.AddRow({"admission on", Fmt(on.report.stable_gbps), FmtCount(static_cast<uint64_t>(on.report.p99_latency_cycles)),
            FmtCount(on.pages_migrated), FmtCount(on.sync_migrations), FmtCount(on.pending_hwm),
            FmtCount(on.pcq_hwm)});
  t.Print(std::cout);
  std::cout << "\nadmission-on verdicts: rejects=" << on.admit_rejects
            << " defers=" << on.admit_defers << " downgrades=" << on.admit_downgrades << "\n";
  std::cout << "Expected shape: admission-on migrates a fraction of the pages, keeps\n"
               "the pending queue at its cap (bounded hwm), and converts the saved\n"
               "migration bandwidth into lower demand-traffic tail latency.\n";

  // The bench is its own acceptance check so CI fails loudly rather than
  // silently committing a baseline where admission hurts.
  bool ok = true;
  if (on.report.p99_latency_cycles > off.report.p99_latency_cycles) {
    std::cout << "FAIL: admission-on p99 (" << on.report.p99_latency_cycles
              << ") worse than admission-off (" << off.report.p99_latency_cycles << ")\n";
    ok = false;
  }
  if (on.pending_hwm > 32 + 1) {
    std::cout << "FAIL: admission-on pending hwm " << on.pending_hwm
              << " exceeds the backlog cap\n";
    ok = false;
  }
  if (on.pages_migrated >= off.pages_migrated) {
    std::cout << "FAIL: admission-on migrated no fewer pages (" << on.pages_migrated << " vs "
              << off.pages_migrated << ")\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
