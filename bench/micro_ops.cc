// Google-benchmark micro-operations: host-side costs of the simulator's
// hottest primitives. These are regression canaries for simulator
// performance, not paper results.
#include <benchmark/benchmark.h>

#include "src/mem/device.h"
#include "src/mm/cache.h"
#include "src/mm/memory_system.h"
#include "src/mm/tlb.h"
#include "src/nomad/radix_tree.h"
#include "src/sim/rng.h"
#include "src/workload/zipfian.h"

namespace nomad {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_ZipfianDraw(benchmark::State& state) {
  ScrambledZipfian zipf(static_cast<uint64_t>(state.range(0)), 0.99, 7);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Draw(rng));
  }
}
BENCHMARK(BM_ZipfianDraw)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_TlbLookupHit(benchmark::State& state) {
  Tlb tlb(64);
  tlb.Fill(5, 500, true, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.Lookup(5));
  }
}
BENCHMARK(BM_TlbLookupHit);

void BM_LlcAccess(benchmark::State& state) {
  LastLevelCache llc(1 << 20);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(llc.Access(rng.Below(1 << 24) * 64));
  }
}
BENCHMARK(BM_LlcAccess);

void BM_DeviceAccess(benchmark::State& state) {
  TierSpec spec;
  spec.read_latency = 316;
  spec.read_bw_single = 5.7;
  spec.read_bw_peak = 15.0;
  DeviceChannel channel(spec.read_latency, spec.read_bw_single, spec.read_bw_peak);
  Cycles now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.Access(now, 64));
    now += 300;
  }
}
BENCHMARK(BM_DeviceAccess);

void BM_RadixTreeInsertErase(benchmark::State& state) {
  RadixTree<uint64_t> tree;
  Rng rng(9);
  for (auto _ : state) {
    const uint64_t key = rng.Below(1 << 20);
    tree.Insert(key, key);
    tree.Erase(key);
  }
}
BENCHMARK(BM_RadixTreeInsertErase);

void BM_RadixTreeFind(benchmark::State& state) {
  RadixTree<uint64_t> tree;
  for (uint64_t k = 0; k < 65536; k++) {
    tree.Insert(k, k);
  }
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(rng.Below(65536)));
  }
}
BENCHMARK(BM_RadixTreeFind);

void BM_SimulatedAccess(benchmark::State& state) {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = 65536 * kPageSize;
  p.tiers[1].capacity_bytes = 65536 * kPageSize;
  Engine engine;
  MemorySystem ms(p, &engine);
  ms.RegisterCpu(0);
  AddressSpace as(65536);
  for (Vpn v = 0; v < 32768; v++) {
    ms.MapNewPage(as, v);
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms.Access(0, as, rng.Below(32768), rng.Below(64) * 64, false));
  }
}
BENCHMARK(BM_SimulatedAccess);

}  // namespace
}  // namespace nomad

BENCHMARK_MAIN();
