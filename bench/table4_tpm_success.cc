// Table 4: success rate of NOMAD's transactional migrations for Liblinear
// and Redis with large RSS on platforms C and D.
//
// The paper's counter-intuitive result: Liblinear has a LOW success rate
// (its hot model pages are constantly written, aborting copies) yet NOMAD
// performs excellently on it, while Redis has a very HIGH success rate yet
// poor absolute performance - aborts signal that the migrating pages are
// genuinely hot, so retrying them is worth it.
#include <iostream>

#include "bench/bench_common.h"

using namespace nomad;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("table4_tpm_success", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: table4_tpm_success [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  std::cout << "==================================================================\n"
               "Table 4: TPM success : aborted ratio (NOMAD, large-RSS runs)\n"
               "==================================================================\n";

  TablePrinter t({"workload", "platform", "commits", "aborts", "success : aborted"});
  for (PlatformId platform : {PlatformId::kC, PlatformId::kD}) {
    {
      LiblinearRunConfig cfg;
      cfg.platform = platform;
      cfg.policy = PolicyKind::kNomad;
      cfg.scale_denom = 128;
      cfg.samples = 40960;
      cfg.model_pages = 16384;   // 8 GB-paper shared model
      cfg.features_per_sample = 12;
      cfg.epochs = 4;
      cfg.slow_gb = 64.0;
      cfg.kernel_gb = 11.0;  // large-RSS regime: DRAM far smaller than the WSS
      const AppRunResult r = RunLiblinearBench(
          cfg, &collector, std::string("liblinear-") + PlatformName(platform));
      const double ratio = r.tpm_aborts == 0
                               ? static_cast<double>(r.tpm_commits)
                               : static_cast<double>(r.tpm_commits) /
                                     static_cast<double>(r.tpm_aborts);
      t.AddRow({"Liblinear (large RSS)", PlatformName(platform), FmtCount(r.tpm_commits),
                FmtCount(r.tpm_aborts), Fmt(ratio, 1) + " : 1"});
    }
    {
      YcsbRunConfig cfg;
      cfg.platform = platform;
      cfg.policy = PolicyKind::kNomad;
      cfg.record_count = 312500;
      cfg.slow_gb = 64.0;
      cfg.total_ops = 60000;
      const AppRunResult r =
          RunYcsbBench(cfg, &collector, std::string("redis-") + PlatformName(platform));
      const double ratio = r.tpm_aborts == 0
                               ? static_cast<double>(r.tpm_commits)
                               : static_cast<double>(r.tpm_commits) /
                                     static_cast<double>(r.tpm_aborts);
      t.AddRow({"Redis (large RSS)", PlatformName(platform), FmtCount(r.tpm_commits),
                FmtCount(r.tpm_aborts), Fmt(ratio, 1) + " : 1"});
    }
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper: Liblinear 1:1.9 / 2.6:1, Redis 153:1 / 278:1):\n"
               "Liblinear aborts a large share of transactions (hot pages are written\n"
               "during the copy); Redis aborts almost none (random single-record\n"
               "updates rarely hit a migrating page).\n";
  return 0;
}
