#include "bench/bench_common.h"

#include <fstream>
#include <iostream>
#include <sstream>

namespace nomad {

namespace {

// t.json + "tpp" -> t.tpp.json; labels are sanitized to [-a-zA-Z0-9_].
std::string PathWithLabel(const std::string& path, const std::string& label) {
  std::string safe;
  for (const char c : label) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ? c
                                                                                       : '-');
  }
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + safe;
  }
  return path.substr(0, dot) + "." + safe + path.substr(dot);
}

}  // namespace

MetricsCollector MetricsCollector::FromFlags(const std::string& bench_id, const Flags& flags) {
  return MetricsCollector(bench_id, flags.GetString("metrics_out", ""),
                          flags.GetString("trace_out", ""),
                          flags.GetString("profile_out", ""),
                          flags.GetString("timeline_out", ""));
}

void MetricsCollector::Capture(const std::string& label, Sim& sim, const PhaseReport& report) {
  if (!active()) {
    return;
  }
  if (!metrics_path_.empty()) {
    std::ostringstream os;
    JsonWriter jw(os);
    AppendRunMetrics(jw, sim, report, label);
    run_json_.push_back(os.str());
  }
  if (!trace_path_.empty()) {
    const std::string path =
        captures_ == 0 ? trace_path_ : PathWithLabel(trace_path_, label);
    if (!WriteTraceFile(sim, path)) {
      std::cerr << "warning: could not write trace to " << path << "\n";
    }
  }
  if (!profile_path_.empty()) {
    const std::string path =
        captures_ == 0 ? profile_path_ : PathWithLabel(profile_path_, label);
    if (!WriteProfileFile(sim, path)) {
      std::cerr << "warning: could not write profile to " << path << "\n";
    }
  }
  // Only runs that actually sampled a timeline write one; the collector
  // cannot enable sampling retroactively.
  if (!timeline_path_.empty() && sim.timeline_sampler() != nullptr) {
    const std::string path =
        captures_ == 0 ? timeline_path_ : PathWithLabel(timeline_path_, label);
    if (!WriteTimelineFile(sim, path)) {
      std::cerr << "warning: could not write timeline to " << path << "\n";
    }
  }
  captures_++;
}

void MetricsCollector::Flush() {
  if (flushed_ || metrics_path_.empty()) {
    return;
  }
  flushed_ = true;
  std::ofstream out(metrics_path_);
  if (!out) {
    std::cerr << "warning: could not write metrics to " << metrics_path_ << "\n";
    return;
  }
  JsonWriter jw(out);
  jw.BeginObject();
  jw.Field("schema", std::string_view("nomad-metrics-v1"));
  jw.Field("benchmark", std::string_view(bench_id_));
  jw.Key("runs").BeginArray();
  for (const std::string& run : run_json_) {
    jw.Raw(run);
  }
  jw.EndArray();
  jw.EndObject();
  out << "\n";
}

MicroRunResult RunMicroBench(const MicroRunConfig& config, MetricsCollector* collector,
                             const std::string& label) {
  const Scale scale{config.scale_denom};
  const PlatformSpec platform =
      MakePlatform(config.platform, scale, config.fast_gb, config.slow_gb);

  Sim sim(platform, config.policy, scale.Pages(config.rss_gb) + 16);
  if (config.enable_spans) {
    sim.ms().set_span_tracing(true);
  }
  if (config.timeline_interval > 0) {
    sim.EnableTimeline({config.timeline_interval, config.timeline_capacity});
  }

  MicroLayout layout;
  layout.rss_pages = scale.Pages(config.rss_gb);
  layout.wss_pages = scale.Pages(config.wss_gb);
  layout.wss_fast_pages = scale.Pages(config.wss_fast_gb);
  layout.kernel_pages = scale.Pages(config.kernel_gb);
  layout.placement = config.placement;
  layout.seed = config.seed;
  ScrambledZipfian zipf(layout.wss_pages, 0.99, config.seed);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  std::vector<std::unique_ptr<MicroWorkload>> apps;
  for (int t = 0; t < config.threads; t++) {
    MicroWorkload::Config wcfg;
    wcfg.base.total_ops = config.total_ops / config.threads;
    wcfg.base.seed = config.seed + 1000 + t;
    wcfg.base.batch = config.batch;
    wcfg.wss_start = wss_start;
    wcfg.wss_pages = layout.wss_pages;
    wcfg.write_fraction = config.write_fraction;
    apps.push_back(std::make_unique<MicroWorkload>(&sim.ms(), &sim.as(), &zipf, wcfg));
    sim.AddWorkload(apps.back().get());
  }

  MicroRunResult result;
  sim.RunUntilOps(config.total_ops / 2);
  result.first_half = sim.ms().counters();
  sim.Run();

  result.report = Analyze(sim);
  result.counters = sim.ms().counters();
  result.fast_used = sim.ms().pool().UsedFrames(Tier::kFast);
  result.slow_used = sim.ms().pool().UsedFrames(Tier::kSlow);
  if (NomadPolicy* nomad = sim.nomad()) {
    result.shadow_pages = nomad->shadows().count();
    result.tpm_commits = nomad->tpm_stats().commits;
    result.tpm_aborts = nomad->tpm_stats().aborts;
  }
  if (collector != nullptr) {
    collector->Capture(label.empty() ? PolicyKindName(config.policy) : label, sim,
                       result.report);
  }
  return result;
}

uint64_t Promotions(const CounterSet& c) {
  return c.Get("migrate.sync_promote") + c.Get("nomad.tpm_commit");
}

uint64_t Demotions(const CounterSet& c) {
  return c.Get("migrate.sync_demote") + c.Get("nomad.demote_remap");
}

MicroRunConfig SmallWssConfig(PlatformId platform, PolicyKind policy) {
  MicroRunConfig c;
  c.platform = platform;
  c.policy = policy;
  c.rss_gb = 20.0;
  c.wss_gb = 10.0;
  c.wss_fast_gb = 6.0;
  c.total_ops = 4000000;  // the small WSS fully converges; give it time
  return c;
}

MicroRunConfig MediumWssConfig(PlatformId platform, PolicyKind policy) {
  MicroRunConfig c;
  c.platform = platform;
  c.policy = policy;
  c.rss_gb = 27.0;
  c.wss_gb = 13.5;
  c.wss_fast_gb = 2.5;
  c.total_ops = 2400000;
  return c;
}

MicroRunConfig LargeWssConfig(PlatformId platform, PolicyKind policy) {
  MicroRunConfig c;
  c.platform = platform;
  c.policy = policy;
  c.rss_gb = 27.0;
  c.wss_gb = 27.0;
  c.wss_fast_gb = 16.0;
  c.total_ops = 1600000;  // never stabilizes; the phases look alike anyway
  return c;
}

std::vector<PolicyKind> PoliciesFor(PlatformId platform, bool include_no_migration) {
  std::vector<PolicyKind> kinds;
  if (include_no_migration) {
    kinds.push_back(PolicyKind::kNoMigration);
  }
  kinds.push_back(PolicyKind::kTpp);
  const PlatformSpec p = MakePlatform(platform);
  if (p.pebs_supported) {
    kinds.push_back(PolicyKind::kMemtisDefault);
    kinds.push_back(PolicyKind::kMemtisQuickCool);
  }
  kinds.push_back(PolicyKind::kNomad);
  return kinds;
}

namespace {

AppRunResult FinishAppRun(Sim& sim, MetricsCollector* collector, const std::string& label) {
  AppRunResult result;
  const PhaseReport report = Analyze(sim);
  result.ops_per_sec = report.ops_per_sec;
  result.runtime_ms = CyclesToSeconds(report.total_cycles, sim.platform().ghz) * 1e3;
  result.promotions = Promotions(sim.ms().counters());
  result.demotions = Demotions(sim.ms().counters());
  if (NomadPolicy* nomad = sim.nomad()) {
    result.tpm_commits = nomad->tpm_stats().commits;
    result.tpm_aborts = nomad->tpm_stats().aborts;
  }
  if (collector != nullptr) {
    collector->Capture(label.empty() ? PolicyKindName(sim.kind()) : label, sim, report);
  }
  return result;
}

}  // namespace

AppRunResult RunYcsbBench(const YcsbRunConfig& config, MetricsCollector* collector,
                          const std::string& label) {
  const Scale scale{config.scale_denom};
  const PlatformSpec platform =
      MakePlatform(config.platform, scale, 16.0, config.slow_gb);

  KvStore::Config kcfg;
  kcfg.record_count = config.record_count;
  kcfg.record_size = config.record_size;
  KvStore store(kcfg);
  const Vpn end = store.Layout(0);

  Sim sim(platform, config.policy, end + 16);
  if (config.enable_spans) {
    sim.ms().set_span_tracing(true);
  }
  if (config.timeline_interval > 0) {
    sim.EnableTimeline({config.timeline_interval, config.timeline_capacity});
  }
  sim.ms().ReserveFastFrames(scale.Pages(config.kernel_gb));
  // Pre-load the dataset with the default placement (fast-first).
  MapRange(sim.ms(), sim.as(), 0, end, Tier::kFast);
  if (config.demote_first) {
    DemoteAll(sim.ms(), sim.as());
  }

  YcsbWorkload::Config wcfg;
  wcfg.base.total_ops = config.total_ops;
  wcfg.base.seed = config.seed;
  // One database op per engine step: an op's ~35 line accesses already
  // span a TPM copy window, so stores can interleave with (and abort)
  // transactions at realistic granularity.
  wcfg.base.batch = 1;
  YcsbWorkload app(&sim.ms(), &sim.as(), &store, wcfg);
  sim.AddWorkload(&app);
  sim.Run();
  return FinishAppRun(sim, collector, label);
}

AppRunResult RunPageRankBench(const PageRankRunConfig& config,
                              MetricsCollector* collector, const std::string& label) {
  const Scale scale{config.scale_denom};
  const PlatformSpec platform =
      MakePlatform(config.platform, scale, 16.0, config.slow_gb);

  PageRankWorkload::Config wcfg;
  wcfg.vertices = config.vertices;
  wcfg.iterations = config.iterations;
  wcfg.neighbor_sample = config.neighbor_sample;
  wcfg.base.seed = config.seed;
  const Vpn end = PageRankWorkload::Layout(&wcfg, 0);

  Sim sim(platform, config.policy, end + 16);
  sim.ms().ReserveFastFrames(scale.Pages(config.kernel_gb));
  // Standard placement: the graph spreads over fast then slow memory.
  MapRange(sim.ms(), sim.as(), 0, end, Tier::kFast);

  PageRankWorkload app(&sim.ms(), &sim.as(), wcfg);
  sim.AddWorkload(&app);
  sim.Run();
  return FinishAppRun(sim, collector, label);
}

AppRunResult RunLiblinearBench(const LiblinearRunConfig& config,
                               MetricsCollector* collector, const std::string& label) {
  const Scale scale{config.scale_denom};
  const PlatformSpec platform =
      MakePlatform(config.platform, scale, 16.0, config.slow_gb);

  // Worker threads share the model and split the samples (multicore
  // liblinear, as the paper runs it).
  std::vector<LiblinearWorkload::Config> wcfgs(config.threads);
  Vpn end = 0;
  for (int t = 0; t < config.threads; t++) {
    LiblinearWorkload::Config& wcfg = wcfgs[t];
    wcfg.samples = config.samples;
    wcfg.row_lines = config.row_lines;
    wcfg.sample_lines = config.sample_lines;
    wcfg.model_pages = config.model_pages;
    wcfg.features_per_sample = config.features_per_sample;
    wcfg.epochs = config.epochs;
    wcfg.base.seed = config.seed + t;
    wcfg.base.batch = 1;  // one sample per step: weight stores interleave
                          // with in-flight transactional copies
    wcfg.thread_index = t;
    wcfg.num_threads = config.threads;
    end = LiblinearWorkload::Layout(&wcfg, 0);
  }

  Sim sim(platform, config.policy, end + 16);
  sim.ms().ReserveFastFrames(scale.Pages(config.kernel_gb));
  MapRange(sim.ms(), sim.as(), 0, end, Tier::kFast);
  // The paper demotes all Liblinear pages to the slow tier before running.
  DemoteAll(sim.ms(), sim.as());

  std::vector<std::unique_ptr<LiblinearWorkload>> apps;
  for (int t = 0; t < config.threads; t++) {
    apps.push_back(std::make_unique<LiblinearWorkload>(&sim.ms(), &sim.as(), wcfgs[t]));
    sim.AddWorkload(apps.back().get());
  }
  sim.Run();
  return FinishAppRun(sim, collector, label);
}

void PrintHeader(const std::string& id, const std::string& what, PlatformId platform,
                 uint64_t scale_denom) {
  std::cout << "==================================================================\n"
            << id << ": " << what << "\n"
            << "platform " << PlatformName(platform) << " ("
            << MakePlatform(platform).cpu << "), sizes scaled 1/" << scale_denom
            << " (GB figures are paper-equivalent)\n"
            << "==================================================================\n";
}

}  // namespace nomad
