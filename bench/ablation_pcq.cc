// Ablation: the promotion candidate queue's examination pace. The PCQ's
// exam batch size sets the recency window (one full queue cycle at
// kpromote's pace): tiny batches starve promotion, huge ones promote the
// Zipf tail and thrash. Also reports faults-per-promotion against TPP,
// the paper's headline PCQ benefit (1 vs up to 15).
#include <iostream>
#include <memory>

#include "bench/bench_common.h"

using namespace nomad;

namespace {

struct VariantResult {
  double stable_gbps;
  uint64_t promotions;
  uint64_t hint_faults;
};

VariantResult RunNomad(size_t scan_batch, MetricsCollector* collector) {
  const Scale scale{64};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  NomadPolicy::Config pcfg;
  pcfg.kpromote.pcq_scan_batch = scan_batch;
  auto policy = std::make_unique<NomadPolicy>(pcfg);

  Sim sim(platform, std::move(policy), PolicyKind::kNomad, scale.Pages(27.0) + 16);
  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(13.5);
  layout.wss_fast_pages = scale.Pages(2.5);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  MicroWorkload::Config wcfg;
  wcfg.base.total_ops = 2000000;
  wcfg.wss_start = wss_start;
  wcfg.wss_pages = layout.wss_pages;
  MicroWorkload app(&sim.ms(), &sim.as(), &zipf, wcfg);
  sim.AddWorkload(&app);
  sim.Run();

  VariantResult v;
  const PhaseReport report = Analyze(sim);
  v.stable_gbps = report.stable_gbps;
  v.promotions = sim.nomad()->tpm_stats().commits;
  v.hint_faults = sim.ms().counters().Get("fault.hint");
  if (collector != nullptr) {
    collector->Capture("nomad-batch" + std::to_string(scan_batch), sim, report);
  }
  return v;
}

VariantResult RunTpp(MetricsCollector* collector) {
  MicroRunConfig cfg = MediumWssConfig(PlatformId::kA, PolicyKind::kTpp);
  cfg.threads = 1;
  cfg.total_ops = 2000000;
  const MicroRunResult r = RunMicroBench(cfg, collector);
  VariantResult v;
  v.stable_gbps = r.report.stable_gbps;
  v.promotions = Promotions(r.counters);
  v.hint_faults = r.counters.Get("fault.hint");
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  MetricsCollector collector = MetricsCollector::FromFlags("ablation_pcq", flags);
  if (!flags.UnusedKeys().empty()) {
    std::cerr << "usage: ablation_pcq [--metrics_out=PATH] [--trace_out=PATH]\n";
    return 2;
  }
  PrintHeader("Ablation", "PCQ examination pace + faults per promotion", PlatformId::kA, 64);

  TablePrinter t({"variant", "stable GB/s", "promotions", "hint faults",
                  "faults/promotion"});
  for (size_t batch : {16, 64, 256}) {
    const VariantResult v = RunNomad(batch, &collector);
    t.AddRow({"NOMAD, scan batch " + std::to_string(batch), Fmt(v.stable_gbps),
              FmtCount(v.promotions), FmtCount(v.hint_faults),
              Fmt(v.promotions == 0
                      ? 0.0
                      : static_cast<double>(v.hint_faults) / static_cast<double>(v.promotions),
                  2)});
  }
  const VariantResult tpp = RunTpp(&collector);
  t.AddRow({"TPP (no PCQ, pagevec-gated)", Fmt(tpp.stable_gbps), FmtCount(tpp.promotions),
            FmtCount(tpp.hint_faults),
            Fmt(tpp.promotions == 0
                    ? 0.0
                    : static_cast<double>(tpp.hint_faults) / static_cast<double>(tpp.promotions),
                2)});
  t.Print(std::cout);
  std::cout << "\nExpected shape: NOMAD needs ~1 fault per promoted page at any batch\n"
               "size (candidacy never re-arms), while TPP needs several; the batch\n"
               "size trades promotion responsiveness against tail-page churn.\n";
  return 0;
}
