// Ablation (paper sec. 5 extension): the thrash governor. Under a
// large-WSS run the paper observes that the best strategy is to disable
// migration entirely; the governor detects the balanced promotion/demotion
// signature and throttles promotions automatically, moving NOMAD toward
// the no-migration optimum while leaving fitting workloads untouched.
#include <iostream>
#include <memory>

#include "bench/bench_common.h"

using namespace nomad;

namespace {

struct VariantResult {
  double overall_gbps;
  double stable_gbps;
  uint64_t promotions;
  uint64_t throttles;
};

VariantResult RunNomad(bool governed, double wss_gb, double wss_fast_gb) {
  const Scale scale{64};
  const PlatformSpec platform = MakePlatform(PlatformId::kA, scale);
  NomadPolicy::Config pcfg;
  pcfg.enable_governor = governed;
  auto policy = std::make_unique<NomadPolicy>(pcfg);
  Sim sim(platform, std::move(policy), PolicyKind::kNomad, scale.Pages(27.0) + 16);

  MicroLayout layout;
  layout.rss_pages = scale.Pages(27.0);
  layout.wss_pages = scale.Pages(wss_gb);
  layout.wss_fast_pages = scale.Pages(wss_fast_gb);
  layout.kernel_pages = scale.Pages(3.5);
  ScrambledZipfian zipf(layout.wss_pages, 0.99, 42);
  const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);

  std::vector<std::unique_ptr<MicroWorkload>> apps;
  for (int t = 0; t < 2; t++) {
    MicroWorkload::Config wcfg;
    wcfg.base.total_ops = 1000000;
    wcfg.base.seed = 3042 + t;
    wcfg.wss_start = wss_start;
    wcfg.wss_pages = layout.wss_pages;
    apps.push_back(std::make_unique<MicroWorkload>(&sim.ms(), &sim.as(), &zipf, wcfg));
    sim.AddWorkload(apps.back().get());
  }
  sim.Run();
  const PhaseReport r = Analyze(sim);
  return {r.overall_gbps, r.stable_gbps, Promotions(sim.ms().counters()),
          sim.ms().counters().Get("governor.throttle")};
}

VariantResult RunNoMigration(double wss_gb, double wss_fast_gb) {
  MicroRunConfig cfg;
  cfg.policy = PolicyKind::kNoMigration;
  cfg.rss_gb = 27.0;
  cfg.wss_gb = wss_gb;
  cfg.wss_fast_gb = wss_fast_gb;
  cfg.total_ops = 1000000;
  const MicroRunResult r = RunMicroBench(cfg);
  return {r.report.overall_gbps, r.report.stable_gbps, 0, 0};
}

}  // namespace

int main() {
  PrintHeader("Ablation", "thrash governor (sec. 5 future work): throttle promotions "
              "when promotion ~ demotion", PlatformId::kA, 64);

  struct Case {
    const char* label;
    double wss_gb;
    double wss_fast_gb;
  };
  const Case cases[] = {
      {"medium WSS (fits-ish)", 13.5, 2.5},
      {"large WSS (thrashes)", 27.0, 16.0},
  };

  TablePrinter t({"case", "variant", "overall GB/s", "stable GB/s", "promotions",
                  "throttles"});
  for (const Case& c : cases) {
    const VariantResult plain = RunNomad(false, c.wss_gb, c.wss_fast_gb);
    const VariantResult governed = RunNomad(true, c.wss_gb, c.wss_fast_gb);
    const VariantResult nomig = RunNoMigration(c.wss_gb, c.wss_fast_gb);
    t.AddRow({c.label, "nomad", Fmt(plain.overall_gbps), Fmt(plain.stable_gbps),
              FmtCount(plain.promotions), "0"});
    t.AddRow({"", "nomad + governor", Fmt(governed.overall_gbps), Fmt(governed.stable_gbps),
              FmtCount(governed.promotions), FmtCount(governed.throttles)});
    t.AddRow({"", "no-migration", Fmt(nomig.overall_gbps), Fmt(nomig.stable_gbps), "0", "-"});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: on the thrashing case the governor throttles and\n"
               "closes most of the gap to the no-migration optimum; on the fitting\n"
               "case it stays out of the way (few or no throttle events).\n";
  return 0;
}
