// Abstract page model for exhaustive checking of the TPM protocol.
//
// tools/tpm_modelcheck drives the *real* transition code — tpm::Transaction
// and tpm::SyncMigration from src/nomad/tpm_protocol.h, the same objects
// kpromote.cc and migrate.cc execute — against this abstract model of one
// page under migration: two physical frames, one PTE, and the writer core's
// cached TLB entry. The explorer (explore.h) interleaves application
// accesses between protocol steps in every possible order and checks three
// invariants in every reachable state:
//
//   no_lost_update   every issued store is visible through the final
//                    mapping once the migration quiesces;
//   mid-copy abort   a store that reached the master frame during the copy
//                    window never coexists with a committed transaction;
//   clean shadow     whenever the old frame is retained as a shadow, its
//                    content equals the new frame's content.
//
// TLB model. Stores through a valid writable cached entry use the cached
// translation and never re-walk for permission or presence; if the cached
// dirty bit is clear, the hardware assist sets the in-memory PTE dirty bit
// (possibly racing the kernel's get_and_clear — the race the protocol's
// second shootdown exists to close). Stores without a usable entry walk the
// page table: they stall while the page is unmapped, take the shadow fault
// when the mapping is write-protected (discarding the shadow before the
// store lands), set the dirty bit, and refill the TLB. Loads fill the TLB
// without dirtying. Page content is modeled as a bitmask of the stores that
// have reached each frame, so a lost update in the middle of the schedule
// cannot be masked by a later store.
#ifndef TOOLS_TPM_MODELCHECK_MODEL_H_
#define TOOLS_TPM_MODELCHECK_MODEL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/nomad/tpm_protocol.h"

namespace nomad {
namespace modelcheck {

// Protocol mutations for --selftest: each deletes one safety ingredient,
// and the explorer must find a violating schedule for every one of them.
enum class Mutation : uint8_t {
  kNone = 0,
  kSkipShootdown1,     // stale dirty-state entries survive the clear
  kSkipShootdown2,     // stale writable translations survive into commit
  kSkipDirtyCheck,     // commit without the validity test
  kNoWriteProtect,     // shadow retained but first store doesn't fault
  kSkipSyncShootdown,  // sync path: stale translations survive the unmap
};

constexpr Mutation kAllMutations[] = {
    Mutation::kSkipShootdown1, Mutation::kSkipShootdown2, Mutation::kSkipDirtyCheck,
    Mutation::kNoWriteProtect, Mutation::kSkipSyncShootdown,
};

const char* MutationName(Mutation m);
std::optional<Mutation> MutationFromName(const std::string& name);

// One schedule action. A schedule is a sequence of these; 's' advances the
// protocol machine by exactly one hardware step, the rest are application
// accesses interleaved between steps.
enum class Action : char {
  kStep = 's',       // one protocol step (Transaction/SyncMigration::Advance)
  kWrite = 'w',      // store; if it races the copy, the copy misses it
  kWriteTorn = 't',  // store racing the copy that the copy engine picks up
  kLoad = 'l',       // load on the writer core (fills its TLB, no dirty)
  kRead = 'r',       // checker read through a fresh walk (no TLB)
};

// The writer core's cached TLB entry.
struct WriterTlb {
  bool valid = false;
  bool to_copy = false;   // cached translation points at the new frame
  bool writable = false;  // cached write permission
  bool dirty = false;     // cached D bit: set => stores skip the PTE entirely
};

// Frame contents are bitmasks over store indices: store #k sets bit k in
// the frame it reaches (and, for kWriteTorn, in the in-flight copy too).
struct ModelState {
  uint64_t master = 0;  // old (slow-tier) frame content
  uint64_t copy = 0;    // new (fast-tier) frame content
  bool master_freed = false;
  bool copy_freed = false;

  bool present = true;
  bool pte_dirty = false;
  bool write_protected = false;  // shadow_rw: first store must fault
  bool mapped_to_copy = false;

  WriterTlb tlb;

  bool copying = false;  // between StartCopy and FinishCopy
  bool shadow_present = false;

  uint64_t writes_issued = 0;
  uint64_t reads_done = 0;
  uint64_t last_read = 0;  // content mask the checker last observed
  bool wrote_mid_copy = false;
  bool committed = false;
  bool aborted = false;
};

// A failed invariant plus the schedule that reached it. EncodeSchedule of
// the schedule is a valid --replay argument: the one-line reproducer.
struct Violation {
  std::string invariant;
  std::string detail;
  std::vector<Action> schedule;
};

std::string EncodeSchedule(const std::vector<Action>& schedule);
std::optional<std::vector<Action>> DecodeSchedule(const std::string& text);

// tpm::Hw bound to the abstract model (optionally mutated).
class TpmModelHw : public tpm::Hw {
 public:
  TpmModelHw(ModelState& st, Mutation mut) : st_(st), mut_(mut) {}

  void ClearDirty() override;
  void ShootdownAfterClear() override;
  void StartCopy() override;
  void FinishCopy() override;
  void ShootdownBeforeCheck() override;
  bool ReadDirty() override;
  void CommitRemap(bool retain_shadow) override;
  void Abort() override;

 private:
  ModelState& st_;
  Mutation mut_;
};

// tpm::SyncHw bound to the same model.
class SyncModelHw : public tpm::SyncHw {
 public:
  SyncModelHw(ModelState& st, Mutation mut) : st_(st), mut_(mut) {}

  void Unmap() override;
  void Shootdown() override;
  void Copy() override;
  void Remap() override;

 private:
  ModelState& st_;
  Mutation mut_;
};

// Application-side transitions. An access that would stall (page unmapped,
// no usable TLB entry) is disabled rather than applied: the explorer simply
// never schedules it at that point, which is exactly what the migration
// window does to the simulated application.
bool StoreEnabled(const ModelState& st);
bool TornStoreEnabled(const ModelState& st);  // store would race the copy
bool LoadEnabled(const ModelState& st);
bool ReadEnabled(const ModelState& st);

// Apply an access. Returns the violated invariant if the access itself
// exposes one (use_after_free, read_regression), nullopt otherwise.
std::optional<std::string> ApplyStore(ModelState& st, bool torn);
std::optional<std::string> ApplyLoad(ModelState& st);
std::optional<std::string> ApplyRead(ModelState& st);

// Invariants over states (checked after every action) and over quiescent
// final states (machine done, all stores drained).
std::optional<std::string> CheckAlways(const ModelState& st);
std::optional<std::string> CheckFinal(const ModelState& st);

}  // namespace modelcheck
}  // namespace nomad

#endif  // TOOLS_TPM_MODELCHECK_MODEL_H_
