#include "tools/tpm_modelcheck/model.h"

namespace nomad {
namespace modelcheck {

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return "none";
    case Mutation::kSkipShootdown1:
      return "skip_shootdown1";
    case Mutation::kSkipShootdown2:
      return "skip_shootdown2";
    case Mutation::kSkipDirtyCheck:
      return "skip_dirty_check";
    case Mutation::kNoWriteProtect:
      return "no_write_protect";
    case Mutation::kSkipSyncShootdown:
      return "skip_sync_shootdown";
  }
  return "?";
}

std::optional<Mutation> MutationFromName(const std::string& name) {
  if (name == MutationName(Mutation::kNone)) {
    return Mutation::kNone;
  }
  for (Mutation m : kAllMutations) {
    if (name == MutationName(m)) {
      return m;
    }
  }
  return std::nullopt;
}

std::string EncodeSchedule(const std::vector<Action>& schedule) {
  std::string out;
  for (Action a : schedule) {
    if (!out.empty()) {
      out += ',';
    }
    out += static_cast<char>(a);
  }
  return out;
}

std::optional<std::vector<Action>> DecodeSchedule(const std::string& text) {
  std::vector<Action> out;
  for (char c : text) {
    switch (c) {
      case ',':
      case ' ':
        break;
      case 's':
      case 'w':
      case 't':
      case 'l':
      case 'r':
        out.push_back(static_cast<Action>(c));
        break;
      default:
        return std::nullopt;
    }
  }
  return out;
}

// --- protocol steps over the model ---------------------------------------

void TpmModelHw::ClearDirty() { st_.pte_dirty = false; }

void TpmModelHw::ShootdownAfterClear() {
  if (mut_ != Mutation::kSkipShootdown1) {
    st_.tlb.valid = false;
  }
}

void TpmModelHw::StartCopy() {
  st_.copying = true;
  st_.copy = st_.master;  // snapshot; racing stores branch on kWrite/kWriteTorn
}

void TpmModelHw::FinishCopy() { st_.copying = false; }

void TpmModelHw::ShootdownBeforeCheck() {
  st_.present = false;  // the atomic get_and_clear unmaps the page
  if (mut_ != Mutation::kSkipShootdown2) {
    st_.tlb.valid = false;
  }
}

bool TpmModelHw::ReadDirty() {
  if (mut_ == Mutation::kSkipDirtyCheck) {
    return false;
  }
  return st_.pte_dirty;
}

void TpmModelHw::CommitRemap(bool retain_shadow) {
  st_.mapped_to_copy = true;
  st_.present = true;
  st_.pte_dirty = false;
  st_.committed = true;
  if (retain_shadow) {
    st_.shadow_present = true;  // the master frame lives on as the shadow
    st_.write_protected = mut_ != Mutation::kNoWriteProtect;
  } else {
    st_.master_freed = true;  // exclusive tiering drops the source copy
  }
}

void TpmModelHw::Abort() {
  // The original mapping — including its dirty bit — is left untouched.
  st_.present = true;
  st_.copy_freed = true;
  st_.aborted = true;
}

void SyncModelHw::Unmap() { st_.present = false; }

void SyncModelHw::Shootdown() {
  if (mut_ != Mutation::kSkipSyncShootdown) {
    st_.tlb.valid = false;
  }
}

void SyncModelHw::Copy() { st_.copy = st_.master; }

void SyncModelHw::Remap() {
  st_.mapped_to_copy = true;
  st_.present = true;
  st_.master_freed = true;
  st_.committed = true;
}

// --- application accesses -------------------------------------------------

namespace {

// Would a store right now go through the cached TLB entry?
bool StoreUsesTlb(const ModelState& st) { return st.tlb.valid && st.tlb.writable; }

// The frame a store would reach (true = the new/copy frame).
bool StoreTargetsCopy(const ModelState& st) {
  return StoreUsesTlb(st) ? st.tlb.to_copy : st.mapped_to_copy;
}

}  // namespace

bool StoreEnabled(const ModelState& st) { return StoreUsesTlb(st) || st.present; }

bool TornStoreEnabled(const ModelState& st) {
  return st.copying && StoreEnabled(st) && !StoreTargetsCopy(st);
}

bool LoadEnabled(const ModelState& st) { return !st.tlb.valid && st.present; }

bool ReadEnabled(const ModelState& st) { return st.present; }

std::optional<std::string> ApplyStore(ModelState& st, bool torn) {
  const uint64_t bit = 1ull << st.writes_issued;
  st.writes_issued++;
  if (StoreUsesTlb(st)) {
    // Store through the cached translation: no re-walk for permission or
    // presence. A clear cached D bit makes the hardware assist set the
    // in-memory dirty bit (even mid-migration — this is the assist racing
    // the kernel's get_and_clear).
    if (!st.tlb.dirty) {
      st.tlb.dirty = true;
      st.pte_dirty = true;
    }
    if (st.tlb.to_copy) {
      if (st.copy_freed) {
        return "use_after_free";
      }
      st.copy |= bit;
    } else {
      if (st.master_freed) {
        return "use_after_free";
      }
      st.master |= bit;
      if (st.copying) {
        st.wrote_mid_copy = true;
        if (torn) {
          st.copy |= bit;  // the copy engine happens to pick this store up
        }
      }
    }
    return std::nullopt;
  }
  // Page walk. The explorer only schedules this while the page is mapped
  // (StoreEnabled), so present holds here.
  if (st.write_protected) {
    // Shadow fault: the shadow is discarded *before* the store lands.
    st.shadow_present = false;
    st.write_protected = false;
  }
  st.pte_dirty = true;
  st.tlb = WriterTlb{/*valid=*/true, /*to_copy=*/st.mapped_to_copy,
                     /*writable=*/true, /*dirty=*/true};
  if (st.mapped_to_copy) {
    st.copy |= bit;
  } else {
    st.master |= bit;
    if (st.copying) {
      st.wrote_mid_copy = true;
      if (torn) {
        st.copy |= bit;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> ApplyLoad(ModelState& st) {
  st.tlb = WriterTlb{/*valid=*/true, /*to_copy=*/st.mapped_to_copy,
                     /*writable=*/!st.write_protected, /*dirty=*/false};
  return std::nullopt;
}

std::optional<std::string> ApplyRead(ModelState& st) {
  const uint64_t observed = st.mapped_to_copy ? st.copy : st.master;
  st.reads_done++;
  if ((st.last_read & ~observed) != 0) {
    // A store the checker already saw has vanished from the page.
    return "read_regression";
  }
  st.last_read = observed;
  return std::nullopt;
}

// --- invariants -----------------------------------------------------------

std::optional<std::string> CheckAlways(const ModelState& st) {
  if (st.shadow_present && st.master_freed) {
    return "shadow_frame_freed";
  }
  if (st.shadow_present && st.master != st.copy) {
    // The shadow must be byte-identical to the page it shadows, from the
    // commit until the shadow fault discards it.
    return "stale_shadow";
  }
  return std::nullopt;
}

std::optional<std::string> CheckFinal(const ModelState& st) {
  const uint64_t all = st.writes_issued >= 64 ? ~0ull : (1ull << st.writes_issued) - 1;
  const uint64_t mapped = st.mapped_to_copy ? st.copy : st.master;
  if (mapped != all) {
    return "lost_update";
  }
  if (st.committed && st.wrote_mid_copy) {
    // The validity test exists to make exactly this unreachable.
    return "commit_despite_mid_copy_store";
  }
  return std::nullopt;
}

}  // namespace modelcheck
}  // namespace nomad
