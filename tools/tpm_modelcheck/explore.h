// Exhaustive schedule exploration for the TPM protocol machines.
//
// Explore() enumerates, by depth-first search, every interleaving of
// protocol steps and application accesses (stores, TLB-filling loads,
// checker reads) up to the configured budgets, branching additionally on
// whether each mid-copy store is picked up by the racing copy engine. Every
// reachable state is checked against the model invariants; the first
// violation is returned with its schedule, which Replay() (and the binary's
// --replay flag) can re-execute as a one-line reproducer.
#ifndef TOOLS_TPM_MODELCHECK_EXPLORE_H_
#define TOOLS_TPM_MODELCHECK_EXPLORE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "tools/tpm_modelcheck/model.h"

namespace nomad {
namespace modelcheck {

struct Params {
  bool sync = false;       // check tpm::SyncMigration instead of tpm::Transaction
  bool shadowing = true;   // TPM only: retain the old frame as a shadow
  int max_writes = 3;      // concurrent writer stores to interleave
  int max_loads = 1;       // writer-core loads (TLB fills)
  int max_reads = 2;       // checker reads
  Mutation mutation = Mutation::kNone;
  uint64_t seed = 0;       // != 0 permutes DFS branch order (still exhaustive)
};

struct Result {
  uint64_t schedules = 0;  // maximal interleavings explored
  uint64_t states = 0;     // states visited
  std::optional<Violation> violation;  // first invariant failure, if any
};

// Exhaustively explores every schedule under p. Stops at the first
// violation (the search is depth-first, so the reproducer is minimal in
// its prefix, not globally).
Result Explore(const Params& p);

// Re-executes one explicit schedule; returns the violation it triggers, if
// any. Trailing unissued budget is not drained: the schedule is the whole
// run, except that final-state invariants are checked once the machine is
// done and the schedule is exhausted.
std::optional<Violation> Replay(const Params& p, const std::vector<Action>& schedule);

// Prints the violation as a single self-contained reproducer line.
void PrintViolation(std::ostream& out, const Params& p, const Violation& v);

// Runs the correct protocol (expecting zero violations) and every protocol
// mutation (expecting each to be caught) across the machine/shadowing
// matrix. Returns the number of failed cases; prints one line per case.
int RunSelftest(const Params& base, std::ostream& out);

}  // namespace modelcheck
}  // namespace nomad

#endif  // TOOLS_TPM_MODELCHECK_EXPLORE_H_
