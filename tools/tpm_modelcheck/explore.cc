#include "tools/tpm_modelcheck/explore.h"

#include <ostream>

#include "src/sim/rng.h"

namespace nomad {
namespace modelcheck {

namespace {

// The two machines behind one stepping surface, so the DFS is written once.
// Machine objects are small values; the DFS copies them per branch.
struct TpmMachine {
  tpm::Transaction txn;
  explicit TpmMachine(const Params& p) : txn(p.shadowing) {}
  bool done() const { return txn.done(); }
  void Step(ModelState& st, Mutation mut) {
    TpmModelHw hw(st, mut);
    txn.Advance(hw);
  }
};

struct SyncMachine {
  tpm::SyncMigration m;
  explicit SyncMachine(const Params&) {}
  bool done() const { return m.done(); }
  void Step(ModelState& st, Mutation mut) {
    SyncModelHw hw(st, mut);
    m.Advance(hw);
  }
};

struct Budgets {
  int writes;
  int loads;
  int reads;
};

void Record(Result& res, const std::vector<Action>& trace, const std::string& invariant,
            const ModelState& st) {
  Violation v;
  v.invariant = invariant;
  v.schedule = trace;
  v.detail = "writes_issued=" + std::to_string(st.writes_issued) +
             " master=" + std::to_string(st.master) + " copy=" + std::to_string(st.copy) +
             (st.committed ? " committed" : st.aborted ? " aborted" : " in_flight");
  res.violation = v;
}

// Applies one application access (never kStep) and runs the per-state
// checks. Returns false when exploration of this branch must stop because a
// violation was recorded.
bool ApplyAccess(Result& res, ModelState& st, Action a, const std::vector<Action>& trace) {
  std::optional<std::string> bad;
  switch (a) {
    case Action::kWrite:
      bad = ApplyStore(st, /*torn=*/false);
      break;
    case Action::kWriteTorn:
      bad = ApplyStore(st, /*torn=*/true);
      break;
    case Action::kLoad:
      bad = ApplyLoad(st);
      break;
    case Action::kRead:
      bad = ApplyRead(st);
      break;
    case Action::kStep:
      break;
  }
  if (!bad) {
    bad = CheckAlways(st);
  }
  if (bad) {
    Record(res, trace, *bad, st);
    return false;
  }
  return true;
}

template <typename M>
void Dfs(const Params& p, Rng* rng, Result& res, const ModelState& st, const M& m, Budgets b,
         std::vector<Action>& trace) {
  if (res.violation) {
    return;
  }
  res.states++;

  Action candidates[5];
  int n = 0;
  if (!m.done()) {
    candidates[n++] = Action::kStep;
  }
  if (b.writes > 0 && StoreEnabled(st)) {
    candidates[n++] = Action::kWrite;
    if (TornStoreEnabled(st)) {
      candidates[n++] = Action::kWriteTorn;
    }
  }
  if (b.loads > 0 && LoadEnabled(st)) {
    candidates[n++] = Action::kLoad;
  }
  if (b.reads > 0 && ReadEnabled(st)) {
    candidates[n++] = Action::kRead;
  }

  if (n == 0) {
    // Quiescent: the machine is done and every store has drained (the page
    // is mapped again in all outcomes, so remaining stores stay enabled).
    res.schedules++;
    if (auto bad = CheckFinal(st)) {
      Record(res, trace, *bad, st);
    }
    return;
  }

  if (rng != nullptr) {
    for (int i = n - 1; i > 0; i--) {
      const int j = static_cast<int>(rng->Next() % static_cast<uint64_t>(i + 1));
      const Action tmp = candidates[i];
      candidates[i] = candidates[j];
      candidates[j] = tmp;
    }
  }

  for (int i = 0; i < n; i++) {
    const Action a = candidates[i];
    ModelState st2 = st;
    M m2 = m;
    Budgets b2 = b;
    trace.push_back(a);
    if (a == Action::kStep) {
      m2.Step(st2, p.mutation);
      if (auto bad = CheckAlways(st2)) {
        Record(res, trace, *bad, st2);
        trace.pop_back();
        return;
      }
      Dfs(p, rng, res, st2, m2, b2, trace);
    } else {
      if (a == Action::kWrite || a == Action::kWriteTorn) {
        b2.writes--;
      } else if (a == Action::kLoad) {
        b2.loads--;
      } else {
        b2.reads--;
      }
      if (ApplyAccess(res, st2, a, trace)) {
        Dfs(p, rng, res, st2, m2, b2, trace);
      }
    }
    trace.pop_back();
    if (res.violation) {
      return;
    }
  }
}

template <typename M>
Result ExploreWith(const Params& p) {
  Result res;
  Rng rng(p.seed);
  Rng* rp = p.seed != 0 ? &rng : nullptr;
  ModelState st;
  M m(p);
  // Store indices are content-mask bits; keep them in one word.
  Budgets b{p.max_writes > 8 ? 8 : p.max_writes, p.max_loads, p.max_reads};
  std::vector<Action> trace;
  Dfs(p, rp, res, st, m, b, trace);
  return res;
}

template <typename M>
std::optional<Violation> ReplayWith(const Params& p, const std::vector<Action>& schedule) {
  Result res;
  ModelState st;
  M m(p);
  std::vector<Action> done;
  for (Action a : schedule) {
    done.push_back(a);
    if (a == Action::kStep) {
      if (m.done()) {
        continue;
      }
      m.Step(st, p.mutation);
      if (auto bad = CheckAlways(st)) {
        Record(res, done, *bad, st);
        return res.violation;
      }
      continue;
    }
    // An access scheduled while it would stall simply doesn't happen there
    // (the migration window parks it); skip it, as the explorer does.
    const bool enabled = (a == Action::kWrite && StoreEnabled(st)) ||
                         (a == Action::kWriteTorn && TornStoreEnabled(st)) ||
                         (a == Action::kLoad && LoadEnabled(st)) ||
                         (a == Action::kRead && ReadEnabled(st));
    if (!enabled) {
      continue;
    }
    if (!ApplyAccess(res, st, a, done)) {
      return res.violation;
    }
  }
  if (m.done()) {
    if (auto bad = CheckFinal(st)) {
      Record(res, done, *bad, st);
    }
  }
  return res.violation;
}

}  // namespace

Result Explore(const Params& p) {
  return p.sync ? ExploreWith<SyncMachine>(p) : ExploreWith<TpmMachine>(p);
}

std::optional<Violation> Replay(const Params& p, const std::vector<Action>& schedule) {
  return p.sync ? ReplayWith<SyncMachine>(p, schedule) : ReplayWith<TpmMachine>(p, schedule);
}

void PrintViolation(std::ostream& out, const Params& p, const Violation& v) {
  // One line, directly re-runnable.
  out << "VIOLATION(" << v.invariant << "): tpm_modelcheck --machine=" << (p.sync ? "sync" : "tpm")
      << " --shadowing=" << (p.shadowing ? 1 : 0) << " --mutation=" << MutationName(p.mutation)
      << " --replay=" << EncodeSchedule(v.schedule) << "  # " << v.detail << "\n";
}

int RunSelftest(const Params& base, std::ostream& out) {
  struct Case {
    bool sync;
    bool shadowing;
    Mutation mutation;
    bool expect_violation;
  };
  const Case cases[] = {
      // The real protocol must survive every schedule...
      {false, true, Mutation::kNone, false},
      {false, false, Mutation::kNone, false},
      {true, true, Mutation::kNone, false},
      // ...and every seeded mutation must be caught. (kNoWriteProtect only
      // exists where a shadow is retained; the sync machine's one safety
      // ingredient is its shootdown.)
      {false, true, Mutation::kSkipShootdown1, true},
      {false, true, Mutation::kSkipShootdown2, true},
      {false, true, Mutation::kSkipDirtyCheck, true},
      {false, true, Mutation::kNoWriteProtect, true},
      {false, false, Mutation::kSkipShootdown1, true},
      {false, false, Mutation::kSkipShootdown2, true},
      {false, false, Mutation::kSkipDirtyCheck, true},
      {true, true, Mutation::kSkipSyncShootdown, true},
  };
  int failures = 0;
  for (const Case& c : cases) {
    Params p = base;
    p.sync = c.sync;
    p.shadowing = c.shadowing;
    p.mutation = c.mutation;
    const Result r = Explore(p);
    const bool caught = r.violation.has_value();
    const bool ok = caught == c.expect_violation;
    out << (ok ? "ok  " : "FAIL") << " machine=" << (c.sync ? "sync" : "tpm")
        << " shadowing=" << (c.shadowing ? 1 : 0) << " mutation=" << MutationName(c.mutation)
        << " schedules=" << r.schedules << " states=" << r.states;
    if (caught) {
      out << " first=" << r.violation->invariant << " replay="
          << EncodeSchedule(r.violation->schedule);
    }
    out << "\n";
    if (!ok) {
      failures++;
      if (caught) {
        PrintViolation(out, p, *r.violation);
      }
    }
  }
  return failures;
}

}  // namespace modelcheck
}  // namespace nomad
