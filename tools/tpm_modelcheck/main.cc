// tpm_modelcheck — exhaustive interleaving checker for the TPM protocol.
//
// Drives the real transition code (tpm::Transaction / tpm::SyncMigration)
// against an abstract page model, exploring every interleaving of protocol
// steps and application accesses up to the given budgets. See
// tools/tpm_modelcheck/model.h for the model and the invariants.
//
// Default run checks the whole machine/shadowing matrix of the unmutated
// protocol and fails on any violation. Other modes:
//
//   --selftest             seeded protocol mutations; every one must be caught
//   --mutation=NAME        explore one mutated protocol (expects a violation
//                          to exist; prints the reproducer)
//   --replay=s,w,s,...     re-execute one explicit schedule
//
// Knobs: --machine=tpm|sync --shadowing=0|1 --writes=N --loads=N --reads=N
//        --seed=N (permutes DFS branch order; exploration stays exhaustive)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "tools/tpm_modelcheck/explore.h"
#include "tools/tpm_modelcheck/model.h"

namespace {

using nomad::modelcheck::Action;
using nomad::modelcheck::DecodeSchedule;
using nomad::modelcheck::Explore;
using nomad::modelcheck::Mutation;
using nomad::modelcheck::MutationFromName;
using nomad::modelcheck::MutationName;
using nomad::modelcheck::Params;
using nomad::modelcheck::PrintViolation;
using nomad::modelcheck::Replay;
using nomad::modelcheck::Result;
using nomad::modelcheck::RunSelftest;

bool ParseFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

int Usage() {
  std::cerr << "usage: tpm_modelcheck [--machine=tpm|sync] [--shadowing=0|1]\n"
               "                      [--writes=N] [--loads=N] [--reads=N] [--seed=N]\n"
               "                      [--mutation=NAME] [--replay=s,w,...] [--selftest]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  bool selftest = false;
  bool machine_set = false;
  bool mutation_set = false;
  std::string replay_text;

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    std::string v;
    if (arg == "--selftest") {
      selftest = true;
    } else if (ParseFlag(arg, "machine", &v)) {
      machine_set = true;
      if (v == "tpm") {
        p.sync = false;
      } else if (v == "sync") {
        p.sync = true;
      } else {
        return Usage();
      }
    } else if (ParseFlag(arg, "shadowing", &v)) {
      p.shadowing = v != "0";
    } else if (ParseFlag(arg, "writes", &v)) {
      p.max_writes = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "loads", &v)) {
      p.max_loads = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "reads", &v)) {
      p.max_reads = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "seed", &v)) {
      p.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "mutation", &v)) {
      auto m = MutationFromName(v);
      if (!m) {
        std::cerr << "unknown mutation: " << v << "\n";
        return Usage();
      }
      p.mutation = *m;
      mutation_set = true;
    } else if (ParseFlag(arg, "replay", &v)) {
      replay_text = v;
    } else {
      return Usage();
    }
  }

  if (selftest) {
    const int failures = RunSelftest(p, std::cout);
    if (failures != 0) {
      std::cout << "SELFTEST FAILED: " << failures << " case(s)\n";
      return 1;
    }
    std::cout << "selftest passed: every mutation caught, correct protocol clean\n";
    return 0;
  }

  if (!replay_text.empty()) {
    auto schedule = DecodeSchedule(replay_text);
    if (!schedule) {
      std::cerr << "bad --replay schedule (tokens: s,w,t,l,r)\n";
      return Usage();
    }
    if (auto v = Replay(p, *schedule)) {
      PrintViolation(std::cout, p, *v);
      return 1;
    }
    std::cout << "replay clean (" << schedule->size() << " actions)\n";
    return 0;
  }

  if (mutation_set || machine_set) {
    // One explicit configuration.
    const Result r = Explore(p);
    std::cout << "machine=" << (p.sync ? "sync" : "tpm") << " shadowing=" << (p.shadowing ? 1 : 0)
              << " mutation=" << MutationName(p.mutation) << " writes=" << p.max_writes
              << " loads=" << p.max_loads << " reads=" << p.max_reads
              << " schedules=" << r.schedules << " states=" << r.states << "\n";
    if (r.violation) {
      PrintViolation(std::cout, p, *r.violation);
      return p.mutation == Mutation::kNone ? 1 : 0;
    }
    if (p.mutation != Mutation::kNone) {
      std::cout << "mutation NOT caught\n";
      return 1;
    }
    return 0;
  }

  // Default: the full correct-protocol matrix must be violation-free.
  struct Config {
    bool sync;
    bool shadowing;
  };
  const Config configs[] = {{false, true}, {false, false}, {true, true}};
  bool failed = false;
  for (const Config& c : configs) {
    Params q = p;
    q.sync = c.sync;
    q.shadowing = c.shadowing;
    const Result r = Explore(q);
    std::cout << "machine=" << (q.sync ? "sync" : "tpm") << " shadowing=" << (q.shadowing ? 1 : 0)
              << " writes=" << q.max_writes << " loads=" << q.max_loads << " reads=" << q.max_reads
              << " schedules=" << r.schedules << " states=" << r.states
              << (r.violation ? "  VIOLATION" : "  ok") << "\n";
    if (r.violation) {
      PrintViolation(std::cout, q, *r.violation);
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
