// chaos_sim: randomized fault-injection campaign for the NOMAD migration
// paths, with continuous invariant auditing.
//
// For every (seed, workload) pair the driver builds a deliberately
// undersized two-tier platform, arms the deterministic FaultInjector with
// schedules derived from the seed (alloc failures, forced dirty-write
// aborts, latency spikes, PCQ overflow pressure, delayed TLB shootdown
// acks), runs the workload to completion while an InvariantCheckActor
// audits the page tables / frame pool / LRU lists / shadow index, and
// finishes with one last full audit. Any violation prints a one-line
// reproducer (the seed fully determines the run) and exits nonzero.
//
// A second mode, --soak, runs the *sharded* campaign: every (seed, fault
// focus) cell is a 4-shard lockstep run with per-shard injectors driving
// the shard-aware fault kinds (barrier stalls, delivery delays, alloc-fail
// waves) plus the stalled-epoch watchdog, a post-run quiescence audit on
// every shard, and a byte-compare of the recovery record across
// exec_threads=1 and =4 (src/harness/chaos.h). A cell fails on any
// invariant violation, on a thread-count-dependent recovery record, or
// when the faults produced no observable degradation at all.
//
// Examples:
//   ./chaos_sim --seeds=50                       # CI campaign
//   ./chaos_sim --seed=1337 --workloads=micro    # replay one reproducer
//   ./chaos_sim --selftest                       # prove detection works
//   ./chaos_sim --soak --soak_seeds=32           # sharded soak campaign
//   ./chaos_sim --soak --seed=7 --focus=shard_stall --threads=4
//
// Flags (defaults in brackets):
//   --seeds=N          [50]     seeds 1..N (ignored when --seed given)
//   --seed=N           []       run exactly one seed
//   --ops=N            [30000]  workload ops per run
//   --workloads=a,b    [micro,chase,scan]
//   --selftest         [off]    corrupt state mid-run; succeed iff caught
//   --verbose          [off]    per-run summary lines
//   --timeline_out=path []      telemetry timeline CSV per run (campaign
//                               runs get .seed<N>.<workload> inserted);
//                               tools/timeline_report reads these
//   --timeline_interval=N [50000] timeline sampling cadence (cycles)
//   --spans            [off]    emit migration-lifecycle span records
//   --trace_out=path   []       chrome://tracing dump per run (with --spans
//                               this is trace_query --span input)
// Soak-mode flags:
//   --soak             [off]    run the sharded soak campaign
//   --soak_seeds=N     [32]     seeds soak_seed_start..+N-1 (ignored w/ --seed)
//   --soak_seed_start=N [1]     first seed (CI shards the range)
//   --soak_ops=N       [24000]  whole-machine ops per cell
//   --focus=a,b        [all]    shard_stall,alloc_fail_wave,pcq_overflow
//   --threads=N        [0]      0: run threads=1 and =4, byte-compare the
//                               recovery records; else run exactly N
//   --metrics_out=path []       append one summary line per cell
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/invariants.h"
#include "src/fault/fault_injector.h"
#include "src/harness/chaos.h"
#include "src/harness/experiment.h"
#include "src/harness/flags.h"
#include "src/workload/micro.h"
#include "src/workload/pointer_chase.h"
#include "src/workload/seq_scan.h"

using namespace nomad;

namespace {

// Small enough that every run finishes in milliseconds, tight enough that
// the fast tier cannot hold the working set (so promotion, demotion, shadow
// reclaim and alloc-failure paths all fire).
constexpr uint64_t kFastPages = 128;
constexpr uint64_t kSlowPages = 384;
constexpr uint64_t kRegionPages = 224;  // > fast tier
constexpr uint64_t kAsPages = 512;

PlatformSpec ChaosPlatform() {
  PlatformSpec p = MakePlatform(PlatformId::kA);
  p.tiers[0].capacity_bytes = kFastPages * kPageSize;
  p.tiers[1].capacity_bytes = kSlowPages * kPageSize;
  p.llc_bytes = 64 * 1024;
  return p;
}

double UnitDouble(Rng& rng) {
  return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
}

// Seed-derived fault schedules. Each kind is independently armed with a
// random probability (and magnitude where applicable); occasionally a
// deterministic trigger window is used instead, which exercises the exact
// "Nth opportunity" replay mode.
void ArmFaults(FaultInjector* fi, uint64_t seed) {
  Rng rng(seed ^ 0xC4A05C4A05ull);
  struct KindRange {
    FaultKind kind;
    double max_probability;
    Cycles max_latency;
  };
  const KindRange kinds[] = {
      {FaultKind::kAllocFail, 0.30, 0},
      {FaultKind::kDirtyWrite, 0.40, 0},
      {FaultKind::kLatencySpike, 0.10, 50000},
      {FaultKind::kPcqOverflow, 0.20, 0},
      {FaultKind::kTlbDelay, 0.10, 20000},
  };
  for (const KindRange& k : kinds) {
    FaultSchedule s;
    const double mode = UnitDouble(rng);
    if (mode < 0.2) {
      // Unarmed: this kind stays quiet for the whole run.
    } else if (mode < 0.35) {
      s.trigger_start = rng.Below(200);
      s.trigger_count = 1 + rng.Below(16);
    } else {
      s.probability = UnitDouble(rng) * k.max_probability;
    }
    if (k.max_latency > 0) {
      s.latency_cycles = 1000 + rng.Below(k.max_latency);
    }
    fi->set_schedule(k.kind, s);
  }
}

struct RunResult {
  bool ok = true;
  std::vector<InvariantViolation> violations;
  std::string injector;  // FaultInjector::Describe() at end of run
  uint64_t audits = 0;
  uint64_t injections = 0;
  Cycles end_time = 0;
};

// Observability outputs for one run (all optional; empty paths = off).
struct ObsConfig {
  Cycles timeline_interval = 50000;
  bool spans = false;
  std::string timeline_out;
  std::string trace_out;
};

// p.csv + "seed7.micro" -> p.seed7.micro.csv (campaign runs must not
// clobber each other's artifacts).
std::string PathWithTag(const std::string& path, const std::string& tag) {
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

// Deliberate mid-run corruption for --selftest: frees a mapped frame
// behind the PTE's back, which a correct checker must flag as
// pte.frame_identity (at least).
class CorruptorActor : public Actor {
 public:
  CorruptorActor(MemorySystem* ms, AddressSpace* as, Cycles when)
      : ms_(ms), as_(as), when_(when) {}

  Cycles Step(Engine& engine) override {
    if (fired_) {
      engine.SleepUntil(kNever);
      return 0;
    }
    if (engine.now() < when_) {
      engine.SleepUntil(when_);
      return 0;
    }
    for (Vpn v = 0; v < kAsPages; v++) {
      const Pte* pte = ms_->PteOf(*as_, v);
      if (pte != nullptr && pte->present &&
          !ms_->pool().frame(pte->pfn).migrating()) {
        ms_->lru(ms_->pool().TierOf(pte->pfn)).Remove(pte->pfn);
        ms_->pool().Free(pte->pfn);
        fired_ = true;
        break;
      }
    }
    engine.SleepUntil(kNever);
    return 1;
  }

  std::string name() const override { return "corruptor"; }
  bool fired() const { return fired_; }

 private:
  MemorySystem* ms_;
  AddressSpace* as_;
  Cycles when_;
  bool fired_ = false;
};

RunResult RunOne(uint64_t seed, const std::string& workload, uint64_t ops,
                 bool corrupt, const ObsConfig& obs = ObsConfig{},
                 const std::string& tag = "") {
  Sim sim(ChaosPlatform(), PolicyKind::kNomad, kAsPages);
  NomadPolicy* nomad = sim.nomad();
  if (obs.spans) {
    sim.ms().set_span_tracing(true);
  }
  if (!obs.timeline_out.empty()) {
    sim.EnableTimeline({obs.timeline_interval, /*capacity=*/4096});
  }

  auto fi = std::make_unique<FaultInjector>(seed);
  ArmFaults(fi.get(), seed);
  sim.ms().set_fault_injector(std::move(fi));

  InvariantChecker checker(&sim.ms());
  checker.AddSpace(&sim.as());
  checker.set_shadows(&nomad->shadows());
  checker.set_queues(&nomad->queues());

  InvariantCheckActor::Config audit_cfg;
  Rng rng(seed ^ 0xAD17ull);
  audit_cfg.period = 50000 + rng.Below(350000);
  audit_cfg.die_on_violation = false;
  InvariantCheckActor auditor(&checker, audit_cfg);
  sim.engine().AddActor(&auditor);

  CorruptorActor corruptor(&sim.ms(), &sim.as(), 2000000);
  if (corrupt) {
    sim.engine().AddActor(&corruptor);
  }

  // The region starts entirely on the slow tier (promotion pressure); a
  // fast-tier filler keeps free fast frames scarce so allocation failures
  // and kswapd reclaim are routine rather than exceptional.
  MapRange(sim.ms(), sim.as(), 0, kRegionPages, Tier::kSlow);
  MapRange(sim.ms(), sim.as(), kRegionPages, kFastPages * 3 / 4, Tier::kFast);

  WorkloadActor::BaseConfig base;
  base.total_ops = ops;
  base.seed = seed;
  std::unique_ptr<WorkloadActor> actor;
  std::unique_ptr<ScrambledZipfian> zipf;
  if (workload == "micro") {
    MicroWorkload::Config cfg;
    cfg.base = base;
    cfg.wss_start = 0;
    cfg.wss_pages = kRegionPages;
    cfg.write_fraction = UnitDouble(rng) * 0.5;
    zipf = std::make_unique<ScrambledZipfian>(kRegionPages, cfg.zipf_theta, seed);
    actor = std::make_unique<MicroWorkload>(&sim.ms(), &sim.as(), zipf.get(), cfg);
  } else if (workload == "chase") {
    PointerChaseWorkload::Config cfg;
    cfg.base = base;
    cfg.region_start = 0;
    cfg.block_pages = 16;
    cfg.num_blocks = kRegionPages / 16;
    actor = std::make_unique<PointerChaseWorkload>(&sim.ms(), &sim.as(), cfg);
  } else if (workload == "scan") {
    SeqScanWorkload::Config cfg;
    cfg.base = base;
    cfg.region_start = 0;
    cfg.region_pages = kRegionPages;
    cfg.write_fraction = UnitDouble(rng) * 0.5;
    actor = std::make_unique<SeqScanWorkload>(&sim.ms(), &sim.as(), cfg);
  } else {
    std::cerr << "unknown workload: " << workload << "\n";
    std::exit(2);
  }
  sim.AddWorkload(actor.get());

  RunResult r;
  r.end_time = sim.Run(Cycles{1} << 38);

  r.violations = auditor.violations();
  if (r.violations.empty()) {
    r.violations = checker.Check();  // final end-of-run audit
  }
  r.ok = r.violations.empty();
  r.injector = sim.ms().faults()->Describe();
  r.audits = auditor.audits();
  r.injections = sim.ms().faults()->total_injected();
  if (corrupt && !corruptor.fired()) {
    std::cerr << "selftest: corruptor never fired (run too short?)\n";
    r.ok = true;  // nothing to detect; caller treats this as failure
  }
  if (!obs.timeline_out.empty()) {
    const std::string path =
        tag.empty() ? obs.timeline_out : PathWithTag(obs.timeline_out, tag);
    if (!WriteTimelineFile(sim, path)) {
      std::cerr << "warning: could not write timeline to " << path << "\n";
    }
  }
  if (!obs.trace_out.empty()) {
    const std::string path =
        tag.empty() ? obs.trace_out : PathWithTag(obs.trace_out, tag);
    if (!WriteTraceFile(sim, path)) {
      std::cerr << "warning: could not write trace to " << path << "\n";
    }
  }
  return r;
}

void PrintViolation(uint64_t seed, const std::string& workload, uint64_t ops,
                    const RunResult& r) {
  std::cerr << "INVARIANT VIOLATION  seed=" << seed << " workload=" << workload
            << " ops=" << ops << " t=" << r.end_time << "\n";
  std::cerr << "  injector: " << r.injector << "\n";
  for (const InvariantViolation& v : r.violations) {
    std::cerr << "  " << v.rule << ": " << v.detail << "\n";
  }
  std::cerr << "reproduce: chaos_sim --seed=" << seed << " --workloads=" << workload
            << " --ops=" << ops << "\n";
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

// The sharded soak campaign (--soak). Returns the process exit code.
int RunSoak(const Flags& flags, uint64_t one_seed, bool verbose) {
  const uint64_t seeds = flags.GetUint("soak_seeds", 32);
  const uint64_t seed_start = flags.GetUint("soak_seed_start", 1);
  const uint64_t ops = flags.GetUint("soak_ops", 24000);
  const uint64_t threads = flags.GetUint("threads", 0);
  const std::string focus_arg = flags.GetString("focus", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");

  std::vector<ChaosFocus> focuses;
  if (focus_arg.empty()) {
    focuses.assign(std::begin(kChaosFocuses), std::end(kChaosFocuses));
  } else {
    for (const std::string& name : SplitList(focus_arg)) {
      ChaosFocus f;
      if (!ChaosFocusFromName(name, &f)) {
        std::cerr << "unknown --focus value: " << name << "\n";
        return 2;
      }
      focuses.push_back(f);
    }
  }

  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unused) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n";
    return 2;
  }

  std::vector<uint64_t> seed_list;
  if (one_seed != 0) {
    seed_list.push_back(one_seed);
  } else {
    for (uint64_t s = 0; s < seeds; s++) {
      seed_list.push_back(seed_start + s);
    }
  }

  std::ofstream metrics;
  if (!metrics_out.empty()) {
    metrics.open(metrics_out, std::ios::app);
    if (!metrics) {
      std::cerr << "cannot open --metrics_out=" << metrics_out << "\n";
      return 2;
    }
  }

  uint64_t cells = 0, failures = 0, total_faults = 0, total_stalls = 0,
           total_degradations = 0;
  for (const uint64_t seed : seed_list) {
    for (const ChaosFocus focus : focuses) {
      ChaosCellConfig cfg;
      cfg.seed = seed;
      cfg.focus = focus;
      cfg.total_ops = ops;
      cells++;

      bool ok = true;
      std::string why;
      ChaosCellResult r;
      if (threads != 0) {
        cfg.exec_threads = static_cast<uint32_t>(threads);
        r = RunChaosCell(cfg);
        ok = r.ok;
        if (!ok) {
          why = "invariant violation";
        }
      } else {
        std::string diff;
        if (!ChaosCellDeterministic(cfg, &diff)) {
          ok = false;
          why = "recovery record differs across exec_threads";
          std::cerr << diff;
        }
        cfg.exec_threads = 1;
        r = RunChaosCell(cfg);
        if (ok && !r.ok) {
          ok = false;
          why = "invariant violation";
        }
      }
      if (ok && kFaultInjectionEnabled && r.degradations == 0) {
        // The cell's faults left no trace in any degradation counter: the
        // schedules are not reaching the resilience paths.
        ok = false;
        why = "no degradation observed";
      }
      total_faults += r.faults_injected;
      total_stalls += r.watchdog_stalls;
      total_degradations += r.degradations;
      if (!ok) {
        failures++;
        std::cerr << "SOAK FAILURE seed=" << seed
                  << " focus=" << ChaosFocusName(focus) << ": " << why << "\n";
        std::cerr << "reproduce: chaos_sim --soak --seed=" << seed
                  << " --focus=" << ChaosFocusName(focus) << " --soak_ops=" << ops
                  << "\n";
      } else if (verbose) {
        std::cout << "ok seed=" << seed << " focus=" << ChaosFocusName(focus)
                  << " epochs=" << r.epochs << " faults=" << r.faults_injected
                  << " stalls=" << r.watchdog_stalls
                  << " degradations=" << r.degradations << "\n";
      }
      if (metrics) {
        metrics << "seed=" << seed << " focus=" << ChaosFocusName(focus)
                << " ok=" << (ok ? 1 : 0) << " epochs=" << r.epochs
                << " faults=" << r.faults_injected << " stalls=" << r.watchdog_stalls
                << " degradations=" << r.degradations
                << " violations=" << r.invariant_violations << "\n";
      }
    }
  }

  std::cout << "chaos_sim --soak: " << cells << " cells, " << total_faults
            << " faults injected, " << total_stalls << " watchdog stalls, "
            << total_degradations << " degradations, " << failures << " failures"
            << (kFaultInjectionEnabled ? "" : " [fault injection compiled out]")
            << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t seeds = flags.GetUint("seeds", 50);
  const uint64_t one_seed = flags.GetUint("seed", 0);
  const uint64_t ops = flags.GetUint("ops", 30000);
  const std::vector<std::string> workloads =
      SplitList(flags.GetString("workloads", "micro,chase,scan"));
  const bool selftest = flags.GetBool("selftest", false);
  const bool verbose = flags.GetBool("verbose", false);
  ObsConfig obs;
  obs.timeline_out = flags.GetString("timeline_out", "");
  obs.timeline_interval = flags.GetUint("timeline_interval", 50000);
  obs.spans = flags.GetBool("spans", false);
  obs.trace_out = flags.GetString("trace_out", "");

  if (flags.GetBool("soak", false)) {
    return RunSoak(flags, one_seed, verbose);
  }

  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unused) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n";
    return 2;
  }

  if (selftest) {
    // The campaign is only trustworthy if a real corruption is caught.
    const uint64_t seed = one_seed != 0 ? one_seed : 7;
    const RunResult r = RunOne(seed, workloads.front(), ops, /*corrupt=*/true, obs);
    if (r.ok) {
      std::cerr << "selftest FAILED: deliberate corruption was not detected\n";
      return 1;
    }
    std::cout << "selftest passed: corruption detected by rule '"
              << r.violations.front().rule << "' after " << r.audits
              << " audits\n";
    return 0;
  }

  std::vector<uint64_t> seed_list;
  if (one_seed != 0) {
    seed_list.push_back(one_seed);
  } else {
    for (uint64_t s = 1; s <= seeds; s++) {
      seed_list.push_back(s);
    }
  }

  const bool single_run = seed_list.size() == 1 && workloads.size() == 1;
  uint64_t runs = 0, failures = 0, total_injections = 0, total_audits = 0;
  for (const uint64_t seed : seed_list) {
    for (const std::string& w : workloads) {
      const std::string tag =
          single_run ? "" : "seed" + std::to_string(seed) + "." + w;
      const RunResult r = RunOne(seed, w, ops, /*corrupt=*/false, obs, tag);
      runs++;
      total_injections += r.injections;
      total_audits += r.audits;
      if (!r.ok) {
        failures++;
        PrintViolation(seed, w, ops, r);
      } else if (verbose) {
        std::cout << "ok seed=" << seed << " workload=" << w
                  << " t=" << r.end_time << " audits=" << r.audits
                  << " injections=" << r.injections << "\n";
        std::cout << "   " << r.injector << "\n";
      }
    }
  }

  std::cout << "chaos_sim: " << runs << " runs, " << total_injections
            << " faults injected, " << total_audits << " audits, " << failures
            << " violations"
            << (kFaultInjectionEnabled ? "" : " [fault injection compiled out]")
            << "\n";
  return failures == 0 ? 0 : 1;
}
