// timeline_report: offline analysis over --timeline_out CSVs.
//
// Consumes the columnar telemetry timelines the simulator samples in virtual
// time (src/obs/timeline.h) and turns the raw channel matrix into the views
// the paper's temporal narratives need:
//
//   --in=A[,B,...]   summary + phase breakdown + anomaly scan per file;
//                    with several files, per-shard skew is checked across
//                    their final shard.ops_done gauges
//   --diff=A,B       compare two timelines channel-by-channel (bench
//                    trajectory comparison / determinism gate)
//   --check          exit 1 if any anomaly fires (clean-run gate), or, with
//                    --diff, if the two timelines differ anywhere
//   --expect=RULES   comma list of anomaly rules that MUST fire (abort-storm
//                    reproduction gate); with --expect, other anomalies are
//                    reported but do not fail --check
//   --selftest       run the embedded checks on canned CSVs
//
// Anomaly rules are deterministic window arithmetic — no wall-clock, no
// randomness — so a fixed-seed run either always trips a rule or never does:
//
//   abort_storm       tpm-abort delta >= --abort_storm_min in one window, or
//                     the kpromote degraded-mode gauge turning on
//   watermark_breach  fast tier below its low watermark for
//                     >= --breach_windows consecutive windows; the run-
//                     initial fill transient (a breach beginning in the very
//                     first window, before kswapd ever ran) is exempt
//   verdict_flapping  the majority admission verdict flipping
//                     >= --flap_min times within --flap_span active windows
//   queue_runaway     pending+deferred promotion backlog growing
//                     >= --runaway_ratio x across some --runaway_windows-
//                     window span and ending >= --runaway_min entries; slow
//                     steady accumulation (a bandwidth-bound PCQ filling
//                     over hundreds of windows) is deliberately not flagged
//   shard_skew        max/min final shard.ops_done across input files
//                     > --skew_ratio
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/flags.h"
#include "src/obs/event_registry.h"
#include "src/obs/timeline.h"

namespace nomad {
namespace {

// ---------------------------------------------------------------------------
// CSV model. One column per channel; all values are unsigned 64-bit, matching
// Timeline::WriteCsv.
// ---------------------------------------------------------------------------

struct TimelineCsv {
  std::string path;
  std::vector<uint64_t> time;
  std::vector<std::string> channels;
  std::vector<std::vector<uint64_t>> cols;  // [channel][row]

  const std::vector<uint64_t>* Col(const std::string& name) const {
    for (size_t i = 0; i < channels.size(); i++) {
      if (channels[i] == name) {
        return &cols[i];
      }
    }
    return nullptr;
  }
};

bool SplitRow(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) {
    out->push_back(field);
  }
  return !out->empty();
}

bool LoadTimelineCsv(std::istream& in, const std::string& path, TimelineCsv* t,
                     std::string* error) {
  t->path = path;
  std::string line;
  if (!std::getline(in, line)) {
    *error = path + ": empty file";
    return false;
  }
  std::vector<std::string> fields;
  SplitRow(line, &fields);
  if (fields.empty() || fields[0] != "time") {
    *error = path + ": header must start with 'time'";
    return false;
  }
  for (size_t i = 1; i < fields.size(); i++) {
    // The writer only emits registry-checked channels; rejecting anything
    // else catches corrupt or foreign CSVs before the rules run on garbage.
    if (!IsRegisteredTimelineChannel(fields[i].c_str())) {
      *error = path + ": unregistered channel '" + fields[i] + "'";
      return false;
    }
    t->channels.push_back(fields[i]);
  }
  t->cols.assign(t->channels.size(), {});
  size_t row = 1;
  while (std::getline(in, line)) {
    row++;
    if (line.empty()) {
      continue;
    }
    SplitRow(line, &fields);
    if (fields.size() != t->channels.size() + 1) {
      *error = path + ": row " + std::to_string(row) + " has " +
               std::to_string(fields.size()) + " fields, want " +
               std::to_string(t->channels.size() + 1);
      return false;
    }
    for (size_t i = 0; i < fields.size(); i++) {
      uint64_t v = 0;
      try {
        v = std::stoull(fields[i]);
      } catch (...) {
        *error = path + ": row " + std::to_string(row) + ": bad number '" + fields[i] + "'";
        return false;
      }
      if (i == 0) {
        t->time.push_back(v);
      } else {
        t->cols[i - 1].push_back(v);
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Derived per-window series.
// ---------------------------------------------------------------------------

// Sums the named counter-delta channels per window; absent channels (the
// counter never fired, so its column never appeared) contribute zero.
std::vector<uint64_t> SumChannels(const TimelineCsv& t,
                                  const std::vector<std::string>& names) {
  std::vector<uint64_t> out(t.time.size(), 0);
  for (const std::string& name : names) {
    if (const std::vector<uint64_t>* col = t.Col(name)) {
      for (size_t i = 0; i < out.size(); i++) {
        out[i] += (*col)[i];
      }
    }
  }
  return out;
}

std::string CntChannel(const char* counter) { return std::string("cnt.") + counter; }

// Migration activity per window: every page that moved between tiers, by any
// mechanism. Drives the phase breakdown.
std::vector<uint64_t> MigrationActivity(const TimelineCsv& t) {
  return SumChannels(t, {CntChannel(cnt::kNomadTpmCommit), CntChannel(cnt::kMigrateSyncPromote),
                         CntChannel(cnt::kMigrateSyncDemote), CntChannel(cnt::kNomadDemoteCopy)});
}

// ---------------------------------------------------------------------------
// Phase breakdown: contiguous runs of migration-active/quiescent windows.
// ---------------------------------------------------------------------------

struct Phase {
  bool migrating = false;
  size_t first = 0;  // window index range [first, last]
  size_t last = 0;
  uint64_t moved_pages = 0;
};

std::vector<Phase> BreakPhases(const TimelineCsv& t) {
  std::vector<Phase> phases;
  const std::vector<uint64_t> activity = MigrationActivity(t);
  for (size_t i = 0; i < activity.size(); i++) {
    const bool migrating = activity[i] > 0;
    if (phases.empty() || phases.back().migrating != migrating) {
      phases.push_back(Phase{migrating, i, i, 0});
    }
    phases.back().last = i;
    phases.back().moved_pages += activity[i];
  }
  return phases;
}

// ---------------------------------------------------------------------------
// Anomaly rules.
// ---------------------------------------------------------------------------

struct Thresholds {
  uint64_t abort_storm_min = 8;   // aborts in one window
  size_t breach_windows = 3;      // consecutive below-low-watermark windows
  size_t flap_min = 4;            // majority-verdict flips ...
  size_t flap_span = 12;          // ... within this many active windows
  size_t runaway_windows = 6;     // span the backlog growth is measured over
  double runaway_ratio = 4.0;     // end/start backlog growth across the span
  uint64_t runaway_min = 64;      // absolute backlog floor for a runaway
  double skew_ratio = 1.5;        // max/min final shard ops across files
};

struct Anomaly {
  std::string rule;
  uint64_t onset_time = 0;
  std::string detail;
};

void DetectAbortStorm(const TimelineCsv& t, const Thresholds& th,
                      std::vector<Anomaly>* out) {
  const std::vector<uint64_t>* aborts = t.Col(CntChannel(cnt::kNomadTpmAbort));
  const std::vector<uint64_t>* degraded = t.Col(tl::kKpromoteDegraded);
  for (size_t i = 0; i < t.time.size(); i++) {
    const bool storm = aborts != nullptr && (*aborts)[i] >= th.abort_storm_min;
    const bool tripped =
        degraded != nullptr && (*degraded)[i] > 0 && (i == 0 || (*degraded)[i - 1] == 0);
    if (storm || tripped) {
      std::string detail;
      if (storm) {
        detail = std::to_string((*aborts)[i]) + " aborts in one window";
      }
      if (tripped) {
        detail += (detail.empty() ? "" : "; ") + std::string("kpromote entered degraded mode");
      }
      out->push_back(Anomaly{"abort_storm", t.time[i], detail});
      return;  // onset only; one storm per timeline is enough signal
    }
  }
}

void DetectWatermarkBreach(const TimelineCsv& t, const Thresholds& th,
                           std::vector<Anomaly>* out) {
  const std::vector<uint64_t>* below = t.Col(tl::kFastBelowLowWatermark);
  if (below == nullptr) {
    return;
  }
  size_t run = 0;
  for (size_t i = 0; i < below->size(); i++) {
    run = (*below)[i] > 0 ? run + 1 : 0;
    if (run == th.breach_windows) {
      if (i + 1 == run) {
        continue;  // breach began in window 0: the initial fill transient
      }
      out->push_back(Anomaly{"watermark_breach", t.time[i + 1 - run],
                             std::to_string(th.breach_windows) +
                                 "+ consecutive windows below the fast-tier low watermark"});
      return;
    }
  }
}

void DetectVerdictFlapping(const TimelineCsv& t, const Thresholds& th,
                           std::vector<Anomaly>* out) {
  const std::vector<const char*> verdict_counters = {
      cnt::kAdmissionAccept, cnt::kAdmissionDefer, cnt::kAdmissionReject,
      cnt::kAdmissionDowngradeSync};
  // Majority verdict per active window (ties break toward the earlier,
  // more-permissive verdict, deterministically).
  std::vector<size_t> majority;
  std::vector<uint64_t> when;
  for (size_t i = 0; i < t.time.size(); i++) {
    size_t best = 0;
    uint64_t best_count = 0, total = 0;
    for (size_t v = 0; v < verdict_counters.size(); v++) {
      const std::vector<uint64_t>* col = t.Col(CntChannel(verdict_counters[v]));
      const uint64_t c = col != nullptr ? (*col)[i] : 0;
      total += c;
      if (c > best_count) {
        best_count = c;
        best = v;
      }
    }
    if (total == 0) {
      continue;  // no verdicts this window: not evidence of stability
    }
    majority.push_back(best);
    when.push_back(t.time[i]);
  }
  // Flips between consecutive active windows, inside a sliding span.
  std::vector<size_t> flips;  // indices (into majority) where it changed
  for (size_t i = 1; i < majority.size(); i++) {
    if (majority[i] != majority[i - 1]) {
      flips.push_back(i);
    }
  }
  for (size_t i = 0; i + th.flap_min <= flips.size(); i++) {
    if (flips[i + th.flap_min - 1] - flips[i] < th.flap_span) {
      out->push_back(Anomaly{"verdict_flapping", when[flips[i + th.flap_min - 1]],
                             std::to_string(th.flap_min) + " majority-verdict flips within " +
                                 std::to_string(th.flap_span) + " active windows"});
      return;
    }
  }
}

void DetectQueueRunaway(const TimelineCsv& t, const Thresholds& th,
                        std::vector<Anomaly>* out) {
  if (t.Col(tl::kPendingDepth) == nullptr) {
    return;
  }
  const std::vector<uint64_t> backlog =
      SumChannels(t, {tl::kPendingDepth, tl::kDeferredDepth});
  for (size_t i = 0; i + th.runaway_windows < backlog.size(); i++) {
    const uint64_t end = backlog[i + th.runaway_windows];
    if (end >= th.runaway_min &&
        static_cast<double>(end) >=
            th.runaway_ratio * static_cast<double>(std::max<uint64_t>(backlog[i], 1))) {
      out->push_back(Anomaly{"queue_runaway", t.time[i],
                             "promotion backlog grew " + std::to_string(backlog[i]) +
                                 " -> " + std::to_string(end) + " over " +
                                 std::to_string(th.runaway_windows) + " windows"});
      return;
    }
  }
}

std::vector<Anomaly> DetectAnomalies(const TimelineCsv& t, const Thresholds& th) {
  std::vector<Anomaly> out;
  DetectAbortStorm(t, th, &out);
  DetectWatermarkBreach(t, th, &out);
  DetectVerdictFlapping(t, th, &out);
  DetectQueueRunaway(t, th, &out);
  return out;
}

// Cross-file rule: final per-shard progress must stay balanced.
void DetectShardSkew(const std::vector<TimelineCsv>& files, const Thresholds& th,
                     std::vector<Anomaly>* out) {
  uint64_t min_ops = 0, max_ops = 0;
  std::string min_file, max_file;
  size_t seen = 0;
  for (const TimelineCsv& t : files) {
    const std::vector<uint64_t>* ops = t.Col(tl::kShardOpsDone);
    if (ops == nullptr || ops->empty()) {
      continue;
    }
    const uint64_t last = ops->back();
    if (seen == 0 || last < min_ops) {
      min_ops = last;
      min_file = t.path;
    }
    if (seen == 0 || last > max_ops) {
      max_ops = last;
      max_file = t.path;
    }
    seen++;
  }
  if (seen >= 2 && static_cast<double>(max_ops) >
                       th.skew_ratio * static_cast<double>(std::max<uint64_t>(min_ops, 1))) {
    out->push_back(Anomaly{"shard_skew", 0,
                           max_file + " finished " + std::to_string(max_ops) + " ops vs " +
                               std::to_string(min_ops) + " in " + min_file});
  }
}

// ---------------------------------------------------------------------------
// Diff: channel-by-channel comparison of two timelines.
// ---------------------------------------------------------------------------

struct DiffReport {
  std::vector<std::string> only_a, only_b;
  uint64_t differing_cells = 0;
  bool time_mismatch = false;
  // Per common channel: rows differing, max |a-b|, first differing time.
  struct ChannelDiff {
    std::string name;
    uint64_t rows = 0;
    uint64_t max_abs = 0;
    uint64_t first_time = 0;
  };
  std::vector<ChannelDiff> channels;

  bool identical() const {
    return only_a.empty() && only_b.empty() && differing_cells == 0 && !time_mismatch;
  }
};

DiffReport DiffTimelines(const TimelineCsv& a, const TimelineCsv& b) {
  DiffReport d;
  for (const std::string& c : a.channels) {
    if (b.Col(c) == nullptr) {
      d.only_a.push_back(c);
    }
  }
  for (const std::string& c : b.channels) {
    if (a.Col(c) == nullptr) {
      d.only_b.push_back(c);
    }
  }
  d.time_mismatch = a.time != b.time;
  const size_t rows = std::min(a.time.size(), b.time.size());
  for (const std::string& c : a.channels) {
    const std::vector<uint64_t>* ca = a.Col(c);
    const std::vector<uint64_t>* cb = b.Col(c);
    if (cb == nullptr) {
      continue;
    }
    DiffReport::ChannelDiff cd;
    cd.name = c;
    for (size_t i = 0; i < rows; i++) {
      if ((*ca)[i] == (*cb)[i]) {
        continue;
      }
      const uint64_t delta =
          (*ca)[i] > (*cb)[i] ? (*ca)[i] - (*cb)[i] : (*cb)[i] - (*ca)[i];
      if (cd.rows == 0) {
        cd.first_time = a.time[i];
      }
      cd.rows++;
      cd.max_abs = std::max(cd.max_abs, delta);
    }
    if (cd.rows > 0) {
      d.differing_cells += cd.rows;
      d.channels.push_back(cd);
    }
  }
  std::sort(d.channels.begin(), d.channels.end(),
            [](const DiffReport::ChannelDiff& x, const DiffReport::ChannelDiff& y) {
              if (x.max_abs != y.max_abs) {
                return x.max_abs > y.max_abs;
              }
              return x.name < y.name;
            });
  return d;
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

void PrintReport(const TimelineCsv& t, const std::vector<Anomaly>& anomalies) {
  std::cout << "== " << t.path << " ==\n";
  std::cout << "windows: " << t.time.size() << "  channels: " << t.channels.size();
  if (!t.time.empty()) {
    std::cout << "  span: [" << t.time.front() << " .. " << t.time.back() << "] cycles";
  }
  std::cout << "\n";
  const std::vector<Phase> phases = BreakPhases(t);
  std::cout << "phases:\n";
  constexpr size_t kMaxPhases = 16;
  for (size_t i = 0; i < phases.size() && i < kMaxPhases; i++) {
    const Phase& p = phases[i];
    std::cout << "  [" << t.time[p.first] << " .. " << t.time[p.last] << "] "
              << (p.migrating ? "migrating" : "quiescent") << " ("
              << (p.last - p.first + 1) << " windows";
    if (p.migrating) {
      std::cout << ", " << p.moved_pages << " pages moved";
    }
    std::cout << ")\n";
  }
  if (phases.size() > kMaxPhases) {
    std::cout << "  ... and " << (phases.size() - kMaxPhases) << " more\n";
  }
  if (anomalies.empty()) {
    std::cout << "anomalies: none\n";
  } else {
    std::cout << "anomalies:\n";
    for (const Anomaly& a : anomalies) {
      std::cout << "  " << a.rule << " @ " << a.onset_time << ": " << a.detail << "\n";
    }
  }
}

void PrintDiff(const DiffReport& d, const std::string& a, const std::string& b) {
  std::cout << "diff " << a << " vs " << b << ":\n";
  if (d.identical()) {
    std::cout << "  timelines are identical\n";
    return;
  }
  if (d.time_mismatch) {
    std::cout << "  sample times differ\n";
  }
  for (const std::string& c : d.only_a) {
    std::cout << "  only in " << a << ": " << c << "\n";
  }
  for (const std::string& c : d.only_b) {
    std::cout << "  only in " << b << ": " << c << "\n";
  }
  constexpr size_t kMaxChannels = 10;
  for (size_t i = 0; i < d.channels.size() && i < kMaxChannels; i++) {
    const DiffReport::ChannelDiff& cd = d.channels[i];
    std::cout << "  " << cd.name << ": " << cd.rows << " row(s) differ, max |delta|="
              << cd.max_abs << ", first at t=" << cd.first_time << "\n";
  }
  if (d.channels.size() > kMaxChannels) {
    std::cout << "  ... and " << (d.channels.size() - kMaxChannels)
              << " more channel(s)\n";
  }
  std::cout << "  " << d.differing_cells << " differing cell(s) total\n";
}

// ---------------------------------------------------------------------------
// Selftest: canned CSVs exercising loader, every rule, and the differ.
// ---------------------------------------------------------------------------

int g_checks = 0;
int g_failures = 0;

void Check(bool ok, const std::string& what) {
  g_checks++;
  if (!ok) {
    g_failures++;
    std::cerr << "selftest FAIL: " << what << "\n";
  }
}

TimelineCsv MustLoad(const std::string& text, const std::string& label) {
  TimelineCsv t;
  std::string error;
  std::istringstream in(text);
  Check(LoadTimelineCsv(in, label, &t, &error), label + " loads: " + error);
  return t;
}

// A clean run: brief migration burst, watermark fine, no aborts.
const char* const kCleanCsv =
    "time,tier.fast.free_frames,tier.fast.below_low_wm,pcq.pending,pcq.deferred,"
    "cnt.nomad.tpm_commit,cnt.nomad.tpm_abort,kpromote.degraded\n"
    "100,50,0,4,0,3,0,0\n"
    "200,48,0,3,0,5,1,0\n"
    "300,47,0,2,0,4,0,0\n"
    "400,47,0,0,0,0,0,0\n"
    "500,47,0,0,0,0,0,0\n";

// An abort storm: 9 aborts in window 3 and the degraded gauge turning on.
const char* const kStormCsv =
    "time,cnt.nomad.tpm_commit,cnt.nomad.tpm_abort,kpromote.degraded\n"
    "100,3,1,0\n"
    "200,2,4,0\n"
    "300,1,9,1\n"
    "400,0,2,1\n";

// Fast tier pinned under its low watermark from t=200 on.
const char* const kBreachCsv =
    "time,tier.fast.below_low_wm,cnt.nomad.tpm_commit\n"
    "100,0,1\n"
    "200,1,1\n"
    "300,1,0\n"
    "400,1,0\n"
    "500,1,0\n";

// Majority admission verdict flips accept->defer->accept->defer->accept.
const char* const kFlapCsv =
    "time,cnt.admission.accept,cnt.admission.defer\n"
    "100,5,1\n"
    "200,1,5\n"
    "300,5,1\n"
    "400,1,5\n"
    "500,5,1\n";

// Fast tier below its watermark only across the initial fill: exempt.
const char* const kStartupBreachCsv =
    "time,tier.fast.below_low_wm,cnt.nomad.tpm_commit\n"
    "100,1,1\n"
    "200,1,1\n"
    "300,1,0\n"
    "400,1,0\n"
    "500,0,0\n";

// Backlog explodes 10 -> 150 across a six-window span (>= 4x and >= 64).
const char* const kRunawayCsv =
    "time,pcq.pending,pcq.deferred\n"
    "100,10,0\n"
    "200,18,2\n"
    "300,30,5\n"
    "400,45,10\n"
    "500,62,18\n"
    "600,85,25\n"
    "700,115,35\n";

// Backlog creeps up slowly forever (bandwidth-bound PCQ fill): not flagged.
const char* const kCreepCsv =
    "time,pcq.pending,pcq.deferred\n"
    "100,60,0\n"
    "200,70,0\n"
    "300,80,0\n"
    "400,90,0\n"
    "500,100,0\n"
    "600,110,0\n"
    "700,120,0\n"
    "800,130,0\n";

// Sharded progress for the skew rule.
const char* const kShardFastCsv = "time,shard.ops_done,shard.epoch\n100,900,1\n200,2000,2\n";
const char* const kShardSlowCsv = "time,shard.ops_done,shard.epoch\n100,400,1\n200,1000,2\n";

bool HasRule(const std::vector<Anomaly>& as, const std::string& rule) {
  for (const Anomaly& a : as) {
    if (a.rule == rule) {
      return true;
    }
  }
  return false;
}

void RunSelftest() {
  const Thresholds th;

  {
    TimelineCsv t;
    std::string error;
    std::istringstream in("time,not.a.channel\n1,2\n");
    Check(!LoadTimelineCsv(in, "bad", &t, &error) &&
              error.find("unregistered") != std::string::npos,
          "loader rejects unregistered channels");
    std::istringstream in2("time,pcq.pending\n1,2,3\n");
    Check(!LoadTimelineCsv(in2, "ragged", &t, &error), "loader rejects ragged rows");
  }

  const TimelineCsv clean = MustLoad(kCleanCsv, "clean");
  {
    Check(clean.time.size() == 5 && clean.channels.size() == 7, "clean CSV shape");
    const std::vector<Anomaly> as = DetectAnomalies(clean, th);
    Check(as.empty(), "clean run reports zero anomalies");
    const std::vector<Phase> phases = BreakPhases(clean);
    Check(phases.size() == 2 && phases[0].migrating && !phases[1].migrating,
          "phase breakdown splits migrating/quiescent");
    Check(phases[0].moved_pages == 12, "phase aggregates moved pages");
  }
  {
    const std::vector<Anomaly> as = DetectAnomalies(MustLoad(kStormCsv, "storm"), th);
    Check(HasRule(as, "abort_storm"), "abort storm detected");
    Check(as.size() == 1 && as[0].onset_time == 300, "storm onset at the right window");
  }
  {
    const std::vector<Anomaly> as = DetectAnomalies(MustLoad(kBreachCsv, "breach"), th);
    Check(HasRule(as, "watermark_breach"), "watermark breach detected");
    Check(as.size() == 1 && as[0].onset_time == 200, "breach onset at first bad window");
    const std::vector<Anomaly> startup =
        DetectAnomalies(MustLoad(kStartupBreachCsv, "startup"), th);
    Check(startup.empty(), "initial fill transient is exempt from breach rule");
  }
  {
    const std::vector<Anomaly> as = DetectAnomalies(MustLoad(kFlapCsv, "flap"), th);
    Check(HasRule(as, "verdict_flapping"), "verdict flapping detected");
  }
  {
    const std::vector<Anomaly> as = DetectAnomalies(MustLoad(kRunawayCsv, "runaway"), th);
    Check(HasRule(as, "queue_runaway"), "queue runaway detected");
    Check(as.size() == 1 && as[0].onset_time == 100, "runaway onset at growth start");
    const std::vector<Anomaly> creep = DetectAnomalies(MustLoad(kCreepCsv, "creep"), th);
    Check(creep.empty(), "slow steady backlog accumulation is not a runaway");
  }
  {
    std::vector<TimelineCsv> shards;
    shards.push_back(MustLoad(kShardFastCsv, "shard0"));
    shards.push_back(MustLoad(kShardSlowCsv, "shard1"));
    std::vector<Anomaly> as;
    DetectShardSkew(shards, th, &as);
    Check(HasRule(as, "shard_skew"), "shard skew detected across files");
    std::vector<TimelineCsv> balanced;
    balanced.push_back(MustLoad(kShardFastCsv, "shard0"));
    balanced.push_back(MustLoad(kShardFastCsv, "shard0b"));
    as.clear();
    DetectShardSkew(balanced, th, &as);
    Check(as.empty(), "balanced shards report no skew");
  }
  {
    const DiffReport same = DiffTimelines(clean, clean);
    Check(same.identical(), "self-diff is identical");
    const TimelineCsv storm = MustLoad(kStormCsv, "storm");
    const DiffReport d = DiffTimelines(clean, storm);
    Check(!d.identical() && d.time_mismatch, "diff flags shape mismatch");
    Check(!d.only_a.empty(), "diff lists channels missing from one side");
  }
}

int Usage() {
  std::cerr << "usage: timeline_report --in=FILE[,FILE...] [--check] [--expect=RULES]\n"
               "                       [--diff=A,B]\n"
               "                       [--abort_storm_min=N] [--breach_windows=N]\n"
               "                       [--flap_min=N] [--flap_span=N]\n"
               "                       [--runaway_windows=N] [--runaway_ratio=R]\n"
               "                       [--runaway_min=N] [--skew_ratio=R] [--selftest]\n";
  return 2;
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool selftest = flags.GetBool("selftest");
  const std::vector<std::string> inputs = SplitList(flags.GetString("in"));
  const std::vector<std::string> diff_paths = SplitList(flags.GetString("diff"));
  const bool check = flags.GetBool("check");
  const std::vector<std::string> expect = SplitList(flags.GetString("expect"));
  Thresholds th;
  th.abort_storm_min = flags.GetUint("abort_storm_min", th.abort_storm_min);
  th.breach_windows = flags.GetUint("breach_windows", th.breach_windows);
  th.flap_min = flags.GetUint("flap_min", th.flap_min);
  th.flap_span = flags.GetUint("flap_span", th.flap_span);
  th.runaway_windows = flags.GetUint("runaway_windows", th.runaway_windows);
  th.runaway_ratio = flags.GetDouble("runaway_ratio", th.runaway_ratio);
  th.runaway_min = flags.GetUint("runaway_min", th.runaway_min);
  th.skew_ratio = flags.GetDouble("skew_ratio", th.skew_ratio);
  if (!flags.UnusedKeys().empty()) {
    return Usage();
  }
  if (selftest) {
    RunSelftest();
    std::cout << "timeline_report selftest: " << (g_checks - g_failures) << "/" << g_checks
              << " checks passed\n";
    return g_failures == 0 ? 0 : 1;
  }

  if (!diff_paths.empty()) {
    if (diff_paths.size() != 2) {
      std::cerr << "error: --diff wants exactly two comma-separated files\n";
      return 2;
    }
    std::vector<TimelineCsv> sides;
    for (const std::string& path : diff_paths) {
      std::ifstream in(path);
      TimelineCsv t;
      std::string error;
      if (!in || !LoadTimelineCsv(in, path, &t, &error)) {
        std::cerr << "error: " << (in ? error : "cannot open " + path) << "\n";
        return 1;
      }
      sides.push_back(std::move(t));
    }
    const DiffReport d = DiffTimelines(sides[0], sides[1]);
    PrintDiff(d, diff_paths[0], diff_paths[1]);
    return check && !d.identical() ? 1 : 0;
  }

  if (inputs.empty()) {
    return Usage();
  }
  std::vector<TimelineCsv> files;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    TimelineCsv t;
    std::string error;
    if (!in || !LoadTimelineCsv(in, path, &t, &error)) {
      std::cerr << "error: " << (in ? error : "cannot open " + path) << "\n";
      return 1;
    }
    files.push_back(std::move(t));
  }

  std::vector<Anomaly> all;
  for (const TimelineCsv& t : files) {
    const std::vector<Anomaly> as = DetectAnomalies(t, th);
    PrintReport(t, as);
    all.insert(all.end(), as.begin(), as.end());
  }
  std::vector<Anomaly> cross;
  DetectShardSkew(files, th, &cross);
  for (const Anomaly& a : cross) {
    std::cout << "cross-file anomaly: " << a.rule << ": " << a.detail << "\n";
  }
  all.insert(all.end(), cross.begin(), cross.end());

  int rc = 0;
  for (const std::string& rule : expect) {
    bool found = false;
    for (const Anomaly& a : all) {
      found = found || a.rule == rule;
    }
    if (!found) {
      std::cerr << "error: expected anomaly '" << rule << "' did not fire\n";
      rc = 1;
    }
  }
  if (check && expect.empty() && !all.empty()) {
    std::cerr << "error: --check: " << all.size() << " anomaly(ies) detected\n";
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Main(argc, argv); }
