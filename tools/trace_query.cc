// trace_query: offline analysis over the simulator's exported artifacts.
//
// Consumes the chrome://tracing JSON written by --trace_out and/or the
// metrics.json written by --metrics_out, with no external dependencies (a
// small recursive-descent JSON reader lives in this file). Core jobs:
//
//   summary              (default with --trace) event counts per name/actor
//   --event= / --actor=  filter the summary to one event type / one actor
//   --from_us/--to_us    restrict every query to a time window
//   --pair=tpm           pair tpm B/E slices into per-transaction latencies,
//                        bucket them with the same HDR histogram the
//                        simulator uses, and print p50/p90/p99 — committed
//                        transactions only, so the numbers are directly
//                        comparable to the "migration.latency" histogram in
//                        metrics.json (--check enforces agreement to within
//                        one histogram bucket)
//   --hist=NAME          print a named histogram from metrics.json runs
//   --top=N              reconstruct per-page thrash scores (ping-pongs,
//                        re-dirties, aborts) from promote/demote/
//                        shadow_fault/tpm_abort instants and rank pages
//   --span               reconstruct per-migration lifecycle spans from the
//                        mig_* span-link events (--spans runs): per-span
//                        waterfalls, where-time-goes attribution across the
//                        whole run, and the abort-chain listing; --check
//                        fails if more spans are mid-transaction than there
//                        are kpromote actors to carry them
//   --span_id=N          print one migration's full waterfall
//   --selftest           run the embedded checks on canned documents
//
// Cycle conversion: trace timestamps are microseconds (ts = cycles/(ghz*1e3)),
// so --ghz (or the "ghz" field of the first metrics run) recovers cycles.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/flags.h"
#include "src/obs/event_registry.h"
#include "src/obs/hist.h"

namespace nomad {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. Numbers are doubles: every value the simulator
// exports (timestamps, vpns, counts) fits a double's 53-bit mantissa at the
// scales the sim runs at.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // preserves order

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  double Num(const std::string& key, double def = 0) const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : def;
  }
  std::string Str(const std::string& key, const std::string& def = "") const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : def;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool Parse(JsonValue* out) {
    *out = Value();
    SkipWs();
    return ok_ && pos_ == text_.size();
  }

  std::string error() const { return error_; }

 private:
  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool Literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue Value() {
    SkipWs();
    if (!ok_ || pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return JsonValue{};
    }
    const char c = text_[pos_];
    JsonValue v;
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = String();
      return v;
    }
    if (Literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (Literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (Literal("null")) {
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return Number();
    }
    Fail(std::string("unexpected character '") + c + "'");
    return v;
  }

  JsonValue Object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Eat('{');
    if (Eat('}')) {
      return v;
    }
    while (ok_) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        return v;
      }
      std::string key = String();
      if (!Eat(':')) {
        Fail("expected ':'");
        return v;
      }
      v.obj.emplace_back(std::move(key), Value());
      if (Eat(',')) {
        continue;
      }
      if (!Eat('}')) {
        Fail("expected ',' or '}'");
      }
      return v;
    }
    return v;
  }

  JsonValue Array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Eat('[');
    if (Eat(']')) {
      return v;
    }
    while (ok_) {
      v.arr.push_back(Value());
      if (Eat(',')) {
        continue;
      }
      if (!Eat(']')) {
        Fail("expected ',' or ']'");
      }
      return v;
    }
    return v;
  }

  std::string String() {
    std::string s;
    pos_++;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n': s.push_back('\n'); break;
        case 't': s.push_back('\t'); break;
        case 'r': s.push_back('\r'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'u': {
          // The exporter only escapes control characters; decode the
          // code point as a single byte (sufficient for ASCII range).
          if (pos_ + 4 <= text_.size()) {
            const unsigned long cp = std::stoul(text_.substr(pos_, 4), nullptr, 16);
            s.push_back(static_cast<char>(cp & 0x7f));
            pos_ += 4;
          }
          break;
        }
        default: s.push_back(esc); break;
      }
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return s;
    }
    pos_++;  // closing quote
    return s;
  }

  JsonValue Number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      pos_++;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string text_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace model: the flattened event list plus the tid -> actor-name map.
// ---------------------------------------------------------------------------

struct TraceEvt {
  std::string name;
  std::string ph;       // "B", "E", "i" (metadata rows are not kept)
  std::string outcome;  // E-events: args.outcome
  double ts_us = 0;
  uint64_t tid = 0;
  double arg = 0;    // args.arg (vpn for page events)
  double value = 0;  // args.value (migration id for mig_* span events)
};

struct TraceDoc {
  std::vector<TraceEvt> events;
  std::map<uint64_t, std::string> actor_names;
};

bool LoadTrace(const JsonValue& root, TraceDoc* doc, std::string* error) {
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *error = "document has no traceEvents array";
    return false;
  }
  for (const JsonValue& e : events->arr) {
    const std::string ph = e.Str("ph");
    const uint64_t tid = static_cast<uint64_t>(e.Num("tid"));
    if (ph == "M") {
      if (e.Str("name") == "thread_name") {
        const JsonValue* a = e.Get("args");
        doc->actor_names[tid] = a != nullptr ? a->Str("name") : "";
      }
      continue;
    }
    TraceEvt evt;
    evt.name = e.Str("name");
    evt.ph = ph;
    evt.ts_us = e.Num("ts");
    evt.tid = tid;
    if (const JsonValue* a = e.Get("args")) {
      evt.arg = a->Num("arg");
      evt.value = a->Num("value");
      evt.outcome = a->Str("outcome");
    }
    doc->events.push_back(std::move(evt));
  }
  return true;
}

struct Filter {
  std::string event;   // empty = all
  std::string actor;   // empty = all
  double from_us = -1;
  double to_us = -1;   // negative = unbounded

  bool Matches(const TraceEvt& e, const TraceDoc& doc) const {
    if (!event.empty() && e.name != event) {
      return false;
    }
    if (!actor.empty()) {
      const auto it = doc.actor_names.find(e.tid);
      if (it == doc.actor_names.end() || it->second != actor) {
        return false;
      }
    }
    if (from_us >= 0 && e.ts_us < from_us) {
      return false;
    }
    if (to_us >= 0 && e.ts_us > to_us) {
      return false;
    }
    return true;
  }
};

// Pairs B/E duration slices named `name` per attempt and returns committed
// durations in cycles. An end pairs with the open begin carrying the same
// (tid, arg) key — for tpm slices arg is the vpn — so a transaction that
// aborts and retries on the same page within one window books one pair per
// attempt instead of first-begin-with-last-end. A begin arriving while its
// key is already open replaces the stale begin (whose end was lost to ring
// wraparound or the window filter) rather than stacking under it, so a lost
// end can never pair a later end across attempts. Ends whose outcome is not
// a commit (aborts, still in flight at exit) consume their begin but produce
// no sample, mirroring the simulator's histogram which records at commit
// only.
std::vector<uint64_t> PairDurations(const TraceDoc& doc, const Filter& filter,
                                    const std::string& name, double ghz) {
  std::map<std::pair<uint64_t, uint64_t>, double> open;  // (tid, arg) -> begin ts
  std::vector<uint64_t> samples;
  for (const TraceEvt& e : doc.events) {
    if (e.name != name || !filter.Matches(e, doc)) {
      continue;
    }
    const std::pair<uint64_t, uint64_t> key{e.tid, static_cast<uint64_t>(e.arg)};
    if (e.ph == "B") {
      open[key] = e.ts_us;
      continue;
    }
    if (e.ph != "E") {
      continue;
    }
    const auto it = open.find(key);
    if (it == open.end()) {
      continue;  // begin lost to ring wraparound (or a synthetic close)
    }
    const double begin = it->second;
    open.erase(it);
    if (e.outcome != "tpm_commit") {
      continue;  // aborted or dangling: no latency sample was booked
    }
    samples.push_back(
        static_cast<uint64_t>(std::llround((e.ts_us - begin) * ghz * 1e3)));
  }
  return samples;
}

// Per-page lifecycle reconstruction from instant events: the trace-side
// mirror of the in-sim provenance ledger. A demote that lands while the
// page is promoted is a ping-pong; shadow faults after promotion are
// re-dirties.
struct PageStats {
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t aborts = 0;
  uint64_t redirties = 0;
  uint64_t ping_pongs = 0;
  bool promoted_live = false;

  uint64_t Score() const { return 2 * ping_pongs + redirties + aborts; }
};

std::map<uint64_t, PageStats> ReplayPages(const TraceDoc& doc, const Filter& filter) {
  std::map<uint64_t, PageStats> pages;
  for (const TraceEvt& e : doc.events) {
    if (!filter.Matches(e, doc)) {
      continue;
    }
    const uint64_t vpn = static_cast<uint64_t>(e.arg);
    // TPM promotions/aborts surface as the "tpm" duration slice's end, not
    // as separate instants; the slice's arg is the vpn.
    if (e.name == "tpm" && e.ph == "E") {
      if (e.outcome == "tpm_commit") {
        PageStats& p = pages[vpn];
        p.promotions++;
        p.promoted_live = true;
      } else if (e.outcome == "tpm_abort") {
        pages[vpn].aborts++;
      }
      continue;
    }
    if (e.ph != "i") {
      continue;
    }
    if (e.name == "promote") {
      PageStats& p = pages[vpn];
      p.promotions++;
      p.promoted_live = true;
    } else if (e.name == "demote") {
      PageStats& p = pages[vpn];
      p.demotions++;
      if (p.promoted_live) {
        p.ping_pongs++;
        p.promoted_live = false;
      }
    } else if (e.name == "shadow_fault") {
      PageStats& p = pages[vpn];
      if (p.promoted_live) {
        p.redirties++;
      }
    } else if (e.name == "tpm_abort") {
      pages[vpn].aborts++;
    }
  }
  return pages;
}

struct Thrasher {
  uint64_t vpn = 0;
  PageStats stats;
};

std::vector<Thrasher> TopThrashers(const std::map<uint64_t, PageStats>& pages, size_t n) {
  std::vector<Thrasher> out;
  for (const auto& [vpn, stats] : pages) {
    if (stats.Score() > 0) {
      out.push_back(Thrasher{vpn, stats});
    }
  }
  std::sort(out.begin(), out.end(), [](const Thrasher& a, const Thrasher& b) {
    if (a.stats.Score() != b.stats.Score()) {
      return a.stats.Score() > b.stats.Score();
    }
    return a.vpn < b.vpn;
  });
  if (out.size() > n) {
    out.resize(n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Migration-lifecycle span reconstruction (--span). Runs recorded with
// --spans stamp every mig_* instant with the migration transaction id in
// args.value; grouping by id rebuilds the causal waterfall scanner hint ->
// PCQ residency -> kpromote dequeue -> TPM attempt(s)/aborts/retries ->
// commit or downgrade-to-sync -> shadow free.
// ---------------------------------------------------------------------------

struct MigSpan {
  uint64_t id = 0;
  std::vector<const TraceEvt*> events;  // ring order == time order
  uint64_t attempts = 0;
  uint64_t aborts = 0;
  uint64_t vpn = 0;
  bool have_vpn = false;
  std::string terminal;  // outcome name; empty until a non-abort verdict lands
  // "complete" (terminal verdict seen), "queued" (back in the PCQ at trace
  // end), or "in_flight" (mid-transaction at trace end).
  std::string state;
  std::vector<std::string> outcome_seq;  // e.g. abort,abort,commit
};

std::map<uint64_t, MigSpan> BuildSpans(const TraceDoc& doc, const Filter& filter) {
  std::map<uint64_t, MigSpan> spans;
  for (const TraceEvt& e : doc.events) {
    if (e.ph != "i" || e.name.compare(0, 4, "mig_") != 0 || !filter.Matches(e, doc)) {
      continue;
    }
    const uint64_t id = static_cast<uint64_t>(e.value);
    if (id == 0) {
      continue;  // recorded before span tracing was enabled; no id assigned
    }
    MigSpan& s = spans[id];
    s.id = id;
    s.events.push_back(&e);
    if (e.name == "mig_dequeue") {
      s.vpn = static_cast<uint64_t>(e.arg);
      s.have_vpn = true;
    } else if (e.name == "mig_attempt") {
      s.attempts++;
    } else if (e.name == "mig_outcome") {
      const auto code = static_cast<uint64_t>(e.arg);
      if (code >= static_cast<uint64_t>(MigOutcome::kNumOutcomes)) {
        continue;
      }
      const MigOutcome o = static_cast<MigOutcome>(code);
      s.outcome_seq.emplace_back(MigOutcomeName(o));
      if (o == MigOutcome::kAbort) {
        s.aborts++;
      } else {
        s.terminal = MigOutcomeName(o);
      }
    }
  }
  for (auto& [id, s] : spans) {
    const std::string& last = s.events.back()->name;
    if (!s.terminal.empty()) {
      s.state = "complete";
    } else if (last == "mig_nominate" || last == "mig_hot" || last == "mig_defer") {
      s.state = "queued";
    } else {
      s.state = "in_flight";
    }
  }
  return spans;
}

// Attributes the inter-event gap ending at `cur` to a lifecycle phase: the
// where-time-goes buckets are named for what the migration was waiting on.
const char* SpanPhase(const std::string& prev, const std::string& cur) {
  if (cur == "mig_hot") {
    return "pcq_cold";  // enqueued, waiting to be deemed hot
  }
  if (cur == "mig_dequeue") {
    return "queue_wait";  // hot, waiting for kpromote to pick it up
  }
  if (cur == "mig_attempt") {
    // A first attempt follows its dequeue immediately; attempts after an
    // abort verdict or an admission defer ate backoff first.
    return prev == "mig_defer" || prev == "mig_outcome" ? "retry_backoff" : "dispatch";
  }
  if (cur == "mig_outcome") {
    return "tpm_copy";  // attempt begin -> verdict: the transactional copy
  }
  if (cur == "mig_defer") {
    return "defer";
  }
  if (cur == "mig_shadow_free") {
    return "shadow_residency";  // committed -> shadow page reclaimed
  }
  return "requeue";  // a fresh mig_nominate after an abort put it back
}

struct PhaseAgg {
  uint64_t count = 0;
  double total_us = 0;
};

std::map<std::string, PhaseAgg> AttributeSpanTime(const std::map<uint64_t, MigSpan>& spans) {
  std::map<std::string, PhaseAgg> agg;
  for (const auto& [id, s] : spans) {
    for (size_t i = 1; i < s.events.size(); i++) {
      PhaseAgg& p = agg[SpanPhase(s.events[i - 1]->name, s.events[i]->name)];
      p.count++;
      p.total_us += s.events[i]->ts_us - s.events[i - 1]->ts_us;
    }
  }
  return agg;
}

std::string SpanEventDetail(const TraceEvt& e) {
  const auto arg = static_cast<uint64_t>(e.arg);
  if (e.name == "mig_nominate" || e.name == "mig_hot") {
    return "pfn=" + std::to_string(arg);
  }
  if (e.name == "mig_dequeue") {
    return "vpn=" + std::to_string(arg);
  }
  if (e.name == "mig_attempt") {
    return "attempt=" + std::to_string(arg);
  }
  if (e.name == "mig_outcome") {
    const bool known = arg < static_cast<uint64_t>(MigOutcome::kNumOutcomes);
    return std::string("outcome=") +
           (known ? MigOutcomeName(static_cast<MigOutcome>(arg)) : "?");
  }
  if (e.name == "mig_defer") {
    return "retry_at_cycle=" + std::to_string(arg);
  }
  if (e.name == "mig_shadow_free") {
    return "master_pfn=" + std::to_string(arg);
  }
  return "";
}

void PrintSpanWaterfall(const MigSpan& s, const TraceDoc& doc) {
  std::cout << "span " << s.id << ": state=" << s.state;
  if (s.have_vpn) {
    std::cout << " vpn=" << s.vpn;
  }
  std::cout << " attempts=" << s.attempts << " aborts=" << s.aborts << "\n";
  double prev_ts = s.events.front()->ts_us;
  for (const TraceEvt* e : s.events) {
    const auto it = doc.actor_names.find(e->tid);
    std::cout << "  " << e->ts_us << " us  (+" << (e->ts_us - prev_ts) << " us)  "
              << e->name << " " << SpanEventDetail(*e) << "  ["
              << (it == doc.actor_names.end() ? std::string("?") : it->second) << "]\n";
    prev_ts = e->ts_us;
  }
}

// Prints the span report; with `check`, fails if more spans are stuck
// mid-transaction than there are kpromote actors to legitimately hold one
// open at trace end (one in-flight transaction per promotion daemon).
int ReportSpans(const TraceDoc& doc, const Filter& filter, uint64_t span_id, bool check) {
  const std::map<uint64_t, MigSpan> spans = BuildSpans(doc, filter);
  uint64_t complete = 0, queued = 0, in_flight = 0;
  std::map<std::string, uint64_t> verdicts;
  std::vector<const MigSpan*> abort_chains;
  std::map<uint64_t, uint64_t> kpromote_tids;  // tid -> dequeues seen
  for (const auto& [id, s] : spans) {
    if (s.state == "complete") {
      complete++;
      verdicts[s.terminal]++;
    } else if (s.state == "queued") {
      queued++;
    } else {
      in_flight++;
    }
    if (s.aborts > 0) {
      abort_chains.push_back(&s);
    }
    for (const TraceEvt* e : s.events) {
      if (e->name == "mig_dequeue") {
        kpromote_tids[e->tid]++;
      }
    }
  }
  std::cout << "spans: " << spans.size() << " migration(s) reconstructed  complete="
            << complete << " queued=" << queued << " in_flight=" << in_flight << "\n";
  if (!verdicts.empty()) {
    std::cout << "verdicts:";
    for (const auto& [name, count] : verdicts) {
      std::cout << " " << name << "=" << count;
    }
    std::cout << "\n";
  }
  const std::map<std::string, PhaseAgg> agg = AttributeSpanTime(spans);
  std::cout << "where-time-goes (us):\n";
  for (const auto& [phase, p] : agg) {
    std::cout << "  " << phase << ": total=" << p.total_us << " count=" << p.count
              << " mean=" << (p.count > 0 ? p.total_us / static_cast<double>(p.count) : 0)
              << "\n";
  }
  std::cout << "abort chains: " << abort_chains.size() << " migration(s) with aborts\n";
  constexpr size_t kMaxChains = 20;
  for (size_t i = 0; i < abort_chains.size() && i < kMaxChains; i++) {
    const MigSpan& s = *abort_chains[i];
    std::cout << "  id=" << s.id << (s.have_vpn ? " vpn=" + std::to_string(s.vpn) : "")
              << " attempts=" << s.attempts << " state=" << s.state << " outcomes=";
    for (size_t j = 0; j < s.outcome_seq.size(); j++) {
      std::cout << (j > 0 ? "," : "") << s.outcome_seq[j];
    }
    std::cout << "\n";
  }
  if (abort_chains.size() > kMaxChains) {
    std::cout << "  ... and " << (abort_chains.size() - kMaxChains) << " more\n";
  }
  if (span_id != 0) {
    const auto it = spans.find(span_id);
    if (it == spans.end()) {
      std::cerr << "error: no span with id " << span_id << "\n";
      return 1;
    }
    PrintSpanWaterfall(it->second, doc);
  }
  if (check && in_flight > kpromote_tids.size()) {
    std::cerr << "error: --check: " << in_flight << " span(s) mid-transaction at trace "
              << "end but only " << kpromote_tids.size()
              << " kpromote actor(s); waterfalls are incomplete\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Command implementations.
// ---------------------------------------------------------------------------

bool LoadFile(const std::string& path, JsonValue* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParser parser(text);
  if (!parser.Parse(out)) {
    *error = path + ": " + parser.error();
    return false;
  }
  return true;
}

void PrintSummary(const TraceDoc& doc, const Filter& filter) {
  std::map<std::string, uint64_t> by_name;
  std::map<uint64_t, uint64_t> by_tid;
  double first = -1, last = -1;
  uint64_t total = 0;
  for (const TraceEvt& e : doc.events) {
    if (!filter.Matches(e, doc)) {
      continue;
    }
    total++;
    by_name[e.name + (e.ph == "B" ? " (begin)" : e.ph == "E" ? " (end)" : "")]++;
    by_tid[e.tid]++;
    if (first < 0 || e.ts_us < first) {
      first = e.ts_us;
    }
    last = std::max(last, e.ts_us);
  }
  std::cout << "events: " << total;
  if (total > 0) {
    std::cout << "  window: [" << first << " us, " << last << " us]";
  }
  std::cout << "\n";
  for (const auto& [name, count] : by_name) {
    std::cout << "  " << name << ": " << count << "\n";
  }
  std::cout << "actors:\n";
  for (const auto& [tid, count] : by_tid) {
    const auto it = doc.actor_names.find(tid);
    std::cout << "  tid " << tid << " ("
              << (it == doc.actor_names.end() ? std::string("?") : it->second)
              << "): " << count << "\n";
  }
}

struct PairReport {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

PairReport ReportPairs(const std::vector<uint64_t>& samples) {
  Histogram h;
  PairReport r;
  for (const uint64_t s : samples) {
    h.Record(s);
  }
  r.count = h.count();
  r.p50 = h.Quantile(0.50);
  r.p90 = h.Quantile(0.90);
  r.p99 = h.Quantile(0.99);
  r.max = h.Max();
  return r;
}

// Width of the histogram bucket holding `value`: the agreement tolerance
// when cross-checking a trace-derived percentile against the simulator's.
uint64_t BucketWidthAt(uint64_t value) {
  const int b = Histogram::BucketFor(value);
  return Histogram::BucketHi(b) - Histogram::BucketLo(b);
}

// ---------------------------------------------------------------------------
// Selftest: canned documents exercising the same functions the CLI uses.
// ---------------------------------------------------------------------------

int g_checks = 0;
int g_failures = 0;

void Check(bool ok, const std::string& what) {
  g_checks++;
  if (!ok) {
    g_failures++;
    std::cerr << "selftest FAIL: " << what << "\n";
  }
}

// ghz=2: 1 us == 2000 cycles. Two committed tpm slices (2000 and 6000
// cycles), one abort, one in-flight close, plus promote/demote/shadow_fault
// instants for the thrash replay.
const char* const kSelftestTrace = R"({
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 3,
     "args": {"name": "kpromote"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
     "args": {"name": "app-0"}},
    {"name": "tpm", "ph": "B", "ts": 1.0, "pid": 0, "tid": 3,
     "args": {"arg": 70, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 2.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 70}},
    {"name": "tpm", "ph": "B", "ts": 4.5, "pid": 0, "tid": 3,
     "args": {"arg": 71, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 5.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_abort", "arg": 71}},
    {"name": "tpm", "ph": "B", "ts": 6.0, "pid": 0, "tid": 3,
     "args": {"arg": 72, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 9.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 72}},
    {"name": "shadow_fault", "ph": "i", "s": "t", "ts": 9.5, "pid": 0, "tid": 1,
     "args": {"arg": 72, "value": 0}},
    {"name": "demote", "ph": "i", "s": "t", "ts": 10.0, "pid": 0, "tid": 4,
     "args": {"arg": 72, "value": 120}},
    {"name": "promote", "ph": "i", "s": "t", "ts": 11.0, "pid": 0, "tid": 3,
     "args": {"arg": 72, "value": 0}},
    {"name": "demote", "ph": "i", "s": "t", "ts": 12.0, "pid": 0, "tid": 4,
     "args": {"arg": 72, "value": 120}},
    {"name": "tpm", "ph": "B", "ts": 13.0, "pid": 0, "tid": 3,
     "args": {"arg": 73, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 13.5, "pid": 0, "tid": 3,
     "args": {"outcome": "in_flight_at_exit"}}
  ]
})";

// Per-attempt pairing regression doc (ghz=2): pfn 70 aborts then retries and
// commits within one window; pfn 80 loses an end to ring wraparound, retries,
// commits, and then a spurious late end arrives. Stack-based pairing used to
// book the late end against the stale pfn-80 begin (a bogus 20000-cycle
// sample); per-attempt pairing books exactly the two real commits.
const char* const kSelftestRetryTrace = R"({
  "traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 3,
     "args": {"name": "kpromote"}},
    {"name": "tpm", "ph": "B", "ts": 1.0, "pid": 0, "tid": 3,
     "args": {"arg": 70, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 2.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_abort", "arg": 70}},
    {"name": "tpm", "ph": "B", "ts": 6.0, "pid": 0, "tid": 3,
     "args": {"arg": 70, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 9.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 70}},
    {"name": "tpm", "ph": "B", "ts": 10.0, "pid": 0, "tid": 3,
     "args": {"arg": 80, "value": 0}},
    {"name": "tpm", "ph": "B", "ts": 12.0, "pid": 0, "tid": 3,
     "args": {"arg": 80, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 13.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 80}},
    {"name": "tpm", "ph": "E", "ts": 20.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 80}}
  ]
})";

// Span-link doc: migration 1 runs the full lifecycle with one abort+retry
// (scanner tid 5 nominates, kpromote tid 3 executes), migration 2 is mid-
// transaction at trace end, migration 3 is still queued.
const char* const kSelftestSpanTrace = R"({
  "traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 3,
     "args": {"name": "kpromote"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 5,
     "args": {"name": "scanner"}},
    {"name": "mig_nominate", "ph": "i", "s": "t", "ts": 1.0, "pid": 0, "tid": 5,
     "args": {"arg": 9, "value": 1}},
    {"name": "mig_nominate", "ph": "i", "s": "t", "ts": 2.0, "pid": 0, "tid": 5,
     "args": {"arg": 10, "value": 2}},
    {"name": "mig_hot", "ph": "i", "s": "t", "ts": 2.0, "pid": 0, "tid": 5,
     "args": {"arg": 9, "value": 1}},
    {"name": "mig_hot", "ph": "i", "s": "t", "ts": 2.5, "pid": 0, "tid": 5,
     "args": {"arg": 10, "value": 2}},
    {"name": "mig_dequeue", "ph": "i", "s": "t", "ts": 3.0, "pid": 0, "tid": 3,
     "args": {"arg": 40, "value": 1}},
    {"name": "mig_attempt", "ph": "i", "s": "t", "ts": 3.2, "pid": 0, "tid": 3,
     "args": {"arg": 1, "value": 1}},
    {"name": "mig_outcome", "ph": "i", "s": "t", "ts": 4.0, "pid": 0, "tid": 3,
     "args": {"arg": 1, "value": 1}},
    {"name": "mig_nominate", "ph": "i", "s": "t", "ts": 4.0, "pid": 0, "tid": 5,
     "args": {"arg": 11, "value": 3}},
    {"name": "mig_defer", "ph": "i", "s": "t", "ts": 4.1, "pid": 0, "tid": 3,
     "args": {"arg": 9000, "value": 1}},
    {"name": "mig_dequeue", "ph": "i", "s": "t", "ts": 5.0, "pid": 0, "tid": 3,
     "args": {"arg": 41, "value": 2}},
    {"name": "mig_attempt", "ph": "i", "s": "t", "ts": 5.5, "pid": 0, "tid": 3,
     "args": {"arg": 1, "value": 2}},
    {"name": "mig_attempt", "ph": "i", "s": "t", "ts": 6.0, "pid": 0, "tid": 3,
     "args": {"arg": 2, "value": 1}},
    {"name": "mig_outcome", "ph": "i", "s": "t", "ts": 7.0, "pid": 0, "tid": 3,
     "args": {"arg": 0, "value": 1}},
    {"name": "mig_shadow_free", "ph": "i", "s": "t", "ts": 9.0, "pid": 0, "tid": 3,
     "args": {"arg": 9, "value": 1}}
  ]
})";

const char* const kSelftestMetrics = R"({
  "schema": "nomad-metrics-v1",
  "benchmark": "selftest",
  "runs": [
    {"label": "nomad", "ghz": 2.0,
     "histograms": {
       "migration.latency": {"count": 2, "mean": 4000.0, "p50": 1920,
                             "p90": 1920, "p99": 1920, "max": 6000}
     }}
  ]
})";

void RunSelftest() {
  // Parser basics: escapes, nesting, numbers.
  {
    JsonValue v;
    JsonParser p(R"({"a": [1, 2.5, -3e2], "s": "x\"y\n", "t": true, "n": null})");
    Check(p.Parse(&v), "parser accepts valid document");
    const JsonValue* a = v.Get("a");
    Check(a != nullptr && a->arr.size() == 3, "array parsed");
    Check(a != nullptr && a->arr.size() == 3 && a->arr[2].number == -300.0,
          "exponent parsed");
    Check(v.Str("s") == "x\"y\n", "string escapes decoded");
    Check(v.Get("t") != nullptr && v.Get("t")->boolean, "bool parsed");
    Check(v.Get("n") != nullptr && v.Get("n")->kind == JsonValue::Kind::kNull,
          "null parsed");
  }
  {
    JsonValue v;
    JsonParser p(R"({"a": })");
    Check(!p.Parse(&v), "parser rejects malformed document");
  }

  JsonValue root;
  std::string error;
  {
    JsonParser p(kSelftestTrace);
    Check(p.Parse(&root), "selftest trace parses: " + p.error());
  }
  TraceDoc doc;
  Check(LoadTrace(root, &doc, &error), "trace model loads");
  Check(doc.actor_names.at(3) == "kpromote", "thread_name metadata mapped");

  // Pairing: two commits survive; the abort and the dangling close do not.
  {
    const std::vector<uint64_t> samples = PairDurations(doc, Filter{}, "tpm", 2.0);
    Check(samples.size() == 2, "pairing keeps committed slices only");
    Check(samples.size() == 2 && samples[0] == 2000 && samples[1] == 6000,
          "paired durations convert us to cycles");
    const PairReport r = ReportPairs(samples);
    Check(r.count == 2 && r.max == 6000, "pair report count/max");
    // The estimator targets rank floor(q*(count-1)): with two samples every
    // quantile below 1.0 resolves to the first sample's bucket floor.
    Check(r.p99 == Histogram::BucketLo(Histogram::BucketFor(2000)),
          "p99 matches the bucket estimator");
  }

  // Window and actor filters.
  {
    Filter f;
    f.from_us = 5.5;
    const std::vector<uint64_t> samples = PairDurations(doc, f, "tpm", 2.0);
    Check(samples.size() == 1 && samples[0] == 6000, "from_us drops early slices");
    Filter fa;
    fa.actor = "app-0";
    uint64_t matches = 0;
    for (const TraceEvt& e : doc.events) {
      matches += fa.Matches(e, doc) ? 1 : 0;
    }
    Check(matches == 1, "actor filter selects app events only");
  }

  // Thrash replay: page 72 promoted twice, demoted twice while live
  // (2 ping-pongs), one shadow fault while promoted (1 re-dirty); page 71
  // aborted once; page 70 promoted and kept (score 0, excluded).
  {
    const std::map<uint64_t, PageStats> pages = ReplayPages(doc, Filter{});
    const PageStats& p72 = pages.at(72);
    Check(p72.ping_pongs == 2 && p72.redirties == 1 && p72.Score() == 5,
          "page 72 lifecycle replayed");
    const std::vector<Thrasher> top = TopThrashers(pages, 10);
    Check(top.size() == 2, "score-0 pages excluded from top list");
    Check(top.size() == 2 && top[0].vpn == 72 && top[1].vpn == 71,
          "thrashers ranked by score");
  }

  // Per-attempt pairing: the same-pfn abort+retry books the retry's own
  // duration, the lost end never pairs across attempts, and the spurious
  // late end is dropped on the floor.
  {
    JsonValue retry_root;
    JsonParser p(kSelftestRetryTrace);
    Check(p.Parse(&retry_root), "retry trace parses: " + p.error());
    TraceDoc retry_doc;
    Check(LoadTrace(retry_root, &retry_doc, &error), "retry trace model loads");
    const std::vector<uint64_t> samples =
        PairDurations(retry_doc, Filter{}, "tpm", 2.0);
    Check(samples.size() == 2, "retry pairing books one sample per attempt");
    Check(samples.size() == 2 && samples[0] == 6000 && samples[1] == 2000,
          "retry pairing durations are per-attempt, not first-begin-to-last-end");
  }

  // Span reconstruction: three migrations with distinct terminal states, an
  // abort chain on id 1, and gap attribution into lifecycle phases.
  {
    JsonValue span_root;
    JsonParser p(kSelftestSpanTrace);
    Check(p.Parse(&span_root), "span trace parses: " + p.error());
    TraceDoc span_doc;
    Check(LoadTrace(span_root, &span_doc, &error), "span trace model loads");
    const std::map<uint64_t, MigSpan> spans = BuildSpans(span_doc, Filter{});
    Check(spans.size() == 3, "three migration spans reconstructed");
    const MigSpan& s1 = spans.at(1);
    Check(s1.state == "complete" && s1.terminal == "commit", "span 1 committed");
    Check(s1.attempts == 2 && s1.aborts == 1, "span 1 attempt/abort counts");
    Check(s1.have_vpn && s1.vpn == 40, "span 1 vpn from dequeue");
    Check(s1.outcome_seq.size() == 2 && s1.outcome_seq[0] == "abort" &&
              s1.outcome_seq[1] == "commit",
          "span 1 abort chain sequence");
    Check(spans.at(2).state == "in_flight", "span 2 mid-transaction at trace end");
    Check(spans.at(3).state == "queued", "span 3 still queued");
    const std::map<std::string, PhaseAgg> agg = AttributeSpanTime(spans);
    Check(agg.count("tpm_copy") == 1 && agg.at("tpm_copy").count == 2 &&
              std::abs(agg.at("tpm_copy").total_us - 1.8) < 1e-9,
          "tpm_copy phase aggregates both verdicts of span 1");
    Check(agg.count("retry_backoff") == 1 &&
              std::abs(agg.at("retry_backoff").total_us - 1.9) < 1e-9,
          "abort backoff attributed to retry_backoff");
    Check(agg.count("shadow_residency") == 1 &&
              std::abs(agg.at("shadow_residency").total_us - 2.0) < 1e-9,
          "commit->free attributed to shadow_residency");
    // One span is legitimately in flight on the single kpromote actor, so
    // the completeness gate passes; narrowing the window so the in-flight
    // span loses its dequeue makes the same gate fail.
    Check(ReportSpans(span_doc, Filter{}, /*span_id=*/1, /*check=*/true) == 0,
          "span completeness gate passes with one in-flight per kpromote");
    Check(ReportSpans(span_doc, Filter{}, /*span_id=*/99, /*check=*/false) == 1,
          "unknown --span_id is an error");
    Filter tail;
    tail.from_us = 5.4;
    Check(ReportSpans(span_doc, tail, 0, /*check=*/true) == 1,
          "completeness gate fails when waterfalls are truncated");
  }

  // Metrics cross-check: trace-derived p99 within one bucket of the
  // exported histogram (the acceptance invariant, in miniature).
  {
    JsonValue metrics;
    JsonParser p(kSelftestMetrics);
    Check(p.Parse(&metrics), "selftest metrics parses");
    const JsonValue* runs = metrics.Get("runs");
    Check(runs != nullptr && !runs->arr.empty(), "metrics runs present");
    if (runs != nullptr && !runs->arr.empty()) {
      const double ghz = runs->arr[0].Num("ghz", 0);
      Check(ghz == 2.0, "ghz read from metrics");
      const JsonValue* h = runs->arr[0].Get("histograms");
      const JsonValue* m = h != nullptr ? h->Get("migration.latency") : nullptr;
      Check(m != nullptr, "histogram found in metrics");
      if (m != nullptr) {
        const uint64_t exported_p99 = static_cast<uint64_t>(m->Num("p99"));
        const PairReport r = ReportPairs(PairDurations(doc, Filter{}, "tpm", ghz));
        const uint64_t tol = BucketWidthAt(std::max(exported_p99, r.p99));
        const uint64_t diff =
            r.p99 > exported_p99 ? r.p99 - exported_p99 : exported_p99 - r.p99;
        Check(diff <= tol, "trace p99 within one bucket of exported p99");
      }
    }
  }
}

int Usage() {
  std::cerr
      << "usage: trace_query [--trace=PATH] [--metrics=PATH] [--event=NAME]\n"
         "                   [--actor=NAME] [--from_us=T] [--to_us=T] [--pair=tpm]\n"
         "                   [--ghz=G] [--run=LABEL] [--top=N] [--hist=NAME]\n"
         "                   [--span] [--span_id=N] [--check] [--selftest]\n";
  return 2;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool selftest = flags.GetBool("selftest");
  const std::string trace_path = flags.GetString("trace");
  const std::string metrics_path = flags.GetString("metrics");
  const std::string pair = flags.GetString("pair");
  const std::string run_label = flags.GetString("run");
  const std::string hist_name = flags.GetString("hist");
  const uint64_t top_n = flags.GetUint("top", 0);
  const bool span = flags.GetBool("span");
  const uint64_t span_id = flags.GetUint("span_id", 0);
  const bool check = flags.GetBool("check");
  Filter filter;
  filter.event = flags.GetString("event");
  filter.actor = flags.GetString("actor");
  filter.from_us = flags.GetDouble("from_us", -1);
  filter.to_us = flags.GetDouble("to_us", -1);
  double ghz = flags.GetDouble("ghz", 0);
  if (!flags.UnusedKeys().empty()) {
    return Usage();
  }

  if (selftest) {
    RunSelftest();
    std::cout << "trace_query selftest: " << (g_checks - g_failures) << "/" << g_checks
              << " checks passed\n";
    return g_failures == 0 ? 0 : 1;
  }
  if (trace_path.empty() && metrics_path.empty()) {
    return Usage();
  }

  std::string error;
  JsonValue metrics;
  const JsonValue* runs = nullptr;
  const JsonValue* run = nullptr;  // the run a trace is compared against
  if (!metrics_path.empty()) {
    if (!LoadFile(metrics_path, &metrics, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    runs = metrics.Get("runs");
    if (runs == nullptr || runs->kind != JsonValue::Kind::kArray || runs->arr.empty()) {
      std::cerr << "error: " << metrics_path << " has no runs\n";
      return 1;
    }
    // --run selects by label; otherwise prefer the first run that actually
    // booked migration latencies (multi-run documents lead with baselines
    // that never migrate).
    for (const JsonValue& r : runs->arr) {
      if (!run_label.empty()) {
        if (r.Str("label") == run_label) {
          run = &r;
          break;
        }
        continue;
      }
      const JsonValue* hists = r.Get("histograms");
      const JsonValue* m = hists != nullptr ? hists->Get("migration.latency") : nullptr;
      if (m != nullptr && m->Num("count") > 0) {
        run = &r;
        break;
      }
    }
    if (run == nullptr) {
      if (!run_label.empty()) {
        std::cerr << "error: no run labeled '" << run_label << "' in " << metrics_path
                  << "\n";
        return 1;
      }
      run = &runs->arr[0];
    }
    if (ghz == 0) {
      ghz = run->Num("ghz", 0);
    }
  }

  if (runs != nullptr && !hist_name.empty()) {
    for (const JsonValue& r : runs->arr) {
      const JsonValue* hists = r.Get("histograms");
      const JsonValue* h = hists != nullptr ? hists->Get(hist_name) : nullptr;
      if (h == nullptr) {
        continue;
      }
      std::cout << "run " << r.Str("label") << " " << hist_name
                << ": count=" << h->Num("count") << " p50=" << h->Num("p50")
                << " p90=" << h->Num("p90") << " p99=" << h->Num("p99")
                << " max=" << h->Num("max") << "\n";
    }
  }

  if (trace_path.empty()) {
    return 0;
  }
  JsonValue root;
  if (!LoadFile(trace_path, &root, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  TraceDoc doc;
  if (!LoadTrace(root, &doc, &error)) {
    std::cerr << "error: " << trace_path << ": " << error << "\n";
    return 1;
  }

  if (pair.empty() && top_n == 0 && !span && span_id == 0) {
    PrintSummary(doc, filter);
    return 0;
  }

  int rc = 0;
  if (span || span_id != 0) {
    rc = std::max(rc, ReportSpans(doc, filter, span_id, check));
  }
  if (!pair.empty()) {
    if (ghz == 0) {
      std::cerr << "error: --pair needs --ghz (or --metrics to read it from)\n";
      return 1;
    }
    const std::vector<uint64_t> samples = PairDurations(doc, filter, pair, ghz);
    const PairReport r = ReportPairs(samples);
    std::cout << "paired '" << pair << "' slices (committed): count=" << r.count
              << " p50=" << r.p50 << " p90=" << r.p90 << " p99=" << r.p99
              << " max=" << r.max << " (cycles at " << ghz << " GHz)\n";
    // Cross-check against the selected run's migration-latency histogram.
    if (run != nullptr && pair == "tpm") {
      const JsonValue* hists = run->Get("histograms");
      const JsonValue* m = hists != nullptr ? hists->Get("migration.latency") : nullptr;
      if (m != nullptr) {
        const uint64_t exported = static_cast<uint64_t>(m->Num("p99"));
        const uint64_t tol = BucketWidthAt(std::max(exported, r.p99));
        const uint64_t diff = r.p99 > exported ? r.p99 - exported : exported - r.p99;
        std::cout << "metrics migration.latency p99=" << exported << "  |trace-metrics|="
                  << diff << "  bucket-width=" << tol
                  << (diff <= tol ? "  (agree within one bucket)" : "  (MISMATCH)")
                  << "\n";
        if (check && diff > tol) {
          rc = 1;
        }
      } else if (check) {
        std::cerr << "error: --check: metrics run has no migration.latency histogram\n";
        rc = 1;
      }
    }
  }

  if (top_n > 0) {
    const std::map<uint64_t, PageStats> pages = ReplayPages(doc, filter);
    const std::vector<Thrasher> top = TopThrashers(pages, top_n);
    std::cout << "top " << top.size() << " thrashing pages (score = 2*ping_pong + "
                 "redirty + abort):\n";
    for (const Thrasher& t : top) {
      std::cout << "  vpn " << t.vpn << ": score=" << t.stats.Score()
                << " promotions=" << t.stats.promotions
                << " demotions=" << t.stats.demotions
                << " ping_pongs=" << t.stats.ping_pongs
                << " redirties=" << t.stats.redirties << " aborts=" << t.stats.aborts
                << "\n";
    }
  }
  return rc;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Main(argc, argv); }
