// trace_query: offline analysis over the simulator's exported artifacts.
//
// Consumes the chrome://tracing JSON written by --trace_out and/or the
// metrics.json written by --metrics_out, with no external dependencies (a
// small recursive-descent JSON reader lives in this file). Core jobs:
//
//   summary              (default with --trace) event counts per name/actor
//   --event= / --actor=  filter the summary to one event type / one actor
//   --from_us/--to_us    restrict every query to a time window
//   --pair=tpm           pair tpm B/E slices into per-transaction latencies,
//                        bucket them with the same HDR histogram the
//                        simulator uses, and print p50/p90/p99 — committed
//                        transactions only, so the numbers are directly
//                        comparable to the "migration.latency" histogram in
//                        metrics.json (--check enforces agreement to within
//                        one histogram bucket)
//   --hist=NAME          print a named histogram from metrics.json runs
//   --top=N              reconstruct per-page thrash scores (ping-pongs,
//                        re-dirties, aborts) from promote/demote/
//                        shadow_fault/tpm_abort instants and rank pages
//   --selftest           run the embedded checks on canned documents
//
// Cycle conversion: trace timestamps are microseconds (ts = cycles/(ghz*1e3)),
// so --ghz (or the "ghz" field of the first metrics run) recovers cycles.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/flags.h"
#include "src/obs/hist.h"

namespace nomad {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. Numbers are doubles: every value the simulator
// exports (timestamps, vpns, counts) fits a double's 53-bit mantissa at the
// scales the sim runs at.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // preserves order

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  double Num(const std::string& key, double def = 0) const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : def;
  }
  std::string Str(const std::string& key, const std::string& def = "") const {
    const JsonValue* v = Get(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : def;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool Parse(JsonValue* out) {
    *out = Value();
    SkipWs();
    return ok_ && pos_ == text_.size();
  }

  std::string error() const { return error_; }

 private:
  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool Literal(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue Value() {
    SkipWs();
    if (!ok_ || pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return JsonValue{};
    }
    const char c = text_[pos_];
    JsonValue v;
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = String();
      return v;
    }
    if (Literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (Literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (Literal("null")) {
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return Number();
    }
    Fail(std::string("unexpected character '") + c + "'");
    return v;
  }

  JsonValue Object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Eat('{');
    if (Eat('}')) {
      return v;
    }
    while (ok_) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected object key");
        return v;
      }
      std::string key = String();
      if (!Eat(':')) {
        Fail("expected ':'");
        return v;
      }
      v.obj.emplace_back(std::move(key), Value());
      if (Eat(',')) {
        continue;
      }
      if (!Eat('}')) {
        Fail("expected ',' or '}'");
      }
      return v;
    }
    return v;
  }

  JsonValue Array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Eat('[');
    if (Eat(']')) {
      return v;
    }
    while (ok_) {
      v.arr.push_back(Value());
      if (Eat(',')) {
        continue;
      }
      if (!Eat(']')) {
        Fail("expected ',' or ']'");
      }
      return v;
    }
    return v;
  }

  std::string String() {
    std::string s;
    pos_++;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n': s.push_back('\n'); break;
        case 't': s.push_back('\t'); break;
        case 'r': s.push_back('\r'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'u': {
          // The exporter only escapes control characters; decode the
          // code point as a single byte (sufficient for ASCII range).
          if (pos_ + 4 <= text_.size()) {
            const unsigned long cp = std::stoul(text_.substr(pos_, 4), nullptr, 16);
            s.push_back(static_cast<char>(cp & 0x7f));
            pos_ += 4;
          }
          break;
        }
        default: s.push_back(esc); break;
      }
    }
    if (pos_ >= text_.size()) {
      Fail("unterminated string");
      return s;
    }
    pos_++;  // closing quote
    return s;
  }

  JsonValue Number() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      pos_++;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string text_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Trace model: the flattened event list plus the tid -> actor-name map.
// ---------------------------------------------------------------------------

struct TraceEvt {
  std::string name;
  std::string ph;       // "B", "E", "i" (metadata rows are not kept)
  std::string outcome;  // E-events: args.outcome
  double ts_us = 0;
  uint64_t tid = 0;
  double arg = 0;  // args.arg (vpn for page events)
};

struct TraceDoc {
  std::vector<TraceEvt> events;
  std::map<uint64_t, std::string> actor_names;
};

bool LoadTrace(const JsonValue& root, TraceDoc* doc, std::string* error) {
  const JsonValue* events = root.Get("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    *error = "document has no traceEvents array";
    return false;
  }
  for (const JsonValue& e : events->arr) {
    const std::string ph = e.Str("ph");
    const uint64_t tid = static_cast<uint64_t>(e.Num("tid"));
    if (ph == "M") {
      if (e.Str("name") == "thread_name") {
        const JsonValue* a = e.Get("args");
        doc->actor_names[tid] = a != nullptr ? a->Str("name") : "";
      }
      continue;
    }
    TraceEvt evt;
    evt.name = e.Str("name");
    evt.ph = ph;
    evt.ts_us = e.Num("ts");
    evt.tid = tid;
    if (const JsonValue* a = e.Get("args")) {
      evt.arg = a->Num("arg");
      evt.outcome = a->Str("outcome");
    }
    doc->events.push_back(std::move(evt));
  }
  return true;
}

struct Filter {
  std::string event;   // empty = all
  std::string actor;   // empty = all
  double from_us = -1;
  double to_us = -1;   // negative = unbounded

  bool Matches(const TraceEvt& e, const TraceDoc& doc) const {
    if (!event.empty() && e.name != event) {
      return false;
    }
    if (!actor.empty()) {
      const auto it = doc.actor_names.find(e.tid);
      if (it == doc.actor_names.end() || it->second != actor) {
        return false;
      }
    }
    if (from_us >= 0 && e.ts_us < from_us) {
      return false;
    }
    if (to_us >= 0 && e.ts_us > to_us) {
      return false;
    }
    return true;
  }
};

// Pairs B/E duration slices named `name` per tid (LIFO, matching the
// exporter's nesting) and returns committed durations in cycles. Slices
// whose end reports a non-commit outcome (aborts, still in flight at exit)
// consume their begin but produce no sample, mirroring the simulator's
// histogram which records at commit only.
std::vector<uint64_t> PairDurations(const TraceDoc& doc, const Filter& filter,
                                    const std::string& name, double ghz) {
  std::map<uint64_t, std::vector<double>> open;  // tid -> stack of begin ts
  std::vector<uint64_t> samples;
  for (const TraceEvt& e : doc.events) {
    if (e.name != name || !filter.Matches(e, doc)) {
      continue;
    }
    if (e.ph == "B") {
      open[e.tid].push_back(e.ts_us);
      continue;
    }
    if (e.ph != "E") {
      continue;
    }
    std::vector<double>& stack = open[e.tid];
    if (stack.empty()) {
      continue;  // begin lost to ring wraparound
    }
    const double begin = stack.back();
    stack.pop_back();
    if (e.outcome != "tpm_commit") {
      continue;  // aborted or dangling: no latency sample was booked
    }
    samples.push_back(
        static_cast<uint64_t>(std::llround((e.ts_us - begin) * ghz * 1e3)));
  }
  return samples;
}

// Per-page lifecycle reconstruction from instant events: the trace-side
// mirror of the in-sim provenance ledger. A demote that lands while the
// page is promoted is a ping-pong; shadow faults after promotion are
// re-dirties.
struct PageStats {
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t aborts = 0;
  uint64_t redirties = 0;
  uint64_t ping_pongs = 0;
  bool promoted_live = false;

  uint64_t Score() const { return 2 * ping_pongs + redirties + aborts; }
};

std::map<uint64_t, PageStats> ReplayPages(const TraceDoc& doc, const Filter& filter) {
  std::map<uint64_t, PageStats> pages;
  for (const TraceEvt& e : doc.events) {
    if (!filter.Matches(e, doc)) {
      continue;
    }
    const uint64_t vpn = static_cast<uint64_t>(e.arg);
    // TPM promotions/aborts surface as the "tpm" duration slice's end, not
    // as separate instants; the slice's arg is the vpn.
    if (e.name == "tpm" && e.ph == "E") {
      if (e.outcome == "tpm_commit") {
        PageStats& p = pages[vpn];
        p.promotions++;
        p.promoted_live = true;
      } else if (e.outcome == "tpm_abort") {
        pages[vpn].aborts++;
      }
      continue;
    }
    if (e.ph != "i") {
      continue;
    }
    if (e.name == "promote") {
      PageStats& p = pages[vpn];
      p.promotions++;
      p.promoted_live = true;
    } else if (e.name == "demote") {
      PageStats& p = pages[vpn];
      p.demotions++;
      if (p.promoted_live) {
        p.ping_pongs++;
        p.promoted_live = false;
      }
    } else if (e.name == "shadow_fault") {
      PageStats& p = pages[vpn];
      if (p.promoted_live) {
        p.redirties++;
      }
    } else if (e.name == "tpm_abort") {
      pages[vpn].aborts++;
    }
  }
  return pages;
}

struct Thrasher {
  uint64_t vpn = 0;
  PageStats stats;
};

std::vector<Thrasher> TopThrashers(const std::map<uint64_t, PageStats>& pages, size_t n) {
  std::vector<Thrasher> out;
  for (const auto& [vpn, stats] : pages) {
    if (stats.Score() > 0) {
      out.push_back(Thrasher{vpn, stats});
    }
  }
  std::sort(out.begin(), out.end(), [](const Thrasher& a, const Thrasher& b) {
    if (a.stats.Score() != b.stats.Score()) {
      return a.stats.Score() > b.stats.Score();
    }
    return a.vpn < b.vpn;
  });
  if (out.size() > n) {
    out.resize(n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Command implementations.
// ---------------------------------------------------------------------------

bool LoadFile(const std::string& path, JsonValue* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParser parser(text);
  if (!parser.Parse(out)) {
    *error = path + ": " + parser.error();
    return false;
  }
  return true;
}

void PrintSummary(const TraceDoc& doc, const Filter& filter) {
  std::map<std::string, uint64_t> by_name;
  std::map<uint64_t, uint64_t> by_tid;
  double first = -1, last = -1;
  uint64_t total = 0;
  for (const TraceEvt& e : doc.events) {
    if (!filter.Matches(e, doc)) {
      continue;
    }
    total++;
    by_name[e.name + (e.ph == "B" ? " (begin)" : e.ph == "E" ? " (end)" : "")]++;
    by_tid[e.tid]++;
    if (first < 0 || e.ts_us < first) {
      first = e.ts_us;
    }
    last = std::max(last, e.ts_us);
  }
  std::cout << "events: " << total;
  if (total > 0) {
    std::cout << "  window: [" << first << " us, " << last << " us]";
  }
  std::cout << "\n";
  for (const auto& [name, count] : by_name) {
    std::cout << "  " << name << ": " << count << "\n";
  }
  std::cout << "actors:\n";
  for (const auto& [tid, count] : by_tid) {
    const auto it = doc.actor_names.find(tid);
    std::cout << "  tid " << tid << " ("
              << (it == doc.actor_names.end() ? std::string("?") : it->second)
              << "): " << count << "\n";
  }
}

struct PairReport {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

PairReport ReportPairs(const std::vector<uint64_t>& samples) {
  Histogram h;
  PairReport r;
  for (const uint64_t s : samples) {
    h.Record(s);
  }
  r.count = h.count();
  r.p50 = h.Quantile(0.50);
  r.p90 = h.Quantile(0.90);
  r.p99 = h.Quantile(0.99);
  r.max = h.Max();
  return r;
}

// Width of the histogram bucket holding `value`: the agreement tolerance
// when cross-checking a trace-derived percentile against the simulator's.
uint64_t BucketWidthAt(uint64_t value) {
  const int b = Histogram::BucketFor(value);
  return Histogram::BucketHi(b) - Histogram::BucketLo(b);
}

// ---------------------------------------------------------------------------
// Selftest: canned documents exercising the same functions the CLI uses.
// ---------------------------------------------------------------------------

int g_checks = 0;
int g_failures = 0;

void Check(bool ok, const std::string& what) {
  g_checks++;
  if (!ok) {
    g_failures++;
    std::cerr << "selftest FAIL: " << what << "\n";
  }
}

// ghz=2: 1 us == 2000 cycles. Two committed tpm slices (2000 and 6000
// cycles), one abort, one in-flight close, plus promote/demote/shadow_fault
// instants for the thrash replay.
const char* const kSelftestTrace = R"({
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 3,
     "args": {"name": "kpromote"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1,
     "args": {"name": "app-0"}},
    {"name": "tpm", "ph": "B", "ts": 1.0, "pid": 0, "tid": 3,
     "args": {"arg": 70, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 2.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 70}},
    {"name": "tpm", "ph": "B", "ts": 4.5, "pid": 0, "tid": 3,
     "args": {"arg": 71, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 5.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_abort", "arg": 71}},
    {"name": "tpm", "ph": "B", "ts": 6.0, "pid": 0, "tid": 3,
     "args": {"arg": 72, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 9.0, "pid": 0, "tid": 3,
     "args": {"outcome": "tpm_commit", "arg": 72}},
    {"name": "shadow_fault", "ph": "i", "s": "t", "ts": 9.5, "pid": 0, "tid": 1,
     "args": {"arg": 72, "value": 0}},
    {"name": "demote", "ph": "i", "s": "t", "ts": 10.0, "pid": 0, "tid": 4,
     "args": {"arg": 72, "value": 120}},
    {"name": "promote", "ph": "i", "s": "t", "ts": 11.0, "pid": 0, "tid": 3,
     "args": {"arg": 72, "value": 0}},
    {"name": "demote", "ph": "i", "s": "t", "ts": 12.0, "pid": 0, "tid": 4,
     "args": {"arg": 72, "value": 120}},
    {"name": "tpm", "ph": "B", "ts": 13.0, "pid": 0, "tid": 3,
     "args": {"arg": 73, "value": 0}},
    {"name": "tpm", "ph": "E", "ts": 13.5, "pid": 0, "tid": 3,
     "args": {"outcome": "in_flight_at_exit"}}
  ]
})";

const char* const kSelftestMetrics = R"({
  "schema": "nomad-metrics-v1",
  "benchmark": "selftest",
  "runs": [
    {"label": "nomad", "ghz": 2.0,
     "histograms": {
       "migration.latency": {"count": 2, "mean": 4000.0, "p50": 1920,
                             "p90": 1920, "p99": 1920, "max": 6000}
     }}
  ]
})";

void RunSelftest() {
  // Parser basics: escapes, nesting, numbers.
  {
    JsonValue v;
    JsonParser p(R"({"a": [1, 2.5, -3e2], "s": "x\"y\n", "t": true, "n": null})");
    Check(p.Parse(&v), "parser accepts valid document");
    const JsonValue* a = v.Get("a");
    Check(a != nullptr && a->arr.size() == 3, "array parsed");
    Check(a != nullptr && a->arr.size() == 3 && a->arr[2].number == -300.0,
          "exponent parsed");
    Check(v.Str("s") == "x\"y\n", "string escapes decoded");
    Check(v.Get("t") != nullptr && v.Get("t")->boolean, "bool parsed");
    Check(v.Get("n") != nullptr && v.Get("n")->kind == JsonValue::Kind::kNull,
          "null parsed");
  }
  {
    JsonValue v;
    JsonParser p(R"({"a": })");
    Check(!p.Parse(&v), "parser rejects malformed document");
  }

  JsonValue root;
  std::string error;
  {
    JsonParser p(kSelftestTrace);
    Check(p.Parse(&root), "selftest trace parses: " + p.error());
  }
  TraceDoc doc;
  Check(LoadTrace(root, &doc, &error), "trace model loads");
  Check(doc.actor_names.at(3) == "kpromote", "thread_name metadata mapped");

  // Pairing: two commits survive; the abort and the dangling close do not.
  {
    const std::vector<uint64_t> samples = PairDurations(doc, Filter{}, "tpm", 2.0);
    Check(samples.size() == 2, "pairing keeps committed slices only");
    Check(samples.size() == 2 && samples[0] == 2000 && samples[1] == 6000,
          "paired durations convert us to cycles");
    const PairReport r = ReportPairs(samples);
    Check(r.count == 2 && r.max == 6000, "pair report count/max");
    // The estimator targets rank floor(q*(count-1)): with two samples every
    // quantile below 1.0 resolves to the first sample's bucket floor.
    Check(r.p99 == Histogram::BucketLo(Histogram::BucketFor(2000)),
          "p99 matches the bucket estimator");
  }

  // Window and actor filters.
  {
    Filter f;
    f.from_us = 5.5;
    const std::vector<uint64_t> samples = PairDurations(doc, f, "tpm", 2.0);
    Check(samples.size() == 1 && samples[0] == 6000, "from_us drops early slices");
    Filter fa;
    fa.actor = "app-0";
    uint64_t matches = 0;
    for (const TraceEvt& e : doc.events) {
      matches += fa.Matches(e, doc) ? 1 : 0;
    }
    Check(matches == 1, "actor filter selects app events only");
  }

  // Thrash replay: page 72 promoted twice, demoted twice while live
  // (2 ping-pongs), one shadow fault while promoted (1 re-dirty); page 71
  // aborted once; page 70 promoted and kept (score 0, excluded).
  {
    const std::map<uint64_t, PageStats> pages = ReplayPages(doc, Filter{});
    const PageStats& p72 = pages.at(72);
    Check(p72.ping_pongs == 2 && p72.redirties == 1 && p72.Score() == 5,
          "page 72 lifecycle replayed");
    const std::vector<Thrasher> top = TopThrashers(pages, 10);
    Check(top.size() == 2, "score-0 pages excluded from top list");
    Check(top.size() == 2 && top[0].vpn == 72 && top[1].vpn == 71,
          "thrashers ranked by score");
  }

  // Metrics cross-check: trace-derived p99 within one bucket of the
  // exported histogram (the acceptance invariant, in miniature).
  {
    JsonValue metrics;
    JsonParser p(kSelftestMetrics);
    Check(p.Parse(&metrics), "selftest metrics parses");
    const JsonValue* runs = metrics.Get("runs");
    Check(runs != nullptr && !runs->arr.empty(), "metrics runs present");
    if (runs != nullptr && !runs->arr.empty()) {
      const double ghz = runs->arr[0].Num("ghz", 0);
      Check(ghz == 2.0, "ghz read from metrics");
      const JsonValue* h = runs->arr[0].Get("histograms");
      const JsonValue* m = h != nullptr ? h->Get("migration.latency") : nullptr;
      Check(m != nullptr, "histogram found in metrics");
      if (m != nullptr) {
        const uint64_t exported_p99 = static_cast<uint64_t>(m->Num("p99"));
        const PairReport r = ReportPairs(PairDurations(doc, Filter{}, "tpm", ghz));
        const uint64_t tol = BucketWidthAt(std::max(exported_p99, r.p99));
        const uint64_t diff =
            r.p99 > exported_p99 ? r.p99 - exported_p99 : exported_p99 - r.p99;
        Check(diff <= tol, "trace p99 within one bucket of exported p99");
      }
    }
  }
}

int Usage() {
  std::cerr
      << "usage: trace_query [--trace=PATH] [--metrics=PATH] [--event=NAME]\n"
         "                   [--actor=NAME] [--from_us=T] [--to_us=T] [--pair=tpm]\n"
         "                   [--ghz=G] [--run=LABEL] [--top=N] [--hist=NAME] [--check]\n"
         "                   [--selftest]\n";
  return 2;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool selftest = flags.GetBool("selftest");
  const std::string trace_path = flags.GetString("trace");
  const std::string metrics_path = flags.GetString("metrics");
  const std::string pair = flags.GetString("pair");
  const std::string run_label = flags.GetString("run");
  const std::string hist_name = flags.GetString("hist");
  const uint64_t top_n = flags.GetUint("top", 0);
  const bool check = flags.GetBool("check");
  Filter filter;
  filter.event = flags.GetString("event");
  filter.actor = flags.GetString("actor");
  filter.from_us = flags.GetDouble("from_us", -1);
  filter.to_us = flags.GetDouble("to_us", -1);
  double ghz = flags.GetDouble("ghz", 0);
  if (!flags.UnusedKeys().empty()) {
    return Usage();
  }

  if (selftest) {
    RunSelftest();
    std::cout << "trace_query selftest: " << (g_checks - g_failures) << "/" << g_checks
              << " checks passed\n";
    return g_failures == 0 ? 0 : 1;
  }
  if (trace_path.empty() && metrics_path.empty()) {
    return Usage();
  }

  std::string error;
  JsonValue metrics;
  const JsonValue* runs = nullptr;
  const JsonValue* run = nullptr;  // the run a trace is compared against
  if (!metrics_path.empty()) {
    if (!LoadFile(metrics_path, &metrics, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    runs = metrics.Get("runs");
    if (runs == nullptr || runs->kind != JsonValue::Kind::kArray || runs->arr.empty()) {
      std::cerr << "error: " << metrics_path << " has no runs\n";
      return 1;
    }
    // --run selects by label; otherwise prefer the first run that actually
    // booked migration latencies (multi-run documents lead with baselines
    // that never migrate).
    for (const JsonValue& r : runs->arr) {
      if (!run_label.empty()) {
        if (r.Str("label") == run_label) {
          run = &r;
          break;
        }
        continue;
      }
      const JsonValue* hists = r.Get("histograms");
      const JsonValue* m = hists != nullptr ? hists->Get("migration.latency") : nullptr;
      if (m != nullptr && m->Num("count") > 0) {
        run = &r;
        break;
      }
    }
    if (run == nullptr) {
      if (!run_label.empty()) {
        std::cerr << "error: no run labeled '" << run_label << "' in " << metrics_path
                  << "\n";
        return 1;
      }
      run = &runs->arr[0];
    }
    if (ghz == 0) {
      ghz = run->Num("ghz", 0);
    }
  }

  if (runs != nullptr && !hist_name.empty()) {
    for (const JsonValue& r : runs->arr) {
      const JsonValue* hists = r.Get("histograms");
      const JsonValue* h = hists != nullptr ? hists->Get(hist_name) : nullptr;
      if (h == nullptr) {
        continue;
      }
      std::cout << "run " << r.Str("label") << " " << hist_name
                << ": count=" << h->Num("count") << " p50=" << h->Num("p50")
                << " p90=" << h->Num("p90") << " p99=" << h->Num("p99")
                << " max=" << h->Num("max") << "\n";
    }
  }

  if (trace_path.empty()) {
    return 0;
  }
  JsonValue root;
  if (!LoadFile(trace_path, &root, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  TraceDoc doc;
  if (!LoadTrace(root, &doc, &error)) {
    std::cerr << "error: " << trace_path << ": " << error << "\n";
    return 1;
  }

  if (pair.empty() && top_n == 0) {
    PrintSummary(doc, filter);
    return 0;
  }

  int rc = 0;
  if (!pair.empty()) {
    if (ghz == 0) {
      std::cerr << "error: --pair needs --ghz (or --metrics to read it from)\n";
      return 1;
    }
    const std::vector<uint64_t> samples = PairDurations(doc, filter, pair, ghz);
    const PairReport r = ReportPairs(samples);
    std::cout << "paired '" << pair << "' slices (committed): count=" << r.count
              << " p50=" << r.p50 << " p90=" << r.p90 << " p99=" << r.p99
              << " max=" << r.max << " (cycles at " << ghz << " GHz)\n";
    // Cross-check against the selected run's migration-latency histogram.
    if (run != nullptr && pair == "tpm") {
      const JsonValue* hists = run->Get("histograms");
      const JsonValue* m = hists != nullptr ? hists->Get("migration.latency") : nullptr;
      if (m != nullptr) {
        const uint64_t exported = static_cast<uint64_t>(m->Num("p99"));
        const uint64_t tol = BucketWidthAt(std::max(exported, r.p99));
        const uint64_t diff = r.p99 > exported ? r.p99 - exported : exported - r.p99;
        std::cout << "metrics migration.latency p99=" << exported << "  |trace-metrics|="
                  << diff << "  bucket-width=" << tol
                  << (diff <= tol ? "  (agree within one bucket)" : "  (MISMATCH)")
                  << "\n";
        if (check && diff > tol) {
          rc = 1;
        }
      } else if (check) {
        std::cerr << "error: --check: metrics run has no migration.latency histogram\n";
        rc = 1;
      }
    }
  }

  if (top_n > 0) {
    const std::map<uint64_t, PageStats> pages = ReplayPages(doc, filter);
    const std::vector<Thrasher> top = TopThrashers(pages, top_n);
    std::cout << "top " << top.size() << " thrashing pages (score = 2*ping_pong + "
                 "redirty + abort):\n";
    for (const Thrasher& t : top) {
      std::cout << "  vpn " << t.vpn << ": score=" << t.stats.Score()
                << " promotions=" << t.stats.promotions
                << " demotions=" << t.stats.demotions
                << " ping_pongs=" << t.stats.ping_pongs
                << " redirties=" << t.stats.redirties << " aborts=" << t.stats.aborts
                << "\n";
    }
  }
  return rc;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Main(argc, argv); }
