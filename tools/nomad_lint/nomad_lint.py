#!/usr/bin/env python3
"""nomad_lint: repo-specific AST/token lint for the NOMAD simulator.

Enforced rules (see DESIGN.md "Verification tooling" for the rationale):

  NL001 pte-mutation      PTE/flag-bit mutation only inside the mechanism
                          layers (src/mm/, src/nomad/, src/trace/); policy,
                          harness, and tooling code must go through the
                          page_table/frame_pool/MemorySystem APIs.
  NL002 bare-assert       no bare assert(); structural invariants use
                          NOMAD_CHECK, which survives release builds.
  NL003 determinism       no std::rand / srand / random_device / mt19937 /
                          wall-clock sources; simulations draw from the
                          explicitly seeded nomad::Rng only.
  NL004 name-literal      no string literals at counters().Add/.Get or
                          histogram .Record() call sites in src/, and no
                          profiler nodes conjured from integer literals;
                          names come from the cnt::/hist::/ProfNode
                          registries (src/obs/event_registry.h).
  NL005 naked-new         no naked new/delete in src/; ownership is
                          std::unique_ptr / containers.
  NL006 include-guard     header guards spell the repo-relative path
                          (SRC_MM_PTE_H_ for src/mm/pte.h).
  NL007 io-in-core        no <iostream>/<fstream> outside the harness and
                          declared I/O endpoints; core layers report via
                          counters, traces, and return values.
  NL008 shard-ownership   shard-owned state may only be mutated through the
                          shard-message APIs: ShardRouter/ShardBarrier/
                          ShardMsg and cross-shard `shards[i]` mutation are
                          confined to the sharded runtime (src/sim/shard.*,
                          src/harness/sharded_sim.*); everything else would
                          bypass the deterministic drain order.
  NL009 frame-flags       frame metadata is a packed flags word (struct-of-
                          arrays FrameTable, src/mm/page.h); outside src/mm
                          it may only be touched through the PageFrame
                          accessors. Raw frame_flags:: bit constants and
                          writes to a flags_ word are mm-internal: a raw
                          bitmask write would silently clobber neighboring
                          bit fields (LRU list id, TPM abort count).
  NL010 silent-degrade    every degrading admission decision (returning or
                          assigning AdmissionVerdict kDefer/kReject/
                          kDowngradeSync) must be observable: a registry-
                          named counter or trace emission - or the
                          RecordVerdict helper wrapping both - within 10
                          lines. Overload shedding that leaves no metric
                          behind is indistinguishable from a hang when
                          operators debug a soak failure.
  NL011 unannotated-sync  any class in src/ holding a std::mutex /
                          std::condition_variable / std::atomic member (or
                          the annotated Mutex/CondVar wrappers) or a
                          ShardRouter/ShardBarrier member must carry
                          thread-safety annotations (NOMAD_GUARDED_BY /
                          NOMAD_CAPABILITY / NOMAD_SHARD_CONFINED, see
                          src/base/annotations.h) somewhere in its span:
                          unannotated concurrency state is invisible to
                          both -Wthread-safety and nomad_analyze.
                          src/base/ itself (the vocabulary) is exempt.
  NL012 timeline-channel  no complete string literal at Timeline .Channel()
                          call sites; gauge names come from the tl::
                          constants (NOMAD_TIMELINE_CHANNEL_LIST), so the
                          registry check and the sampler can never drift.
                          Derived channels composed from a "cnt."/"hist."
                          prefix literal plus a registry name ("cnt." +
                          name) are the mechanical pattern and stay legal.

Engines. The default engine is a pure-Python lexer (comments and string
literals stripped, then per-line pattern rules): zero dependencies, runs
anywhere. When the libclang Python bindings are importable (CI installs
python3-clang), `--backend=clang` re-checks NL001 and NL005 on the real
AST — member writes are matched by the base expression's *type* (Pte)
rather than the variable's name, and new/delete by expression kind — and
any extra findings are reported with the same rule IDs. The clang backend
is strict: a translation unit the parser cannot load, or that produces
fatal diagnostics, fails the run (exit 2) instead of silently degrading
to token-only coverage — CI requires it. `--backend=auto` (default) uses
clang when available, silently falling back otherwise.

Usage:
  python3 tools/nomad_lint/nomad_lint.py [--root=DIR] [--backend=auto|token|clang]
                                         [--compdb=build/compile_commands.json]
                                         [--selftest] [--list-rules] [files...]

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import os
import re
import sys

# --------------------------------------------------------------------------
# Source model


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line breaks.

    Keeps every character position stable (replaced with spaces) so finding
    offsets map straight back to the original file.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
                if m and i > 0 and text[i - 1] == "R":
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * (m.end()))
                    i += m.end()
                    continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
                i += 1
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, rel, text):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.text = text
        self.code = strip_comments_and_strings(text)
        self.lines = self.code.split("\n")
        self.raw_lines = text.split("\n")


class Finding:
    def __init__(self, rel, line, rule, message):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: %s: %s" % (self.rel, self.line, self.rule, self.message)


# --------------------------------------------------------------------------
# Token-engine rules

PTE_BITS = r"(?:present|writable|dirty|accessed|prot_none|shadow_rw|pfn)"
# `pte->dirty = ...`, `pte.writable |= ...`, `(*pte).present = ...`
PTE_MUT_RE = re.compile(
    r"(?:\bpte\w*\s*(?:\.|->)|\(\s*\*\s*pte\w*\s*\)\s*\.)\s*"
    + PTE_BITS
    + r"\s*(?:\|=|&=|\^=|=(?!=))"
)

DETERMINISM_RES = [
    (re.compile(r"\bstd\s*::\s*rand\b|\bsrand\s*\("), "libc PRNG"),
    (re.compile(r"\brandom_device\b"), "std::random_device (nondeterministic seed)"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937 (use the seeded nomad::Rng)"),
    (
        re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
        "wall clock (simulated time only)",
    ),
    (re.compile(r"\bgettimeofday\b|\bclock_gettime\b"), "wall clock (simulated time only)"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"), "time() (wall clock)"),
]

ASSERT_RE = re.compile(r"(?<![\w_])assert\s*\(")
COUNTER_LIT_RE = re.compile(r"\.\s*(Add|Get)\s*\(\s*\"")
# `hists().Record("...")` — histogram names come from the hist:: constants
# so the registry check (and NOMAD_HIST_NAME_LIST) stays the single source.
HIST_LIT_RE = re.compile(r"\.\s*Record\s*\(\s*\"")
# `static_cast<ProfNode>(3)` — a span node invented from a raw integer
# bypasses the NOMAD_PROF_NODE_LIST registry (casts of loop variables, as
# the exporters use, are fine).
PROFNODE_CAST_RE = re.compile(r"static_cast\s*<\s*ProfNode\s*>\s*\(\s*\d")
NEW_RE = re.compile(r"(?<![\w_:])new\b(?!\s*\[?\s*\]?\s*\()")  # `new T...`, not op overloads
NEW_ANY_RE = re.compile(r"(?<![\w_:])new\b")
DELETE_RE = re.compile(r"(?<![\w_:])delete\b(?:\s*\[\s*\])?")
IO_INCLUDE_RE = re.compile(r'#\s*include\s*<(iostream|fstream)>')


def in_dirs(rel, dirs):
    return any(rel.startswith(d) for d in dirs)


def rule_nl001(f):
    # Mechanism layers own the PTE encoding; everyone else uses the APIs.
    if in_dirs(f.rel, ("src/mm/", "src/nomad/", "src/trace/")):
        return
    if not in_dirs(f.rel, ("src/", "tools/")):
        return
    for i, line in enumerate(f.lines, 1):
        if PTE_MUT_RE.search(line):
            yield Finding(
                f.rel, i, "NL001",
                "direct PTE bit mutation outside src/mm|nomad|trace; use the "
                "page_table/MemorySystem APIs (e.g. InstallMappingSilent)")


def rule_nl002(f):
    if not in_dirs(f.rel, ("src/", "tools/")):
        return
    for i, line in enumerate(f.lines, 1):
        for m in ASSERT_RE.finditer(line):
            before = line[: m.start()]
            if before.rstrip().endswith("static_"):
                continue
            yield Finding(f.rel, i, "NL002",
                          "bare assert() compiles out of release builds; use NOMAD_CHECK")


# The one benchmark whose entire job is wall-clock measurement: it times
# the simulator itself (pages-simulated/sec), never simulated behavior.
NL003_ALLOWLIST = ("bench/bench_throughput.cc",)


def rule_nl003(f):
    if not in_dirs(f.rel, ("src/", "tools/", "bench/")) or f.rel in NL003_ALLOWLIST:
        return
    for i, line in enumerate(f.lines, 1):
        for rx, what in DETERMINISM_RES:
            if rx.search(line):
                yield Finding(f.rel, i, "NL003",
                              "nondeterminism source: %s breaks bit-reproducible runs" % what)


def rule_nl004(f):
    if not in_dirs(f.rel, ("src/",)):
        return
    for i, line in enumerate(f.lines, 1):
        # The stripper blanks literal *contents* but keeps the quotes.
        if COUNTER_LIT_RE.search(line):
            yield Finding(
                f.rel, i, "NL004",
                "counter name as string literal; use the cnt:: constants from "
                "src/obs/event_registry.h")
        if HIST_LIT_RE.search(line):
            yield Finding(
                f.rel, i, "NL004",
                "histogram name as string literal; use the hist:: constants "
                "from src/obs/event_registry.h")
        if PROFNODE_CAST_RE.search(line):
            yield Finding(
                f.rel, i, "NL004",
                "profiler node from an integer literal; use the ProfNode:: "
                "enumerators from src/obs/event_registry.h")


def rule_nl005(f):
    if not in_dirs(f.rel, ("src/", "tools/")):
        return
    for i, line in enumerate(f.lines, 1):
        for m in NEW_ANY_RE.finditer(line):
            if re.match(r"\s*operator\b", line[m.end():]):
                continue  # operator new declarations
            yield Finding(f.rel, i, "NL005",
                          "naked new; own memory with std::unique_ptr/containers")
        for m in DELETE_RE.finditer(line):
            before = line[: m.start()].rstrip()
            if before.endswith("="):  # `= delete` / `= delete;` function deletion
                continue
            if re.match(r"\s*operator\b", line[m.end():]):
                continue
            yield Finding(f.rel, i, "NL005",
                          "naked delete; own memory with std::unique_ptr/containers")


GUARD_IFNDEF_RE = re.compile(r"#\s*ifndef\s+(\w+)")


def rule_nl006(f):
    if not f.rel.endswith(".h") or not in_dirs(f.rel, ("src/", "tools/")):
        return
    expected = re.sub(r"[^A-Za-z0-9]", "_", f.rel).upper() + "_"
    for i, line in enumerate(f.lines, 1):
        m = GUARD_IFNDEF_RE.search(line)
        if m:
            if m.group(1) != expected:
                yield Finding(f.rel, i, "NL006",
                              "include guard %s should be %s" % (m.group(1), expected))
            return
    yield Finding(f.rel, 1, "NL006", "missing include guard %s" % expected)


IO_ALLOWLIST = (
    "src/harness/",        # the experiment driver prints reports by design
    "src/workload/trace.cc",  # loads recorded access traces from disk
)


def rule_nl007(f):
    if not in_dirs(f.rel, ("src/",)) or in_dirs(f.rel, IO_ALLOWLIST):
        return
    for i, line in enumerate(f.lines, 1):
        m = IO_INCLUDE_RE.search(line)
        if m:
            yield Finding(
                f.rel, i, "NL007",
                "<%s> in a core layer; report through counters/traces or move "
                "I/O to src/harness" % m.group(1))


# Files allowed to speak the cross-shard protocol. Everyone else consumes
# the high-level RunSharded* entry points, so any other mention of the
# shard primitives (or mutation through a shard-state array) is a bypass
# of the deterministic (sender id, seq) drain order.
SHARD_RUNTIME_ALLOWLIST = (
    "src/sim/shard.h",
    "src/sim/shard.cc",
    "src/harness/sharded_sim.h",
    "src/harness/sharded_sim.cc",
)
SHARD_PRIMITIVE_RE = re.compile(r"\b(ShardRouter|ShardBarrier|ShardMsg)\b")
# `shards[i].done = true`, `shards[peer].sim->...Frob() = x`, `sims[i]->x = y`
SHARD_MUT_RE = re.compile(
    r"\b(shards|sims)\s*\[[^\]]+\]\s*(?:\.|->)[^;=<>!]*(?<![<>!=+\-*/|&^])=(?!=)")


def rule_nl008(f):
    if f.rel in SHARD_RUNTIME_ALLOWLIST:
        return
    if not in_dirs(f.rel, ("src/", "tools/", "bench/")):
        return
    for i, line in enumerate(f.lines, 1):
        if SHARD_PRIMITIVE_RE.search(line):
            yield Finding(
                f.rel, i, "NL008",
                "shard primitive used outside the sharded runtime; communicate "
                "through RunShardedMicro/RunShardedYcsb (src/harness/sharded_sim.h)")
        elif SHARD_MUT_RE.search(line):
            yield Finding(
                f.rel, i, "NL008",
                "mutation of shard-owned state outside the shard-message APIs; "
                "only the sharded runtime may write another shard's state")


# The packed frame-flags word is mm-internal. frame_flags:: constants name
# raw bit positions, and `flags_[pfn] |= ...` style writes bypass the
# PageFrame accessors that keep the multi-bit fields (LRU id, TPM abort
# count) consistent. Reads outside src/mm go through the accessors too, so
# any mention of the raw machinery is a finding.
FRAME_FLAGS_RE = re.compile(r"\bframe_flags\s*::")
FRAME_WORD_MUT_RE = re.compile(r"\bflags_\s*\[[^\]]*\]\s*(?:\|=|&=|\^=|=(?!=))")


def rule_nl009(f):
    if in_dirs(f.rel, ("src/mm/",)):
        return
    if not in_dirs(f.rel, ("src/", "tools/", "bench/")):
        return
    for i, line in enumerate(f.lines, 1):
        if FRAME_FLAGS_RE.search(line):
            yield Finding(
                f.rel, i, "NL009",
                "raw frame_flags:: bit constant outside src/mm; use the "
                "PageFrame accessors (src/mm/page.h)")
        elif FRAME_WORD_MUT_RE.search(line):
            yield Finding(
                f.rel, i, "NL009",
                "raw write to a packed frame-flags word outside src/mm; a "
                "bitmask write can clobber neighboring bit fields - use the "
                "PageFrame accessors (src/mm/page.h)")


# A degrading admission decision: `return AdmissionVerdict::kDefer;` or an
# assignment `verdict = AdmissionVerdict::kReject`. Comparisons (==, !=,
# <=, >=) and `case` labels are uses of a verdict, not decisions.
NL010_WINDOW = 10
DEGRADE_DECISION_RE = re.compile(
    r"(?:\breturn\s+|(?<![=!<>])=\s*)"
    r"AdmissionVerdict\s*::\s*k(?:Defer|Reject|DowngradeSync)\b")
# Evidence that the decision is observable: a registry-named counter bump,
# a registry-named trace emission, or the RecordVerdict helper (which does
# both and is itself linted here).
NL010_EMIT_RE = re.compile(
    r"(?:counters\s*\(\s*\)|counters_)\s*\.\s*Add\s*\(\s*cnt\s*::\s*k"
    r"|\bTrace\s*\(\s*TraceEvent\s*::\s*k"
    r"|\bEmit\s*\(\s*TraceEvent\s*::\s*k"
    r"|\bRecordVerdict\s*\(")


def rule_nl010(f):
    if not in_dirs(f.rel, ("src/",)):
        return
    for i, line in enumerate(f.lines, 1):
        if line.lstrip().startswith("case"):
            continue
        if not DEGRADE_DECISION_RE.search(line):
            continue
        lo = max(0, i - 1 - NL010_WINDOW)
        hi = min(len(f.lines), i + NL010_WINDOW)
        if any(NL010_EMIT_RE.search(f.lines[j]) for j in range(lo, hi)):
            continue
        yield Finding(
            f.rel, i, "NL010",
            "degrading admission decision with no counter/trace emission "
            "nearby; shed load observably (cnt::/TraceEvent:: registries, "
            "see RecordVerdict in src/nomad/admission.cc)")


# A concurrency-bearing member: synchronization primitive or a shard seam
# object. `mutable` is common on mutexes; std::atomic carries template args.
NL011_MEMBER_RE = re.compile(
    r"(?:^|\n)[ \t]*(?:mutable\s+)?"
    r"(std::mutex|std::condition_variable|std::atomic\s*<[^;]*>|"
    r"Mutex|CondVar|ShardRouter|ShardBarrier)\s+\w+\s*(?:=[^;]*|\{[^;]*\})?;")
NL011_CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:NOMAD_SHARD_CONFINED\s+)?"
                            r"([A-Za-z_]\w*)\s*(?::[^;{]*)?\{")
NL011_ANNOTATION_RE = re.compile(
    r"\bNOMAD_(?:CAPABILITY|SCOPED_CAPABILITY|GUARDED_BY|PT_GUARDED_BY|"
    r"REQUIRES|ACQUIRE|RELEASE|TRY_ACQUIRE|EXCLUDES|ACQUIRED_(?:BEFORE|AFTER)|"
    r"RETURN_CAPABILITY|SHARD_CONFINED|NO_THREAD_SAFETY_ANALYSIS)\b")


def nl011_class_span(stripped, open_idx):
    depth = 0
    for i in range(open_idx, len(stripped)):
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
            if depth == 0:
                return stripped[open_idx:i + 1]
    return stripped[open_idx:]


def rule_nl011(f):
    if not in_dirs(f.rel, ("src/",)) or in_dirs(f.rel, ("src/base/",)):
        return
    stripped = "\n".join(f.lines)
    for m in NL011_CLASS_RE.finditer(stripped):
        name = m.group(1)
        open_idx = stripped.index("{", m.end() - 1)
        span = nl011_class_span(stripped, open_idx)
        member = NL011_MEMBER_RE.search(span)
        if member is None:
            continue
        # The annotation may sit on the class head (NOMAD_SHARD_CONFINED)
        # or on members/methods inside the span.
        head = stripped[m.start():open_idx]
        if NL011_ANNOTATION_RE.search(span) or NL011_ANNOTATION_RE.search(head):
            continue
        line = stripped.count("\n", 0, open_idx + member.start()) + 2
        yield Finding(
            f.rel, line, "NL011",
            "class %s holds concurrency state (%s) but carries no "
            "thread-safety annotation; add NOMAD_GUARDED_BY/NOMAD_CAPABILITY "
            "for lock-protected fields or NOMAD_SHARD_CONFINED for "
            "shard-confined objects (src/base/annotations.h)"
            % (name, member.group(1).split("<")[0].strip()))


# `t.Channel("pcq.depth")` — a complete literal channel name bypasses the
# tl:: constants, so a typo aborts at runtime instead of failing to compile.
# `t.Channel("cnt." + name)` (prefix literal then concatenation) is the
# mechanical derivation pattern for counter/histogram channels and is legal:
# the distinguishing token after the closing quote is `+`, not `)`. The
# stripper blanks a literal to spaces and keeps only its closing quote, so
# a complete-literal argument reads `(   ")` after stripping.
CHANNEL_LIT_RE = re.compile(r"\.\s*Channel\s*\(\s*\"\s*\)")


def rule_nl012(f):
    if not in_dirs(f.rel, ("src/", "tools/", "bench/")):
        return
    for i, line in enumerate(f.lines, 1):
        if CHANNEL_LIT_RE.search(line):
            yield Finding(
                f.rel, i, "NL012",
                "timeline channel name as a complete string literal; use the "
                "tl:: constants from src/obs/event_registry.h (derived "
                "channels compose a \"cnt.\"/\"hist.\" prefix with a registry "
                "name)")


TOKEN_RULES = [
    ("NL001", "PTE bit mutation outside the mechanism layers", rule_nl001),
    ("NL002", "bare assert() instead of NOMAD_CHECK", rule_nl002),
    ("NL003", "nondeterminism sources (rand/clock) outside the seeded Rng", rule_nl003),
    ("NL004", "counter/histogram/span names outside the obs registries", rule_nl004),
    ("NL005", "naked new/delete", rule_nl005),
    ("NL006", "include guard must spell the file path", rule_nl006),
    ("NL007", "<iostream>/<fstream> outside declared I/O endpoints", rule_nl007),
    ("NL008", "shard-owned state mutated outside the shard-message APIs", rule_nl008),
    ("NL009", "frame flags touched outside the PageFrame accessors", rule_nl009),
    ("NL010", "degrading admission decisions must emit a counter/trace", rule_nl010),
    ("NL011", "concurrency-bearing classes must carry thread-safety annotations",
     rule_nl011),
    ("NL012", "timeline channel names outside the tl:: registry", rule_nl012),
]


# --------------------------------------------------------------------------
# Optional libclang backend (CI): AST-precise NL001/NL005


def try_import_clang():
    try:
        import clang.cindex  # noqa: F401  (Debian/Ubuntu: python3-clang)
        return sys.modules["clang.cindex"]
    except Exception:
        return None


def clang_compile_args(compdb_dir, path, cindex):
    try:
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
        cmds = db.getCompileCommands(path)
        if cmds:
            args = list(cmds[0].arguments)[1:]  # drop the compiler itself
            # Strip output/input args; keep -I/-D/-std and friends.
            keep, skip_next = [], False
            for a in args:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-c", path) or a.endswith(os.path.basename(path)):
                    continue
                if a == "-o":
                    skip_next = True
                    continue
                keep.append(a)
            return keep
    except Exception:
        pass
    return ["-std=c++20", "-I."]


def clang_findings(files, compdb_dir, cindex):
    """NL001/NL005 on the real AST. Member writes are matched by base type.

    Strict: a TU that fails to parse, or parses with fatal diagnostics,
    aborts the run with exit 2 — required AST coverage must not silently
    degrade to token-only checking."""
    findings = []
    kind = cindex.CursorKind
    index = cindex.Index.create()
    pte_bits = {"present", "writable", "dirty", "accessed", "prot_none", "shadow_rw", "pfn"}
    for f in files:
        if not f.rel.endswith(".cc"):
            continue
        if not in_dirs(f.rel, ("src/", "tools/")):
            continue
        try:
            tu = index.parse(f.path, args=clang_compile_args(compdb_dir, f.path, cindex))
        except Exception as e:
            print("nomad_lint: clang backend failed to parse %s: %s" % (f.rel, e),
                  file=sys.stderr)
            sys.exit(2)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            for d in fatal:
                print("nomad_lint: clang backend: %s" % d, file=sys.stderr)
            sys.exit(2)

        def visit(node):
            if node.location.file is None or node.location.file.name != f.path:
                for ch in node.get_children():
                    visit(ch)
                return
            if node.kind in (kind.CXX_NEW_EXPR, kind.CXX_DELETE_EXPR) and in_dirs(
                    f.rel, ("src/", "tools/")):
                findings.append(Finding(f.rel, node.location.line, "NL005",
                                        "naked new/delete (AST)"))
            if node.kind in (kind.BINARY_OPERATOR, kind.COMPOUND_ASSIGNMENT_OPERATOR):
                kids = list(node.get_children())
                if kids and kids[0].kind == kind.MEMBER_REF_EXPR:
                    member = kids[0].spelling
                    base = list(kids[0].get_children())
                    base_type = base[0].type.spelling if base else ""
                    if member in pte_bits and "Pte" in base_type and not in_dirs(
                            f.rel, ("src/mm/", "src/nomad/", "src/trace/")):
                        findings.append(Finding(
                            f.rel, node.location.line, "NL001",
                            "PTE bit mutation outside the mechanism layers (AST)"))
            for ch in node.get_children():
                visit(ch)

        visit(tu.cursor)
    return findings


# --------------------------------------------------------------------------
# Driver

SCOPE_DIRS = ("src", "tools", "bench")
SKIP_DIRS = {"build", ".git", "__pycache__"}


def discover(root):
    files = []
    for scope in SCOPE_DIRS:
        top = os.path.join(root, scope)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def load(root, paths):
    out = []
    for p in paths:
        rel = os.path.relpath(p, root)
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as fh:
                out.append(SourceFile(p, rel, fh.read()))
        except OSError as e:
            print("nomad_lint: cannot read %s: %s" % (p, e), file=sys.stderr)
    return out


def run_token_rules(files):
    findings = []
    for f in files:
        for _, _, rule in TOKEN_RULES:
            findings.extend(rule(f))
    return findings


# --------------------------------------------------------------------------
# Selftest: every rule must fire on a known-bad snippet and stay quiet on
# the matching good snippet.

SELFTEST_CASES = [
    ("NL001", "src/policy/bad.cc", "void f(Pte* pte) { pte->dirty = true; }", True),
    ("NL001", "src/mm/ok.cc", "void f(Pte* pte) { pte->dirty = true; }", False),
    ("NL001", "src/policy/ok.cc", "void f(Pte* pte) { bool d = pte->dirty; (void)d; }", False),
    ("NL002", "src/nomad/bad.cc", "void f(int x) { assert(x > 0); }", True),
    ("NL002", "src/nomad/ok.cc",
     "void f(int x) { NOMAD_CHECK(x > 0, \"x=\", x); static_assert(1 + 1 == 2); }", False),
    ("NL003", "src/policy/bad.cc", "int f() { return std::rand(); }", True),
    ("NL003", "src/sim/bad.cc", "std::mt19937 gen;", True),
    ("NL003", "src/workload/bad.cc",
     "auto t = std::chrono::steady_clock::now();", True),
    ("NL003", "src/workload/ok.cc", "Cycles finish_time() { return t_; }", False),
    ("NL004", "src/mm/bad.cc", 'void f(C& c) { c.counters().Add("migrate.promote", 1); }', True),
    ("NL004", "src/mm/ok.cc", "void f(C& c) { c.counters().Add(cnt::kTlbShootdown, 1); }", False),
    ("NL004", "src/nomad/bad_hist.cc",
     'void f(M& ms) { ms.hists().Record("migration.latency", 5); }', True),
    ("NL004", "src/nomad/ok_hist.cc",
     "void f(M& ms) { ms.hists().Record(hist::kMigrationLatency, 5); }", False),
    ("NL004", "src/policy/bad_span.cc",
     "void f(P& p) { ProfScope s(p, static_cast<ProfNode>(3)); }", True),
    ("NL004", "src/obs/ok_span.cc",
     "for (uint8_t i = 0; i < kNumProfNodes; i++) Use(static_cast<ProfNode>(i));", False),
    ("NL005", "src/nomad/bad.cc", "int* p = new int[4];", True),
    ("NL005", "src/nomad/bad2.cc", "void f(int* p) { delete p; }", True),
    ("NL005", "src/nomad/ok.cc",
     "auto p = std::make_unique<int>(3); X(const X&) = delete;", False),
    ("NL005", "src/nomad/ok2.cc", "// a new frame\nconst Pfn new_pfn = 3;", False),
    ("NL006", "src/mm/bad.h", "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif", True),
    ("NL006", "src/mm/good.h", "#ifndef SRC_MM_GOOD_H_\n#define SRC_MM_GOOD_H_\n#endif", False),
    ("NL007", "src/mm/bad.cc", "#include <iostream>", True),
    ("NL007", "src/harness/ok.cc", "#include <iostream>", False),
    ("NL007", "src/mm/ok.cc", "#include <sstream>", False),
    ("NL008", "src/policy/bad_router.cc",
     "void f(ShardRouter& r) { r.Send(0, 1, kShardMsgUser); }", True),
    ("NL008", "src/sim/shard.cc",
     "void ShardRouter::Send(uint32_t from, uint32_t to, uint32_t kind) {}", False),
    ("NL008", "src/harness/sharded_sim.cc",
     "void f(ShardBarrier& b) { b.ArriveAndWait(); }", False),
    ("NL008", "src/nomad/bad_mut.cc",
     "void f(std::vector<S>& shards, int peer) { shards[peer].done = true; }", True),
    ("NL008", "src/policy/bad_mut2.cc",
     "void f(std::vector<Sim*>& sims, int peer) { sims[peer]->stop = 1; }", True),
    ("NL008", "src/policy/ok_read.cc",
     "bool f(const std::vector<S>& shards, int s) { return shards[s].done == true; }",
     False),
    ("NL008", "bench/ok_highlevel.cc",
     "void f() { ShardedRunConfig cfg; RunShardedMicro(cfg); }", False),
    ("NL009", "src/policy/bad_flags.cc",
     "uint32_t m() { return frame_flags::kActive | frame_flags::kReferenced; }", True),
    ("NL009", "src/nomad/bad_word.cc",
     "void f(FrameTable& t, Pfn p) { t.flags_[p] |= 4u; }", True),
    ("NL009", "src/policy/bad_word2.cc",
     "void f(std::vector<uint32_t>& flags_, Pfn p) { flags_[p] = 0; }", True),
    ("NL009", "src/mm/ok_flags.cc",
     "void f(FrameTable& t, Pfn p) { t.flags_[p] |= frame_flags::kActive; }", False),
    ("NL009", "src/policy/ok_accessor.cc",
     "void f(PageFrame f) { f.set_active(true); bool a = f.active(); (void)a; }", False),
    ("NL009", "src/check/ok_read.cc",
     "uint32_t f(const FrameTable& t) { return t.flags_data()[0]; }", False),
    ("NL010", "src/nomad/bad_admit.cc",
     "AdmissionVerdict f() {\n  return AdmissionVerdict::kReject;\n}", True),
    ("NL010", "src/nomad/bad_assign.cc",
     "void f(AdmissionVerdict& v) { v = AdmissionVerdict::kDowngradeSync; }", True),
    ("NL010", "src/nomad/ok_counted.cc",
     "AdmissionVerdict f(C& c) {\n  c.counters().Add(cnt::kAdmissionReject, 1);\n"
     "  return AdmissionVerdict::kReject;\n}", False),
    ("NL010", "src/nomad/ok_recorded.cc",
     "AdmissionVerdict f() {\n"
     "  RecordVerdict(AdmissionVerdict::kDefer, AdmissionSource::kPromotion, 0);\n"
     "  return AdmissionVerdict::kDefer;\n}", False),
    ("NL010", "src/nomad/ok_traced.cc",
     "AdmissionVerdict f(M& ms) {\n  ms.Trace(TraceEvent::kAdmissionVerdict, 0, 1);\n"
     "  return AdmissionVerdict::kDefer;\n}", False),
    ("NL010", "src/nomad/ok_case.cc",
     "void f(AdmissionVerdict v) {\n  switch (v) {\n"
     "    case AdmissionVerdict::kDefer:\n      break;\n  }\n}", False),
    ("NL010", "src/nomad/ok_compare.cc",
     "bool f(AdmissionVerdict v) { return v == AdmissionVerdict::kReject; }", False),
    ("NL010", "src/policy/ok_outside.cc",
     "int f() { return 0; }", False),
    ("NL011", "src/nomad/bad_mutex.h",
     "class Queue {\n public:\n  void Push(int v);\n private:\n"
     "  std::mutex mu_;\n  std::vector<int> items_;\n};", True),
    ("NL011", "src/obs/bad_atomic.h",
     "class Gauge {\n private:\n  std::atomic<uint64_t> value_ = 0;\n};", True),
    ("NL011", "src/harness/bad_barrier.h",
     "struct Phase {\n  ShardBarrier barrier;\n  uint64_t epoch = 0;\n};", True),
    ("NL011", "src/nomad/bad_condvar.h",
     "class Waiter {\n  Mutex mu_;\n  CondVar cv_;\n  bool ready_ = false;\n};", True),
    ("NL011", "src/nomad/ok_guarded.h",
     "class Queue {\n private:\n  Mutex mu_;\n"
     "  std::vector<int> items_ NOMAD_GUARDED_BY(mu_);\n};", False),
    ("NL011", "src/obs/ok_confined.h",
     "class NOMAD_SHARD_CONFINED Gauge {\n private:\n"
     "  std::atomic<uint64_t> value_ = 0;\n};", False),
    ("NL011", "src/base/ok_vocabulary.h",
     "class Mutex {\n private:\n  std::mutex mu_;\n};", False),
    ("NL011", "src/nomad/ok_plain.h",
     "class Plain {\n private:\n  uint64_t value_ = 0;\n};", False),
    ("NL012", "src/harness/bad_channel.cc",
     'void f(Timeline& t) { pcq_ = t.Channel("pcq.depth"); }', True),
    ("NL012", "src/harness/bad_nested.cc",
     'void f(Timeline& t) { t.Set(t.Channel("tier.fast.free_frames"), 1); }', True),
    ("NL012", "src/harness/ok_const.cc",
     "void f(Timeline& t) { pcq_ = t.Channel(tl::kPcqDepth); }", False),
    ("NL012", "src/harness/ok_derived.cc",
     'void f(Timeline& t, const std::string& name) {\n'
     '  t.SetDelta(t.Channel("cnt." + name), 1);\n'
     '  t.Set(t.Channel("hist." + name + ".p50"), 2);\n}', False),
    ("NL012", "tools/ok_variable.cc",
     "void f(Timeline& t, const std::string& ch) { t.Channel(ch); }", False),
]


def selftest():
    failures = 0
    for rule_id, rel, code, expect in SELFTEST_CASES:
        f = SourceFile("<selftest>/" + rel, rel, code + "\n")
        got = [x for x in run_token_rules([f]) if x.rule == rule_id]
        ok = bool(got) == expect
        print("%s %s on %-22s (%s)" % (
            "ok  " if ok else "FAIL", rule_id, rel,
            "fires" if expect else "quiet"))
        if not ok:
            failures += 1
            for g in got:
                print("    unexpected: %s" % g)
    if failures:
        print("SELFTEST FAILED: %d case(s)" % failures)
        return 1
    print("selftest passed: %d cases" % len(SELFTEST_CASES))
    return 0


def main(argv):
    root = "."
    backend = "auto"
    compdb = "build"
    explicit = []
    do_selftest = False
    for arg in argv[1:]:
        if arg == "--selftest":
            do_selftest = True
        elif arg == "--list-rules":
            for rid, desc, _ in TOKEN_RULES:
                print("%s  %s" % (rid, desc))
            return 0
        elif arg.startswith("--root="):
            root = arg.split("=", 1)[1]
        elif arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]
        elif arg.startswith("--compdb="):
            compdb = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            explicit.append(arg)

    if do_selftest:
        return selftest()

    paths = [os.path.join(root, p) if not os.path.isabs(p) else p for p in explicit]
    files = load(root, paths or discover(root))
    findings = run_token_rules(files)

    cindex = try_import_clang() if backend in ("auto", "clang") else None
    if backend == "clang" and cindex is None:
        print("nomad_lint: --backend=clang requested but clang.cindex is not "
              "importable (install python3-clang)", file=sys.stderr)
        return 2
    if cindex is not None:
        seen = {(x.rel, x.line, x.rule) for x in findings}
        for x in clang_findings(files, os.path.join(root, compdb), cindex):
            if (x.rel, x.line, x.rule) not in seen:
                findings.append(x)

    findings.sort(key=lambda x: (x.rel, x.line, x.rule))
    for x in findings:
        print(x)
    engine = "token+clang" if cindex is not None else "token"
    print("nomad_lint: %d file(s), %d finding(s), engine=%s" % (
        len(files), len(findings), engine), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
