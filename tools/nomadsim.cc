// nomadsim: command-line driver for one-off tiered-memory experiments.
//
// Examples:
//   # the paper's medium-WSS read benchmark under every policy
//   ./nomadsim --platform=A --wss_gb=13.5 --rss_gb=27
//
//   # a single policy, write-heavy, with the thrash governor enabled
//   ./nomadsim --policy=nomad --governor --write_fraction=1
//              --wss_gb=27 --rss_gb=27 --wss_fast_gb=16
//
// Flags (defaults in brackets):
//   --platform=A|B|C|D   [A]      testbed from Table 1
//   --policy=...         [all]    no-migration|tpp|memtis-default|
//                                 memtis-quickcool|nomad
//   --scale=N            [64]     size divisor vs the paper's GB
//   --rss_gb --wss_gb --wss_fast_gb --kernel_gb    layout (paper GB)
//   --placement=freq|random [random]
//   --write_fraction=F   [0]
//   --ops=N              [2000000]
//   --threads=N          [2]      legacy mode: simulated app threads;
//                                 sharded mode: OS worker threads
//   --seed=N             [42]
//   --governor           [off]    enable the sec. 5 thrash governor (nomad)
//   --counters           [off]    dump raw event counters after each run
//   --metrics_out=PATH   []       write machine-readable metrics.json
//   --trace_out=PATH     []       write chrome://tracing event timeline(s)
//   --timeline_out=PATH  []       write the telemetry timeline CSV(s)
//                                 (tools/timeline_report input); also adds
//                                 a "timeline" section to metrics.json
//   --timeline_interval=CYCLES [200000] sampling cadence (sharded mode
//                                 rounds it up to whole epochs)
//   --spans              [off]    emit migration-lifecycle span records
//                                 (trace_query --span input)
//
// Sharded parallel mode (see src/harness/sharded_sim.h):
//   --shards=N           [0]      0 = legacy single-Sim run; N>0 partitions
//                                 the machine into N per-NUMA-node shards
//                                 advanced in lockstep virtual-time epochs.
//                                 Results depend on N but NOT on --threads.
//   --app_threads=N      [2]      simulated app threads per shard
//   --epoch=CYCLES       [500000] virtual-time barrier interval
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "src/harness/flags.h"
#include "src/harness/sharded_sim.h"

using namespace nomad;

namespace {

PlatformId ParsePlatform(const std::string& s) {
  if (s == "B") return PlatformId::kB;
  if (s == "C") return PlatformId::kC;
  if (s == "D") return PlatformId::kD;
  return PlatformId::kA;
}

bool ParsePolicy(const std::string& s, PolicyKind* out) {
  for (PolicyKind kind : {PolicyKind::kNoMigration, PolicyKind::kTpp,
                          PolicyKind::kMemtisDefault, PolicyKind::kMemtisQuickCool,
                          PolicyKind::kNomad}) {
    if (s == PolicyKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  MicroRunConfig cfg;
  cfg.platform = ParsePlatform(flags.GetString("platform", "A"));
  cfg.scale_denom = flags.GetUint("scale", 64);
  cfg.rss_gb = flags.GetDouble("rss_gb", 27.0);
  cfg.wss_gb = flags.GetDouble("wss_gb", 13.5);
  cfg.wss_fast_gb = flags.GetDouble("wss_fast_gb", 2.5);
  cfg.kernel_gb = flags.GetDouble("kernel_gb", 3.5);
  cfg.placement = flags.GetString("placement", "random") == "freq" ? Placement::kFrequencyOpt
                                                                   : Placement::kRandom;
  cfg.write_fraction = flags.GetDouble("write_fraction", 0.0);
  cfg.total_ops = flags.GetUint("ops", 2000000);
  cfg.threads = static_cast<int>(flags.GetUint("threads", 2));
  cfg.seed = flags.GetUint("seed", 42);
  const uint32_t shards = static_cast<uint32_t>(flags.GetUint("shards", 0));
  const uint32_t app_threads = static_cast<uint32_t>(flags.GetUint("app_threads", 2));
  const Cycles epoch_cycles = flags.GetUint("epoch", 500000);
  const bool governor = flags.GetBool("governor", false);
  const bool dump_counters = flags.GetBool("counters", false);
  const std::string policy_arg = flags.GetString("policy", "");
  MetricsCollector collector = MetricsCollector::FromFlags("nomadsim", flags);
  // Sampling only runs when an output asked for it: goldens stay identical.
  const Cycles timeline_interval = flags.GetUint("timeline_interval", 200000);
  const bool spans = flags.GetBool("spans", false);
  cfg.timeline_interval = collector.timeline_requested() ? timeline_interval : 0;
  cfg.enable_spans = spans;

  const auto unused = flags.UnusedKeys();
  if (!unused.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& k : unused) {
      std::cerr << " --" << k;
    }
    std::cerr << "\n";
    return 2;
  }

  std::vector<PolicyKind> policies;
  if (!policy_arg.empty()) {
    PolicyKind kind;
    if (!ParsePolicy(policy_arg, &kind)) {
      std::cerr << "unknown policy '" << policy_arg << "'\n";
      return 2;
    }
    policies.push_back(kind);
  } else {
    policies = PoliciesFor(cfg.platform, /*include_no_migration=*/true);
  }

  if (shards > 0) {
    if (governor) {
      std::cerr << "--governor is not supported in sharded mode\n";
      return 2;
    }
    PrintHeader("nomadsim", "sharded parallel micro-benchmark run", cfg.platform,
                cfg.scale_denom);
    std::cout << "RSS " << cfg.rss_gb << " GB, WSS " << cfg.wss_gb << " GB ("
              << cfg.wss_fast_gb << " GB starting fast), " << cfg.total_ops
              << " ops across " << shards << " shard(s) x " << app_threads
              << " app thread(s), " << cfg.threads << " worker thread(s), epoch "
              << epoch_cycles << " cycles\n\n";
    TablePrinter st({"policy", "agg GB/s", "ops", "epochs", "msgs", "promos",
                     "demos", "tpm aborts"});
    for (PolicyKind kind : policies) {
      const PlatformSpec platform_spec = MakePlatform(cfg.platform);
      if (!PolicySupported(kind, platform_spec)) {
        continue;
      }
      ShardedRunConfig scfg;
      scfg.base = cfg;
      scfg.base.policy = kind;
      scfg.base.threads = static_cast<int>(app_threads);
      scfg.shards = shards;
      scfg.exec_threads = static_cast<uint32_t>(std::max(1, cfg.threads));
      scfg.epoch_cycles = epoch_cycles;
      scfg.timeline_interval = cfg.timeline_interval;
      scfg.enable_spans = spans;
      const ShardedRunResult r = RunShardedMicro(scfg, &collector);
      uint64_t promos = 0, demos = 0, aborts = 0;
      for (const MicroRunResult& shard : r.per_shard) {
        promos += Promotions(shard.counters);
        demos += Demotions(shard.counters);
        aborts += shard.tpm_aborts;
      }
      st.AddRow({PolicyKindName(kind), Fmt(r.aggregate_gbps), FmtCount(r.total_ops),
                 FmtCount(r.epochs), FmtCount(r.messages), FmtCount(promos),
                 FmtCount(demos), FmtCount(aborts)});
      if (dump_counters) {
        for (size_t s = 0; s < r.per_shard.size(); s++) {
          std::cout << "--- counters (" << PolicyKindName(kind) << " shard " << s
                    << ") ---\n"
                    << r.per_shard[s].counters.ToString();
        }
      }
    }
    st.Print(std::cout);
    return 0;
  }

  PrintHeader("nomadsim", "one-off micro-benchmark run", cfg.platform, cfg.scale_denom);
  std::cout << "RSS " << cfg.rss_gb << " GB, WSS " << cfg.wss_gb << " GB ("
            << cfg.wss_fast_gb << " GB starting fast), "
            << (cfg.placement == Placement::kFrequencyOpt ? "frequency-opt" : "random")
            << " placement, write fraction " << cfg.write_fraction << ", "
            << cfg.total_ops << " ops on " << cfg.threads << " thread(s)\n\n";

  TablePrinter t({"policy", "transient GB/s", "stable GB/s", "mean lat (cyc)",
                  "p99 (cyc)", "promos", "demos", "tpm aborts"});
  for (PolicyKind kind : policies) {
    const PlatformSpec platform_spec = MakePlatform(cfg.platform);
    if (!PolicySupported(kind, platform_spec)) {
      continue;
    }
    MicroRunConfig run_cfg = cfg;
    run_cfg.policy = kind;
    MicroRunResult r;
    if (kind == PolicyKind::kNomad && governor) {
      // Hand-wire the governed variant through the custom-policy path.
      const Scale scale{cfg.scale_denom};
      const PlatformSpec platform =
          MakePlatform(cfg.platform, scale, cfg.fast_gb, cfg.slow_gb);
      NomadPolicy::Config pcfg;
      pcfg.enable_governor = true;
      Sim sim(platform, std::make_unique<NomadPolicy>(pcfg), kind,
              scale.Pages(cfg.rss_gb) + 16);
      if (spans) {
        sim.ms().set_span_tracing(true);
      }
      if (cfg.timeline_interval > 0) {
        sim.EnableTimeline({cfg.timeline_interval, cfg.timeline_capacity});
      }
      MicroLayout layout;
      layout.rss_pages = scale.Pages(cfg.rss_gb);
      layout.wss_pages = scale.Pages(cfg.wss_gb);
      layout.wss_fast_pages = scale.Pages(cfg.wss_fast_gb);
      layout.kernel_pages = scale.Pages(cfg.kernel_gb);
      layout.placement = cfg.placement;
      ScrambledZipfian zipf(layout.wss_pages, 0.99, cfg.seed);
      const Vpn wss_start = SetupMicroLayout(sim, layout, zipf);
      std::vector<std::unique_ptr<MicroWorkload>> apps;
      for (int th = 0; th < cfg.threads; th++) {
        MicroWorkload::Config wcfg;
        wcfg.base.total_ops = cfg.total_ops / cfg.threads;
        wcfg.base.seed = cfg.seed + 1000 + th;
        wcfg.wss_start = wss_start;
        wcfg.wss_pages = layout.wss_pages;
        wcfg.write_fraction = cfg.write_fraction;
        apps.push_back(std::make_unique<MicroWorkload>(&sim.ms(), &sim.as(), &zipf, wcfg));
        sim.AddWorkload(apps.back().get());
      }
      sim.Run();
      r.report = Analyze(sim);
      r.counters = sim.ms().counters();
      r.tpm_aborts = sim.nomad()->tpm_stats().aborts;
      collector.Capture("nomad+governor", sim, r.report);
    } else {
      r = RunMicroBench(run_cfg, &collector);
    }
    t.AddRow({governor && kind == PolicyKind::kNomad ? "nomad+governor"
                                                     : PolicyKindName(kind),
              Fmt(r.report.transient_gbps), Fmt(r.report.stable_gbps),
              Fmt(r.report.mean_latency_cycles, 0), Fmt(r.report.p99_latency_cycles, 0),
              FmtCount(Promotions(r.counters)), FmtCount(Demotions(r.counters)),
              FmtCount(r.tpm_aborts)});
    if (dump_counters) {
      std::cout << "--- counters (" << PolicyKindName(kind) << ") ---\n"
                << r.counters.ToString();
    }
  }
  t.Print(std::cout);
  return 0;
}
