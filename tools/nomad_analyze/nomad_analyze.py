#!/usr/bin/env python3
"""nomad_analyze: shard-ownership escape analysis for the Nomad simulator.

Upgrades nomad_lint's token-level shard rule (NL008) to a structural
analysis over the whole tree. The analyzer builds an *ownership map* of
shard-confined types — seeded by the NOMAD_SHARD_CONFINED marker attribute
(src/base/annotations.h) and the Sim root, then closed over the member
object graph (everything a Sim owns is confined with it) — and reports:

  NA001  pointer/reference to confined state smuggled into a ShardMsg
         payload (reinterpret_cast / C-cast of an address into the integer
         arguments of ShardRouter::Send / Stage or a ShardMsg initializer)
  NA002  by-reference lambda capture crossing a thread seam (std::thread,
         std::async, a thread-pool emplace, or a fault_factory assignment)
         outside the sanctioned shard runtime
  NA003  pointer/reference to a shard-confined type in static or
         namespace-scope storage (confined state must never be reachable
         from another shard through a global)
  NA004  cross-shard object access (`sims[i]->`, `shards[i].`) outside the
         shard runtime's epoch/drain/setup/merge entry points
  NA005  nondeterminism source (wall clock, OS randomness) reachable from
         simulation code via the call graph — the call-graph upgrade of
         nomad_lint NL003

Two backends:
  internal  no-deps structural engine (default; carries the full selftest)
  clang     python3 clang.cindex over compile_commands.json; cross-checks
            the ownership seeds against the real AST annotate attributes
            and runs AST-level escape checks. Strict: unavailable bindings
            or TU parse errors fail the run.
  auto      clang when importable, internal otherwise

Findings are suppressed through a baseline file (default
tools/nomad_analyze/baseline.txt) of `rule|path|fingerprint` lines, where
the fingerprint hashes the finding's normalized source line so entries
survive unrelated line drift. Every baseline entry must carry a
justification comment; --update-baseline regenerates the file from current
findings with TODO placeholders.

Exit codes: 0 = clean (or fully baselined), 1 = findings, 2 = usage/error.
"""

import argparse
import hashlib
import json
import os
import re
import sys

TOOL_VERSION = "nomad-analyze-1"

RULES = {
    "NA001": "pointer escapes into ShardMsg payload",
    "NA002": "by-ref lambda capture crosses a thread seam",
    "NA003": "pointer to shard-confined type in static storage",
    "NA004": "cross-shard object access outside the shard runtime",
    "NA005": "nondeterminism source reachable from sim code",
}

# Files that ARE the shard runtime: the lockstep loop, the router, and the
# chaos harness own the cross-shard seams, so thread spawns and sims[s]
# indexing inside them are the mechanism, not a violation.
SHARD_RUNTIME_FILES = {
    "src/sim/shard.cc",
    "src/sim/shard.h",
    "src/harness/sharded_sim.cc",
    "src/harness/sharded_sim.h",
}

# Function names allowed to index across the shard array even outside the
# runtime files (single-threaded setup and merge phases).
SHARD_RUNTIME_FUNCS = {
    "RunLockstep",
    "RunShardedMicro",
    "RunShardedYcsb",
    "RunChaosCell",
}

# Ownership-map roots beyond the NOMAD_SHARD_CONFINED markers. Sim is the
# canonical per-shard object: everything it transitively owns is confined.
OWNERSHIP_SEEDS = {"Sim"}

# Wall-clock / OS-randomness sinks (NA005). The sim's virtual clock methods
# (Engine::now, Clock) do not match: every pattern is anchored on the
# std::chrono / libc spelling.
NONDET_SINKS = [
    (re.compile(r"steady_clock::now"), "std::chrono::steady_clock::now"),
    (re.compile(r"system_clock::now"), "std::chrono::system_clock::now"),
    (re.compile(r"high_resolution_clock::now"), "std::chrono::high_resolution_clock::now"),
    (re.compile(r"std::random_device|\brandom_device\s+\w"), "std::random_device"),
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w:.])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(nullptr|NULL|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
]

# Directories whose functions count as "simulation paths" for NA005 roots.
SIM_PATH_PREFIXES = ("src/",)


# --------------------------------------------------------------------------
# Source model
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving offsets and
    newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        self.lines = self.stripped.split("\n")
        self.raw_lines = text.split("\n")


class Finding:
    def __init__(self, rule, path, line, message, snippet):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based
        self.message = message
        self.snippet = snippet.strip()

    def fingerprint(self):
        norm = re.sub(r"\s+", " ", self.snippet)
        h = hashlib.sha1(
            ("%s|%s|%s" % (self.rule, self.path, norm)).encode()).hexdigest()
        return h[:12]

    def report_line(self):
        return "%s:%d: [%s] %s\n    %s\n    repro: nomad_analyze.py --only %s --file %s" % (
            self.path, self.line, self.rule, self.message, self.snippet,
            self.rule, self.path)

    def to_json(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


def match_brace_span(text, open_idx):
    """Returns the index one past the brace that closes text[open_idx]=='{',
    or len(text) if unbalanced."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


CLASS_RE = re.compile(
    r"\b(class|struct)\s+(?:NOMAD_SHARD_CONFINED\s+)?([A-Za-z_]\w*)\s*(?::[^;{]*)?\{")
MARKED_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+NOMAD_SHARD_CONFINED\s+([A-Za-z_]\w*)")


def collect_classes(files):
    """Returns (marked, members) where marked is the set of class names
    carrying NOMAD_SHARD_CONFINED and members maps class name -> set of
    type-name tokens referenced by its member declarations."""
    marked = set()
    members = {}
    for f in files:
        for m in MARKED_CLASS_RE.finditer(f.stripped):
            marked.add(m.group(2) if m.lastindex == 2 else m.group(1))
        for m in CLASS_RE.finditer(f.stripped):
            name = m.group(2)
            open_idx = f.stripped.index("{", m.end() - 1)
            body = f.stripped[open_idx:match_brace_span(f.stripped, open_idx)]
            # Type-name tokens from member declarations: every identifier
            # that begins with an uppercase letter (repo convention for
            # class names), including template arguments, e.g.
            # std::unique_ptr<Sim>, std::vector<MicroShardState>.
            refs = set(re.findall(r"\b([A-Z]\w+)\b", body))
            members.setdefault(name, set()).update(refs)
    return marked, members


def ownership_closure(marked, members):
    """Closes the confined set over the member object graph: a class whose
    instances live inside a confined class is confined with it."""
    confined = set(marked) | (OWNERSHIP_SEEDS & set(members))
    work = list(confined)
    while work:
        cls = work.pop()
        for ref in members.get(cls, ()):  # member-of edges
            if ref in members and ref not in confined:
                confined.add(ref)
                work.append(ref)
    return confined


FUNC_RE = re.compile(
    r"(?:^|\n)[ \t]*(?:template\s*<[^\n]*>\s*\n[ \t]*)?"
    r"(?:[\w:~<>,*& \t]+?[ \t*&])?"
    r"((?:[A-Za-z_]\w*::)*[A-Za-z_~]\w*)\s*\([^;{}()]*(?:\([^()]*\)[^;{}()]*)*\)"
    r"\s*(?:const\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>]+\s*)?\{")

FUNC_KEYWORD_BLOCKLIST = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "static_assert",
}


class FuncSpan:
    def __init__(self, name, start_line, end_line, body):
        self.name = name
        self.start_line = start_line
        self.end_line = end_line
        self.body = body


def collect_functions(f):
    """Heuristic function-definition spans (name, line range, body text).
    Good enough for scope attribution and the NA005 call graph; anything it
    misses simply isn't attributed, it never misattributes lines to the
    wrong span because spans are brace-matched."""
    spans = []
    for m in FUNC_RE.finditer(f.stripped):
        name = m.group(1).split("::")[-1]
        if name in FUNC_KEYWORD_BLOCKLIST:
            continue
        open_idx = f.stripped.index("{", m.end() - 1)
        close_idx = match_brace_span(f.stripped, open_idx)
        start_line = f.stripped.count("\n", 0, m.start()) + 1
        end_line = f.stripped.count("\n", 0, close_idx) + 1
        spans.append(FuncSpan(name, start_line, end_line,
                              f.stripped[open_idx:close_idx]))
    return spans


def enclosing_function(spans, line):
    """Innermost (shortest) span containing the line."""
    best = None
    for s in spans:
        if s.start_line <= line <= s.end_line:
            if best is None or (s.end_line - s.start_line) < (best.end_line - best.start_line):
                best = s
    return best


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

SEND_CALL_RE = re.compile(r"\b(?:Send|Stage)\s*\(")
SHARDMSG_INIT_RE = re.compile(r"\bShardMsg\s*\{")
PTR_SMUGGLE_RE = re.compile(
    r"reinterpret_cast\s*<\s*(?:u?int(?:64|ptr)_t|unsigned\s+long(?:\s+long)?)\s*>"
    r"|\(\s*(?:u?int(?:64|ptr)_t|unsigned\s+long)\s*\)\s*&")


def balanced_args(text, open_idx, open_ch="(", close_ch=")"):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return text[open_idx:i + 1]
    return text[open_idx:]


def rule_na001(f, ctx):
    """Pointers cast to integers inside Send/Stage arguments or ShardMsg
    initializers: the payload words are value-only by contract."""
    for pat, open_ch, close_ch in ((SEND_CALL_RE, "(", ")"),
                                   (SHARDMSG_INIT_RE, "{", "}")):
        for m in pat.finditer(f.stripped):
            open_idx = f.stripped.index(open_ch, m.end() - 1)
            args = balanced_args(f.stripped, open_idx, open_ch, close_ch)
            sm = PTR_SMUGGLE_RE.search(args)
            if sm is None:
                continue
            line = f.stripped.count("\n", 0, open_idx + sm.start()) + 1
            yield Finding("NA001", f.path, line,
                          "pointer cast to integer inside a ShardMsg payload; "
                          "messages may carry values only — the pointee is "
                          "confined to the sending shard",
                          f.raw_lines[line - 1])


THREAD_SEAM_RES = [
    (re.compile(r"\bstd::thread\b[^;({]*[({]"), "std::thread"),
    (re.compile(r"\bstd::async\s*\("), "std::async"),
    (re.compile(r"\b\w*(?:pool|threads|workers)\w*\.(?:emplace_back|push_back)\s*\("),
     "thread-pool enqueue"),
    (re.compile(r"\bfault_factory\s*=\s*"), "fault_factory assignment"),
]
BYREF_CAPTURE_RE = re.compile(r"\[\s*&")


def rule_na002(f, ctx):
    """A [&]-capturing lambda handed to a thread constructor, async
    launch, pool enqueue, or fault_factory slot: references inside it can
    alias shard-confined state on a foreign thread."""
    if f.path in SHARD_RUNTIME_FILES:
        return
    for pat, what in THREAD_SEAM_RES:
        for m in pat.finditer(f.stripped):
            # The capture list must open shortly after the seam token —
            # same statement, allowing the lambda to start on a following
            # line.
            window = f.stripped[m.end():m.end() + 160]
            stmt_end = window.find(";")
            if stmt_end != -1:
                window = window[:stmt_end + 1]
            cm = BYREF_CAPTURE_RE.search(window)
            if cm is None:
                continue
            line = f.stripped.count("\n", 0, m.start()) + 1
            yield Finding("NA002", f.path, line,
                          "by-reference lambda capture handed to %s; captured "
                          "references cross the thread seam — capture by "
                          "value or route through ShardRouter messages" % what,
                          f.raw_lines[line - 1])


STATIC_DECL_RE = re.compile(
    r"(?:^|\n)[ \t]*(static\s+)?((?:[\w:]+\s+)*?([A-Za-z_]\w*)\s*(?:<[^;<>]*>)?\s*[*&])\s*"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*)?;")

NAMESPACE_BRACE_RE = re.compile(r"\bnamespace(\s+[A-Za-z_]\w*)?\s*$")


def namespace_scope_mask(stripped):
    """Per-character: True iff the position is at namespace scope — outside
    every paren and outside every brace pair except namespace braces. This
    is what separates a real global from a class member, a function local,
    or a default argument."""
    mask = [False] * len(stripped)
    brace_stack = []  # one bool per open brace: is it a namespace brace?
    paren = 0
    for i, c in enumerate(stripped):
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        elif c == "{":
            back = stripped[max(0, i - 64):i]
            brace_stack.append(NAMESPACE_BRACE_RE.search(back) is not None)
        elif c == "}":
            if brace_stack:
                brace_stack.pop()
        mask[i] = paren == 0 and all(brace_stack)
    return mask


def rule_na003(f, ctx):
    """Static-storage (or namespace-scope) pointers/references to confined
    types: a global alias makes confined state reachable from any thread."""
    confined = ctx["confined"]
    mask = namespace_scope_mask(f.stripped)
    for m in STATIC_DECL_RE.finditer(f.stripped):
        is_static, decl, type_name, var = m.group(1), m.group(2), m.group(3), m.group(4)
        if "constexpr" in decl or "const char" in decl:
            continue
        if type_name not in confined:
            continue
        decl_start = m.start() + (1 if f.stripped[m.start():m.start() + 1] == "\n" else 0)
        # Skip leading whitespace to the first declaration token.
        while decl_start < len(f.stripped) and f.stripped[decl_start] in " \t\n":
            decl_start += 1
        # A namespace-scope declaration is static storage with or without
        # the keyword; everywhere else (class member, function local,
        # parameter default) only an explicit `static` makes it static.
        if not is_static and not (decl_start < len(mask) and mask[decl_start]):
            continue
        line = f.stripped.count("\n", 0, decl_start) + 1
        yield Finding("NA003", f.path, line,
                      "'%s' stores a pointer to shard-confined type %s in "
                      "static storage; confined state must only be reachable "
                      "through its owning shard" % (var, type_name),
                      f.raw_lines[line - 1])


CROSS_SHARD_RE = re.compile(r"\b(sims?|shards)\s*\[\s*[^]]+\]\s*(?:->|\.)")


def rule_na004(f, ctx):
    """Indexing the shard array outside the shard runtime: only the
    lockstep loop's entry points may reach across sims[i]."""
    if f.path in SHARD_RUNTIME_FILES:
        return
    if not f.path.startswith("src/"):
        return
    spans = ctx["functions"][f.path]
    for m in CROSS_SHARD_RE.finditer(f.stripped):
        line = f.stripped.count("\n", 0, m.start()) + 1
        inside = enclosing_function(spans, line)
        if inside is not None and inside.name in SHARD_RUNTIME_FUNCS:
            continue
        yield Finding("NA004", f.path, line,
                      "cross-shard object access outside the shard runtime "
                      "(function %s); route through ShardRouter messages or "
                      "one of %s" % (inside.name if inside else "<file scope>",
                                     "/".join(sorted(SHARD_RUNTIME_FUNCS))),
                      f.raw_lines[line - 1])


CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def rule_na005(files, ctx):
    """Call-graph reachability from simulation functions to wall-clock /
    randomness sinks. Direct uses and transitive chains both fire; the
    chain is spelled out in the message."""
    # function name -> list of (path, span)
    defs = {}
    for f in files:
        for s in ctx["functions"][f.path]:
            defs.setdefault(s.name, []).append((f.path, s))

    def sink_in(body):
        for pat, label in NONDET_SINKS:
            if pat.search(body):
                return label
        return None

    # memo: func name -> (sink label, chain tuple) or None
    memo = {}

    def reach(name, stack):
        if name in memo:
            return memo[name]
        if name in stack:
            return None
        entries = defs.get(name)
        if not entries:
            return None
        stack = stack | {name}
        for _path, span in entries:
            label = sink_in(span.body)
            if label:
                memo[name] = (label, (name,))
                return memo[name]
        for _path, span in entries:
            for callee in set(CALL_RE.findall(span.body)):
                if callee == name or callee in FUNC_KEYWORD_BLOCKLIST:
                    continue
                r = reach(callee, stack)
                if r:
                    memo[name] = (r[0], (name,) + r[1])
                    return memo[name]
        memo[name] = None
        return None

    for f in files:
        if not f.path.startswith(SIM_PATH_PREFIXES):
            continue
        for span in ctx["functions"][f.path]:
            label = sink_in(span.body)
            chain = None
            if label:
                chain = (span.name,)
            else:
                for callee in set(CALL_RE.findall(span.body)):
                    if callee == span.name or callee in FUNC_KEYWORD_BLOCKLIST:
                        continue
                    r = reach(callee, frozenset({span.name}))
                    if r:
                        label, chain = r[0], (span.name,) + r[1]
                        break
            if label is None:
                continue
            line = span.start_line
            yield Finding("NA005", f.path, line,
                          "nondeterminism source %s reachable from sim "
                          "function via %s; use the virtual clock / seeded "
                          "RNG instead" % (label, " -> ".join(chain)),
                          f.raw_lines[line - 1])


PER_FILE_RULES = {
    "NA001": rule_na001,
    "NA002": rule_na002,
    "NA003": rule_na003,
    "NA004": rule_na004,
}


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------

def build_context(files):
    marked, members = collect_classes(files)
    confined = ownership_closure(marked, members)
    functions = {f.path: collect_functions(f) for f in files}
    return {"marked": marked, "confined": confined, "functions": functions}


def analyze(files, only=None, cache_dir=None):
    ctx = build_context(files)
    findings = []
    ctx_key = hashlib.sha256(
        (TOOL_VERSION + "|" + ",".join(sorted(ctx["confined"]))).encode()).hexdigest()
    for f in files:
        cached = None
        cache_path = None
        if cache_dir:
            key = hashlib.sha256(
                (ctx_key + "|" + f.path + "|" + f.text).encode()).hexdigest()
            cache_path = os.path.join(cache_dir, key + ".json")
            if os.path.exists(cache_path):
                try:
                    with open(cache_path) as fh:
                        cached = json.load(fh)
                except (OSError, ValueError):
                    cached = None
        if cached is not None:
            file_findings = [Finding(d["rule"], d["path"], d["line"],
                                     d["message"], d["snippet"])
                             for d in cached]
        else:
            file_findings = []
            for rule_id, fn in PER_FILE_RULES.items():
                file_findings.extend(fn(f, ctx))
            if cache_path:
                os.makedirs(cache_dir, exist_ok=True)
                with open(cache_path, "w") as fh:
                    json.dump([x.to_json() for x in file_findings], fh)
        findings.extend(file_findings)
    findings.extend(rule_na005(files, ctx))  # cross-file: never cached
    if only:
        findings = [x for x in findings if x.rule == only]
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings, ctx


def load_files(root, paths=None):
    files = []
    if paths is None:
        paths = []
        for sub in ("src", "bench", "tools"):
            top = os.path.join(root, sub)
            for dirpath, _dirs, names in os.walk(top):
                for name in sorted(names):
                    if name.endswith((".cc", ".h")):
                        paths.append(os.path.relpath(
                            os.path.join(dirpath, name), root))
        paths.sort()
    for rel in paths:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                files.append(SourceFile(rel.replace(os.sep, "/"), fh.read()))
        except OSError as e:
            print("nomad_analyze: cannot read %s: %s" % (rel, e), file=sys.stderr)
            sys.exit(2)
    return files


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path) as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split("|")
            if len(parts) != 3:
                print("nomad_analyze: malformed baseline line: %s" % raw.rstrip(),
                      file=sys.stderr)
                sys.exit(2)
            entries.add(tuple(p.strip() for p in parts))
    return entries


def baseline_key(finding):
    return (finding.rule, finding.path, finding.fingerprint())


def write_baseline(path, findings):
    with open(path, "w") as fh:
        fh.write("# nomad_analyze findings baseline.\n")
        fh.write("# Format: rule|path|fingerprint   (fingerprint = content hash,\n")
        fh.write("# stable across line drift). Every entry needs a justification\n")
        fh.write("# comment explaining why the finding is a false positive.\n")
        for x in findings:
            fh.write("# TODO: justify.\n")
            fh.write("%s|%s|%s\n" % baseline_key(x))


# --------------------------------------------------------------------------
# clang.cindex backend (optional, strict when requested)
# --------------------------------------------------------------------------

def try_import_clang():
    try:
        import clang.cindex as cindex  # type: ignore
        return cindex
    except Exception:
        return None


def clang_findings(root, compdb_dir, cindex, text_confined):
    """Walks every TU from compile_commands.json; returns the set of class
    names carrying the nomad::shard_confined annotate attribute in the AST
    plus AST-level NA003 findings. Strict: TU parse errors are fatal — a
    TU the analyzer cannot see is a TU it cannot vouch for."""
    try:
        db = cindex.CompilationDatabase.fromDirectory(compdb_dir)
    except cindex.CompilationDatabaseError:
        print("nomad_analyze: cannot load compile_commands.json from %s"
              % compdb_dir, file=sys.stderr)
        sys.exit(2)
    index = cindex.Index.create()
    annotated = set()
    findings = []
    seen_files = set()
    for cmd in db.getAllCompileCommands():
        path = os.path.normpath(cmd.filename)
        if path in seen_files:
            continue
        seen_files.add(path)
        args = [a for a in list(cmd.arguments)[1:] if a != cmd.filename]
        tu = index.parse(cmd.filename, args=args)
        bad = [d for d in tu.diagnostics if d.severity >= 3]
        if bad:
            for d in bad:
                print("nomad_analyze: %s" % d, file=sys.stderr)
            sys.exit(2)
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.CLASS_DECL,
                            cindex.CursorKind.STRUCT_DECL):
                for ch in cur.get_children():
                    if (ch.kind == cindex.CursorKind.ANNOTATE_ATTR
                            and ch.spelling == "nomad::shard_confined"):
                        annotated.add(cur.spelling)
            elif cur.kind == cindex.CursorKind.VAR_DECL:
                try:
                    static_dur = cur.storage_class == cindex.StorageClass.STATIC
                except AttributeError:
                    static_dur = False
                t = cur.type
                if (static_dur and t.kind == cindex.TypeKind.POINTER
                        and t.get_pointee().spelling.split("::")[-1] in text_confined):
                    loc = cur.location
                    rel = os.path.relpath(str(loc.file), root) if loc.file else "?"
                    findings.append(Finding(
                        "NA003", rel.replace(os.sep, "/"), loc.line,
                        "[clang] static pointer to confined type %s"
                        % t.get_pointee().spelling, cur.spelling))
    return annotated, findings


# --------------------------------------------------------------------------
# Selftest corpus
# --------------------------------------------------------------------------

SELFTEST_SUPPORT = """
#include "src/base/annotations.h"
class NOMAD_SHARD_CONFINED FramePool { int x_; };
class NOMAD_SHARD_CONFINED CounterSet { int y_; };
class Sim {
 public:
  FramePool pool_;
  LruList lru_;
};
class LruList { int z_; };
class FreeType { int w_; };
"""

# (case name, rule, path, code, expect_fire)
SELFTEST_CASES = [
    ("na001_reinterpret_into_stage", "NA001", "src/sim/bad1.cc", """
void Leak(ShardRouter& r, FramePool& pool) {
  r.Stage(0, 1, kShardMsgUser, reinterpret_cast<uint64_t>(&pool), 0);
}
""", True),
    ("na001_uintptr_into_send", "NA001", "src/sim/bad2.cc", """
void Leak(ShardRouter& r, CounterSet* c) {
  r.Send(0, 1, kShardMsgUser, reinterpret_cast<uintptr_t>(c), 0);
}
""", True),
    ("na001_ccast_into_msg_init", "NA001", "src/sim/bad3.cc", """
ShardMsg Make(FramePool& pool) {
  return ShardMsg{0, kShardMsgUser, 0, (uint64_t)&pool, 0};
}
""", True),
    ("na001_plain_values_ok", "NA001", "src/sim/good1.cc", """
void Report(ShardRouter& r, uint64_t ops, uint64_t now) {
  r.Stage(0, 1, kShardMsgProgress, ops, now);
}
""", False),
    ("na002_std_thread_byref", "NA002", "src/nomad/bad4.cc", """
void Spawn(CounterSet& counters) {
  std::thread t([&] { counters.Add(1); });
  t.join();
}
""", True),
    ("na002_async_byref", "NA002", "src/nomad/bad5.cc", """
void Launch(FramePool& pool) {
  auto fut = std::async(std::launch::async, [&pool] { pool.Use(); });
}
""", True),
    ("na002_pool_emplace_byref", "NA002", "src/nomad/bad6.cc", """
void Fill(std::vector<std::thread>& pool, Sim& sim) {
  pool.emplace_back([&sim] { sim.Step(); });
}
""", True),
    ("na002_fault_factory_byref", "NA002", "src/nomad/bad7.cc", """
void Arm(ShardedRunConfig& cfg, Sim& sim) {
  cfg.fault_factory = [&sim](uint32_t shard) { return sim.MakeInjector(shard); };
}
""", True),
    ("na002_byvalue_ok", "NA002", "src/nomad/good2.cc", """
void Spawn(uint64_t seed) {
  std::thread t([seed] { Work(seed); });
  t.join();
}
""", False),
    ("na002_runtime_file_ok", "NA002", "src/harness/sharded_sim.cc", """
void RunPool(std::vector<std::thread>& pool) {
  pool.emplace_back([&] { Work(); });
}
""", False),
    ("na003_static_confined_ptr", "NA003", "src/mm/bad8.cc", """
static FramePool* g_pool = nullptr;
void Touch() { g_pool = nullptr; }
""", True),
    ("na003_namespace_scope_ptr", "NA003", "src/mm/bad9.cc", """
Sim* g_current_sim = nullptr;
""", True),
    ("na003_closure_member_ptr", "NA003", "src/mm/bad10.cc", """
static LruList* g_lru = nullptr;
""", True),
    ("na003_function_local_ok", "NA003", "src/mm/good3.cc", """
void Use(FramePool& pool) {
  FramePool* local = &pool;
  local->Tick();
}
""", False),
    ("na003_unconfined_type_ok", "NA003", "src/mm/good4.cc", """
static FreeType* g_free = nullptr;
""", False),
    ("na004_cross_shard_access", "NA004", "src/nomad/bad11.cc", """
void Steal(std::vector<Sim*>& sims, uint32_t victim) {
  sims[victim]->pool_.Take(1);
}
""", True),
    ("na004_shards_array_access", "NA004", "src/nomad/bad12.cc", """
void Peek(std::vector<ShardState>& shards, uint32_t s) {
  shards[s].counters.Add(1);
}
""", True),
    ("na004_runtime_func_ok", "NA004", "src/nomad/good5.cc", """
void RunLockstep(std::vector<Sim*>& sims) {
  for (uint32_t s = 0; s < sims.size(); s++) {
    sims[s]->Step();
  }
}
""", False),
    ("na005_direct_wall_clock", "NA005", "src/sim/bad13.cc", """
uint64_t Stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
""", True),
    ("na005_transitive_chain", "NA005", "src/sim/bad14.cc", """
static uint64_t Helper() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
uint64_t Epoch() {
  return Helper();
}
""", True),
    ("na005_libc_rand", "NA005", "src/nomad/bad15.cc", """
int Jitter() {
  return rand() % 7;
}
""", True),
    ("na005_virtual_clock_ok", "NA005", "src/sim/good6.cc", """
uint64_t Now(const Engine& engine) {
  return engine.now();
}
""", False),
    ("na005_bench_wall_clock_ok", "NA005", "bench/good7.cc", """
double WallSeconds() {
  return std::chrono::duration<double>(
      std::chrono::steady_clock::now().time_since_epoch()).count();
}
""", False),
]


def run_selftest():
    failures = []
    fired_total = 0
    for name, rule, path, code, expect in SELFTEST_CASES:
        files = [SourceFile("src/base/support.h", SELFTEST_SUPPORT),
                 SourceFile(path, code)]
        findings, _ctx = analyze(files)
        fired = any(x.rule == rule and x.path == path for x in findings)
        if fired != expect:
            failures.append("%s: expected %s, got findings: %s" % (
                name, "fire" if expect else "quiet",
                "; ".join(x.report_line().split("\n")[0] for x in findings) or "none"))
        elif expect:
            fired_total += 1
    positives = sum(1 for c in SELFTEST_CASES if c[4])
    print("nomad_analyze selftest: %d/%d violation cases caught, %d/%d clean "
          "cases quiet" % (fired_total, positives,
                           sum(1 for c in SELFTEST_CASES if not c[4]) - sum(
                               1 for fmsg in failures if "quiet" in fmsg),
                           sum(1 for c in SELFTEST_CASES if not c[4])))
    if failures:
        for msg in failures:
            print("FAIL %s" % msg)
        return 1
    if positives < 12:
        print("FAIL selftest corpus shrank below 12 violation cases")
        return 1
    print("nomad_analyze selftest: OK")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------

def main(argv):
    ap = argparse.ArgumentParser(
        prog="nomad_analyze",
        description="shard-ownership escape analysis over the Nomad tree")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--backend", choices=("internal", "clang", "auto"),
                    default="internal")
    ap.add_argument("--compdb", default="build",
                    help="directory containing compile_commands.json "
                         "(clang backend)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default tools/nomad_analyze/"
                         "baseline.txt under --root)")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--json_out", default=None, help="write findings JSON")
    ap.add_argument("--cache", default=None,
                    help="directory for per-file result cache")
    ap.add_argument("--only", default=None, choices=sorted(RULES),
                    help="run a single rule")
    ap.add_argument("--file", action="append", default=None,
                    help="restrict to these files (repeatable)")
    ap.add_argument("--selftest", action="store_true")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--print-ownership", action="store_true",
                    help="dump the confined-type closure and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print("%s  %s" % (rule_id, RULES[rule_id]))
        return 0
    if args.selftest:
        return run_selftest()

    root = os.path.abspath(args.root)
    files = load_files(root, args.file)
    findings, ctx = analyze(files, only=args.only, cache_dir=args.cache)

    if args.print_ownership:
        print("marked: %s" % " ".join(sorted(ctx["marked"])))
        print("confined closure (%d types): %s"
              % (len(ctx["confined"]), " ".join(sorted(ctx["confined"]))))
        return 0

    cindex = None
    if args.backend in ("clang", "auto"):
        cindex = try_import_clang()
        if cindex is None and args.backend == "clang":
            print("nomad_analyze: --backend=clang requested but clang.cindex "
                  "is unavailable", file=sys.stderr)
            return 2
    if cindex is not None:
        annotated, ast_findings = clang_findings(root, args.compdb, cindex,
                                                 ctx["confined"])
        textual_marked = ctx["marked"]
        lost = textual_marked - annotated
        if lost:
            print("nomad_analyze: NOMAD_SHARD_CONFINED markers missing from "
                  "the AST (macro not expanding?): %s"
                  % " ".join(sorted(lost)), file=sys.stderr)
            return 1
        known = {baseline_key(x) for x in findings}
        findings.extend(x for x in ast_findings if baseline_key(x) not in known)

    baseline_path = args.baseline or os.path.join(
        root, "tools", "nomad_analyze", "baseline.txt")
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print("nomad_analyze: wrote %d entries to %s"
              % (len(findings), baseline_path))
        return 0

    baseline = load_baseline(baseline_path)
    new = [x for x in findings if baseline_key(x) not in baseline]
    suppressed = [x for x in findings if baseline_key(x) in baseline]
    stale = baseline - {baseline_key(x) for x in findings}

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump({
                "version": TOOL_VERSION,
                "findings": [x.to_json() for x in new],
                "suppressed": [x.to_json() for x in suppressed],
                "stale_baseline": sorted("|".join(k) for k in stale),
                "confined_types": sorted(ctx["confined"]),
            }, fh, indent=2)
            fh.write("\n")

    for x in new:
        print(x.report_line())
    if stale:
        for k in sorted(stale):
            print("nomad_analyze: stale baseline entry (finding no longer "
                  "fires — remove it): %s" % "|".join(k), file=sys.stderr)
    print("nomad_analyze: %d finding(s), %d baselined, %d file(s), "
          "%d confined type(s)" % (len(new), len(suppressed), len(files),
                                   len(ctx["confined"])))
    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
