#!/bin/sh
# Build, test and regenerate every paper table/figure.
set -eu
cd "$(dirname "$0")/.."

# On a fresh configure, prefer Ninja when available; an existing build tree
# keeps whatever generator it was configured with.
if [ ! -f build/CMakeCache.txt ] && command -v ninja > /dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc 2> /dev/null || echo 2)"
ctest --test-dir build 2>&1 | tee test_output.txt
# Benches that export nomad-metrics-v1 also get metrics + collapsed-stack
# profiles under artifacts/ (feed the .folded files to a flamegraph tool,
# and metrics/trace JSON to tools/trace_query).
mkdir -p artifacts
for b in build/bench/*; do
  [ -x "$b" ] && [ ! -d "$b" ] && case "$b" in *.a) continue;; esac || continue
  name="$(basename "$b")"
  echo "##### $name"
  case "$name" in
    micro_ops) "$b" --benchmark_min_time=0.2 ;;
    ablation_pcq | ablation_shadowing | fig01_tpp_motivation | fig10_pointer_chase | \
      fig11_redis_ycsb | table2_migration_counts | table4_tpm_success)
      "$b" --metrics_out="artifacts/$name.json" --profile_out="artifacts/$name.folded" ;;
    *) "$b" ;;
  esac
done 2>&1 | tee bench_output.txt
