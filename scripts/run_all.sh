#!/bin/sh
# Build, test and regenerate every paper table/figure.
set -eu
cd "$(dirname "$0")/.."

# On a fresh configure, prefer Ninja when available; an existing build tree
# keeps whatever generator it was configured with.
if [ ! -f build/CMakeCache.txt ] && command -v ninja > /dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc 2> /dev/null || echo 2)"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ ! -d "$b" ] && case "$b" in *.a) continue;; esac || continue
  echo "##### $(basename "$b")"
  if [ "$(basename "$b")" = micro_ops ]; then "$b" --benchmark_min_time=0.2; else "$b"; fi
done 2>&1 | tee bench_output.txt
