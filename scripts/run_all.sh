#!/bin/sh
# Build, test and regenerate every paper table/figure.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ ! -d "$b" ] && case "$b" in *.a) continue;; esac || continue
  echo "##### $(basename "$b")"
  if [ "$(basename "$b")" = micro_ops ]; then "$b" --benchmark_min_time=0.2; else "$b"; fi
done 2>&1 | tee bench_output.txt
