#!/usr/bin/env bash
# Runs nomad_lint over the tree — the same entry point CI's `lint` job uses,
# so a clean local run means a clean CI run.
#
#   scripts/run_lint.sh                 # token engine (no dependencies)
#   scripts/run_lint.sh --backend=clang # AST backend (needs python3-clang
#                                       # and build/compile_commands.json)
#
# Extra arguments are passed through to nomad_lint.py.
set -euo pipefail
cd "$(dirname "$0")/.."

# The linter's own detection logic is validated before its verdict counts.
python3 tools/nomad_lint/nomad_lint.py --selftest >/dev/null

exec python3 tools/nomad_lint/nomad_lint.py --root=. "$@"
