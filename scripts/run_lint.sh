#!/usr/bin/env bash
# Runs the static-analysis suite — the same entry points CI's `lint` and
# `analyze` jobs use, so a clean local run means a clean CI run.
#
#   scripts/run_lint.sh                 # nomad_lint, token engine (no deps)
#   scripts/run_lint.sh --backend=clang # nomad_lint AST backend (needs
#                                       # python3-clang and
#                                       # build/compile_commands.json)
#   scripts/run_lint.sh --analyze       # full suite: nomad_lint + the
#                                       # nomad_analyze ownership/escape
#                                       # analyzer (selftests first)
#
# Other arguments are passed through to nomad_lint.py.
set -euo pipefail
cd "$(dirname "$0")/.."

ANALYZE=0
ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--analyze" ]]; then
    ANALYZE=1
  else
    ARGS+=("$arg")
  fi
done

# Each tool's own detection logic is validated before its verdict counts.
python3 tools/nomad_lint/nomad_lint.py --selftest >/dev/null
python3 tools/nomad_lint/nomad_lint.py --root=. "${ARGS[@]+"${ARGS[@]}"}"

if [[ "$ANALYZE" == "1" ]]; then
  python3 tools/nomad_analyze/nomad_analyze.py --selftest >/dev/null
  python3 tools/nomad_analyze/nomad_analyze.py --root=.
fi
