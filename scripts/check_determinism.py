#!/usr/bin/env python3
"""Determinism gate: run a benchmark twice, byte-compare its metrics.

The simulator's contract is bit-reproducibility: same binary, same seed,
same metrics. This script runs the given bench command twice with
--metrics_out pointing at two files and compares the parsed JSON after
dropping volatile keys (none exist today — metrics.json carries virtual
time only — but the ignore list keeps the gate honest if an environment
field is ever added).

  scripts/check_determinism.py ./build/bench/ablation_shadowing
  scripts/check_determinism.py --ignore=hostname ./build/bench/micro ...

With --threads-compare=1,4 the command additionally runs once per listed
worker-thread count (appending --threads=N) and every run's metrics must be
byte-identical to the first: the sharded parallel engine's contract is that
OS thread assignment never leaks into simulation results (src/sim/shard.h).

  scripts/check_determinism.py --threads-compare=1,4 \
      ./build/tools/nomadsim --policy=nomad --shards=4 --ops=400000

Exit status: 0 identical, 1 diverged, 2 usage/run error.
"""

import json
import subprocess
import sys
import tempfile
import os

DEFAULT_IGNORE = ()  # metrics.json has no wall-clock or host fields


def scrub(node, ignore):
    if isinstance(node, dict):
        return {k: scrub(v, ignore) for k, v in sorted(node.items()) if k not in ignore}
    if isinstance(node, list):
        return [scrub(v, ignore) for v in node]
    return node


def run_once(cmd, out_path):
    full = cmd + ["--metrics_out=%s" % out_path]
    proc = subprocess.run(full, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
        sys.stderr.write("check_determinism: command failed: %s\n" % " ".join(full))
        sys.exit(2)
    with open(out_path, "r", encoding="utf-8") as fh:
        return fh.read()


def first_divergence(a, b):
    for i, (x, y) in enumerate(zip(a.splitlines(), b.splitlines())):
        if x != y:
            return i + 1, x, y
    return None


def compare_thread_counts(cmd, counts, tmp):
    """Byte-compare metrics across worker-thread counts; 0 ok, 1 diverged."""
    runs = []
    for n in counts:
        out = os.path.join(tmp, "threads_%s.json" % n)
        runs.append((n, run_once(cmd + ["--threads=%s" % n], out)))
    base_n, base_raw = runs[0]
    for n, raw in runs[1:]:
        if raw != base_raw:
            div = first_divergence(base_raw, raw)
            sys.stderr.write(
                "determinism: FAILED — --threads=%s diverged from --threads=%s\n"
                % (n, base_n))
            if div:
                sys.stderr.write(
                    "  first differing line %d:\n  threads=%s: %s\n  threads=%s: %s\n"
                    % (div[0], base_n, div[1], n, div[2]))
            return 1
    print("determinism: OK across --threads={%s} (byte-identical metrics, %d bytes)"
          % (",".join(counts), len(base_raw)))
    return 0


def main(argv):
    ignore = set(DEFAULT_IGNORE)
    thread_counts = []
    cmd = []
    for arg in argv[1:]:
        if arg.startswith("--ignore="):
            ignore.update(arg.split("=", 1)[1].split(","))
        elif arg.startswith("--threads-compare="):
            thread_counts = [t for t in arg.split("=", 1)[1].split(",") if t]
        else:
            cmd.append(arg)
    if not cmd:
        sys.stderr.write(__doc__)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        if thread_counts:
            rc = compare_thread_counts(cmd, thread_counts, tmp)
            if rc != 0:
                return rc

        a_path = os.path.join(tmp, "run_a.json")
        b_path = os.path.join(tmp, "run_b.json")
        raw_a = run_once(cmd, a_path)
        raw_b = run_once(cmd, b_path)

        if raw_a == raw_b:
            print("determinism: OK (byte-identical metrics, %d bytes)" % len(raw_a))
            return 0

        # Bytes differ; see whether it is real data divergence or only a
        # volatile key the caller asked to ignore.
        try:
            norm_a = json.dumps(scrub(json.loads(raw_a), ignore), indent=1)
            norm_b = json.dumps(scrub(json.loads(raw_b), ignore), indent=1)
        except ValueError as e:
            sys.stderr.write("check_determinism: metrics are not valid JSON: %s\n" % e)
            return 2
        if norm_a == norm_b:
            print("determinism: OK modulo ignored keys (%s)" % ",".join(sorted(ignore)))
            return 0

        div = first_divergence(norm_a, norm_b)
        sys.stderr.write("determinism: FAILED — two runs of the same command diverged\n")
        if div:
            sys.stderr.write("  first differing line %d:\n  run A: %s\n  run B: %s\n" % div)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
