#!/usr/bin/env python3
"""Gate bench metrics against checked-in baselines.

Compares a freshly produced metrics.json (schema nomad-metrics-v1, written
by bench binaries via --metrics_out) with the baseline of the same benchmark
under bench/baselines/. Runs are matched by label; per-run "report" metrics
are compared direction-aware:

  higher is better:  transient_gbps, stable_gbps, overall_gbps, ops_per_sec
  lower is better:   mean_latency_cycles, p99_latency_cycles

A metric regresses when it is worse than baseline by more than --threshold
(relative). Metrics whose baseline is ~0 are skipped, as are labels missing
from either side (reported, but only fatal with --strict-labels).

The simulator is deterministic, so on an unchanged tree current == baseline
exactly; the tolerance absorbs intentional small behavior shifts.

Files with schema nomad-throughput-v1 (written by bench_throughput) are
also accepted: their single report metric, pages_per_sec, is wall-clock
simulation throughput and is gated higher-is-better at the same threshold.
Wall clock is noisy where virtual time is not, so throughput gates should
keep the default 20% headroom.

Usage:
  check_bench_regression.py --current m.json --baseline bench/baselines/x.json
  check_bench_regression.py --current m.json   # baseline inferred from
                                               # the "benchmark" field
"""

import argparse
import json
import os
import sys

HIGHER_BETTER = ["transient_gbps", "stable_gbps", "overall_gbps", "ops_per_sec",
                 "pages_per_sec"]
LOWER_BETTER = ["mean_latency_cycles", "p99_latency_cycles"]

KNOWN_SCHEMAS = ("nomad-metrics-v1", "nomad-throughput-v1")

# Baselines below this are treated as "no signal" for relative comparison.
EPSILON = 1e-9


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in KNOWN_SCHEMAS:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc.get("benchmark", ""), {run["label"]: run for run in doc.get("runs", [])}


def relative_change(current, baseline):
    return (current - baseline) / baseline


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", required=True, help="metrics.json from this build")
    parser.add_argument("--baseline",
                        help="baseline metrics.json (default: "
                             "<baseline-dir>/<benchmark>.json)")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated relative regression (default 0.20)")
    parser.add_argument("--strict-labels", action="store_true",
                        help="fail when run labels differ between the files")
    args = parser.parse_args()

    bench_id, current = load_runs(args.current)
    baseline_path = args.baseline or os.path.join(args.baseline_dir, f"{bench_id}.json")
    if not os.path.exists(baseline_path):
        sys.exit(f"no baseline at {baseline_path}; generate one with --metrics_out "
                 f"and commit it")
    base_bench_id, baseline = load_runs(baseline_path)
    if bench_id != base_bench_id:
        print(f"warning: comparing benchmark {bench_id!r} against baseline of "
              f"{base_bench_id!r}")

    regressions = []
    compared = 0
    shared = sorted(set(current) & set(baseline))
    missing = sorted(set(baseline) - set(current))
    extra = sorted(set(current) - set(baseline))
    for labels, what in ((missing, "missing from current"), (extra, "not in baseline")):
        for label in labels:
            print(f"note: run {label!r} {what}")
    if args.strict_labels and (missing or extra):
        sys.exit("label sets differ (strict mode)")
    if not shared:
        sys.exit("no common run labels to compare")

    for label in shared:
        cur_report = current[label].get("report", {})
        base_report = baseline[label].get("report", {})
        for metric, sign in [(m, +1) for m in HIGHER_BETTER] + \
                            [(m, -1) for m in LOWER_BETTER]:
            if metric not in cur_report or metric not in base_report:
                continue
            base = base_report[metric]
            if abs(base) < EPSILON:
                continue
            compared += 1
            change = relative_change(cur_report[metric], base)
            worse = -change * sign  # positive = worse, regardless of direction
            marker = ""
            if worse > args.threshold:
                marker = "  << REGRESSION"
                regressions.append((label, metric, base, cur_report[metric], change))
            if marker or abs(change) > args.threshold / 2:
                print(f"{label:40s} {metric:22s} {base:12.4f} -> "
                      f"{cur_report[metric]:12.4f} ({change:+.1%}){marker}")

    print(f"\ncompared {compared} metrics across {len(shared)} runs "
          f"(threshold {args.threshold:.0%})")
    if regressions:
        print(f"{len(regressions)} regression(s):")
        for label, metric, base, cur, change in regressions:
            print(f"  {label}/{metric}: {base:.4f} -> {cur:.4f} ({change:+.1%})")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
