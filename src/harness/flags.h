// Minimal --key=value command-line flag parsing for tools and benches.
//
// Supports `--key=value` and bare `--key` (treated as "true"). Unknown
// keys are collected so callers can reject typos.
#ifndef SRC_HARNESS_FLAGS_H_
#define SRC_HARNESS_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nomad {

class Flags {
 public:
  // Parses argv; non-flag arguments are kept in positional().
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key, const std::string& def = "") const;
  uint64_t GetUint(const std::string& key, uint64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were parsed but never queried (typo detection). Call after
  // all Get* calls.
  std::vector<std::string> UnusedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace nomad

#endif  // SRC_HARNESS_FLAGS_H_
