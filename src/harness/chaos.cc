#include "src/harness/chaos.h"

#include <memory>
#include <sstream>

#include "src/harness/sharded_sim.h"
#include "src/obs/event_registry.h"
#include "src/sim/rng.h"

namespace nomad {

namespace {

double UnitDouble(Rng& rng) {
  return static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
}

// Seed-derived schedules concentrated on the cell's focus kind. Each shard
// derives from its own seed (the same +7919*s spread the partitioner uses
// for workload streams), so shards fault at different times — the
// interesting case for the barrier and the watchdog.
std::unique_ptr<FaultInjector> MakeCellInjector(const ChaosCellConfig& cfg, uint32_t shard) {
  const uint64_t shard_seed = cfg.seed + 7919 * shard;
  auto fi = std::make_unique<FaultInjector>(shard_seed);
  Rng rng(shard_seed ^ 0x50AC50ACull);
  switch (cfg.focus) {
    case ChaosFocus::kShardStall: {
      // A deterministic window of consecutive stalled epochs longer than
      // the watchdog threshold — every cell provokes at least one stall
      // verdict per shard — plus random stalls and delivery delays after.
      FaultSchedule stall;
      stall.trigger_start = 2 + rng.Below(6);
      stall.trigger_count = 5 + rng.Below(4);
      stall.probability = 0.02 + UnitDouble(rng) * 0.08;
      fi->set_schedule(FaultKind::kShardStall, stall);
      FaultSchedule delay;
      delay.probability = 0.05 + UnitDouble(rng) * 0.15;
      fi->set_schedule(FaultKind::kShardDelay, delay);
      break;
    }
    case ChaosFocus::kAllocFailWave: {
      // Each firing arms a 64-opportunity burst of fast-tier allocation
      // failures (see RunLockstep), so pressure arrives in waves rather
      // than as independent misses.
      FaultSchedule wave;
      wave.trigger_start = 1 + rng.Below(4);
      wave.trigger_count = 1;
      wave.probability = 0.05 + UnitDouble(rng) * 0.15;
      fi->set_schedule(FaultKind::kAllocFailWave, wave);
      break;
    }
    case ChaosFocus::kPcqOverflow: {
      FaultSchedule ovf;
      ovf.probability = 0.10 + UnitDouble(rng) * 0.25;
      fi->set_schedule(FaultKind::kPcqOverflow, ovf);
      break;
    }
  }
  return fi;
}

// Counters that record a *graceful degradation* decision: the system chose
// a slower-but-safe path (or flagged one) instead of wedging. The soak
// matrix asserts these are nonzero — a chaos cell whose faults produced no
// observable degradation is not exercising the resilience paths.
uint64_t DegradationCount(const CounterSet& c) {
  return c.Get(cnt::kFaultInjShardStall) + c.Get(cnt::kFaultInjShardDelay) +
         c.Get(cnt::kFaultInjAllocFailWave) + c.Get(cnt::kWatchdogStall) +
         c.Get(cnt::kNomadPcqOverflow) + c.Get(cnt::kNomadDegradedSyncMigration) +
         c.Get(cnt::kNomadSyncFallback) + c.Get(cnt::kNomadPromoteWaitNomem) +
         c.Get(cnt::kNomadAllocFailReclaimMiss) + c.Get(cnt::kMigrateSyncFailNomem);
}

}  // namespace

const char* ChaosFocusName(ChaosFocus f) {
  switch (f) {
    case ChaosFocus::kShardStall:
      return "shard_stall";
    case ChaosFocus::kAllocFailWave:
      return "alloc_fail_wave";
    case ChaosFocus::kPcqOverflow:
      return "pcq_overflow";
  }
  return "?";
}

bool ChaosFocusFromName(const std::string& name, ChaosFocus* out) {
  for (ChaosFocus f : kChaosFocuses) {
    if (name == ChaosFocusName(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

ChaosCellResult RunChaosCell(const ChaosCellConfig& cfg) {
  // An undersized machine: per shard the fast tier holds half the working
  // set, so promotion, demotion, shadow reclaim and the allocation-failure
  // path all run continuously while the faults land.
  ShardedRunConfig scfg;
  scfg.base.platform = PlatformId::kA;
  scfg.base.scale_denom = 64;
  scfg.base.policy = PolicyKind::kNomad;
  scfg.base.rss_gb = 2.0;
  scfg.base.wss_gb = 1.0;
  scfg.base.wss_fast_gb = 0.25;
  scfg.base.kernel_gb = 0.25;
  scfg.base.fast_gb = 0.5;
  scfg.base.slow_gb = 2.0;
  scfg.base.placement = Placement::kRandom;
  scfg.base.write_fraction = 0.3;
  scfg.base.total_ops = cfg.total_ops;
  scfg.base.threads = 1;
  scfg.base.seed = cfg.seed;
  scfg.shards = cfg.shards;
  scfg.exec_threads = cfg.exec_threads;
  scfg.epoch_cycles = 200000;
  scfg.audit = true;
  scfg.watchdog_stall_epochs = 4;
  // The [&cfg] capture is safe: RunShardedMicro invokes the factory from
  // its single-threaded setup loop, before any worker thread exists.
  // nomad_analyze NA002 flags the pattern; baselined with justification in
  // tools/nomad_analyze/baseline.txt.
  scfg.fault_factory = [&cfg](uint32_t shard) { return MakeCellInjector(cfg, shard); };

  const ShardedRunResult run = RunShardedMicro(scfg);

  ChaosCellResult r;
  r.invariant_violations = run.invariant_violations;
  r.faults_injected = run.faults_injected;
  r.watchdog_stalls = run.watchdog_stalls;
  r.epochs = run.epochs;
  r.ok = run.invariant_violations == 0;

  // Canonical recovery record. Everything here is required to be a pure
  // function of (seed, focus): virtual times, sorted counters, queue
  // watermarks, TPM stats and the injectors' hit/opportunity tallies.
  std::ostringstream os;
  os << "chaos_cell seed=" << cfg.seed << " focus=" << ChaosFocusName(cfg.focus)
     << " shards=" << cfg.shards << " ops=" << cfg.total_ops << "\n";
  os << "epochs=" << run.epochs << " messages=" << run.messages
     << " total_ops=" << run.total_ops << " max_vt=" << run.max_virtual_time
     << " watchdog_stalls=" << run.watchdog_stalls << "\n";
  for (size_t s = 0; s < run.per_shard.size(); s++) {
    const MicroRunResult& shard = run.per_shard[s];
    r.degradations += DegradationCount(shard.counters);
    os << "shard " << s << "\n";
    os << "injector " << shard.injector << "\n";
    os << "queues pcq_hwm=" << shard.pcq_hwm << " pending_hwm=" << shard.pending_hwm
       << " overflows=" << shard.pcq_overflows << "\n";
    os << "tpm commits=" << shard.tpm_commits << " aborts=" << shard.tpm_aborts
       << " shadows=" << shard.shadow_pages << "\n";
    os << "frames fast=" << shard.fast_used << " slow=" << shard.slow_used << "\n";
    os << shard.counters.ToString();
  }
  r.recovery = os.str();
  return r;
}

bool ChaosCellDeterministic(ChaosCellConfig cfg, std::string* diff) {
  cfg.exec_threads = 1;
  const ChaosCellResult base = RunChaosCell(cfg);
  cfg.exec_threads = 4;
  const ChaosCellResult wide = RunChaosCell(cfg);
  if (base.recovery == wide.recovery) {
    return true;
  }
  if (diff != nullptr) {
    *diff = "--- threads=1 ---\n" + base.recovery + "--- threads=4 ---\n" + wide.recovery;
  }
  return false;
}

}  // namespace nomad
