// Plain-text table rendering for bench binaries: every figure/table
// reproduction prints the same rows/series the paper reports.
#ifndef SRC_HARNESS_TABLE_H_
#define SRC_HARNESS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace nomad {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Renders with column alignment and a header rule.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `prec` decimals.
std::string Fmt(double v, int prec = 2);
// Formats counts compactly: 1234 -> "1.2K", 2500000 -> "2.5M".
std::string FmtCount(uint64_t v);

}  // namespace nomad

#endif  // SRC_HARNESS_TABLE_H_
