// Sharded parallel runner: N logical shards, each a complete Sim, advanced
// in lockstep virtual-time epochs by a pool of OS worker threads.
//
// Shard = NUMA-node-pair partition. Each shard owns 1/N of both tiers'
// capacity, its own address space, and its own shard-local daemon actors
// (kswapd per tier, kpromote, the PCQ live inside the shard's policy
// instance), exactly as a multi-socket machine partitions into per-socket
// memory nodes. Shards communicate exclusively through the ShardRouter
// (see src/sim/shard.h for the determinism argument); worker threads are
// an execution detail — any --threads value produces byte-identical
// metrics, which scripts/check_determinism.py --threads-compare enforces.
#ifndef SRC_HARNESS_SHARDED_SIM_H_
#define SRC_HARNESS_SHARDED_SIM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault_injector.h"
#include "src/harness/experiment.h"
#include "src/sim/shard.h"

namespace nomad {

struct ShardedRunConfig {
  MicroRunConfig base;        // the full-machine workload, pre-partition
  uint32_t shards = 4;        // logical partition count (affects results)
  uint32_t exec_threads = 1;  // OS worker threads (must NOT affect results)
  Cycles epoch_cycles = 500000;   // virtual-time barrier interval
  uint64_t max_epochs = 1 << 22;  // safety net against stalled shards
  bool audit = false;  // run InvariantChecker on every quiesced shard
  // Chaos seam: when set, every shard gets its own FaultInjector (built
  // from the shard id, so schedules can differ per shard) installed into
  // its MemorySystem before the run. The lockstep loop additionally
  // consults the shard-aware kinds (kShardStall, kShardDelay,
  // kAllocFailWave) once per (shard, epoch) from the shard's OWN injector,
  // which keeps every fault decision a pure function of (shard seed,
  // epoch) — independent of exec_threads.
  std::function<std::unique_ptr<FaultInjector>(uint32_t shard)> fault_factory;
  // Deterministic livelock watchdog: a live shard that reports no progress
  // for this many consecutive epochs is declared stalled — the detection
  // runs in the barrier's drain callback on the drained message stream
  // only, and the verdict is surfaced by the owning shard as a
  // kWatchdogStall trace event plus the watchdog.stall counter. 0 = off.
  uint64_t watchdog_stall_epochs = 0;
  // Time-resolved telemetry: when nonzero, every shard gets a Timeline
  // sampled at lockstep epoch boundaries every ceil(interval/epoch_cycles)
  // epochs — the sample times are epoch multiples, so timelines are
  // byte-identical for any exec_threads value. 0 = off.
  Cycles timeline_interval = 0;
  size_t timeline_capacity = 4096;
  // Migration-lifecycle span records (mig_* trace events) per shard.
  bool enable_spans = false;
};

struct ShardedRunResult {
  std::vector<MicroRunResult> per_shard;  // in shard-id order
  uint64_t total_ops = 0;      // controller's message-accumulated count
  uint64_t epochs = 0;         // lockstep epochs executed
  uint64_t messages = 0;       // cross-shard messages drained
  Cycles max_virtual_time = 0; // slowest shard's final clock
  double aggregate_gbps = 0;   // sum of per-shard overall bandwidth
  uint64_t invariant_violations = 0;  // only populated when cfg.audit
  uint64_t faults_injected = 0;   // sum over shard injectors (0 if none)
  uint64_t watchdog_stalls = 0;   // stall transitions the watchdog flagged
};

// Runs cfg.base partitioned across cfg.shards shards on cfg.exec_threads
// worker threads. Per-shard metrics are captured (in shard-id order) under
// labels "<label>.shard<k>" when a collector is given.
ShardedRunResult RunShardedMicro(const ShardedRunConfig& cfg,
                                 MetricsCollector* collector = nullptr,
                                 const std::string& label = "");

// Same partitioning for the Redis/YCSB application benchmark: each shard
// owns 1/N of the records, the capacity, and the op stream — the natural
// analogue of running one Redis instance per NUMA node pair.
struct ShardedYcsbConfig {
  YcsbRunConfig base;
  uint32_t shards = 4;
  uint32_t exec_threads = 1;
  Cycles epoch_cycles = 500000;
  uint64_t max_epochs = 1 << 22;
  // Epoch-boundary telemetry timeline + span records, as in
  // ShardedRunConfig. base.timeline_interval/enable_spans are ignored in
  // sharded mode (the epoch loop, not an engine actor, drives sampling).
  Cycles timeline_interval = 0;
  size_t timeline_capacity = 4096;
  bool enable_spans = false;
};

struct ShardedAppResult {
  std::vector<AppRunResult> per_shard;  // in shard-id order
  uint64_t total_ops = 0;
  uint64_t epochs = 0;
  uint64_t messages = 0;
  Cycles max_virtual_time = 0;
  double aggregate_ops_per_sec = 0;  // total ops over the slowest shard's runtime
};

ShardedAppResult RunShardedYcsb(const ShardedYcsbConfig& cfg,
                                MetricsCollector* collector = nullptr,
                                const std::string& label = "");

}  // namespace nomad

#endif  // SRC_HARNESS_SHARDED_SIM_H_
