#include "src/harness/flags.h"

#include <cstdlib>

namespace nomad {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

std::string Flags::GetString(const std::string& key, const std::string& def) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

uint64_t Flags::GetUint(const std::string& key, uint64_t def) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Flags::GetDouble(const std::string& key, double def) const {
  used_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool def) const {
  used_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::UnusedKeys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (used_.find(key) == used_.end()) {
      unused.push_back(key);
    }
  }
  return unused;
}

}  // namespace nomad
