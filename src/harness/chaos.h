// Chaos soak cells: one seeded, fault-focused sharded run with a
// quiescence audit and a byte-comparable recovery record.
//
// A *cell* is the unit of the soak campaign: (seed, fault focus,
// exec_threads). The cell builds a small undersized sharded micro run
// (promotion, demotion, reclaim and the shard-fault seams all fire), arms
// every shard's own FaultInjector with seed-derived schedules concentrated
// on the focus kind, runs to completion with the stalled-epoch watchdog
// on, audits every quiesced shard with the InvariantChecker, and
// serializes the recovery state — per-shard counters, queue high
// watermarks, TPM statistics and the injector schedules — into one
// canonical string. Because every fault decision is a pure function of
// (shard seed, opportunity index) and the watchdog consumes only the
// drained message stream, that string must be byte-identical for any
// exec_threads value; ChaosCellDeterministic enforces exactly this,
// extending the check_determinism.py contract to faulted runs.
#ifndef SRC_HARNESS_CHAOS_H_
#define SRC_HARNESS_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nomad {

// The soak campaign's fault dimensions. Each focuses a cell on one
// overload shape; background kinds stay quiet so a violation bisects to
// its cause.
enum class ChaosFocus {
  kShardStall,     // barrier livelock: shards stop advancing virtual time
  kAllocFailWave,  // bursts of fast-tier allocation failures per shard
  kPcqOverflow,    // queue pressure: PCQ behaves as if at capacity
};

inline constexpr ChaosFocus kChaosFocuses[] = {
    ChaosFocus::kShardStall,
    ChaosFocus::kAllocFailWave,
    ChaosFocus::kPcqOverflow,
};

// Stable lower_snake_case name (CLI values and report lines).
const char* ChaosFocusName(ChaosFocus f);
// Reverse lookup; returns false for unknown names.
bool ChaosFocusFromName(const std::string& name, ChaosFocus* out);

struct ChaosCellConfig {
  uint64_t seed = 1;
  ChaosFocus focus = ChaosFocus::kShardStall;
  uint32_t exec_threads = 1;
  uint32_t shards = 4;
  uint64_t total_ops = 24000;  // whole-machine ops, pre-partition
};

struct ChaosCellResult {
  bool ok = false;                    // quiescence audit passed
  uint64_t invariant_violations = 0;  // from the per-shard audits
  uint64_t faults_injected = 0;       // across every shard injector
  uint64_t watchdog_stalls = 0;       // stall episodes the watchdog flagged
  uint64_t degradations = 0;  // graceful-degradation actions (see chaos.cc)
  uint64_t epochs = 0;
  // Canonical recovery record: campaign header + per-shard injector
  // schedule, sorted counters, queue high watermarks and TPM stats. Byte-
  // identical across exec_threads for a fixed (seed, focus).
  std::string recovery;
};

// Runs one soak cell to completion (audit always on).
ChaosCellResult RunChaosCell(const ChaosCellConfig& cfg);

// Runs the cell at exec_threads = 1 and = 4 and byte-compares the recovery
// records. On mismatch returns false and stores both records in *diff.
bool ChaosCellDeterministic(ChaosCellConfig cfg, std::string* diff);

}  // namespace nomad

#endif  // SRC_HARNESS_CHAOS_H_
