#include "src/harness/experiment.h"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "src/check/check.h"
#include "src/obs/exporters.h"

namespace nomad {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoMigration:
      return "no-migration";
    case PolicyKind::kTpp:
      return "tpp";
    case PolicyKind::kMemtisDefault:
      return "memtis-default";
    case PolicyKind::kMemtisQuickCool:
      return "memtis-quickcool";
    case PolicyKind::kNomad:
      return "nomad";
  }
  return "?";
}

std::unique_ptr<TieringPolicy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoMigration:
      return std::make_unique<NoMigrationPolicy>();
    case PolicyKind::kTpp:
      return std::make_unique<TppPolicy>();
    case PolicyKind::kMemtisDefault:
      return std::make_unique<MemtisPolicy>(MemtisPolicy::DefaultVariant());
    case PolicyKind::kMemtisQuickCool:
      return std::make_unique<MemtisPolicy>(MemtisPolicy::QuickCoolVariant());
    case PolicyKind::kNomad:
      return std::make_unique<NomadPolicy>();
  }
  return nullptr;
}

bool PolicySupported(PolicyKind kind, const PlatformSpec& platform) {
  if (kind == PolicyKind::kMemtisDefault || kind == PolicyKind::kMemtisQuickCool) {
    return platform.pebs_supported;
  }
  return true;
}

Sim::Sim(const PlatformSpec& platform, PolicyKind kind, uint64_t as_pages)
    : Sim(platform, MakePolicy(kind), kind, as_pages) {}

Sim::Sim(const PlatformSpec& platform, std::unique_ptr<TieringPolicy> policy, PolicyKind kind,
         uint64_t as_pages)
    : platform_(platform),
      kind_(kind),
      ms_(platform, &engine_),
      as_(as_pages),
      policy_(std::move(policy)) {
  policy_->Install(ms_, engine_);
}

void Sim::EnableTimeline(const Timeline::Config& config, bool engine_driven) {
  NOMAD_CHECK(timeline_ == nullptr, "timeline already enabled");
  timeline_ = std::make_unique<TimelineSampler>(this, config);
  if (engine_driven) {
    timeline_actor_ = std::make_unique<TimelineActor>(timeline_.get());
    // First sample at t=interval: the t=0 state is all zeros/setup noise,
    // and skipping it keeps sample times aligned with the sharded driver's
    // epoch boundaries.
    engine_.AddActor(timeline_actor_.get(), config.interval);
  }
}

void Sim::AddWorkload(WorkloadActor* w) {
  const ActorId id = engine_.AddActor(w);
  w->set_actor_id(id);
  ms_.RegisterCpu(id);
  workloads_.push_back(w);
}

Cycles Sim::Run(Cycles hard_cap) {
  return engine_.RunUntil([this, hard_cap] {
    if (engine_.now() > hard_cap) {
      return true;
    }
    for (const WorkloadActor* w : workloads_) {
      if (!w->done()) {
        return false;
      }
    }
    return true;
  });
}

Cycles Sim::RunUntilOps(uint64_t ops) {
  return engine_.RunUntil([this, ops] {
    uint64_t done = 0;
    for (const WorkloadActor* w : workloads_) {
      done += w->ops_done();
    }
    return done >= ops;
  });
}

uint64_t MapRange(MemorySystem& ms, AddressSpace& as, Vpn start, uint64_t n, Tier tier) {
  uint64_t on_tier = 0;
  for (uint64_t i = 0; i < n; i++) {
    const Pfn pfn = ms.MapNewPage(as, start + i, tier);
    if (pfn != kInvalidPfn && ms.pool().TierOf(pfn) == tier) {
      on_tier++;
    }
  }
  return on_tier;
}

bool MovePageSilent(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier tier) {
  Pte* pte = ms.PteOf(as, vpn);
  if (pte == nullptr || !pte->present) {
    return false;
  }
  const Pfn old_pfn = pte->pfn;
  PageFrame old_frame = ms.pool().frame(old_pfn);
  if (old_frame.tier() == tier || old_frame.migrating() || old_frame.shadowed()) {
    return false;
  }
  const Pfn new_pfn = ms.pool().AllocOn(tier);
  if (new_pfn == kInvalidPfn) {
    return false;
  }
  ms.RepointMappingSilent(as, vpn, new_pfn);
  return true;
}

uint64_t DemoteAll(MemorySystem& ms, AddressSpace& as) {
  uint64_t moved = 0;
  for (Vpn vpn = 0; vpn < as.num_pages(); vpn++) {
    const Pte* pte = ms.PteOf(as, vpn);
    if (pte != nullptr && pte->present && ms.pool().TierOf(pte->pfn) == Tier::kFast) {
      if (MovePageSilent(ms, as, vpn, Tier::kSlow)) {
        moved++;
      }
    }
  }
  return moved;
}

Vpn SetupMicroLayout(Sim& sim, const MicroLayout& layout, const ScrambledZipfian& zipf) {
  MemorySystem& ms = sim.ms();
  AddressSpace& as = sim.as();
  NOMAD_CHECK(layout.wss_pages <= layout.rss_pages, "wss=", layout.wss_pages,
              " rss=", layout.rss_pages);
  NOMAD_CHECK(zipf.n() == layout.wss_pages, "zipf_n=", zipf.n(), " wss=", layout.wss_pages);

  ms.ReserveFastFrames(layout.kernel_pages);

  // Cold half of the RSS fills fast memory first (the pre-allocated 10 GB /
  // 13.5 GB / 16 GB of sec. 4.1).
  const uint64_t cold_pages = layout.rss_pages - layout.wss_pages;
  MapRange(ms, as, 0, cold_pages, Tier::kFast);

  // WSS placement order: hotness rank order (Frequency-opt) or shuffled.
  const Vpn wss_start = cold_pages;
  std::vector<Vpn> order(layout.wss_pages);
  if (layout.placement == Placement::kFrequencyOpt) {
    for (uint64_t r = 0; r < layout.wss_pages; r++) {
      order[r] = wss_start + zipf.ItemOfRank(r);
    }
  } else {
    for (uint64_t i = 0; i < layout.wss_pages; i++) {
      order[i] = wss_start + i;
    }
    // Salt the seed: the Zipfian scramble uses the same shuffle algorithm,
    // and an identical seed would make "random" placement reproduce the
    // hotness permutation exactly (i.e. silently become Frequency-opt).
    Rng rng(layout.seed ^ 0x9E3779B97F4A7C15ull);
    for (uint64_t i = layout.wss_pages; i > 1; i--) {
      std::swap(order[i - 1], order[rng.Below(i)]);
    }
  }
  for (uint64_t i = 0; i < layout.wss_pages; i++) {
    const Tier tier = i < layout.wss_fast_pages ? Tier::kFast : Tier::kSlow;
    Pfn pfn = ms.pool().AllocOn(tier);
    if (pfn == kInvalidPfn) {
      pfn = ms.pool().AllocOn(OtherTier(tier));
    }
    if (pfn == kInvalidPfn) {
      break;  // genuinely out of memory; the workload will demand-fault
    }
    ms.InstallMappingSilent(as, order[i], pfn, /*writable=*/true);
  }
  return wss_start;
}

PhaseReport Analyze(const Sim& sim) {
  PhaseReport r;
  const double ghz = sim.platform().ghz;
  const auto& workloads = sim.workloads();
  if (workloads.empty()) {
    return r;
  }

  // Merge the per-actor windowed series (same window size by construction).
  const Cycles window = workloads[0]->bandwidth().window_cycles();
  size_t max_windows = 0;
  for (const WorkloadActor* w : workloads) {
    max_windows = std::max(max_windows, w->bandwidth().NumWindows());
  }
  std::vector<uint64_t> merged(max_windows, 0);
  LatencyHistogram lat;
  Cycles end_time = 0;
  for (const WorkloadActor* w : workloads) {
    const auto& wins = w->bandwidth().windows();
    for (size_t i = 0; i < wins.size(); i++) {
      merged[i] += wins[i];
    }
    lat.Merge(w->latency());
    r.total_ops += w->ops_done();
    end_time = std::max(end_time, w->finish_time());
  }

  auto mean_gbps = [&](size_t first, size_t last) {
    last = std::min(last, merged.size());
    if (first >= last) {
      return 0.0;
    }
    uint64_t bytes = 0;
    for (size_t i = first; i < last; i++) {
      bytes += merged[i];
    }
    const double bpc = static_cast<double>(bytes) / static_cast<double>((last - first) * window);
    return bpc * ghz;  // bytes/cycle * GHz = GB/s
  };

  const size_t n = merged.size();
  // Transient = the first quarter of the run (skipping the cold-start
  // window); stable = the last quarter. With the paper's setups the bulk
  // migration happens well inside the first quarter.
  r.transient_gbps = mean_gbps(1, std::max<size_t>(2, n / 4));
  r.stable_gbps = mean_gbps(n - std::max<size_t>(1, n / 4), n);
  r.overall_gbps = mean_gbps(0, n);
  r.mean_latency_cycles = lat.Mean();
  r.p99_latency_cycles = static_cast<double>(lat.Quantile(0.99));
  r.total_cycles = end_time;
  const double seconds = CyclesToSeconds(end_time == 0 ? 1 : end_time, ghz);
  r.ops_per_sec = static_cast<double>(r.total_ops) / seconds;
  r.latency = lat;
  r.window_bytes = std::move(merged);
  r.window_cycles = window;
  return r;
}

void AppendRunMetrics(JsonWriter& jw, Sim& sim, const PhaseReport& report,
                      const std::string& label) {
  MemorySystem& ms = sim.ms();
  jw.BeginObject();
  jw.Field("label", std::string_view(label));
  jw.Field("policy", std::string_view(PolicyKindName(sim.kind())));
  jw.Field("platform", std::string_view(sim.platform().name));
  jw.Field("ghz", sim.platform().ghz);

  jw.Key("report").BeginObject();
  jw.Field("transient_gbps", report.transient_gbps);
  jw.Field("stable_gbps", report.stable_gbps);
  jw.Field("overall_gbps", report.overall_gbps);
  jw.Field("mean_latency_cycles", report.mean_latency_cycles);
  jw.Field("p99_latency_cycles", report.p99_latency_cycles);
  jw.Field("total_ops", report.total_ops);
  jw.Field("total_cycles", report.total_cycles);
  jw.Field("ops_per_sec", report.ops_per_sec);
  jw.EndObject();

  jw.Key("latency");
  AppendLatencyJson(jw, report.latency);
  jw.Key("bandwidth");
  AppendBandwidthJson(jw, report.window_cycles, report.window_bytes, sim.platform().ghz);

  if (NomadPolicy* nomad = sim.nomad()) {
    const KpromoteActor::Stats& tpm = nomad->tpm_stats();
    jw.Key("tpm").BeginObject();
    jw.Field("commits", tpm.commits);
    jw.Field("aborts", tpm.aborts);
    jw.Field("sync_fallbacks", tpm.sync_fallbacks);
    jw.Field("nomem_waits", tpm.nomem_waits);
    jw.Field("shadow_pages", nomad->shadows().count());
    jw.EndObject();

    // Degradation and queue-pressure telemetry (robustness additions).
    const PromotionQueues& q = nomad->queues();
    jw.Key("degradation").BeginObject();
    jw.Field("backoffs", tpm.backoffs);
    jw.Field("giveups", tpm.giveups);
    jw.Field("sync_degrades", tpm.sync_degrades);
    jw.Field("degraded_migrations", tpm.degraded_migrations);
    jw.Field("alloc_fail_streak", uint64_t{nomad->alloc_fail_streak()});
    jw.Field("pcq_hwm", q.pcq_hwm());
    jw.Field("pending_hwm", q.pending_hwm());
    jw.Field("pcq_overflows", q.overflow_count());
    jw.Field("deferred_retries", q.deferred_size());
    jw.EndObject();
  }

  jw.Key("counters");
  AppendCountersJson(jw, ms.counters());
  jw.Key("trace");
  AppendTraceSummaryJson(jw, ms.trace());
  jw.Key("profile");
  AppendProfileJson(jw, ms.prof());
  jw.Key("histograms");
  AppendHistogramsJson(jw, ms.hists());
  jw.Key("provenance");
  AppendProvenanceJson(jw, ms.provenance());
  // Only when sampling ran: the goldens are captured timeline-off and must
  // stay byte-identical.
  if (const TimelineSampler* t = sim.timeline_sampler()) {
    jw.Key("timeline");
    t->timeline().AppendJson(jw);
  }
  jw.EndObject();

  // A trace that silently overflowed its ring buffer would make every
  // downstream pairing analysis (trace_query) quietly wrong; say so.
  if (ms.trace().dropped() > 0) {
    std::cerr << "warning: trace ring buffer overflowed; dropped " << ms.trace().dropped()
              << " of " << ms.trace().total_emitted() << " events (raise TraceSink capacity or "
              << "shorten the run for complete traces)\n";
  }
}

bool WriteMetricsFile(Sim& sim, const PhaseReport& report, const std::string& label,
                      const std::string& bench_id, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  JsonWriter jw(out);
  jw.BeginObject();
  jw.Field("schema", std::string_view("nomad-metrics-v1"));
  jw.Field("benchmark", std::string_view(bench_id));
  jw.Key("runs").BeginArray();
  AppendRunMetrics(jw, sim, report, label);
  jw.EndArray();
  jw.EndObject();
  out << "\n";
  return out.good();
}

bool WriteTraceFile(Sim& sim, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  std::vector<std::string> actor_names;
  actor_names.reserve(sim.engine().NumActors());
  for (ActorId id = 0; id < sim.engine().NumActors(); id++) {
    actor_names.push_back(sim.engine().ActorNameOf(id));
  }
  WriteChromeTrace(sim.ms().trace(), sim.platform().ghz, actor_names, out);
  return out.good();
}

bool WriteProfileFile(Sim& sim, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteCollapsedStacks(sim.ms().prof(), out);
  return out.good();
}

bool WriteTimelineFile(Sim& sim, const std::string& path) {
  const TimelineSampler* t = sim.timeline_sampler();
  if (t == nullptr) {
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  t->timeline().WriteCsv(out);
  return out.good();
}

}  // namespace nomad
