#include "src/harness/timeline_sampler.h"

#include "src/harness/experiment.h"
#include "src/nomad/nomad_policy.h"
#include "src/obs/event_registry.h"

namespace nomad {

TimelineSampler::TimelineSampler(Sim* sim, const Timeline::Config& config)
    : sim_(sim), timeline_(config) {
  fast_free_ = timeline_.Channel(tl::kFastFree);
  fast_used_ = timeline_.Channel(tl::kFastUsed);
  fast_low_wm_ = timeline_.Channel(tl::kFastLowWatermark);
  fast_below_low_ = timeline_.Channel(tl::kFastBelowLowWatermark);
  slow_free_ = timeline_.Channel(tl::kSlowFree);
  slow_used_ = timeline_.Channel(tl::kSlowUsed);
  pcq_depth_ = timeline_.Channel(tl::kPcqDepth);
  pending_depth_ = timeline_.Channel(tl::kPendingDepth);
  deferred_depth_ = timeline_.Channel(tl::kDeferredDepth);
  shadow_pages_ = timeline_.Channel(tl::kShadowPages);
  degraded_ = timeline_.Channel(tl::kKpromoteDegraded);
  trace_capacity_ = timeline_.Channel(tl::kTraceCapacity);
  trace_emitted_ = timeline_.Channel(tl::kTraceEmittedDelta);
  trace_dropped_ = timeline_.Channel(tl::kTraceDroppedDelta);
}

void TimelineSampler::Sample() { SampleLocked(/*sharded=*/false, 0, 0); }

void TimelineSampler::SampleSharded(uint64_t ops_done, uint64_t epoch) {
  SampleLocked(/*sharded=*/true, ops_done, epoch);
}

void TimelineSampler::SampleLocked(bool sharded, uint64_t ops_done, uint64_t epoch) {
  if constexpr (!kTracingEnabled) {
    (void)sharded;
    (void)ops_done;
    (void)epoch;
    return;
  }
  MemorySystem& ms = sim_->ms();
  Timeline& t = timeline_;
  t.BeginSample(ms.Now());

  const FramePool& pool = sim_->ms().pool();
  t.Set(fast_free_, pool.FreeFrames(Tier::kFast));
  t.Set(fast_used_, pool.UsedFrames(Tier::kFast));
  t.Set(fast_low_wm_, pool.LowWatermark(Tier::kFast));
  t.Set(fast_below_low_, pool.BelowLowWatermark(Tier::kFast) ? 1 : 0);
  t.Set(slow_free_, pool.FreeFrames(Tier::kSlow));
  t.Set(slow_used_, pool.UsedFrames(Tier::kSlow));

  if (NomadPolicy* nomad = sim_->nomad()) {
    const PromotionQueues& q = nomad->queues();
    t.Set(pcq_depth_, q.pcq_size());
    t.Set(pending_depth_, q.pending_size());
    t.Set(deferred_depth_, q.deferred_size());
    t.Set(shadow_pages_, nomad->shadows().count());
    t.Set(degraded_, nomad->kpromote().degraded() ? 1 : 0);
  }

  // Trace-ring health (ring capacity plus per-window emit/drop deltas): a
  // window whose drop delta is nonzero has incomplete span/trace data.
  const TraceSink& ts = ms.trace();
  t.Set(trace_capacity_, ts.capacity());
  t.SetDelta(trace_emitted_, ts.total_emitted());
  t.SetDelta(trace_dropped_, ts.dropped());

  if (sharded) {
    // Resolved lazily so single-sim timelines carry no shard columns.
    if (!shard_channels_resolved_) {
      shard_channels_resolved_ = true;
      shard_ops_ = t.Channel(tl::kShardOpsDone);
      shard_epoch_ = t.Channel(tl::kShardEpoch);
    }
    t.Set(shard_ops_, ops_done);
    t.Set(shard_epoch_, epoch);
  }

  // Every registered counter, as a per-window delta. Iteration order is the
  // counter map's (sorted by name), so channel creation order — and with it
  // the JSON/CSV column order — is deterministic.
  for (const auto& [name, value] : ms.counters().All()) {
    t.SetDelta(t.Channel("cnt." + name), value);
  }

  // Histogram percentiles: the per-window arrival count plus p50/p99 of the
  // cumulative distribution.
  for (const auto& [name, h] : ms.hists().All()) {
    t.SetDelta(t.Channel("hist." + name + ".count_delta"), h.count());
    t.Set(t.Channel("hist." + name + ".p50"), h.Quantile(0.5));
    t.Set(t.Channel("hist." + name + ".p99"), h.Quantile(0.99));
  }

  t.EndSample();
}

Cycles TimelineActor::Step(Engine& engine) {
  sampler_->Sample();
  engine.SleepUntil(engine.now() + sampler_->timeline().interval());
  return 0;
}

}  // namespace nomad
