#include "src/harness/sharded_sim.h"

#include <algorithm>
#include <iostream>
#include <thread>

#include "src/base/annotations.h"
#include "src/check/check.h"
#include "src/check/invariants.h"
#include "src/obs/event_registry.h"

namespace nomad {

namespace {

uint64_t OpsDone(const Sim& sim) {
  uint64_t ops = 0;
  for (const WorkloadActor* w : sim.workloads()) {
    ops += w->ops_done();
  }
  return ops;
}

bool WorkloadsDone(const Sim& sim) {
  for (const WorkloadActor* w : sim.workloads()) {
    if (!w->done()) {
      return false;
    }
  }
  return true;
}

// Controller state, written by the epoch barrier's completion callback and
// read by every worker after release; the barrier's mutex provides the
// happens-before edges in both directions. Confined to the barrier
// callback (shard 0's logical owner), not lock-annotated: the protecting
// mutex is ShardBarrier's private internals.
struct NOMAD_SHARD_CONFINED Control {
  uint64_t total_ops = 0;
  uint64_t messages = 0;
  uint32_t done_shards = 0;
  uint64_t epochs = 0;
  uint64_t watchdog_stalls = 0;
  bool stop = false;
};

// The lockstep epoch engine shared by every sharded benchmark. Each of T
// worker threads owns the statically-assigned shards {t, t+T, t+2T, ...}.
// An epoch ends at ONE phase-flip barrier: whichever worker arrives last
// drains the router and updates the controller inside the barrier's
// completion callback (under the barrier mutex, before any waiter is
// released), so no second barrier crossing is needed. Messages are staged
// lock-free per sender during the epoch and flushed per (sender, dest) run
// before arriving. `on_epoch` runs after a shard's engine reaches the
// epoch boundary and may inspect that shard only (benchmark-specific
// snapshots live there).
Control RunLockstep(std::vector<Sim*>& sims, uint32_t exec_threads, Cycles epoch_cycles,
                    uint64_t max_epochs, ShardRouter& router,
                    const std::function<void(uint32_t, uint64_t)>& on_epoch,
                    uint64_t watchdog_stall_epochs = 0) {
  const uint32_t S = static_cast<uint32_t>(sims.size());
  const uint32_t T = std::max<uint32_t>(1, std::min<uint32_t>(exec_threads, S));
  ShardBarrier barrier(T);
  Control ctrl;
  std::vector<uint64_t> last_reported(S, 0);
  std::vector<char> done(S, 0);
  // Watchdog state. last_progress / stalled are written only inside the
  // barrier callback; stall_pending[s] is written there and cleared by the
  // worker that owns shard s after the barrier releases — the barrier
  // mutex provides both happens-before edges.
  std::vector<uint64_t> last_progress(S, 0);
  std::vector<char> stalled(S, 0);
  std::vector<uint64_t> stall_pending(S, 0);

  auto worker = [&](uint32_t t) {
    for (uint64_t epoch = 0;; epoch++) {
      const Cycles epoch_end = (epoch + 1) * epoch_cycles;
      for (uint32_t s = t; s < S; s += T) {
        if (done[s]) {
          continue;
        }
        Sim& sim = *sims[s];
        // Surface last epoch's watchdog verdict from the owning shard so
        // the trace record carries the shard's own virtual clock and the
        // counter lands in the shard's own CounterSet (deterministic for
        // any T: the verdict was computed from drained messages only).
        if (stall_pending[s] != 0) {
          sim.ms().Trace(TraceEvent::kWatchdogStall, epoch, stall_pending[s]);
          sim.ms().counters().Add(cnt::kWatchdogStall, 1);
          stall_pending[s] = 0;
        }
        // Shard-aware chaos, one consult per (shard, epoch) from the
        // shard's OWN injector: the decision stream depends only on the
        // shard's seed and epoch count, never on thread assignment.
        bool stall = false;
        bool delay_sends = false;
        if constexpr (kFaultInjectionEnabled) {
          if (FaultInjector* fi = sim.ms().faults(); fi != nullptr) {
            if (fi->ShouldInject(FaultKind::kShardStall)) {
              stall = true;
              sim.ms().counters().Add(cnt::kFaultInjShardStall, 1);
            }
            if (fi->ShouldInject(FaultKind::kShardDelay)) {
              delay_sends = true;
              sim.ms().counters().Add(cnt::kFaultInjShardDelay, 1);
            }
            if (fi->ShouldInject(FaultKind::kAllocFailWave)) {
              // Arm a burst window of allocation failures starting at the
              // shard's NEXT alloc opportunity: a whole wave of fast-tier
              // pressure, as opposed to kAllocFail's isolated misses.
              FaultSchedule wave = fi->schedule(FaultKind::kAllocFail);
              wave.trigger_start = fi->opportunities(FaultKind::kAllocFail);
              wave.trigger_count = 64;
              fi->set_schedule(FaultKind::kAllocFail, wave);
              sim.ms().counters().Add(cnt::kFaultInjAllocFailWave, 1);
            }
          }
        }
        if (stall) {
          // The shard parks at the barrier without advancing virtual time
          // this epoch — the livelock shape the watchdog exists to flag.
          continue;
        }
        sim.engine().Run(epoch_end);
        if (on_epoch) {
          on_epoch(s, epoch);
        }
        const uint64_t ops = OpsDone(sim);
        if (ops > last_reported[s]) {
          router.Stage(s, 0, kShardMsgProgress, ops - last_reported[s], epoch_end);
          last_reported[s] = ops;
        }
        bool finished = false;
        if (WorkloadsDone(sim)) {
          done[s] = 1;
          finished = true;
          router.Stage(s, 0, kShardMsgDone, ops, sim.engine().now());
        }
        // kShardDelay: staged messages sit in the sender row one extra
        // epoch (staging rows are persistent, so they flush — in staging
        // order, keeping (sender, seq) intact — on the next pass). A shard
        // finishing this epoch is skipped forever after, so its sends must
        // flush now regardless or they would never be delivered.
        if (!delay_sends || finished) {
          router.FlushSends(s);
        }
      }
      barrier.ArriveAndWait([&] {
        // Runs exactly once per epoch, by the last arriver, under the
        // barrier mutex: every worker's sends happen-before this, and the
        // control update happens-before every worker's post-barrier read.
        // Drain order is (sender id, seq), independent of which thread
        // runs this or how shards were assigned to threads.
        router.Drain(0, [&](const ShardMsg& m) {
          ctrl.messages++;
          if (m.kind == kShardMsgProgress) {
            ctrl.total_ops += m.a;
            last_progress[m.from] = epoch + 1;
            stalled[m.from] = 0;
          } else if (m.kind == kShardMsgDone) {
            ctrl.done_shards++;
            last_progress[m.from] = epoch + 1;
            stalled[m.from] = 0;
          }
        });
        ctrl.epochs = epoch + 1;
        if (watchdog_stall_epochs > 0) {
          // Livelock detection on the drained stream only: a live shard
          // whose last progress report is too old is stalled. Edge-
          // triggered — one verdict per stall episode, re-armed by the
          // next progress message.
          for (uint32_t s = 0; s < S; s++) {
            const uint64_t quiet = epoch + 1 - last_progress[s];
            if (!done[s] && !stalled[s] && quiet >= watchdog_stall_epochs) {
              stalled[s] = 1;
              stall_pending[s] = quiet;
              ctrl.watchdog_stalls++;
            }
          }
        }
        NOMAD_CHECK(epoch < max_epochs, "sharded run exceeded max_epochs=", max_epochs,
                    " done_shards=", ctrl.done_shards, " of ", S);
        ctrl.stop = ctrl.done_shards == S;
      });
      if (ctrl.stop) {
        return;
      }
    }
  };

  if (T == 1) {
    worker(0);  // run inline: no thread spawn for the common CI case
  } else {
    std::vector<std::thread> pool;
    pool.reserve(T);
    for (uint32_t t = 0; t < T; t++) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& th : pool) {
      th.join();
    }
  }
  return ctrl;
}

// Everything one micro-benchmark shard owns. Worker threads touch only the
// shards they were statically assigned; the main thread reads the states
// after every worker has joined.
struct NOMAD_SHARD_CONFINED MicroShardState {
  MicroRunConfig cfg;  // the shard's 1/N slice of the machine
  std::unique_ptr<ScrambledZipfian> zipf;
  std::unique_ptr<Sim> sim;
  std::vector<std::unique_ptr<MicroWorkload>> apps;
  bool half_snapped = false;
  CounterSet first_half;
};

}  // namespace

ShardedRunResult RunShardedMicro(const ShardedRunConfig& cfg, MetricsCollector* collector,
                                 const std::string& label) {
  const uint32_t S = cfg.shards;
  NOMAD_CHECK(S > 0, "sharded run needs at least one shard");

  // --- partition: each shard is a 1/N machine running 1/N of the work ---
  // Setup runs sequentially on the calling thread so allocation order (and
  // thus every PFN layout) is independent of the worker count.
  std::vector<MicroShardState> shards(S);
  std::vector<Sim*> sims;
  for (uint32_t s = 0; s < S; s++) {
    MicroShardState& sh = shards[s];
    sh.cfg = cfg.base;
    sh.cfg.rss_gb /= S;
    sh.cfg.wss_gb /= S;
    sh.cfg.wss_fast_gb /= S;
    sh.cfg.kernel_gb /= S;
    sh.cfg.fast_gb /= S;
    sh.cfg.slow_gb /= S;
    sh.cfg.total_ops = cfg.base.total_ops / S;
    // Distinct streams per shard; 7919 keeps seeds far apart without
    // correlating with the +1000+thread offsets used inside a shard.
    sh.cfg.seed = cfg.base.seed + 7919 * s;

    const Scale scale{sh.cfg.scale_denom};
    const PlatformSpec platform =
        MakePlatform(sh.cfg.platform, scale, sh.cfg.fast_gb, sh.cfg.slow_gb);
    sh.sim = std::make_unique<Sim>(platform, sh.cfg.policy, scale.Pages(sh.cfg.rss_gb) + 16);
    if (cfg.fault_factory) {
      sh.sim->ms().set_fault_injector(cfg.fault_factory(s));
    }
    if (cfg.enable_spans) {
      sh.sim->ms().set_span_tracing(true);
    }
    if (cfg.timeline_interval > 0) {
      // Round the requested cadence up to whole epochs: the sample times
      // are then epoch multiples, identical for every exec_threads value.
      Timeline::Config tcfg;
      tcfg.interval = ((cfg.timeline_interval + cfg.epoch_cycles - 1) / cfg.epoch_cycles) *
                      cfg.epoch_cycles;
      tcfg.capacity = cfg.timeline_capacity;
      sh.sim->EnableTimeline(tcfg, /*engine_driven=*/false);
    }

    MicroLayout layout;
    layout.rss_pages = scale.Pages(sh.cfg.rss_gb);
    layout.wss_pages = scale.Pages(sh.cfg.wss_gb);
    layout.wss_fast_pages = scale.Pages(sh.cfg.wss_fast_gb);
    layout.kernel_pages = scale.Pages(sh.cfg.kernel_gb);
    layout.placement = sh.cfg.placement;
    layout.seed = sh.cfg.seed;
    sh.zipf = std::make_unique<ScrambledZipfian>(layout.wss_pages, 0.99, sh.cfg.seed);
    const Vpn wss_start = SetupMicroLayout(*sh.sim, layout, *sh.zipf);

    for (int t = 0; t < sh.cfg.threads; t++) {
      MicroWorkload::Config wcfg;
      wcfg.base.total_ops = sh.cfg.total_ops / static_cast<uint64_t>(sh.cfg.threads);
      wcfg.base.seed = sh.cfg.seed + 1000 + static_cast<uint64_t>(t);
      wcfg.wss_start = wss_start;
      wcfg.wss_pages = layout.wss_pages;
      wcfg.write_fraction = sh.cfg.write_fraction;
      sh.apps.push_back(
          std::make_unique<MicroWorkload>(&sh.sim->ms(), &sh.sim->as(), sh.zipf.get(), wcfg));
      sh.sim->AddWorkload(sh.apps.back().get());
    }
    sims.push_back(sh.sim.get());
  }

  // Timeline cadence in epochs (the interval was rounded up to whole
  // epochs at EnableTimeline time).
  const uint64_t sample_epochs =
      cfg.timeline_interval > 0
          ? (cfg.timeline_interval + cfg.epoch_cycles - 1) / cfg.epoch_cycles
          : 0;

  ShardRouter router(S);
  const Control ctrl = RunLockstep(
      sims, cfg.exec_threads, cfg.epoch_cycles, cfg.max_epochs, router,
      [&](uint32_t s, uint64_t epoch) {
        MicroShardState& sh = shards[s];
        if (!sh.half_snapped && OpsDone(*sh.sim) * 2 >= sh.cfg.total_ops) {
          // Phase snapshot at epoch granularity: deterministic because the
          // epoch schedule is fixed.
          sh.first_half = sh.sim->ms().counters();
          sh.half_snapped = true;
        }
        if (sample_epochs > 0 && (epoch + 1) % sample_epochs == 0) {
          // The owning worker samples its own shard right after the shard's
          // engine reached the epoch boundary: shard-confined state only,
          // at a virtual time fixed by the epoch schedule — byte-identical
          // for any exec_threads value.
          sh.sim->SampleTimeline(OpsDone(*sh.sim), epoch + 1);
        }
      },
      cfg.watchdog_stall_epochs);

  // --- merge, strictly in shard-id order ---
  ShardedRunResult result;
  result.total_ops = ctrl.total_ops;
  result.messages = ctrl.messages;
  result.epochs = ctrl.epochs;
  result.watchdog_stalls = ctrl.watchdog_stalls;
  for (uint32_t s = 0; s < S; s++) {
    MicroShardState& sh = shards[s];
    MicroRunResult r;
    r.report = Analyze(*sh.sim);
    r.counters = sh.sim->ms().counters();
    r.first_half = sh.half_snapped ? sh.first_half : r.counters;
    r.fast_used = sh.sim->ms().pool().UsedFrames(Tier::kFast);
    r.slow_used = sh.sim->ms().pool().UsedFrames(Tier::kSlow);
    if (NomadPolicy* nomad = sh.sim->nomad()) {
      r.shadow_pages = nomad->shadows().count();
      r.tpm_commits = nomad->tpm_stats().commits;
      r.tpm_aborts = nomad->tpm_stats().aborts;
      r.pcq_hwm = nomad->queues().pcq_hwm();
      r.pending_hwm = nomad->queues().pending_hwm();
      r.pcq_overflows = nomad->queues().overflow_count();
    }
    result.max_virtual_time = std::max(result.max_virtual_time, sh.sim->engine().now());
    result.aggregate_gbps += r.report.overall_gbps;
    if (const FaultInjector* fi = sh.sim->ms().faults()) {
      r.injector = fi->Describe();
      result.faults_injected += fi->total_injected();
    }
    if (cfg.audit) {
      // Quiescence audit: with every worker joined and the shard's engine
      // drained, each shard must independently satisfy the full invariant
      // suite — cross-shard messages must not have corrupted owned state.
      InvariantChecker checker(&sh.sim->ms());
      checker.AddSpace(&sh.sim->as());
      if (NomadPolicy* nomad = sh.sim->nomad()) {
        checker.set_shadows(&nomad->shadows());
        checker.set_queues(&nomad->queues());
      }
      for (const InvariantViolation& v : checker.Check()) {
        std::cerr << "shard " << s << " invariant [" << v.rule << "] " << v.detail << "\n";
        result.invariant_violations++;
      }
    }
    if (collector != nullptr) {
      const std::string base_label =
          label.empty() ? PolicyKindName(sh.cfg.policy) : label;
      collector->Capture(base_label + ".shard" + std::to_string(s), *sh.sim, r.report);
    }
    result.per_shard.push_back(std::move(r));
  }
  return result;
}

ShardedAppResult RunShardedYcsb(const ShardedYcsbConfig& cfg, MetricsCollector* collector,
                                const std::string& label) {
  const uint32_t S = cfg.shards;
  NOMAD_CHECK(S > 0, "sharded run needs at least one shard");

  struct NOMAD_SHARD_CONFINED YcsbShardState {
    YcsbRunConfig cfg;
    std::unique_ptr<KvStore> store;
    std::unique_ptr<Sim> sim;
    std::unique_ptr<YcsbWorkload> app;
  };

  std::vector<YcsbShardState> shards(S);
  std::vector<Sim*> sims;
  for (uint32_t s = 0; s < S; s++) {
    YcsbShardState& sh = shards[s];
    sh.cfg = cfg.base;
    sh.cfg.record_count = cfg.base.record_count / S;
    sh.cfg.total_ops = cfg.base.total_ops / S;
    sh.cfg.slow_gb /= S;
    sh.cfg.kernel_gb /= S;
    sh.cfg.seed = cfg.base.seed + 7919 * s;

    const Scale scale{sh.cfg.scale_denom};
    // RunYcsbBench's fast tier is the platform default 16 GB; the shard
    // gets its 1/N slice of that too.
    const PlatformSpec platform =
        MakePlatform(sh.cfg.platform, scale, 16.0 / S, sh.cfg.slow_gb);

    KvStore::Config kcfg;
    kcfg.record_count = sh.cfg.record_count;
    kcfg.record_size = sh.cfg.record_size;
    sh.store = std::make_unique<KvStore>(kcfg);
    const Vpn end = sh.store->Layout(0);

    sh.sim = std::make_unique<Sim>(platform, sh.cfg.policy, end + 16);
    if (cfg.enable_spans) {
      sh.sim->ms().set_span_tracing(true);
    }
    if (cfg.timeline_interval > 0) {
      Timeline::Config tcfg;
      tcfg.interval = ((cfg.timeline_interval + cfg.epoch_cycles - 1) / cfg.epoch_cycles) *
                      cfg.epoch_cycles;
      tcfg.capacity = cfg.timeline_capacity;
      sh.sim->EnableTimeline(tcfg, /*engine_driven=*/false);
    }
    sh.sim->ms().ReserveFastFrames(scale.Pages(sh.cfg.kernel_gb));
    MapRange(sh.sim->ms(), sh.sim->as(), 0, end, Tier::kFast);
    if (sh.cfg.demote_first) {
      DemoteAll(sh.sim->ms(), sh.sim->as());
    }

    YcsbWorkload::Config wcfg;
    wcfg.base.total_ops = sh.cfg.total_ops;
    wcfg.base.seed = sh.cfg.seed;
    wcfg.base.batch = 1;
    sh.app = std::make_unique<YcsbWorkload>(&sh.sim->ms(), &sh.sim->as(), sh.store.get(),
                                            wcfg);
    sh.sim->AddWorkload(sh.app.get());
    sims.push_back(sh.sim.get());
  }

  const uint64_t sample_epochs =
      cfg.timeline_interval > 0
          ? (cfg.timeline_interval + cfg.epoch_cycles - 1) / cfg.epoch_cycles
          : 0;
  ShardRouter router(S);
  const Control ctrl = RunLockstep(
      sims, cfg.exec_threads, cfg.epoch_cycles, cfg.max_epochs, router,
      sample_epochs == 0 ? std::function<void(uint32_t, uint64_t)>()
                         : [&](uint32_t s, uint64_t epoch) {
                             if ((epoch + 1) % sample_epochs == 0) {
                               Sim& sim = *shards[s].sim;
                               sim.SampleTimeline(OpsDone(sim), epoch + 1);
                             }
                           });

  ShardedAppResult result;
  result.total_ops = ctrl.total_ops;
  result.messages = ctrl.messages;
  result.epochs = ctrl.epochs;
  uint64_t ops_sum = 0;
  for (uint32_t s = 0; s < S; s++) {
    YcsbShardState& sh = shards[s];
    AppRunResult r;
    const PhaseReport report = Analyze(*sh.sim);
    r.ops_per_sec = report.ops_per_sec;
    r.runtime_ms = CyclesToSeconds(report.total_cycles, sh.sim->platform().ghz) * 1e3;
    r.promotions = Promotions(sh.sim->ms().counters());
    r.demotions = Demotions(sh.sim->ms().counters());
    if (NomadPolicy* nomad = sh.sim->nomad()) {
      r.tpm_commits = nomad->tpm_stats().commits;
      r.tpm_aborts = nomad->tpm_stats().aborts;
    }
    result.max_virtual_time = std::max(result.max_virtual_time, sh.sim->engine().now());
    ops_sum += OpsDone(*sh.sim);
    if (collector != nullptr) {
      const std::string base_label =
          label.empty() ? PolicyKindName(sh.cfg.policy) : label;
      collector->Capture(base_label + ".shard" + std::to_string(s), *sh.sim, report);
    }
    result.per_shard.push_back(r);
  }
  // Shards run concurrently in virtual time, so the machine-level rate is
  // the whole op count over the slowest shard's runtime.
  if (result.max_virtual_time > 0) {
    result.aggregate_ops_per_sec =
        static_cast<double>(ops_sum) /
        CyclesToSeconds(result.max_virtual_time, shards[0].sim->platform().ghz);
  }
  return result;
}

}  // namespace nomad
