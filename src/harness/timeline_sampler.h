// Timeline sampling: feeds a src/obs Timeline from a live Sim.
//
// The sampler snapshots every instrument the harness can reach — tier
// occupancy and watermarks, PCQ/pending/deferred depths, shadow count,
// kpromote degradation, the trace ring's emit/drop deltas, every registered
// counter (as per-window deltas) and histogram (count delta + p50/p99) —
// into the columnar ring. Two drivers exist:
//  - TimelineActor: an engine actor that samples every `interval` virtual
//    cycles (single-sim mode),
//  - RunShardedMicro's epoch loop, which calls Sample() at lockstep epoch
//    boundaries so the sampled times are identical for any --threads value.
#ifndef SRC_HARNESS_TIMELINE_SAMPLER_H_
#define SRC_HARNESS_TIMELINE_SAMPLER_H_

#include <string>

#include "src/base/annotations.h"
#include "src/obs/timeline.h"
#include "src/sim/engine.h"

namespace nomad {

class Sim;

class NOMAD_SHARD_CONFINED TimelineSampler {
 public:
  TimelineSampler(Sim* sim, const Timeline::Config& config);

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }

  // Records one delta-snapshot stamped with the current virtual time.
  void Sample();

  // Sharded-mode variant: also records the shard's progress gauges
  // (shard.ops_done / shard.epoch), which only the epoch loop knows.
  void SampleSharded(uint64_t ops_done, uint64_t epoch);

 private:
  void SampleLocked(bool sharded, uint64_t ops_done, uint64_t epoch);

  Sim* sim_;
  Timeline timeline_;
  // Fixed gauge channels, resolved once at construction; counter and
  // histogram channels are dynamic (instruments appear as the run warms up)
  // and resolved by name per sample.
  size_t fast_free_ = 0;
  size_t fast_used_ = 0;
  size_t fast_low_wm_ = 0;
  size_t fast_below_low_ = 0;
  size_t slow_free_ = 0;
  size_t slow_used_ = 0;
  size_t pcq_depth_ = 0;
  size_t pending_depth_ = 0;
  size_t deferred_depth_ = 0;
  size_t shadow_pages_ = 0;
  size_t degraded_ = 0;
  size_t trace_capacity_ = 0;
  size_t trace_emitted_ = 0;
  size_t trace_dropped_ = 0;
  bool shard_channels_resolved_ = false;
  size_t shard_ops_ = 0;
  size_t shard_epoch_ = 0;
};

// Engine-driven periodic sampling. Register with Engine::AddActor; the
// actor samples at its scheduled time and sleeps one interval. It never
// finishes (done() stays false), which is fine: Sim::Run's stop predicate
// only consults workloads.
class NOMAD_SHARD_CONFINED TimelineActor : public Actor {
 public:
  explicit TimelineActor(TimelineSampler* sampler) : sampler_(sampler) {}

  Cycles Step(Engine& engine) override;
  std::string name() const override { return "timeline"; }

 private:
  TimelineSampler* sampler_;
};

}  // namespace nomad

#endif  // SRC_HARNESS_TIMELINE_SAMPLER_H_
