// Experiment harness: wires a platform, a policy, an address space and
// workload actors into one runnable simulation, provides the paper's
// initial-placement setups, and reduces measurements into the phase
// numbers the figures report ("migration in progress" vs "stable").
#ifndef SRC_HARNESS_EXPERIMENT_H_
#define SRC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/annotations.h"
#include "src/harness/timeline_sampler.h"
#include "src/mm/memory_system.h"
#include "src/obs/json.h"
#include "src/nomad/nomad_policy.h"
#include "src/policy/memtis.h"
#include "src/policy/policy.h"
#include "src/policy/tpp.h"
#include "src/workload/workload.h"
#include "src/workload/zipfian.h"

namespace nomad {

enum class PolicyKind {
  kNoMigration,
  kTpp,
  kMemtisDefault,
  kMemtisQuickCool,
  kNomad,
};

const char* PolicyKindName(PolicyKind kind);
std::unique_ptr<TieringPolicy> MakePolicy(PolicyKind kind);

// True when the policy can run on the platform (Memtis needs PEBS/IBS).
bool PolicySupported(PolicyKind kind, const PlatformSpec& platform);

// A fully wired simulation instance.
class NOMAD_SHARD_CONFINED Sim {
 public:
  Sim(const PlatformSpec& platform, PolicyKind kind, uint64_t as_pages);
  // Custom-policy variant (ablation benches build hand-configured
  // NomadPolicy instances). `kind` is only used for reporting.
  Sim(const PlatformSpec& platform, std::unique_ptr<TieringPolicy> policy, PolicyKind kind,
      uint64_t as_pages);

  Engine& engine() { return engine_; }
  MemorySystem& ms() { return ms_; }
  AddressSpace& as() { return as_; }
  TieringPolicy& policy() { return *policy_; }
  const PlatformSpec& platform() const { return platform_; }
  PolicyKind kind() const { return kind_; }

  // NOMAD-specific view (nullptr for other policies).
  NomadPolicy* nomad() { return dynamic_cast<NomadPolicy*>(policy_.get()); }

  // Registers a workload actor as a simulated CPU and schedules it.
  void AddWorkload(WorkloadActor* w);

  // Turns on time-resolved telemetry (src/obs/timeline.h). Engine-driven
  // mode registers a TimelineActor sampling every config.interval cycles;
  // the sharded harness passes engine_driven=false and drives
  // SampleTimeline from lockstep epoch boundaries instead. Off by default:
  // the fixed-seed goldens are captured without a timeline.
  void EnableTimeline(const Timeline::Config& config, bool engine_driven = true);
  // The sampler, or nullptr when the timeline is off.
  TimelineSampler* timeline_sampler() { return timeline_.get(); }
  const TimelineSampler* timeline_sampler() const { return timeline_.get(); }
  // Records one sample now (external drivers only; no-op when off).
  void SampleTimeline(uint64_t shard_ops_done, uint64_t shard_epoch) {
    if (timeline_ != nullptr) {
      timeline_->SampleSharded(shard_ops_done, shard_epoch);
    }
  }

  // Runs until every registered workload finished (bounded by hard_cap
  // virtual cycles as a safety net). Returns final virtual time.
  Cycles Run(Cycles hard_cap = Cycles{1} << 42);

  // Runs until the workloads have jointly completed `ops` operations.
  // Callable repeatedly with growing targets (phase snapshots).
  Cycles RunUntilOps(uint64_t ops);

  const std::vector<WorkloadActor*>& workloads() const { return workloads_; }

 private:
  PlatformSpec platform_;
  PolicyKind kind_;
  Engine engine_;
  MemorySystem ms_;
  AddressSpace as_;
  std::unique_ptr<TieringPolicy> policy_;
  std::vector<WorkloadActor*> workloads_;
  std::unique_ptr<TimelineSampler> timeline_;
  std::unique_ptr<TimelineActor> timeline_actor_;
};

// ---------- placement helpers ----------

// Maps [start, start+n) to frames on the exact tier; falls back to the
// other tier when full. Returns pages that landed on the requested tier.
uint64_t MapRange(MemorySystem& ms, AddressSpace& as, Vpn start, uint64_t n, Tier tier);

// Silently (no counters/cycles) moves a mapped page to `tier` - the
// "customized tool to demote all memory pages" used before the Redis and
// Liblinear runs (sec. 4.2).
bool MovePageSilent(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier tier);
uint64_t DemoteAll(MemorySystem& ms, AddressSpace& as);

enum class Placement { kFrequencyOpt, kRandom };

// The micro-benchmark's initial layout (sec. 4.1): `kernel_pages` reserved,
// the cold half of the RSS filling fast memory first, then the WSS split
// with `wss_fast_pages` on fast and the rest on slow, ordered by hotness
// (Frequency-opt) or randomly.
struct MicroLayout {
  uint64_t rss_pages = 0;
  uint64_t wss_pages = 0;
  uint64_t wss_fast_pages = 0;
  Placement placement = Placement::kFrequencyOpt;
  uint64_t kernel_pages = 0;
  uint64_t seed = 7;
};

// Returns the first VPN of the WSS region.
Vpn SetupMicroLayout(Sim& sim, const MicroLayout& layout, const ScrambledZipfian& zipf);

// ---------- measurement ----------

struct PhaseReport {
  double transient_gbps = 0;  // "migration in progress"
  double stable_gbps = 0;     // "migration stable"
  double overall_gbps = 0;
  double mean_latency_cycles = 0;
  double p99_latency_cycles = 0;
  uint64_t total_ops = 0;
  Cycles total_cycles = 0;
  double ops_per_sec = 0;  // app-level ops / simulated second

  // The full instruments backing the scalars above, retained so the metrics
  // exporter can report percentiles and the per-window bandwidth series.
  LatencyHistogram latency;
  std::vector<uint64_t> window_bytes;  // merged across workload actors
  Cycles window_cycles = 0;
};

// Aggregates the workloads' series: transient = first quarter of the run's
// windows (after the first), stable = last quarter.
PhaseReport Analyze(const Sim& sim);

// ---------- machine-readable export (src/obs exporters) ----------

// Appends one run's metrics object to `jw`: identity (label, policy,
// platform), the phase report, latency percentiles, the windowed-bandwidth
// series, TPM statistics when the policy is NOMAD, every raw counter, and a
// trace summary.
void AppendRunMetrics(JsonWriter& jw, Sim& sim, const PhaseReport& report,
                      const std::string& label);

// Writes a complete metrics.json document holding a single run. Returns
// false when the file cannot be opened.
bool WriteMetricsFile(Sim& sim, const PhaseReport& report, const std::string& label,
                      const std::string& bench_id, const std::string& path);

// Writes the run's event trace as a chrome://tracing JSON document.
bool WriteTraceFile(Sim& sim, const std::string& path);

// Writes the run's cycle-attribution profile as collapsed-stack text
// ("root;child cycles" per line), the input format of flamegraph tools.
bool WriteProfileFile(Sim& sim, const std::string& path);

// Writes the run's telemetry timeline as CSV (tools/timeline_report input).
// Returns false when the timeline is off or the file cannot be opened.
bool WriteTimelineFile(Sim& sim, const std::string& path);

}  // namespace nomad

#endif  // SRC_HARNESS_EXPERIMENT_H_
