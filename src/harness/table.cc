#include "src/harness/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nomad {

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); c++) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); c++) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(widths[c])) << cell;
    }
    out << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string FmtCount(uint64_t v) {
  std::ostringstream os;
  if (v >= 1000000) {
    os << std::fixed << std::setprecision(1) << static_cast<double>(v) / 1e6 << "M";
  } else if (v >= 10000) {
    os << std::fixed << std::setprecision(1) << static_cast<double>(v) / 1e3 << "K";
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace nomad
