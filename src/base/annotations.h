// Thread-safety capability annotations: the vocabulary of the repo's
// concurrency contract.
//
// Two kinds of shared state exist in this tree, and each gets its own
// statically checkable marking:
//
//  1. *Lock-protected* state — the cross-shard seams (ShardRouter mailbox
//     pairs, the ShardBarrier phase fields). These carry Clang
//     thread-safety capability attributes: the mutex is declared a
//     capability (NOMAD_CAPABILITY), the fields it protects are
//     NOMAD_GUARDED_BY it, and the accessors spell their locking protocol
//     with NOMAD_ACQUIRE/NOMAD_RELEASE/NOMAD_REQUIRES. Clang's
//     -Wthread-safety analysis (promoted to -Werror in CI's clang builds)
//     then rejects any unlocked access at compile time. See
//     src/base/mutex.h for the annotated std::mutex wrappers the analysis
//     understands.
//
//  2. *Shard-confined* state — everything a Sim owns (MemorySystem, frame
//     pool, counters, trace sink, PCQ, admission controller, ...). These
//     are single-threaded by construction: exactly one worker thread
//     drives a shard during an epoch, and cross-shard communication goes
//     through ShardRouter messages only. No mutex exists to annotate, so
//     the marking is NOMAD_SHARD_CONFINED — an `annotate` attribute on
//     clang (visible to AST tools), nothing on other compilers — which
//     seeds tools/nomad_analyze's ownership map. The analyzer rejects
//     pointers to confined state escaping into ShardMsg payloads,
//     cross-thread lambdas, or static storage, and cross-shard mutation
//     outside the lockstep runtime's epoch/drain entry points.
//
// Every macro compiles to nothing on non-Clang compilers (and under
// SWIG-style tooling that chokes on GNU attributes), so GCC builds, the
// tracing-off build and the faults-off build see plain C++.
//
// Naming follows the Clang thread-safety documentation and Abseil's
// thread_annotations.h so the vocabulary is familiar; the NOMAD_ prefix
// keeps the repo's single-namespace convention.
#ifndef SRC_BASE_ANNOTATIONS_H_
#define SRC_BASE_ANNOTATIONS_H_

#if defined(__clang__)
#define NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op on GCC and friends
#endif

// --- capability declarations -------------------------------------------

// Declares a type to be a capability ("mutex" in every use here). Lock()
// acquires the capability, Unlock() releases it; the analysis tracks which
// capabilities are held at every statement.
#define NOMAD_CAPABILITY(x) NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// Declares an RAII type whose constructor acquires and destructor releases
// a capability (MutexLock in src/base/mutex.h).
#define NOMAD_SCOPED_CAPABILITY NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// --- data annotations ---------------------------------------------------

// The field may only be read or written while holding capability x.
#define NOMAD_GUARDED_BY(x) NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// The *pointee* of this pointer field may only be dereferenced while
// holding capability x (the pointer itself is unguarded).
#define NOMAD_PT_GUARDED_BY(x) NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define NOMAD_ACQUIRED_BEFORE(...) \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define NOMAD_ACQUIRED_AFTER(...) \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// --- function annotations ----------------------------------------------

// The caller must hold the capability when calling; the function neither
// acquires nor releases it.
#define NOMAD_REQUIRES(...) \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

// The function acquires / releases the capability and holds it past the
// call boundary (the bread and butter of Lock()/Unlock() wrappers).
#define NOMAD_ACQUIRE(...) \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define NOMAD_RELEASE(...) \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define NOMAD_TRY_ACQUIRE(...) \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// The caller must NOT already hold the capability (non-reentrancy).
#define NOMAD_EXCLUDES(...) NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// The function returns a reference to the given capability.
#define NOMAD_RETURN_CAPABILITY(x) NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: disables the analysis inside one function. Every use needs
// a comment saying which out-of-band mechanism provides the exclusion.
#define NOMAD_NO_THREAD_SAFETY_ANALYSIS \
  NOMAD_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

// --- shard confinement ---------------------------------------------------

// Marks a class whose instances belong to exactly one shard (or to the
// single-threaded setup/merge phases): only the worker thread currently
// driving the owning shard may touch them, and pointers/references to them
// must never cross a shard boundary — not through ShardMsg payloads, not
// through by-reference lambda captures handed to other threads, not
// through static storage. There is no runtime token to check, so the
// attribute exists for tools: clang records it in the AST (an `annotate`
// attribute), and tools/nomad_analyze seeds its ownership map from it,
// then closes the map over the marked classes' member object graphs
// (everything a Sim owns is confined with it).
#if defined(__clang__)
#define NOMAD_SHARD_CONFINED __attribute__((annotate("nomad::shard_confined")))
#else
#define NOMAD_SHARD_CONFINED
#endif

#endif  // SRC_BASE_ANNOTATIONS_H_
