// Annotated synchronization wrappers: std::mutex / std::condition_variable
// with the Clang thread-safety capability attributes attached.
//
// The standard-library types carry no annotations, so code that uses them
// directly is invisible to -Wthread-safety: the analysis cannot connect a
// std::lock_guard to the fields the lock protects. These zero-overhead
// wrappers (every method is a single inlined forwarding call) restore that
// connection. They are the only sanctioned way to add a lock in this tree
// — lint rule NL011 requires any class holding a mutex or atomic member to
// carry thread-safety annotations, and plain std::mutex members cannot.
//
// CondVar deliberately has no predicate-taking Wait: a predicate lambda is
// analyzed as its own function, where the analysis cannot see that the
// mutex is held, producing false positives on every guarded read inside
// it. Callers loop instead:
//
//   MutexLock lock(mu_);
//   while (!ready_) {      // ready_ is NOMAD_GUARDED_BY(mu_): checked
//     cv_.Wait(mu_);
//   }
#ifndef SRC_BASE_MUTEX_H_
#define SRC_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/base/annotations.h"

namespace nomad {

// A std::mutex declared as a thread-safety capability.
class NOMAD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NOMAD_ACQUIRE() { mu_.lock(); }
  void Unlock() NOMAD_RELEASE() { mu_.unlock(); }
  bool TryLock() NOMAD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock with scoped-capability semantics (the annotated counterpart of
// std::lock_guard<std::mutex>).
class NOMAD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NOMAD_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() NOMAD_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to the annotated Mutex. Wait() performs one
// blocking wait (atomically releasing and re-acquiring mu); spurious
// wakeups are the caller's loop to absorb, which keeps every guarded read
// inside the annotated caller where the analysis can verify it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) NOMAD_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the capability bookkeeping (caller
    // still holds mu) matches reality on return.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nomad

#endif  // SRC_BASE_MUTEX_H_
