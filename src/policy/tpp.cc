#include "src/policy/tpp.h"

#include "src/mm/migrate.h"
#include "src/obs/event_registry.h"

namespace nomad {

void TppPolicy::Install(MemorySystem& ms, Engine& engine) {
  ms_ = &ms;

  config_.kswapd.tier = Tier::kFast;
  kswapd_ = std::make_unique<Kswapd>(&ms, config_.kswapd);
  const ActorId kswapd_id = engine.AddActor(kswapd_.get());
  kswapd_->set_actor_id(kswapd_id);

  scanner_ = std::make_unique<HintFaultScanner>(&ms, config_.scanner);
  engine.AddActor(scanner_.get());

  ms.set_kswapd_waker([this, &ms, &engine](Tier tier) {
    if (tier == Tier::kFast) {
      engine.Wake(kswapd_->actor_id(), engine.now() + ms.platform().costs.daemon_wakeup);
    }
  });

  ms.set_hint_fault_handler([this](ActorId cpu, AddressSpace& as, Vpn vpn) {
    return OnHintFault(cpu, as, vpn);
  });
}

Cycles TppPolicy::OnHintFault(ActorId /*cpu*/, AddressSpace& as, Vpn vpn) {
  MemorySystem& ms = *ms_;
  const KernelCosts& costs = ms.platform().costs;
  // The span shows TPP's defining cost structure in the profile: its
  // promotions appear as sync_migrate nested *inside* hint_fault, i.e. on
  // the faulting thread's critical path, where NOMAD's sit under tpm.
  ProfScope span(ms.prof(), ProfNode::kHintFault);
  Pte* pte = ms.PteOf(as, vpn);
  Cycles cost = costs.pte_update;
  ms.prof().Charge(cost);
  ms.Trace(TraceEvent::kHintFault, vpn);
  ms.ResolveHintFault(*pte);  // restore access so the faulting load can retire

  const Pfn pfn = pte->pfn;
  PageFrame f = ms.pool().frame(pfn);
  if (f.tier() == Tier::kFast) {
    return cost;  // raced with another promotion; nothing to do
  }

  // NUMA-hint fault path: record the touch. Activation goes through the
  // batched pagevec, so the page typically needs several faults before TPP
  // considers it hot.
  ms.lru(Tier::kSlow).MarkAccessed(pfn);
  cost += costs.lru_op;
  ms.prof().Charge(costs.lru_op);

  if (!f.active()) {
    ms.counters().Add(cnt::kTppFaultNotActive, 1);
    return cost;
  }

  // Promotion requires headroom on the fast node; TPP decouples allocation
  // from reclaim by waking kswapd rather than reclaiming inline.
  FramePool& pool = ms.pool();
  if (pool.FreeFrames(Tier::kFast) <= pool.LowWatermark(Tier::kFast)) {
    ms.counters().Add(cnt::kTppPromoteSkippedNomem, 1);
    if (ms.engine()) {
      ms.engine()->Wake(kswapd_->actor_id(), ms.Now() + costs.daemon_wakeup);
    }
    return cost;
  }

  // Synchronous promotion on the faulting thread's critical path.
  MigrateResult r = MigratePageWithRetry(ms, as, vpn, Tier::kFast, config_.migrate_max_attempts);
  cost += r.cycles;
  ms.counters().Add(r.success ? cnt::kTppPromote : cnt::kTppPromoteFail, 1);
  // Cycle attribution for the Figure 2 breakdown: promotion work executes
  // on the application core.
  ms.counters().Add(cnt::kTppPromoteCycles, r.cycles);
  return cost;
}

}  // namespace nomad
