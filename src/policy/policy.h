// Tiering policy interface.
//
// A policy wires its fault handlers, observers and background actors into a
// MemorySystem + Engine pair. All policies - the paper's TPP and Memtis
// baselines, the no-migration baseline, and NOMAD itself - are built purely
// on MemorySystem's public primitives, so their costs are directly
// comparable.
#ifndef SRC_POLICY_POLICY_H_
#define SRC_POLICY_POLICY_H_

#include <string>

#include "src/mm/memory_system.h"

namespace nomad {

class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;

  virtual std::string name() const = 0;

  // Registers handlers and actors. Called once, before the workload runs.
  virtual void Install(MemorySystem& ms, Engine& engine) = 0;
};

// The paper's "no migration" baseline: pages stay where first placed and
// slow-tier data is accessed in place.
class NoMigrationPolicy : public TieringPolicy {
 public:
  std::string name() const override { return "no-migration"; }
  void Install(MemorySystem& /*ms*/, Engine& /*engine*/) override {}
};

}  // namespace nomad

#endif  // SRC_POLICY_POLICY_H_
