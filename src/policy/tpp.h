// TPP: Transparent Page Placement (Maruf et al., ASPLOS'23), as described
// and measured in the NOMAD paper.
//
// - Promotion is synchronous and fault-driven: slow-tier pages are armed
//   with prot_none; the faulting thread itself runs migrate_pages() when
//   the page is on the active LRU list, blocking until the copy finishes.
// - A page not yet on the active list is only marked accessed; because
//   activations batch in the 15-slot pagevec, promoting one page can take
//   up to 15 minor faults (sec. 3.1).
// - Demotion is asynchronous: kswapd migrates cold fast-tier pages to the
//   slow node when the fast node's free count dips below the watermark.
// - Tiering is exclusive: a page lives on exactly one node.
#ifndef SRC_POLICY_TPP_H_
#define SRC_POLICY_TPP_H_

#include <memory>

#include "src/mm/kswapd.h"
#include "src/policy/policy.h"
#include "src/trace/hint_fault_scanner.h"

namespace nomad {

class TppPolicy : public TieringPolicy {
 public:
  struct Config {
    HintFaultScanner::Config scanner;
    Kswapd::Config kswapd;  // tier is forced to kFast
    int migrate_max_attempts = 10;
  };

  explicit TppPolicy() = default;
  explicit TppPolicy(const Config& config) : config_(config) {}

  std::string name() const override { return "tpp"; }
  void Install(MemorySystem& ms, Engine& engine) override;

 private:
  Cycles OnHintFault(ActorId cpu, AddressSpace& as, Vpn vpn);

  Config config_;
  MemorySystem* ms_ = nullptr;
  std::unique_ptr<Kswapd> kswapd_;
  std::unique_ptr<HintFaultScanner> scanner_;
};

}  // namespace nomad

#endif  // SRC_POLICY_TPP_H_
