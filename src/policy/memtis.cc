#include "src/policy/memtis.h"

#include "src/mm/migrate.h"
#include "src/obs/event_registry.h"

namespace nomad {

void MemtisPolicy::Install(MemorySystem& ms, Engine& engine) {
  ms_ = &ms;
  if (!ms.platform().pebs_supported) {
    // Platform D: Memtis cannot run (no IBS backend). Install nothing; the
    // harness excludes it there, matching the paper.
    return;
  }
  sampler_ = std::make_unique<PebsSampler>(&ms, config_.pebs);
  sampler_->Attach();

  migrator_ = std::make_unique<Migrator>(this);
  engine.AddActor(migrator_.get());

  Kswapd::Config kcfg;
  kcfg.tier = Tier::kFast;
  kswapd_ = std::make_unique<Kswapd>(&ms, kcfg);
  const ActorId kswapd_id = engine.AddActor(kswapd_.get());
  kswapd_->set_actor_id(kswapd_id);
  ms.set_kswapd_waker([this, &engine, &ms](Tier tier) {
    if (tier == Tier::kFast) {
      engine.Wake(kswapd_->actor_id(), engine.now() + ms.platform().costs.daemon_wakeup);
    }
  });
}

Cycles MemtisPolicy::Migrator::Step(Engine& engine) {
  Cycles spent = policy_->RunMigrationRound();
  engine.SleepUntil(engine.now() + std::max<Cycles>(spent, 1) +
                    policy_->config_.migrate_interval);
  return spent;
}

Cycles MemtisPolicy::RunMigrationRound() {
  MemorySystem& ms = *ms_;
  PebsSampler& pebs = *sampler_;
  // The whole round is a pebs_drain span: the sample-histogram work books
  // as self, the resulting migrations nest as sync_migrate children.
  ProfScope span(ms.prof(), ProfNode::kPebsDrain);
  AddressSpace* as = pebs.space();
  if (as == nullptr) {
    ms.prof().Charge(ms.platform().costs.daemon_wakeup);
    return ms.platform().costs.daemon_wakeup;  // nothing sampled yet
  }
  Cycles spent = ms.platform().costs.daemon_wakeup;
  ms.prof().Charge(spent);
  FramePool& pool = ms.pool();

  const uint64_t fast_budget = pool.TotalFrames(Tier::kFast);
  const uint64_t threshold = pebs.HotThreshold(fast_budget);

  // Demote first when the fast node is tight, to make room for promotions.
  if (pool.BelowLowWatermark(Tier::kFast)) {
    for (Vpn vpn : pebs.ColdPagesOn(Tier::kFast, threshold, config_.demote_batch)) {
      if (!pool.BelowLowWatermark(Tier::kFast)) {
        break;
      }
      MigrateResult r = MigratePageSync(ms, *as, vpn, Tier::kSlow);
      spent += r.cycles;
      if (r.success) {
        ms.counters().Add(cnt::kMemtisDemote, 1);
      }
    }
  }

  // Promote the hottest sampled pages still resident on the slow tier.
  uint64_t attempts = 0;
  for (Vpn vpn : pebs.HotPagesOn(Tier::kSlow, threshold, config_.promote_batch)) {
    if (pool.FreeFrames(Tier::kFast) <= pool.LowWatermark(Tier::kFast)) {
      ms.counters().Add(cnt::kMemtisPromoteSkippedNomem, 1);
      break;
    }
    attempts++;
    MigrateResult r = MigratePageSync(ms, *as, vpn, Tier::kFast);
    spent += r.cycles;
    ms.counters().Add(r.success ? cnt::kMemtisPromote : cnt::kMemtisPromoteFail, 1);
  }
  ms.Trace(TraceEvent::kMigrationRound, attempts, spent);
  return spent;
}

}  // namespace nomad
