// Memtis (Lee et al., SOSP'23) as described and measured in the NOMAD
// paper: PEBS-sampled page temperature with histogram-based hot/cold
// classification and a background kernel thread that migrates pages off the
// application's critical path.
//
// Two variants differ only in cooling speed (sec. 4, "Baselines"):
//   Memtis-Default    cooling period 2,000k samples
//   Memtis-QuickCool  cooling period 2k samples
// No hint faults are armed: the app never traps, which is why Memtis wins
// while migrations are in flight but mis-places cache-hot pages (Fig. 10).
#ifndef SRC_POLICY_MEMTIS_H_
#define SRC_POLICY_MEMTIS_H_

#include <memory>

#include "src/mm/kswapd.h"
#include "src/policy/policy.h"
#include "src/trace/pebs.h"

namespace nomad {

class MemtisPolicy : public TieringPolicy {
 public:
  struct Config {
    PebsSampler::Config pebs;      // cooling_period selects Default/QuickCool
    Cycles migrate_interval = 2000000;  // background thread period (~1 ms)
    size_t promote_batch = 64;
    size_t demote_batch = 64;
    std::string variant = "memtis-default";
  };

  static Config DefaultVariant() {
    Config c;
    c.pebs.cooling_period = 2000000;
    c.variant = "memtis-default";
    return c;
  }
  static Config QuickCoolVariant() {
    Config c;
    c.pebs.cooling_period = 2000;
    c.variant = "memtis-quickcool";
    return c;
  }

  explicit MemtisPolicy(Config config = DefaultVariant()) : config_(config) {}

  std::string name() const override { return config_.variant; }
  void Install(MemorySystem& ms, Engine& engine) override;

  const PebsSampler* sampler() const { return sampler_.get(); }

 private:
  // The kmigrated-style background thread.
  class Migrator : public Actor {
   public:
    Migrator(MemtisPolicy* policy) : policy_(policy) {}
    Cycles Step(Engine& engine) override;
    std::string name() const override { return "memtis-migrator"; }

   private:
    MemtisPolicy* policy_;
  };

  Cycles RunMigrationRound();

  Config config_;
  MemorySystem* ms_ = nullptr;
  std::unique_ptr<PebsSampler> sampler_;
  std::unique_ptr<Migrator> migrator_;
  std::unique_ptr<Kswapd> kswapd_;
};

}  // namespace nomad

#endif  // SRC_POLICY_MEMTIS_H_
