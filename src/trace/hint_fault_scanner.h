// Hint-fault arming for slow-tier pages.
//
// TPP "sets all pages residing in slow memory as inaccessible, and any user
// access to these pages will trigger a minor page fault" (sec. 2.2). This
// actor implements that arming: it sweeps the slow node's frames, setting
// prot_none on mapped, non-shadow pages, and re-arms pages whose faults
// were handled (the NUMA-balancing rescan). The fault itself is delivered
// through MemorySystem's hint-fault handler, where the tiering policy
// decides what to do.
//
// NOMAD guarantees one fault per migration (sec. 3.1), so the scanner
// skips pages that are queued (PCQ / pending) or mid-transaction.
#ifndef SRC_TRACE_HINT_FAULT_SCANNER_H_
#define SRC_TRACE_HINT_FAULT_SCANNER_H_

#include <functional>

#include "src/mm/memory_system.h"

namespace nomad {

class HintFaultScanner : public Actor {
 public:
  struct Config {
    uint64_t pages_per_round = 512;   // arming batch per step
    Cycles round_interval = 100000;   // pause between sweep rounds
    Cycles cost_per_page = 120;       // PTE write + bookkeeping
  };

  HintFaultScanner(MemorySystem* ms, const Config& config)
      : ms_(ms), config_(config), cursor_(FirstSlowPfn()) {}

  // Optional gate: when it returns false, the scanner idles instead of
  // arming pages (used by the thrash governor to stop useless faults).
  void set_enabled_fn(std::function<bool()> fn) { enabled_ = std::move(fn); }

  Cycles Step(Engine& engine) override;
  std::string name() const override { return "hint-scanner"; }

  uint64_t pages_armed() const { return pages_armed_; }

 private:
  Pfn FirstSlowPfn() const;
  Pfn EndSlowPfn() const;

  MemorySystem* ms_;
  Config config_;
  Pfn cursor_;
  uint64_t pages_armed_ = 0;
  std::function<bool()> enabled_;
};

}  // namespace nomad

#endif  // SRC_TRACE_HINT_FAULT_SCANNER_H_
