#include "src/trace/pebs.h"

#include <algorithm>

namespace nomad {

void PebsSampler::Attach() {
  if (!ms_->platform().pebs_supported) {
    return;
  }
  ms_->add_access_observer(
      [this](ActorId /*cpu*/, AddressSpace& as, Vpn vpn, uint64_t /*offset*/, bool is_write,
             bool llc_miss, bool tlb_miss, Tier tier) {
        OnAccess(as, vpn, is_write, llc_miss, tlb_miss, tier);
      });
}

void PebsSampler::OnAccess(AddressSpace& as, Vpn vpn, bool is_write, bool llc_miss, bool tlb_miss,
                           Tier tier) {
  // Eligibility: stores retire as sampleable events everywhere; dTLB
  // misses are sampleable everywhere; loads are otherwise only visible as
  // LLC-miss events, and only if the platform's PMU sees misses to that
  // tier (on CXL platforms A/B they are uncore events, sec. 4).
  bool primary;
  if (is_write) {
    primary = true;
  } else if (!llc_miss) {
    primary = false;  // cache hits generate no miss event
  } else {
    primary = tier == Tier::kFast || ms_->platform().pebs_sees_slow_reads;
  }
  if (primary) {
    if (++event_tick_ % config_.sample_period != 0) {
      return;
    }
  } else if (tlb_miss) {
    // dTLB-miss sampling: a sparser auxiliary stream (this is all Memtis
    // has for CXL reads on platforms A/B).
    if (++tlb_event_tick_ % (config_.sample_period * kTlbPeriodFactor) != 0) {
      return;
    }
  } else {
    return;  // invisible to the PMU
  }
  space_ = &as;
  counts_[vpn]++;
  total_samples_++;
  if (++samples_since_cooling_ >= config_.cooling_period) {
    Cool();
  }
}

void PebsSampler::Cool() {
  samples_since_cooling_ = 0;
  coolings_++;
  for (auto it = counts_.begin(); it != counts_.end();) {
    it->second /= 2;
    if (it->second == 0) {
      it = counts_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t PebsSampler::CountOf(Vpn vpn) const {
  auto it = counts_.find(vpn);
  return it == counts_.end() ? 0 : it->second;
}

uint64_t PebsSampler::HotThreshold(uint64_t budget_pages) const {
  if (counts_.empty()) {
    return 1;
  }
  // Build a log2 histogram of counts, then walk from the hot end until the
  // page budget is exhausted (Memtis's histogram-based split).
  uint64_t hist[64] = {};
  for (const auto& [vpn, c] : counts_) {
    int b = 0;
    uint64_t v = c;
    while (v > 1) {
      v >>= 1;
      b++;
    }
    hist[std::min(b, 63)]++;
  }
  uint64_t cum = 0;
  for (int b = 63; b >= 0; b--) {
    cum += hist[b];
    if (cum > budget_pages) {
      return uint64_t{1} << (b + 1);
    }
  }
  return 1;
}

std::vector<Vpn> PebsSampler::HotPagesOn(Tier tier, uint64_t threshold, size_t max_n) const {
  std::vector<std::pair<uint64_t, Vpn>> hot;
  if (space_ == nullptr) {
    return {};
  }
  for (const auto& [vpn, c] : counts_) {
    if (c < threshold) {
      continue;
    }
    const Pte* pte = space_->table().Lookup(vpn);
    if (pte == nullptr || !pte->present) {
      continue;
    }
    if (ms_->pool().TierOf(pte->pfn) != tier) {
      continue;
    }
    hot.emplace_back(c, vpn);
  }
  std::sort(hot.begin(), hot.end(), std::greater<>());
  if (hot.size() > max_n) {
    hot.resize(max_n);
  }
  std::vector<Vpn> out;
  out.reserve(hot.size());
  for (const auto& [c, vpn] : hot) {
    out.push_back(vpn);
  }
  return out;
}

std::vector<Vpn> PebsSampler::ColdPagesOn(Tier tier, uint64_t threshold, size_t max_n) const {
  std::vector<std::pair<uint64_t, Vpn>> cold;
  if (space_ == nullptr) {
    return {};
  }
  for (const auto& [vpn, c] : counts_) {
    if (c >= threshold) {
      continue;
    }
    const Pte* pte = space_->table().Lookup(vpn);
    if (pte == nullptr || !pte->present) {
      continue;
    }
    if (ms_->pool().TierOf(pte->pfn) != tier) {
      continue;
    }
    cold.emplace_back(c, vpn);
  }
  std::sort(cold.begin(), cold.end());
  if (cold.size() > max_n) {
    cold.resize(max_n);
  }
  std::vector<Vpn> out;
  out.reserve(cold.size());
  for (const auto& [c, vpn] : cold) {
    out.push_back(vpn);
  }
  return out;
}

}  // namespace nomad
