#include "src/trace/hint_fault_scanner.h"

#include <algorithm>
#include <bit>

namespace nomad {

Pfn HintFaultScanner::FirstSlowPfn() const { return ms_->pool().TotalFrames(Tier::kFast); }

Pfn HintFaultScanner::EndSlowPfn() const {
  return FirstSlowPfn() + ms_->pool().TotalFrames(Tier::kSlow);
}

Cycles HintFaultScanner::Step(Engine& engine) {
  if (enabled_ && !enabled_()) {
    engine.SleepUntil(engine.now() + config_.round_interval);
    return 0;
  }
  FramePool& pool = ms_->pool();
  const Pfn first = FirstSlowPfn();
  const Pfn end = EndSlowPfn();
  Cycles spent = 0;
  uint64_t armed_this_round = 0;
  bool any_shootdown = false;

  // One step covers the same pages_per_round-sized PFN window the pre-bitmap
  // loop examined, but skips non-candidate frames at 64-frame word
  // granularity instead of loading each PageFrame. In steady state (most
  // slow pages already armed) a window is a handful of word loads.
  if (cursor_ >= end) {
    // Previous step ended exactly on the boundary: reset and rest, matching
    // the old loop's empty first iteration.
    cursor_ = first;
  } else {
    const Pfn win_start = cursor_;
    const Pfn win_end = std::min(win_start + config_.pages_per_round, end);
    for (uint64_t w = win_start >> 6; w <= (win_end - 1) >> 6; w++) {
      uint64_t bits = pool.ScanCandidateWord(w);
      // Mask off frames outside [win_start, win_end).
      const Pfn word_base = w << 6;
      if (word_base < win_start) {
        bits &= ~uint64_t{0} << (win_start - word_base);
      }
      if (word_base + 64 > win_end) {
        bits &= ~uint64_t{0} >> (word_base + 64 - win_end);
      }
      while (bits != 0) {
        const Pfn pfn = word_base + static_cast<Pfn>(std::countr_zero(bits));
        bits &= bits - 1;
        PageFrame f = pool.frame(pfn);
        if (!f.in_use() || !f.mapped() || f.is_shadow()) {
          // Stable non-armable states: becoming armable again passes
          // through a NoteScanCandidate site (alloc / map install /
          // shadow detach), so the bit can be dropped.
          pool.ClearScanCandidate(pfn);
          continue;
        }
        if (f.migrating() || f.in_pcq() || f.in_pending()) {
          continue;  // transient: revisit next sweep, keep the bit
        }
        Pte* pte = ms_->PteOf(*f.owner(), f.vpn());
        if (pte == nullptr || !pte->present || pte->prot_none) {
          // Absent PTEs come back via map installs; armed pages come back
          // via ResolveHintFault / remap. Both re-set the bit.
          pool.ClearScanCandidate(pfn);
          continue;
        }
        pte->prot_none = true;
        pool.ClearScanCandidate(pfn);  // armed: not armable until resolved
        pages_armed_++;
        armed_this_round++;
        spent += config_.cost_per_page;
        if (!any_shootdown) {
          // Arming downgrades permissions, so stale TLB entries must go.
          // Linux batches these flushes; we charge one shootdown per armed
          // batch.
          spent += ms_->TlbShootdown(*f.owner(), f.vpn());
          any_shootdown = true;
        } else {
          for (ActorId cpu : f.owner()->cpus()) {
            ms_->tlb(cpu).Invalidate(f.vpn());
          }
        }
      }
    }
    cursor_ = win_end;
    if (win_end == end && end - win_start < config_.pages_per_round) {
      // Partial final window: the old loop reset and rested in the same
      // step. An exact-boundary finish instead leaves cursor_ == end for
      // the empty-reset step above.
      cursor_ = first;
    }
  }

  if (armed_this_round > 0) {
    ms_->Trace(TraceEvent::kScannerArm, cursor_, armed_this_round);
  }
  // Arming sweeps are LRU/frame-table scanning work; root-level lru_scan
  // distinguishes them from kswapd's nested lru_scan in the profile.
  ms_->prof().ChargeLeaf(ProfNode::kLruScan, spent);
  if (cursor_ == first) {
    engine.SleepUntil(engine.now() + config_.round_interval);
  }
  return spent;
}

}  // namespace nomad
