#include "src/trace/hint_fault_scanner.h"

namespace nomad {

Pfn HintFaultScanner::FirstSlowPfn() const { return ms_->pool().TotalFrames(Tier::kFast); }

Pfn HintFaultScanner::EndSlowPfn() const {
  return FirstSlowPfn() + ms_->pool().TotalFrames(Tier::kSlow);
}

Cycles HintFaultScanner::Step(Engine& engine) {
  if (enabled_ && !enabled_()) {
    engine.SleepUntil(engine.now() + config_.round_interval);
    return 0;
  }
  FramePool& pool = ms_->pool();
  const Pfn end = EndSlowPfn();
  Cycles spent = 0;
  uint64_t examined = 0;
  uint64_t armed_this_round = 0;
  bool any_shootdown = false;

  while (examined < config_.pages_per_round) {
    if (cursor_ >= end) {
      cursor_ = FirstSlowPfn();
      break;  // round finished; rest between sweeps
    }
    const Pfn pfn = cursor_++;
    examined++;
    PageFrame& f = pool.frame(pfn);
    if (!f.in_use || !f.mapped() || f.is_shadow || f.migrating || f.in_pcq || f.in_pending) {
      continue;
    }
    Pte* pte = ms_->PteOf(*f.owner, f.vpn);
    if (pte == nullptr || !pte->present || pte->prot_none) {
      continue;
    }
    pte->prot_none = true;
    pages_armed_++;
    armed_this_round++;
    spent += config_.cost_per_page;
    if (!any_shootdown) {
      // Arming downgrades permissions, so stale TLB entries must go. Linux
      // batches these flushes; we charge one shootdown per armed batch.
      spent += ms_->TlbShootdown(*f.owner, f.vpn);
      any_shootdown = true;
    } else {
      for (ActorId cpu : f.owner->cpus()) {
        ms_->tlb(cpu).Invalidate(f.vpn);
      }
    }
  }

  if (armed_this_round > 0) {
    ms_->Trace(TraceEvent::kScannerArm, cursor_, armed_this_round);
  }
  // Arming sweeps are LRU/frame-table scanning work; root-level lru_scan
  // distinguishes them from kswapd's nested lru_scan in the profile.
  ms_->prof().ChargeLeaf(ProfNode::kLruScan, spent);
  if (cursor_ == FirstSlowPfn()) {
    engine.SleepUntil(engine.now() + config_.round_interval);
  }
  return spent;
}

}  // namespace nomad
