// PEBS-like hardware access sampling (the Memtis substrate).
//
// Models Intel Processor Event-Based Sampling as Memtis uses it (sec. 2.2,
// 4): every Nth *eligible* hardware event yields a (vpn, count) sample that
// feeds a per-page frequency histogram. Two realities of the hardware are
// reproduced because the paper's Figure 10 result depends on them:
//  - eligibility: retired stores are always sampleable; load samples come
//    from LLC misses, and on CXL platforms (A/B) misses to the slow tier
//    are *uncore* events PEBS cannot see (platform.pebs_sees_slow_reads),
//  - LLC-hit blindness: accesses served by the cache produce no miss event,
//    so the hottest, cache-resident pages go uncounted.
//
// Cooling halves all counts after `cooling_period` samples, matching
// Memtis-Default (2000k) and Memtis-QuickCool (2k).
#ifndef SRC_TRACE_PEBS_H_
#define SRC_TRACE_PEBS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/mm/memory_system.h"

namespace nomad {

class PebsSampler {
 public:
  struct Config {
    // Record 1 of every N eligible events. Real Memtis tunes the period so
    // sampling overhead stays under ~3%; at that rate the histogram is
    // sparse and slow to react, which is the tradeoff sec. 4.1 dissects.
    uint64_t sample_period = 199;
    uint64_t cooling_period = 2000000;  // samples between halvings (Memtis-Default)
  };

  PebsSampler(MemorySystem* ms, const Config& config) : ms_(ms), config_(config) {}

  // Subscribes to the memory system's access stream. No-op when the
  // platform does not support PEBS/IBS at all (platform D).
  void Attach();

  uint64_t total_samples() const { return total_samples_; }
  uint64_t coolings() const { return coolings_; }

  // Current sampled access count of a page (0 when never sampled).
  uint64_t CountOf(Vpn vpn) const;

  // Histogram-based hot threshold: the smallest count c such that pages
  // with count >= c number at most `budget_pages`. Returns 1 when the
  // histogram is empty (everything sampled counts as warm).
  uint64_t HotThreshold(uint64_t budget_pages) const;

  // Pages currently resident on `tier` with count >= threshold, hottest
  // first, up to max_n. Used by the Memtis migrator for promotion.
  std::vector<Vpn> HotPagesOn(Tier tier, uint64_t threshold, size_t max_n) const;

  // Pages resident on `tier` with count < threshold, coldest first, up to
  // max_n. Sampled-page info only: pages never sampled are invisible, as
  // with real PEBS. Used for demotion victim selection.
  std::vector<Vpn> ColdPagesOn(Tier tier, uint64_t threshold, size_t max_n) const;

  const std::unordered_map<Vpn, uint64_t>& counts() const { return counts_; }
  AddressSpace* space() const { return space_; }

 private:
  void OnAccess(AddressSpace& as, Vpn vpn, bool is_write, bool llc_miss, bool tlb_miss, Tier tier);
  void Cool();

  // dTLB-miss events sample this much less often than primary events.
  static constexpr uint64_t kTlbPeriodFactor = 64;

  MemorySystem* ms_;
  Config config_;
  AddressSpace* space_ = nullptr;  // single traced space (set by first sample)
  std::unordered_map<Vpn, uint64_t> counts_;
  uint64_t event_tick_ = 0;
  uint64_t tlb_event_tick_ = 0;
  uint64_t total_samples_ = 0;
  uint64_t samples_since_cooling_ = 0;
  uint64_t coolings_ = 0;
};

}  // namespace nomad

#endif  // SRC_TRACE_PEBS_H_
