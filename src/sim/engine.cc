#include "src/sim/engine.h"

#include <algorithm>

namespace nomad {

ActorId Engine::AddActor(Actor* actor, Cycles start) {
  actors_.push_back(actor);
  entries_.push_back(Entry{start, false});
  return actors_.size() - 1;
}

void Engine::SleepUntil(Cycles when) {
  Entry& e = entries_[current_];
  e.next_time = when;
  e.slept = true;
}

void Engine::Wake(ActorId id, Cycles when) {
  if (id >= entries_.size()) {
    return;  // not an engine-scheduled entity (e.g. a bare test CPU)
  }
  Entry& e = entries_[id];
  if (e.next_time > when) {
    e.next_time = when;
  }
}

void Engine::Penalize(ActorId id, Cycles cycles) {
  if (id >= entries_.size()) {
    return;  // not an engine-scheduled entity (e.g. a bare test CPU)
  }
  Entry& e = entries_[id];
  if (e.next_time == kNever) {
    return;  // Sleeping forever; the IPI cost is irrelevant to it.
  }
  e.next_time += cycles;
}

bool Engine::PickNext(ActorId* out) const {
  Cycles best = kNever;
  ActorId best_id = 0;
  bool found = false;
  for (ActorId id = 0; id < actors_.size(); id++) {
    if (actors_[id]->done() || entries_[id].next_time == kNever) {
      continue;
    }
    if (!found || entries_[id].next_time < best) {
      best = entries_[id].next_time;
      best_id = id;
      found = true;
    }
  }
  if (found) {
    *out = best_id;
  }
  return found;
}

void Engine::StepOne(ActorId id) {
  Entry& e = entries_[id];
  now_ = std::max(now_, e.next_time);
  current_ = id;
  e.slept = false;
  Cycles used = actors_[id]->Step(*this);
  if (!e.slept) {
    e.next_time = now_ + std::max<Cycles>(used, 1);
  }
}

Cycles Engine::Run(Cycles until) {
  ActorId id;
  while (PickNext(&id)) {
    if (entries_[id].next_time > until) {
      break;
    }
    StepOne(id);
  }
  return now_;
}

Cycles Engine::RunUntil(const std::function<bool()>& stop) {
  ActorId id;
  while (!stop() && PickNext(&id)) {
    StepOne(id);
  }
  return now_;
}

}  // namespace nomad
