#include "src/sim/engine.h"

#include <algorithm>

namespace nomad {

ActorId Engine::AddActor(Actor* actor, Cycles start) {
  actors_.push_back(actor);
  entries_.push_back(Entry{start, false, actor->done()});
  sched_dirty_ = true;
  return actors_.size() - 1;
}

void Engine::SleepUntil(Cycles when) {
  Entry& e = entries_[current_];
  e.next_time = when;
  e.slept = true;
}

void Engine::Wake(ActorId id, Cycles when) {
  if (id >= entries_.size()) {
    return;  // not an engine-scheduled entity (e.g. a bare test CPU)
  }
  Entry& e = entries_[id];
  if (e.next_time > when) {
    e.next_time = when;
    sched_dirty_ = true;
  }
}

void Engine::Penalize(ActorId id, Cycles cycles) {
  if (id >= entries_.size()) {
    return;  // not an engine-scheduled entity (e.g. a bare test CPU)
  }
  Entry& e = entries_[id];
  if (e.next_time == kNever) {
    return;  // Sleeping forever; the IPI cost is irrelevant to it.
  }
  e.next_time += cycles;
  sched_dirty_ = true;
}

bool Engine::PickNext(ActorId* out) const {
  // Tight scan over the entry table; the cached done bit avoids a virtual
  // call per actor per scheduling pass. Ties break to the lowest id because
  // the < comparison only replaces on strictly-smaller times.
  Cycles best = kNever;
  ActorId best_id = 0;
  bool found = false;
  for (ActorId id = 0; id < entries_.size(); id++) {
    const Entry& e = entries_[id];
    if (e.done || e.next_time == kNever) {
      continue;
    }
    if (!found || e.next_time < best) {
      best = e.next_time;
      best_id = id;
      found = true;
    }
  }
  if (found) {
    *out = best_id;
  }
  return found;
}

void Engine::StepOne(ActorId id) {
  Entry& e = entries_[id];
  now_ = std::max(now_, e.next_time);
  current_ = id;
  e.slept = false;
  Cycles used = actors_[id]->Step(*this);
  if (!e.slept) {
    e.next_time = now_ + std::max<Cycles>(used, 1);
  }
  e.done = actors_[id]->done();
}

bool Engine::PickNext2(ActorId* out, Cycles* sec_time, ActorId* sec_id) const {
  Cycles best = kNever;
  ActorId best_id = 0;
  Cycles sec = kNever;
  ActorId sec_best_id = 0;
  bool found = false;
  for (ActorId id = 0; id < entries_.size(); id++) {
    const Entry& e = entries_[id];
    if (e.done || e.next_time == kNever) {
      continue;
    }
    if (!found || e.next_time < best) {
      sec = best;
      sec_best_id = best_id;
      best = e.next_time;
      best_id = id;
      found = true;
    } else if (e.next_time < sec) {
      sec = e.next_time;
      sec_best_id = id;
    }
  }
  if (found) {
    *out = best_id;
    *sec_time = sec;
    *sec_id = sec_best_id;
  }
  return found;
}

Cycles Engine::Run(Cycles until) {
  ActorId id;
  Cycles sec_time;
  ActorId sec_id;
  while (PickNext2(&id, &sec_time, &sec_id)) {
    if (entries_[id].next_time > until) {
      break;
    }
    // Re-step the same actor while it provably remains the schedule's
    // minimum: nothing else's entry changed and it still beats the
    // runner-up under the (time, id) order. Identical pick sequence to a
    // full rescan per step, without the rescan.
    for (;;) {
      sched_dirty_ = false;
      StepOne(id);
      const Entry& e = entries_[id];
      if (sched_dirty_ || e.done || e.next_time == kNever) {
        break;
      }
      if (e.next_time > sec_time || (e.next_time == sec_time && sec_id < id)) {
        break;
      }
      if (e.next_time > until) {
        break;
      }
    }
  }
  return now_;
}

Cycles Engine::RunUntil(const std::function<bool()>& stop) {
  ActorId id;
  Cycles sec_time;
  ActorId sec_id;
  while (!stop() && PickNext2(&id, &sec_time, &sec_id)) {
    for (;;) {
      sched_dirty_ = false;
      StepOne(id);
      const Entry& e = entries_[id];
      if (sched_dirty_ || e.done || e.next_time == kNever) {
        break;
      }
      if (e.next_time > sec_time || (e.next_time == sec_time && sec_id < id)) {
        break;
      }
      if (stop()) {
        return now_;  // checked between steps, exactly as before
      }
    }
  }
  return now_;
}

}  // namespace nomad
