#include "src/sim/shard.h"

#include "src/check/check.h"

namespace nomad {

ShardRouter::ShardRouter(uint32_t num_shards)
    : num_shards_(num_shards),
      pairs_(static_cast<size_t>(num_shards) * num_shards) {
  NOMAD_CHECK(num_shards > 0, "router needs at least one shard");
}

void ShardRouter::Send(uint32_t from, uint32_t to, uint32_t kind, uint64_t a, uint64_t b) {
  NOMAD_CHECK(from < num_shards_ && to < num_shards_, "shard id out of range, from=", from,
              " to=", to, " shards=", num_shards_);
  Pair& p = pair(from, to);
  std::lock_guard<std::mutex> lock(p.mu);
  p.fifo.push_back(ShardMsg{from, kind, p.next_seq++, a, b});
}

void ShardRouter::Drain(uint32_t to, const std::function<void(const ShardMsg&)>& fn) {
  NOMAD_CHECK(to < num_shards_, "shard id out of range, to=", to);
  for (uint32_t from = 0; from < num_shards_; from++) {
    Pair& p = pair(from, to);
    std::lock_guard<std::mutex> lock(p.mu);
    while (!p.fifo.empty()) {
      fn(p.fifo.front());
      p.fifo.pop_front();
    }
  }
}

uint64_t ShardRouter::PendingFor(uint32_t to) const {
  uint64_t n = 0;
  for (uint32_t from = 0; from < num_shards_; from++) {
    const Pair& p = pair(from, to);
    std::lock_guard<std::mutex> lock(p.mu);
    n += p.fifo.size();
  }
  return n;
}

void ShardBarrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    generation_++;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

}  // namespace nomad
