#include "src/sim/shard.h"

#include "src/check/check.h"

namespace nomad {

ShardRouter::ShardRouter(uint32_t num_shards)
    : num_shards_(num_shards),
      pairs_(static_cast<size_t>(num_shards) * num_shards),
      rows_(num_shards) {
  NOMAD_CHECK(num_shards > 0, "router needs at least one shard");
}

void ShardRouter::Send(uint32_t from, uint32_t to, uint32_t kind, uint64_t a, uint64_t b) {
  NOMAD_CHECK(from < num_shards_ && to < num_shards_, "shard id out of range, from=", from,
              " to=", to, " shards=", num_shards_);
  Pair& p = pair(from, to);
  MutexLock lock(p.mu);
  p.fifo.push_back(ShardMsg{from, kind, p.next_seq++, a, b});
}

void ShardRouter::Stage(uint32_t from, uint32_t to, uint32_t kind, uint64_t a, uint64_t b) {
  NOMAD_CHECK(from < num_shards_ && to < num_shards_, "shard id out of range, from=", from,
              " to=", to, " shards=", num_shards_);
  rows_[from].staged.push_back(StagedMsg{to, kind, a, b});
}

void ShardRouter::FlushSends(uint32_t from) {
  NOMAD_CHECK(from < num_shards_, "shard id out of range, from=", from);
  std::vector<StagedMsg>& staged = rows_[from].staged;
  // Coalesce each run of consecutive same-destination messages into one
  // lock acquisition. Staging order fixes the per-pair sequence numbers,
  // so the drained stream is identical to per-message Send.
  size_t i = 0;
  while (i < staged.size()) {
    const uint32_t to = staged[i].to;
    size_t j = i;
    while (j < staged.size() && staged[j].to == to) {
      j++;
    }
    Pair& p = pair(from, to);
    MutexLock lock(p.mu);
    for (size_t k = i; k < j; k++) {
      p.fifo.push_back(ShardMsg{from, staged[k].kind, p.next_seq++, staged[k].a, staged[k].b});
    }
    i = j;
  }
  staged.clear();
}

void ShardRouter::Drain(uint32_t to, const std::function<void(const ShardMsg&)>& fn) {
  NOMAD_CHECK(to < num_shards_, "shard id out of range, to=", to);
  std::vector<ShardMsg> batch;
  for (uint32_t from = 0; from < num_shards_; from++) {
    Pair& p = pair(from, to);
    {
      MutexLock lock(p.mu);
      batch.swap(p.fifo);
    }
    for (const ShardMsg& m : batch) {
      fn(m);
    }
    batch.clear();
  }
}

uint64_t ShardRouter::PendingFor(uint32_t to) const {
  uint64_t n = 0;
  for (uint32_t from = 0; from < num_shards_; from++) {
    const Pair& p = pair(from, to);
    MutexLock lock(p.mu);
    n += p.fifo.size();
  }
  return n;
}

void ShardBarrier::ArriveAndWait(const std::function<void()>& on_complete) {
  MutexLock lock(mu_);
  const uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    if (on_complete) {
      on_complete();
    }
    waiting_ = 0;
    generation_++;
    cv_.NotifyAll();
    return;
  }
  // Explicit predicate loop (not cv_.wait(lock, pred)): the guarded read of
  // generation_ stays in this function, where -Wthread-safety can see the
  // lock is held; a predicate lambda would be analyzed lock-blind.
  while (generation_ == gen) {
    cv_.Wait(mu_);
  }
}

}  // namespace nomad
