// Deterministic discrete-event engine.
//
// The simulator models concurrency (application threads, kswapd, kpromote,
// the Memtis migrator, the PT scanner) as cooperatively scheduled Actors on
// a single OS thread. Each actor owns a local virtual clock; the engine
// repeatedly runs the actor with the smallest next-scheduled time. Because
// actor order at equal timestamps is fixed (lowest id first) and all
// randomness is seeded, entire experiments are bit-reproducible.
//
// An actor's Step() performs one unit of work (one memory access, one
// migration stage, one reclaim batch, ...) and returns how many cycles that
// work consumed. Blocking is modelled by SleepUntil(): kernel daemons sleep
// until woken by watermark events; TPM's page-copy window is a Step that
// returns the copy duration, during which application actors naturally
// interleave and may dirty the page.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/base/annotations.h"
#include "src/sim/clock.h"

namespace nomad {

class Engine;

// Index of an actor within its engine; doubles as the simulated CPU id for
// TLB shootdown targeting.
using ActorId = size_t;

// A unit of simulated concurrency. Subclasses implement Step().
class Actor {
 public:
  virtual ~Actor() = default;

  // Executes one unit of work at the actor's scheduled time and returns the
  // number of cycles it consumed. A return of 0 is bumped to 1 by the engine
  // to guarantee global progress. An actor that has nothing to do should
  // call Engine::SleepUntil() (possibly with kNever) and return 0.
  virtual Cycles Step(Engine& engine) = 0;

  // Display name for debugging and reports.
  virtual std::string name() const = 0;

  // Once true, the engine never schedules the actor again. Contract: the
  // value may only change during this actor's own Step() — the engine
  // caches it per step instead of re-asking every scheduling pass.
  virtual bool done() const { return false; }
};

// Owner-agnostic scheduler. Actors are registered once and stepped until a
// stop condition holds; the engine does not own actor storage.
class NOMAD_SHARD_CONFINED Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Registers an actor; it first runs at `start`. Returns its id.
  ActorId AddActor(Actor* actor, Cycles start = 0);

  // Current virtual time: the scheduled time of the actor being stepped.
  Cycles now() const { return now_; }

  // May only be called from within the running actor's Step(): reschedules
  // that actor for `when` instead of now + returned cycles.
  void SleepUntil(Cycles when);

  // Wakes a sleeping actor no later than `when`. A busy actor (scheduled
  // earlier than `when`) is left alone.
  void Wake(ActorId id, Cycles when);

  // Adds `cycles` of interruption to an actor's schedule, modelling e.g. the
  // cost of servicing a TLB-shootdown IPI on a remote CPU.
  void Penalize(ActorId id, Cycles cycles);

  // Id of the actor currently inside Step(); only valid during a Step call.
  ActorId current() const { return current_; }

  // Runs until virtual time exceeds `until`, all actors are done, or every
  // live actor sleeps forever. Returns the final virtual time.
  Cycles Run(Cycles until);

  // Runs until `stop()` returns true (checked between steps) or the actor
  // pool drains. Returns the final virtual time.
  Cycles RunUntil(const std::function<bool()>& stop);

  size_t NumActors() const { return actors_.size(); }
  Cycles NextTimeOf(ActorId id) const { return entries_[id].next_time; }

  // Display name of an actor, for trace exporters and reports.
  std::string ActorNameOf(ActorId id) const {
    return id < actors_.size() ? actors_[id]->name() : "actor-" + std::to_string(id);
  }

 private:
  struct Entry {
    Cycles next_time = 0;
    bool slept = false;  // SleepUntil was called during the current Step.
    bool done = false;   // cached Actor::done(), refreshed after each Step
  };

  // Picks the runnable actor with the minimum next_time; returns false when
  // none is runnable.
  bool PickNext(ActorId* out) const;

  // Like PickNext, but also reports the runner-up's (time, id) so the run
  // loop can re-step the winner without rescanning while it provably stays
  // the minimum. With no runner-up, *sec_time is kNever.
  bool PickNext2(ActorId* out, Cycles* sec_time, ActorId* sec_id) const;

  // Steps the chosen actor and applies its scheduling outcome.
  void StepOne(ActorId id);

  std::vector<Actor*> actors_;
  std::vector<Entry> entries_;
  Cycles now_ = 0;
  ActorId current_ = 0;
  // Set whenever a step mutates another actor's schedule (Wake/Penalize) or
  // the actor pool grows; invalidates the run loop's cached runner-up.
  bool sched_dirty_ = false;
};

}  // namespace nomad

#endif  // SRC_SIM_ENGINE_H_
