// Deterministic pseudo-random number generation for simulations.
//
// The simulator must be bit-reproducible across runs, so every stochastic
// component (workload generators, sampling, placement shuffles) draws from an
// explicitly seeded Rng instance instead of global state. The generator is
// xoshiro256**, seeded through SplitMix64, which is both fast and of high
// statistical quality for this use.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace nomad {

// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  // Seeds the generator. Two Rng instances with the same seed produce the
  // same sequence on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift reduction; the modulo bias is negligible for the bounds
  // used in this project (simulation page counts << 2^64).
  uint64_t Below(uint64_t bound) {
    return static_cast<uint64_t>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace nomad

#endif  // SRC_SIM_RNG_H_
