#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace nomad {

std::string CounterSet::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << "=" << value << "\n";
  }
  return out.str();
}

Cycles LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; b++) {
    if (seen + buckets_[b] > target) {
      // Interpolate inside bucket b, whose range is [2^(b-1), 2^b).
      Cycles lo = b == 0 ? 0 : (Cycles{1} << (b - 1));
      Cycles hi = Cycles{1} << b;
      double frac = buckets_[b] == 0
                        ? 0.0
                        : static_cast<double>(target - seen) / static_cast<double>(buckets_[b]);
      return lo + static_cast<Cycles>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets_[b];
  }
  return max_;
}

void LatencyHistogram::Reset() {
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; b++) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void WindowedSeries::Record(Cycles now, uint64_t bytes) {
  size_t idx = static_cast<size_t>(now / window_);
  if (idx >= windows_.size()) {
    windows_.resize(idx + 1, 0);
  }
  windows_[idx] += bytes;
}

double WindowedSeries::BandwidthAt(size_t i) const {
  if (i >= windows_.size()) {
    return 0.0;
  }
  return static_cast<double>(windows_[i]) / static_cast<double>(window_);
}

double WindowedSeries::MeanBandwidth(size_t first, size_t last) const {
  last = std::min(last, windows_.size());
  if (first >= last) {
    return 0.0;
  }
  uint64_t total = 0;
  for (size_t i = first; i < last; i++) {
    total += windows_[i];
  }
  return static_cast<double>(total) / static_cast<double>((last - first) * window_);
}

}  // namespace nomad
