// Virtual-time primitives shared by the whole simulator.
//
// All latencies, copy costs and device service times in the simulator are
// expressed in CPU cycles of the simulated machine. Wall-clock seconds are
// derived through the platform's clock frequency (see mem/platform.h).
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>

namespace nomad {

// A point in, or a span of, simulated time, measured in CPU cycles.
using Cycles = uint64_t;

// Sentinel used by actors that have no work scheduled; the engine skips them
// until they are explicitly woken.
inline constexpr Cycles kNever = ~Cycles{0};

// Converts cycles to seconds at the given core frequency.
inline double CyclesToSeconds(Cycles c, double ghz) { return static_cast<double>(c) / (ghz * 1e9); }

// Converts seconds to cycles at the given core frequency.
inline Cycles SecondsToCycles(double s, double ghz) { return static_cast<Cycles>(s * ghz * 1e9); }

}  // namespace nomad

#endif  // SRC_SIM_CLOCK_H_
