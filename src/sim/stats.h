// Measurement primitives used by the experiment harness.
//
// Three kinds of instruments cover everything the paper reports:
//  - Counter / CounterSet: named monotonically increasing event counts
//    (promotions, demotions, aborted transactions, page faults, ...),
//  - LatencyHistogram: log-bucketed distribution of per-access latency
//    (Figure 10 reports average cache-line access latency),
//  - WindowedSeries: bytes-per-window bandwidth trace over virtual time,
//    used to split runs into "migration in progress" and "stable" phases
//    (Figures 1, 7, 8, 9).
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace nomad {

// A named set of monotonically increasing counters keyed by string.
// Lookup is by map; hot paths should cache a Counter reference.
class CounterSet {
 public:
  // Returns a stable reference to the named counter, creating it at zero.
  uint64_t& At(const std::string& name) { return counters_[name]; }

  // Value of the counter, or 0 when it was never touched.
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Add(const std::string& name, uint64_t delta) { counters_[name] += delta; }

  void Reset() { counters_.clear(); }

  const std::map<std::string, uint64_t>& All() const { return counters_; }

  // Renders "name=value" lines, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

// Log2-bucketed histogram of latencies in cycles. Records exact sums so the
// mean is precise; buckets give the shape for percentile estimates.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(Cycles latency);

  uint64_t count() const { return count_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  Cycles Max() const { return max_; }

  // Approximate value at quantile q in [0,1], assuming uniform distribution
  // within a bucket.
  Cycles Quantile(double q) const;

  void Reset();

  // Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  Cycles max_ = 0;
};

// Accumulates bytes transferred against virtual time and exposes per-window
// bandwidth. Window boundaries are fixed multiples of window_cycles.
class WindowedSeries {
 public:
  explicit WindowedSeries(Cycles window_cycles) : window_(window_cycles == 0 ? 1 : window_cycles) {}

  // Records `bytes` of useful traffic at virtual time `now`.
  void Record(Cycles now, uint64_t bytes);

  // Number of complete or partial windows observed so far.
  size_t NumWindows() const { return windows_.size(); }

  // Bandwidth of window i in bytes/cycle.
  double BandwidthAt(size_t i) const;

  // Mean bandwidth over windows [first, last) in bytes/cycle.
  double MeanBandwidth(size_t first, size_t last) const;

  Cycles window_cycles() const { return window_; }
  const std::vector<uint64_t>& windows() const { return windows_; }

 private:
  Cycles window_;
  std::vector<uint64_t> windows_;
};

}  // namespace nomad

#endif  // SRC_SIM_STATS_H_
