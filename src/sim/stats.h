// Measurement primitives used by the experiment harness.
//
// Three kinds of instruments cover everything the paper reports:
//  - Counter / CounterSet: named monotonically increasing event counts
//    (promotions, demotions, aborted transactions, page faults, ...),
//  - LatencyHistogram: log-bucketed distribution of per-access latency
//    (Figure 10 reports average cache-line access latency),
//  - WindowedSeries: bytes-per-window bandwidth trace over virtual time,
//    used to split runs into "migration in progress" and "stable" phases
//    (Figures 1, 7, 8, 9).
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/base/annotations.h"
#include "src/sim/clock.h"

namespace nomad {

// A named set of monotonically increasing counters keyed by string.
// Lookups are heterogeneous (std::less<> map): the registry names in
// src/obs/event_registry.h are `const char[]` constants longer than the
// small-string buffer, so a std::string-keyed interface would heap-allocate
// a temporary on every Add — and migration-heavy runs Add counters hundreds
// of thousands of times. The map only materializes a std::string once, when
// a name is first seen. Hot paths should still cache a reference from At().
class NOMAD_SHARD_CONFINED CounterSet {
 public:
  // Returns a stable reference to the named counter, creating it at zero.
  // (std::map references stay valid across later inserts and erases.)
  uint64_t& At(std::string_view name) { return Slot(name); }

  // Value of the counter, or 0 when it was never touched.
  uint64_t Get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Add(std::string_view name, uint64_t delta) { Slot(name) += delta; }

  void Reset() {
    index_.clear();
    counters_.clear();
  }

  const std::map<std::string, uint64_t, std::less<>>& All() const { return counters_; }

  // Renders "name=value" lines, sorted by name.
  std::string ToString() const;

 private:
  // Heterogeneous hash/eq so index_ lookups take a string_view directly.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  uint64_t& Slot(std::string_view name) {
    auto hit = index_.find(name);
    if (hit != index_.end()) {
      return *hit->second;
    }
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), 0).first;
    }
    index_.emplace(it->first, &it->second);
    return it->second;
  }

  // Source of truth, ordered so All()/ToString() render sorted bytes.
  std::map<std::string, uint64_t, std::less<>> counters_;
  // Hash index over the same slots: one hash + memcmp instead of a tree
  // walk per Add. Keys view the map's stable node strings; values point at
  // its stable mapped values, so the index survives unrelated inserts and
  // is rebuilt implicitly (cleared) on Reset().
  std::unordered_map<std::string_view, uint64_t*, SvHash, SvEq> index_;
};

// Log2-bucketed histogram of latencies in cycles. Records exact sums so the
// mean is precise; buckets give the shape for percentile estimates.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  // Inline: recorded once per simulated access (MemorySystem::AccessBatch).
  void Record(Cycles latency) {
    buckets_[BucketFor(latency)]++;
    count_++;
    sum_ += latency;
    if (latency > max_) {
      max_ = latency;
    }
  }

  uint64_t count() const { return count_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  Cycles Max() const { return max_; }

  // Approximate value at quantile q in [0,1], assuming uniform distribution
  // within a bucket.
  Cycles Quantile(double q) const;

  void Reset();

  // Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

 private:
  static int BucketFor(Cycles latency) {
    if (latency == 0) {
      return 0;
    }
    const int b = 64 - std::countl_zero(static_cast<uint64_t>(latency));
    return b < kBuckets - 1 ? b : kBuckets - 1;
  }

  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  Cycles max_ = 0;
};

// Accumulates bytes transferred against virtual time and exposes per-window
// bandwidth. Window boundaries are fixed multiples of window_cycles.
class WindowedSeries {
 public:
  explicit WindowedSeries(Cycles window_cycles) : window_(window_cycles == 0 ? 1 : window_cycles) {}

  // Records `bytes` of useful traffic at virtual time `now`.
  void Record(Cycles now, uint64_t bytes);

  // Number of complete or partial windows observed so far.
  size_t NumWindows() const { return windows_.size(); }

  // Bandwidth of window i in bytes/cycle.
  double BandwidthAt(size_t i) const;

  // Mean bandwidth over windows [first, last) in bytes/cycle.
  double MeanBandwidth(size_t first, size_t last) const;

  Cycles window_cycles() const { return window_; }
  const std::vector<uint64_t>& windows() const { return windows_; }

 private:
  Cycles window_;
  std::vector<uint64_t> windows_;
};

}  // namespace nomad

#endif  // SRC_SIM_STATS_H_
