// Deterministic sharding primitives for the parallel simulation engine.
//
// A sharded run partitions the machine into fixed logical shards (per-NUMA-
// node or per-address-space), each owning a complete single-threaded Sim:
// its own Engine, MemorySystem, frame pool, LRUs, and shard-local daemon
// actors (kswapd, kpromote, the PCQ). Shards advance in lockstep epochs of
// virtual time and exchange information ONLY through ShardRouter messages,
// which are produced during an epoch and drained at the epoch barrier in a
// fixed total order: (sender shard id, per-pair sequence number). Because
//  - shard-local state evolves as a pure function of (config, seed, drained
//    messages), and
//  - the drain order and the epoch schedule are independent of how shards
//    are assigned to OS threads,
// the simulation output is byte-identical for any --threads value,
// including 1. scripts/check_determinism.py enforces exactly this.
//
// The rule that no shard may touch another shard's owned state (page
// tables, frame pools, LRU lists) outside these message APIs is enforced
// statically at two levels: tools/nomad_lint rule NL008 (token heuristics)
// and tools/nomad_analyze (AST ownership/escape analysis over the
// NOMAD_SHARD_CONFINED object graph). The mailbox and barrier internals
// here carry Clang thread-safety capability annotations, checked by the
// -Wthread-safety -Werror clang CI build.
#ifndef SRC_SIM_SHARD_H_
#define SRC_SIM_SHARD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/annotations.h"
#include "src/base/mutex.h"

namespace nomad {

// One cross-shard message. Plain data: payloads with richer structure are
// encoded into (kind, a, b) by the sender and decoded by the receiver.
struct ShardMsg {
  uint32_t from = 0;  // sender shard id
  uint32_t kind = 0;  // application-defined discriminator
  uint64_t seq = 0;   // per-(sender, receiver) FIFO sequence, from 0
  uint64_t a = 0;
  uint64_t b = 0;
};

// Message kinds used by the sharded harness. User code may define its own
// kinds above kShardMsgUser.
enum : uint32_t {
  kShardMsgProgress = 1,  // a = ops completed this epoch, b = local time
  kShardMsgDone = 2,      // a = total ops completed, b = final local time
  kShardMsgUser = 100,
};

// S x S mailbox grid. Each (sender, receiver) pair has its own FIFO; a
// sender only ever appends to its own row, a receiver drains its column at
// an epoch barrier. Drain order is fixed — ascending sender id, then
// sequence number — so the receiver observes an identical message stream
// regardless of which OS threads ran the senders or in what real-time
// order they arrived.
class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards);

  uint32_t num_shards() const { return num_shards_; }

  // Enqueues a message from shard `from` to shard `to`. Thread-safe per
  // pair; called from the sender shard's worker thread during an epoch.
  void Send(uint32_t from, uint32_t to, uint32_t kind, uint64_t a = 0, uint64_t b = 0);

  // Stages a message from shard `from` without taking any lock. Staging
  // rows are sender-owned: only the worker thread driving shard `from` may
  // Stage for it, and it must call FlushSends(from) before the epoch
  // barrier. Staged messages reach the mailboxes in staging order, so the
  // (sender, seq) drain order is exactly what per-message Send would have
  // produced.
  void Stage(uint32_t from, uint32_t to, uint32_t kind, uint64_t a = 0, uint64_t b = 0);

  // Moves shard `from`'s staged messages into the mailbox grid, taking each
  // (from, dest) pair lock once per run of messages instead of once per
  // message. Sequence numbers are assigned here, in staging order.
  void FlushSends(uint32_t from);

  // Drains every message addressed to `to`, invoking fn in (sender id,
  // seq) order. Called by the receiver at an epoch barrier; senders must
  // be parked at the barrier (the mutexes still make the handoff safe and
  // TSan-visible). The pair lock is held only to swap the mailbox out, not
  // across fn.
  void Drain(uint32_t to, const std::function<void(const ShardMsg&)>& fn);

  // Messages currently queued for `to` (diagnostics and tests). Staged but
  // unflushed messages are not counted.
  uint64_t PendingFor(uint32_t to) const;

 private:
  struct Pair {
    mutable Mutex mu;
    std::vector<ShardMsg> fifo NOMAD_GUARDED_BY(mu);
    uint64_t next_seq NOMAD_GUARDED_BY(mu) = 0;
  };
  struct StagedMsg {
    uint32_t to;
    uint32_t kind;
    uint64_t a;
    uint64_t b;
  };
  // One staging row per sender, owned by the worker thread driving that
  // shard; no lock needed until FlushSends. Confinement (not a lock) is
  // the protection, so the marking is NOMAD_SHARD_CONFINED and the
  // checker is nomad_analyze, not -Wthread-safety.
  struct NOMAD_SHARD_CONFINED SenderRow {
    std::vector<StagedMsg> staged;
  };
  Pair& pair(uint32_t from, uint32_t to) { return pairs_[from * num_shards_ + to]; }
  const Pair& pair(uint32_t from, uint32_t to) const {
    return pairs_[from * num_shards_ + to];
  }

  uint32_t num_shards_;
  std::vector<Pair> pairs_;
  std::vector<SenderRow> rows_;
};

// Reusable generation-counting barrier for the epoch lockstep. All
// participants must arrive before any is released; the release establishes
// the happens-before edge that makes one shard's epoch-N state safely
// readable (via drained messages) in every shard's epoch N+1.
class ShardBarrier {
 public:
  explicit ShardBarrier(uint32_t parties) : parties_(parties) {}

  // Blocks until all `parties` threads have arrived at this generation.
  // The last thread to arrive runs `on_complete` (if given) while holding
  // the barrier mutex, before any waiter is released: everything the
  // callback reads happens-after every participant's pre-barrier writes,
  // and everything it writes happens-before every participant's
  // post-barrier reads. This is what lets a lockstep epoch run its drain +
  // control update inside ONE barrier crossing instead of a drain phase
  // sandwiched between two.
  void ArriveAndWait(const std::function<void()>& on_complete = {});

 private:
  Mutex mu_;
  CondVar cv_;
  uint32_t parties_;  // immutable after construction
  uint32_t waiting_ NOMAD_GUARDED_BY(mu_) = 0;
  uint64_t generation_ NOMAD_GUARDED_BY(mu_) = 0;
};

}  // namespace nomad

#endif  // SRC_SIM_SHARD_H_
