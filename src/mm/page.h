// Page frame metadata: the simulator's `struct page`, stored struct-of-arrays.
//
// Frames carry no 4 KB payload - only the state the paper's mechanisms
// read and write: LRU membership and temperature flags (PG_referenced /
// PG_active), the shadow flag NOMAD adds (sec. 3.2), reverse-map info for
// unmapping during migration, and intrusive LRU links.
//
// Layout: all frame state lives in a FrameTable, split into a *hot* packed
// uint32_t flags word per frame (tier/in_use/temperature/NOMAD flags/LRU
// list id/TPM abort count as bit fields, indexed by PFN) and *cold*
// parallel arrays (owner/vpn/generation/extra_mappers/LRU links). LRU
// scans, the scan-candidate bitmap, and invariant audits walk contiguous
// 4-byte words instead of 64B+ structs, so a cache line covers 16 frames.
// `PageFrame` is a cheap value-type handle over one PFN's slots; accessor
// inlines keep call sites readable, and outside src/mm they are the ONLY
// sanctioned way to mutate frame flags (lint rule NL009).
#ifndef SRC_MM_PAGE_H_
#define SRC_MM_PAGE_H_

#include <cstdint>
#include <vector>

#include "src/mem/tier.h"

namespace nomad {

// Physical frame number, global across both tiers.
using Pfn = uint64_t;
inline constexpr Pfn kInvalidPfn = ~Pfn{0};

// Virtual page number within an address space.
using Vpn = uint64_t;
inline constexpr Vpn kInvalidVpn = ~Vpn{0};

class AddressSpace;

// Which LRU list a frame currently sits on.
enum class LruList : uint8_t { kNone = 0, kInactive = 1, kActive = 2 };

// Bit assignments inside FrameTable's hot flags word. mm-internal: code
// outside src/mm must go through the PageFrame accessors below (NL009).
namespace frame_flags {
inline constexpr uint32_t kTierSlow = 1u << 0;    // 0 = fast tier, 1 = slow
inline constexpr uint32_t kInUse = 1u << 1;
inline constexpr uint32_t kReferenced = 1u << 2;  // Linux PG_referenced
inline constexpr uint32_t kActive = 1u << 3;      // Linux PG_active
inline constexpr uint32_t kPromoted = 1u << 4;    // landed fast by promotion
inline constexpr uint32_t kShadowed = 1u << 5;    // shadow copy exists (slow)
inline constexpr uint32_t kIsShadow = 1u << 6;    // frame *is* a shadow copy
inline constexpr uint32_t kInPcq = 1u << 7;       // in promotion candidate q
inline constexpr uint32_t kPcqPrimed = 1u << 8;   // next A-bit hit = hot
inline constexpr uint32_t kInPending = 1u << 9;   // in migration pending q
inline constexpr uint32_t kMigrating = 1u << 10;  // TPM txn in flight
inline constexpr uint32_t kLruShift = 12;         // 2 bits: LruList
inline constexpr uint32_t kLruMask = 3u << kLruShift;
inline constexpr uint32_t kTpmAbortsShift = 16;   // 8 bits: abort count
inline constexpr uint32_t kTpmAbortsMask = 0xFFu << kTpmAbortsShift;
// Identity bits that survive ResetState() across free/realloc.
inline constexpr uint32_t kIdentityMask = kTierSlow | kInUse;
}  // namespace frame_flags

class PageFrame;

// Struct-of-arrays backing store for every frame's metadata. Owned by
// FramePool; sized once at platform construction.
class FrameTable {
 public:
  void Resize(uint64_t n) {
    flags_.assign(n, 0);
    owner_.assign(n, nullptr);
    vpn_.assign(n, kInvalidVpn);
    generation_.assign(n, 0);
    extra_mappers_.assign(n, 0);
    lru_prev_.assign(n, kInvalidPfn);
    lru_next_.assign(n, kInvalidPfn);
  }
  uint64_t size() const { return flags_.size(); }

  // Read-only bulk view of the hot words for word-granular scans and
  // audits; mutation goes through PageFrame handles only.
  const uint32_t* flags_data() const { return flags_.data(); }

  // Metadata bytes the table holds per frame, for the bytes-of-metadata-
  // per-simulated-page report in bench_throughput.
  static constexpr uint64_t BytesPerFrame() {
    return sizeof(uint32_t)          // flags
           + sizeof(AddressSpace*)   // owner
           + sizeof(Vpn)             // vpn
           + sizeof(uint32_t)        // generation
           + sizeof(uint32_t)        // extra_mappers
           + 2 * sizeof(Pfn);        // lru links
  }

 private:
  friend class PageFrame;
  std::vector<uint32_t> flags_;
  std::vector<AddressSpace*> owner_;
  std::vector<Vpn> vpn_;
  // generation is bumped on every free; queues that park PFNs (PCQ, pending
  // queue, shadow-reclaim FIFO) snapshot it to detect stale entries.
  std::vector<uint32_t> generation_;
  // Simulated additional mappings (from other page tables). Nonzero means
  // multi-mapped; NOMAD falls back to sync migration for those (sec. 3.3).
  std::vector<uint32_t> extra_mappers_;
  std::vector<Pfn> lru_prev_;  // intrusive links, kInvalidPfn = list end
  std::vector<Pfn> lru_next_;
};

// Per-frame metadata handle (struct page equivalent). A 16-byte value type:
// copy freely, pass by value; `const PageFrame` is a read-only view (the
// setters are non-const). All accessors compile to one indexed load/store
// into the FrameTable arrays.
class PageFrame {
 public:
  PageFrame(FrameTable* t, Pfn pfn) : t_(t), pfn_(pfn) {}

  Pfn pfn() const { return pfn_; }

  // --- identity / allocation ---
  Tier tier() const {
    return Test(frame_flags::kTierSlow) ? Tier::kSlow : Tier::kFast;
  }
  void set_tier(Tier t) { Put(frame_flags::kTierSlow, t == Tier::kSlow); }
  bool in_use() const { return Test(frame_flags::kInUse); }
  void set_in_use(bool v) { Put(frame_flags::kInUse, v); }
  uint32_t generation() const { return t_->generation_[pfn_]; }
  void bump_generation() { t_->generation_[pfn_]++; }

  // --- reverse map: who maps this frame ---
  // The simulator supports one mapping per frame (NOMAD falls back to
  // synchronous migration for multi-mapped pages, sec. 3.3; we model the
  // multi-mapped case by flagging frames via extra_mappers).
  AddressSpace* owner() const { return t_->owner_[pfn_]; }
  void set_owner(AddressSpace* as) { t_->owner_[pfn_] = as; }
  Vpn vpn() const { return t_->vpn_[pfn_]; }
  void set_vpn(Vpn v) { t_->vpn_[pfn_] = v; }
  uint32_t extra_mappers() const { return t_->extra_mappers_[pfn_]; }
  void set_extra_mappers(uint32_t v) { t_->extra_mappers_[pfn_] = v; }

  // --- temperature flags (Linux PG_referenced / PG_active) ---
  bool referenced() const { return Test(frame_flags::kReferenced); }
  void set_referenced(bool v) { Put(frame_flags::kReferenced, v); }
  bool active() const { return Test(frame_flags::kActive); }
  void set_active(bool v) { Put(frame_flags::kActive, v); }

  // --- NOMAD state ---
  bool promoted() const { return Test(frame_flags::kPromoted); }
  void set_promoted(bool v) { Put(frame_flags::kPromoted, v); }
  bool shadowed() const { return Test(frame_flags::kShadowed); }
  void set_shadowed(bool v) { Put(frame_flags::kShadowed, v); }
  bool is_shadow() const { return Test(frame_flags::kIsShadow); }
  void set_is_shadow(bool v) { Put(frame_flags::kIsShadow, v); }
  bool in_pcq() const { return Test(frame_flags::kInPcq); }
  void set_in_pcq(bool v) { Put(frame_flags::kInPcq, v); }
  bool pcq_primed() const { return Test(frame_flags::kPcqPrimed); }
  void set_pcq_primed(bool v) { Put(frame_flags::kPcqPrimed, v); }
  bool in_pending() const { return Test(frame_flags::kInPending); }
  void set_in_pending(bool v) { Put(frame_flags::kInPending, v); }
  bool migrating() const { return Test(frame_flags::kMigrating); }
  void set_migrating(bool v) { Put(frame_flags::kMigrating, v); }
  // Consecutive TPM aborts on this page; drives kpromote's backoff and
  // give-up decisions.
  uint8_t tpm_aborts() const {
    return static_cast<uint8_t>(word() >> frame_flags::kTpmAbortsShift);
  }
  void set_tpm_aborts(uint8_t v) {
    word() = (word() & ~frame_flags::kTpmAbortsMask) |
             (uint32_t{v} << frame_flags::kTpmAbortsShift);
  }
  void bump_tpm_aborts() { set_tpm_aborts(static_cast<uint8_t>(tpm_aborts() + 1)); }

  // --- LRU bookkeeping ---
  LruList lru() const {
    return static_cast<LruList>((word() >> frame_flags::kLruShift) & 3u);
  }
  void set_lru(LruList l) {
    word() = (word() & ~frame_flags::kLruMask)
             | (static_cast<uint32_t>(l) << frame_flags::kLruShift);
  }
  Pfn lru_prev() const { return t_->lru_prev_[pfn_]; }
  void set_lru_prev(Pfn p) { t_->lru_prev_[pfn_] = p; }
  Pfn lru_next() const { return t_->lru_next_[pfn_]; }
  void set_lru_next(Pfn p) { t_->lru_next_[pfn_] = p; }

  bool mapped() const { return owner() != nullptr; }
  bool multi_mapped() const { return extra_mappers() > 0; }

  // Resets everything except identity (tier/in_use/generation), for frame
  // free/realloc.
  void ResetState() {
    word() &= frame_flags::kIdentityMask;
    t_->owner_[pfn_] = nullptr;
    t_->vpn_[pfn_] = kInvalidVpn;
    t_->extra_mappers_[pfn_] = 0;
    t_->lru_prev_[pfn_] = kInvalidPfn;
    t_->lru_next_[pfn_] = kInvalidPfn;
  }

 private:
  uint32_t word() const { return t_->flags_[pfn_]; }
  uint32_t& word() { return t_->flags_[pfn_]; }
  bool Test(uint32_t bit) const { return (word() & bit) != 0; }
  void Put(uint32_t bit, bool v) {
    uint32_t& w = t_->flags_[pfn_];
    w = v ? (w | bit) : (w & ~bit);
  }

  FrameTable* t_;
  Pfn pfn_;
};

}  // namespace nomad

#endif  // SRC_MM_PAGE_H_
