// Page frame metadata: the simulator's `struct page`.
//
// Frames carry no 4 KB payload - only the state the paper's mechanisms
// read and write: LRU membership and temperature flags (PG_referenced /
// PG_active), the shadow flag NOMAD adds (sec. 3.2), reverse-map info for
// unmapping during migration, and intrusive LRU links.
#ifndef SRC_MM_PAGE_H_
#define SRC_MM_PAGE_H_

#include <cstdint>

#include "src/mem/tier.h"

namespace nomad {

// Physical frame number, global across both tiers.
using Pfn = uint64_t;
inline constexpr Pfn kInvalidPfn = ~Pfn{0};

// Virtual page number within an address space.
using Vpn = uint64_t;
inline constexpr Vpn kInvalidVpn = ~Vpn{0};

class AddressSpace;

// Which LRU list a frame currently sits on.
enum class LruList : uint8_t { kNone = 0, kInactive = 1, kActive = 2 };

// Per-frame metadata (struct page equivalent).
struct PageFrame {
  // --- identity / allocation ---
  Tier tier = Tier::kFast;
  bool in_use = false;
  // Bumped on every free; queues that park PFNs (PCQ, pending queue,
  // shadow-reclaim FIFO) snapshot it to detect stale entries after reuse.
  uint32_t generation = 0;

  // --- reverse map: who maps this frame ---
  // The simulator supports one mapping per frame (NOMAD falls back to
  // synchronous migration for multi-mapped pages, sec. 3.3; we model the
  // multi-mapped case by flagging frames, see `extra_mappers`).
  AddressSpace* owner = nullptr;
  Vpn vpn = kInvalidVpn;
  // Simulated additional mappings (from other page tables). When nonzero,
  // the page counts as multi-mapped.
  uint32_t extra_mappers = 0;

  // --- temperature flags (Linux PG_referenced / PG_active) ---
  bool referenced = false;
  bool active = false;

  // --- NOMAD state ---
  bool promoted = false;     // landed on the fast tier by promotion (sticky
                             // until freed; feeds the thrash governor)
  bool shadowed = false;     // a shadow copy exists on the slow tier
  bool is_shadow = false;    // this frame *is* a shadow copy (unmapped)
  bool in_pcq = false;       // sits in the promotion candidate queue
  bool pcq_primed = false;   // PCQ entry examined once; next A-bit hit = hot
  bool in_pending = false;   // sits in the migration pending queue
  bool migrating = false;    // a TPM transaction is in flight on this frame
  uint8_t tpm_aborts = 0;    // consecutive TPM aborts on this page; drives
                             // kpromote's backoff and give-up decisions

  // --- LRU bookkeeping ---
  LruList lru = LruList::kNone;
  Pfn lru_prev = kInvalidPfn;  // intrusive links, kInvalidPfn = list end
  Pfn lru_next = kInvalidPfn;

  bool mapped() const { return owner != nullptr; }
  bool multi_mapped() const { return extra_mappers > 0; }

  // Resets everything except identity, for frame free/realloc.
  void ResetState() {
    owner = nullptr;
    vpn = kInvalidVpn;
    extra_mappers = 0;
    referenced = false;
    active = false;
    promoted = false;
    shadowed = false;
    is_shadow = false;
    in_pcq = false;
    pcq_primed = false;
    in_pending = false;
    migrating = false;
    tpm_aborts = 0;
    lru = LruList::kNone;
    lru_prev = kInvalidPfn;
    lru_next = kInvalidPfn;
  }
};

}  // namespace nomad

#endif  // SRC_MM_PAGE_H_
