// Per-node active/inactive LRU lists with pagevec batching.
//
// Reproduces the slice of Linux page reclaim the paper leans on (sec. 2.2
// and 3.1):
//  - two lists per node; new pages enter the inactive list,
//  - mark_page_accessed() protocol over PG_referenced / PG_active:
//    first touch sets referenced, a second touch requests activation,
//  - activation requests are *batched* in a 15-slot pagevec and only take
//    effect when the pagevec drains. Until then the page is not on the
//    active list - which is exactly why TPP can take up to 15 minor faults
//    to promote one page, and what NOMAD's PCQ bypasses.
#ifndef SRC_MM_LRU_H_
#define SRC_MM_LRU_H_

#include <cstddef>
#include <vector>

#include "src/mm/frame_pool.h"
#include "src/mm/page.h"

namespace nomad {

inline constexpr size_t kPagevecSize = 15;

class LruLists {
 public:
  explicit LruLists(FramePool* pool) : pool_(pool) {}
  LruLists(const LruLists&) = delete;
  LruLists& operator=(const LruLists&) = delete;

  // Places a newly allocated/mapped page at the head of the inactive list.
  void AddInactive(Pfn pfn);

  // Places a page directly on the active list (used when a promoted page
  // arrives hot on the fast node).
  void AddActive(Pfn pfn);

  // Linux mark_page_accessed(): advances the page's temperature. Activation
  // (inactive -> active) is *requested* through the pagevec and deferred
  // until the pagevec fills (kPagevecSize entries) or DrainPagevec() is
  // called explicitly. Duplicate requests for the same page are possible,
  // as in Linux, and consume pagevec slots.
  void MarkAccessed(Pfn pfn);

  // Flushes pending activation requests. Returns pages actually activated.
  size_t DrainPagevec();

  size_t pagevec_fill() const { return pagevec_.size(); }

  // Reclaim-side operations.
  Pfn InactiveTail() const { return lists_[0].tail; }
  Pfn ActiveTail() const { return lists_[1].tail; }

  // Gives an inactive page a second chance: move to inactive head.
  void RotateInactive(Pfn pfn);

  // Moves an active-list page to the inactive list head, clearing PG_active
  // (shrink_active_list behaviour).
  void Deactivate(Pfn pfn);

  // Moves an inactive page with both flags set to the active list now
  // (reclaim-time promotion, bypassing the pagevec).
  void ActivateNow(Pfn pfn);

  // Detaches the page from whichever list holds it (isolation for
  // migration or freeing). No-op when not listed.
  void Remove(Pfn pfn);

  size_t inactive_size() const { return lists_[0].size; }
  size_t active_size() const { return lists_[1].size; }

  // True when the inactive list is short relative to active (Linux's
  // inactive_is_low heuristic), meaning reclaim should refill it.
  bool InactiveIsLow() const { return lists_[0].size * 2 < lists_[1].size; }

 private:
  struct List {
    Pfn head = kInvalidPfn;
    Pfn tail = kInvalidPfn;
    size_t size = 0;
  };

  List& ListFor(LruList which) { return lists_[which == LruList::kInactive ? 0 : 1]; }

  void PushHead(List* list, LruList which, Pfn pfn);
  void Unlink(List* list, Pfn pfn);

  FramePool* pool_;
  List lists_[2];  // [0]=inactive, [1]=active
  std::vector<Pfn> pagevec_;
};

}  // namespace nomad

#endif  // SRC_MM_LRU_H_
