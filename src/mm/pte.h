// Page table entry layout.
//
// Models exactly the bits the paper's mechanisms manipulate:
//  - present / writable: ordinary permission bits,
//  - accessed / dirty: hardware-maintained A/D bits. TPM's transaction
//    validity test is "was the dirty bit set during the copy" (Fig. 3),
//  - prot_none: the NUMA-hint protection TPP arms on slow-tier pages so the
//    next touch traps (sec. 2.2),
//  - shadow_rw: the unused software bit NOMAD repurposes to remember the
//    original write permission of a read-only-protected master page
//    (Fig. 5, "shadow r/w").
#ifndef SRC_MM_PTE_H_
#define SRC_MM_PTE_H_

#include "src/mm/page.h"

namespace nomad {

struct Pte {
  Pfn pfn = kInvalidPfn;
  bool present = false;
  bool writable = false;
  bool accessed = false;  // set by "hardware" on access
  bool dirty = false;     // set by "hardware" on write
  bool prot_none = false; // hint-fault arming: any access traps
  bool shadow_rw = false; // NOMAD: saved write permission of a master page

  bool MappedAndReachable() const { return present && !prot_none; }
};

}  // namespace nomad

#endif  // SRC_MM_PTE_H_
