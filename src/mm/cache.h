// Last-level cache model.
//
// A physically indexed, set-associative LLC. It exists for two reasons:
//  1. latency: hot lines are served at LLC-hit cost instead of device cost,
//  2. PEBS visibility (Fig. 10): accesses that hit in the LLC produce no
//     LLC-miss samples, so a sampling-based tracker (Memtis) never sees the
//     hottest pages - the core limitation sec. 4.1 demonstrates with the
//     pointer-chasing benchmark.
//
// Tags are physical line addresses, so a migrated page's lines become stale;
// migration code calls InvalidatePage() on the old frame.
#ifndef SRC_MM_CACHE_H_
#define SRC_MM_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/mem/platform.h"
#include "src/mm/page.h"

namespace nomad {

class LastLevelCache {
 public:
  // capacity_bytes is rounded down to a whole number of 16-way sets.
  explicit LastLevelCache(uint64_t capacity_bytes);

  // Looks up the line containing physical byte address `paddr`; inserts it
  // on miss. Returns true on hit.
  bool Access(uint64_t paddr);

  // Drops every line belonging to the frame (used on migration/free).
  void InvalidatePage(Pfn pfn);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t capacity_lines() const { return entries_.size(); }

 private:
  static constexpr uint64_t kWays = 16;
  static constexpr uint64_t kInvalidTag = ~uint64_t{0};

  struct Entry {
    uint64_t tag = kInvalidTag;  // line address (paddr / 64)
    uint64_t last_use = 0;
  };

  size_t SetOf(uint64_t line) const { return static_cast<size_t>((line % num_sets_) * kWays); }

  std::vector<Entry> entries_;
  uint64_t num_sets_ = 1;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_CACHE_H_
