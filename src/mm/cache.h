// Last-level cache model.
//
// A physically indexed, set-associative LLC. It exists for two reasons:
//  1. latency: hot lines are served at LLC-hit cost instead of device cost,
//  2. PEBS visibility (Fig. 10): accesses that hit in the LLC produce no
//     LLC-miss samples, so a sampling-based tracker (Memtis) never sees the
//     hottest pages - the core limitation sec. 4.1 demonstrates with the
//     pointer-chasing benchmark.
//
// Tags are physical line addresses, so a migrated page's lines become stale;
// migration code calls InvalidatePage() on the old frame.
#ifndef SRC_MM_CACHE_H_
#define SRC_MM_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/mem/platform.h"
#include "src/mm/page.h"

namespace nomad {

class LastLevelCache {
 public:
  // capacity_bytes is rounded down to a whole number of 16-way sets.
  explicit LastLevelCache(uint64_t capacity_bytes);

  // Looks up the line containing physical byte address `paddr`; inserts it
  // on miss. Returns true on hit. Inline: this sits on the per-access fast
  // path (MemorySystem::AccessBatch). Tags and LRU stamps live in separate
  // parallel arrays (struct-of-arrays): the hit scan touches only the
  // 8-byte-per-way tag array (two host cache lines per 16-way set instead
  // of four), and the LRU stamps are loaded only on a miss.
  bool Access(uint64_t paddr) {
    const uint64_t line = paddr / kCacheLineSize;
    const size_t base = SetOf(line);
    tick_++;
    for (size_t w = 0; w < kWays; w++) {
      if (tags_[base + w] == line) {
        last_use_[base + w] = tick_;
        hits_++;
        return true;
      }
    }
    // Victim selection, identical to the fused scan: the last invalid way
    // wins; otherwise the first way holding the minimum LRU stamp.
    size_t victim = base;
    bool victim_invalid = false;
    for (size_t w = 0; w < kWays; w++) {
      if (tags_[base + w] == kInvalidTag) {
        victim = base + w;
        victim_invalid = true;
      } else if (!victim_invalid && last_use_[base + w] < last_use_[victim]) {
        victim = base + w;
      }
    }
    misses_++;
    tags_[victim] = line;
    last_use_[victim] = tick_;
    return false;
  }

  // Hints the host CPU to pull the set covering `paddr` into cache ahead of
  // an Access. The 16-way tag array spans two host cache lines per set and
  // is the hottest randomly-indexed structure in the simulator. Pure
  // prefetch: no simulator state changes.
  void PrefetchSet(uint64_t paddr) const {
    const size_t base = SetOf(paddr / kCacheLineSize);
    __builtin_prefetch(&tags_[base], 1);
    __builtin_prefetch(&tags_[base + 8], 1);
    __builtin_prefetch(&last_use_[base], 1);
  }

  // Drops every line belonging to the frame (used on migration/free).
  void InvalidatePage(Pfn pfn);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t capacity_lines() const { return tags_.size(); }

 private:
  static constexpr uint64_t kWays = 16;
  static constexpr uint64_t kInvalidTag = ~uint64_t{0};

  size_t SetOf(uint64_t line) const { return static_cast<size_t>((line % num_sets_) * kWays); }

  std::vector<uint64_t> tags_;      // line address (paddr / 64), kInvalidTag = empty
  std::vector<uint64_t> last_use_;  // LRU stamp per way, parallel to tags_
  uint64_t num_sets_ = 1;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_CACHE_H_
