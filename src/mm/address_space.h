// A process address space: page table plus the mm_cpumask equivalent.
//
// The simulator gives each experiment one (occasionally two) address
// spaces. The cpumask records which simulated CPUs ever loaded translations
// from this space, which is the set a TLB shootdown must IPI - exactly the
// cost NOMAD's two-shootdown transaction pays (sec. 3.3).
#ifndef SRC_MM_ADDRESS_SPACE_H_
#define SRC_MM_ADDRESS_SPACE_H_

#include <cstdint>
#include <vector>

#include "src/mm/page_table.h"
#include "src/sim/engine.h"

namespace nomad {

class AddressSpace {
 public:
  // num_pages bounds the valid VPN range [0, num_pages).
  explicit AddressSpace(uint64_t num_pages) : num_pages_(num_pages) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  PageTable& table() { return table_; }
  const PageTable& table() const { return table_; }
  uint64_t num_pages() const { return num_pages_; }

  // Records that `cpu` holds (or held) translations of this space. Inline
  // fast path: after warm-up every Access() lands on the single-bit test.
  void NoteCpu(ActorId cpu) {
    if (cpu < cpu_seen_.size() && cpu_seen_[cpu]) {
      return;
    }
    NoteCpuSlow(cpu);
  }

  // CPUs a shootdown must target.
  const std::vector<ActorId>& cpus() const { return cpus_; }

 private:
  void NoteCpuSlow(ActorId cpu);

  PageTable table_;
  uint64_t num_pages_;
  std::vector<ActorId> cpus_;
  std::vector<bool> cpu_seen_;
};

}  // namespace nomad

#endif  // SRC_MM_ADDRESS_SPACE_H_
