#include "src/mm/frame_pool.h"

#include "src/check/check.h"
#include "src/fault/fault_injector.h"

namespace nomad {

FramePool::FramePool(const PlatformSpec& platform) {
  n_fast_ = platform.tiers[0].capacity_bytes / kPageSize;
  const uint64_t n_slow = platform.tiers[1].capacity_bytes / kPageSize;
  table_.Resize(n_fast_ + n_slow);
  // Start with every bit set: the first scanner sweep then examines exactly
  // the frames the pre-bitmap implementation would have, lazily clearing
  // bits for frames it finds un-armable.
  scan_candidate_.assign((table_.size() + 63) / 64, ~uint64_t{0});
  free_[0].reserve(n_fast_);
  free_[1].reserve(n_slow);
  // Push in reverse so that allocation order is ascending PFN, which makes
  // tests and placement deterministic and easy to reason about.
  for (Pfn p = n_fast_; p-- > 0;) {
    frame(p).set_tier(Tier::kFast);
    free_[0].push_back(p);
  }
  for (Pfn p = n_fast_ + n_slow; p-- > n_fast_;) {
    frame(p).set_tier(Tier::kSlow);
    free_[1].push_back(p);
  }
  // Linux-like defaults: low watermark at ~1/128 of the node, high at 3x low.
  for (int t = 0; t < kNumTiers; t++) {
    uint64_t total = t == 0 ? n_fast_ : n_slow;
    low_wm_[t] = total / 128;
    high_wm_[t] = low_wm_[t] * 3;
  }
}

void FramePool::SetWatermarks(Tier tier, uint64_t low, uint64_t high) {
  low_wm_[TierIndex(tier)] = low;
  high_wm_[TierIndex(tier)] = high;
}

Pfn FramePool::AllocOn(Tier tier) {
  if constexpr (kFaultInjectionEnabled) {
    // A transient fast-tier failure: the frame we'd have taken was stolen
    // by a concurrent consumer. The caller sees kInvalidPfn exactly as it
    // would under real pressure and must take its fallback path.
    if (faults_ != nullptr && tier == Tier::kFast &&
        faults_->ShouldInject(FaultKind::kAllocFail)) {
      return kInvalidPfn;
    }
  }
  auto& list = free_[TierIndex(tier)];
  if (list.empty()) {
    if (alloc_failure_hook_ && alloc_failure_hook_(tier) && !list.empty()) {
      // The hook reclaimed something; fall through to allocate it.
    } else {
      return kInvalidPfn;
    }
  }
  Pfn pfn = list.back();
  list.pop_back();
  PageFrame f = frame(pfn);
  NOMAD_CHECK(!f.in_use(), "free-list frame already in use, pfn=", pfn, " vpn=", f.vpn(),
              " tier=", static_cast<int>(f.tier()));
  f.set_in_use(true);
  NoteScanCandidate(pfn);
  return pfn;
}

Pfn FramePool::Alloc(Tier preferred) {
  Pfn pfn = AllocOn(preferred);
  if (pfn != kInvalidPfn) {
    return pfn;
  }
  spill_count_++;
  pfn = AllocOn(OtherTier(preferred));
  if (pfn == kInvalidPfn) {
    oom_count_++;
  }
  return pfn;
}

void FramePool::Free(Pfn pfn) {
  PageFrame f = frame(pfn);
  NOMAD_CHECK(f.in_use(), "double free, pfn=", pfn, " vpn=", f.vpn());
  NOMAD_CHECK(f.lru() == LruList::kNone, "freeing a frame still on an LRU list, pfn=", pfn,
              " vpn=", f.vpn(), " list=", static_cast<int>(f.lru()));
  f.set_in_use(false);
  f.bump_generation();
  f.ResetState();
  free_[TierIndex(f.tier())].push_back(pfn);
}

}  // namespace nomad
