#include "src/mm/address_space.h"

namespace nomad {

void AddressSpace::NoteCpuSlow(ActorId cpu) {
  if (cpu >= cpu_seen_.size()) {
    cpu_seen_.resize(cpu + 1, false);
  }
  if (!cpu_seen_[cpu]) {
    cpu_seen_[cpu] = true;
    cpus_.push_back(cpu);
  }
}

}  // namespace nomad
