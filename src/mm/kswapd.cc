#include "src/mm/kswapd.h"

#include <algorithm>

#include "src/obs/event_registry.h"

namespace nomad {

Kswapd::Kswapd(MemorySystem* ms, const Config& config) : ms_(ms), config_(config) {}

std::string Kswapd::name() const {
  return std::string("kswapd-") + TierName(config_.tier);
}

MigrateResult Kswapd::DefaultReclaimPage(Pfn pfn) {
  PageFrame f = ms_->pool().frame(pfn);
  if (config_.tier == Tier::kSlow || !f.mapped()) {
    // Nothing generic to do on the slow node (no swap device is modelled);
    // policies plug shadow reclaim in via pre_reclaim_fn.
    return MigrateResult{};
  }
  return MigratePageSync(*ms_, *f.owner(), f.vpn(), Tier::kSlow);
}

Cycles Kswapd::ReclaimRound() {
  FramePool& pool = ms_->pool();
  LruLists& lru = ms_->lru(config_.tier);
  const KernelCosts& costs = ms_->platform().costs;
  const Tier tier = config_.tier;
  // The round is one kswapd_reclaim span; shadow reclaim and the demotion
  // migrations charge themselves as children, LRU bookkeeping accumulates
  // into one lru_scan leaf below, and only the setup cost books as self.
  ProfScope span(ms_->prof(), ProfNode::kKswapdReclaim);
  Cycles lru_cost = 0;
  Cycles spent = costs.daemon_wakeup / 4;  // loop setup / lru lock costs
  ms_->prof().Charge(spent);

  // Give policies first shot (NOMAD: free shadow pages before demoting).
  if (pre_reclaim_) {
    const uint64_t freed = pre_reclaim_(config_.scan_batch, &spent);
    if (freed > 0 && !pool.BelowLowWatermark(tier)) {
      return spent;
    }
  }

  // Refill the inactive list from the active tail when it runs low
  // (shrink_active_list): demotes list membership, clears A-bits so the
  // next scan measures fresh activity. TLB invalidations are batched: one
  // shootdown per refill round, as Linux batches its reclaim flushes.
  if (lru.InactiveIsLow()) {
    bool any = false;
    for (uint64_t i = 0; i < config_.scan_batch && lru.ActiveTail() != kInvalidPfn; i++) {
      const Pfn pfn = lru.ActiveTail();
      PageFrame f = pool.frame(pfn);
      Pte* pte = f.mapped() ? ms_->PteOf(*f.owner(), f.vpn()) : nullptr;
      if (pte != nullptr) {
        pte->accessed = false;
        spent += costs.pte_update;
        lru_cost += costs.pte_update;
      }
      lru.Deactivate(pfn);
      spent += costs.lru_op;
      lru_cost += costs.lru_op;
      any = true;
    }
    if (any && lru.InactiveTail() != kInvalidPfn) {
      PageFrame f = pool.frame(lru.InactiveTail());
      if (f.mapped()) {
        const Cycles c = ms_->TlbShootdown(*f.owner(), f.vpn());
        spent += c;
        lru_cost += c;
      }
    }
  }

  // Scan the inactive tail.
  uint64_t scanned = 0;
  while (scanned < config_.scan_batch && pool.BelowHighWatermark(tier)) {
    Pfn pfn = victim_ ? victim_() : kInvalidPfn;
    if (pfn == kInvalidPfn) {
      pfn = lru.InactiveTail();
    }
    if (pfn == kInvalidPfn) {
      break;
    }
    scanned++;
    PageFrame f = pool.frame(pfn);
    if (!f.mapped()) {
      // Stray unmapped frame on the LRU; drop it.
      lru.Remove(pfn);
      pool.Free(pfn);
      spent += costs.lru_op;
      lru_cost += costs.lru_op;
      continue;
    }
    if (f.migrating()) {
      // A TPM transaction owns this frame; leave it alone.
      lru.RotateInactive(pfn);
      spent += costs.lru_op;
      lru_cost += costs.lru_op;
      continue;
    }
    Pte* pte = ms_->PteOf(*f.owner(), f.vpn());
    spent += costs.lru_op + costs.pte_update;
    lru_cost += costs.lru_op + costs.pte_update;
    if (pte != nullptr && pte->accessed) {
      // Referenced since the last scan: second chance.
      pte->accessed = false;
      if (f.referenced()) {
        lru.ActivateNow(pfn);
      } else {
        f.set_referenced(true);
        lru.RotateInactive(pfn);
      }
      continue;
    }
    MigrateResult r = reclaim_page_ ? reclaim_page_(pfn) : DefaultReclaimPage(pfn);
    spent += r.cycles;
    if (r.success) {
      pages_demoted_++;
      consecutive_failures_ = 0;
    } else {
      demote_failures_++;
      consecutive_failures_++;
      // Avoid burning the node scanning pages we cannot place anywhere.
      lru.RotateInactive(pfn);
      if (consecutive_failures_ >= config_.scan_batch) {
        break;
      }
    }
  }
  ms_->prof().ChargeLeaf(ProfNode::kLruScan, lru_cost);
  return spent;
}

Cycles Kswapd::Step(Engine& engine) {
  FramePool& pool = ms_->pool();
  const Tier tier = config_.tier;
  if (pool.FreeFrames(tier) >= pool.HighWatermark(tier)) {
    consecutive_failures_ = 0;
    engine.SleepUntil(engine.now() + config_.poll_interval);
    return 0;
  }
  ms_->Trace(TraceEvent::kKswapdWake, static_cast<uint64_t>(TierIndex(tier)),
             pool.FreeFrames(tier));
  Cycles spent = ReclaimRound();
  ms_->counters().Add(cnt::kKswapdCycles, spent);
  if (consecutive_failures_ >= config_.scan_batch) {
    // Thrashing against a full lower tier; back off.
    consecutive_failures_ = 0;
    engine.SleepUntil(engine.now() + config_.poll_interval);
    return 0;
  }
  return std::max<Cycles>(spent, 1);
}

}  // namespace nomad
