#include "src/mm/lru.h"

#include "src/check/check.h"

namespace nomad {

void LruLists::PushHead(List* list, LruList which, Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  NOMAD_CHECK(f.lru() == LruList::kNone, "double list insertion, pfn=", pfn, " vpn=", f.vpn(),
              " on=", static_cast<int>(f.lru()), " adding_to=", static_cast<int>(which));
  f.set_lru(which);
  f.set_lru_prev(kInvalidPfn);
  f.set_lru_next(list->head);
  if (list->head != kInvalidPfn) {
    pool_->frame(list->head).set_lru_prev(pfn);
  }
  list->head = pfn;
  if (list->tail == kInvalidPfn) {
    list->tail = pfn;
  }
  list->size++;
}

void LruLists::Unlink(List* list, Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  if (f.lru_prev() != kInvalidPfn) {
    pool_->frame(f.lru_prev()).set_lru_next(f.lru_next());
  } else {
    list->head = f.lru_next();
  }
  if (f.lru_next() != kInvalidPfn) {
    pool_->frame(f.lru_next()).set_lru_prev(f.lru_prev());
  } else {
    list->tail = f.lru_prev();
  }
  f.set_lru(LruList::kNone);
  f.set_lru_prev(kInvalidPfn);
  f.set_lru_next(kInvalidPfn);
  NOMAD_CHECK(list->size > 0, "unlink from empty list, pfn=", pfn, " vpn=", f.vpn());
  list->size--;
}

void LruLists::AddInactive(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  f.set_active(false);
  PushHead(&ListFor(LruList::kInactive), LruList::kInactive, pfn);
}

void LruLists::AddActive(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  f.set_active(true);
  PushHead(&ListFor(LruList::kActive), LruList::kActive, pfn);
}

void LruLists::MarkAccessed(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  if (f.lru() == LruList::kNone) {
    return;  // isolated (migrating or being freed); nothing to record
  }
  if (f.lru() == LruList::kActive) {
    f.set_referenced(true);
    return;
  }
  // Inactive list.
  if (!f.referenced()) {
    f.set_referenced(true);
    return;
  }
  // Second touch: request activation through the pagevec. Duplicate
  // requests consume slots, as in Linux's per-CPU pagevecs.
  pagevec_.push_back(pfn);
  if (pagevec_.size() >= kPagevecSize) {
    DrainPagevec();
  }
}

size_t LruLists::DrainPagevec() {
  size_t activated = 0;
  for (Pfn pfn : pagevec_) {
    PageFrame f = pool_->frame(pfn);
    if (f.lru() != LruList::kInactive) {
      continue;  // duplicate request, already activated, or isolated
    }
    Unlink(&ListFor(LruList::kInactive), pfn);
    f.set_active(true);
    f.set_referenced(false);
    PushHead(&ListFor(LruList::kActive), LruList::kActive, pfn);
    activated++;
  }
  pagevec_.clear();
  return activated;
}

void LruLists::RotateInactive(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  NOMAD_CHECK(f.lru() == LruList::kInactive, "rotate of non-inactive page, pfn=", pfn,
              " vpn=", f.vpn(), " on=", static_cast<int>(f.lru()));
  Unlink(&ListFor(LruList::kInactive), pfn);
  PushHead(&ListFor(LruList::kInactive), LruList::kInactive, pfn);
}

void LruLists::Deactivate(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  NOMAD_CHECK(f.lru() == LruList::kActive, "deactivate of non-active page, pfn=", pfn,
              " vpn=", f.vpn(), " on=", static_cast<int>(f.lru()));
  Unlink(&ListFor(LruList::kActive), pfn);
  f.set_active(false);
  f.set_referenced(false);
  PushHead(&ListFor(LruList::kInactive), LruList::kInactive, pfn);
}

void LruLists::ActivateNow(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  NOMAD_CHECK(f.lru() == LruList::kInactive, "activate of non-inactive page, pfn=", pfn,
              " vpn=", f.vpn(), " on=", static_cast<int>(f.lru()));
  Unlink(&ListFor(LruList::kInactive), pfn);
  f.set_active(true);
  f.set_referenced(false);
  PushHead(&ListFor(LruList::kActive), LruList::kActive, pfn);
}

void LruLists::Remove(Pfn pfn) {
  PageFrame f = pool_->frame(pfn);
  if (f.lru() == LruList::kNone) {
    return;
  }
  Unlink(&ListFor(f.lru()), pfn);
}

}  // namespace nomad
