#include "src/mm/tlb.h"

#include <algorithm>

namespace nomad {

Tlb::Tlb(size_t num_entries) {
  num_sets_ = std::max<size_t>(1, num_entries / kWays);
  entries_.resize(num_sets_ * kWays);
}

Tlb::Entry* Tlb::Lookup(Vpn vpn) {
  tick_++;
  const size_t base = SetOf(vpn);
  for (size_t w = 0; w < kWays; w++) {
    Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      e.last_use = tick_;
      hits_++;
      return &e;
    }
  }
  misses_++;
  return nullptr;
}

Tlb::Entry& Tlb::Fill(Vpn vpn, Pfn pfn, bool writable, bool dirty) {
  const size_t base = SetOf(vpn);
  size_t victim = base;
  for (size_t w = 0; w < kWays; w++) {
    Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      victim = base + w;  // refresh a stale entry in place (e.g. after a
      break;              // permission upgrade) instead of duplicating it
    }
    if (!e.valid) {
      victim = base + w;
      continue;
    }
    if (entries_[victim].valid && e.last_use < entries_[victim].last_use) {
      victim = base + w;
    }
  }
  Entry& e = entries_[victim];
  e.vpn = vpn;
  e.pfn = pfn;
  e.valid = true;
  e.writable = writable;
  e.dirty = dirty;
  e.last_use = ++tick_;
  return e;
}

void Tlb::Invalidate(Vpn vpn) {
  const size_t base = SetOf(vpn);
  for (size_t w = 0; w < kWays; w++) {
    Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      e.valid = false;
    }
  }
}

void Tlb::InvalidateAll() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace nomad
