#include "src/mm/tlb.h"

#include <algorithm>

namespace nomad {

Tlb::Tlb(size_t num_entries) {
  num_sets_ = std::max<size_t>(1, num_entries / kWays);
  entries_.resize(num_sets_ * kWays);
}

void Tlb::Invalidate(Vpn vpn) {
  const size_t base = SetOf(vpn);
  for (size_t w = 0; w < kWays; w++) {
    Entry& e = entries_[base + w];
    if (e.valid && e.vpn == vpn) {
      e.valid = false;
    }
  }
}

void Tlb::InvalidateAll() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

}  // namespace nomad
