// kswapd: per-node background reclaim daemon.
//
// Woken when a node's free count dips under the low watermark; reclaims
// until the high watermark is restored. On the fast node, reclaim means
// demoting cold pages (inactive-list tail) to the slow node - TPP's
// asynchronous demotion path. Policies customize two points:
//  - pre_reclaim_fn: runs before page demotion; NOMAD frees shadow pages
//    here first (sec. 3.2, "NOMAD instructs kswapd to prioritize the
//    reclamation of shadow pages"),
//  - reclaim_page_fn: demotes/frees one page; NOMAD substitutes its
//    remap-only demotion for clean shadowed pages.
#ifndef SRC_MM_KSWAPD_H_
#define SRC_MM_KSWAPD_H_

#include <functional>

#include "src/mm/memory_system.h"
#include "src/mm/migrate.h"

namespace nomad {

class Kswapd : public Actor {
 public:
  struct Config {
    Tier tier = Tier::kFast;
    uint64_t scan_batch = 32;       // pages examined per step
    Cycles poll_interval = 200000;  // re-check period while watermarks are fine
  };

  // Reclaims one page (by PFN); returns success and the cycles it cost.
  using ReclaimPageFn = std::function<MigrateResult(Pfn)>;
  // Picks the demotion victim; kInvalidPfn means "use the inactive tail".
  // NOMAD prefers clean shadowed pages near the tail, whose demotion is a
  // remap instead of a copy.
  using VictimFn = std::function<Pfn()>;
  // Attempts to free up to `needed` frames some other way first; returns
  // frames freed and charges cycles through the second out-param.
  using PreReclaimFn = std::function<uint64_t(uint64_t needed, Cycles* cost)>;

  Kswapd(MemorySystem* ms, const Config& config);

  // The engine id must be set right after AddActor so wakeups can target it.
  void set_actor_id(ActorId id) { actor_id_ = id; }
  ActorId actor_id() const { return actor_id_; }

  void set_reclaim_page_fn(ReclaimPageFn fn) { reclaim_page_ = std::move(fn); }
  void set_pre_reclaim_fn(PreReclaimFn fn) { pre_reclaim_ = std::move(fn); }
  void set_victim_fn(VictimFn fn) { victim_ = std::move(fn); }

  Cycles Step(Engine& engine) override;
  std::string name() const override;

  uint64_t pages_demoted() const { return pages_demoted_; }
  uint64_t demote_failures() const { return demote_failures_; }

 private:
  // One reclaim round; returns cycles spent.
  Cycles ReclaimRound();
  // Default single-page reclaim: demote fast-node pages to the slow node.
  MigrateResult DefaultReclaimPage(Pfn pfn);

  MemorySystem* ms_;
  Config config_;
  ActorId actor_id_ = 0;
  ReclaimPageFn reclaim_page_;
  PreReclaimFn pre_reclaim_;
  VictimFn victim_;
  uint64_t pages_demoted_ = 0;
  uint64_t demote_failures_ = 0;
  uint64_t consecutive_failures_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_KSWAPD_H_
