#include "src/mm/migrate.h"

namespace nomad {

MigrateResult MigratePageSync(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier dst) {
  MigrateResult r;
  const KernelCosts& costs = ms.platform().costs;
  Pte* pte = ms.PteOf(as, vpn);
  if (!pte || !pte->present) {
    return r;
  }
  const Pfn old_pfn = pte->pfn;
  PageFrame& old_frame = ms.pool().frame(old_pfn);
  if (old_frame.tier == dst) {
    return r;  // already there
  }

  r.cycles += costs.migrate_fixed;

  // Allocate the destination frame first; bail before touching the mapping
  // if the node is full (the common failure under memory pressure).
  const Pfn new_pfn = ms.pool().AllocOn(dst);
  if (new_pfn == kInvalidPfn) {
    ms.counters().Add("migrate.sync_fail_nomem", 1);
    return r;
  }

  // Isolate from the LRU, unmap, and shoot down stale translations.
  ms.lru(old_frame.tier).Remove(old_pfn);
  const bool was_writable = pte->writable || pte->shadow_rw;
  const bool was_dirty = pte->dirty;
  const bool was_prot_none = pte->prot_none;
  pte->present = false;
  r.cycles += costs.pte_update;
  r.cycles += ms.TlbShootdown(as, vpn);

  // Copy the page; the page is unreachable for this whole window.
  r.cycles += ms.CopyPageCost(old_frame.tier, dst);

  // Remap to the new frame, preserving permissions and dirty state.
  PageFrame& new_frame = ms.pool().frame(new_pfn);
  new_frame.owner = &as;
  new_frame.vpn = vpn;
  new_frame.referenced = old_frame.referenced;
  new_frame.active = old_frame.active;
  new_frame.extra_mappers = old_frame.extra_mappers;
  new_frame.promoted = dst == Tier::kFast;
  pte->pfn = new_pfn;
  pte->present = true;
  pte->writable = was_writable;
  pte->shadow_rw = false;
  pte->dirty = was_dirty;
  pte->prot_none = false;
  pte->accessed = false;
  r.cycles += costs.pte_update;
  (void)was_prot_none;

  if (new_frame.active) {
    ms.lru(dst).AddActive(new_pfn);
  } else {
    ms.lru(dst).AddInactive(new_pfn);
  }

  // The old frame's cache lines are stale physical addresses now.
  ms.llc().InvalidatePage(old_pfn);
  ms.pool().Free(old_pfn);

  // Concurrent accessors stall until the copy completes.
  ms.BeginMigrationWindow(as, vpn, ms.Now() + r.cycles);

  ms.counters().Add(dst == Tier::kFast ? "migrate.sync_promote" : "migrate.sync_demote", 1);
  ms.Trace(dst == Tier::kFast ? TraceEvent::kPromote : TraceEvent::kDemote, vpn, r.cycles);
  r.success = true;
  return r;
}

MigrateResult MigratePageWithRetry(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier dst,
                                   int max_attempts) {
  MigrateResult total;
  for (int attempt = 0; attempt < max_attempts; attempt++) {
    MigrateResult r = MigratePageSync(ms, as, vpn, dst);
    total.cycles += r.cycles;
    if (r.success) {
      total.success = true;
      return total;
    }
    Pte* pte = ms.PteOf(as, vpn);
    if (!pte || !pte->present) {
      break;  // page vanished; retrying cannot help
    }
    if (attempt + 1 < max_attempts) {
      ms.counters().Add("migrate.sync_retry", 1);
    }
  }
  return total;
}

}  // namespace nomad
