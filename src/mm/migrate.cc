#include "src/mm/migrate.h"

#include "src/nomad/tpm_protocol.h"
#include "src/obs/event_registry.h"

namespace nomad {

namespace {

// Binds the unmap-copy-remap machine (tpm::SyncMigration, the same
// transition code tools/tpm_modelcheck explores) to the simulated
// MemorySystem. Each step charges the kernel cost the inline code used to
// charge.
class SyncHwImpl : public tpm::SyncHw {
 public:
  SyncHwImpl(MemorySystem& ms, AddressSpace& as, Vpn vpn, Pte& pte, Pfn old_pfn, Pfn new_pfn,
             Tier dst)
      : ms_(ms), as_(as), vpn_(vpn), pte_(pte), old_pfn_(old_pfn), new_pfn_(new_pfn), dst_(dst) {}

  void Unmap() override {
    // Isolate from the LRU and unmap; permissions and dirty state are
    // carried across to the remap.
    PageFrame old_frame = ms_.pool().frame(old_pfn_);
    ms_.lru(old_frame.tier()).Remove(old_pfn_);
    was_writable_ = pte_.writable || pte_.shadow_rw;
    was_dirty_ = pte_.dirty;
    pte_.present = false;
    cycles_ += ms_.platform().costs.pte_update;
  }

  void Shootdown() override { cycles_ += ms_.TlbShootdown(as_, vpn_); }

  // Copy the page; the page is unreachable for this whole window.
  void Copy() override {
    cycles_ += ms_.CopyPageCost(ms_.pool().frame(old_pfn_).tier(), dst_);
  }

  void Remap() override {
    // Remap to the new frame, preserving permissions and dirty state.
    PageFrame old_frame = ms_.pool().frame(old_pfn_);
    PageFrame new_frame = ms_.pool().frame(new_pfn_);
    new_frame.set_owner(&as_);
    new_frame.set_vpn(vpn_);
    new_frame.set_referenced(old_frame.referenced());
    new_frame.set_active(old_frame.active());
    new_frame.set_extra_mappers(old_frame.extra_mappers());
    new_frame.set_promoted(dst_ == Tier::kFast);
    pte_.pfn = new_pfn_;
    pte_.present = true;
    pte_.writable = was_writable_;
    pte_.shadow_rw = false;
    pte_.dirty = was_dirty_;
    pte_.prot_none = false;
    pte_.accessed = false;
    ms_.pool().NoteScanCandidate(new_pfn_);
    cycles_ += ms_.platform().costs.pte_update;

    if (new_frame.active()) {
      ms_.lru(dst_).AddActive(new_pfn_);
    } else {
      ms_.lru(dst_).AddInactive(new_pfn_);
    }

    // The old frame's cache lines are stale physical addresses now.
    ms_.llc().InvalidatePage(old_pfn_);
    ms_.pool().Free(old_pfn_);
  }

  Cycles cycles() const { return cycles_; }

 private:
  MemorySystem& ms_;
  AddressSpace& as_;
  Vpn vpn_;
  Pte& pte_;
  Pfn old_pfn_;
  Pfn new_pfn_;
  Tier dst_;
  bool was_writable_ = false;
  bool was_dirty_ = false;
  Cycles cycles_ = 0;
};

}  // namespace

MigrateResult MigratePageSync(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier dst) {
  MigrateResult r;
  // Attribution nests under whoever triggered the migration: hint_fault for
  // TPP's on-fault promotion, kswapd_reclaim for demotions, root-level for
  // kpromote's multi-mapped fallback.
  ProfScope span(ms.prof(), ProfNode::kSyncMigrate);
  const KernelCosts& costs = ms.platform().costs;
  Pte* pte = ms.PteOf(as, vpn);
  if (!pte || !pte->present) {
    return r;
  }
  const Pfn old_pfn = pte->pfn;
  PageFrame old_frame = ms.pool().frame(old_pfn);
  if (old_frame.tier() == dst) {
    return r;  // already there
  }

  r.cycles += costs.migrate_fixed;

  // Allocate the destination frame first; bail before touching the mapping
  // if the node is full (the common failure under memory pressure).
  const Pfn new_pfn = ms.pool().AllocOn(dst);
  if (new_pfn == kInvalidPfn) {
    ms.counters().Add(cnt::kMigrateSyncFailNomem, 1);
    ms.prof().Charge(r.cycles);
    return r;
  }

  // The 3-step procedure itself — unmap, shoot down, copy, remap — runs
  // through the protocol seam (see src/nomad/tpm_protocol.h).
  SyncHwImpl hw(ms, as, vpn, *pte, old_pfn, new_pfn, dst);
  tpm::SyncMigration::Run(hw);
  r.cycles += hw.cycles();

  // Concurrent accessors stall until the copy completes.
  ms.BeginMigrationWindow(as, vpn, ms.Now() + r.cycles);

  ms.counters().Add(dst == Tier::kFast ? cnt::kMigrateSyncPromote : cnt::kMigrateSyncDemote, 1);
  ms.Trace(dst == Tier::kFast ? TraceEvent::kPromote : TraceEvent::kDemote, vpn, r.cycles);
  ms.prof().Charge(r.cycles);
  if (dst == Tier::kFast) {
    ms.hists().Record(hist::kMigrationLatency, r.cycles);
    ms.provenance().OnPromote(vpn, ms.Now());
  } else {
    ms.hists().Record(hist::kDemotionLatency, r.cycles);
    ms.provenance().OnDemote(vpn, ms.Now());
  }
  r.success = true;
  return r;
}

MigrateResult MigratePageWithRetry(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier dst,
                                   int max_attempts) {
  MigrateResult total;
  for (int attempt = 0; attempt < max_attempts; attempt++) {
    MigrateResult r = MigratePageSync(ms, as, vpn, dst);
    total.cycles += r.cycles;
    if (r.success) {
      total.success = true;
      return total;
    }
    Pte* pte = ms.PteOf(as, vpn);
    if (!pte || !pte->present) {
      break;  // page vanished; retrying cannot help
    }
    if (attempt + 1 < max_attempts) {
      ms.counters().Add(cnt::kMigrateSyncRetry, 1);
    }
  }
  return total;
}

}  // namespace nomad
