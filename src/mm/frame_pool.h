// Physical frame allocator with per-node watermarks.
//
// Mirrors the slice of the buddy allocator the paper's mechanisms interact
// with: per-NUMA-node free lists, low/high watermarks that wake kswapd, and
// an allocation-failure path that NOMAD hooks to reclaim shadow pages
// (sec. 3.2, "Reclaiming shadow pages"). Frames are single 4 KB pages; the
// paper does not exercise compound pages.
#ifndef SRC_MM_FRAME_POOL_H_
#define SRC_MM_FRAME_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/mem/platform.h"
#include "src/mem/tier.h"
#include "src/mm/page.h"

namespace nomad {

class FaultInjector;

// Allocator over both tiers' frames. PFNs are global: tier 0 occupies
// [0, n_fast), tier 1 occupies [n_fast, n_fast + n_slow).
class FramePool {
 public:
  // Called when an allocation on a node finds no free frame; gives policies
  // (NOMAD) a chance to free shadow pages. Returns true if it freed >= 1
  // frame on the node.
  using AllocFailureHook = std::function<bool(Tier)>;

  explicit FramePool(const PlatformSpec& platform);

  // Allocates a frame on the exact node, or kInvalidPfn.
  Pfn AllocOn(Tier tier);

  // Standard placement policy (sec. 3, "NOMAD does not impact the initial
  // memory allocation"): try fast first, fall back to slow. Returns
  // kInvalidPfn only when both nodes are exhausted even after the failure
  // hook ran (an OOM condition, which the caller counts).
  Pfn Alloc(Tier preferred = Tier::kFast);

  void Free(Pfn pfn);

  // Handle over one frame's SoA slots. Returned by value; declare the
  // result `const PageFrame` for read-only access (setters are non-const).
  PageFrame frame(Pfn pfn) { return PageFrame(&table_, pfn); }
  PageFrame frame(Pfn pfn) const {
    // The handle is the mutation API; constness is expressed at the call
    // site by binding to `const PageFrame`.
    return PageFrame(const_cast<FrameTable*>(&table_), pfn);
  }

  // Bulk read-only view of the SoA table (invariant audits, benches).
  const FrameTable& table() const { return table_; }

  Tier TierOf(Pfn pfn) const { return pfn < n_fast_ ? Tier::kFast : Tier::kSlow; }

  uint64_t FreeFrames(Tier tier) const { return free_[TierIndex(tier)].size(); }
  uint64_t TotalFrames(Tier tier) const {
    return tier == Tier::kFast ? n_fast_ : table_.size() - n_fast_;
  }
  uint64_t UsedFrames(Tier tier) const { return TotalFrames(tier) - FreeFrames(tier); }

  // Watermarks, in frames. kswapd reclaims when free < low until free >= high.
  uint64_t LowWatermark(Tier tier) const { return low_wm_[TierIndex(tier)]; }
  uint64_t HighWatermark(Tier tier) const { return high_wm_[TierIndex(tier)]; }
  void SetWatermarks(Tier tier, uint64_t low, uint64_t high);
  bool BelowLowWatermark(Tier tier) const {
    return FreeFrames(tier) < LowWatermark(tier);
  }
  bool BelowHighWatermark(Tier tier) const {
    return FreeFrames(tier) < HighWatermark(tier);
  }

  // --- Scan-candidate bitmap (struct-of-arrays sidecar) ---------------------
  //
  // One bit per frame, kept conservatively: if a frame could be armed by the
  // hint-fault scanner (in use, mapped, non-shadow, PTE present and not yet
  // prot_none), its bit MUST be set. The scanner clears bits only for states
  // that cannot become armable again without passing through one of the
  // NoteScanCandidate call sites (alloc, map install/repoint, prot_none
  // clear, shadow detach). Extra set bits are harmless; a missing bit on an
  // armable frame would silently stop hint faults, so InvariantChecker
  // audits the superset property.
  void NoteScanCandidate(Pfn pfn) {
    if (pfn < table_.size()) {
      scan_candidate_[pfn >> 6] |= uint64_t{1} << (pfn & 63);
    }
  }
  void ClearScanCandidate(Pfn pfn) {
    scan_candidate_[pfn >> 6] &= ~(uint64_t{1} << (pfn & 63));
  }
  bool IsScanCandidate(Pfn pfn) const {
    return (scan_candidate_[pfn >> 6] >> (pfn & 63)) & 1;
  }
  // Word-granular access for the scanner's window iteration.
  uint64_t ScanCandidateWord(uint64_t word_index) const {
    return scan_candidate_[word_index];
  }

  void set_alloc_failure_hook(AllocFailureHook hook) { alloc_failure_hook_ = std::move(hook); }

  // Optional fault injector (owned by the MemorySystem): makes fast-tier
  // allocations transiently fail on schedule.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }

  // Number of allocations that found the preferred node empty and spilled.
  uint64_t spill_count() const { return spill_count_; }
  // Number of allocations that failed outright (OOM).
  uint64_t oom_count() const { return oom_count_; }

 private:
  FrameTable table_;
  std::vector<uint64_t> scan_candidate_;  // 1 bit/frame, see NoteScanCandidate
  std::vector<Pfn> free_[kNumTiers];  // LIFO free lists
  uint64_t n_fast_ = 0;
  uint64_t low_wm_[kNumTiers] = {0, 0};
  uint64_t high_wm_[kNumTiers] = {0, 0};
  AllocFailureHook alloc_failure_hook_;
  FaultInjector* faults_ = nullptr;
  uint64_t spill_count_ = 0;
  uint64_t oom_count_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_FRAME_POOL_H_
