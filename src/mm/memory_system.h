// MemorySystem: the simulated machine's MMU + kernel MM glue.
//
// This facade wires frames, page tables, TLBs, the LLC and the tier devices
// together and exposes:
//  - Access(): execute one user load/store, walking TLB -> PTE -> LLC ->
//    device, taking faults through policy-installed handlers, maintaining
//    hardware A/D bits, and returning the access's simulated latency,
//  - kernel primitives used by migration code: TLB shootdowns, page-copy
//    cost charging, map/unmap helpers, migration-window blocking,
//  - hooks: hint-fault handler (TPP promotion / NOMAD PCQ entry),
//    write-protect fault handler (NOMAD shadow fault), access observers
//    (PEBS sampling), kswapd wakeups and allocation-failure reclaim.
//
// Tiering policies (src/policy, src/nomad) are built exclusively on this
// interface; none of them reach around it, which keeps the comparison
// between TPP, Memtis and NOMAD apples-to-apples.
#ifndef SRC_MM_MEMORY_SYSTEM_H_
#define SRC_MM_MEMORY_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/mem/device.h"
#include "src/mem/platform.h"
#include "src/mm/address_space.h"
#include "src/mm/cache.h"
#include "src/mm/frame_pool.h"
#include "src/mm/lru.h"
#include "src/mm/tlb.h"
#include "src/obs/hist.h"
#include "src/obs/prof.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace nomad {

// Outcome details of one Access(), for observers and tests.
struct AccessInfo {
  Cycles latency = 0;
  Tier tier = Tier::kFast;
  bool llc_hit = false;
  bool tlb_hit = false;
  bool took_fault = false;
};

class MemorySystem {
 public:
  // Handles a hint (prot_none) fault. Must leave the PTE accessible (clear
  // prot_none or remap) before returning; returns cycles spent on top of
  // the fixed fault cost. This is where TPP promotes synchronously and
  // where NOMAD feeds its PCQ.
  using HintFaultHandler = std::function<Cycles(ActorId cpu, AddressSpace& as, Vpn vpn)>;

  // Handles a store hitting a non-writable PTE. Must make the PTE writable;
  // returns extra cycles. NOMAD's shadow page fault lives here.
  using WriteFaultHandler = std::function<Cycles(ActorId cpu, AddressSpace& as, Vpn vpn)>;

  // Observes every completed access (PEBS-style samplers subscribe).
  // tlb_miss matters because on CXL platforms PEBS only sees slow-tier
  // loads through dTLB-miss events.
  using AccessObserver =
      std::function<void(ActorId cpu, AddressSpace& as, Vpn vpn, uint64_t offset, bool is_write,
                         bool llc_miss, bool tlb_miss, Tier tier)>;

  MemorySystem(const PlatformSpec& platform, Engine* engine);

  // --- component access -----------------------------------------------
  const PlatformSpec& platform() const { return platform_; }
  Engine* engine() { return engine_; }
  FramePool& pool() { return pool_; }
  LruLists& lru(Tier t) { return *lru_[TierIndex(t)]; }
  MemoryDevice& device(Tier t) { return devices_[TierIndex(t)]; }
  LastLevelCache& llc() { return llc_; }
  CounterSet& counters() { return counters_; }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }
  // Cycle-attribution profiler, latency histograms and per-page ledger.
  // Like the trace sink these are fed per kernel event, and every feeding
  // call compiles away when tracing is off.
  Profiler& prof() { return prof_; }
  const Profiler& prof() const { return prof_; }
  HistogramSet& hists() { return hists_; }
  const HistogramSet& hists() const { return hists_; }
  ProvenanceLedger& provenance() { return prov_; }
  const ProvenanceLedger& provenance() const { return prov_; }
  Cycles Now() const { return engine_ ? engine_->now() : 0; }

  // Installs the (optional) fault injector. The MemorySystem owns it and
  // binds it to its trace sink and engine clock; components that consult it
  // (FramePool, TPM, PCQ) reach it through faults().
  void set_fault_injector(std::unique_ptr<FaultInjector> f);
  FaultInjector* faults() { return faults_.get(); }

  // Frames grabbed by ReserveFastFrames(): in use but intentionally
  // unmapped. The invariant checker excludes them from its transient-frame
  // budget.
  const std::vector<Pfn>& reserved_frames() const { return reserved_; }

  // Emits one trace record stamped with the current virtual time and the
  // actor being stepped. Compiles away entirely when tracing is off.
  void Trace(TraceEvent e, uint64_t arg, uint64_t value = 0) {
    if constexpr (kTracingEnabled) {
      trace_.Emit(e, Now(), engine_ ? static_cast<uint16_t>(engine_->current()) : uint16_t{0},
                  arg, value);
    } else {
      (void)e;
      (void)arg;
      (void)value;
    }
  }

  // Creates the TLB for a simulated CPU; id is the engine ActorId.
  void RegisterCpu(ActorId id);
  Tlb& tlb(ActorId id) { return *tlbs_[id]; }

  // --- setup-time mapping (no cycle charging) ---------------------------
  // Allocates a frame (preferred tier, standard fallback) and maps vpn to
  // it; the new page enters its node's inactive LRU list. Returns the PFN,
  // or kInvalidPfn on OOM.
  Pfn MapNewPage(AddressSpace& as, Vpn vpn, Tier preferred = Tier::kFast, bool writable = true);

  // Unmaps and frees the frame backing vpn (teardown / explicit demote
  // tooling). No-op when unmapped.
  void UnmapAndFree(AddressSpace& as, Vpn vpn);

  // Installs a fresh mapping vpn -> pfn for an already-allocated frame:
  // frame ownership, a clean PTE, inactive LRU membership. No counters,
  // traces, or kswapd wakeups — setup/tooling only. Layers outside mm/
  // must use this instead of writing PTE bits directly (lint rule NL001).
  void InstallMappingSilent(AddressSpace& as, Vpn vpn, Pfn pfn, bool writable);

  // Repoints an existing mapping at an already-allocated frame, carrying
  // LRU state across, invalidating TLBs and the old frame's cache lines,
  // and freeing the old frame. Same silent contract as above.
  void RepointMappingSilent(AddressSpace& as, Vpn vpn, Pfn new_pfn);

  // Grabs frames off the fast node to emulate pre-existing consumers (the
  // 10 GB pre-fill in Fig. 1's setup, the ~3-4 GB the OS occupies).
  void ReserveFastFrames(uint64_t frames);

  // --- the data path ----------------------------------------------------
  // One user access to byte `offset` of page `vpn`. `mlp` approximates
  // memory-level parallelism: the device-latency component is divided by
  // it (pointer chasing passes 1, streaming workloads more).
  Cycles Access(ActorId cpu, AddressSpace& as, Vpn vpn, uint64_t offset, bool is_write,
                unsigned mlp = 4, AccessInfo* info = nullptr);

  // --- kernel primitives (used by migrate.cc, nomad/tpm.cc, kswapd) -----
  // Direct PTE access (the "kernel" manipulates entries it owns).
  Pte* PteOf(AddressSpace& as, Vpn vpn) { return as.table().Lookup(vpn); }

  // Restores access after a NUMA-hint fault (the scanner set prot_none so
  // the next touch would fault). Policy layers call this instead of
  // flipping PTE bits themselves (lint rule NL001). Re-arms the frame as a
  // scan candidate: it just became armable again.
  void ResolveHintFault(Pte& pte) {
    pte.prot_none = false;
    pool_.NoteScanCandidate(pte.pfn);
  }

  // Invalidates vpn on every CPU in as's cpumask and charges the initiator;
  // remote CPUs get an IPI service penalty via the engine. Returns the
  // initiator-side cost.
  Cycles TlbShootdown(AddressSpace& as, Vpn vpn);

  // Charges a 4 KB page copy from `from` to `to` against both devices and
  // returns its duration.
  Cycles CopyPageCost(Tier from, Tier to);

  // Marks a migration window on (as,vpn) ending at `end`. State changes in
  // the simulator are atomic within an actor step, so a concurrent accessor
  // cannot observe the page half-migrated; instead, its TLB-miss walk finds
  // the window and blocks until `end`. This is what puts TPP's synchronous
  // migration on the critical path of *every* thread touching the page.
  void BeginMigrationWindow(AddressSpace& as, Vpn vpn, Cycles end);

  // --- hooks -------------------------------------------------------------
  void set_hint_fault_handler(HintFaultHandler h) { hint_fault_ = std::move(h); }
  void set_write_fault_handler(WriteFaultHandler h) { write_fault_ = std::move(h); }
  void add_access_observer(AccessObserver o) { observers_.push_back(std::move(o)); }
  void set_kswapd_waker(std::function<void(Tier)> w) { kswapd_waker_ = std::move(w); }

  // Counts of useful user bytes moved, for bandwidth accounting.
  uint64_t user_bytes() const { return user_bytes_; }

 private:
  // Demand-zero fault: first touch of an unmapped page.
  Cycles DemandFault(ActorId cpu, AddressSpace& as, Vpn vpn);

  PlatformSpec platform_;
  Engine* engine_;
  FramePool pool_;
  std::unique_ptr<LruLists> lru_[kNumTiers];
  MemoryDevice devices_[kNumTiers];
  LastLevelCache llc_;
  // Dense ActorId-indexed registry (ids are small engine indices); null for
  // non-CPU actors. Replaced a std::map whose per-access .at() lookup showed
  // up in the profile.
  std::vector<std::unique_ptr<Tlb>> tlbs_;
  CounterSet counters_;
  TraceSink trace_;
  Profiler prof_;
  HistogramSet hists_;
  ProvenanceLedger prov_;
  std::unique_ptr<FaultInjector> faults_;

  HintFaultHandler hint_fault_;
  WriteFaultHandler write_fault_;
  std::vector<AccessObserver> observers_;
  std::function<void(Tier)> kswapd_waker_;

  // (as pointer, vpn) -> window end time, plus a FIFO for expiry pruning.
  using WindowKey = std::pair<const AddressSpace*, Vpn>;
  std::map<WindowKey, Cycles> migration_windows_;
  std::vector<std::pair<Cycles, WindowKey>> window_fifo_;
  size_t window_fifo_head_ = 0;

  std::vector<Pfn> reserved_;
  uint64_t user_bytes_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_MEMORY_SYSTEM_H_
