// MemorySystem: the simulated machine's MMU + kernel MM glue.
//
// This facade wires frames, page tables, TLBs, the LLC and the tier devices
// together and exposes:
//  - Access(): execute one user load/store, walking TLB -> PTE -> LLC ->
//    device, taking faults through policy-installed handlers, maintaining
//    hardware A/D bits, and returning the access's simulated latency,
//  - kernel primitives used by migration code: TLB shootdowns, page-copy
//    cost charging, map/unmap helpers, migration-window blocking,
//  - hooks: hint-fault handler (TPP promotion / NOMAD PCQ entry),
//    write-protect fault handler (NOMAD shadow fault), access observers
//    (PEBS sampling), kswapd wakeups and allocation-failure reclaim.
//
// Tiering policies (src/policy, src/nomad) are built exclusively on this
// interface; none of them reach around it, which keeps the comparison
// between TPP, Memtis and NOMAD apples-to-apples.
#ifndef SRC_MM_MEMORY_SYSTEM_H_
#define SRC_MM_MEMORY_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/base/annotations.h"
#include "src/check/check.h"
#include "src/fault/fault_injector.h"
#include "src/mem/device.h"
#include "src/mem/platform.h"
#include "src/mm/address_space.h"
#include "src/mm/cache.h"
#include "src/mm/frame_pool.h"
#include "src/mm/lru.h"
#include "src/mm/tlb.h"
#include "src/obs/hist.h"
#include "src/obs/prof.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/sim/engine.h"
#include "src/sim/stats.h"

namespace nomad {

// Outcome details of one Access(), for observers and tests.
struct AccessInfo {
  Cycles latency = 0;
  Tier tier = Tier::kFast;
  bool llc_hit = false;
  bool tlb_hit = false;
  bool took_fault = false;
};

class NOMAD_SHARD_CONFINED MemorySystem {
 public:
  // Handles a hint (prot_none) fault. Must leave the PTE accessible (clear
  // prot_none or remap) before returning; returns cycles spent on top of
  // the fixed fault cost. This is where TPP promotes synchronously and
  // where NOMAD feeds its PCQ.
  using HintFaultHandler = std::function<Cycles(ActorId cpu, AddressSpace& as, Vpn vpn)>;

  // Handles a store hitting a non-writable PTE. Must make the PTE writable;
  // returns extra cycles. NOMAD's shadow page fault lives here.
  using WriteFaultHandler = std::function<Cycles(ActorId cpu, AddressSpace& as, Vpn vpn)>;

  // Observes every completed access (PEBS-style samplers subscribe).
  // tlb_miss matters because on CXL platforms PEBS only sees slow-tier
  // loads through dTLB-miss events.
  using AccessObserver =
      std::function<void(ActorId cpu, AddressSpace& as, Vpn vpn, uint64_t offset, bool is_write,
                         bool llc_miss, bool tlb_miss, Tier tier)>;

  MemorySystem(const PlatformSpec& platform, Engine* engine);

  // --- component access -----------------------------------------------
  const PlatformSpec& platform() const { return platform_; }
  Engine* engine() { return engine_; }
  FramePool& pool() { return pool_; }
  LruLists& lru(Tier t) { return *lru_[TierIndex(t)]; }
  MemoryDevice& device(Tier t) { return devices_[TierIndex(t)]; }
  LastLevelCache& llc() { return llc_; }
  CounterSet& counters() { return counters_; }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }
  // Cycle-attribution profiler, latency histograms and per-page ledger.
  // Like the trace sink these are fed per kernel event, and every feeding
  // call compiles away when tracing is off.
  Profiler& prof() { return prof_; }
  const Profiler& prof() const { return prof_; }
  HistogramSet& hists() { return hists_; }
  const HistogramSet& hists() const { return hists_; }
  ProvenanceLedger& provenance() { return prov_; }
  const ProvenanceLedger& provenance() const { return prov_; }
  Cycles Now() const { return engine_ ? engine_->now() : 0; }

  // Installs the (optional) fault injector. The MemorySystem owns it and
  // binds it to its trace sink and engine clock; components that consult it
  // (FramePool, TPM, PCQ) reach it through faults().
  void set_fault_injector(std::unique_ptr<FaultInjector> f);
  FaultInjector* faults() { return faults_.get(); }

  // Frames grabbed by ReserveFastFrames(): in use but intentionally
  // unmapped. The invariant checker excludes them from its transient-frame
  // budget.
  const std::vector<Pfn>& reserved_frames() const { return reserved_; }

  // Emits one trace record stamped with the current virtual time and the
  // actor being stepped. Compiles away entirely when tracing is off.
  void Trace(TraceEvent e, uint64_t arg, uint64_t value = 0) {
    if constexpr (kTracingEnabled) {
      trace_.Emit(e, Now(), engine_ ? static_cast<uint16_t>(engine_->current()) : uint16_t{0},
                  arg, value);
    } else {
      (void)e;
      (void)arg;
      (void)value;
    }
  }

  // Migration-lifecycle span links (the mig_* trace events). Off by
  // default: span records land in the trace ring and its summary counts,
  // and the fixed-seed goldens are captured without them. trace_query
  // --span needs them on (nomadsim/chaos_sim --spans).
  void set_span_tracing(bool on) { spans_enabled_ = on; }
  bool span_tracing() const {
    if constexpr (kTracingEnabled) {
      return spans_enabled_;
    } else {
      return false;
    }
  }

  // Emits one migration-lifecycle span record (`value` carries the
  // migration transaction id). Gated on span_tracing(); compiles away
  // entirely when tracing is off.
  void TraceSpan(TraceEvent e, uint64_t arg, uint64_t mig_id) {
    if constexpr (kTracingEnabled) {
      if (spans_enabled_) {
        Trace(e, arg, mig_id);
      }
    } else {
      (void)e;
      (void)arg;
      (void)mig_id;
    }
  }

  // Creates the TLB for a simulated CPU; id is the engine ActorId.
  void RegisterCpu(ActorId id);
  Tlb& tlb(ActorId id) { return *tlbs_[id]; }

  // --- setup-time mapping (no cycle charging) ---------------------------
  // Allocates a frame (preferred tier, standard fallback) and maps vpn to
  // it; the new page enters its node's inactive LRU list. Returns the PFN,
  // or kInvalidPfn on OOM.
  Pfn MapNewPage(AddressSpace& as, Vpn vpn, Tier preferred = Tier::kFast, bool writable = true);

  // Unmaps and frees the frame backing vpn (teardown / explicit demote
  // tooling). No-op when unmapped.
  void UnmapAndFree(AddressSpace& as, Vpn vpn);

  // Installs a fresh mapping vpn -> pfn for an already-allocated frame:
  // frame ownership, a clean PTE, inactive LRU membership. No counters,
  // traces, or kswapd wakeups — setup/tooling only. Layers outside mm/
  // must use this instead of writing PTE bits directly (lint rule NL001).
  void InstallMappingSilent(AddressSpace& as, Vpn vpn, Pfn pfn, bool writable);

  // Repoints an existing mapping at an already-allocated frame, carrying
  // LRU state across, invalidating TLBs and the old frame's cache lines,
  // and freeing the old frame. Same silent contract as above.
  void RepointMappingSilent(AddressSpace& as, Vpn vpn, Pfn new_pfn);

  // Grabs frames off the fast node to emulate pre-existing consumers (the
  // 10 GB pre-fill in Fig. 1's setup, the ~3-4 GB the OS occupies).
  void ReserveFastFrames(uint64_t frames);

  // --- the data path ----------------------------------------------------
  // One user access to byte `offset` of page `vpn`. `mlp` approximates
  // memory-level parallelism: the device-latency component is divided by
  // it (pointer chasing passes 1, streaming workloads more).
  Cycles Access(ActorId cpu, AddressSpace& as, Vpn vpn, uint64_t offset, bool is_write,
                unsigned mlp = 4, AccessInfo* info = nullptr);

  // One queued access of an AccessBatch submission.
  struct BatchAccess {
    Vpn vpn = 0;
    uint64_t offset = 0;
    bool is_write = false;
  };

  // Executes `n` accesses in order for one CPU — exactly equivalent to n
  // Access() calls (same state mutations in the same order, so metrics are
  // byte-identical) — writing each access's latency into lat_out[i] and
  // returning the sum. The common case (TLB hit, no dirty-bit assist, no
  // PEBS observers) resolves fully inline: TLB probe, LLC lookup, device
  // charge. Everything else — walks, faults, migration windows, policy
  // hooks, observers — falls out to the out-of-line resolver per access.
  // Non-virtual and header-inline so workload Step loops amortize engine
  // dispatch over the whole batch.
  Cycles AccessBatch(ActorId cpu, AddressSpace& as, const BatchAccess* ops, size_t n,
                     unsigned mlp, Cycles* lat_out);

  // --- kernel primitives (used by migrate.cc, nomad/tpm.cc, kswapd) -----
  // Direct PTE access (the "kernel" manipulates entries it owns).
  Pte* PteOf(AddressSpace& as, Vpn vpn) { return as.table().Lookup(vpn); }

  // Restores access after a NUMA-hint fault (the scanner set prot_none so
  // the next touch would fault). Policy layers call this instead of
  // flipping PTE bits themselves (lint rule NL001). Re-arms the frame as a
  // scan candidate: it just became armable again.
  void ResolveHintFault(Pte& pte) {
    pte.prot_none = false;
    pool_.NoteScanCandidate(pte.pfn);
  }

  // Invalidates vpn on every CPU in as's cpumask and charges the initiator;
  // remote CPUs get an IPI service penalty via the engine. Returns the
  // initiator-side cost.
  Cycles TlbShootdown(AddressSpace& as, Vpn vpn);

  // Charges a 4 KB page copy from `from` to `to` against both devices and
  // returns its duration.
  Cycles CopyPageCost(Tier from, Tier to);

  // Marks a migration window on (as,vpn) ending at `end`. State changes in
  // the simulator are atomic within an actor step, so a concurrent accessor
  // cannot observe the page half-migrated; instead, its TLB-miss walk finds
  // the window and blocks until `end`. This is what puts TPP's synchronous
  // migration on the critical path of *every* thread touching the page.
  void BeginMigrationWindow(AddressSpace& as, Vpn vpn, Cycles end);

  // --- hooks -------------------------------------------------------------
  void set_hint_fault_handler(HintFaultHandler h) { hint_fault_ = std::move(h); }
  void set_write_fault_handler(WriteFaultHandler h) { write_fault_ = std::move(h); }
  void add_access_observer(AccessObserver o) { observers_.push_back(std::move(o)); }
  void set_kswapd_waker(std::function<void(Tier)> w) { kswapd_waker_ = std::move(w); }

  // Counts of useful user bytes moved, for bandwidth accounting.
  uint64_t user_bytes() const { return user_bytes_; }

 private:
  // Demand-zero fault: first touch of an unmapped page.
  Cycles DemandFault(ActorId cpu, AddressSpace& as, Vpn vpn);

  // Everything past the TLB probe: dirty-bit assists, page walks, faults,
  // migration-window blocking, the physical access, observers. `entry` is
  // the probe's result (possibly null); the probe is NOT repeated here —
  // TLB ticks advance exactly once per access. Defined inline below: with
  // ~80% of micro-workload accesses missing the TLB, this IS the hot path,
  // and the cross-TU call (plus the out-of-line Tlb::Fill it prevented the
  // compiler from inlining) was measurable.
  Cycles AccessResolved(ActorId cpu, AddressSpace& as, Tlb& tlb, Tlb::Entry* entry, Vpn vpn,
                        uint64_t offset, bool is_write, unsigned mlp, AccessInfo* info);

  PlatformSpec platform_;
  Engine* engine_;
  FramePool pool_;
  std::unique_ptr<LruLists> lru_[kNumTiers];
  MemoryDevice devices_[kNumTiers];
  LastLevelCache llc_;
  // Dense ActorId-indexed registry (ids are small engine indices); null for
  // non-CPU actors. Replaced a std::map whose per-access .at() lookup showed
  // up in the profile.
  std::vector<std::unique_ptr<Tlb>> tlbs_;
  CounterSet counters_;
  TraceSink trace_;
  Profiler prof_;
  HistogramSet hists_;
  ProvenanceLedger prov_;
  std::unique_ptr<FaultInjector> faults_;
  bool spans_enabled_ = false;

  HintFaultHandler hint_fault_;
  WriteFaultHandler write_fault_;
  std::vector<AccessObserver> observers_;
  std::function<void(Tier)> kswapd_waker_;

  // (as pointer, vpn) -> window end time, plus a FIFO for expiry pruning.
  using WindowKey = std::pair<const AddressSpace*, Vpn>;
  std::map<WindowKey, Cycles> migration_windows_;
  std::vector<std::pair<Cycles, WindowKey>> window_fifo_;
  size_t window_fifo_head_ = 0;
  // 64-bit membership summary over the live windows' VPNs. Every TLB miss
  // used to probe the window map; under tpp that was ~1.8M tree finds per
  // 2M ops, nearly all misses. A lookup whose filter bit is clear cannot be
  // in the map (bits are set on insert and the filter is only zeroed when
  // the map empties — which the pruning keeps frequent), so the common case
  // is one multiply and an AND. False positives just fall through to find.
  uint64_t window_filter_ = 0;
  static uint64_t WindowFilterBit(Vpn vpn) {
    return uint64_t{1} << ((vpn * uint64_t{0x9e3779b97f4a7c15}) >> 58);
  }

  // Device-contention fault opportunity, consulted once per LLC-miss
  // device access. This is THE per-access fault decision point, and it is
  // deliberately a single shared helper: the scalar path (AccessResolved)
  // and the batched fast path (AccessBatch) must consult the injector at
  // exactly the same opportunities, in the same order, or a K=1 and a K=8
  // execution of the same access stream would draw different fault
  // schedules (tests/mm/batch_fault_test.cc proves they do not). Compiles
  // to nothing with -DNOMAD_ENABLE_FAULTS=OFF and costs one predictable
  // null check when no injector is installed.
  Cycles AccessFaultLatency() {
    if constexpr (kFaultInjectionEnabled) {
      if (faults_ != nullptr && faults_->ShouldInject(FaultKind::kLatencySpike)) {
        counters_.Add(cnt::kFaultInjLatencySpike, 1);
        return faults_->LatencyFor(FaultKind::kLatencySpike);
      }
    }
    return 0;
  }

  // Counter slots charged on the access fast path, resolved on first use
  // instead of per-event string lookups (CounterSet references are stable
  // and this set is never Reset()). Lazy on purpose: creating them eagerly
  // would add zero-valued counters to runs that never take such a fault,
  // changing exported metrics bytes.
  uint64_t& FaultSlot(uint64_t*& slot, std::string_view name) {
    if (slot == nullptr) {
      slot = &counters_.At(name);
    }
    return *slot;
  }
  uint64_t* cnt_fault_demand_ = nullptr;
  uint64_t* cnt_tlb_shootdown_ = nullptr;
  uint64_t* cnt_tlb_shootdown_ipis_ = nullptr;
  uint64_t* cnt_fault_hint_ = nullptr;
  uint64_t* cnt_fault_write_protect_ = nullptr;
  uint64_t* cnt_fault_migration_block_ = nullptr;
  uint64_t* cnt_fault_unresolved_ = nullptr;

  std::vector<Pfn> reserved_;
  uint64_t user_bytes_ = 0;
};

inline Cycles MemorySystem::AccessResolved(ActorId cpu, AddressSpace& as, Tlb& tlb,
                                           Tlb::Entry* entry, Vpn vpn, uint64_t offset,
                                           bool is_write, unsigned mlp, AccessInfo* info) {
  const KernelCosts& costs = platform_.costs;
  Cycles total = 0;
  bool tlb_hit = false;
  bool took_fault = false;
  Pfn pfn = kInvalidPfn;

  if (entry && (!is_write || entry->writable)) {
    tlb_hit = true;
    pfn = entry->pfn;
    if (is_write && !entry->dirty) {
      // Microcode A/D assist: set the PTE dirty bit on first store through
      // a clean cached translation.
      Pte* pte = as.table().Lookup(vpn);
      NOMAD_CHECK(pte != nullptr, "tlb entry with no pte, vpn=", vpn, " pfn=", entry->pfn);
      pte->dirty = true;
      pte->accessed = true;
      entry->dirty = true;
      total += costs.pte_update;
    }
  } else {
    // TLB miss (or a store through a read-only cached entry): walk.
    total += costs.page_walk;
    // A migration in flight on this page blocks the walk until it ends;
    // the unmap's shootdown guarantees concurrent users take this path.
    if ((window_filter_ & WindowFilterBit(vpn)) != 0) {
      auto it = migration_windows_.find({&as, vpn});
      if (it != migration_windows_.end()) {
        const Cycles now = Now() + total;
        if (it->second > now) {
          total += it->second - now;
          total += costs.page_fault;  // discovered via a fault on the locked page
          ++FaultSlot(cnt_fault_migration_block_, cnt::kFaultMigrationBlock);
          took_fault = true;
        }
        migration_windows_.erase(it);
        if (migration_windows_.empty()) {
          window_filter_ = 0;
        }
      }
    }
    Pte* pte = as.table().Lookup(vpn);
    int guard = 0;
    while (true) {
      if (guard++ > 6) {
        // A fault handler failed to make progress; force-map to keep the
        // simulation alive and count the anomaly.
        ++FaultSlot(cnt_fault_unresolved_, cnt::kFaultUnresolved);
        if (!pte || !pte->present) {
          DemandFault(cpu, as, vpn);
          pte = as.table().Lookup(vpn);
        }
        pte->prot_none = false;
        pte->writable = true;
        pool_.NoteScanCandidate(pte->pfn);
        break;
      }
      if (!pte || !pte->present) {
        took_fault = true;
        total += costs.page_fault;
        total += DemandFault(cpu, as, vpn);
        pte = as.table().Lookup(vpn);
        continue;
      }
      if (pte->prot_none) {
        took_fault = true;
        total += costs.page_fault;
        ++FaultSlot(cnt_fault_hint_, cnt::kFaultHint);
        if (hint_fault_) {
          total += hint_fault_(cpu, as, vpn);
        } else {
          pte->prot_none = false;
          pool_.NoteScanCandidate(pte->pfn);
        }
        pte = as.table().Lookup(vpn);
        continue;
      }
      if (is_write && !pte->writable) {
        took_fault = true;
        total += costs.page_fault;
        ++FaultSlot(cnt_fault_write_protect_, cnt::kFaultWriteProtect);
        if (write_fault_) {
          total += write_fault_(cpu, as, vpn);
        } else {
          pte->writable = true;
        }
        continue;
      }
      break;
    }
    pte->accessed = true;
    if (is_write) {
      pte->dirty = true;
    }
    pfn = pte->pfn;
    entry = &tlb.Fill(vpn, pfn, pte->writable, pte->dirty);
  }

  // Physical access: LLC, then the tier device on a miss.
  const Tier tier = pool_.TierOf(pfn);
  const uint64_t paddr = pfn * kPageSize + (offset % kPageSize);
  const bool llc_hit = llc_.Access(paddr);
  if (llc_hit) {
    total += costs.llc_hit;
  } else {
    const Cycles now = Now() + total;
    const Cycles dev = is_write ? device(tier).Write(now, kCacheLineSize)
                                : device(tier).Read(now, kCacheLineSize);
    const unsigned mlp_div = mlp < 1 ? 1 : mlp;
    Cycles c = dev / mlp_div;
    if (c < 1) {
      c = 1;
    }
    // Demand-traffic contention spike (same decision point as the batched
    // fast path — see AccessFaultLatency).
    c += AccessFaultLatency();
    total += c;
  }
  user_bytes_ += kCacheLineSize;

  for (const AccessObserver& obs : observers_) {
    obs(cpu, as, vpn, offset % kPageSize, is_write, !llc_hit, !tlb_hit, tier);
  }
  if (info) {
    info->latency = total;
    info->tier = tier;
    info->llc_hit = llc_hit;
    info->tlb_hit = tlb_hit;
    info->took_fault = took_fault;
  }
  return total;
}

inline Cycles MemorySystem::AccessBatch(ActorId cpu, AddressSpace& as, const BatchAccess* ops,
                                        size_t n, unsigned mlp, Cycles* lat_out) {
  as.NoteCpu(cpu);
  Tlb& tlb = *tlbs_.at(cpu);
  const Cycles llc_hit_cost = platform_.costs.llc_hit;
  const bool slow_observers = !observers_.empty();
  const unsigned mlp_div = mlp < 1 ? 1 : mlp;
  const PageTable& table = as.table();
  // Batched execution lets us overlap the host-memory latency of the model
  // structures for upcoming accesses with the work of the current one, in
  // two stages: a far stage pulls in the TLB set and PTE leaf, and a near
  // stage peeks the (by now cached) PTE to prefetch the physically-indexed
  // LLC set and frame-flags word behind the likely translation. A peek that
  // turns out stale (an earlier access in the batch remapped the page) only
  // wastes a prefetch. Prefetching touches no simulated state, so results
  // are bit-for-bit those of unbatched execution.
  constexpr size_t kFarAhead = 8;
  constexpr size_t kNearAhead = 3;
  const uint32_t* flag_words = pool_.table().flags_data();
  const auto near_prefetch = [&](size_t j) {
    const Pte* pte = table.PeekPte(ops[j].vpn);
    if (pte != nullptr && pte->present) {
      const Pfn pf = pte->pfn;
      llc_.PrefetchSet(pf * kPageSize + (ops[j].offset % kPageSize));
      __builtin_prefetch(flag_words + pf);
    }
  };
  for (size_t i = 0, e = n < kFarAhead ? n : kFarAhead; i < e; i++) {
    tlb.PrefetchSet(ops[i].vpn);
    table.PrefetchPte(ops[i].vpn);
  }
  for (size_t i = 0, e = n < kNearAhead ? n : kNearAhead; i < e; i++) {
    near_prefetch(i);
  }
  Cycles total = 0;
  for (size_t i = 0; i < n; i++) {
    if (i + kFarAhead < n) {
      tlb.PrefetchSet(ops[i + kFarAhead].vpn);
      table.PrefetchPte(ops[i + kFarAhead].vpn);
    }
    if (i + kNearAhead < n) {
      near_prefetch(i + kNearAhead);
    }
    const Vpn vpn = ops[i].vpn;
    const bool is_write = ops[i].is_write;
    Cycles c;
    Tlb::Entry* entry = tlb.Lookup(vpn);
    if (entry != nullptr && (!is_write || (entry->writable && entry->dirty)) &&
        !slow_observers) {
      // Fast path: cached translation needing no PTE update. Identical
      // state mutations, in identical order, to the hit path of
      // AccessResolved — LLC set, device channel, user-byte count.
      const Pfn pfn = entry->pfn;
      const uint64_t paddr = pfn * kPageSize + (ops[i].offset % kPageSize);
      if (llc_.Access(paddr)) {
        c = llc_hit_cost;
      } else {
        const Tier tier = pool_.TierOf(pfn);
        const Cycles dev = is_write ? devices_[TierIndex(tier)].Write(Now(), kCacheLineSize)
                                    : devices_[TierIndex(tier)].Read(Now(), kCacheLineSize);
        c = dev / mlp_div;
        if (c < 1) {
          c = 1;
        }
        // Same fault decision point as the scalar path: without this, a
        // batched run would skip the injector exactly on its fast-path
        // accesses and the fault schedule would depend on K.
        c += AccessFaultLatency();
      }
      user_bytes_ += kCacheLineSize;
    } else {
      c = AccessResolved(cpu, as, tlb, entry, vpn, ops[i].offset, is_write, mlp, nullptr);
    }
    lat_out[i] = c;
    total += c;
  }
  return total;
}

}  // namespace nomad

#endif  // SRC_MM_MEMORY_SYSTEM_H_
