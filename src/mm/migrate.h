// Linux-style synchronous page migration.
//
// The 3-step unmap-copy-remap procedure of sec. 2.2: lock & unmap the PTE,
// shoot down TLBs, copy the page across tiers, remap. The page is
// inaccessible for the whole copy, which is what NOMAD's transactional
// migration avoids. TPP's promotion, kswapd's demotion and NOMAD's
// multi-mapped fallback all call this.
#ifndef SRC_MM_MIGRATE_H_
#define SRC_MM_MIGRATE_H_

#include "src/mm/memory_system.h"

namespace nomad {

struct MigrateResult {
  bool success = false;
  Cycles cycles = 0;  // charged to the calling actor
};

// Synchronously migrates the page at (as, vpn) to tier `dst`. Fails when
// the destination node has no free frame or the page is unmapped. On
// success the old frame is freed (exclusive tiering) and the page keeps its
// LRU temperature on the destination node. A migration window covering the
// copy is registered so concurrent accessors stall.
MigrateResult MigratePageSync(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier dst);

// migrate_pages()-like wrapper: retries a failing migration up to
// `max_attempts` (Linux uses 10), accumulating the wasted cycles. TPP's
// promotion path uses this, which is one reason failed promotions are so
// expensive on the critical path.
MigrateResult MigratePageWithRetry(MemorySystem& ms, AddressSpace& as, Vpn vpn, Tier dst,
                                   int max_attempts = 10);

}  // namespace nomad

#endif  // SRC_MM_MIGRATE_H_
