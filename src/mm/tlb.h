// Per-CPU TLB model.
//
// TPM's transaction (Fig. 3) depends on precise TLB semantics: after the
// dirty bit is cleared, stale TLB entries marked dirty+writable would let
// stores bypass the PTE dirty-bit update, so TPM issues a shootdown "to
// ensure that subsequent writes to the page can be recorded on the PTE".
// The model reproduces this: a cached entry with dirty=1 absorbs writes
// without touching the PTE; only a walk (TLB miss) or a write through a
// clean entry updates the PTE.
//
// Structure: set-associative, 4-way, LRU within a set.
#ifndef SRC_MM_TLB_H_
#define SRC_MM_TLB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/mm/pte.h"

namespace nomad {

class Tlb {
 public:
  struct Entry {
    Vpn vpn = kInvalidVpn;
    Pfn pfn = kInvalidPfn;
    bool valid = false;
    bool writable = false;
    bool dirty = false;   // the cached D bit: writes through a dirty entry
                          // do not update the PTE
    uint64_t last_use = 0;
  };

  // num_entries is rounded up to a multiple of kWays.
  explicit Tlb(size_t num_entries);

  // Returns the cached translation or nullptr on miss. Inline: this sits
  // on the per-access fast path (MemorySystem::AccessBatch).
  Entry* Lookup(Vpn vpn) {
    tick_++;
    const size_t base = SetOf(vpn);
    for (size_t w = 0; w < kWays; w++) {
      Entry& e = entries_[base + w];
      if (e.valid && e.vpn == vpn) {
        e.last_use = tick_;
        hits_++;
        return &e;
      }
    }
    misses_++;
    return nullptr;
  }

  // Installs a translation after a walk, evicting the set's LRU victim.
  // Inline: every TLB miss on the access fast path ends in a Fill.
  Entry& Fill(Vpn vpn, Pfn pfn, bool writable, bool dirty) {
    const size_t base = SetOf(vpn);
    size_t victim = base;
    for (size_t w = 0; w < kWays; w++) {
      Entry& e = entries_[base + w];
      if (e.valid && e.vpn == vpn) {
        victim = base + w;  // refresh a stale entry in place (e.g. after a
        break;              // permission upgrade) instead of duplicating it
      }
      if (!e.valid) {
        victim = base + w;
        continue;
      }
      if (entries_[victim].valid && e.last_use < entries_[victim].last_use) {
        victim = base + w;
      }
    }
    Entry& e = entries_[victim];
    e.vpn = vpn;
    e.pfn = pfn;
    e.valid = true;
    e.writable = writable;
    e.dirty = dirty;
    e.last_use = ++tick_;
    return e;
  }

  // Hints the host CPU to pull vpn's set into cache ahead of a Lookup.
  // Pure prefetch: touches no simulator state, so issuing (or dropping) it
  // cannot change simulated results.
  void PrefetchSet(Vpn vpn) const { __builtin_prefetch(&entries_[SetOf(vpn)], 1); }

  // Single-page invalidation (one INVLPG / one shootdown target page).
  void Invalidate(Vpn vpn);

  void InvalidateAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t num_entries() const { return entries_.size(); }

 private:
  static constexpr size_t kWays = 4;

  size_t SetOf(Vpn vpn) const { return (vpn % num_sets_) * kWays; }

  std::vector<Entry> entries_;
  size_t num_sets_ = 1;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_TLB_H_
