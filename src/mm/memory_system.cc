#include "src/mm/memory_system.h"

#include <algorithm>

#include "src/check/check.h"
#include "src/obs/event_registry.h"

namespace nomad {

MemorySystem::MemorySystem(const PlatformSpec& platform, Engine* engine)
    : platform_(platform),
      engine_(engine),
      pool_(platform),
      llc_(platform.llc_bytes) {
  for (int t = 0; t < kNumTiers; t++) {
    lru_[t] = std::make_unique<LruLists>(&pool_);
    devices_[t] = MemoryDevice(platform.tiers[t]);
  }
}

void MemorySystem::set_fault_injector(std::unique_ptr<FaultInjector> f) {
  faults_ = std::move(f);
  if (faults_) {
    faults_->Bind(&trace_, engine_);
    pool_.set_fault_injector(faults_.get());
  } else {
    pool_.set_fault_injector(nullptr);
  }
}

void MemorySystem::RegisterCpu(ActorId id) {
  // Real TLBs hold ~1.5K 4 KB entries against 16 GB of DRAM; scale the
  // entry count with the platform scale so reach ratios are preserved.
  size_t entries = std::max<uint64_t>(16, 1536 / platform_.scale.denom);
  if (tlbs_.size() <= id) {
    tlbs_.resize(id + 1);
  }
  tlbs_[id] = std::make_unique<Tlb>(entries);
}

Pfn MemorySystem::MapNewPage(AddressSpace& as, Vpn vpn, Tier preferred, bool writable) {
  Pfn pfn = pool_.Alloc(preferred);
  if (pfn == kInvalidPfn) {
    counters_.Add(cnt::kOom, 1);
    return kInvalidPfn;
  }
  PageFrame f = pool_.frame(pfn);
  f.set_owner(&as);
  f.set_vpn(vpn);
  Pte& pte = as.table().Ensure(vpn);
  pte = Pte{};
  pte.pfn = pfn;
  pte.present = true;
  pte.writable = writable;
  pool_.NoteScanCandidate(pfn);
  lru(f.tier()).AddInactive(pfn);
  if (kswapd_waker_ && pool_.BelowLowWatermark(f.tier())) {
    kswapd_waker_(f.tier());
  }
  return pfn;
}

void MemorySystem::InstallMappingSilent(AddressSpace& as, Vpn vpn, Pfn pfn, bool writable) {
  PageFrame f = pool_.frame(pfn);
  f.set_owner(&as);
  f.set_vpn(vpn);
  Pte& pte = as.table().Ensure(vpn);
  pte = Pte{};
  pte.pfn = pfn;
  pte.present = true;
  pte.writable = writable;
  pool_.NoteScanCandidate(pfn);
  lru(f.tier()).AddInactive(pfn);
}

void MemorySystem::RepointMappingSilent(AddressSpace& as, Vpn vpn, Pfn new_pfn) {
  Pte* pte = as.table().Lookup(vpn);
  if (pte == nullptr || !pte->present) {
    return;
  }
  const Pfn old_pfn = pte->pfn;
  PageFrame old_frame = pool_.frame(old_pfn);
  PageFrame new_frame = pool_.frame(new_pfn);
  new_frame.set_owner(&as);
  new_frame.set_vpn(vpn);
  new_frame.set_referenced(old_frame.referenced());
  new_frame.set_active(old_frame.active());
  lru(old_frame.tier()).Remove(old_pfn);
  if (new_frame.active()) {
    lru(new_frame.tier()).AddActive(new_pfn);
  } else {
    lru(new_frame.tier()).AddInactive(new_pfn);
  }
  pte->pfn = new_pfn;
  pool_.NoteScanCandidate(new_pfn);
  for (ActorId cpu : as.cpus()) {
    tlb(cpu).Invalidate(vpn);
  }
  llc_.InvalidatePage(old_pfn);
  pool_.Free(old_pfn);
}

void MemorySystem::UnmapAndFree(AddressSpace& as, Vpn vpn) {
  Pte* pte = as.table().Lookup(vpn);
  if (!pte || !pte->present) {
    return;
  }
  Pfn pfn = pte->pfn;
  for (auto& tlb : tlbs_) {
    if (tlb) {
      tlb->Invalidate(vpn);
    }
  }
  llc_.InvalidatePage(pfn);
  lru(pool_.TierOf(pfn)).Remove(pfn);
  pool_.Free(pfn);
  *pte = Pte{};
}

void MemorySystem::ReserveFastFrames(uint64_t frames) {
  for (uint64_t i = 0; i < frames; i++) {
    Pfn pfn = pool_.AllocOn(Tier::kFast);
    if (pfn == kInvalidPfn) {
      break;
    }
    reserved_.push_back(pfn);
  }
}

Cycles MemorySystem::TlbShootdown(AddressSpace& as, Vpn vpn) {
  const ActorId self = engine_ ? engine_->current() : ~ActorId{0};
  uint64_t remote_targets = 0;
  for (ActorId cpu : as.cpus()) {
    if (cpu < tlbs_.size() && tlbs_[cpu]) {
      tlbs_[cpu]->Invalidate(vpn);
    }
    if (cpu != self) {
      remote_targets++;
      if (engine_) {
        engine_->Penalize(cpu, platform_.costs.ipi_remote_penalty);
      }
    }
  }
  ++FaultSlot(cnt_tlb_shootdown_, cnt::kTlbShootdown);
  FaultSlot(cnt_tlb_shootdown_ipis_, cnt::kTlbShootdownIpis) += remote_targets;
  Cycles cost = platform_.costs.tlb_shootdown_base +
                platform_.costs.tlb_shootdown_per_cpu * remote_targets;
  if constexpr (kFaultInjectionEnabled) {
    // A straggling ack: one responder's IPI sits in a long interrupt-off
    // region, stretching the initiator's wait.
    if (faults_ && faults_->ShouldInject(FaultKind::kTlbDelay)) {
      cost += faults_->LatencyFor(FaultKind::kTlbDelay);
      counters_.Add(cnt::kFaultInjTlbDelay, 1);
    }
  }
  return cost;
}

Cycles MemorySystem::CopyPageCost(Tier from, Tier to) {
  const Cycles now = Now();
  Cycles r = device(from).Read(now, kPageSize);
  Cycles w = device(to).Write(now, kPageSize);
  // The copy loop pipelines reads and writes; the slower side dominates.
  Cycles cost = std::max(r, w);
  if constexpr (kFaultInjectionEnabled) {
    // Device contention spike: the copy collides with a burst of demand
    // traffic on one of the tiers.
    if (faults_ && faults_->ShouldInject(FaultKind::kLatencySpike)) {
      cost += faults_->LatencyFor(FaultKind::kLatencySpike);
      counters_.Add(cnt::kFaultInjLatencySpike, 1);
    }
  }
  return cost;
}

void MemorySystem::BeginMigrationWindow(AddressSpace& as, Vpn vpn, Cycles end) {
  const Cycles now = Now();
  // Prune expired windows so the map stays tiny even across millions of
  // migrations.
  while (window_fifo_head_ < window_fifo_.size() &&
         window_fifo_[window_fifo_head_].first <= now) {
    const auto& [e, key] = window_fifo_[window_fifo_head_];
    auto it = migration_windows_.find(key);
    if (it != migration_windows_.end() && it->second <= now) {
      migration_windows_.erase(it);
    }
    window_fifo_head_++;
  }
  if (window_fifo_head_ > 4096 && window_fifo_head_ * 2 > window_fifo_.size()) {
    window_fifo_.erase(window_fifo_.begin(),
                       window_fifo_.begin() + static_cast<long>(window_fifo_head_));
    window_fifo_head_ = 0;
  }
  // The membership filter can only shed stale bits wholesale; pruning makes
  // the empty state common enough for that to keep it sparse.
  if (migration_windows_.empty()) {
    window_filter_ = 0;
  }
  migration_windows_[{&as, vpn}] = end;
  window_filter_ |= WindowFilterBit(vpn);
  window_fifo_.emplace_back(end, WindowKey{&as, vpn});
}

Cycles MemorySystem::DemandFault(ActorId /*cpu*/, AddressSpace& as, Vpn vpn) {
  ++FaultSlot(cnt_fault_demand_, cnt::kFaultDemand);
  MapNewPage(as, vpn, Tier::kFast, /*writable=*/true);
  return platform_.costs.pte_update;
}

Cycles MemorySystem::Access(ActorId cpu, AddressSpace& as, Vpn vpn, uint64_t offset,
                            bool is_write, unsigned mlp, AccessInfo* info) {
  as.NoteCpu(cpu);
  Tlb& tlb = *tlbs_.at(cpu);
  return AccessResolved(cpu, as, tlb, tlb.Lookup(vpn), vpn, offset, is_write, mlp, info);
}

}  // namespace nomad
