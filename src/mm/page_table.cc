#include "src/mm/page_table.h"

namespace nomad {

Pte* PageTable::Lookup(Vpn vpn) {
  const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
  if (dir_idx >= dir_.size() || !dir_[dir_idx]) {
    return nullptr;
  }
  return &dir_[dir_idx]->entries[vpn % kEntriesPerLeaf];
}

const Pte* PageTable::Lookup(Vpn vpn) const {
  const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
  if (dir_idx >= dir_.size() || !dir_[dir_idx]) {
    return nullptr;
  }
  return &dir_[dir_idx]->entries[vpn % kEntriesPerLeaf];
}

Pte& PageTable::Ensure(Vpn vpn) {
  const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
  if (dir_idx >= dir_.size()) {
    dir_.resize(dir_idx + 1);
  }
  if (!dir_[dir_idx]) {
    dir_[dir_idx] = std::make_unique<Leaf>();
    num_leaves_++;
  }
  return dir_[dir_idx]->entries[vpn % kEntriesPerLeaf];
}

void PageTable::ForEachPresent(const std::function<void(Vpn, const Pte&)>& fn) const {
  for (size_t dir_idx = 0; dir_idx < dir_.size(); dir_idx++) {
    if (!dir_[dir_idx]) {
      continue;
    }
    const Vpn base = static_cast<Vpn>(dir_idx) * kEntriesPerLeaf;
    for (uint64_t i = 0; i < kEntriesPerLeaf; i++) {
      const Pte& pte = dir_[dir_idx]->entries[i];
      if (pte.present) {
        fn(base + i, pte);
      }
    }
  }
}

}  // namespace nomad
