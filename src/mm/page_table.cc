#include "src/mm/page_table.h"

namespace nomad {

PageTable::Leaf* PageTable::NewLeaf() {
  if (chunk_used_ == kLeavesPerChunk) {
    // Value-initialized: every Pte in the chunk starts as Pte{}.
    chunks_.push_back(std::make_unique<Leaf[]>(kLeavesPerChunk));
    chunk_used_ = 0;
  }
  return &chunks_.back()[chunk_used_++];
}

Pte& PageTable::Ensure(Vpn vpn) {
  const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
  if (dir_idx >= dir_.size()) {
    dir_.resize(dir_idx + 1, nullptr);
  }
  if (dir_[dir_idx] == nullptr) {
    dir_[dir_idx] = NewLeaf();
    num_leaves_++;
  }
  cursor_idx_ = dir_idx;
  cursor_leaf_ = dir_[dir_idx];
  return cursor_leaf_->entries[vpn % kEntriesPerLeaf];
}

void PageTable::ForEachPresent(const std::function<void(Vpn, const Pte&)>& fn) const {
  for (size_t dir_idx = 0; dir_idx < dir_.size(); dir_idx++) {
    if (dir_[dir_idx] == nullptr) {
      continue;
    }
    const Vpn base = static_cast<Vpn>(dir_idx) * kEntriesPerLeaf;
    for (uint64_t i = 0; i < kEntriesPerLeaf; i++) {
      const Pte& pte = dir_[dir_idx]->entries[i];
      if (pte.present) {
        fn(base + i, pte);
      }
    }
  }
}

}  // namespace nomad
