#include "src/mm/cache.h"

#include <algorithm>

namespace nomad {

LastLevelCache::LastLevelCache(uint64_t capacity_bytes) {
  uint64_t lines = capacity_bytes / kCacheLineSize;
  num_sets_ = std::max<uint64_t>(1, lines / kWays);
  tags_.assign(num_sets_ * kWays, kInvalidTag);
  last_use_.assign(num_sets_ * kWays, 0);
}

void LastLevelCache::InvalidatePage(Pfn pfn) {
  // Called once per migration (and per frame free), and a tpp run migrates
  // ~100k times per 2M accesses, so this scan was ~20% of that row's wall
  // clock. A page's lines map to *consecutive* sets (SetOf is line mod
  // num_sets), so unless the set index wraps, the 64 sets x 16 ways under
  // scrutiny are one contiguous run of tags — walk it with a branchless
  // compare/select the compiler can turn into SIMD compare+blend, instead
  // of a branchy per-way match that defeats both vectorizer and prefetcher.
  constexpr uint64_t kLinesPerPage = kPageSize / kCacheLineSize;
  const uint64_t first_line = pfn * kLinesPerPage;
  const uint64_t first_set = first_line % num_sets_;
  if (first_set + kLinesPerPage <= num_sets_) {
    uint64_t* t = &tags_[first_set * kWays];
    for (uint64_t i = 0; i < kLinesPerPage; i++) {
      const uint64_t line = first_line + i;
      uint64_t* ts = t + i * kWays;
      for (size_t w = 0; w < kWays; w++) {
        const uint64_t v = ts[w];
        ts[w] = v == line ? kInvalidTag : v;
      }
    }
    return;
  }
  // Wrapped around the end of the set array (at most once per num_sets_
  // pages): fall back to per-line set indexing.
  for (uint64_t i = 0; i < kLinesPerPage; i++) {
    const uint64_t line = first_line + i;
    const size_t base = SetOf(line);
    for (size_t w = 0; w < kWays; w++) {
      const uint64_t v = tags_[base + w];
      tags_[base + w] = v == line ? kInvalidTag : v;
    }
  }
}

}  // namespace nomad
