#include "src/mm/cache.h"

#include <algorithm>

namespace nomad {

LastLevelCache::LastLevelCache(uint64_t capacity_bytes) {
  uint64_t lines = capacity_bytes / kCacheLineSize;
  num_sets_ = std::max<uint64_t>(1, lines / kWays);
  entries_.resize(num_sets_ * kWays);
}

bool LastLevelCache::Access(uint64_t paddr) {
  const uint64_t line = paddr / kCacheLineSize;
  const size_t base = SetOf(line);
  tick_++;
  size_t victim = base;
  for (size_t w = 0; w < kWays; w++) {
    Entry& e = entries_[base + w];
    if (e.tag == line) {
      e.last_use = tick_;
      hits_++;
      return true;
    }
    if (e.tag == kInvalidTag) {
      victim = base + w;
    } else if (entries_[victim].tag != kInvalidTag && e.last_use < entries_[victim].last_use) {
      victim = base + w;
    }
  }
  misses_++;
  Entry& e = entries_[victim];
  e.tag = line;
  e.last_use = tick_;
  return false;
}

void LastLevelCache::InvalidatePage(Pfn pfn) {
  const uint64_t first_line = pfn * (kPageSize / kCacheLineSize);
  for (uint64_t i = 0; i < kPageSize / kCacheLineSize; i++) {
    const uint64_t line = first_line + i;
    const size_t base = SetOf(line);
    for (size_t w = 0; w < kWays; w++) {
      if (entries_[base + w].tag == line) {
        entries_[base + w].tag = kInvalidTag;
      }
    }
  }
}

}  // namespace nomad
