// Two-level page table.
//
// A directory of 512-entry leaf tables (2 MB reach each), allocated lazily.
// This keeps memory proportional to the mapped range while giving the same
// semantics as the 4-level x86 table the kernel walks; the constant walk
// cost lives in KernelCosts::page_walk.
#ifndef SRC_MM_PAGE_TABLE_H_
#define SRC_MM_PAGE_TABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/mm/pte.h"

namespace nomad {

class PageTable {
 public:
  static constexpr uint64_t kEntriesPerLeaf = 512;

  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Returns the PTE for vpn, or nullptr when no leaf table exists yet.
  Pte* Lookup(Vpn vpn);
  const Pte* Lookup(Vpn vpn) const;

  // Returns the PTE for vpn, materializing the leaf table if needed.
  Pte& Ensure(Vpn vpn);

  // Number of materialized leaf tables (for footprint accounting).
  size_t NumLeaves() const { return num_leaves_; }

  // Visits every *present* PTE in ascending VPN order. Used by the
  // invariant checker, which must see all mappings regardless of the
  // nominal VPN range an address space advertises.
  void ForEachPresent(const std::function<void(Vpn, const Pte&)>& fn) const;

 private:
  struct Leaf {
    Pte entries[kEntriesPerLeaf];
  };

  std::vector<std::unique_ptr<Leaf>> dir_;
  size_t num_leaves_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_PAGE_TABLE_H_
