// Two-level page table.
//
// A directory of 512-entry leaf tables (2 MB reach each), allocated lazily.
// This keeps memory proportional to the mapped range while giving the same
// semantics as the 4-level x86 table the kernel walks; the constant walk
// cost lives in KernelCosts::page_walk.
//
// Leaves are carved out of chunked arenas (64 leaves per chunk) instead of
// being individually heap-allocated: one malloc per 128 MB of mapped
// address space, contiguous PTE storage for neighbouring leaves, and stable
// leaf addresses (chunks never move), so Pte pointers handed out by
// Lookup/Ensure stay valid for the table's lifetime exactly as before.
#ifndef SRC_MM_PAGE_TABLE_H_
#define SRC_MM_PAGE_TABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/mm/pte.h"

namespace nomad {

class PageTable {
 public:
  static constexpr uint64_t kEntriesPerLeaf = 512;

  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Returns the PTE for vpn, or nullptr when no leaf table exists yet.
  // Inline with a one-entry walk cursor: consecutive lookups inside the
  // same 2 MB region (the common case for the access loop's walk + the
  // fault handlers re-walking the same page) skip the directory load.
  Pte* Lookup(Vpn vpn) {
    const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
    if (dir_idx == cursor_idx_) {
      return &cursor_leaf_->entries[vpn % kEntriesPerLeaf];
    }
    return LookupSlow(vpn);
  }
  const Pte* Lookup(Vpn vpn) const { return const_cast<PageTable*>(this)->Lookup(vpn); }

  // Hints the host CPU to pull vpn's PTE into cache ahead of a Lookup. The
  // directory is small and stays cached, so chasing it here is cheap; the
  // leaf PTE line is the one that misses. Pure prefetch: no simulator state
  // changes, so issuing (or dropping) it cannot change simulated results.
  void PrefetchPte(Vpn vpn) const {
    const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
    if (dir_idx < dir_.size() && dir_[dir_idx] != nullptr) {
      __builtin_prefetch(&dir_[dir_idx]->entries[vpn % kEntriesPerLeaf], 1);
    }
  }

  // Reads vpn's PTE without touching the walk cursor or any other state.
  // Exists so batched execution can peek a likely-translation and prefetch
  // the physically-indexed structures behind it; a stale peek only wastes
  // a prefetch.
  const Pte* PeekPte(Vpn vpn) const {
    const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
    if (dir_idx < dir_.size() && dir_[dir_idx] != nullptr) {
      return &dir_[dir_idx]->entries[vpn % kEntriesPerLeaf];
    }
    return nullptr;
  }

  // Returns the PTE for vpn, materializing the leaf table if needed.
  Pte& Ensure(Vpn vpn);

  // Number of materialized leaf tables (for footprint accounting).
  size_t NumLeaves() const { return num_leaves_; }

  // Visits every *present* PTE in ascending VPN order. Used by the
  // invariant checker, which must see all mappings regardless of the
  // nominal VPN range an address space advertises.
  void ForEachPresent(const std::function<void(Vpn, const Pte&)>& fn) const;

 private:
  struct Leaf {
    Pte entries[kEntriesPerLeaf];
  };
  static constexpr size_t kLeavesPerChunk = 64;

  // Out-of-cursor path, still just a directory load + leaf index; inline
  // because the Zipfian access mix misses the 2 MB cursor most of the time
  // and the per-access call overhead showed up in the profile.
  Pte* LookupSlow(Vpn vpn) {
    const size_t dir_idx = static_cast<size_t>(vpn / kEntriesPerLeaf);
    if (dir_idx >= dir_.size() || dir_[dir_idx] == nullptr) {
      return nullptr;
    }
    cursor_idx_ = dir_idx;
    cursor_leaf_ = dir_[dir_idx];
    return &cursor_leaf_->entries[vpn % kEntriesPerLeaf];
  }
  Leaf* NewLeaf();

  // The cursor caches (dir index -> leaf) for the last hit. Leaf addresses
  // are stable, and a directory slot never changes once populated, so the
  // cursor can never go stale; it only ever points at a live leaf.
  size_t cursor_idx_ = ~size_t{0};
  Leaf* cursor_leaf_ = nullptr;

  std::vector<Leaf*> dir_;  // nullptr = leaf not materialized
  std::vector<std::unique_ptr<Leaf[]>> chunks_;
  size_t chunk_used_ = kLeavesPerChunk;  // current chunk's high-water mark
  size_t num_leaves_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_PAGE_TABLE_H_
