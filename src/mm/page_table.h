// Two-level page table.
//
// A directory of 512-entry leaf tables (2 MB reach each), allocated lazily.
// This keeps memory proportional to the mapped range while giving the same
// semantics as the 4-level x86 table the kernel walks; the constant walk
// cost lives in KernelCosts::page_walk.
#ifndef SRC_MM_PAGE_TABLE_H_
#define SRC_MM_PAGE_TABLE_H_

#include <memory>
#include <vector>

#include "src/mm/pte.h"

namespace nomad {

class PageTable {
 public:
  static constexpr uint64_t kEntriesPerLeaf = 512;

  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Returns the PTE for vpn, or nullptr when no leaf table exists yet.
  Pte* Lookup(Vpn vpn);
  const Pte* Lookup(Vpn vpn) const;

  // Returns the PTE for vpn, materializing the leaf table if needed.
  Pte& Ensure(Vpn vpn);

  // Number of materialized leaf tables (for footprint accounting).
  size_t NumLeaves() const { return num_leaves_; }

 private:
  struct Leaf {
    Pte entries[kEntriesPerLeaf];
  };

  std::vector<std::unique_ptr<Leaf>> dir_;
  size_t num_leaves_ = 0;
};

}  // namespace nomad

#endif  // SRC_MM_PAGE_TABLE_H_
