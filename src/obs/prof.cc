#include "src/obs/prof.h"

#include <algorithm>

namespace nomad {

const char* ProfNodeName(ProfNode n) {
  switch (n) {
#define NOMAD_PROF_NAME(name, str) \
  case ProfNode::k##name:          \
    return str;
    NOMAD_PROF_NODE_LIST(NOMAD_PROF_NAME)
#undef NOMAD_PROF_NAME
    case ProfNode::kNumNodes:
      break;
  }
  return "unknown";
}

std::vector<ProfNode> Profiler::DecodePath(uint64_t key) {
  std::vector<ProfNode> out;
  for (int i = 0; i < kMaxDepth; i++) {
    const uint8_t byte = static_cast<uint8_t>(key >> (8 * i));
    if (byte == 0) {
      break;
    }
    out.push_back(static_cast<ProfNode>(byte - 1));
  }
  return out;
}

void Profiler::Reset() {
  depth_ = 0;
  std::fill(std::begin(self_), std::end(self_), 0);
  std::fill(std::begin(total_), std::end(total_), 0);
  unattributed_ = 0;
  paths_.clear();
  memo_key_ = 0;
  memo_slot_ = nullptr;
}

}  // namespace nomad
