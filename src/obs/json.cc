#include "src/obs/json.h"

#include <cmath>
#include <cstdio>

namespace nomad {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elems_.empty()) {
    if (has_elems_.back()) {
      out_ << ',';
    }
    has_elems_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  has_elems_.push_back(false);
  out_ << '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_elems_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  has_elems_.push_back(false);
  out_ << '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_elems_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  out_ << JsonQuote(key) << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ << JsonQuote(v);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  BeforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  // %.17g round-trips doubles; shorter forms print naturally.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ << json;
  return *this;
}

}  // namespace nomad
