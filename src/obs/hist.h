// Log-bucketed HDR-style histograms for migration-path latencies.
//
// LatencyHistogram (src/sim/stats.h) spends one bucket per power of two,
// which is fine for per-access latency shapes but too coarse for the
// migration distributions the paper argues about (a 12% regression in
// migration p99 vanishes inside a 2x bucket). Histogram keeps 8 sub-buckets
// per octave — HdrHistogram's trick — bounding the relative error of any
// reconstructed value at 12.5%, with values below 8 recorded exactly.
//
// HistogramSet is the simulator-facing registry: distributions are keyed by
// the hist:: names in src/obs/event_registry.h and recording an
// unregistered name aborts (same closed-name-set contract as counters and
// trace events). Record() compiles away under -DNOMAD_ENABLE_TRACING=OFF;
// when enabled it costs one map lookup per *kernel event* (a committed
// migration, a PCQ drain), never per access.
#ifndef SRC_OBS_HIST_H_
#define SRC_OBS_HIST_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/base/annotations.h"
#include "src/obs/trace.h"

namespace nomad {

class Histogram {
 public:
  // 8 sub-buckets per octave; values in [0, kSubBuckets) are exact.
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Octaves for msb positions kSubBucketBits..63, plus the exact range.
  static constexpr int kNumBuckets = kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t Max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Approximate value at quantile q in [0,1]; uniform interpolation within
  // the bucket (same estimator as LatencyHistogram::Quantile).
  uint64_t Quantile(double q) const;

  // Bucket that Record(value) increments, and its [lo, hi) value range.
  // Exposed so tests can pin the percentile math to bucket edges and so
  // trace_query can state its reconstruction error.
  static int BucketFor(uint64_t value);
  static uint64_t BucketLo(int bucket);
  static uint64_t BucketHi(int bucket);

  void Merge(const Histogram& other);
  void Reset();

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// Named histograms, keyed by the hist:: constants in event_registry.h.
class NOMAD_SHARD_CONFINED HistogramSet {
 public:
  // Books one sample. Compiles to nothing when tracing is off. Callers
  // pass the hist:: registry constants, so the same `name` pointer recurs
  // per site; a tiny pointer-keyed memo skips the validating map lookup
  // after the first sample (a migration-heavy run records hundreds of
  // thousands of samples). An unrecognized pointer just takes the At()
  // path, so the memo can never change which histogram is hit.
  void Record(const char* name, uint64_t value) {
    if constexpr (kTracingEnabled) {
      for (int i = 0; i < memo_used_; i++) {
        if (memo_[i].name == name) {
          memo_[i].hist->Record(value);
          return;
        }
      }
      Histogram& h = At(name);
      if (memo_used_ < kMemoSlots) {
        memo_[memo_used_++] = Memo{name, &h};
      }
      h.Record(value);
    } else {
      (void)name;
      (void)value;
    }
  }

  // Stable reference to the named histogram, creating it empty. Aborts on a
  // name outside NOMAD_HIST_NAME_LIST.
  Histogram& At(const char* name);

  const std::map<std::string, Histogram>& All() const { return hists_; }

  void Reset() {
    memo_used_ = 0;
    hists_.clear();
  }

 private:
  static constexpr int kMemoSlots = 8;
  struct Memo {
    const char* name = nullptr;
    Histogram* hist = nullptr;  // std::map references are stable
  };

  std::map<std::string, Histogram> hists_;
  Memo memo_[kMemoSlots];
  int memo_used_ = 0;
};

}  // namespace nomad

#endif  // SRC_OBS_HIST_H_
