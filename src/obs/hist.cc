#include "src/obs/hist.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/check/check.h"

namespace nomad {

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = static_cast<int>(std::bit_width(value)) - 1;  // >= kSubBucketBits
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>(value >> shift);  // in [kSubBuckets, 2*kSubBuckets)
  return kSubBuckets + shift * kSubBuckets + (sub - kSubBuckets);
}

uint64_t Histogram::BucketLo(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket);
  }
  const int shift = (bucket - kSubBuckets) / kSubBuckets;
  const uint64_t sub = static_cast<uint64_t>(kSubBuckets + (bucket - kSubBuckets) % kSubBuckets);
  return sub << shift;
}

uint64_t Histogram::BucketHi(int bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<uint64_t>(bucket) + 1;
  }
  const int shift = (bucket - kSubBuckets) / kSubBuckets;
  const uint64_t sub = static_cast<uint64_t>(kSubBuckets + (bucket - kSubBuckets) % kSubBuckets);
  return (sub + 1) << shift;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; b++) {
    if (seen + buckets_[b] > target) {
      const uint64_t lo = BucketLo(b);
      const uint64_t hi = std::min(BucketHi(b), max_ + 1);
      const double frac = static_cast<double>(target - seen) / static_cast<double>(buckets_[b]);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets_[b];
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kNumBuckets; b++) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

bool IsRegisteredHistogramName(const char* name) {
#define NOMAD_HIST_CHECK(cname, str)    \
  if (std::strcmp(name, str) == 0) {    \
    return true;                        \
  }
  NOMAD_HIST_NAME_LIST(NOMAD_HIST_CHECK)
#undef NOMAD_HIST_CHECK
  return false;
}

Histogram& HistogramSet::At(const char* name) {
  NOMAD_CHECK(IsRegisteredHistogramName(name), "unregistered histogram name: ", name);
  return hists_[name];
}

}  // namespace nomad
