// Deterministic virtual-time telemetry timeline.
//
// Every exporter in the tree reports a single end-of-run aggregate, but the
// paper's headline claims are temporal: abort storms under redirtying,
// shadow reclaim kicking in as fast-tier pressure rises, admission control
// damping thrash. Timeline records the time axis those narratives need — a
// columnar ring of delta-snapshots sampled at a fixed virtual-cycle
// interval (engine-driven in single-Sim runs, lockstep-epoch-driven in
// sharded runs, so samples are byte-identical across worker-thread counts).
//
// Channels are named columns. Gauge channels come from the closed tl::
// registry in src/obs/event_registry.h (NL012 lints literal names at call
// sites); counter-delta and histogram-derived channels are derived from the
// cnt:: / hist:: registries with the "cnt." / "hist." prefixes. The sampler
// that knows the simulator's object graph lives in
// src/harness/timeline_sampler.h; this class only owns storage and export.
//
// Under -DNOMAD_ENABLE_TRACING=OFF the recording surface compiles to
// no-ops: BeginSample/Set/EndSample do nothing, exports emit an empty
// timeline, and the simulation's metrics stay byte-identical.
#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/base/annotations.h"
#include "src/obs/trace.h"

namespace nomad {

class JsonWriter;

class NOMAD_SHARD_CONFINED Timeline {
 public:
  struct Config {
    // Requested sampling cadence in virtual cycles. The engine-driven
    // sampler honors it exactly; the sharded driver rounds it up to whole
    // lockstep epochs so samples stay thread-count independent.
    Cycles interval = 100000;
    // Samples retained; beyond this the oldest sample is evicted (and
    // counted in dropped(), mirroring the TraceSink ring contract).
    size_t capacity = 4096;
  };

  Timeline() : Timeline(Config{}) {}
  explicit Timeline(const Config& config) : config_(config) {}

  // Column handle for `name`, creating the column on first use (earlier
  // samples read as 0). Aborts on a name outside the timeline registry —
  // same closed-name-set contract as counters and histograms.
  size_t Channel(const std::string& name);

  // One sample = BeginSample(now) + any number of Set/SetDelta + EndSample.
  // Channels not Set during a sample record 0 for it.
  void BeginSample(Cycles time);
  void Set(size_t channel, uint64_t value);
  // Delta convenience for monotonic sources (counters, emit totals):
  // records `absolute - previous absolute` and remembers `absolute`.
  void SetDelta(size_t channel, uint64_t absolute);
  void EndSample();

  Cycles interval() const { return config_.interval; }
  size_t capacity() const { return config_.capacity; }
  size_t num_samples() const { return times_.size(); }
  size_t num_channels() const { return columns_.size(); }
  // Samples evicted from the ring, attributable to the run's tail.
  uint64_t dropped() const { return dropped_; }

  // The "nomad-timeline-v1" JSON object: schema/interval/samples/dropped,
  // a "time" array, and a "channels" object in column-creation order.
  void AppendJson(JsonWriter& jw) const;

  // CSV with a stable `time,<channel>,...` header, one row per sample.
  void WriteCsv(std::ostream& out) const;

 private:
  struct Column {
    std::string name;
    std::vector<uint64_t> values;  // index-aligned with times_
    uint64_t last_abs = 0;         // SetDelta's remembered absolute
    bool set_this_sample = false;
  };

  Config config_;
  std::vector<Cycles> times_;
  std::vector<Column> columns_;
  uint64_t dropped_ = 0;
  bool in_sample_ = false;
};

}  // namespace nomad

#endif  // SRC_OBS_TIMELINE_H_
