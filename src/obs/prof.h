// Scoped span profiler: attributes simulated cycles to a tree of kernel
// subsystems (ProfNode, src/obs/event_registry.h).
//
// The simulator never measures wall time — costs are explicit Cycles values
// returned by the mechanisms — so a span does not time anything. Instead it
// establishes *attribution context*: Enter/Exit maintain a stack of nodes,
// and Charge(c) books c cycles as self time of the innermost node and total
// time of every node on the stack. The per-path self totals double as a
// collapsed-stack profile ("tpm;tpm_copy 1234") that flamegraph tools eat
// directly (see WriteCollapsedStacks in src/obs/exporters.h).
//
// Hot-path contract matches the trace sink: spans wrap *kernel events*
// (one TPM transaction, one reclaim round), never individual accesses, and
// the whole class compiles to nothing under -DNOMAD_ENABLE_TRACING=OFF.
#ifndef SRC_OBS_PROF_H_
#define SRC_OBS_PROF_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/annotations.h"
#include "src/check/check.h"
#include "src/obs/event_registry.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"

namespace nomad {

class NOMAD_SHARD_CONFINED Profiler {
 public:
  // Deep enough for every real nesting (deepest today is 3: hint_fault ->
  // sync_migrate -> inner spans); the packed path key spends one byte per
  // level, which caps the depth at 8.
  static constexpr int kMaxDepth = 8;

  void Enter(ProfNode n) {
    if constexpr (kTracingEnabled) {
      NOMAD_CHECK(depth_ < kMaxDepth, "prof stack overflow entering ",
                  ProfNodeName(n));
      stack_[depth_++] = n;
    } else {
      (void)n;
    }
  }

  void Exit() {
    if constexpr (kTracingEnabled) {
      NOMAD_CHECK(depth_ > 0, "prof Exit() with empty stack");
      depth_--;
    }
  }

  // Books `c` cycles at the current stack: self of the innermost node,
  // total of every distinct node on the stack, and the collapsed path.
  // With an empty stack the cycles land in unattributed() instead.
  void Charge(Cycles c) {
    if constexpr (kTracingEnabled) {
      if (c == 0) {
        return;
      }
      if (depth_ == 0) {
        unattributed_ += c;
        return;
      }
      self_[static_cast<size_t>(stack_[depth_ - 1])] += c;
      uint64_t key = 0;
      for (int i = 0; i < depth_; i++) {
        const ProfNode n = stack_[i];
        key |= static_cast<uint64_t>(static_cast<uint8_t>(n) + 1) << (8 * i);
        // A node twice on the stack (recursion) must count its total once.
        bool seen = false;
        for (int j = 0; j < i; j++) {
          seen = seen || stack_[j] == n;
        }
        if (!seen) {
          total_[static_cast<size_t>(n)] += c;
        }
      }
      // Consecutive charges overwhelmingly repeat the same stack (one tree
      // descent per distinct path, then pointer hits; std::map references
      // survive unrelated inserts, and Reset() clears the memo with the
      // map).
      if (key != memo_key_ || memo_slot_ == nullptr) {
        memo_key_ = key;
        memo_slot_ = &paths_[key];
      }
      *memo_slot_ += c;
    } else {
      (void)c;
    }
  }

  // Enter(n) + Charge(c) + Exit(): a leaf span with no interior structure.
  void ChargeLeaf(ProfNode n, Cycles c) {
    if constexpr (kTracingEnabled) {
      Enter(n);
      Charge(c);
      Exit();
    } else {
      (void)n;
      (void)c;
    }
  }

  int depth() const { return depth_; }
  uint64_t self_cycles(ProfNode n) const { return self_[static_cast<size_t>(n)]; }
  uint64_t total_cycles(ProfNode n) const { return total_[static_cast<size_t>(n)]; }
  uint64_t unattributed() const { return unattributed_; }

  // Packed path -> self cycles charged while exactly that stack was active.
  // Key byte i holds stack level i's node + 1 (0 terminates), so iteration
  // order (and thus every export) is deterministic.
  const std::map<uint64_t, uint64_t>& paths() const { return paths_; }

  // Unpacks a paths() key, outermost frame first.
  static std::vector<ProfNode> DecodePath(uint64_t key);

  void Reset();

 private:
  ProfNode stack_[kMaxDepth] = {};
  int depth_ = 0;
  uint64_t self_[kNumProfNodes] = {};
  uint64_t total_[kNumProfNodes] = {};
  uint64_t unattributed_ = 0;
  std::map<uint64_t, uint64_t> paths_;
  // Last charged path and its slot; see Charge().
  uint64_t memo_key_ = 0;
  uint64_t* memo_slot_ = nullptr;
};

// RAII span. Compiles away with the profiler when tracing is off.
class ProfScope {
 public:
  ProfScope(Profiler& prof, ProfNode n) : prof_(prof) { prof_.Enter(n); }
  ~ProfScope() { prof_.Exit(); }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler& prof_;
};

}  // namespace nomad

#endif  // SRC_OBS_PROF_H_
