// Central registry of every observable name the simulator emits.
//
// Four name spaces live here, and nowhere else:
//
//  1. Trace events: the NOMAD_TRACE_EVENT_LIST X-macro is the single source
//     of truth for the TraceEvent enum *and* the lower_snake_case strings
//     exporters and baseline files key on. Adding an event means adding one
//     X() line; the enum, the name table and the count stay in sync by
//     construction.
//
//  2. Counter names: the string keys fed to CounterSet::Add()/Get(). Call
//     sites in src/ must use these constants instead of string literals so
//     a typo ("nomad.tpm_comit") becomes a compile error instead of a
//     silently empty metrics series. nomad_lint rule NL004 enforces this.
//
//  3. Profiler span nodes: NOMAD_PROF_NODE_LIST defines the ProfNode enum
//     for the cycle-attribution profiler (src/obs/prof.h). Nesting is
//     dynamic (whatever Enter/Exit order the run produced); this list only
//     fixes the node identities and their exported names.
//
//  4. Histogram names: the keys fed to HistogramSet::Record()
//     (src/obs/hist.h). Same contract as counters — call sites use the
//     hist:: constants, and HistogramSet rejects unregistered names, so the
//     exported set of distributions is closed and typo-proof (NL004 again).
//
// The `arg` and `value` columns of a trace record are event-specific:
//
//   event            arg                     value
//   ---------------  ----------------------  ---------------------------
//   kTpmBegin        vpn being promoted      copy duration (cycles)
//   kTpmAbort        vpn                     0
//   kTpmCommit       vpn                     commit-step cycles
//   kPromote         vpn (sync migration)    migration cycles
//   kDemote          vpn                     migration cycles
//   kHintFault       vpn                     0
//   kShadowFault     vpn                     0
//   kShadowReclaim   shadows freed           reclaim cycles
//   kKswapdWake      tier index              free frames at wakeup
//   kPcqEnqueue      pfn                     0
//   kPcqDrain        entries examined        entries moved to pending
//   kScannerArm      scan cursor (pfn)       pages armed this round
//   kMigrationRound  promotions attempted    round cycles
//   kPcqOverflow     evicted pfn             queue depth at overflow
//   kFaultInject     fault kind (FaultKind)  opportunity index
//   kTpmBackoff      vpn                     backoff delay (cycles)
//   kTpmGiveUp       vpn                     aborts accumulated
//   kSyncDegrade     1=enter, 0=exit         abort streak / cycles in mode
//   kReclaimEscalate reclaim target          frames actually freed
//   kInvariantFail   violations found        0
//   kAdmissionVerdict vpn                    verdict | (source << 8)
//   kWatchdogStall   lockstep epoch          epochs without progress
//
// Migration-lifecycle span links (runtime-gated, see
// MemorySystem::set_span_tracing). Every mig_* record carries the
// migration's transaction id in `value`, so tools/trace_query --span can
// stitch the causal chain nominate -> hot -> dequeue -> attempt(s) ->
// outcome(s) -> shadow_free without guessing from PFNs:
//
//   kMigNominate     pfn entering the PCQ    migration id
//   kMigHot          pfn found hot           migration id
//   kMigDequeue      vpn at kpromote         migration id
//   kMigAttempt      attempt number (1-based) migration id
//   kMigOutcome      MigOutcome code         migration id
//   kMigDefer        retry-ready time        migration id
//   kMigShadowFree   master pfn              migration id
#ifndef SRC_OBS_EVENT_REGISTRY_H_
#define SRC_OBS_EVENT_REGISTRY_H_

#include <cstdint>

namespace nomad {

// X(enumerator-suffix, exported-name). Order is ABI: exporters, baselines
// and the metrics schema index events by enum value, so new events append.
#define NOMAD_TRACE_EVENT_LIST(X)      \
  X(TpmBegin, "tpm_begin")             \
  X(TpmAbort, "tpm_abort")             \
  X(TpmCommit, "tpm_commit")           \
  X(Promote, "promote")                \
  X(Demote, "demote")                  \
  X(HintFault, "hint_fault")           \
  X(ShadowFault, "shadow_fault")       \
  X(ShadowReclaim, "shadow_reclaim")   \
  X(KswapdWake, "kswapd_wake")         \
  X(PcqEnqueue, "pcq_enqueue")         \
  X(PcqDrain, "pcq_drain")             \
  X(ScannerArm, "scanner_arm")         \
  X(MigrationRound, "migration_round") \
  X(PcqOverflow, "pcq_overflow")       \
  X(FaultInject, "fault_inject")       \
  X(TpmBackoff, "tpm_backoff")         \
  X(TpmGiveUp, "tpm_give_up")          \
  X(SyncDegrade, "sync_degrade")       \
  X(ReclaimEscalate, "reclaim_escalate") \
  X(InvariantFail, "invariant_fail")     \
  X(AdmissionVerdict, "admission_verdict") \
  X(WatchdogStall, "watchdog_stall")       \
  X(MigNominate, "mig_nominate")           \
  X(MigHot, "mig_hot")                     \
  X(MigDequeue, "mig_dequeue")             \
  X(MigAttempt, "mig_attempt")             \
  X(MigOutcome, "mig_outcome")             \
  X(MigDefer, "mig_defer")                 \
  X(MigShadowFree, "mig_shadow_free")

// Every traced kernel mechanism (see the arg/value table above).
enum class TraceEvent : uint8_t {
#define NOMAD_EVENT_ENUM(name, str) k##name,
  NOMAD_TRACE_EVENT_LIST(NOMAD_EVENT_ENUM)
#undef NOMAD_EVENT_ENUM
      kNumEvents,
};

inline constexpr uint8_t kNumTraceEvents = static_cast<uint8_t>(TraceEvent::kNumEvents);

// Stable lower_snake_case name, used by exporters and by baseline files.
// Defined in trace.cc from the same X-macro list.
const char* TraceEventName(TraceEvent e);

// The `arg` of a kMigOutcome span record. kAbort is the only non-terminal
// code (an aborted attempt is followed by kMigDefer + another kMigAttempt,
// or by a terminal kGiveUp); every other code ends the migration's span.
enum class MigOutcome : uint8_t {
  kCommit = 0,        // TPM transaction committed; shadow retained
  kAbort = 1,         // attempt aborted (page redirtied mid-copy)
  kGiveUp = 2,        // retry budget exhausted; page stays on slow tier
  kSyncFallback = 3,  // multi-mapped page took the synchronous path
  kDegradedSync = 4,  // abort-storm / admission downgrade to sync migration
  kReject = 5,        // admission controller shed the migration
  kVanish = 6,        // mapping disappeared mid-transaction
  kNumOutcomes,
};

// Stable lower_snake_case name for one MigOutcome code (trace_query and
// timeline_report print these). Defined in trace.cc.
const char* MigOutcomeName(MigOutcome o);

// X(enumerator-suffix, exported-name). The static tree of subsystems the
// span profiler attributes simulated cycles to. Like trace events, order is
// ABI for the collapsed-stack path encoding, so new nodes append.
#define NOMAD_PROF_NODE_LIST(X)            \
  X(Tpm, "tpm")                            \
  X(TpmCopy, "tpm_copy")                   \
  X(TpmShootdown1, "tpm_shootdown_1")      \
  X(TpmShootdown2, "tpm_shootdown_2")      \
  X(TpmCommitRemap, "tpm_commit_remap")    \
  X(PcqWait, "pcq_wait")                   \
  X(LruScan, "lru_scan")                   \
  X(KswapdReclaim, "kswapd_reclaim")       \
  X(ShadowReclaim, "shadow_reclaim")       \
  X(HintFault, "hint_fault")               \
  X(PebsDrain, "pebs_drain")               \
  X(SyncMigrate, "sync_migrate")           \
  X(Governor, "governor")

// One subsystem scope in the profiler's span tree.
enum class ProfNode : uint8_t {
#define NOMAD_PROF_ENUM(name, str) k##name,
  NOMAD_PROF_NODE_LIST(NOMAD_PROF_ENUM)
#undef NOMAD_PROF_ENUM
      kNumNodes,
};

inline constexpr uint8_t kNumProfNodes = static_cast<uint8_t>(ProfNode::kNumNodes);

// Stable exported name for one profiler node. Defined in prof.cc from the
// same X-macro list.
const char* ProfNodeName(ProfNode n);

// X(constant-suffix, exported-name). Every latency/size distribution the
// simulator records. HistogramSet::Record() refuses names outside this list.
#define NOMAD_HIST_NAME_LIST(X)                      \
  X(MigrationLatency, "migration.latency")           \
  X(DemotionLatency, "demotion.latency")             \
  X(HotToPromoted, "promotion.hot_to_promoted")      \
  X(PcqResidence, "pcq.residence")                   \
  X(TpmRetries, "tpm.retries")

// Histogram keys (see table above). Units: cycles, except tpm.retries
// (abort count per eventually-committed transaction).
namespace hist {

#define NOMAD_HIST_CONST(name, str) inline constexpr const char k##name[] = str;
NOMAD_HIST_NAME_LIST(NOMAD_HIST_CONST)
#undef NOMAD_HIST_CONST

}  // namespace hist

// True when `name` is one of the NOMAD_HIST_NAME_LIST entries. Defined in
// hist.cc.
bool IsRegisteredHistogramName(const char* name);

// X(constant-suffix, exported-name). Gauge channels of the virtual-time
// telemetry timeline (src/obs/timeline.h). Call sites register these via
// the tl:: constants below — a literal at a Channel() call site is a lint
// finding (NL012) — so the set of columns a timeline CSV can carry is
// closed and typo-proof. Counter-delta and histogram-derived channels are
// not listed here: they are derived mechanically from the cnt:: / hist::
// registries with the "cnt." / "hist." prefixes.
#define NOMAD_TIMELINE_CHANNEL_LIST(X)                \
  X(FastFree, "tier.fast.free_frames")                \
  X(FastUsed, "tier.fast.used_frames")                \
  X(FastLowWatermark, "tier.fast.low_watermark")      \
  X(FastBelowLowWatermark, "tier.fast.below_low_wm")  \
  X(SlowFree, "tier.slow.free_frames")                \
  X(SlowUsed, "tier.slow.used_frames")                \
  X(PcqDepth, "pcq.depth")                            \
  X(PendingDepth, "pcq.pending")                      \
  X(DeferredDepth, "pcq.deferred")                    \
  X(ShadowPages, "shadow.pages")                      \
  X(KpromoteDegraded, "kpromote.degraded")            \
  X(TraceCapacity, "trace.capacity")                  \
  X(TraceEmittedDelta, "trace.emitted_delta")         \
  X(TraceDroppedDelta, "trace.dropped_delta")         \
  X(ShardOpsDone, "shard.ops_done")                   \
  X(ShardEpoch, "shard.epoch")

// Timeline gauge channel names. Units: frames for the tier.* channels,
// queue entries for pcq.*, pages for shadow.pages, 0/1 for
// kpromote.degraded and tier.fast.below_low_wm, trace records for the
// trace.* channels, workload ops / lockstep epochs for the shard.* pair.
namespace tl {

#define NOMAD_TL_CONST(name, str) inline constexpr const char k##name[] = str;
NOMAD_TIMELINE_CHANNEL_LIST(NOMAD_TL_CONST)
#undef NOMAD_TL_CONST

}  // namespace tl

// True when `name` is a NOMAD_TIMELINE_CHANNEL_LIST entry or carries one
// of the derived prefixes ("cnt." + registered counter shape, "hist." +
// registered histogram name + suffix). Defined in timeline.cc; Timeline
// aborts on unregistered channel names (same closed-set contract as
// counters and histograms).
bool IsRegisteredTimelineChannel(const char* name);

// Counter keys, grouped by emitting subsystem. The dotted prefix is the
// subsystem ("nomad.", "tpp.", ...); the metrics exporter preserves it so
// dashboards can group series.
namespace cnt {

// --- mm core: faults, migration, reclaim, TLB --------------------------
inline constexpr const char kFaultDemand[] = "fault.demand";
inline constexpr const char kFaultHint[] = "fault.hint";
inline constexpr const char kFaultWriteProtect[] = "fault.write_protect";
inline constexpr const char kFaultMigrationBlock[] = "fault.migration_block";
inline constexpr const char kFaultUnresolved[] = "fault.unresolved";
inline constexpr const char kOom[] = "oom";
inline constexpr const char kTlbShootdown[] = "tlb.shootdown";
inline constexpr const char kTlbShootdownIpis[] = "tlb.shootdown_ipis";
inline constexpr const char kKswapdCycles[] = "kswapd.cycles";
inline constexpr const char kMigrateSyncFailNomem[] = "migrate.sync_fail_nomem";
inline constexpr const char kMigrateSyncRetry[] = "migrate.sync_retry";
inline constexpr const char kMigrateSyncPromote[] = "migrate.sync_promote";
inline constexpr const char kMigrateSyncDemote[] = "migrate.sync_demote";

// --- NOMAD: TPM, PCQ, shadowing, degradation ---------------------------
inline constexpr const char kNomadTpmCommit[] = "nomad.tpm_commit";
inline constexpr const char kNomadTpmAbort[] = "nomad.tpm_abort";
inline constexpr const char kNomadTpmBackoff[] = "nomad.tpm_backoff";
inline constexpr const char kNomadTpmGiveup[] = "nomad.tpm_giveup";
inline constexpr const char kNomadSyncFallback[] = "nomad.sync_fallback";
inline constexpr const char kNomadSyncDegrade[] = "nomad.sync_degrade";
inline constexpr const char kNomadDegradedSyncMigration[] = "nomad.degraded_sync_migration";
inline constexpr const char kNomadPromoteWaitNomem[] = "nomad.promote_wait_nomem";
inline constexpr const char kNomadPcqDecay[] = "nomad.pcq_decay";
inline constexpr const char kNomadPcqOverflow[] = "nomad.pcq_overflow";
inline constexpr const char kNomadShadowFault[] = "nomad.shadow_fault";
inline constexpr const char kNomadShadowDiscard[] = "nomad.shadow_discard";
inline constexpr const char kNomadShadowReclaimed[] = "nomad.shadow_reclaimed";
inline constexpr const char kNomadDemoteCopy[] = "nomad.demote_copy";
inline constexpr const char kNomadDemoteRecent[] = "nomad.demote_recent";
inline constexpr const char kNomadDemoteRemap[] = "nomad.demote_remap";
inline constexpr const char kNomadAllocFailEscalate[] = "nomad.alloc_fail_escalate";
inline constexpr const char kNomadAllocFailReclaimMiss[] = "nomad.alloc_fail_reclaim_miss";

// --- competing policies ------------------------------------------------
inline constexpr const char kTppPromote[] = "tpp.promote";
inline constexpr const char kTppPromoteFail[] = "tpp.promote_fail";
inline constexpr const char kTppFaultNotActive[] = "tpp.fault_not_active";
inline constexpr const char kTppPromoteCycles[] = "tpp.promote_cycles";
inline constexpr const char kTppPromoteSkippedNomem[] = "tpp.promote_skipped_nomem";
inline constexpr const char kMemtisPromote[] = "memtis.promote";
inline constexpr const char kMemtisPromoteFail[] = "memtis.promote_fail";
inline constexpr const char kMemtisDemote[] = "memtis.demote";
inline constexpr const char kMemtisPromoteSkippedNomem[] = "memtis.promote_skipped_nomem";

// --- governor ----------------------------------------------------------
inline constexpr const char kGovernorThrottle[] = "governor.throttle";
inline constexpr const char kGovernorReopen[] = "governor.reopen";

// --- admission control (migration control plane) -----------------------
inline constexpr const char kAdmissionAccept[] = "admission.accept";
inline constexpr const char kAdmissionDefer[] = "admission.defer";
inline constexpr const char kAdmissionReject[] = "admission.reject";
inline constexpr const char kAdmissionDowngradeSync[] = "admission.downgrade_sync";
inline constexpr const char kAdmissionReadmit[] = "admission.readmit";
inline constexpr const char kAdmissionDemoteAccept[] = "admission.demote_accept";
inline constexpr const char kAdmissionDemoteDefer[] = "admission.demote_defer";
inline constexpr const char kAdmissionPcqThrottle[] = "admission.pcq_throttle";

// --- sharded-engine watchdog -------------------------------------------
inline constexpr const char kWatchdogStall[] = "watchdog.stall";

// --- fault injection ---------------------------------------------------
inline constexpr const char kFaultInjDirtyWrite[] = "fault.dirty_write";
inline constexpr const char kFaultInjLatencySpike[] = "fault.latency_spike";
inline constexpr const char kFaultInjTlbDelay[] = "fault.tlb_delay";
inline constexpr const char kFaultInjShardDelay[] = "fault.shard_delay";
inline constexpr const char kFaultInjShardStall[] = "fault.shard_stall";
inline constexpr const char kFaultInjAllocFailWave[] = "fault.alloc_fail_wave";

}  // namespace cnt

}  // namespace nomad

#endif  // SRC_OBS_EVENT_REGISTRY_H_
