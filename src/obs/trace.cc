#include "src/obs/trace.h"

namespace nomad {

const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kTpmBegin:
      return "tpm_begin";
    case TraceEvent::kTpmAbort:
      return "tpm_abort";
    case TraceEvent::kTpmCommit:
      return "tpm_commit";
    case TraceEvent::kPromote:
      return "promote";
    case TraceEvent::kDemote:
      return "demote";
    case TraceEvent::kHintFault:
      return "hint_fault";
    case TraceEvent::kShadowFault:
      return "shadow_fault";
    case TraceEvent::kShadowReclaim:
      return "shadow_reclaim";
    case TraceEvent::kKswapdWake:
      return "kswapd_wake";
    case TraceEvent::kPcqEnqueue:
      return "pcq_enqueue";
    case TraceEvent::kPcqDrain:
      return "pcq_drain";
    case TraceEvent::kScannerArm:
      return "scanner_arm";
    case TraceEvent::kMigrationRound:
      return "migration_round";
    case TraceEvent::kPcqOverflow:
      return "pcq_overflow";
    case TraceEvent::kFaultInject:
      return "fault_inject";
    case TraceEvent::kTpmBackoff:
      return "tpm_backoff";
    case TraceEvent::kTpmGiveUp:
      return "tpm_give_up";
    case TraceEvent::kSyncDegrade:
      return "sync_degrade";
    case TraceEvent::kReclaimEscalate:
      return "reclaim_escalate";
    case TraceEvent::kInvariantFail:
      return "invariant_fail";
    case TraceEvent::kNumEvents:
      break;
  }
  return "?";
}

std::vector<TraceEventRecord> TraceSink::Snapshot() const {
  std::vector<TraceEventRecord> out;
  const size_t n = size();
  out.reserve(n);
  // When wrapped, the oldest retained record sits at emitted_ & mask_.
  const uint64_t first = emitted_ - n;
  for (uint64_t i = first; i < emitted_; i++) {
    out.push_back(records_[i & mask_]);
  }
  return out;
}

uint64_t TraceSink::CountOf(TraceEvent type) const {
  uint64_t n = 0;
  const size_t retained = size();
  const uint64_t first = emitted_ - retained;
  for (uint64_t i = first; i < emitted_; i++) {
    if (records_[i & mask_].type == type) {
      n++;
    }
  }
  return n;
}

}  // namespace nomad
