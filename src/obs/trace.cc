#include "src/obs/trace.h"

namespace nomad {

const char* TraceEventName(TraceEvent e) {
  // Generated from the registry X-macro; adding an event to
  // NOMAD_TRACE_EVENT_LIST names it here automatically.
  static constexpr const char* kNames[] = {
#define NOMAD_EVENT_NAME(name, str) str,
      NOMAD_TRACE_EVENT_LIST(NOMAD_EVENT_NAME)
#undef NOMAD_EVENT_NAME
  };
  static_assert(sizeof(kNames) / sizeof(kNames[0]) == kNumTraceEvents,
                "event registry and TraceEvent enum out of sync");
  const auto i = static_cast<uint8_t>(e);
  return i < kNumTraceEvents ? kNames[i] : "?";
}

const char* MigOutcomeName(MigOutcome o) {
  switch (o) {
    case MigOutcome::kCommit:
      return "commit";
    case MigOutcome::kAbort:
      return "abort";
    case MigOutcome::kGiveUp:
      return "give_up";
    case MigOutcome::kSyncFallback:
      return "sync_fallback";
    case MigOutcome::kDegradedSync:
      return "degraded_sync";
    case MigOutcome::kReject:
      return "reject";
    case MigOutcome::kVanish:
      return "vanish";
    case MigOutcome::kNumOutcomes:
      break;
  }
  return "?";
}

std::vector<TraceEventRecord> TraceSink::Snapshot() const {
  std::vector<TraceEventRecord> out;
  const size_t n = size();
  out.reserve(n);
  // When wrapped, the oldest retained record sits at emitted_ & mask_.
  const uint64_t first = emitted_ - n;
  for (uint64_t i = first; i < emitted_; i++) {
    out.push_back(records_[i & mask_]);
  }
  return out;
}

uint64_t TraceSink::CountOf(TraceEvent type) const {
  uint64_t n = 0;
  const size_t retained = size();
  const uint64_t first = emitted_ - retained;
  for (uint64_t i = first; i < emitted_; i++) {
    if (records_[i & mask_].type == type) {
      n++;
    }
  }
  return n;
}

}  // namespace nomad
