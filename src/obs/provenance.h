// Per-page provenance ledger: bounded lifecycle records for migrated pages.
//
// Counters say *how many* promotions happened; the ledger says *to whom*.
// Each tracked page accumulates its promotions, demotions, TPM aborts,
// re-dirties (shadow faults after promotion) and shadow frees, which is
// exactly the evidence needed for the paper's two pathologies:
//
//  - ping-pong (§3.1): a page demoted while it still sits in the fast tier
//    because a promotion put it there — promote/demote cycles that TPP pays
//    full copy cost for and NOMAD's shadow remap is designed to absorb;
//  - re-dirty rate: the fraction of promotions whose shadow copy was
//    invalidated by a later store, i.e. how often transactional copies run
//    into the dirty-abort path.
//
// The ledger is bounded: the first max_pages distinct pages get records,
// later pages count into dropped() (migration traffic is heavily skewed, so
// the hot set lands in the ledger long before the bound bites). Mutators
// compile away under -DNOMAD_ENABLE_TRACING=OFF and are called per
// migration event, never per access.
#ifndef SRC_OBS_PROVENANCE_H_
#define SRC_OBS_PROVENANCE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/annotations.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"

namespace nomad {

struct PageProvenance {
  uint32_t promotions = 0;
  uint32_t demotions = 0;
  uint32_t aborts = 0;        // TPM dirty-aborts while this page migrated
  uint32_t redirties = 0;     // shadow faults after a promotion
  uint32_t shadow_frees = 0;  // shadow copies reclaimed or discarded
  uint32_t ping_pongs = 0;    // demotions that undid a live promotion
  // Admission-control verdicts this page drew from the migration control
  // plane (src/nomad/admission.h): deferred for bandwidth, rejected under
  // backlog, or downgraded to sync migration by the abort-storm detector.
  uint32_t admit_defers = 0;
  uint32_t admit_rejects = 0;
  uint32_t admit_downgrades = 0;
  Cycles first_event = 0;
  Cycles last_event = 0;
  // True between a promotion and the next demotion: the page occupies the
  // fast tier because we put it there.
  bool promoted_live = false;
};

class NOMAD_SHARD_CONFINED ProvenanceLedger {
 public:
  static constexpr size_t kDefaultMaxPages = size_t{1} << 16;

  explicit ProvenanceLedger(size_t max_pages = kDefaultMaxPages) : max_pages_(max_pages) {
    pages_.reserve(max_pages_ < (size_t{1} << 14) ? max_pages_ : (size_t{1} << 14));
  }

  void OnPromote(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->promotions++;
        rec->promoted_live = true;
        promotions_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnDemote(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->demotions++;
        demotions_++;
        if (rec->promoted_live) {
          rec->ping_pongs++;
          ping_pong_events_++;
          rec->promoted_live = false;
        }
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnAbort(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->aborts++;
        aborts_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnRedirty(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->redirties++;
        redirty_events_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnAdmitDefer(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->admit_defers++;
        admit_defers_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnAdmitReject(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->admit_rejects++;
        admit_rejects_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnAdmitDowngrade(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->admit_downgrades++;
        admit_downgrades_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  void OnShadowFree(uint64_t vpn, Cycles now) {
    if constexpr (kTracingEnabled) {
      PageProvenance* rec = Touch(vpn, now);
      if (rec != nullptr) {
        rec->shadow_frees++;
        shadow_frees_++;
      }
    } else {
      Unused(vpn, now);
    }
  }

  // --- aggregates (over tracked pages only) ------------------------------
  size_t tracked() const { return pages_.size(); }
  uint64_t dropped() const { return dropped_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t demotions() const { return demotions_; }
  uint64_t aborts() const { return aborts_; }
  uint64_t redirty_events() const { return redirty_events_; }
  uint64_t ping_pong_events() const { return ping_pong_events_; }
  uint64_t shadow_frees() const { return shadow_frees_; }
  uint64_t admit_defers() const { return admit_defers_; }
  uint64_t admit_rejects() const { return admit_rejects_; }
  uint64_t admit_downgrades() const { return admit_downgrades_; }

  // Pages with at least one ping-pong.
  uint64_t ping_pong_pages() const;

  // Re-dirties per promotion: how often a transactional copy was
  // invalidated by a store before it could pay off.
  double RedirtyRate() const {
    return promotions_ == 0
               ? 0.0
               : static_cast<double>(redirty_events_) / static_cast<double>(promotions_);
  }

  struct Thrasher {
    uint64_t vpn = 0;
    uint64_t score = 0;  // 2*ping_pongs + redirties + aborts
    PageProvenance rec;
  };

  // The n highest-scoring pages, score descending, vpn ascending on ties
  // (deterministic for the byte-compare gate). Pages scoring 0 are omitted.
  std::vector<Thrasher> TopThrashers(size_t n) const;

  const std::unordered_map<uint64_t, PageProvenance>& pages() const { return pages_; }

  void Reset();

 private:
  static void Unused(uint64_t vpn, Cycles now) {
    (void)vpn;
    (void)now;
  }

  // Record for vpn, creating it if the bound allows; nullptr when dropped.
  PageProvenance* Touch(uint64_t vpn, Cycles now);

  size_t max_pages_;
  // Hash-keyed: Touch runs once per migration event, and a red-black tree
  // walk over 64k nodes was ~11% of a tpp run's wall clock. Nothing
  // iterates this map for output — TopThrashers sorts with a vpn tie-break
  // and the scalar totals are order-independent sums — so bucket order
  // never leaks into exported bytes.
  std::unordered_map<uint64_t, PageProvenance> pages_;
  uint64_t dropped_ = 0;
  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t aborts_ = 0;
  uint64_t redirty_events_ = 0;
  uint64_t ping_pong_events_ = 0;
  uint64_t shadow_frees_ = 0;
  uint64_t admit_defers_ = 0;
  uint64_t admit_rejects_ = 0;
  uint64_t admit_downgrades_ = 0;
};

}  // namespace nomad

#endif  // SRC_OBS_PROVENANCE_H_
