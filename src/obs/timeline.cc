#include "src/obs/timeline.h"

#include <cstring>

#include "src/check/check.h"
#include "src/obs/json.h"

namespace nomad {

namespace {

// Derived histogram channels: "hist.<registered name><suffix>".
constexpr const char* kHistSuffixes[] = {".count_delta", ".p50", ".p99"};

bool IsDerivedHistChannel(const char* name) {
  constexpr size_t kPrefixLen = 5;  // "hist."
  if (std::strncmp(name, "hist.", kPrefixLen) != 0) {
    return false;
  }
  const std::string rest(name + kPrefixLen);
  for (const char* suffix : kHistSuffixes) {
    const size_t slen = std::strlen(suffix);
    if (rest.size() <= slen || rest.compare(rest.size() - slen, slen, suffix) != 0) {
      continue;
    }
    const std::string base = rest.substr(0, rest.size() - slen);
    if (IsRegisteredHistogramName(base.c_str())) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsRegisteredTimelineChannel(const char* name) {
  static constexpr const char* kGauges[] = {
#define NOMAD_TL_NAME(id, str) str,
      NOMAD_TIMELINE_CHANNEL_LIST(NOMAD_TL_NAME)
#undef NOMAD_TL_NAME
  };
  for (const char* g : kGauges) {
    if (std::strcmp(g, name) == 0) {
      return true;
    }
  }
  // Counter-delta channels mirror the CounterSet keyspace, which is open
  // within cnt:: (heterogeneous lookup, fault-counter slots), so any
  // non-empty "cnt."-suffixed name is a valid derived channel.
  if (std::strncmp(name, "cnt.", 4) == 0 && name[4] != '\0') {
    return true;
  }
  return IsDerivedHistChannel(name);
}

size_t Timeline::Channel(const std::string& name) {
  NOMAD_CHECK(IsRegisteredTimelineChannel(name.c_str()),
              "unregistered timeline channel: ", name.c_str());
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == name) {
      return i;
    }
  }
  if constexpr (!kTracingEnabled) {
    // Stubbed: validate the name but never grow storage.
    return 0;
  }
  Column col;
  col.name = name;
  // Backfill so the new column stays index-aligned with existing samples.
  col.values.assign(times_.size(), 0);
  columns_.push_back(std::move(col));
  return columns_.size() - 1;
}

void Timeline::BeginSample(Cycles time) {
  if constexpr (!kTracingEnabled) {
    (void)time;
    return;
  }
  NOMAD_CHECK(!in_sample_, "BeginSample inside an open sample");
  in_sample_ = true;
  if (times_.size() == config_.capacity && config_.capacity > 0) {
    times_.erase(times_.begin());
    for (Column& col : columns_) {
      col.values.erase(col.values.begin());
    }
    dropped_++;
  }
  times_.push_back(time);
  for (Column& col : columns_) {
    col.values.push_back(0);
    col.set_this_sample = false;
  }
}

void Timeline::Set(size_t channel, uint64_t value) {
  if constexpr (!kTracingEnabled) {
    (void)channel;
    (void)value;
    return;
  }
  NOMAD_CHECK(in_sample_, "Set outside BeginSample/EndSample");
  NOMAD_CHECK(channel < columns_.size(), "bad timeline channel ", channel);
  columns_[channel].values.back() = value;
  columns_[channel].set_this_sample = true;
}

void Timeline::SetDelta(size_t channel, uint64_t absolute) {
  if constexpr (!kTracingEnabled) {
    (void)channel;
    (void)absolute;
    return;
  }
  NOMAD_CHECK(in_sample_, "SetDelta outside BeginSample/EndSample");
  NOMAD_CHECK(channel < columns_.size(), "bad timeline channel ", channel);
  Column& col = columns_[channel];
  col.values.back() = absolute - col.last_abs;
  col.last_abs = absolute;
  col.set_this_sample = true;
}

void Timeline::EndSample() {
  if constexpr (!kTracingEnabled) {
    return;
  }
  NOMAD_CHECK(in_sample_, "EndSample without BeginSample");
  in_sample_ = false;
}

void Timeline::AppendJson(JsonWriter& jw) const {
  jw.BeginObject();
  jw.Field("schema", std::string_view("nomad-timeline-v1"));
  jw.Field("interval", static_cast<uint64_t>(config_.interval));
  jw.Field("samples", static_cast<uint64_t>(times_.size()));
  jw.Field("dropped", dropped_);
  jw.Key("time").BeginArray();
  for (Cycles t : times_) {
    jw.Uint(t);
  }
  jw.EndArray();
  jw.Key("channels").BeginObject();
  for (const Column& col : columns_) {
    jw.Key(col.name).BeginArray();
    for (uint64_t v : col.values) {
      jw.Uint(v);
    }
    jw.EndArray();
  }
  jw.EndObject();
  jw.EndObject();
}

void Timeline::WriteCsv(std::ostream& out) const {
  out << "time";
  for (const Column& col : columns_) {
    out << ',' << col.name;
  }
  out << '\n';
  for (size_t row = 0; row < times_.size(); row++) {
    out << times_[row];
    for (const Column& col : columns_) {
      out << ',' << col.values[row];
    }
    out << '\n';
  }
}

}  // namespace nomad
