#include "src/obs/exporters.h"

#include <algorithm>
#include <map>

namespace nomad {

namespace {

// Cycles -> microseconds for the trace "ts" field.
double CyclesToUs(Cycles c, double ghz) { return static_cast<double>(c) / (ghz * 1e3); }

void EmitEventArgs(JsonWriter& jw, const TraceEventRecord& r) {
  jw.Key("args").BeginObject();
  jw.Field("arg", r.arg);
  jw.Field("value", r.value);
  jw.EndObject();
}

}  // namespace

void WriteChromeTrace(const TraceSink& sink, double ghz,
                      const std::vector<std::string>& actor_names, std::ostream& out) {
  JsonWriter jw(out);
  jw.BeginObject();
  jw.Field("displayTimeUnit", std::string_view("ms"));
  jw.Key("traceEvents").BeginArray();

  const std::vector<TraceEventRecord> records = sink.Snapshot();

  // Thread-name metadata for every tid that appears (plus known names).
  std::map<uint16_t, std::string> tids;
  for (const TraceEventRecord& r : records) {
    if (tids.count(r.actor) == 0) {
      tids[r.actor] = r.actor < actor_names.size()
                          ? actor_names[r.actor]
                          : "actor-" + std::to_string(r.actor);
    }
  }
  for (const auto& [tid, name] : tids) {
    jw.BeginObject();
    jw.Field("name", std::string_view("thread_name"));
    jw.Field("ph", std::string_view("M"));
    jw.Field("pid", uint64_t{0});
    jw.Field("tid", static_cast<uint64_t>(tid));
    jw.Key("args").BeginObject().Field("name", std::string_view(name)).EndObject();
    jw.EndObject();
  }

  // TPM begin/commit/abort become duration slices; ring wraparound can strip
  // a begin, so an end with no open begin degrades to an instant.
  std::map<uint16_t, uint64_t> open_tpm;
  for (const TraceEventRecord& r : records) {
    const bool is_end = r.type == TraceEvent::kTpmCommit || r.type == TraceEvent::kTpmAbort;
    if (r.type == TraceEvent::kTpmBegin) {
      jw.BeginObject();
      jw.Field("name", std::string_view("tpm"));
      jw.Field("ph", std::string_view("B"));
      jw.Field("ts", CyclesToUs(r.time, ghz));
      jw.Field("pid", uint64_t{0});
      jw.Field("tid", static_cast<uint64_t>(r.actor));
      EmitEventArgs(jw, r);
      jw.EndObject();
      open_tpm[r.actor]++;
      continue;
    }
    if (is_end && open_tpm[r.actor] > 0) {
      open_tpm[r.actor]--;
      jw.BeginObject();
      jw.Field("name", std::string_view("tpm"));
      jw.Field("ph", std::string_view("E"));
      jw.Field("ts", CyclesToUs(r.time, ghz));
      jw.Field("pid", uint64_t{0});
      jw.Field("tid", static_cast<uint64_t>(r.actor));
      jw.Key("args")
          .BeginObject()
          .Field("outcome", std::string_view(TraceEventName(r.type)))
          .Field("arg", r.arg)
          .EndObject();
      jw.EndObject();
      continue;
    }
    jw.BeginObject();
    jw.Field("name", std::string_view(TraceEventName(r.type)));
    jw.Field("ph", std::string_view("i"));
    jw.Field("s", std::string_view("t"));
    jw.Field("ts", CyclesToUs(r.time, ghz));
    jw.Field("pid", uint64_t{0});
    jw.Field("tid", static_cast<uint64_t>(r.actor));
    EmitEventArgs(jw, r);
    jw.EndObject();
  }

  // Close any transaction left in flight at the end of the run, so every
  // "B" has a matching "E" and the document loads cleanly.
  Cycles last_time = records.empty() ? 0 : records.back().time;
  for (const auto& [tid, depth] : open_tpm) {
    for (uint64_t i = 0; i < depth; i++) {
      jw.BeginObject();
      jw.Field("name", std::string_view("tpm"));
      jw.Field("ph", std::string_view("E"));
      jw.Field("ts", CyclesToUs(last_time, ghz));
      jw.Field("pid", uint64_t{0});
      jw.Field("tid", static_cast<uint64_t>(tid));
      jw.Key("args")
          .BeginObject()
          .Field("outcome", std::string_view("in_flight_at_exit"))
          .EndObject();
      jw.EndObject();
    }
  }

  jw.EndArray();
  jw.EndObject();
  out << "\n";
}

void AppendCountersJson(JsonWriter& jw, const CounterSet& counters) {
  jw.BeginObject();
  for (const auto& [name, value] : counters.All()) {
    jw.Field(name, value);
  }
  jw.EndObject();
}

void AppendLatencyJson(JsonWriter& jw, const LatencyHistogram& hist) {
  jw.BeginObject();
  jw.Field("count", hist.count());
  jw.Field("mean", hist.Mean());
  jw.Field("p50", hist.Quantile(0.50));
  jw.Field("p90", hist.Quantile(0.90));
  jw.Field("p99", hist.Quantile(0.99));
  jw.Field("p999", hist.Quantile(0.999));
  jw.Field("max", hist.Max());
  jw.EndObject();
}

void AppendBandwidthJson(JsonWriter& jw, Cycles window_cycles,
                         const std::vector<uint64_t>& window_bytes, double ghz) {
  jw.BeginObject();
  jw.Field("window_cycles", window_cycles);
  jw.Field("windows", static_cast<uint64_t>(window_bytes.size()));
  jw.Key("gbps").BeginArray();
  for (const uint64_t bytes : window_bytes) {
    const double bpc =
        window_cycles == 0 ? 0.0
                           : static_cast<double>(bytes) / static_cast<double>(window_cycles);
    jw.Double(bpc * ghz);
  }
  jw.EndArray();
  jw.EndObject();
}

void AppendProfileJson(JsonWriter& jw, const Profiler& prof) {
  jw.BeginObject();
  jw.Field("unattributed", prof.unattributed());
  jw.Key("nodes").BeginObject();
  for (uint8_t i = 0; i < kNumProfNodes; i++) {
    const ProfNode n = static_cast<ProfNode>(i);
    if (prof.total_cycles(n) == 0 && prof.self_cycles(n) == 0) {
      continue;
    }
    jw.Key(ProfNodeName(n)).BeginObject();
    jw.Field("self", prof.self_cycles(n));
    jw.Field("total", prof.total_cycles(n));
    jw.EndObject();
  }
  jw.EndObject();
  jw.EndObject();
}

void WriteCollapsedStacks(const Profiler& prof, std::ostream& out) {
  for (const auto& [key, cycles] : prof.paths()) {
    bool first = true;
    for (const ProfNode n : Profiler::DecodePath(key)) {
      out << (first ? "" : ";") << ProfNodeName(n);
      first = false;
    }
    out << " " << cycles << "\n";
  }
  if (prof.unattributed() > 0) {
    out << "(unattributed) " << prof.unattributed() << "\n";
  }
}

void AppendHistogramsJson(JsonWriter& jw, const HistogramSet& hists) {
  jw.BeginObject();
  for (const auto& [name, h] : hists.All()) {
    jw.Key(name).BeginObject();
    jw.Field("count", h.count());
    jw.Field("mean", h.Mean());
    jw.Field("p50", h.Quantile(0.50));
    jw.Field("p90", h.Quantile(0.90));
    jw.Field("p99", h.Quantile(0.99));
    jw.Field("max", h.Max());
    jw.EndObject();
  }
  jw.EndObject();
}

void AppendProvenanceJson(JsonWriter& jw, const ProvenanceLedger& ledger, size_t top_n) {
  jw.BeginObject();
  jw.Field("tracked", static_cast<uint64_t>(ledger.tracked()));
  jw.Field("dropped", ledger.dropped());
  jw.Field("promotions", ledger.promotions());
  jw.Field("demotions", ledger.demotions());
  jw.Field("aborts", ledger.aborts());
  jw.Field("redirty_events", ledger.redirty_events());
  jw.Field("shadow_frees", ledger.shadow_frees());
  jw.Field("ping_pong_events", ledger.ping_pong_events());
  jw.Field("ping_pong_pages", ledger.ping_pong_pages());
  jw.Field("redirty_rate", ledger.RedirtyRate());
  jw.Key("top_thrashers").BeginArray();
  for (const ProvenanceLedger::Thrasher& t : ledger.TopThrashers(top_n)) {
    jw.BeginObject();
    jw.Field("vpn", t.vpn);
    jw.Field("score", t.score);
    jw.Field("promotions", uint64_t{t.rec.promotions});
    jw.Field("demotions", uint64_t{t.rec.demotions});
    jw.Field("aborts", uint64_t{t.rec.aborts});
    jw.Field("redirties", uint64_t{t.rec.redirties});
    jw.Field("ping_pongs", uint64_t{t.rec.ping_pongs});
    jw.EndObject();
  }
  jw.EndArray();
  jw.EndObject();
}

void AppendTraceSummaryJson(JsonWriter& jw, const TraceSink& sink) {
  jw.BeginObject();
  jw.Field("enabled", sink.enabled());
  jw.Field("emitted", sink.total_emitted());
  jw.Field("retained", static_cast<uint64_t>(sink.size()));
  jw.Field("dropped", sink.dropped());
  jw.Key("events").BeginObject();
  uint64_t per_type[static_cast<size_t>(TraceEvent::kNumEvents)] = {};
  for (const TraceEventRecord& r : sink.Snapshot()) {
    per_type[static_cast<size_t>(r.type)]++;
  }
  for (size_t i = 0; i < static_cast<size_t>(TraceEvent::kNumEvents); i++) {
    if (per_type[i] > 0) {
      jw.Field(TraceEventName(static_cast<TraceEvent>(i)), per_type[i]);
    }
  }
  jw.EndObject();
  jw.EndObject();
}

}  // namespace nomad
