// Exporters: turn a run's instruments into machine-readable artifacts.
//
//  - WriteChromeTrace: the TraceSink as a chrome://tracing / Perfetto JSON
//    document. TPM transactions become duration slices on the kpromote row
//    (begin -> commit/abort); every other event is an instant.
//  - Append*Json: building blocks the harness reducer composes into
//    metrics.json (counters, latency percentiles, windowed bandwidth).
#ifndef SRC_OBS_EXPORTERS_H_
#define SRC_OBS_EXPORTERS_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/hist.h"
#include "src/obs/json.h"
#include "src/obs/prof.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/sim/stats.h"

namespace nomad {

// Writes {"traceEvents": [...]} with timestamps in microseconds derived from
// virtual cycles at `ghz`. `actor_names[i]` labels trace tid i (thread
// metadata events); missing entries fall back to "actor-N".
void WriteChromeTrace(const TraceSink& sink, double ghz,
                      const std::vector<std::string>& actor_names, std::ostream& out);

// {"name": count, ...} for every counter, sorted by name.
void AppendCountersJson(JsonWriter& jw, const CounterSet& counters);

// {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,"p999":..,"max":..}.
void AppendLatencyJson(JsonWriter& jw, const LatencyHistogram& hist);

// {"window_cycles":..,"windows":N,"gbps":[...]} - per-window bandwidth in
// GB/s at `ghz`.
void AppendBandwidthJson(JsonWriter& jw, Cycles window_cycles,
                         const std::vector<uint64_t>& window_bytes, double ghz);

// {"enabled":..,"emitted":..,"retained":..,"dropped":..,"events":{...}} -
// per-type counts of the retained records.
void AppendTraceSummaryJson(JsonWriter& jw, const TraceSink& sink);

// {"unattributed":..,"nodes":{"tpm":{"self":..,"total":..},...}} - cycle
// attribution per profiler node, in ProfNode declaration order, nodes that
// never saw a cycle omitted.
void AppendProfileJson(JsonWriter& jw, const Profiler& prof);

// Collapsed-stack text ("tpm;tpm_copy 1234" per line, outermost frame
// first), directly consumable by flamegraph.pl / inferno / speedscope.
// Lines come out in deterministic path-key order.
void WriteCollapsedStacks(const Profiler& prof, std::ostream& out);

// {"name":{"count":..,"mean":..,"p50":..,"p90":..,"p99":..,"max":..},...}
// for every recorded histogram, sorted by name.
void AppendHistogramsJson(JsonWriter& jw, const HistogramSet& hists);

// {"tracked":..,"dropped":..,"promotions":..,...,"redirty_rate":..,
//  "top_thrashers":[{"vpn":..,"score":..,...}]} - ledger aggregates plus
// the top_n highest-scoring pages.
void AppendProvenanceJson(JsonWriter& jw, const ProvenanceLedger& ledger, size_t top_n = 10);

}  // namespace nomad

#endif  // SRC_OBS_EXPORTERS_H_
