// Minimal streaming JSON writer for the exporters. No external deps; emits
// valid, locale-independent JSON (non-finite doubles become null).
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace nomad {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Must be called inside an object, before each value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  // Inserts pre-rendered JSON as one value. The caller vouches for validity.
  JsonWriter& Raw(std::string_view json);

  // Convenience: Key(k) + value.
  JsonWriter& Field(std::string_view k, std::string_view v) { return Key(k).String(v); }
  JsonWriter& Field(std::string_view k, uint64_t v) { return Key(k).Uint(v); }
  JsonWriter& Field(std::string_view k, double v) { return Key(k).Double(v); }
  JsonWriter& Field(std::string_view k, bool v) { return Key(k).Bool(v); }

 private:
  // Writes the separating comma and marks that a value is being emitted.
  void BeforeValue();

  std::ostream& out_;
  // One entry per open container: true once it holds at least one element.
  std::vector<bool> has_elems_;
  bool after_key_ = false;
};

// Escapes and quotes a string per RFC 8259.
std::string JsonQuote(std::string_view s);

}  // namespace nomad

#endif  // SRC_OBS_JSON_H_
