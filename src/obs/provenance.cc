#include "src/obs/provenance.h"

#include <algorithm>

namespace nomad {

PageProvenance* ProvenanceLedger::Touch(uint64_t vpn, Cycles now) {
  auto it = pages_.find(vpn);
  if (it == pages_.end()) {
    if (pages_.size() >= max_pages_) {
      dropped_++;
      return nullptr;
    }
    it = pages_.emplace(vpn, PageProvenance{}).first;
    it->second.first_event = now;
  }
  it->second.last_event = now;
  return &it->second;
}

uint64_t ProvenanceLedger::ping_pong_pages() const {
  uint64_t n = 0;
  for (const auto& [vpn, rec] : pages_) {
    (void)vpn;
    n += rec.ping_pongs > 0 ? 1 : 0;
  }
  return n;
}

std::vector<ProvenanceLedger::Thrasher> ProvenanceLedger::TopThrashers(size_t n) const {
  std::vector<Thrasher> all;
  for (const auto& [vpn, rec] : pages_) {
    const uint64_t score =
        2 * uint64_t{rec.ping_pongs} + uint64_t{rec.redirties} + uint64_t{rec.aborts};
    if (score > 0) {
      all.push_back(Thrasher{vpn, score, rec});
    }
  }
  std::sort(all.begin(), all.end(), [](const Thrasher& a, const Thrasher& b) {
    return a.score != b.score ? a.score > b.score : a.vpn < b.vpn;
  });
  if (all.size() > n) {
    all.resize(n);
  }
  return all;
}

void ProvenanceLedger::Reset() {
  pages_.clear();
  dropped_ = 0;
  promotions_ = 0;
  demotions_ = 0;
  aborts_ = 0;
  redirty_events_ = 0;
  ping_pong_events_ = 0;
  shadow_frees_ = 0;
}

}  // namespace nomad
