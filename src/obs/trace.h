// Structured event tracing for the simulator.
//
// A TraceSink is a fixed-capacity ring buffer of typed, virtual-time-stamped
// records. Hot paths emit one record per *kernel event* (a TPM transaction
// stage, a promotion, a kswapd wakeup, ...), never per memory access, so the
// enabled-path cost is one branch plus one store. When the build disables
// tracing (cmake -DNOMAD_ENABLE_TRACING=OFF, which defines NOMAD_TRACING=0),
// every Emit() compiles away to nothing and the sink allocates no storage,
// guaranteeing zero hot-path overhead.
//
// Exporters (src/obs/exporters.h) turn a sink's contents into a
// chrome://tracing timeline; the harness reducer (src/harness/experiment.h)
// folds counts into metrics.json.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/annotations.h"
#include "src/obs/event_registry.h"
#include "src/sim/clock.h"

namespace nomad {

#ifndef NOMAD_TRACING
#define NOMAD_TRACING 1
#endif

// True when the build carries tracing support. Tests that assert on emitted
// events must skip when this is false.
inline constexpr bool kTracingEnabled = NOMAD_TRACING != 0;

struct TraceEventRecord {
  Cycles time = 0;     // virtual time of emission
  uint64_t arg = 0;    // event-specific subject (see table above)
  uint64_t value = 0;  // event-specific magnitude
  uint16_t actor = 0;  // engine ActorId of the emitting actor
  TraceEvent type = TraceEvent::kNumEvents;
};

class NOMAD_SHARD_CONFINED TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  // Capacity is rounded up to a power of two (minimum 2).
  explicit TraceSink(size_t capacity = kDefaultCapacity) {
    if constexpr (kTracingEnabled) {
      const size_t cap = std::bit_ceil(capacity < 2 ? size_t{2} : capacity);
      records_.resize(cap);
      mask_ = cap - 1;
    }
  }

  void Emit(TraceEvent type, Cycles time, uint16_t actor, uint64_t arg, uint64_t value = 0) {
    if constexpr (kTracingEnabled) {
      if (!enabled_) {
        return;
      }
      records_[emitted_ & mask_] = TraceEventRecord{time, arg, value, actor, type};
      emitted_++;
    } else {
      (void)type;
      (void)time;
      (void)actor;
      (void)arg;
      (void)value;
    }
  }

  // Runtime switch; starts enabled (in tracing builds).
  void set_enabled(bool on) { enabled_ = kTracingEnabled && on; }
  bool enabled() const { return enabled_; }

  size_t capacity() const { return kTracingEnabled ? mask_ + 1 : 0; }

  // Records currently retained (<= capacity).
  size_t size() const { return emitted_ < capacity() ? static_cast<size_t>(emitted_) : capacity(); }

  // Total records ever emitted; emitted - size were overwritten by wraparound.
  uint64_t total_emitted() const { return emitted_; }
  uint64_t dropped() const { return emitted_ - size(); }

  // Retained records in chronological order (oldest first).
  std::vector<TraceEventRecord> Snapshot() const;

  // Number of retained records of one type.
  uint64_t CountOf(TraceEvent type) const;

  void Clear() {
    emitted_ = 0;
  }

 private:
  std::vector<TraceEventRecord> records_;
  size_t mask_ = 0;
  uint64_t emitted_ = 0;
  bool enabled_ = kTracingEnabled;
};

}  // namespace nomad

#endif  // SRC_OBS_TRACE_H_
