#include "src/fault/fault_injector.h"

#include <sstream>

namespace nomad {

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kAllocFail:
      return "alloc_fail";
    case FaultKind::kDirtyWrite:
      return "dirty_write";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kPcqOverflow:
      return "pcq_overflow";
    case FaultKind::kTlbDelay:
      return "tlb_delay";
    case FaultKind::kShardDelay:
      return "shard_delay";
    case FaultKind::kShardStall:
      return "shard_stall";
    case FaultKind::kAllocFailWave:
      return "alloc_fail_wave";
    case FaultKind::kNumKinds:
      break;
  }
  return "?";
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {
  // One independent stream per kind: mixing the kind index into the seed
  // keeps each kind's decision sequence stable no matter how often the
  // other kinds are consulted.
  for (size_t k = 0; k < kNumFaultKinds; k++) {
    streams_[k].rng = Rng(seed ^ (0xFA017EC7ull * (k + 1)));
  }
}

void FaultInjector::set_schedule(FaultKind k, const FaultSchedule& s) {
  streams_[static_cast<size_t>(k)].schedule = s;
}

bool FaultInjector::ShouldInject(FaultKind k) {
  Stream& st = streams_[static_cast<size_t>(k)];
  const uint64_t index = st.opportunities++;
  if (!st.schedule.armed()) {
    return false;
  }
  bool fire = st.schedule.trigger_count > 0 && index >= st.schedule.trigger_start &&
              index < st.schedule.trigger_start + st.schedule.trigger_count;
  // Always draw when a probability is set, so the stream stays aligned with
  // the opportunity index even inside a trigger window.
  if (st.schedule.probability > 0.0 && st.rng.Chance(st.schedule.probability)) {
    fire = true;
  }
  if (!fire) {
    return false;
  }
  st.injected++;
  if (trace_ != nullptr) {
    const Cycles now = engine_ != nullptr ? engine_->now() : 0;
    const uint16_t actor =
        engine_ != nullptr ? static_cast<uint16_t>(engine_->current()) : uint16_t{0};
    trace_->Emit(TraceEvent::kFaultInject, now, actor, static_cast<uint64_t>(k), index);
  }
  return true;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t n = 0;
  for (const Stream& st : streams_) {
    n += st.injected;
  }
  return n;
}

std::string FaultInjector::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  for (size_t k = 0; k < kNumFaultKinds; k++) {
    const FaultSchedule& s = streams_[k].schedule;
    if (!s.armed()) {
      continue;
    }
    os << ' ' << FaultKindName(static_cast<FaultKind>(k)) << "{p=" << s.probability;
    if (s.trigger_count > 0) {
      os << " win=[" << s.trigger_start << ',' << s.trigger_start + s.trigger_count << ')';
    }
    if (s.latency_cycles > 0) {
      os << " lat=" << s.latency_cycles;
    }
    os << " hit=" << streams_[k].injected << '/' << streams_[k].opportunities << '}';
  }
  return os.str();
}

}  // namespace nomad
