// Deterministic fault injection for the migration paths.
//
// A FaultInjector is a seeded source of adversity that the kernel-side
// mechanisms consult at well-defined *opportunity points*: a fast-tier frame
// allocation, a TPM commit's dirty check, a cross-tier page copy, a PCQ
// enqueue, a TLB shootdown. Each fault kind carries its own schedule —
// a Bernoulli probability per opportunity, an optional deterministic trigger
// window ("fire on opportunities [start, start+count)"), or both — and its
// own deterministic RNG stream, so the decision sequence for one kind does
// not depend on how often other kinds are consulted. Every injection is
// emitted to the owning MemorySystem's TraceSink as a kFaultInject event.
//
// With -DNOMAD_ENABLE_FAULTS=OFF (which defines NOMAD_FAULTS=0) every
// injection site is guarded by `if constexpr (kFaultInjectionEnabled)` and
// dead-codes away, so production builds carry zero hot-path overhead; the
// injector class itself stays linkable for tools and tests.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "src/base/annotations.h"
#include "src/obs/trace.h"
#include "src/sim/clock.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"

namespace nomad {

#ifndef NOMAD_FAULTS
#define NOMAD_FAULTS 1
#endif

// True when the build carries fault-injection support.
inline constexpr bool kFaultInjectionEnabled = NOMAD_FAULTS != 0;

// Every injectable fault. Values are stable: they appear as the `arg` of
// kFaultInject trace records and in chaos_sim reproducer lines.
enum class FaultKind : uint8_t {
  kAllocFail = 0,   // fast-tier frame allocation transiently fails
  kDirtyWrite,      // a store lands mid-copy: forces the TPM abort path
  kLatencySpike,    // device contention: a copy or demand access slows down
  kPcqOverflow,     // queue pressure: PCQ behaves as if at capacity
  kTlbDelay,        // a shootdown ack straggles: extra initiator-side wait
  // Shard-aware kinds, consulted once per (shard, epoch) by the lockstep
  // harness from the shard's own injector, so decisions stay independent
  // of the worker-thread count.
  kShardDelay,      // cross-shard message delivery slips one epoch
  kShardStall,      // the shard stalls at the barrier: no virtual progress
  kAllocFailWave,   // arms a burst window of kAllocFail on this shard
  kNumKinds,
};

inline constexpr size_t kNumFaultKinds = static_cast<size_t>(FaultKind::kNumKinds);

// Stable lower_snake_case name for reports and reproducer lines.
const char* FaultKindName(FaultKind k);

// Per-kind schedule. A fault fires at an opportunity when the opportunity
// index falls inside the trigger window OR the Bernoulli draw hits. The
// default schedule never fires.
struct FaultSchedule {
  double probability = 0.0;      // per-opportunity Bernoulli
  uint64_t trigger_start = 0;    // first opportunity index of the window
  uint64_t trigger_count = 0;    // window length; 0 = no window
  Cycles latency_cycles = 0;     // magnitude for kLatencySpike / kTlbDelay

  bool armed() const { return probability > 0.0 || trigger_count > 0; }
};

class NOMAD_SHARD_CONFINED FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  uint64_t seed() const { return seed_; }

  void set_schedule(FaultKind k, const FaultSchedule& s);
  const FaultSchedule& schedule(FaultKind k) const {
    return streams_[static_cast<size_t>(k)].schedule;
  }

  // Binds the trace sink injections are reported to and the engine whose
  // virtual clock stamps them. Either may be null (no tracing / time 0);
  // the injector owns neither.
  void Bind(TraceSink* sink, Engine* engine) {
    trace_ = sink;
    engine_ = engine;
  }

  // One opportunity for fault kind `k`: advances the kind's opportunity
  // counter and returns whether the fault fires. The decision sequence is a
  // pure function of (seed, kind, call index).
  bool ShouldInject(FaultKind k);

  // Extra cycles to charge for a latency fault of kind `k`.
  Cycles LatencyFor(FaultKind k) const {
    return streams_[static_cast<size_t>(k)].schedule.latency_cycles;
  }

  uint64_t opportunities(FaultKind k) const {
    return streams_[static_cast<size_t>(k)].opportunities;
  }
  uint64_t injected(FaultKind k) const { return streams_[static_cast<size_t>(k)].injected; }
  uint64_t total_injected() const;

  // One-line schedule summary ("alloc_fail p=0.01 win=[100,150) ..."),
  // for chaos_sim reproducer output.
  std::string Describe() const;

 private:
  struct Stream {
    FaultSchedule schedule;
    Rng rng{0};
    uint64_t opportunities = 0;
    uint64_t injected = 0;
  };

  uint64_t seed_;
  Stream streams_[kNumFaultKinds];
  TraceSink* trace_ = nullptr;
  Engine* engine_ = nullptr;
};

}  // namespace nomad

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
