#include "src/check/invariants.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

namespace nomad {

namespace {

const char* LruListName(LruList l) {
  switch (l) {
    case LruList::kNone:
      return "none";
    case LruList::kInactive:
      return "inactive";
    case LruList::kActive:
      return "active";
  }
  return "?";
}

std::string FrameDesc(const FramePool& pool, Pfn pfn) {
  const PageFrame f = pool.frame(pfn);
  std::ostringstream os;
  os << "pfn=" << pfn << "{tier=" << TierName(f.tier()) << " in_use=" << f.in_use()
     << " owner=" << (f.owner() != nullptr) << " vpn=";
  if (f.vpn() == kInvalidVpn) {
    os << "-";
  } else {
    os << f.vpn();
  }
  os << " lru=" << LruListName(f.lru()) << " active=" << f.active()
     << " shadowed=" << f.shadowed() << " is_shadow=" << f.is_shadow()
     << " migrating=" << f.migrating() << " in_pcq=" << f.in_pcq()
     << " in_pending=" << f.in_pending() << " gen=" << f.generation() << "}";
  return os.str();
}

}  // namespace

std::vector<InvariantViolation> InvariantChecker::Check() const {
  checks_run_++;
  std::vector<InvariantViolation> out;
  FramePool& pool = ms_->pool();
  const uint64_t total =
      pool.TotalFrames(Tier::kFast) + pool.TotalFrames(Tier::kSlow);

  auto violate = [&](const char* rule, std::string detail) {
    out.push_back(InvariantViolation{rule, std::move(detail)});
  };

  // ---- Pass 1: page tables. Each present PTE must resolve to an in-use,
  // non-shadow frame whose reverse map points straight back at it.
  std::vector<uint32_t> pte_refs(total, 0);
  for (const AddressSpace* as : spaces_) {
    as->table().ForEachPresent([&](Vpn vpn, const Pte& pte) {
      if (pte.pfn >= total) {
        std::ostringstream os;
        os << "vpn=" << vpn << " maps out-of-range pfn=" << pte.pfn;
        violate("pte.frame_identity", os.str());
        return;
      }
      pte_refs[pte.pfn]++;
      const PageFrame f = pool.frame(pte.pfn);
      if (!f.in_use() || f.is_shadow() || f.owner() != as || f.vpn() != vpn) {
        std::ostringstream os;
        os << "vpn=" << vpn << " maps " << FrameDesc(pool, pte.pfn)
           << (f.in_use() ? "" : " [frame is free]")
           << (f.is_shadow() ? " [frame is a shadow]" : "");
        violate("pte.frame_identity", os.str());
      }
    });
  }

  // ---- Pass 2: LRU lists. Walk both lists of both tiers tail-to-head,
  // verifying link symmetry, list/flag agreement, and the recorded sizes.
  // 0 = not seen on any list; 1 = inactive; 2 = active.
  std::vector<uint8_t> on_list(total, 0);
  for (int t = 0; t < kNumTiers; t++) {
    const Tier tier = t == 0 ? Tier::kFast : Tier::kSlow;
    LruLists& lru = ms_->lru(tier);
    for (int which = 0; which < 2; which++) {
      const bool active_list = which == 1;
      const LruList want = active_list ? LruList::kActive : LruList::kInactive;
      const size_t expect = active_list ? lru.active_size() : lru.inactive_size();
      Pfn cur = active_list ? lru.ActiveTail() : lru.InactiveTail();
      Pfn came_from = kInvalidPfn;  // the node whose lru_prev brought us here
      size_t n = 0;
      while (cur != kInvalidPfn) {
        if (n > expect) {
          std::ostringstream os;
          os << TierName(tier) << ' ' << LruListName(want)
             << " list walk exceeded recorded size " << expect << " (cycle?)";
          violate("lru.link", os.str());
          break;
        }
        const PageFrame f = pool.frame(cur);
        if (on_list[cur] != 0) {
          violate("lru.link", "frame on two lists: " + FrameDesc(pool, cur));
          break;
        }
        on_list[cur] = active_list ? 2 : 1;
        if (f.lru() != want || f.tier() != tier || !f.in_use()) {
          std::ostringstream os;
          os << "on " << TierName(tier) << ' ' << LruListName(want) << " list but "
             << FrameDesc(pool, cur);
          violate("lru.membership", os.str());
        }
        if (f.active() != active_list) {
          std::ostringstream os;
          os << "PG_active=" << f.active() << " on " << LruListName(want)
             << " list: " << FrameDesc(pool, cur);
          violate("lru.active_flag", os.str());
        }
        if (f.lru_next() != came_from) {
          std::ostringstream os;
          os << "asymmetric links at " << FrameDesc(pool, cur) << " lru_next="
             << static_cast<int64_t>(f.lru_next() == kInvalidPfn ? -1
                                                               : static_cast<int64_t>(f.lru_next()));
          violate("lru.link", os.str());
        }
        came_from = cur;
        cur = f.lru_prev();
        n++;
      }
      if (n != expect) {
        std::ostringstream os;
        os << TierName(tier) << ' ' << LruListName(want) << " list size " << expect
           << " but walk found " << n << " frames";
        violate("lru.size", os.str());
      }
    }
  }

  // ---- Pass 3: frame scan. Classify every frame and cross-check against
  // the PTE reference counts, the LRU walk, the shadow index, and the
  // reserved set.
  std::unordered_set<Pfn> reserved(ms_->reserved_frames().begin(),
                                   ms_->reserved_frames().end());
  uint64_t in_use_count[kNumTiers] = {0, 0};
  uint64_t transient = 0;
  uint64_t migrating = 0;
  uint64_t shadow_frames = 0;
  uint64_t masters_with_shadow = 0;
  uint64_t flagged_in_pcq = 0;
  uint64_t flagged_in_pending = 0;
  std::vector<uint8_t> shadow_claims(total, 0);

  // First sub-pass: masters claim their shadows through the index, so the
  // shadow-frame sub-pass below can detect orphans.
  if (shadows_ != nullptr) {
    for (Pfn pfn = 0; pfn < total; pfn++) {
      const PageFrame f = pool.frame(pfn);
      if (!f.in_use() || !f.shadowed()) {
        continue;
      }
      masters_with_shadow++;
      const Pfn shadow = shadows_->ShadowOf(pfn);
      if (shadow == kInvalidPfn || shadow >= total) {
        violate("shadow.index", "shadowed master has no index entry: " + FrameDesc(pool, pfn));
        continue;
      }
      shadow_claims[shadow]++;
      const PageFrame s = pool.frame(shadow);
      if (!s.in_use() || !s.is_shadow()) {
        violate("shadow.index",
                "master " + FrameDesc(pool, pfn) + " claims non-shadow " + FrameDesc(pool, shadow));
      }
      if (f.tier() != Tier::kFast) {
        violate("shadow.master_fast", "shadowed master off the fast tier: " + FrameDesc(pool, pfn));
      }
      // Clean-only: the master must still carry the write protection that
      // guards shadow coherence, and must never have been dirtied under it.
      if (f.owner() != nullptr) {
        const Pte* pte = f.owner()->table().Lookup(f.vpn());
        if (pte != nullptr && pte->present && pte->pfn == pfn &&
            (pte->writable || pte->dirty)) {
          std::ostringstream os;
          os << "shadowed master writable=" << pte->writable << " dirty=" << pte->dirty
             << ": " << FrameDesc(pool, pfn);
          violate("shadow.clean_only", os.str());
        }
      }
    }
  }

  for (Pfn pfn = 0; pfn < total; pfn++) {
    const PageFrame f = pool.frame(pfn);
    if (!f.in_use()) {
      if (f.lru() != LruList::kNone || on_list[pfn] != 0) {
        violate("pool.free_state", "free frame on an LRU list: " + FrameDesc(pool, pfn));
      }
      if (f.owner() != nullptr || f.is_shadow()) {
        violate("pool.free_state", "free frame retains state: " + FrameDesc(pool, pfn));
      }
      continue;
    }
    in_use_count[TierIndex(f.tier())]++;
    if (f.in_pcq()) {
      flagged_in_pcq++;
    }
    if (f.in_pending()) {
      flagged_in_pending++;
    }
    if (f.migrating()) {
      migrating++;
      if (f.owner() == nullptr) {
        violate("tpm.migrating_mapped", "migrating frame unmapped: " + FrameDesc(pool, pfn));
      }
    }
    // LRU flag vs walk agreement (both directions).
    const uint8_t want_list = f.lru() == LruList::kNone ? 0 : (f.lru() == LruList::kInactive ? 1 : 2);
    if (want_list != on_list[pfn]) {
      violate("lru.link", "frame list flag disagrees with list walk: " + FrameDesc(pool, pfn));
    }
    if (f.is_shadow()) {
      shadow_frames++;
      if (f.owner() != nullptr || pte_refs[pfn] > 0) {
        violate("shadow.unmapped", "shadow frame is mapped: " + FrameDesc(pool, pfn));
      }
      if (f.lru() != LruList::kNone) {
        violate("shadow.off_lru", "shadow frame on an LRU list: " + FrameDesc(pool, pfn));
      }
      if (f.tier() != Tier::kSlow) {
        violate("shadow.slow_tier", "shadow frame off the slow tier: " + FrameDesc(pool, pfn));
      }
      if (f.shadowed()) {
        violate("shadow.unmapped", "frame is both master and shadow: " + FrameDesc(pool, pfn));
      }
      if (shadows_ != nullptr && shadow_claims[pfn] != 1) {
        std::ostringstream os;
        os << "shadow frame claimed by " << static_cast<int>(shadow_claims[pfn])
           << " masters: " << FrameDesc(pool, pfn);
        violate("shadow.index", os.str());
      }
    } else if (f.owner() != nullptr) {
      if (pte_refs[pfn] != 1) {
        std::ostringstream os;
        os << "mapped frame referenced by " << pte_refs[pfn]
           << " present PTEs: " << FrameDesc(pool, pfn);
        violate("pte.unique_mapping", os.str());
      }
      if (!f.migrating() && f.lru() == LruList::kNone) {
        violate("lru.mapped_listed", "mapped frame on no LRU list: " + FrameDesc(pool, pfn));
      }
      // Scanner bitmap: any frame the hint-fault scanner could still arm
      // must have its scan-candidate bit set. The bitmap is conservative
      // (bits may linger on non-armable frames) but a dropped bit means
      // the scanner never samples that page again.
      const Pte* pte = f.owner()->table().Lookup(f.vpn());
      if (pte != nullptr && pte->present && pte->pfn == pfn && !pte->prot_none &&
          !pool.IsScanCandidate(pfn)) {
        violate("scanner.candidate_bitmap",
                "armable frame missing from scan-candidate bitmap: " + FrameDesc(pool, pfn));
      }
    } else if (reserved.count(pfn) == 0) {
      transient++;
      if (f.lru() != LruList::kNone) {
        violate("lru.unmapped_listed", "unmapped frame on an LRU list: " + FrameDesc(pool, pfn));
      }
    }
  }

  if (transient > options_.max_transient_frames) {
    std::ostringstream os;
    os << transient << " unaccounted in-use frames (allowed "
       << options_.max_transient_frames << ")";
    violate("pool.transient", os.str());
  }
  if (migrating > options_.max_transient_frames) {
    std::ostringstream os;
    os << migrating << " frames marked migrating (allowed " << options_.max_transient_frames
       << ")";
    violate("tpm.single_flight", os.str());
  }
  if (shadows_ != nullptr && shadow_frames != shadows_->count()) {
    std::ostringstream os;
    os << "shadow index holds " << shadows_->count() << " entries but " << shadow_frames
       << " frames are flagged is_shadow";
    violate("shadow.index_count", os.str());
  }
  if (shadows_ != nullptr && masters_with_shadow != shadows_->count()) {
    std::ostringstream os;
    os << "shadow index holds " << shadows_->count() << " entries but " << masters_with_shadow
       << " masters are flagged shadowed";
    violate("shadow.index_count", os.str());
  }

  // ---- Pass 4: per-tier free/used accounting.
  for (int t = 0; t < kNumTiers; t++) {
    const Tier tier = t == 0 ? Tier::kFast : Tier::kSlow;
    if (in_use_count[t] + pool.FreeFrames(tier) != pool.TotalFrames(tier)) {
      std::ostringstream os;
      os << TierName(tier) << ": " << in_use_count[t] << " in use + "
         << pool.FreeFrames(tier) << " free != " << pool.TotalFrames(tier) << " total";
      violate("pool.accounting", os.str());
    }
  }

  // ---- Pass 5: queue-flag sanity. Queues drop stale entries lazily, so a
  // queue can be larger than its flagged population but never smaller.
  if (queues_ != nullptr) {
    if (flagged_in_pcq > queues_->pcq_size()) {
      std::ostringstream os;
      os << flagged_in_pcq << " frames flagged in_pcq but the PCQ holds "
         << queues_->pcq_size();
      violate("pcq.flag_leak", os.str());
    }
    // A popped-but-in-flight transaction keeps in_pending set while off the
    // queue; allow one such frame per in-flight transaction.
    if (flagged_in_pending >
        queues_->pending_size() + queues_->deferred_size() + options_.max_transient_frames) {
      std::ostringstream os;
      os << flagged_in_pending << " frames flagged in_pending but pending="
         << queues_->pending_size() << " deferred=" << queues_->deferred_size();
      violate("pcq.flag_leak", os.str());
    }
  }

  if (!out.empty()) {
    ms_->Trace(TraceEvent::kInvariantFail, out.size());
  }
  return out;
}

void InvariantChecker::CheckOrDie() const {
  const std::vector<InvariantViolation> violations = Check();
  if (violations.empty()) {
    return;
  }
  std::fprintf(stderr, "InvariantChecker: %zu violation(s) at cycle %llu:\n",
               violations.size(), static_cast<unsigned long long>(ms_->Now()));
  for (const InvariantViolation& v : violations) {
    std::fprintf(stderr, "  [%s] %s\n", v.rule.c_str(), v.detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

Cycles InvariantCheckActor::Step(Engine& engine) {
  if (!violations_.empty()) {
    // Already failed in record mode; stay dormant so the driver can report.
    engine.SleepUntil(kNever);
    return 0;
  }
  audits_++;
  if (config_.die_on_violation) {
    checker_->CheckOrDie();
  } else {
    violations_ = checker_->Check();
    if (!violations_.empty()) {
      engine.SleepUntil(kNever);
      return 1;
    }
  }
  engine.SleepUntil(engine.now() + config_.period);
  return 1;
}

}  // namespace nomad
