#include "src/check/check.h"

#include <cstdio>
#include <cstdlib>

namespace nomad {
namespace check_internal {

void CheckFailed(const char* file, int line, const char* expr, const std::string& detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "%s:%d: NOMAD_CHECK failed: %s\n", file, line, expr);
  } else {
    std::fprintf(stderr, "%s:%d: NOMAD_CHECK failed: %s (%s)\n", file, line, expr,
                 detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace nomad
