// InvariantChecker: whole-system structural audit of the non-exclusive
// tiering state.
//
// Nomad's correctness claims are structural: every mapped VPN resolves to
// exactly one present PTE backed by an in-use frame; shadow frames are
// clean-only copies that are never PTE-mapped; LRU membership agrees with
// per-frame state; per-tier free/used accounting balances. The checker
// walks the page tables, the frame pool, both tiers' LRU lists, and the
// shadow index and reports every violated rule with enough detail (VPN,
// PFN, frame flags) to debug it. It runs in any build type — unlike
// assert() it does not compile out of RelWithDebInfo — and is cheap enough
// to run periodically from the simulation engine (InvariantCheckActor) and
// at the end of every test.
//
// The checker is read-only and quiescence-based: it must be called between
// engine steps, where the only legal "loose" state is the in-flight TPM
// transaction's destination frame (bounded by Options::max_transient_frames).
#ifndef SRC_CHECK_INVARIANTS_H_
#define SRC_CHECK_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/mm/memory_system.h"
#include "src/nomad/pcq.h"
#include "src/nomad/shadow.h"

namespace nomad {

struct InvariantViolation {
  std::string rule;    // stable rule id, e.g. "pte.frame_identity"
  std::string detail;  // offending vpn/pfn and frame state
};

class InvariantChecker {
 public:
  struct Options {
    // In-use frames that are legitimately neither mapped, shadow, nor
    // reserved: the destination frame of a TPM transaction between Begin
    // and Commit. One per kpromote actor.
    uint64_t max_transient_frames = 1;
  };

  explicit InvariantChecker(MemorySystem* ms) : InvariantChecker(ms, Options{}) {}
  InvariantChecker(MemorySystem* ms, const Options& options) : ms_(ms), options_(options) {}

  // Registers an address space whose page table the checker walks. All
  // spaces mapping frames of ms must be registered or the unique-mapping
  // rule will report false orphans.
  void AddSpace(const AddressSpace* as) { spaces_.push_back(as); }

  // Optional NOMAD-side structures; when unset their rules are skipped.
  void set_shadows(const ShadowManager* shadows) { shadows_ = shadows; }
  void set_queues(const PromotionQueues* queues) { queues_ = queues; }

  // Runs every rule; returns all violations found (empty = healthy).
  std::vector<InvariantViolation> Check() const;

  // Check() that prints each violation to stderr and aborts on any.
  void CheckOrDie() const;

  uint64_t checks_run() const { return checks_run_; }

 private:
  MemorySystem* ms_;
  Options options_;
  std::vector<const AddressSpace*> spaces_;
  const ShadowManager* shadows_ = nullptr;
  const PromotionQueues* queues_ = nullptr;
  mutable uint64_t checks_run_ = 0;
};

// Periodic engine-driven audit. On violation either aborts with a full
// report (die_on_violation, the test default) or records the violations and
// goes dormant so the driver can print a reproducer (chaos_sim).
class InvariantCheckActor : public Actor {
 public:
  struct Config {
    Cycles period = 250000;        // virtual cycles between audits
    bool die_on_violation = true;  // false: record and stop auditing
  };

  InvariantCheckActor(InvariantChecker* checker, const Config& config)
      : checker_(checker), config_(config) {}

  Cycles Step(Engine& engine) override;
  std::string name() const override { return "invariant-check"; }

  bool failed() const { return !violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  uint64_t audits() const { return audits_; }

 private:
  InvariantChecker* checker_;
  Config config_;
  std::vector<InvariantViolation> violations_;
  uint64_t audits_ = 0;
};

}  // namespace nomad

#endif  // SRC_CHECK_INVARIANTS_H_
