// NOMAD_CHECK: structural invariant assertions that survive release builds.
//
// The simulator's correctness argument rests on structural invariants (LRU
// links, frame accounting, shadow exclusivity). Plain assert() compiles out
// of the RelWithDebInfo builds CI actually runs, so a violated invariant
// silently corrupts the simulation instead of stopping it. NOMAD_CHECK is
// always on: on failure it prints the expression, file/line, and a caller-
// supplied detail trail (the offending VPN/PFN and frame state), then
// aborts. The cost on the success path is one predictable branch, which is
// negligible next to the list/pool work these checks guard.
//
//   NOMAD_CHECK(f.in_use, "pfn=", pfn, " tier=", TierName(f.tier));
#ifndef SRC_CHECK_CHECK_H_
#define SRC_CHECK_CHECK_H_

#include <sstream>
#include <string>

namespace nomad {
namespace check_internal {

// Streams every argument into one detail string. Zero args -> empty.
template <typename... Args>
std::string Detail(const Args&... args) {
  if constexpr (sizeof...(args) == 0) {
    return std::string();
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

// Prints "<file>:<line>: NOMAD_CHECK failed: <expr> (<detail>)" to stderr
// and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail);

}  // namespace check_internal
}  // namespace nomad

#define NOMAD_CHECK(cond, ...)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::nomad::check_internal::CheckFailed(                                     \
          __FILE__, __LINE__, #cond, ::nomad::check_internal::Detail(__VA_ARGS__)); \
    }                                                                           \
  } while (0)

#endif  // SRC_CHECK_CHECK_H_
