#include "src/nomad/tpm_protocol.h"

namespace nomad {
namespace tpm {

Transaction::Step Transaction::Advance(Hw& hw) {
  const Step ran = next_;
  switch (next_) {
    case Step::kClearDirty:
      hw.ClearDirty();
      next_ = Step::kShootdown1;
      break;
    case Step::kShootdown1:
      hw.ShootdownAfterClear();
      next_ = Step::kStartCopy;
      break;
    case Step::kStartCopy:
      hw.StartCopy();
      next_ = Step::kFinishCopy;
      break;
    case Step::kFinishCopy:
      hw.FinishCopy();
      next_ = Step::kShootdown2;
      break;
    case Step::kShootdown2:
      hw.ShootdownBeforeCheck();
      next_ = Step::kCheckDirty;
      break;
    case Step::kCheckDirty:
      // The paper's validity test: a store anywhere in the copy window set
      // the dirty bit, so the copy may be torn. Clean means the copy is
      // byte-identical to the master, which is exactly the condition under
      // which the old frame may live on as a shadow.
      dirty_at_check_ = hw.ReadDirty();
      next_ = Step::kResolve;
      break;
    case Step::kResolve:
      if (dirty_at_check_) {
        hw.Abort();
        outcome_ = Outcome::kAborted;
      } else {
        hw.CommitRemap(shadowing_);
        outcome_ = Outcome::kCommitted;
      }
      next_ = Step::kDone;
      break;
    case Step::kDone:
      break;
  }
  return ran;
}

void Transaction::Begin(Hw& hw) {
  while (next_ != Step::kFinishCopy && next_ != Step::kDone) {
    Advance(hw);
  }
}

Outcome Transaction::Commit(Hw& hw) {
  while (next_ != Step::kDone) {
    Advance(hw);
  }
  return outcome_;
}

const char* StepName(Transaction::Step s) {
  switch (s) {
    case Transaction::Step::kClearDirty:
      return "clear_dirty";
    case Transaction::Step::kShootdown1:
      return "shootdown1";
    case Transaction::Step::kStartCopy:
      return "start_copy";
    case Transaction::Step::kFinishCopy:
      return "finish_copy";
    case Transaction::Step::kShootdown2:
      return "shootdown2";
    case Transaction::Step::kCheckDirty:
      return "check_dirty";
    case Transaction::Step::kResolve:
      return "resolve";
    case Transaction::Step::kDone:
      return "done";
  }
  return "?";
}

SyncMigration::Step SyncMigration::Advance(SyncHw& hw) {
  const Step ran = next_;
  switch (next_) {
    case Step::kUnmap:
      hw.Unmap();
      next_ = Step::kShootdown;
      break;
    case Step::kShootdown:
      hw.Shootdown();
      next_ = Step::kCopy;
      break;
    case Step::kCopy:
      hw.Copy();
      next_ = Step::kRemap;
      break;
    case Step::kRemap:
      hw.Remap();
      next_ = Step::kDone;
      break;
    case Step::kDone:
      break;
  }
  return ran;
}

void SyncMigration::Run(SyncHw& hw) {
  SyncMigration m;
  while (!m.done()) {
    m.Advance(hw);
  }
}

}  // namespace tpm
}  // namespace nomad
