// Thrash governor: the paper's sec. 5 future-work extension.
//
// "It is straightforward to detect memory thrashing, e.g., frequent and
// equal number of page demotions and promotions, and disable page
// migrations. [...] We plan to extend NOMAD to unilaterally throttle page
// promotions and monitor page demotions to effectively manage memory
// pressure on the fast tier."
//
// The governor samples promotion/demotion rates periodically. When both
// are high and balanced (the thrashing signature), it closes a *promotion
// gate* shared with the hint-fault path and kpromote, so pages are served
// in place from the slow tier - the behaviour the paper shows is optimal
// when the working set exceeds fast memory. Because estimating when the
// working set shrank back is hard (the paper's stated open problem), the
// governor periodically re-opens the gate on probation with exponential
// backoff: if thrashing resumes immediately, the gate closes for longer.
#ifndef SRC_NOMAD_GOVERNOR_H_
#define SRC_NOMAD_GOVERNOR_H_

#include "src/mm/memory_system.h"

namespace nomad {

// Shared switch between the governor and the promotion machinery.
struct PromotionGate {
  bool open = true;
};

class ThrashGovernor : public Actor {
 public:
  struct Config {
    Cycles period = 4000000;        // sampling period (~2 ms at 2.1 GHz)
    uint64_t min_promotions = 256;  // below this rate, no thrash verdict
    double balance_tolerance = 0.5; // |promo-demo| / promo below this = balanced
    int probation_periods = 2;      // gate re-opens for this many periods
    int max_backoff = 16;           // cap on closed-period exponential growth
  };

  ThrashGovernor(MemorySystem* ms, PromotionGate* gate, const Config& config)
      : ms_(ms), gate_(gate), config_(config) {}

  Cycles Step(Engine& engine) override;
  std::string name() const override { return "thrash-governor"; }

  uint64_t throttle_events() const { return throttle_events_; }
  bool gate_open() const { return gate_->open; }

 private:
  // Promotion/demotion totals from the shared counters.
  uint64_t PromoTotal() const;
  uint64_t DemoTotal() const;

  MemorySystem* ms_;
  PromotionGate* gate_;
  Config config_;
  uint64_t last_promo_ = 0;
  uint64_t last_demo_ = 0;
  int closed_periods_left_ = 0;   // remaining periods with the gate closed
  int probation_left_ = 0;        // remaining probation periods after reopen
  int backoff_ = 1;               // current closed-duration multiplier
  uint64_t throttle_events_ = 0;
};

}  // namespace nomad

#endif  // SRC_NOMAD_GOVERNOR_H_
